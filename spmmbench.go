// Package spmmbench is the public facade of the SpMM benchmark suite — a Go
// reproduction of "SpMM-Bench: Performance Characterization of Sparse
// Formats for Sparse-Dense Matrix Multiplication" (Flynn, 2024).
//
// The facade re-exports the pieces a downstream user needs: the COO/dense
// matrix types, the sparse formats (CSR, ELLPACK, BCSR, and the future-work
// BELL and SELL-C-σ formats), the SpMM/SpMV kernels, MatrixMarket I/O, the
// benchmark runner with its kernel registry, the calibrated synthetic
// matrix generators, and the study harness that regenerates every table
// and figure of the thesis' evaluation.
//
// Quick start:
//
//	a, _, err := spmmbench.GenerateMatrix("cant", 0.1)
//	if err != nil { ... }
//	kernel, err := spmmbench.NewKernel("csr-omp", spmmbench.KernelOptions{})
//	if err != nil { ... }
//	res, err := spmmbench.RunBenchmark(kernel, a, "cant", spmmbench.DefaultParams())
//	fmt.Printf("%.1f MFLOPS\n", res.MFLOPS)
//
// The runnable examples under examples/ and the four commands under cmd/
// exercise the full surface.
package spmmbench

import (
	"io"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/formats"
	"repro/internal/gen"
	"repro/internal/gpusim"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/mmio"
	"repro/internal/studies"
)

// Matrix types.
type (
	// COO is the coordinate-format sparse matrix, the suite's base format.
	COO = matrix.COO[float64]
	// Dense is a row-major dense matrix.
	Dense = matrix.Dense[float64]
	// CSR is the compressed sparse row format.
	CSR = formats.CSR[float64]
	// ELL is the ELLPACK format.
	ELL = formats.ELL[float64]
	// BCSR is the block compressed sparse row format.
	BCSR = formats.BCSR[float64]
	// BELL is the Blocked-ELLPACK format.
	BELL = formats.BELL[float64]
	// SELLCS is the SELL-C-σ sliced format.
	SELLCS = formats.SELLCS[float64]
	// Properties are the Table 5.1 matrix metrics.
	Properties = metrics.Properties
)

// Benchmark suite types.
type (
	// Kernel is the interface every benchmarked kernel implements.
	Kernel = core.Kernel
	// Mode classifies a kernel's execution environment.
	Mode = core.Mode
	// Params are the suite's runtime parameters (reps, threads, block
	// size, k, thread list).
	Params = core.Params
	// Result is one benchmark outcome.
	Result = core.Result
	// KernelOptions carries shared kernel resources (the GPU device).
	KernelOptions = core.Options
	// GPUDevice is a simulated GPU.
	GPUDevice = gpusim.Device
	// StudyConfig configures the study harness.
	StudyConfig = studies.Config
	// StudySection is one titled output table of a study.
	StudySection = studies.Section
)

// NewCOO returns an empty rows×cols COO matrix with the given capacity.
func NewCOO(rows, cols, capacity int) *COO { return matrix.NewCOO[float64](rows, cols, capacity) }

// NewDense returns a zeroed rows×cols dense matrix.
func NewDense(rows, cols int) *Dense { return matrix.NewDense[float64](rows, cols) }

// NewDenseRand returns a deterministic pseudo-random dense matrix.
func NewDenseRand(rows, cols int, seed int64) *Dense {
	return matrix.NewDenseRand[float64](rows, cols, seed)
}

// ToCSR converts a COO matrix to CSR.
func ToCSR(m *COO) *CSR { return formats.CSRFromCOO(m) }

// ToELL converts a COO matrix to row-major ELLPACK.
func ToELL(m *COO) *ELL { return formats.ELLFromCOO(m, formats.RowMajor) }

// ToBCSR converts a COO matrix to BCSR with square blocks of the given size.
func ToBCSR(m *COO, block int) (*BCSR, error) { return formats.BCSRFromCOO(m, block, block) }

// ComputeProperties derives the Table 5.1 metrics of a matrix.
func ComputeProperties(m *COO) Properties { return metrics.Compute(m) }

// ReadMatrixMarket parses a MatrixMarket stream into COO form.
func ReadMatrixMarket(r io.Reader) (*COO, error) { return mmio.ReadCOO[float64](r) }

// WriteMatrixMarket writes a COO matrix in MatrixMarket format.
func WriteMatrixMarket(w io.Writer, m *COO) error { return mmio.WriteCOO(w, m) }

// MatrixNames lists the 14 calibrated evaluation matrices (Table 5.1).
func MatrixNames() []string { return gen.Names() }

// GenerateMatrix synthesises one of the calibrated evaluation matrices at
// the given scale factor in (0, 1], returning the matrix and its Table 5.1
// properties.
func GenerateMatrix(name string, scale float64) (*COO, Properties, error) {
	m, _, err := gen.GenerateScaled(name, scale)
	if err != nil {
		return nil, Properties{}, err
	}
	return m, metrics.Compute(m), nil
}

// KernelNames lists the registered benchmark kernels.
func KernelNames() []string { return core.Names() }

// NewKernel builds a kernel by registry name ("csr-omp", "bcsr-serial",
// "vendor-csr-gpu", ...).
func NewKernel(name string, o KernelOptions) (Kernel, error) { return core.New(name, o) }

// NewGPUDevice builds the simulated GPU of the thesis' Arm machine
// (H100-like) or, with aries=true, its x86 machine (A100-like).
func NewGPUDevice(aries bool) (*GPUDevice, error) {
	cfg := gpusim.H100Like()
	if aries {
		cfg = gpusim.A100Like()
	}
	return gpusim.NewDevice(cfg)
}

// DefaultParams returns the thesis evaluation defaults: k=128, 32 threads,
// block size 4 (§5.1).
func DefaultParams() Params { return core.DefaultParams() }

// RunBenchmark benchmarks one kernel on one matrix with warm-up, timed
// repetitions, and COO-reference verification.
func RunBenchmark(k Kernel, a *COO, name string, p Params) (Result, error) {
	return core.Run(k, a, name, p)
}

// BestThreads sweeps p.ThreadList and returns the index of the winner plus
// all per-count results (the Study 3.1 feature).
func BestThreads(k Kernel, a *COO, name string, p Params) (int, []Result, error) {
	return core.BestThreads(k, a, name, p)
}

// StudyIDs lists the evaluation study identifiers ("props", "1" … "9").
func StudyIDs() []string { return studies.All() }

// DefaultStudyConfig returns a configuration that completes the full study
// suite in minutes.
func DefaultStudyConfig() StudyConfig { return studies.DefaultConfig() }

// RunStudy regenerates one of the thesis' evaluation studies.
func RunStudy(id string, cfg StudyConfig) ([]StudySection, error) { return studies.Run(id, cfg) }

// RenderStudy writes study sections as readable text tables.
func RenderStudy(w io.Writer, sections []StudySection) error { return studies.Render(w, sections) }

// ArchProfiles returns the single-core architecture cost models of the
// thesis' two machines (Grace-Arm and Aries-x86) for Study 6 style
// comparisons.
func ArchProfiles() []machine.Profile { return machine.Profiles() }

// ---- Format advisor ----

// AdvisorFeatures are the format-selection signals extracted from a matrix.
type AdvisorFeatures = advisor.Features

// Advice is one ranked format recommendation.
type Advice = advisor.Advice

// AdvisorEnvironment selects the execution setting a format is chosen for.
type AdvisorEnvironment = advisor.Environment

// Advisor environments.
const (
	SerialCPU   = advisor.SerialCPU
	ParallelCPU = advisor.ParallelCPU
	GPUEnv      = advisor.GPUEnv
)

// Kernel execution modes.
const (
	ModeSerial   = core.Serial
	ModeParallel = core.Parallel
	ModeGPU      = core.GPU
)

// ExtractFeatures computes the advisor's format-selection features.
func ExtractFeatures(m *COO) (AdvisorFeatures, error) { return advisor.Extract(m) }

// RecommendFormat ranks the main formats for the environment, best first.
func RecommendFormat(f AdvisorFeatures, env AdvisorEnvironment) []Advice {
	return advisor.Recommend(f, env)
}

// MeasureFormats empirically benchmarks the candidate formats and returns
// the winner with all results.
func MeasureFormats(m *COO, env AdvisorEnvironment, p Params, o KernelOptions) (string, []Result, error) {
	return advisor.Measure(m, env, p, o)
}

// ---- SpMV (future-work §6.3.4) ----

// SpMVKernel is the vector counterpart of Kernel.
type SpMVKernel = core.SpMVKernel

// SpMVKernelNames lists the SpMV kernel registry names.
func SpMVKernelNames() []string { return core.SpMVNames() }

// NewSpMVKernel builds an SpMV kernel by registry name.
func NewSpMVKernel(name string) (SpMVKernel, error) { return core.NewSpMV(name) }

// RunSpMVBenchmark benchmarks one SpMV kernel on one matrix.
func RunSpMVBenchmark(k SpMVKernel, a *COO, name string, p Params) (Result, error) {
	return core.RunSpMV(k, a, name, p)
}
