package spmmbench

// One benchmark per table/figure of the thesis' evaluation, plus the
// ablation benches DESIGN.md calls out. Each bench exercises the same code
// path as the corresponding study on a small calibrated matrix and reports
// MFLOPS (the thesis' metric) via b.ReportMetric; `go run ./cmd/spmmstudy`
// regenerates the full data series over all 14 matrices.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/formats"
	"repro/internal/gen"
	"repro/internal/gpusim"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/internal/vendorlib"
)

// benchMatrix returns the shared benchmark input: bcsstk17 at half size
// (≈5.5k rows, ≈110k nonzeros) — big enough to be memory-realistic, small
// enough for -bench=. to finish quickly.
func benchMatrix(b *testing.B) *matrix.COO[float64] {
	b.Helper()
	m, _, err := gen.GenerateScaled("bcsstk17", 0.5)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func reportMFLOPS(b *testing.B, nnz, k int) {
	b.Helper()
	secs := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(metrics.MFLOPS(kernels.SpMMFlops(nnz, k), secs), "MFLOPS")
}

// BenchmarkTable5_1 regenerates the matrix-properties computation behind
// Table 5.1.
func BenchmarkTable5_1(b *testing.B) {
	m := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := metrics.Compute(m)
		if p.NNZ == 0 {
			b.Fatal("no nonzeros")
		}
	}
}

// BenchmarkStudy1 covers Figures 5.1/5.2: every format's serial and
// parallel kernel (the GPU panel is in BenchmarkStudy7's device path).
func BenchmarkStudy1(b *testing.B) {
	m := benchMatrix(b)
	const k = 128
	bb := matrix.NewDenseRand[float64](m.Cols, k, 1)
	c := matrix.NewDense[float64](m.Rows, k)
	csr := formats.CSRFromCOO(m)
	ell := formats.ELLFromCOO(m, formats.RowMajor)
	bcsr, err := formats.BCSRFromCOO(m, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	runs := []struct {
		name string
		fn   func() error
	}{
		{"coo-serial", func() error { return kernels.COOSerial(m, bb, c, k) }},
		{"csr-serial", func() error { return kernels.CSRSerial(csr, bb, c, k) }},
		{"ell-serial", func() error { return kernels.ELLSerial(ell, bb, c, k) }},
		{"bcsr-serial", func() error { return kernels.BCSRSerial(bcsr, bb, c, k) }},
		{"coo-omp", func() error { return kernels.COOParallel(m, bb, c, k, 4) }},
		{"csr-omp", func() error { return kernels.CSRParallel(csr, bb, c, k, 4) }},
		{"ell-omp", func() error { return kernels.ELLParallel(ell, bb, c, k, 4) }},
		{"bcsr-omp", func() error { return kernels.BCSRParallel(bcsr, bb, c, k, 4) }},
	}
	for _, r := range runs {
		b.Run(r.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := r.fn(); err != nil {
					b.Fatal(err)
				}
			}
			reportMFLOPS(b, m.NNZ(), k)
		})
	}
}

// BenchmarkStudy2 covers Figures 5.3/5.4: the kernel forms of one format
// (CSR) head to head, including the simulated-GPU form.
func BenchmarkStudy2(b *testing.B) {
	m := benchMatrix(b)
	const k = 128
	bb := matrix.NewDenseRand[float64](m.Cols, k, 1)
	c := matrix.NewDense[float64](m.Rows, k)
	csr := formats.CSRFromCOO(m)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := kernels.CSRSerial(csr, bb, c, k); err != nil {
				b.Fatal(err)
			}
		}
		reportMFLOPS(b, m.NNZ(), k)
	})
	b.Run("omp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := kernels.CSRParallel(csr, bb, c, k, 4); err != nil {
				b.Fatal(err)
			}
		}
		reportMFLOPS(b, m.NNZ(), k)
	})
	b.Run("gpu", func(b *testing.B) {
		dev, err := gpusim.NewDevice(gpusim.H100Like().ScaledDown(0.05))
		if err != nil {
			b.Fatal(err)
		}
		var modelled float64
		for i := 0; i < b.N; i++ {
			res, err := gpusim.SpMMCSR(dev, csr, bb, c, k)
			if err != nil {
				b.Fatal(err)
			}
			modelled = res.Seconds
		}
		b.ReportMetric(metrics.MFLOPS(kernels.SpMMFlops(m.NNZ(), k), modelled), "model-MFLOPS")
	})
}

// BenchmarkStudy3 covers Figures 5.5/5.6: thread scaling on the simulated
// sockets (modelled MFLOPS) at the thread counts the thesis used.
func BenchmarkStudy3(b *testing.B) {
	m := benchMatrix(b)
	csr := formats.CSRFromCOO(m)
	const k = 128
	for _, mc := range machine.Machines() {
		for _, threads := range []int{8, 16, 32} {
			b.Run(fmt.Sprintf("%s/t%d", mc.Prof.Name, threads), func(b *testing.B) {
				var mf float64
				for i := 0; i < b.N; i++ {
					r, err := mc.CSRParallel(csr, k, threads)
					if err != nil {
						b.Fatal(err)
					}
					mf = r.MFLOPS
				}
				b.ReportMetric(mf, "model-MFLOPS")
			})
		}
	}
}

// BenchmarkStudy3_1 covers Figures 5.7/5.8: the full best-thread-count
// sweep on one matrix per socket.
func BenchmarkStudy3_1(b *testing.B) {
	m := benchMatrix(b)
	csr := formats.CSRFromCOO(m)
	threadList := []int{2, 4, 8, 16, 32, 48, 64, 72}
	for _, mc := range machine.Machines() {
		b.Run(mc.Prof.Name, func(b *testing.B) {
			best := 0
			for i := 0; i < b.N; i++ {
				bestMF := -1.0
				for _, t := range threadList {
					r, err := mc.CSRParallel(csr, 128, t)
					if err != nil {
						b.Fatal(err)
					}
					if r.MFLOPS > bestMF {
						bestMF, best = r.MFLOPS, t
					}
				}
			}
			b.ReportMetric(float64(best), "best-threads")
		})
	}
}

// BenchmarkStudy4 covers Figures 5.9/5.10: the k-loop sweep.
func BenchmarkStudy4(b *testing.B) {
	m := benchMatrix(b)
	csr := formats.CSRFromCOO(m)
	for _, k := range []int{8, 16, 64, 128, 256, 512, 1028} {
		bb := matrix.NewDenseRand[float64](m.Cols, k, 1)
		c := matrix.NewDense[float64](m.Rows, k)
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := kernels.CSRParallel(csr, bb, c, k, 4); err != nil {
					b.Fatal(err)
				}
			}
			reportMFLOPS(b, m.NNZ(), k)
		})
	}
}

// BenchmarkStudy5 covers Figures 5.11/5.12: BCSR block sizes.
func BenchmarkStudy5(b *testing.B) {
	m := benchMatrix(b)
	const k = 128
	bb := matrix.NewDenseRand[float64](m.Cols, k, 1)
	c := matrix.NewDense[float64](m.Rows, k)
	for _, block := range []int{2, 4, 16} {
		bcsr, err := formats.BCSRFromCOO(m, block, block)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("serial/b%d", block), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := kernels.BCSRSerial(bcsr, bb, c, k); err != nil {
					b.Fatal(err)
				}
			}
			reportMFLOPS(b, m.NNZ(), k)
		})
		b.Run(fmt.Sprintf("omp/b%d", block), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := kernels.BCSRParallel(bcsr, bb, c, k, 4); err != nil {
					b.Fatal(err)
				}
			}
			reportMFLOPS(b, m.NNZ(), k)
		})
	}
}

// BenchmarkStudy6 covers Figures 5.13/5.14: the serial architecture cost
// models (Grace-Arm vs Aries-x86).
func BenchmarkStudy6(b *testing.B) {
	m := benchMatrix(b)
	csr := formats.CSRFromCOO(m)
	bcsr, err := formats.BCSRFromCOO(m, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, prof := range machine.Profiles() {
		b.Run(prof.Name+"/csr", func(b *testing.B) {
			var mf float64
			for i := 0; i < b.N; i++ {
				r, err := machine.SimulateCSR(prof, csr, 128)
				if err != nil {
					b.Fatal(err)
				}
				mf = r.MFLOPS
			}
			b.ReportMetric(mf, "model-MFLOPS")
		})
		b.Run(prof.Name+"/bcsr4", func(b *testing.B) {
			var mf float64
			for i := 0; i < b.N; i++ {
				r, err := machine.SimulateBCSR(prof, bcsr, 128)
				if err != nil {
					b.Fatal(err)
				}
				mf = r.MFLOPS
			}
			b.ReportMetric(mf, "model-MFLOPS")
		})
	}
}

// BenchmarkStudy7 covers Figures 5.15/5.16: vendor-library vs naive
// offload kernels on the simulated device.
func BenchmarkStudy7(b *testing.B) {
	m := benchMatrix(b)
	const k = 128
	bb := matrix.NewDenseRand[float64](m.Cols, k, 1)
	c := matrix.NewDense[float64](m.Rows, k)
	csr := formats.CSRFromCOO(m)
	dev, err := gpusim.NewDevice(gpusim.H100Like().ScaledDown(0.05))
	if err != nil {
		b.Fatal(err)
	}
	runs := []struct {
		name string
		fn   func() (gpusim.LaunchResult, error)
	}{
		{"offload-coo", func() (gpusim.LaunchResult, error) { return gpusim.SpMMCOO(dev, m, bb, c, k) }},
		{"vendor-coo", func() (gpusim.LaunchResult, error) { return vendorlib.SpMMCOO(dev, m, bb, c, k) }},
		{"offload-csr", func() (gpusim.LaunchResult, error) { return gpusim.SpMMCSR(dev, csr, bb, c, k) }},
		{"vendor-csr", func() (gpusim.LaunchResult, error) { return vendorlib.SpMMCSR(dev, csr, bb, c, k) }},
	}
	for _, r := range runs {
		b.Run(r.name, func(b *testing.B) {
			var modelled float64
			for i := 0; i < b.N; i++ {
				res, err := r.fn()
				if err != nil {
					b.Fatal(err)
				}
				modelled = res.Seconds
			}
			b.ReportMetric(metrics.MFLOPS(kernels.SpMMFlops(m.NNZ(), k), modelled), "model-MFLOPS")
		})
	}
}

// BenchmarkStudy8 covers Figures 5.17/5.18: plain vs transposed-B parallel
// kernels (the transpose is charged to the transposed variant).
func BenchmarkStudy8(b *testing.B) {
	m := benchMatrix(b)
	const k = 128
	bb := matrix.NewDenseRand[float64](m.Cols, k, 1)
	c := matrix.NewDense[float64](m.Rows, k)
	csr := formats.CSRFromCOO(m)
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := kernels.CSRParallel(csr, bb, c, k, 4); err != nil {
				b.Fatal(err)
			}
		}
		reportMFLOPS(b, m.NNZ(), k)
	})
	b.Run("transposed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bt := bb.Transpose() // part of the measured work (§5.10)
			if err := kernels.CSRParallelT(csr, bt, c, k, 4); err != nil {
				b.Fatal(err)
			}
		}
		reportMFLOPS(b, m.NNZ(), k)
	})
}

// BenchmarkStudy9 covers Figure 5.19: generic runtime-k kernels vs the
// fixed-k specialisations (the manual optimisation).
func BenchmarkStudy9(b *testing.B) {
	m := benchMatrix(b)
	const k = 128
	bb := matrix.NewDenseRand[float64](m.Cols, k, 1)
	c := matrix.NewDense[float64](m.Rows, k)
	csr := formats.CSRFromCOO(m)
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := kernels.CSRSerial(csr, bb, c, k); err != nil {
				b.Fatal(err)
			}
		}
		reportMFLOPS(b, m.NNZ(), k)
	})
	b.Run("fixedk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := kernels.CSRSerialFixed(csr, bb, c, k); err != nil {
				b.Fatal(err)
			}
		}
		reportMFLOPS(b, m.NNZ(), k)
	})
}

// ---- Ablation benches (DESIGN.md §4) ----

// BenchmarkAblationCOOPartition: row-boundary partitioning vs replicated
// private outputs with a reduction.
func BenchmarkAblationCOOPartition(b *testing.B) {
	m := benchMatrix(b)
	const k = 64
	bb := matrix.NewDenseRand[float64](m.Cols, k, 1)
	c := matrix.NewDense[float64](m.Rows, k)
	b.Run("rowpartition", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := kernels.COOParallel(m, bb, c, k, 4); err != nil {
				b.Fatal(err)
			}
		}
		reportMFLOPS(b, m.NNZ(), k)
	})
	b.Run("replicated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := kernels.COOParallelReplicated(m, bb, c, k, 4); err != nil {
				b.Fatal(err)
			}
		}
		reportMFLOPS(b, m.NNZ(), k)
	})
}

// BenchmarkAblationELLLayout: row-major vs column-major ELL storage on the
// CPU kernel (the GPU side of this ablation is asserted in gpusim's tests).
func BenchmarkAblationELLLayout(b *testing.B) {
	m := benchMatrix(b)
	const k = 64
	bb := matrix.NewDenseRand[float64](m.Cols, k, 1)
	c := matrix.NewDense[float64](m.Rows, k)
	for _, layout := range []formats.ELLLayout{formats.RowMajor, formats.ColMajor} {
		ell := formats.ELLFromCOO(m, layout)
		b.Run(layout.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := kernels.ELLSerial(ell, bb, c, k); err != nil {
					b.Fatal(err)
				}
			}
			reportMFLOPS(b, m.NNZ(), k)
		})
	}
}

// BenchmarkAblationBCSRBuild: the sorted two-pass BCSR builder (this
// suite's fix) vs the thesis' original map-based block discovery.
func BenchmarkAblationBCSRBuild(b *testing.B) {
	m := benchMatrix(b)
	b.Run("sorted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := formats.BCSRFromCOO(m, 4, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := formats.BCSRFromCOOMap(m, 4, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationUnroll: the specialised unrolled inner loop at each
// supported fixed k against the generic loop at the same k.
func BenchmarkAblationUnroll(b *testing.B) {
	m := benchMatrix(b)
	csr := formats.CSRFromCOO(m)
	for _, k := range kernels.FixedKs {
		bb := matrix.NewDenseRand[float64](m.Cols, k, 1)
		c := matrix.NewDense[float64](m.Rows, k)
		b.Run(fmt.Sprintf("generic/k%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := kernels.CSRSerial(csr, bb, c, k); err != nil {
					b.Fatal(err)
				}
			}
			reportMFLOPS(b, m.NNZ(), k)
		})
		b.Run(fmt.Sprintf("fixed/k%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := kernels.CSRSerialFixed(csr, bb, c, k); err != nil {
					b.Fatal(err)
				}
			}
			reportMFLOPS(b, m.NNZ(), k)
		})
	}
}

// BenchmarkAblationValueType: float64 vs float32 values — the memory
// footprint/bandwidth trade of future-work §6.3.5.
func BenchmarkAblationValueType(b *testing.B) {
	m64 := benchMatrix(b)
	m32 := matrix.NewCOO[float32](m64.Rows, m64.Cols, m64.NNZ())
	for i := range m64.Vals {
		m32.Append(m64.RowIdx[i], m64.ColIdx[i], float32(m64.Vals[i]))
	}
	const k = 128
	b.Run("float64", func(b *testing.B) {
		csr := formats.CSRFromCOO(m64)
		bb := matrix.NewDenseRand[float64](m64.Cols, k, 1)
		c := matrix.NewDense[float64](m64.Rows, k)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := kernels.CSRSerial(csr, bb, c, k); err != nil {
				b.Fatal(err)
			}
		}
		reportMFLOPS(b, m64.NNZ(), k)
	})
	b.Run("float32", func(b *testing.B) {
		csr := formats.CSRFromCOO(m32)
		bb := matrix.NewDenseRand[float32](m32.Cols, k, 1)
		c := matrix.NewDense[float32](m32.Rows, k)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := kernels.CSRSerial(csr, bb, c, k); err != nil {
				b.Fatal(err)
			}
		}
		reportMFLOPS(b, m32.NNZ(), k)
	})
}

// BenchmarkAblationSchedule: OpenMP-style static chunks vs dynamic
// self-scheduling on the most irregular matrix (torso1's huge-row skew is
// where static chunking loses balance).
func BenchmarkAblationSchedule(b *testing.B) {
	m, _, err := gen.GenerateScaled("torso1", 0.02)
	if err != nil {
		b.Fatal(err)
	}
	csr := formats.CSRFromCOO(m)
	const k = 64
	bb := matrix.NewDenseRand[float64](m.Cols, k, 1)
	c := matrix.NewDense[float64](m.Rows, k)
	b.Run("static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := kernels.CSRParallel(csr, bb, c, k, 4); err != nil {
				b.Fatal(err)
			}
		}
		reportMFLOPS(b, m.NNZ(), k)
	})
	b.Run("dynamic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := kernels.CSRParallelDynamic(csr, bb, c, k, 4, 32); err != nil {
				b.Fatal(err)
			}
		}
		reportMFLOPS(b, m.NNZ(), k)
	})
}

// BenchmarkAblationBlockedGPU: BCSR vs Blocked-ELL on the simulated GPU.
// BELL's uniform block-row width removes the divergence BCSR's variable
// block counts cause, but pads every block row to the widest; which effect
// dominates depends on the matrix's block-count skew.
func BenchmarkAblationBlockedGPU(b *testing.B) {
	m := benchMatrix(b)
	const k = 128
	bb := matrix.NewDenseRand[float64](m.Cols, k, 1)
	c := matrix.NewDense[float64](m.Rows, k)
	dev, err := gpusim.NewDevice(gpusim.H100Like().ScaledDown(0.05))
	if err != nil {
		b.Fatal(err)
	}
	bcsr, err := formats.BCSRFromCOO(m, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	bell, err := formats.BELLFromCOO(m, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("bcsr", func(b *testing.B) {
		var modelled float64
		for i := 0; i < b.N; i++ {
			res, err := gpusim.SpMMBCSR(dev, bcsr, bb, c, k)
			if err != nil {
				b.Fatal(err)
			}
			modelled = res.Seconds
		}
		b.ReportMetric(metrics.MFLOPS(kernels.SpMMFlops(m.NNZ(), k), modelled), "model-MFLOPS")
	})
	b.Run("bell", func(b *testing.B) {
		var modelled float64
		for i := 0; i < b.N; i++ {
			res, err := gpusim.SpMMBELL(dev, bell, bb, c, k)
			if err != nil {
				b.Fatal(err)
			}
			modelled = res.Seconds
		}
		b.ReportMetric(metrics.MFLOPS(kernels.SpMMFlops(m.NNZ(), k), modelled), "model-MFLOPS")
	})
}

// ---- Perf-baseline benches (scripts/bench.sh) ----
//
// These three are the regression gate's subjects: scripts/bench.sh runs
// them with -benchmem, snapshots ns/op, B/op and allocs/op into
// results/bench/BENCH_<date>.json, and fails when a number regresses past
// the tolerance against the previous baseline.

// powerLawBench builds the hub-heavy matrix the scheduling benches use: a
// few rows own most nonzeros, so row-static chunking leaves threads idle.
func powerLawBench(b *testing.B) (*formats.CSR[float64], int) {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	m := matrix.NewCOO[float64](4000, 600, 0)
	for i := 0; i < 4000; i++ {
		u := rng.Float64()
		deg := int(u * u * u * 600)
		if i%17 == 0 {
			deg = 0
		}
		if i == 4000/3 {
			deg = 600
		}
		for d := 0; d < deg; d++ {
			m.Append(int32(i), int32(rng.Intn(600)), rng.NormFloat64())
		}
	}
	m.Dedup()
	return formats.CSRFromCOO(m), m.NNZ()
}

// BenchmarkCalculate is the steady-state Calculate cost per format and
// mode. The serial rows double as the zero-allocation audit's perf face:
// their allocs/op column in the committed baseline must read 0.
func BenchmarkCalculate(b *testing.B) {
	m := benchMatrix(b)
	const k = 128
	bb := matrix.NewDenseRand[float64](m.Cols, k, 1)
	c := matrix.NewDense[float64](m.Rows, k)
	csr := formats.CSRFromCOO(m)
	ell := formats.ELLFromCOO(m, formats.RowMajor)
	bcsr, err := formats.BCSRFromCOO(m, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	runs := []struct {
		name string
		fn   func() error
	}{
		{"csr-serial", func() error { return kernels.CSRSerial(csr, bb, c, k) }},
		{"ell-serial", func() error { return kernels.ELLSerial(ell, bb, c, k) }},
		{"bcsr-serial", func() error { return kernels.BCSRSerial(bcsr, bb, c, k) }},
		{"csr-omp", func() error { return kernels.CSRParallel(csr, bb, c, k, 4) }},
		{"ell-omp", func() error { return kernels.ELLParallel(ell, bb, c, k, 4) }},
		{"bcsr-omp", func() error { return kernels.BCSRParallel(bcsr, bb, c, k, 4) }},
	}
	for _, r := range runs {
		b.Run(r.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := r.fn(); err != nil {
					b.Fatal(err)
				}
			}
			reportMFLOPS(b, m.NNZ(), k)
		})
	}
}

// BenchmarkSchedule races row-static against nonzero-balanced chunking on
// the power-law matrix at 4+ threads — the wall-clock face of the sched
// study. On a multi-core host balanced wins; on a single core the two
// coincide (the partition is precomputed either way).
func BenchmarkSchedule(b *testing.B) {
	csr, nnz := powerLawBench(b)
	const k, threads = 128, 4
	bb := matrix.NewDenseRand[float64](csr.Cols, k, 1)
	c := matrix.NewDense[float64](csr.Rows, k)
	csr.BalancedBounds(threads) // warm the partition cache, as Prepare does
	b.Run("static", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := kernels.CSRParallel(csr, bb, c, k, threads); err != nil {
				b.Fatal(err)
			}
		}
		reportMFLOPS(b, nnz, k)
	})
	b.Run("balanced", func(b *testing.B) {
		b.ReportAllocs()
		o := kernels.Opts{Schedule: kernels.ScheduleBalanced}
		for i := 0; i < b.N; i++ {
			if err := kernels.CSRParallelOpts(csr, bb, c, k, threads, o); err != nil {
				b.Fatal(err)
			}
		}
		reportMFLOPS(b, nnz, k)
	})
}

// BenchmarkPool races per-call goroutine spawning against the persistent
// worker pool — the dispatch overhead a long campaign amortises away.
func BenchmarkPool(b *testing.B) {
	csr, nnz := powerLawBench(b)
	const k, threads = 128, 4
	bb := matrix.NewDenseRand[float64](csr.Cols, k, 1)
	c := matrix.NewDense[float64](csr.Rows, k)
	b.Run("spawn", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := kernels.CSRParallel(csr, bb, c, k, threads); err != nil {
				b.Fatal(err)
			}
		}
		reportMFLOPS(b, nnz, k)
	})
	b.Run("pooled", func(b *testing.B) {
		pool := parallel.NewPool(threads)
		defer pool.Close()
		o := kernels.Opts{Pool: pool}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := kernels.CSRParallelOpts(csr, bb, c, k, threads, o); err != nil {
				b.Fatal(err)
			}
		}
		reportMFLOPS(b, nnz, k)
	})
}

// BenchmarkTraceOverhead pins the tracer's cost contract on the serial CSR
// Calculate. The "disabled" row must read 0 allocs/op and stay within the
// perf gate's tolerance of BenchmarkCalculate/csr-serial — a tracer that
// taxes instrumented-but-untraced runs is a regression even if every other
// number holds. The "enabled" row documents the recording cost for scale.
func BenchmarkTraceOverhead(b *testing.B) {
	m := benchMatrix(b)
	const k = 128
	bb := matrix.NewDenseRand[float64](m.Cols, k, 1)
	c := matrix.NewDense[float64](m.Rows, k)
	csr := formats.CSRFromCOO(m)
	run := func(b *testing.B, tr *trace.Tracer) {
		parallel.SetTracer(tr)
		defer parallel.SetTracer(nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := tr.Start()
			if err := kernels.CSRSerial(csr, bb, c, k); err != nil {
				b.Fatal(err)
			}
			tr.EndDetail(0, trace.PhaseCalculate, "csr-serial", s, 0)
		}
		reportMFLOPS(b, m.NNZ(), k)
	}
	b.Run("disabled", func(b *testing.B) {
		run(b, trace.New(8, 1<<10)) // constructed but never enabled
	})
	b.Run("enabled", func(b *testing.B) {
		tr := trace.New(8, 1<<10)
		tr.SetEnabled(true)
		run(b, tr)
	})
}

// BenchmarkObsOverhead pins the metric registry's cost contract on the
// serial CSR Calculate. The "bare" row is the uninstrumented kernel; the
// "instrumented" row adds the same shape of metric traffic the kernels
// dispatch layer emits per call (dispatch counter, rows/nonzeros totals,
// imbalance gauge, one latency observation) against live registered
// instruments. Both rows must read 0 allocs/op — the registry's hot path
// is a handful of atomic adds, and the perf gate holds it there.
func BenchmarkObsOverhead(b *testing.B) {
	m := benchMatrix(b)
	const k = 128
	bb := matrix.NewDenseRand[float64](m.Cols, k, 1)
	c := matrix.NewDense[float64](m.Rows, k)
	csr := formats.CSRFromCOO(m)
	dispatch := obs.NewCounter("spmm_bench_obs_dispatch_total", "bench-only dispatch counter")
	rows := obs.NewCounter("spmm_bench_obs_rows_total", "bench-only rows counter")
	nnz := obs.NewCounter("spmm_bench_obs_nonzeros_total", "bench-only nonzeros counter")
	imbalance := obs.NewGauge("spmm_bench_obs_imbalance_ratio", "bench-only imbalance gauge")
	seconds := obs.NewHistogram("spmm_bench_obs_seconds", "bench-only latency histogram")
	run := func(b *testing.B, instrumented bool) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := b.Elapsed()
			if err := kernels.CSRSerial(csr, bb, c, k); err != nil {
				b.Fatal(err)
			}
			if instrumented {
				dispatch.Inc()
				rows.Add(int64(csr.Rows))
				nnz.Add(int64(csr.NNZ()))
				imbalance.Set(1)
				seconds.Observe((b.Elapsed() - start).Seconds())
			}
		}
		reportMFLOPS(b, m.NNZ(), k)
	}
	b.Run("bare", func(b *testing.B) { run(b, false) })
	b.Run("instrumented", func(b *testing.B) { run(b, true) })
}

// BenchmarkPhaseMix runs the full benchmark pipeline (prepare, warm-up,
// calculate, verify) with tracing enabled and reports the per-phase time
// shares and worker idle fraction as custom metrics. perf.Parse stores
// custom units in the baseline JSON, so scripts/bench.sh makes regressions
// in phase *mix* — not just end-to-end ns/op — diffable across baselines.
func BenchmarkPhaseMix(b *testing.B) {
	m := benchMatrix(b)
	tr := trace.New(8, 1<<14)
	tr.SetEnabled(true)
	parallel.SetTracer(tr)
	defer parallel.SetTracer(nil)
	k, err := core.New("csr-omp", core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	p := core.DefaultParams()
	p.Reps = 1
	p.Threads = 4
	p.Trace = tr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(k, m, "bcsstk17", p); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	mix := metrics.PhaseMixFrom(tr.Summary())
	for _, phase := range []string{trace.PhasePrepare, trace.PhaseCalculate, trace.PhaseVerify} {
		b.ReportMetric(mix.Shares[phase]*100, phase+"-%")
	}
	b.ReportMetric(mix.WorkerIdleFraction*100, "worker-idle-%")
}

// BenchmarkSpMV covers the future-work SpMV path (§6.3.4) per format.
func BenchmarkSpMV(b *testing.B) {
	m := benchMatrix(b)
	x := make([]float64, m.Cols)
	y := make([]float64, m.Rows)
	for i := range x {
		x[i] = 1
	}
	csr := formats.CSRFromCOO(m)
	ell := formats.ELLFromCOO(m, formats.RowMajor)
	bcsr, err := formats.BCSRFromCOO(m, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	runs := []struct {
		name string
		fn   func() error
	}{
		{"coo", func() error { return kernels.COOSpMV(m, x, y) }},
		{"csr", func() error { return kernels.CSRSpMV(csr, x, y) }},
		{"ell", func() error { return kernels.ELLSpMV(ell, x, y) }},
		{"bcsr", func() error { return kernels.BCSRSpMV(bcsr, x, y) }},
	}
	for _, r := range runs {
		b.Run(r.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := r.fn(); err != nil {
					b.Fatal(err)
				}
			}
			secs := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(metrics.MFLOPS(kernels.SpMVFlops(m.NNZ()), secs), "MFLOPS")
		})
	}
}
