package matrix

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format sparse matrix: parallel arrays of (row, col,
// value) triplets. It is the suite's base format, matching the thesis design
// in which every other format is built from the COO representation (the
// on-disk MatrixMarket layout is itself COO-like).
//
// Indices are int32: the thesis' future work (§6.3.5) observes that 32-bit
// indices suffice for the matrices of interest and halve the footprint.
type COO[T Float] struct {
	Rows, Cols int
	RowIdx     []int32
	ColIdx     []int32
	Vals       []T
}

// NewCOO returns an empty rows×cols COO matrix with capacity for nnz
// triplets.
func NewCOO[T Float](rows, cols, nnz int) *COO[T] {
	return &COO[T]{
		Rows:   rows,
		Cols:   cols,
		RowIdx: make([]int32, 0, nnz),
		ColIdx: make([]int32, 0, nnz),
		Vals:   make([]T, 0, nnz),
	}
}

// NNZ reports the number of stored (structurally nonzero) entries.
func (m *COO[T]) NNZ() int { return len(m.Vals) }

// Append adds one triplet. It does not check for duplicates; call Validate
// or Dedup if the source may contain them.
func (m *COO[T]) Append(r, c int32, v T) {
	m.RowIdx = append(m.RowIdx, r)
	m.ColIdx = append(m.ColIdx, c)
	m.Vals = append(m.Vals, v)
}

// Validate checks structural invariants: consistent triplet array lengths
// and all indices in range. It does not require sortedness.
func (m *COO[T]) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("%w: negative dimensions %dx%d", ErrInvalid, m.Rows, m.Cols)
	}
	if len(m.RowIdx) != len(m.Vals) || len(m.ColIdx) != len(m.Vals) {
		return fmt.Errorf("%w: triplet arrays disagree: rows=%d cols=%d vals=%d",
			ErrInvalid, len(m.RowIdx), len(m.ColIdx), len(m.Vals))
	}
	for i := range m.Vals {
		r, c := m.RowIdx[i], m.ColIdx[i]
		if r < 0 || int(r) >= m.Rows || c < 0 || int(c) >= m.Cols {
			return fmt.Errorf("%w: entry %d at (%d,%d) outside %dx%d",
				ErrInvalid, i, r, c, m.Rows, m.Cols)
		}
	}
	return nil
}

// IsSortedRowMajor reports whether triplets are sorted by (row, col).
func (m *COO[T]) IsSortedRowMajor() bool {
	for i := 1; i < len(m.Vals); i++ {
		if m.RowIdx[i] < m.RowIdx[i-1] ||
			(m.RowIdx[i] == m.RowIdx[i-1] && m.ColIdx[i] < m.ColIdx[i-1]) {
			return false
		}
	}
	return true
}

// SortRowMajor sorts triplets by (row, col). Format converters require
// row-major order; the parallel COO kernel requires it to partition work at
// row boundaries.
func (m *COO[T]) SortRowMajor() {
	if m.IsSortedRowMajor() {
		return
	}
	s := cooSorter[T]{m}
	sort.Sort(s)
}

type cooSorter[T Float] struct{ m *COO[T] }

func (s cooSorter[T]) Len() int { return len(s.m.Vals) }
func (s cooSorter[T]) Less(i, j int) bool {
	m := s.m
	if m.RowIdx[i] != m.RowIdx[j] {
		return m.RowIdx[i] < m.RowIdx[j]
	}
	return m.ColIdx[i] < m.ColIdx[j]
}
func (s cooSorter[T]) Swap(i, j int) {
	m := s.m
	m.RowIdx[i], m.RowIdx[j] = m.RowIdx[j], m.RowIdx[i]
	m.ColIdx[i], m.ColIdx[j] = m.ColIdx[j], m.ColIdx[i]
	m.Vals[i], m.Vals[j] = m.Vals[j], m.Vals[i]
}

// Dedup sorts the matrix row-major and sums duplicate (row, col) entries in
// place. It returns the number of duplicates merged.
func (m *COO[T]) Dedup() int {
	m.SortRowMajor()
	if len(m.Vals) == 0 {
		return 0
	}
	w := 0
	for i := 1; i < len(m.Vals); i++ {
		if m.RowIdx[i] == m.RowIdx[w] && m.ColIdx[i] == m.ColIdx[w] {
			m.Vals[w] += m.Vals[i]
			continue
		}
		w++
		m.RowIdx[w] = m.RowIdx[i]
		m.ColIdx[w] = m.ColIdx[i]
		m.Vals[w] = m.Vals[i]
	}
	merged := len(m.Vals) - (w + 1)
	m.RowIdx = m.RowIdx[:w+1]
	m.ColIdx = m.ColIdx[:w+1]
	m.Vals = m.Vals[:w+1]
	return merged
}

// Transpose returns a new COO holding the transpose of m, sorted row-major.
func (m *COO[T]) Transpose() *COO[T] {
	t := NewCOO[T](m.Cols, m.Rows, m.NNZ())
	for i := range m.Vals {
		t.Append(m.ColIdx[i], m.RowIdx[i], m.Vals[i])
	}
	t.SortRowMajor()
	return t
}

// ToDense expands m into a dense matrix, summing duplicates.
func (m *COO[T]) ToDense() *Dense[T] {
	d := NewDense[T](m.Rows, m.Cols)
	for i := range m.Vals {
		d.Data[int(m.RowIdx[i])*d.Stride+int(m.ColIdx[i])] += m.Vals[i]
	}
	return d
}

// FromDense builds a COO matrix from the nonzero entries of d, in row-major
// order.
func FromDense[T Float](d *Dense[T]) *COO[T] {
	m := NewCOO[T](d.Rows, d.Cols, 0)
	for i := 0; i < d.Rows; i++ {
		row := d.Row(i)
		for j, v := range row {
			if v != 0 {
				m.Append(int32(i), int32(j), v)
			}
		}
	}
	return m
}

// Clone returns a deep copy of m.
func (m *COO[T]) Clone() *COO[T] {
	c := NewCOO[T](m.Rows, m.Cols, m.NNZ())
	c.RowIdx = append(c.RowIdx, m.RowIdx...)
	c.ColIdx = append(c.ColIdx, m.ColIdx...)
	c.Vals = append(c.Vals, m.Vals...)
	return c
}

// RowCounts returns, for each row, the number of stored entries in it.
func (m *COO[T]) RowCounts() []int {
	counts := make([]int, m.Rows)
	for _, r := range m.RowIdx {
		counts[r]++
	}
	return counts
}

// Bytes reports the memory footprint of the triplet storage in bytes.
func (m *COO[T]) Bytes() int {
	var z T
	return len(m.RowIdx)*4 + len(m.ColIdx)*4 + len(m.Vals)*int(sizeOf(z))
}
