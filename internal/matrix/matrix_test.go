package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDenseZeroed(t *testing.T) {
	d := NewDense[float64](3, 4)
	if d.Rows != 3 || d.Cols != 4 || d.Stride != 4 {
		t.Fatalf("dims: got %dx%d stride %d", d.Rows, d.Cols, d.Stride)
	}
	for i, v := range d.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestDenseAtSetRow(t *testing.T) {
	d := NewDense[float64](2, 3)
	d.Set(1, 2, 42)
	if got := d.At(1, 2); got != 42 {
		t.Fatalf("At(1,2) = %v, want 42", got)
	}
	row := d.Row(1)
	if len(row) != 3 || row[2] != 42 {
		t.Fatalf("Row(1) = %v", row)
	}
	row[0] = 7
	if d.At(1, 0) != 7 {
		t.Fatal("Row must alias storage")
	}
}

func TestDenseRandDeterministic(t *testing.T) {
	a := NewDenseRand[float64](5, 7, 42)
	b := NewDenseRand[float64](5, 7, 42)
	c := NewDenseRand[float64](5, 7, 43)
	if !a.EqualTol(b, 0) {
		t.Fatal("same seed must give identical matrices")
	}
	if a.EqualTol(c, 0) {
		t.Fatal("different seeds should differ")
	}
	for _, v := range a.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("value %v outside [-1, 1)", v)
		}
	}
}

func TestDenseTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(70)
		cols := 1 + rng.Intn(70)
		d := NewDenseRand[float64](rows, cols, seed)
		tt := d.Transpose().Transpose()
		return d.EqualTol(tt, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDenseTransposeElements(t *testing.T) {
	d := NewDenseRand[float64](33, 47, 1)
	tr := d.Transpose()
	if tr.Rows != 47 || tr.Cols != 33 {
		t.Fatalf("transpose dims %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			if d.At(i, j) != tr.At(j, i) {
				t.Fatalf("mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestDenseView(t *testing.T) {
	d := NewDenseRand[float64](8, 9, 3)
	v, err := d.View(2, 3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v.At(0, 0) != d.At(2, 3) || v.At(3, 4) != d.At(5, 7) {
		t.Fatal("view elements disagree with parent")
	}
	v.Set(1, 1, 99)
	if d.At(3, 4) != 99 {
		t.Fatal("view must alias parent storage")
	}
	if _, err := d.View(5, 5, 5, 5); err == nil {
		t.Fatal("out-of-range view must error")
	}
}

func TestDenseZeroRespectsViewBounds(t *testing.T) {
	d := NewDenseRand[float64](6, 6, 4)
	v, _ := d.View(1, 1, 3, 3)
	v.Zero()
	for i := 1; i < 4; i++ {
		for j := 1; j < 4; j++ {
			if d.At(i, j) != 0 {
				t.Fatalf("(%d,%d) not zeroed", i, j)
			}
		}
	}
	if d.At(0, 0) == 0 && d.At(5, 5) == 0 && d.At(1, 5) == 0 {
		t.Fatal("zeroing a view must not clobber surrounding elements (statistically impossible all are zero)")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := NewDense[float64](2, 2)
	b := NewDense[float64](2, 2)
	b.Set(1, 1, -3)
	diff, err := a.MaxAbsDiff(b)
	if err != nil || diff != 3 {
		t.Fatalf("diff = %v, err = %v", diff, err)
	}
	c := NewDense[float64](2, 3)
	if _, err := a.MaxAbsDiff(c); err == nil {
		t.Fatal("dimension mismatch must error")
	}
}

func TestEqualTolScalar(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1.05, 0.1, true},
		{1, 1.2, 0.1, false},
		{1e12, 1e12 * (1 + 1e-12), 1e-9, true},
		{0, 1e-12, 1e-9, true},
	}
	for _, c := range cases {
		if got := EqualTol(c.a, c.b, c.tol); got != c.want {
			t.Errorf("EqualTol(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestEqualTolNaN(t *testing.T) {
	nan := 0.0
	nan /= nan
	if EqualTol(nan, nan, 1) || EqualTol(nan, 0, 1) {
		t.Fatal("NaN must never compare equal")
	}
}

func TestCOOAppendValidate(t *testing.T) {
	m := NewCOO[float64](3, 3, 4)
	m.Append(0, 0, 1)
	m.Append(2, 1, 2)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m.Append(3, 0, 1) // out of range row
	if err := m.Validate(); err == nil {
		t.Fatal("out-of-range entry must fail validation")
	}
}

func TestCOOValidateInconsistentArrays(t *testing.T) {
	m := NewCOO[float64](2, 2, 2)
	m.Append(0, 0, 1)
	m.RowIdx = append(m.RowIdx, 1) // corrupt
	if err := m.Validate(); err == nil {
		t.Fatal("inconsistent arrays must fail validation")
	}
}

func TestCOOSortRowMajor(t *testing.T) {
	m := NewCOO[float64](3, 3, 4)
	m.Append(2, 0, 3)
	m.Append(0, 1, 1)
	m.Append(0, 0, 0.5)
	m.Append(1, 2, 2)
	if m.IsSortedRowMajor() {
		t.Fatal("should start unsorted")
	}
	m.SortRowMajor()
	if !m.IsSortedRowMajor() {
		t.Fatal("not sorted after SortRowMajor")
	}
	if m.RowIdx[0] != 0 || m.ColIdx[0] != 0 || m.Vals[0] != 0.5 {
		t.Fatalf("first triplet wrong: (%d,%d,%v)", m.RowIdx[0], m.ColIdx[0], m.Vals[0])
	}
}

func TestCOODedup(t *testing.T) {
	m := NewCOO[float64](2, 2, 4)
	m.Append(1, 1, 1)
	m.Append(0, 0, 2)
	m.Append(1, 1, 3)
	m.Append(0, 0, 4)
	merged := m.Dedup()
	if merged != 2 {
		t.Fatalf("merged = %d, want 2", merged)
	}
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
	d := m.ToDense()
	if d.At(0, 0) != 6 || d.At(1, 1) != 4 {
		t.Fatalf("dedup sums wrong: %v", d.Data)
	}
}

func TestCOODedupIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewCOO[float64](5, 5, 20)
		for i := 0; i < 20; i++ {
			m.Append(int32(rng.Intn(5)), int32(rng.Intn(5)), rng.Float64())
		}
		m.Dedup()
		before := m.NNZ()
		again := m.Dedup()
		return again == 0 && m.NNZ() == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCOODenseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(20)
		cols := 1 + rng.Intn(20)
		d := NewDense[float64](rows, cols)
		for i := 0; i < rows*cols/3; i++ {
			d.Set(rng.Intn(rows), rng.Intn(cols), rng.Float64()+0.1)
		}
		back := FromDense(d).ToDense()
		return d.EqualTol(back, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCOOTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewCOO[float64](7, 5, 12)
		for i := 0; i < 12; i++ {
			m.Append(int32(rng.Intn(7)), int32(rng.Intn(5)), rng.Float64()+0.1)
		}
		m.Dedup()
		tt := m.Transpose().Transpose()
		return m.ToDense().EqualTol(tt.ToDense(), 0) &&
			tt.Rows == m.Rows && tt.Cols == m.Cols
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCOORowCounts(t *testing.T) {
	m := NewCOO[float64](4, 4, 5)
	m.Append(0, 1, 1)
	m.Append(0, 2, 1)
	m.Append(3, 0, 1)
	counts := m.RowCounts()
	want := []int{2, 0, 0, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

func TestCOOClone(t *testing.T) {
	m := NewCOO[float64](2, 2, 1)
	m.Append(0, 1, 5)
	c := m.Clone()
	c.Vals[0] = 9
	if m.Vals[0] != 5 {
		t.Fatal("clone must not alias source")
	}
}

func TestBytesAccounting(t *testing.T) {
	d64 := NewDense[float64](4, 4)
	d32 := NewDense[float32](4, 4)
	if d64.Bytes() != 128 || d32.Bytes() != 64 {
		t.Fatalf("dense bytes: %d / %d", d64.Bytes(), d32.Bytes())
	}
	m := NewCOO[float64](4, 4, 0)
	m.Append(0, 0, 1)
	m.Append(1, 1, 1)
	if m.Bytes() != 2*(4+4+8) {
		t.Fatalf("coo bytes = %d", m.Bytes())
	}
}

func TestFloat32Support(t *testing.T) {
	d := NewDenseRand[float32](4, 4, 9)
	tr := d.Transpose()
	if tr.At(1, 2) != d.At(2, 1) {
		t.Fatal("float32 transpose broken")
	}
	if DefaultTol[float32]() <= DefaultTol[float64]() {
		t.Fatal("float32 tolerance must be looser than float64")
	}
}
