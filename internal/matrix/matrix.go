// Package matrix provides the fundamental dense and coordinate (COO) sparse
// matrix types used throughout the SpMM benchmark suite.
//
// All matrices are generic over the floating-point element type. The thesis
// uses 64-bit values throughout and notes in its future work (§6.3.5) that
// 32-bit values would halve the memory footprint; both are supported here.
package matrix

import (
	"errors"
	"fmt"
	"math"
)

// Float is the set of element types supported by the suite.
type Float interface {
	~float32 | ~float64
}

// ErrDimension is returned when matrix dimensions are inconsistent with the
// requested operation.
var ErrDimension = errors.New("matrix: dimension mismatch")

// ErrInvalid is returned when a matrix fails structural validation.
var ErrInvalid = errors.New("matrix: invalid structure")

// dimError builds a descriptive dimension-mismatch error.
func dimError(op string, details string) error {
	return fmt.Errorf("%w: %s: %s", ErrDimension, op, details)
}

// EqualTol reports whether two values are equal within both an absolute and
// a relative tolerance. It treats NaN as unequal to everything, matching the
// needs of result verification rather than IEEE semantics.
func EqualTol[T Float](a, b T, tol float64) bool {
	fa, fb := float64(a), float64(b)
	if math.IsNaN(fa) || math.IsNaN(fb) {
		return false
	}
	diff := math.Abs(fa - fb)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(fa), math.Abs(fb))
	return diff <= tol*scale
}

// DefaultTol returns a verification tolerance appropriate for the element
// type: sparse dot products accumulate rounding error proportional to the
// number of terms, so float32 needs a much looser bound than float64.
func DefaultTol[T Float]() float64 {
	var z T
	switch any(z).(type) {
	case float32:
		return 1e-3
	default:
		return 1e-9
	}
}
