package matrix

import (
	"fmt"
	"math/rand"
)

// Dense is a row-major dense matrix with an explicit stride, so views and
// padded layouts share the same type. For a freshly allocated matrix
// Stride == Cols.
type Dense[T Float] struct {
	Rows, Cols int
	// Stride is the distance in elements between the starts of consecutive
	// rows in Data. Stride >= Cols.
	Stride int
	Data   []T
}

// NewDense allocates a zeroed rows×cols dense matrix with Stride == cols.
func NewDense[T Float](rows, cols int) *Dense[T] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: NewDense(%d, %d): negative dimension", rows, cols))
	}
	return &Dense[T]{
		Rows:   rows,
		Cols:   cols,
		Stride: cols,
		Data:   make([]T, rows*cols),
	}
}

// NewDenseRand allocates a rows×cols matrix filled with deterministic
// pseudo-random values in [-1, 1) drawn from the given seed. The benchmark
// suite uses this to build the dense B operand, mirroring the thesis suite
// which "automatically generates a dense matrix" (§6.3.4).
func NewDenseRand[T Float](rows, cols int, seed int64) *Dense[T] {
	d := NewDense[T](rows, cols)
	rng := rand.New(rand.NewSource(seed))
	for i := range d.Data {
		d.Data[i] = T(rng.Float64()*2 - 1)
	}
	return d
}

// At returns the element at row i, column j.
func (d *Dense[T]) At(i, j int) T { return d.Data[i*d.Stride+j] }

// Set assigns the element at row i, column j.
func (d *Dense[T]) Set(i, j int, v T) { d.Data[i*d.Stride+j] = v }

// Row returns the slice backing row i (length Cols). Mutating the returned
// slice mutates the matrix.
func (d *Dense[T]) Row(i int) []T {
	off := i * d.Stride
	return d.Data[off : off+d.Cols]
}

// Zero sets every element to zero, leaving dimensions unchanged.
func (d *Dense[T]) Zero() {
	if d.Stride == d.Cols {
		clear(d.Data[:d.Rows*d.Cols])
		return
	}
	for i := 0; i < d.Rows; i++ {
		clear(d.Row(i))
	}
}

// Clone returns a deep copy with a compact stride.
func (d *Dense[T]) Clone() *Dense[T] {
	c := NewDense[T](d.Rows, d.Cols)
	for i := 0; i < d.Rows; i++ {
		copy(c.Row(i), d.Row(i))
	}
	return c
}

// Transpose returns a newly allocated transpose of d. It is written with
// blocked traversal so the transposition itself is cache-friendly; the
// transpose study (Study 8) charges this cost against the transposed
// kernels.
func (d *Dense[T]) Transpose() *Dense[T] {
	t := NewDense[T](d.Cols, d.Rows)
	const bs = 32
	for ii := 0; ii < d.Rows; ii += bs {
		iEnd := min(ii+bs, d.Rows)
		for jj := 0; jj < d.Cols; jj += bs {
			jEnd := min(jj+bs, d.Cols)
			for i := ii; i < iEnd; i++ {
				row := d.Data[i*d.Stride:]
				for j := jj; j < jEnd; j++ {
					t.Data[j*t.Stride+i] = row[j]
				}
			}
		}
	}
	return t
}

// EqualTol reports whether d and o have identical dimensions and all
// elements equal within tol (see EqualTol on scalars).
func (d *Dense[T]) EqualTol(o *Dense[T], tol float64) bool {
	if d.Rows != o.Rows || d.Cols != o.Cols {
		return false
	}
	for i := 0; i < d.Rows; i++ {
		dr, or := d.Row(i), o.Row(i)
		for j := range dr {
			if !EqualTol(dr[j], or[j], tol) {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the maximum absolute elementwise difference between d
// and o. Dimensions must match.
func (d *Dense[T]) MaxAbsDiff(o *Dense[T]) (float64, error) {
	if d.Rows != o.Rows || d.Cols != o.Cols {
		return 0, dimError("MaxAbsDiff",
			fmt.Sprintf("%dx%d vs %dx%d", d.Rows, d.Cols, o.Rows, o.Cols))
	}
	var worst float64
	for i := 0; i < d.Rows; i++ {
		dr, or := d.Row(i), o.Row(i)
		for j := range dr {
			diff := float64(dr[j]) - float64(or[j])
			if diff < 0 {
				diff = -diff
			}
			if diff > worst {
				worst = diff
			}
		}
	}
	return worst, nil
}

// Bytes reports the memory footprint of the element storage in bytes
// (future-work §6.3.5 asks the suite to account for memory).
func (d *Dense[T]) Bytes() int {
	var z T
	return len(d.Data) * int(sizeOf(z))
}

// View returns a sub-matrix view sharing storage with d, spanning rows
// [r0, r0+rows) and columns [c0, c0+cols).
func (d *Dense[T]) View(r0, c0, rows, cols int) (*Dense[T], error) {
	if r0 < 0 || c0 < 0 || rows < 0 || cols < 0 || r0+rows > d.Rows || c0+cols > d.Cols {
		return nil, dimError("View",
			fmt.Sprintf("view [%d:%d, %d:%d] of %dx%d", r0, r0+rows, c0, c0+cols, d.Rows, d.Cols))
	}
	return &Dense[T]{
		Rows:   rows,
		Cols:   cols,
		Stride: d.Stride,
		Data:   d.Data[r0*d.Stride+c0:],
	}, nil
}

func sizeOf[T Float](T) uintptr {
	var z T
	switch any(z).(type) {
	case float32:
		return 4
	default:
		return 8
	}
}
