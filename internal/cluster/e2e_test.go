package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestClusterSmokeE2E is the real-binary cluster smoke: spmmrouter fronting
// three spmmserve processes, driven by spmmload through the router. The
// matrix replicates to a second holder under load, one holder is SIGKILLed
// mid-run, and the load generator still finishes with zero failures and
// every response verified bitwise — then the prober marks the corpse down,
// a fourth replica joins live, and a follow-up load run verifies the
// rebalanced cluster end to end.
func TestClusterSmokeE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes; skipped with -short")
	}

	bin := t.TempDir()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, cmd := range []string{"spmmserve", "spmmrouter", "spmmload"} {
		build := exec.Command("go", "build", "-o", filepath.Join(bin, cmd), "./cmd/"+cmd)
		build.Dir = root
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", cmd, err, out)
		}
	}

	reserve := func() string {
		t.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr
	}
	waitHealthy := func(addr, what string, proc *exec.Cmd) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get("http://" + addr + "/healthz")
			if err == nil {
				resp.Body.Close()
				return
			}
			if time.Now().After(deadline) {
				proc.Process.Kill()
				t.Fatalf("%s never became healthy on %s: %v", what, addr, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	startReplicaProc := func(name string) (string, *exec.Cmd) {
		t.Helper()
		addr := reserve()
		srv := exec.Command(filepath.Join(bin, "spmmserve"), "-addr", addr, "-t", "1")
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			srv.Process.Kill()
			srv.Wait()
		})
		waitHealthy(addr, "replica "+name, srv)
		return addr, srv
	}

	names := []string{"r0", "r1", "r2"}
	procs := map[string]*exec.Cmd{}
	var fleet []string
	for _, name := range names {
		addr, srv := startReplicaProc(name)
		procs[name] = srv
		fleet = append(fleet, name+"=http://"+addr)
	}

	routerAddr := reserve()
	router := exec.Command(filepath.Join(bin, "spmmrouter"),
		"-addr", routerAddr, "-replicas", strings.Join(fleet, ","),
		"-probe-interval", "200ms", "-probe-timeout", "150ms", "-eject-after", "2",
		"-attempt-timeout", "2s", "-replicate-after", "4", "-max-holders", "2")
	if err := router.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		router.Process.Kill()
		router.Wait()
	})
	waitHealthy(routerAddr, "router", router)

	clusterState := func() Stats {
		t.Helper()
		resp, err := http.Get("http://" + routerAddr + "/v1/cluster")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st Stats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	// Drive load through the router. Retries ride out shed windows; the
	// verification oracle is spmmload's own serial kernel.
	load := exec.Command(filepath.Join(bin, "spmmload"),
		"-addr", "http://"+routerAddr, "-matrix", "dw4096", "-scale", "0.05",
		"-workers", "4", "-n", "150", "-k", "8", "-retries", "8", "-retry-conn")
	stdout, err := load.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	load.Stderr = load.Stdout
	if err := load.Start(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(stdout)
	var out strings.Builder
	var matrixID string
	for sc.Scan() {
		line := sc.Text()
		out.WriteString(line + "\n")
		if strings.HasPrefix(line, "registered ") {
			matrixID = strings.TrimSuffix(strings.Fields(line)[1], ":")
			break
		}
	}
	if matrixID == "" {
		load.Wait()
		t.Fatalf("spmmload never registered:\n%s", out.String())
	}

	// Wait for hot replication to give the matrix a second holder, then
	// SIGKILL the primary mid-load. The router must absorb the loss.
	var victim string
	deadline := time.Now().Add(15 * time.Second)
	for victim == "" {
		if time.Now().After(deadline) {
			load.Process.Kill()
			t.Fatalf("matrix %s never gained a second holder; placements: %v",
				matrixID, clusterState().Placements)
		}
		if holders := clusterState().Placements[matrixID]; len(holders) >= 2 {
			victim = holders[0]
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := procs[victim].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	procs[victim].Wait()

	for sc.Scan() {
		out.WriteString(sc.Text() + "\n")
	}
	if err := load.Wait(); err != nil {
		t.Fatalf("spmmload failed across the replica kill: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "verified: all") {
		t.Fatalf("spmmload finished without bitwise verification:\n%s", text)
	}
	summary := regexp.MustCompile(`(\d+) ok, (\d+) shed \(429\), (\d+) failed`).FindStringSubmatch(text)
	if summary == nil {
		t.Fatalf("no load summary in output:\n%s", text)
	}
	ok, _ := strconv.Atoi(summary[1])
	shed, _ := strconv.Atoi(summary[2])
	failed, _ := strconv.Atoi(summary[3])
	if failed != 0 {
		t.Fatalf("%d requests failed across the kill (want 0):\n%s", failed, text)
	}
	if shed > 15 { // 10% of -n: retries must absorb overload, not mask a stall
		t.Fatalf("shed rate too high: %d of 150 requests shed:\n%s", shed, text)
	}
	if ok+shed != 150 {
		t.Fatalf("load accounting: %d ok + %d shed != 150:\n%s", ok, shed, text)
	}

	// Recovery: the prober marks the killed replica down.
	deadline = time.Now().Add(10 * time.Second)
	for {
		st := clusterState()
		down := false
		for _, rs := range st.Replicas {
			if rs.Name == victim && rs.Down {
				down = true
			}
		}
		if down {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober never ejected killed replica %s: %+v", victim, st.Replicas)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Rebalance: a fresh replica joins the live cluster; moved matrices are
	// warmed on it before cutover, and a follow-up verified load run proves
	// the rebalanced fleet still answers bitwise.
	joinAddr, _ := startReplicaProc("r3")
	payload := fmt.Sprintf(`{"name":"r3","base":"http://%s"}`, joinAddr)
	resp, err := http.Post("http://"+routerAddr+"/v1/cluster/join", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var join JoinResponse
	if err := json.NewDecoder(resp.Body).Decode(&join); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join returned %d", resp.StatusCode)
	}
	if len(join.Ring) != 4 {
		t.Fatalf("post-join ring %v, want 4 members", join.Ring)
	}

	verify := exec.Command(filepath.Join(bin, "spmmload"),
		"-addr", "http://"+routerAddr, "-matrix", "dw4096", "-scale", "0.05",
		"-workers", "2", "-n", "20", "-k", "8", "-retries", "8", "-retry-conn")
	vout, err := verify.CombinedOutput()
	if err != nil {
		t.Fatalf("post-join load failed: %v\n%s", err, vout)
	}
	if !strings.Contains(string(vout), "verified: all") {
		t.Fatalf("post-join load finished without bitwise verification:\n%s", vout)
	}
	fmt.Println("cluster e2e: survived SIGKILL of a holder mid-load, ejected it, joined a replacement, verified bitwise throughout")
}
