package cluster

import (
	"testing"
)

// TestClusterShardsAndServes is the tentpole smoke: matrices registered
// through the router shard across the fleet by content address, every
// multiply answers bitwise-identical to single-node serving, and the
// response names the replica that did the work — which must be the ring
// owner when nothing is failing.
func TestClusterShardsAndServes(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	mats := tc.registerMatrices(12)

	st := tc.clusterStats()
	if st.Matrices != len(mats) {
		t.Fatalf("cluster tracks %d matrices, registered %d", st.Matrices, len(mats))
	}
	if len(st.Ring) != 3 {
		t.Fatalf("ring has %d members, want 3: %v", len(st.Ring), st.Ring)
	}
	// Content addressing spreads 12 IDs over 3 replicas; with these fixed
	// seeds every replica owns at least one (a determinism check as much
	// as a balance one — the placement is a pure function of the data).
	owned := map[string]int{}
	ring := tc.router.ring.Load()
	for _, m := range mats {
		owner := ring.Owner(m.reg.ID)
		owned[owner]++
		holders := st.Placements[m.reg.ID]
		if len(holders) != 1 || holders[0] != owner {
			t.Fatalf("matrix %s placed on %v, want exactly its ring owner %s", m.reg.ID, holders, owner)
		}
	}
	if len(owned) != 3 {
		t.Fatalf("12 IDs landed on only %d of 3 replicas: %v", len(owned), owned)
	}

	for i, m := range mats {
		res := tc.multiplyBoth(m, 4, int64(50+i))
		if want := ring.Owner(m.reg.ID); res.Replica != want {
			t.Fatalf("matrix %s served by %s, want its ring owner %s", m.reg.ID, res.Replica, want)
		}
	}

	// Re-registration through the router is idempotent and routes to the
	// existing holder.
	again, err := tc.client.Register(randomTriplets(60, 45, 350, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Existed || again.ID != mats[0].reg.ID {
		t.Fatalf("re-register: got id=%s existed=%v, want %s/true", again.ID, again.Existed, mats[0].reg.ID)
	}

	// The serve-protocol read endpoints work against the router unchanged.
	infos, err := tc.client.Matrices()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(mats) {
		t.Fatalf("router list has %d matrices, want %d", len(infos), len(mats))
	}
	stats, err := tc.client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Matrices != len(mats) || stats.Multiplies < int64(len(mats)) {
		t.Fatalf("aggregated stats: matrices=%d multiplies=%d, want %d and >= %d",
			stats.Matrices, stats.Multiplies, len(mats), len(mats))
	}
}

// TestJoinMovesBoundedAndWarm pins the rebalance-without-drain contract: a
// replica join moves at most ~1/N of matrix IDs (acceptance bound: 40%),
// every moved ID's first multiply on the new owner is a prepared-cache HIT
// (warmed before cutover), and unmoved IDs never change placement.
func TestJoinMovesBoundedAndWarm(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	mats := tc.registerMatrices(12)

	before := tc.clusterStats()
	oldRing := tc.router.ring.Load()
	oldOwner := map[string]string{}
	for _, m := range mats {
		oldOwner[m.reg.ID] = oldRing.Owner(m.reg.ID)
	}

	join := tc.addReplica("r3")
	if join.Matrices != len(mats) {
		t.Fatalf("join response counts %d matrices, want %d", join.Matrices, len(mats))
	}
	if len(join.Ring) != 4 {
		t.Fatalf("post-join ring %v, want 4 members", join.Ring)
	}
	if join.Moved == 0 {
		t.Fatal("join moved nothing — with 12 IDs and a quarter of the ring, the new replica must own some")
	}
	if frac := float64(join.Moved) / float64(len(mats)); frac > 0.40 {
		t.Fatalf("join moved %.0f%% of IDs, acceptance bound is 40%%", 100*frac)
	}

	after := tc.clusterStats()
	if got := after.Moves - before.Moves; got != int64(join.Moved) {
		t.Fatalf("moves counter rose by %d, join reported %d", got, join.Moved)
	}

	newRing := tc.router.ring.Load()
	movedSeen := 0
	for i, m := range mats {
		newOwner := newRing.Owner(m.reg.ID)
		res := tc.multiplyBoth(m, 4, int64(500+i))
		if newOwner == oldOwner[m.reg.ID] {
			// Unmoved: placement must not have churned.
			holders := after.Placements[m.reg.ID]
			if len(holders) != 1 || holders[0] != oldOwner[m.reg.ID] {
				t.Fatalf("unmoved matrix %s has placement %v, want [%s]", m.reg.ID, holders, oldOwner[m.reg.ID])
			}
			continue
		}
		movedSeen++
		if newOwner != "r3" {
			t.Fatalf("matrix %s moved %s -> %s; a join may only move IDs onto the joiner",
				m.reg.ID, oldOwner[m.reg.ID], newOwner)
		}
		if res.Replica != "r3" {
			t.Fatalf("moved matrix %s served by %s after cutover, want r3", m.reg.ID, res.Replica)
		}
		// The warm-before-cutover guarantee: the FIRST multiply routed to
		// the new owner finds the prepared format resident.
		if !res.CacheHit {
			t.Fatalf("moved matrix %s: first multiply on r3 was not a cache hit — cutover before warm", m.reg.ID)
		}
		// The old owner stays in the holder set as a failover secondary.
		holders := after.Placements[m.reg.ID]
		if len(holders) != 2 {
			t.Fatalf("moved matrix %s holders %v, want old owner + r3", m.reg.ID, holders)
		}
	}
	if movedSeen != join.Moved {
		t.Fatalf("ring says %d IDs moved, join reported %d", movedSeen, join.Moved)
	}
}

// TestLeaveRehomesSoleHolders pins graceful leave: matrices solely held by
// the leaver re-home (pulled from it while still up, warmed on the new
// owner), the leaver drops out of ring and placements, and every multiply
// still answers bitwise-identical.
func TestLeaveRehomesSoleHolders(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	mats := tc.registerMatrices(9)

	var out LeaveResponse
	if err := postJSON(tc.front.URL+"/v1/cluster/leave", LeaveRequest{Name: "r1"}, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Ring) != 2 {
		t.Fatalf("post-leave ring %v, want 2 members", out.Ring)
	}
	st := tc.clusterStats()
	for id, holders := range st.Placements {
		if len(holders) == 0 {
			t.Fatalf("matrix %s lost all holders on leave", id)
		}
		for _, h := range holders {
			if h == "r1" {
				t.Fatalf("matrix %s still placed on departed replica: %v", id, holders)
			}
		}
	}
	ring := tc.router.ring.Load()
	for i, m := range mats {
		res := tc.multiplyBoth(m, 3, int64(900+i))
		if res.Replica == "r1" {
			t.Fatalf("matrix %s served by departed replica", m.reg.ID)
		}
		if want := ring.Owner(m.reg.ID); res.Replica != want {
			t.Fatalf("matrix %s served by %s, want post-leave owner %s", m.reg.ID, res.Replica, want)
		}
	}
}

// TestHotReplicationAndSpillover covers the replication policy: a matrix
// crossing the serve-count threshold gains a second holder (registered and
// warmed off the request path), and once it has one, a loaded primary
// spills multiplies onto the less-loaded secondary.
func TestHotReplicationAndSpillover(t *testing.T) {
	tc := newTestCluster(t, 2, func(cfg *Config) {
		cfg.ReplicateAfter = 3
		cfg.MaxHolders = 2
		cfg.SpillMargin = 2
	})
	mats := tc.registerMatrices(1)
	m := mats[0]

	for i := 0; i < 3; i++ {
		tc.multiplyBoth(m, 4, int64(10+i))
	}
	waitFor(t, "hot matrix to replicate", func() bool {
		st := tc.clusterStats()
		return st.Replications == 1 && len(st.Placements[m.reg.ID]) == 2
	})
	st := tc.clusterStats()
	holders := st.Placements[m.reg.ID]
	primary, secondary := holders[0], holders[1]

	// An unloaded primary keeps serving its ID.
	if res := tc.multiplyBoth(m, 4, 20); res.Replica != primary {
		t.Fatalf("idle cluster: served by %s, want primary %s", res.Replica, primary)
	}

	// Pile synthetic in-flight load on the primary: the next multiply must
	// spill to the secondary — and still answer bitwise-identical.
	tc.router.mu.Lock()
	prim := tc.router.replicas[primary]
	tc.router.mu.Unlock()
	prim.inFlight.Add(10)
	res := tc.multiplyBoth(m, 4, 21)
	prim.inFlight.Add(-10)
	if res.Replica != secondary {
		t.Fatalf("loaded primary: served by %s, want spillover to %s", res.Replica, secondary)
	}
	if !res.CacheHit {
		t.Fatalf("spillover multiply missed the cache — replication did not warm the secondary")
	}
	if got := tc.clusterStats().Spillovers; got < 1 {
		t.Fatalf("spillover counter = %d, want >= 1", got)
	}
}
