package cluster

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/matrix"
	"repro/internal/serve"
	"repro/internal/trace"
)

// End-to-end distributed request tracing: one request ID minted at the
// router must show up on the router's attempt spans, on the winning
// replica's queue/batch/kernel spans, in the slow-request log line, and in
// the stitched multi-process Chrome export — all under a scripted failover,
// and all racing real goroutines (the whole package runs under -race in
// scripts/check.sh).

// logBuffer is a goroutine-safe sink for the router's slog output.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// tracedCluster builds a 3-replica cluster with request tracing on at every
// hop and the router's slow-request threshold at 1ns (every request logs).
func tracedCluster(t *testing.T, logbuf *logBuffer, mutate func(*Config)) *testCluster {
	return newTestClusterServe(t, 3,
		func(cfg *Config) {
			cfg.ReplicateAfter = 1
			cfg.MaxHolders = 2
			cfg.SpillMargin = 1000
			cfg.ReqTraceRing = 64
			cfg.SlowRequest = time.Nanosecond
			cfg.Slog = slog.New(slog.NewTextHandler(logbuf, nil))
			if mutate != nil {
				mutate(cfg)
			}
		},
		func(sc *serve.Config) { sc.ReqTraceRing = 64 },
	)
}

// registerBig uploads one kernel-dominated matrix through the router and
// the reference, warms it, and waits until it has a second warmed holder.
func registerBig(t *testing.T, tc *testCluster) *testMatrix {
	t.Helper()
	rr := randomTriplets(800, 600, 40000, 4242)
	reg, err := tc.client.Register(rr)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := tc.refClient.Register(rr)
	if err != nil {
		t.Fatal(err)
	}
	if reg.ID != ref.ID {
		t.Fatalf("cluster hashed %s, reference %s", reg.ID, ref.ID)
	}
	m := &testMatrix{reg: reg}
	tc.multiplyBoth(m, 4, 4300)
	waitFor(t, "the matrix to gain a second holder", func() bool {
		return len(tc.clusterStats().Placements[reg.ID]) == 2
	})
	return m
}

// chromeDoc is the parsed stitched export.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func fetchStitched(t *testing.T, tc *testCluster, rid string) chromeDoc {
	t.Helper()
	resp, err := http.Get(tc.front.URL + "/v1/trace/requests/" + rid + "/chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stitched export returned %d", resp.StatusCode)
	}
	var doc chromeDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("stitched export is not valid JSON: %v", err)
	}
	return doc
}

// TestRequestTracePropagation is the tentpole acceptance scenario: a
// multiply against a hung primary fails over on the scripted attempt
// timeout, and afterwards ONE request ID correlates the router's
// attempt-remote spans, the winning replica's phase spans, the
// slow-request log line, and the stitched Chrome trace's process rows.
func TestRequestTracePropagation(t *testing.T) {
	var logbuf logBuffer
	tc := tracedCluster(t, &logbuf, func(cfg *Config) {
		cfg.AttemptTimeout = 2 * time.Second // virtual; fires on Advance
	})
	m := registerBig(t, tc)

	holders := tc.clusterStats().Placements[m.reg.ID]
	primary, secondary := holders[0], holders[1]

	const k = 64
	b := matrix.NewDenseRand[float64](m.reg.Cols, k, 4400)
	want, err := tc.refClient.Multiply(m.reg.ID, m.reg.Rows, b, k, 0)
	if err != nil {
		t.Fatal(err)
	}

	tc.replicas[primary].gate.hang()
	done := make(chan *serve.MultiplyResult, 1)
	fail := make(chan error, 1)
	go func() {
		res, err := tc.client.Multiply(m.reg.ID, m.reg.Rows, b, k, 0)
		if err != nil {
			fail <- err
			return
		}
		done <- res
	}()
	tc.router.mu.Lock()
	primRep := tc.router.replicas[primary]
	tc.router.mu.Unlock()
	waitFor(t, "the multiply to park on the hung primary", func() bool {
		return primRep.inFlight.Load() >= 1
	})
	tc.clk.Advance(2 * time.Second)

	var res *serve.MultiplyResult
	select {
	case err := <-fail:
		t.Fatalf("traced failover multiply errored: %v", err)
	case res = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("multiply wedged past the scripted attempt timeout")
	}
	if diff, _ := res.C.MaxAbsDiff(want.C); diff != 0 {
		t.Fatalf("failover result differs from single-node by %g", diff)
	}
	if res.Replica != secondary {
		t.Fatalf("failover served by %s, want secondary %s", res.Replica, secondary)
	}
	rid := res.RequestID
	if rid == "" {
		t.Fatal("failover response carries no request ID")
	}
	if !res.Timing.Valid() {
		t.Fatal("failover response carries no X-Spmm-Timing")
	}

	// Router record: attempt spans in order — primary timeout, secondary ok.
	routerRecs, err := tc.client.TraceRequests(rid, "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(routerRecs) != 1 {
		t.Fatalf("router ring has %d records for %s", len(routerRecs), rid)
	}
	rrec := routerRecs[0]
	if rrec.Matrix != m.reg.ID {
		t.Fatalf("router record matrix = %s, want %s", rrec.Matrix, m.reg.ID)
	}
	var attempts []string
	for _, p := range rrec.Phases {
		if p.Phase == trace.PhaseAttemptRemote {
			attempts = append(attempts, p.Detail)
		}
	}
	if len(attempts) != 2 {
		t.Fatalf("router record has %d attempt spans, want 2: %v", len(attempts), attempts)
	}
	if attempts[0] != primary+" timeout" {
		t.Fatalf("attempt 1 = %q, want %q", attempts[0], primary+" timeout")
	}
	if attempts[1] != secondary+" ok" {
		t.Fatalf("attempt 2 = %q, want %q", attempts[1], secondary+" ok")
	}

	// Distributed accounting: the router's phase spans (panel read, both
	// attempts, respond) must account for its end-to-end total within 5% —
	// nothing the request waited on goes missing from the timeline.
	var sum float64
	for _, p := range rrec.Phases {
		sum += p.Ms
	}
	if gap := rrec.TotalMs - sum; gap < 0 || gap > 0.05*rrec.TotalMs {
		t.Errorf("router phase sum %.3f ms vs total %.3f ms: gap outside [0, 5%%]", sum, rrec.TotalMs)
	}

	// Winning replica's ring: the SAME rid, with the serving-side phases.
	repRecs := tc.replicas[secondary].srv.RequestTraces().Snapshot(trace.ReqFilter{ID: rid})
	if len(repRecs) != 1 {
		t.Fatalf("replica %s ring has %d records for %s", secondary, len(repRecs), rid)
	}
	repPhases := map[string]bool{}
	for _, sp := range repRecs[0].Spans {
		repPhases[sp.Name] = true
	}
	for _, phase := range []string{trace.PhaseQueue, trace.PhaseBatch, trace.PhaseKernel, trace.PhaseRespond} {
		if !repPhases[phase] {
			t.Errorf("replica record missing %q span: has %v", phase, repPhases)
		}
	}

	// The relayed X-Spmm-Timing is the winning replica's breakdown and must
	// itself account for the replica-side total within 5%.
	if gap := res.Timing.TotalMs - res.Timing.SumMs(); gap < -0.001 || gap > 0.05*res.Timing.TotalMs {
		t.Errorf("relayed timing sum %.3f ms vs total %.3f ms: gap outside [0, 5%%]",
			res.Timing.SumMs(), res.Timing.TotalMs)
	}

	// Slow-request log line, correlated by rid.
	out := logbuf.String()
	if !strings.Contains(out, "slow request") || !strings.Contains(out, rid) {
		t.Fatalf("router log has no rid-correlated slow-request line:\n%s", out)
	}

	// Stitched Chrome export: router + winning replica on separate process
	// rows, attempts on the router row, kernel on the replica row.
	doc := fetchStitched(t, tc, rid)
	procNames := map[int]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procNames[ev.Pid], _ = ev.Args["name"].(string)
		}
	}
	if len(procNames) < 2 {
		t.Fatalf("stitched trace has %d process rows, want router + replica: %v", len(procNames), procNames)
	}
	var routerPid, replicaPid int
	for pid, name := range procNames {
		switch name {
		case "router":
			routerPid = pid
		case "replica " + secondary:
			replicaPid = pid
		}
	}
	if routerPid == 0 || replicaPid == 0 {
		t.Fatalf("stitched trace rows = %v, want \"router\" and %q", procNames, "replica "+secondary)
	}
	attemptsOnRouter, kernelOnReplica := 0, 0
	var attempt2Start float64
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		switch {
		case ev.Name == trace.PhaseAttemptRemote:
			if ev.Pid != routerPid {
				t.Errorf("attempt-remote span on pid %d, want router pid %d", ev.Pid, routerPid)
			}
			attemptsOnRouter++
			if detail, _ := ev.Args["detail"].(string); strings.HasSuffix(detail, " ok") {
				attempt2Start = ev.Ts
			}
		case ev.Name == trace.PhaseKernel:
			if ev.Pid != replicaPid {
				t.Errorf("kernel span on pid %d, want replica pid %d", ev.Pid, replicaPid)
			}
			kernelOnReplica++
			if ev.Ts < attempt2Start {
				t.Errorf("kernel span at ts=%v starts before the winning attempt at ts=%v", ev.Ts, attempt2Start)
			}
		}
	}
	if attemptsOnRouter != 2 || kernelOnReplica == 0 {
		t.Fatalf("stitched trace: %d attempt spans on router, %d kernel spans on replica", attemptsOnRouter, kernelOnReplica)
	}

	// Satellite 1 observability: the hang also drove cluster counters.
	st := tc.clusterStats()
	if st.Failovers < 1 {
		t.Fatalf("cluster failovers = %d, want >= 1", st.Failovers)
	}
	var winner *ReplicaStats
	for i := range st.Replicas {
		if st.Replicas[i].Name == secondary {
			winner = &st.Replicas[i]
		}
		if st.Replicas[i].SinceStateChangeSec < 0 {
			t.Errorf("replica %s reports negative since_state_change_sec", st.Replicas[i].Name)
		}
	}
	if winner == nil || winner.Failovers < 1 {
		t.Fatalf("winning replica %s reports no failover serves: %+v", secondary, winner)
	}
}

// TestFailoverRelaysWinningHeaders pins the metadata path on failover: a
// replica killed mid-multiply must not leave its fingerprints on the
// response — every serving header (replica, format, variant, cache verdict,
// timing, request ID) comes from the attempt that actually succeeded.
func TestFailoverRelaysWinningHeaders(t *testing.T) {
	var logbuf logBuffer
	tc := tracedCluster(t, &logbuf, nil)
	mats := tc.registerMatrices(3)
	replicateAll(t, tc, mats)

	m := mats[0]
	holders := tc.clusterStats().Placements[m.reg.ID]
	victim := holders[0]

	const k = 8
	b := matrix.NewDenseRand[float64](m.reg.Cols, k, 5100)
	want, err := tc.refClient.Multiply(m.reg.ID, m.reg.Rows, b, k, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Park the multiply inside the victim, then kill it mid-flight.
	tc.replicas[victim].gate.slow(500 * time.Millisecond)
	tc.router.mu.Lock()
	victimRep := tc.router.replicas[victim]
	tc.router.mu.Unlock()
	result := make(chan *serve.MultiplyResult, 1)
	fail := make(chan error, 1)
	go func() {
		res, err := tc.client.Multiply(m.reg.ID, m.reg.Rows, b, k, 0)
		if err != nil {
			fail <- err
			return
		}
		result <- res
	}()
	waitFor(t, "the multiply to park inside the victim", func() bool {
		return victimRep.inFlight.Load() >= 1
	})
	tc.replicas[victim].kill()

	var res *serve.MultiplyResult
	select {
	case err := <-fail:
		t.Fatalf("kill-mid-multiply failover errored: %v", err)
	case res = <-result:
	case <-time.After(10 * time.Second):
		t.Fatal("multiply wedged after the mid-flight kill")
	}
	if diff, _ := res.C.MaxAbsDiff(want.C); diff != 0 {
		t.Fatalf("failover result differs from single-node by %g", diff)
	}

	// The whole header set must be the survivor's.
	if res.Replica == victim || res.Replica == "" {
		t.Fatalf("X-Spmm-Replica = %q after killing %s; must name the survivor", res.Replica, victim)
	}
	if res.Format == "" || res.Variant == "" {
		t.Fatalf("failover response lost format/variant metadata: %+v", res)
	}
	if !res.CacheHit {
		t.Fatal("failover response reports a cache miss; the replicated holder was warmed")
	}
	if res.BatchWidth < 1 || res.BatchK < k {
		t.Fatalf("failover response lost batch metadata: width=%d k=%d", res.BatchWidth, res.BatchK)
	}
	if res.RequestID == "" || !res.Timing.Valid() {
		t.Fatalf("failover response lost tracing headers: rid=%q timing=%+v", res.RequestID, res.Timing)
	}
	if res.Timing.Ms(trace.PhaseKernel) <= 0 {
		t.Fatalf("relayed timing has no kernel phase: %+v", res.Timing.Phases)
	}

	// The survivor's ring must hold the rid; the timing header must be its
	// record, not the victim's (the victim never finished a kernel for it).
	surv := tc.replicas[res.Replica].srv.RequestTraces().Snapshot(trace.ReqFilter{ID: res.RequestID})
	if len(surv) != 1 {
		t.Fatalf("survivor %s ring has %d records for %s", res.Replica, len(surv), res.RequestID)
	}
	var survKernelMs float64
	for _, sp := range surv[0].Spans {
		if sp.Name == trace.PhaseKernel {
			survKernelMs += float64(sp.Dur) / 1e6
		}
	}
	if diff := survKernelMs - res.Timing.Ms(trace.PhaseKernel); diff > 0.001 || diff < -0.001 {
		t.Fatalf("relayed kernel timing %.3f ms is not the survivor's %.3f ms",
			res.Timing.Ms(trace.PhaseKernel), survKernelMs)
	}

	// Router record names the victim in a failed attempt, the survivor in
	// the winning one.
	recs, err := tc.client.TraceRequests(res.RequestID, "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("router ring has %d records", len(recs))
	}
	var details []string
	for _, p := range recs[0].Phases {
		if p.Phase == trace.PhaseAttemptRemote {
			details = append(details, p.Detail)
		}
	}
	if len(details) < 2 {
		t.Fatalf("router record has %d attempts, want >= 2: %v", len(details), details)
	}
	first, last := details[0], details[len(details)-1]
	if !strings.HasPrefix(first, victim+" ") || strings.HasSuffix(first, " ok") {
		t.Fatalf("first attempt %q should be a failed attempt on the victim %s", first, victim)
	}
	if last != res.Replica+" ok" {
		t.Fatalf("last attempt %q should be %q", last, res.Replica+" ok")
	}
}
