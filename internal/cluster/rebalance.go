package cluster

import (
	"fmt"

	"repro/internal/serve"
)

// Rebalance without drain. A ring change (join/leave) re-homes only the IDs
// whose arc changed hands — the consistent-hashing guarantee the ring tests
// pin — and each of those IDs cuts over independently:
//
//  1. The ID is PINNED to its current primary holder. The new ring is
//     installed immediately (new registrations and unmoved IDs use it at
//     once), but the pin overrides placement for the moved ID, so requests
//     — including ones already in flight — keep completing on the old
//     owner. Nothing drains, nothing queues.
//  2. The matrix is registered on its new owner: via its generator spec
//     when it has one (a few bytes on the wire), otherwise by pulling the
//     canonical triplets from a live holder's registry-metadata export.
//     Content addressing makes this step idempotent and self-verifying —
//     the new owner must hash the upload back to the same ID.
//  3. The new owner's prepared-format cache is warmed (POST .../prepare),
//     so its first routed multiply is a cache hit, not a prepare stall.
//  4. The pin clears. From this instant plan() routes the ID to the new
//     owner; the old owner remains in the holder set as a failover
//     secondary (content addressing keeps its copy correct forever).
//
// A failure in steps 2–3 just clears the pin and leaves the old placement
// serving — the ring says the new owner, but plan() only routes to
// registered holders, so traffic never lands on a replica that missed its
// warm-up.

// Join adds a replica to the fleet and re-homes the matrix IDs the new
// ring assigns to it, warming each before cutover. It returns how many IDs
// moved. Requests keep flowing throughout.
func (rt *Router) Join(spec JoinRequest) (int, error) {
	if spec.Name == "" || spec.Base == "" {
		return 0, fmt.Errorf("cluster: join needs name and base, got %+v", spec)
	}
	rt.mu.Lock()
	if _, dup := rt.replicas[spec.Name]; dup {
		rt.mu.Unlock()
		return 0, fmt.Errorf("cluster: replica %q already joined", spec.Name)
	}
	rep := newReplica(spec)
	rt.replicas[spec.Name] = rep
	old := rt.ring.Load()
	next := old.With(spec.Name)
	var moved []*entry
	for id, e := range rt.entries {
		if next.Owner(id) != old.Owner(id) {
			if len(e.holders) > 0 {
				e.pinned = e.holders[0]
			}
			moved = append(moved, e)
		}
	}
	rt.ring.Store(next)
	obsRingSize.Set(float64(next.Len()))
	rt.mu.Unlock()
	rt.logf("cluster: %s joined; ring %v; %d matrices to move", spec.Name, next.Members(), len(moved))

	count := 0
	var lastErr error
	for _, e := range moved {
		if err := rt.moveEntry(rep, e); err != nil {
			rt.mu.Lock()
			e.pinned = ""
			rt.mu.Unlock()
			lastErr = fmt.Errorf("cluster: move %s to %s: %w", e.id, spec.Name, err)
			rt.logf("%v", lastErr)
			continue
		}
		rt.mu.Lock()
		e.addHolderLocked(spec.Name)
		e.pinned = ""
		rt.mu.Unlock()
		count++
		rt.moves.Add(1)
		obsMoves.Inc()
	}
	return count, lastErr
}

// Leave gracefully removes a replica: every matrix it holds is re-homed to
// its post-leave ring owner (pulled from the leaver while it is still up if
// no other holder exists), then the replica drops out of the ring and the
// fleet. Returns how many IDs were re-homed onto a new owner.
func (rt *Router) Leave(name string) (int, error) {
	rt.mu.Lock()
	if _, ok := rt.replicas[name]; !ok {
		rt.mu.Unlock()
		return 0, fmt.Errorf("cluster: unknown replica %q", name)
	}
	old := rt.ring.Load()
	next := old.Without(name)
	if next.Len() == 0 {
		rt.mu.Unlock()
		return 0, fmt.Errorf("cluster: cannot remove the last replica %q", name)
	}
	type moveJob struct {
		e      *entry
		target string
	}
	var jobs []moveJob
	for id, e := range rt.entries {
		held := false
		for _, h := range e.holders {
			if h == name {
				held = true
				break
			}
		}
		if !held {
			continue
		}
		target := next.Owner(id)
		already := false
		for _, h := range e.holders {
			if h == target {
				already = true
				break
			}
		}
		if already || target == "" {
			// Another holder owns it post-leave: just drop the leaver.
			e.dropHolderLocked(name)
			continue
		}
		// Pin to a surviving holder if one exists, else keep serving from
		// the leaver (still up — this is the graceful path) until warm.
		pin := name
		for _, h := range e.holders {
			if h != name {
				pin = h
				break
			}
		}
		e.pinned = pin
		jobs = append(jobs, moveJob{e: e, target: target})
	}
	rt.ring.Store(next)
	obsRingSize.Set(float64(next.Len()))
	rt.mu.Unlock()
	rt.logf("cluster: %s leaving; ring %v; %d matrices to move", name, next.Members(), len(jobs))

	count := 0
	var lastErr error
	for _, job := range jobs {
		rt.mu.Lock()
		target := rt.replicas[job.target]
		rt.mu.Unlock()
		if target == nil {
			lastErr = fmt.Errorf("cluster: move %s: target %s not in fleet", job.e.id, job.target)
			continue
		}
		if err := rt.moveEntry(target, job.e); err != nil {
			rt.mu.Lock()
			job.e.pinned = ""
			rt.mu.Unlock()
			lastErr = fmt.Errorf("cluster: move %s to %s: %w", job.e.id, job.target, err)
			rt.logf("%v", lastErr)
			continue
		}
		rt.mu.Lock()
		job.e.addHolderLocked(job.target)
		job.e.dropHolderLocked(name)
		job.e.pinned = ""
		rt.mu.Unlock()
		count++
		rt.moves.Add(1)
		obsMoves.Inc()
	}

	rt.mu.Lock()
	delete(rt.replicas, name)
	// Any remaining references (moves that failed) lose the leaver too —
	// plan() must never route to a removed replica.
	for _, e := range rt.entries {
		e.dropHolderLocked(name)
	}
	rt.mu.Unlock()
	return count, lastErr
}

// ensureRegistered lands the matrix on rep with its prepared-format cache
// warm: register (spec, or export-pulled triplets — for a mutated matrix
// that is the current base PLUS the pending overlay, epoch-tagged, so the
// new holder serves bitwise-identical results at the same epoch), verify
// the content address, then prepare. Idempotent — re-registering an
// existing matrix is a no-op on the replica, and prepare of a resident
// format is a hit. Callers serialize against the mutation fan-out by
// holding e.mutMu (moveEntry does), or the batch landing mid-copy would be
// missing on the new holder.
func (rt *Router) ensureRegistered(rep *replica, e *entry) error {
	rt.mu.Lock()
	mutated := e.mutated
	rt.mu.Unlock()
	var rr serve.RegisterRequest
	if e.name != "" && !mutated {
		rr = serve.RegisterRequest{Name: e.name, Scale: e.scale}
	} else {
		// Uploaded or mutated: pull the live holder's export. Once a matrix
		// has mutated, the generator spec no longer describes its content —
		// only the export does.
		exp, err := rt.pullExport(e)
		if err != nil {
			return err
		}
		rr = exp.Request()
	}
	cl := rt.client(rep)
	reg, err := cl.Register(rr)
	if err != nil {
		return fmt.Errorf("register: %w", err)
	}
	if reg.ID != e.id {
		return fmt.Errorf("register: replica hashed %s, want %s", reg.ID, e.id)
	}
	if _, err := cl.Prepare(e.id); err != nil {
		return fmt.Errorf("warm prepare: %w", err)
	}
	return nil
}

// moveEntry is ensureRegistered under the entry's mutation lock — every
// re-home and replication copy goes through here so no mutation batch can
// land between the export and the target's registration.
func (rt *Router) moveEntry(rep *replica, e *entry) error {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	return rt.ensureRegistered(rep, e)
}

// pullExport fetches the canonical triplets from the first live holder.
func (rt *Router) pullExport(e *entry) (*serve.ExportRecord, error) {
	rt.mu.Lock()
	holders := rt.orderAliveLocked(append([]string(nil), e.holders...))
	rt.mu.Unlock()
	var lastErr error
	for _, rep := range holders {
		exp, err := rt.client(rep).Export(e.id)
		if err != nil {
			lastErr = err
			continue
		}
		return exp, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: %s has no holders to export from", e.id)
	}
	return nil, lastErr
}
