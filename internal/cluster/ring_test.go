package cluster

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
)

// testIDs generates count content-address-shaped IDs from a fixed seed —
// deterministic, so the statistical assertions below are exact reruns, not
// samples.
func testIDs(count int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	ids := make([]string, count)
	for i := range ids {
		ids[i] = fmt.Sprintf("%016x", rng.Uint64())
	}
	return ids
}

func memberNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("replica-%02d", i)
	}
	return names
}

// TestRingBalance pins the load-spread property the vnode count was chosen
// for: across fleet sizes, the most-loaded member owns at most 1.35× the
// mean over 10k IDs at 128 vnodes.
func TestRingBalance(t *testing.T) {
	ids := testIDs(10000, 1)
	for _, n := range []int{2, 3, 4, 5, 8, 12, 16} {
		r := NewRing(128, memberNames(n)...)
		owned := map[string]int{}
		for _, id := range ids {
			owned[r.Owner(id)]++
		}
		if len(owned) != n {
			t.Fatalf("n=%d: only %d members own anything", n, len(owned))
		}
		max := 0
		for _, c := range owned {
			if c > max {
				max = c
			}
		}
		mean := float64(len(ids)) / float64(n)
		if skew := float64(max) / mean; skew > 1.35 {
			t.Errorf("n=%d: max/mean ownership skew = %.3f, want <= 1.35 (max %d, mean %.0f)",
				n, skew, max, mean)
		}
	}
}

// TestRingMinimalDisruption pins the consistent-hashing contract: adding one
// member to an n-member ring moves at most ~1/(n+1) of IDs (plus slack for
// vnode variance), and every ID that moved moved TO the new member —
// placement between surviving members never churns.
func TestRingMinimalDisruption(t *testing.T) {
	ids := testIDs(10000, 2)
	for _, n := range []int{2, 3, 5, 8, 15} {
		before := NewRing(128, memberNames(n)...)
		joined := fmt.Sprintf("replica-%02d", n)
		after := before.With(joined)
		moved := 0
		for _, id := range ids {
			was, is := before.Owner(id), after.Owner(id)
			if was == is {
				continue
			}
			moved++
			if is != joined {
				t.Fatalf("n=%d: id %s moved %s -> %s, but only moves onto the joiner %s are allowed",
					n, id, was, is, joined)
			}
		}
		frac := float64(moved) / float64(len(ids))
		if limit := 1.0/float64(n+1) + 0.05; frac > limit {
			t.Errorf("n=%d: join moved %.3f of IDs, want <= %.3f (~1/%d + slack)",
				n, frac, limit, n+1)
		}
		if moved == 0 {
			t.Errorf("n=%d: join moved nothing — the new member owns no arc", n)
		}

		// Leave is the mirror image: removing the joiner restores exactly
		// the old placement (immutability + determinism).
		restored := after.Without(joined)
		for _, id := range ids {
			if before.Owner(id) != restored.Owner(id) {
				t.Fatalf("n=%d: remove did not restore placement for %s", n, id)
			}
		}
	}
}

// TestRingLookupDeterminism exhaustively asserts that serialize/deserialize
// and membership join order change nothing: Owner and the full Owners
// preference list are identical for every ID.
func TestRingLookupDeterminism(t *testing.T) {
	ids := testIDs(10000, 3)
	r := NewRing(128, "gamma", "alpha", "beta", "delta")

	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var rt Ring
	if err := json.Unmarshal(blob, &rt); err != nil {
		t.Fatal(err)
	}
	// A different construction order must also collapse to the same ring.
	reordered := NewRing(128, "delta", "beta", "alpha", "gamma")

	for _, id := range ids {
		want := r.Owners(id, 3)
		for label, other := range map[string]*Ring{"round-tripped": &rt, "reordered": reordered} {
			got := other.Owners(id, 3)
			if len(got) != len(want) {
				t.Fatalf("%s ring: Owners(%s) = %v, want %v", label, id, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s ring: Owners(%s) = %v, want %v", label, id, got, want)
				}
			}
		}
	}
}

// TestRingEdgeCases covers the degenerate shapes the router must survive:
// empty ring, single member, Owners asking for more members than exist.
func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(128)
	if got := empty.Owner("x"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
	if got := empty.Owners("x", 2); got != nil {
		t.Fatalf("empty ring owners = %v, want nil", got)
	}

	solo := NewRing(0, "only") // 0 vnodes → DefaultVNodes
	if got := solo.Owner("anything"); got != "only" {
		t.Fatalf("solo ring owner = %q", got)
	}
	if got := solo.Owners("anything", 5); len(got) != 1 || got[0] != "only" {
		t.Fatalf("solo ring owners = %v, want [only]", got)
	}

	r := NewRing(128, "a", "b", "c")
	owners := r.Owners("some-id", 99)
	if len(owners) != 3 {
		t.Fatalf("Owners capped at %d, want all 3 members", len(owners))
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("Owners repeated member %s: %v", o, owners)
		}
		seen[o] = true
	}
	if r.Has("d") || !r.Has("b") {
		t.Fatal("Has misreports membership")
	}
	dup := NewRing(128, "a", "a", "b")
	if dup.Len() != 2 {
		t.Fatalf("duplicate member names not collapsed: %v", dup.Members())
	}
}
