package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/serve"
	"repro/internal/trace"
)

// Router-side request tracing: the record ring endpoint and the stitcher
// that merges the router's attempt spans with replica-reported timings into
// one multi-process Chrome trace.
//
// Alignment model: every record's span offsets are relative to its own
// process's request start, so wall-clock skew between machines never enters
// the picture. The router places a replica's spans inside the attempt-remote
// span that carried them — the replica's own queue/batch/kernel breakdown
// then renders nested under the attempt, on its own process row.

// finishRequest seals a router-side request record and emits the
// slow-request slog line when the end-to-end time crosses the threshold.
func (rt *Router) finishRequest(req *trace.Req) {
	if req == nil {
		return
	}
	rec := req.Finish()
	if rt.cfg.SlowRequest > 0 && rt.slog != nil && time.Duration(rec.TotalNs) >= rt.cfg.SlowRequest {
		attrs := []any{"rid", rec.ID, "matrix", rec.Subject,
			"total_ms", float64(rec.TotalNs) / 1e6}
		attempts := 0
		for _, sp := range rec.Spans {
			if sp.Name == trace.PhaseAttemptRemote {
				attempts++
				attrs = append(attrs, fmt.Sprintf("attempt%d", attempts),
					fmt.Sprintf("%s %.3fms", sp.Detail, float64(sp.Dur)/1e6))
			}
		}
		attrs = append(attrs, "attempts", attempts)
		if rec.Error != "" {
			attrs = append(attrs, "err", rec.Error)
		}
		rt.slog.Warn("slow request", attrs...)
	}
}

// failRequest seals a router-side record that ended in an error.
func (rt *Router) failRequest(req *trace.Req, err error) {
	if req == nil {
		return
	}
	if err != nil {
		req.SetError(err.Error())
	}
	rt.finishRequest(req)
}

// handleTraceRequests serves the router's own recent request records, same
// query surface as the replicas' endpoint (?id=, ?matrix=, ?min_ms=, ?n=).
func (rt *Router) handleTraceRequests(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	obsRequests.Inc()
	recs, err := serve.TraceRequestsQuery(rt.reqs, r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, recs)
}

// handleTraceChrome stitches one request's distributed timeline into a
// Chrome trace_event export: the router's record becomes the first process
// row, and for every replica an attempt-remote span reached, the replica's
// own record (pulled live from its /v1/trace/requests ring) is aligned into
// the attempt and added as another process row. Load the result in
// chrome://tracing or https://ui.perfetto.dev.
func (rt *Router) handleTraceChrome(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	obsRequests.Inc()
	rid := r.PathValue("rid")
	recs := rt.reqs.Snapshot(trace.ReqFilter{ID: rid, Limit: 1})
	if len(recs) == 0 {
		writeError(w, http.StatusNotFound, fmt.Errorf("cluster: no trace record for request %q", rid))
		return
	}
	rec := recs[0]
	procs := []trace.Process{{Name: "router", Spans: rec.Spans}}
	seen := map[string]bool{}
	for _, sp := range rec.Spans {
		if sp.Name != trace.PhaseAttemptRemote {
			continue
		}
		name, verdict, _ := strings.Cut(sp.Detail, " ")
		if name == "" || seen[name] {
			continue
		}
		if verdict != "ok" {
			// A failed attempt has no replica record to pull — and its
			// replica may be hung or dead, so asking would block the export.
			// The attempt span on the router row still shows the failure.
			continue
		}
		rt.mu.Lock()
		rep := rt.replicas[name]
		rt.mu.Unlock()
		if rep == nil {
			continue
		}
		wire, err := rt.client(rep).TraceRequests(rid, "", 0, 1)
		if err != nil || len(wire) == 0 {
			continue
		}
		seen[name] = true
		spans := wire[0].ReqSpans()
		for j := range spans {
			spans[j].Start += sp.Start
		}
		procs = append(procs, trace.Process{Name: "replica " + name, Spans: spans})
	}
	// Keep replica rows in a stable order for goldens and diffs.
	sort.Slice(procs[1:], func(i, j int) bool { return procs[1+i].Name < procs[1+j].Name })
	w.Header().Set("Content-Type", "application/json")
	if err := trace.WriteStitchedChromeTrace(w, procs); err != nil {
		rt.logf("cluster: stitched trace write failed: %v", err)
	}
}
