package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/serve"
	"repro/internal/trace"
)

// Config parameterizes the router. The zero value of every field has a
// serviceable default; Replicas is the only required input.
type Config struct {
	// Replicas is the initial fleet. More can join at runtime.
	Replicas []JoinRequest
	// VNodes is the ring's virtual-node count (default DefaultVNodes).
	VNodes int
	// ReplicateAfter is the serve-count threshold past which a matrix is
	// considered hot and replicated to a secondary holder; <= 0 disables
	// hot replication. Default 16.
	ReplicateAfter int64
	// MaxHolders caps how many replicas hold one matrix (default 2).
	MaxHolders int
	// SpillMargin is the in-flight-load gap beyond which a multiply
	// spills from the owner to a less-loaded secondary holder (default 2).
	SpillMargin int64
	// ProbeInterval paces the health prober (default 1s). Timers come
	// from Clock, so tests script probe rounds.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz probe in REAL time (default
	// 500ms): a hung replica is detected by its connection not answering,
	// which no virtual clock can observe.
	ProbeTimeout time.Duration
	// EjectAfter is the consecutive-probe-failure count that ejects a
	// replica from rotation (default 2). One success re-admits it.
	EjectAfter int
	// AttemptTimeout bounds one proxy attempt via Clock; 0 means no
	// per-attempt timeout (the client's own deadline still applies).
	AttemptTimeout time.Duration
	// Clock is the timer source; nil means the wall clock. Tests inject
	// clock.NewFake() to script probe cadence and attempt timeouts.
	Clock clock.Clock
	// HTTP is the proxy transport; nil uses a dedicated client.
	HTTP *http.Client
	// Log receives router events; nil discards.
	Log *log.Logger
	// ReqTraceRing enables request-scoped tracing at the router: it keeps
	// this many recent request records (one attempt-remote span per proxy
	// attempt, verdict in the detail), serves them at /v1/trace/requests,
	// and stitches them with replica-reported timings at
	// /v1/trace/requests/{rid}/chrome. 0 disables it (nil checks only on
	// the proxy path).
	ReqTraceRing int
	// SlowRequest, when > 0 with request tracing on and Slog set, logs one
	// structured line (request ID, attempts, per-phase ms) for every
	// multiply slower than this threshold end to end.
	SlowRequest time.Duration
	// Slog receives the slow-request lines; nil discards them.
	Slog *slog.Logger
}

// Router shards content-addressed matrix IDs across spmmserve replicas. It
// terminates the serve wire protocol on the front, proxies to replicas on
// the back, and owns the cluster's placement state: the hash ring, the
// holder set per matrix, health verdicts, and the rebalance pins that make
// ring changes drainless.
type Router struct {
	cfg   Config
	clk   clock.Clock
	httpc *http.Client
	logf  func(format string, args ...any)
	slog  *slog.Logger
	reqs  *trace.Requests

	ring atomic.Pointer[Ring]

	mu       sync.Mutex
	replicas map[string]*replica
	entries  map[string]*entry

	requests      atomic.Int64
	moves         atomic.Int64
	spillovers    atomic.Int64
	failovers     atomic.Int64
	ejects        atomic.Int64
	readmits      atomic.Int64
	replications  atomic.Int64
	probeFailures atomic.Int64
	probes        atomic.Int64 // completed probe rounds; tests sync on it

	probeKick chan struct{}
	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// replica is the router's per-replica state. Health fields are guarded by
// the router mutex; the load/traffic counters are atomics read lock-free on
// the proxy path.
type replica struct {
	name string
	base string

	down  bool // prober verdict; guarded by Router.mu
	fails int  // consecutive probe failures; guarded by Router.mu
	// stateChange is when the prober last flipped this replica's verdict
	// (or when it joined); guarded by Router.mu. /v1/cluster reports the
	// age so operators can tell a flapping replica from a stable one.
	stateChange time.Time

	inFlight atomic.Int64
	proxied  atomic.Int64
	errors   atomic.Int64
	// failovers counts multiplies this replica served after an earlier
	// candidate had already failed — who absorbs the fleet's failures.
	failovers atomic.Int64
	obs       replicaObs
}

// entry is the placement record of one registered matrix.
type entry struct {
	id   string
	rows int
	cols int
	// name/scale are the generator-spec provenance ("" for uploads):
	// the cheap way to re-materialize the matrix on a new holder. Without
	// one the rebalancer pulls canonical triplets from a live holder.
	name  string
	scale float64
	// holders are replica names with the matrix registered, in the order
	// they acquired it. Guarded by Router.mu.
	holders []string
	// mutated records that at least one mutation batch was applied: from
	// then on the generator spec no longer describes the content, so every
	// re-home/replication must go through the export path (base + overlay,
	// epoch-tagged). Guarded by Router.mu.
	mutated bool
	// mutMu serializes mutation fan-out against rebalance moves and hot
	// replication for this entry: a batch landing between a move's export
	// and its cutover would be lost on the new holder. Lock order: mutMu
	// before Router.mu, never the reverse.
	mutMu sync.Mutex
	// pinned, when set, overrides ring placement while a rebalance warms
	// the matrix on its new owner: requests keep landing on the pinned
	// holder until the cutover clears it. Guarded by Router.mu.
	pinned string
	// serves counts multiplies routed for this ID — the hot-replication
	// signal.
	serves atomic.Int64
	// replicating guards against stacking duplicate replication attempts.
	replicating bool
}

// New builds a router over the configured replicas and starts its health
// prober. Callers must Close it.
func New(cfg Config) (*Router, error) {
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.ReplicateAfter == 0 {
		cfg.ReplicateAfter = 16
	}
	if cfg.MaxHolders <= 0 {
		cfg.MaxHolders = 2
	}
	if cfg.SpillMargin <= 0 {
		cfg.SpillMargin = 2
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 500 * time.Millisecond
	}
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = 2
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	}
	rt := &Router{
		cfg:       cfg,
		clk:       cfg.Clock,
		httpc:     cfg.HTTP,
		replicas:  map[string]*replica{},
		entries:   map[string]*entry{},
		probeKick: make(chan struct{}, 1),
		stop:      make(chan struct{}),
	}
	rt.logf = func(string, ...any) {}
	if cfg.Log != nil {
		rt.logf = cfg.Log.Printf
	}
	rt.slog = cfg.Slog
	rt.reqs = trace.NewRequests(cfg.ReqTraceRing)
	names := make([]string, 0, len(cfg.Replicas))
	for _, spec := range cfg.Replicas {
		if spec.Name == "" || spec.Base == "" {
			return nil, fmt.Errorf("cluster: replica needs name and base, got %+v", spec)
		}
		if _, dup := rt.replicas[spec.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate replica name %q", spec.Name)
		}
		rt.replicas[spec.Name] = newReplica(spec)
		names = append(names, spec.Name)
	}
	ring := NewRing(cfg.VNodes, names...)
	rt.ring.Store(ring)
	obsRingSize.Set(float64(ring.Len()))

	rt.wg.Add(1)
	go rt.proberLoop()
	rt.armProbe()
	return rt, nil
}

func newReplica(spec JoinRequest) *replica {
	return &replica{name: spec.Name, base: spec.Base, stateChange: time.Now(), obs: newReplicaObs(spec.Name)}
}

// Close stops the prober. In-flight proxies complete on their own.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() { close(rt.stop) })
	rt.wg.Wait()
}

// client builds a serve.Client against one replica for control-plane calls
// (export, register, prepare) the router issues itself.
func (rt *Router) client(rep *replica) *serve.Client {
	return &serve.Client{Base: rep.base, HTTP: rt.httpc, MaxAttempts: 2, RetryConnErrors: true}
}

// Handler is the router's HTTP surface: the serve protocol verbatim on the
// front plus the /v1/cluster control plane.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/matrices", rt.handleRegister)
	mux.HandleFunc("GET /v1/matrices", rt.handleList)
	mux.HandleFunc("GET /v1/matrices/{id}", rt.handleProxy)
	mux.HandleFunc("GET /v1/matrices/{id}/export", rt.handleProxy)
	mux.HandleFunc("POST /v1/matrices/{id}/prepare", rt.handleProxy)
	mux.HandleFunc("POST /v1/matrices/{id}/mutate", rt.handleMutate)
	mux.HandleFunc("POST /v1/matrices/{id}/compact", rt.handleProxy)
	mux.HandleFunc("POST /v1/matrices/{id}/multiply", rt.handleMultiply)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("GET /v1/trace/requests", rt.handleTraceRequests)
	mux.HandleFunc("GET /v1/trace/requests/{rid}/chrome", rt.handleTraceChrome)
	mux.HandleFunc("GET /v1/cluster", rt.handleCluster)
	mux.HandleFunc("POST /v1/cluster/join", rt.handleJoin)
	mux.HandleFunc("POST /v1/cluster/leave", rt.handleLeave)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, serve.ErrorResponse{Error: err.Error()})
}

// handleRegister content-addresses the upload locally, routes it to the
// ring owner (falling over to the next alive preference), and records the
// placement. Because the ID is computed before any replica is contacted,
// placement is deterministic and re-registration is idempotent end to end.
func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	obsRequests.Inc()
	body, err := io.ReadAll(io.LimitReader(r.Body, 256<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var rr serve.RegisterRequest
	if err := json.Unmarshal(body, &rr); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: register body: %w", err))
		return
	}
	m, err := serve.Materialize(rr)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	serve.Canonicalize(m)
	id := serve.ContentID(m)

	cands := rt.registerCandidates(id)
	if len(cands) == 0 {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("cluster: no replica available"))
		return
	}
	var lastErr error
	for _, rep := range cands {
		resp, release, err := rt.roundTrip(r.Context(), rep, http.MethodPost, "/v1/matrices", "application/json", body)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			relayResponse(w, resp, rep.name)
			release()
			return
		}
		var reg serve.RegisterResponse
		raw, err := io.ReadAll(resp.Body)
		release()
		if err != nil {
			lastErr = err
			continue
		}
		if err := json.Unmarshal(raw, &reg); err != nil {
			lastErr = err
			continue
		}
		if reg.ID != id {
			writeError(w, http.StatusBadGateway,
				fmt.Errorf("cluster: replica %s registered %s, router hashed %s", rep.name, reg.ID, id))
			return
		}
		rt.recordPlacement(&reg, rr, rep.name)
		w.Header().Set(serve.HeaderReplica, rep.name)
		writeJSON(w, http.StatusOK, &reg)
		return
	}
	writeError(w, http.StatusBadGateway, fmt.Errorf("cluster: register failed on every candidate: %w", lastErr))
}

// registerCandidates orders replicas for a registration: existing holders
// first (idempotent re-register), then ring preference, alive before down.
func (rt *Router) registerCandidates(id string) []*replica {
	ring := rt.ring.Load()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var names []string
	if e, ok := rt.entries[id]; ok {
		names = append(names, e.holders...)
	}
	names = append(names, ring.Owners(id, ring.Len())...)
	return rt.orderAliveLocked(names)
}

// orderAliveLocked dedups names into replicas, alive first, preserving
// relative order. Callers hold rt.mu.
func (rt *Router) orderAliveLocked(names []string) []*replica {
	seen := map[string]bool{}
	var alive, downs []*replica
	for _, n := range names {
		if seen[n] {
			continue
		}
		seen[n] = true
		rep, ok := rt.replicas[n]
		if !ok {
			continue
		}
		if rep.down {
			downs = append(downs, rep)
		} else {
			alive = append(alive, rep)
		}
	}
	return append(alive, downs...)
}

// recordPlacement records (or extends) the placement entry after a
// successful registration on rep.
func (rt *Router) recordPlacement(reg *serve.RegisterResponse, rr serve.RegisterRequest, rep string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	e, ok := rt.entries[reg.ID]
	if !ok {
		scale := rr.Scale
		if rr.Name != "" && scale == 0 {
			scale = 1
		}
		e = &entry{id: reg.ID, rows: reg.Rows, cols: reg.Cols, name: rr.Name, scale: scale}
		rt.entries[reg.ID] = e
	}
	e.addHolderLocked(rep)
}

// addHolderLocked appends a holder if absent. Callers hold Router.mu.
func (e *entry) addHolderLocked(name string) {
	for _, h := range e.holders {
		if h == name {
			return
		}
	}
	e.holders = append(e.holders, name)
}

func (e *entry) dropHolderLocked(name string) {
	kept := e.holders[:0]
	for _, h := range e.holders {
		if h != name {
			kept = append(kept, h)
		}
	}
	e.holders = kept
	if e.pinned == name {
		e.pinned = ""
	}
}

// plan orders the replicas to try for one request against id: the pinned
// holder during a rebalance cutover, then ring preference restricted to
// holders, then any remaining holders — alive before down, with one
// load-aware swap when the owner is loaded and a secondary holder is not
// (spillover).
func (rt *Router) plan(id string) (*entry, []*replica, error) {
	ring := rt.ring.Load()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	e, ok := rt.entries[id]
	if !ok {
		return nil, nil, fmt.Errorf("cluster: unknown matrix %q", id)
	}
	holds := map[string]bool{}
	for _, h := range e.holders {
		holds[h] = true
	}
	var names []string
	if e.pinned != "" && holds[e.pinned] {
		names = append(names, e.pinned)
	}
	for _, n := range ring.Owners(id, ring.Len()) {
		if holds[n] {
			names = append(names, n)
		}
	}
	names = append(names, e.holders...)
	cands := rt.orderAliveLocked(names)
	if len(cands) == 0 {
		return nil, nil, fmt.Errorf("cluster: matrix %q has no live holder", id)
	}
	if e.pinned == "" && len(cands) >= 2 && !cands[0].down && !cands[1].down {
		if cands[0].inFlight.Load() > cands[1].inFlight.Load()+rt.cfg.SpillMargin {
			cands[0], cands[1] = cands[1], cands[0]
			rt.spillovers.Add(1)
			obsSpillovers.Inc()
		}
	}
	return e, cands, nil
}

// handleMultiply proxies a multiply with failover: candidates are tried in
// plan order, transport errors and overload/unavailable statuses move to
// the next holder, and the client sees only the final outcome — a replica
// kill mid-stream surfaces as a connection error on the router, not the
// client.
func (rt *Router) handleMultiply(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	obsRequests.Inc()
	id := r.PathValue("id")

	// The router is the tracing edge: it adopts a client-supplied request
	// ID or mints one, records one attempt-remote span per proxy attempt
	// (verdict in the detail), and propagates the ID to whichever replica
	// serves the multiply. With tracing off, rid is "" and req is nil.
	rid := r.Header.Get(serve.HeaderRequestID)
	var req *trace.Req
	if rt.reqs.Enabled() {
		if rid == "" {
			rid = serve.MintRequestID()
		}
		req = rt.reqs.Begin(rid, id)
	}

	loadStart := req.Now()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		rt.failRequest(req, err)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req.Phase(trace.PhaseLoad, "panel", loadStart, 0)
	e, cands, err := rt.plan(id)
	if err != nil {
		rt.failRequest(req, err)
		writeError(w, http.StatusNotFound, err)
		return
	}
	path := "/v1/matrices/" + id + "/multiply"
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	hdrs := forwardHeader(r, serve.HeaderDeadlineMs)
	if rid != "" {
		hdrs = append(hdrs, headerPair{serve.HeaderRequestID, rid})
	}
	var lastErr error
	for i, rep := range cands {
		attemptStart := req.Now()
		resp, release, err := rt.roundTrip(r.Context(), rep, http.MethodPost, path, "application/octet-stream", body, hdrs...)
		if err != nil {
			verdict := attemptVerdict(r.Context(), err)
			req.Phase(trace.PhaseAttemptRemote, rep.name+" "+verdict, attemptStart, int64(i+1))
			lastErr = fmt.Errorf("cluster: replica %s: %w", rep.name, err)
			rt.logf("cluster: multiply %s on %s failed: %v", id, rep.name, err)
			continue
		}
		switch resp.StatusCode {
		case http.StatusOK:
			// Buffer the whole panel before acking. A replica killed after
			// sending its status line but before finishing the body must
			// surface here as a read error — and fail over — never as a
			// truncated 200 on the client. The attempt timer stays armed
			// until release, so a mid-body hang is still bounded.
			payload, rerr := io.ReadAll(resp.Body)
			if rerr != nil {
				release()
				req.Phase(trace.PhaseAttemptRemote, rep.name+" mid-response", attemptStart, int64(i+1))
				lastErr = fmt.Errorf("cluster: replica %s died mid-response: %w", rep.name, rerr)
				rt.logf("cluster: multiply %s on %s cut mid-response: %v", id, rep.name, rerr)
				continue
			}
			if i > 0 {
				rt.failovers.Add(1)
				obsFailovers.Inc()
				rep.failovers.Add(1)
			}
			e.serves.Add(1)
			req.Phase(trace.PhaseAttemptRemote, rep.name+" ok", attemptStart, int64(i+1))
			respondStart := req.Now()
			// Headers come from resp — the attempt that actually succeeded —
			// so after a failover the client sees the survivor's variant,
			// cache verdict and timing, never the dead holder's.
			relayHeaders(w, resp, rep.name)
			w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
			if rid != "" {
				w.Header().Set(serve.HeaderRequestID, rid)
			}
			w.WriteHeader(resp.StatusCode)
			w.Write(payload)
			release()
			req.Phase(trace.PhaseRespond, "", respondStart, 0)
			rt.finishRequest(req)
			rt.maybeReplicate(e)
			return
		case http.StatusNotFound:
			// The replica lost the matrix (restarted without durability):
			// drop it from the holder set and try the next candidate.
			rt.mu.Lock()
			e.dropHolderLocked(rep.name)
			rt.mu.Unlock()
			req.Phase(trace.PhaseAttemptRemote, rep.name+" 404", attemptStart, int64(i+1))
			lastErr = fmt.Errorf("cluster: replica %s no longer holds %s", rep.name, id)
			release()
		case http.StatusTooManyRequests, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			req.Phase(trace.PhaseAttemptRemote, rep.name+" "+strconv.Itoa(resp.StatusCode), attemptStart, int64(i+1))
			lastErr = fmt.Errorf("cluster: replica %s returned %d", rep.name, resp.StatusCode)
			if len(cands) == i+1 {
				// Out of candidates: relay the replica's own verdict
				// (Retry-After and all) instead of masking it.
				relayResponse(w, resp, rep.name)
				release()
				rt.failRequest(req, lastErr)
				return
			}
			release()
		default:
			// Deterministic client error (bad k, malformed panel): every
			// replica would answer the same, so relay immediately.
			req.Phase(trace.PhaseAttemptRemote, rep.name+" "+strconv.Itoa(resp.StatusCode), attemptStart, int64(i+1))
			relayResponse(w, resp, rep.name)
			release()
			rt.failRequest(req, fmt.Errorf("cluster: replica %s returned %d", rep.name, resp.StatusCode))
			return
		}
	}
	rt.failRequest(req, lastErr)
	writeError(w, http.StatusBadGateway, fmt.Errorf("cluster: all holders failed: %w", lastErr))
}

// attemptVerdict classifies a failed proxy attempt for its attempt-remote
// span: the attempt timer firing reads as "timeout", the client abandoning
// the request as "canceled", anything else as "conn-error".
func attemptVerdict(parent context.Context, err error) string {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if parent.Err() != nil {
			return "canceled"
		}
		return "timeout"
	}
	return "conn-error"
}

// handleProxy forwards info/export/prepare to the first holder that
// answers, with the same failover discipline as multiply.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	obsRequests.Inc()
	id := r.PathValue("id")
	_, cands, err := rt.plan(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	path := r.URL.Path
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	var lastErr error
	for _, rep := range cands {
		resp, release, err := rt.roundTrip(r.Context(), rep, r.Method, path, "application/json", nil)
		if err != nil {
			lastErr = err
			continue
		}
		relayResponse(w, resp, rep.name)
		release()
		return
	}
	writeError(w, http.StatusBadGateway, fmt.Errorf("cluster: all holders failed: %w", lastErr))
}

// handleMutate applies one mutation batch to EVERY holder of the matrix —
// unlike a multiply, a mutation must reach each copy or the copies diverge
// bitwise. The fan-out runs under the entry's mutation lock so it also
// serializes with rebalance moves (a batch cannot slip between a move's
// export and its cutover). A holder that fails the batch while another
// acked it has diverged and is dropped from the holder set; the client
// fails only when no holder acked.
func (rt *Router) handleMutate(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	obsRequests.Inc()
	id := r.PathValue("id")
	body, err := io.ReadAll(io.LimitReader(r.Body, 256<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rt.mu.Lock()
	e, ok := rt.entries[id]
	rt.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("cluster: unknown matrix %q", id))
		return
	}
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	rt.mu.Lock()
	holders := rt.orderAliveLocked(append([]string(nil), e.holders...))
	rt.mu.Unlock()
	if len(holders) == 0 {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("cluster: matrix %q has no live holder", id))
		return
	}
	path := "/v1/matrices/" + id + "/mutate"
	type mutReply struct {
		rep    string
		header http.Header
		status int
		body   []byte
	}
	var acked *mutReply
	var failed *mutReply
	var diverged []string
	var lastErr error
	for _, rep := range holders {
		resp, release, err := rt.roundTrip(r.Context(), rep, http.MethodPost, path, "application/json", body)
		if err != nil {
			diverged = append(diverged, rep.name)
			lastErr = fmt.Errorf("cluster: replica %s: %w", rep.name, err)
			rt.logf("cluster: mutate %s on %s failed: %v", id, rep.name, err)
			continue
		}
		payload, rerr := io.ReadAll(resp.Body)
		status, header := resp.StatusCode, resp.Header
		release()
		if rerr != nil {
			diverged = append(diverged, rep.name)
			lastErr = fmt.Errorf("cluster: replica %s died mid-response: %w", rep.name, rerr)
			continue
		}
		reply := &mutReply{rep: rep.name, header: header, status: status, body: payload}
		if status != http.StatusOK {
			failed = reply
			diverged = append(diverged, rep.name)
			lastErr = fmt.Errorf("cluster: replica %s returned %d", rep.name, status)
			continue
		}
		if acked == nil {
			acked = reply
		}
	}
	if acked == nil {
		// Nobody applied the batch, so nobody diverged: keep the holder set
		// and relay the most informative refusal.
		if failed != nil {
			for _, h := range []string{"Content-Type", "Retry-After"} {
				if v := failed.header.Get(h); v != "" {
					w.Header().Set(h, v)
				}
			}
			w.Header().Set(serve.HeaderReplica, failed.rep)
			w.WriteHeader(failed.status)
			w.Write(failed.body)
			return
		}
		writeError(w, http.StatusBadGateway, fmt.Errorf("cluster: mutate failed on every holder: %w", lastErr))
		return
	}
	rt.mu.Lock()
	e.mutated = true
	for _, name := range diverged {
		e.dropHolderLocked(name)
	}
	rt.mu.Unlock()
	for _, name := range diverged {
		rt.logf("cluster: dropped diverged holder %s of %s after mutate fan-out", name, id)
	}
	for _, h := range []string{"Content-Type", serve.HeaderEpoch, serve.HeaderContentHash} {
		if v := acked.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(serve.HeaderReplica, acked.rep)
	w.Header().Set("Content-Length", strconv.Itoa(len(acked.body)))
	w.WriteHeader(http.StatusOK)
	w.Write(acked.body)
}

// forwardHeader copies the named request headers into outbound form.
func forwardHeader(r *http.Request, names ...string) []headerPair {
	var out []headerPair
	for _, n := range names {
		if v := r.Header.Get(n); v != "" {
			out = append(out, headerPair{n, v})
		}
	}
	return out
}

type headerPair struct{ name, value string }

// roundTrip performs one proxy attempt against a replica, tracking load and
// latency. The returned release func must be called after the response body
// has been consumed; it disarms the attempt timer (scheduled on the
// router's clock so tests can script it) and settles the counters.
func (rt *Router) roundTrip(parent context.Context, rep *replica, method, path, contentType string, body []byte, extra ...headerPair) (*http.Response, func(), error) {
	ctx, cancel := context.WithCancel(parent)
	var timer clock.Timer
	if rt.cfg.AttemptTimeout > 0 {
		timer = rt.clk.AfterFunc(rt.cfg.AttemptTimeout, cancel)
	}
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, rep.base+path, rdr)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", contentType)
	}
	for _, h := range extra {
		req.Header.Set(h.name, h.value)
	}
	rep.inFlight.Add(1)
	rep.proxied.Add(1)
	rep.obs.proxied.Inc()
	start := time.Now()
	resp, err := rt.httpc.Do(req)
	if err != nil {
		rep.inFlight.Add(-1)
		rep.errors.Add(1)
		rep.obs.errors.Inc()
		if timer != nil {
			timer.Stop()
		}
		cancel()
		return nil, nil, err
	}
	release := func() {
		resp.Body.Close()
		rep.inFlight.Add(-1)
		rep.obs.seconds.Observe(time.Since(start).Seconds())
		if timer != nil {
			timer.Stop()
		}
		cancel()
	}
	return resp, release, nil
}

// relayHeaders copies the serve-protocol headers and the replica identity
// onto an outgoing response.
func relayHeaders(w http.ResponseWriter, resp *http.Response, replicaName string) {
	for _, h := range []string{"Content-Type", "Retry-After",
		serve.HeaderFormat, serve.HeaderCache, serve.HeaderVariant,
		serve.HeaderBatchWidth, serve.HeaderBatchK,
		serve.HeaderEpoch, serve.HeaderContentHash,
		serve.HeaderRequestID, serve.HeaderTiming} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(serve.HeaderReplica, replicaName)
}

// relayResponse copies a replica response to the client: headers, status,
// and the body stream.
func relayResponse(w http.ResponseWriter, resp *http.Response, replicaName string) {
	relayHeaders(w, resp, replicaName)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// maybeReplicate kicks off hot replication when an entry's serve count
// crosses the threshold and it still has holder headroom. The copy happens
// off the request path; concurrent triggers collapse onto one attempt.
func (rt *Router) maybeReplicate(e *entry) {
	if rt.cfg.ReplicateAfter <= 0 || e.serves.Load() < rt.cfg.ReplicateAfter {
		return
	}
	ring := rt.ring.Load()
	rt.mu.Lock()
	if e.replicating || len(e.holders) >= rt.cfg.MaxHolders || len(e.holders) >= len(rt.replicas) {
		rt.mu.Unlock()
		return
	}
	holds := map[string]bool{}
	for _, h := range e.holders {
		holds[h] = true
	}
	var target *replica
	for _, n := range ring.Owners(e.id, ring.Len()) {
		if rep, ok := rt.replicas[n]; ok && !holds[n] && !rep.down {
			target = rep
			break
		}
	}
	if target == nil {
		rt.mu.Unlock()
		return
	}
	e.replicating = true
	rt.mu.Unlock()

	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		err := rt.moveEntry(target, e)
		rt.mu.Lock()
		e.replicating = false
		if err == nil {
			e.addHolderLocked(target.name)
		}
		rt.mu.Unlock()
		if err != nil {
			rt.logf("cluster: replicate %s to %s: %v", e.id, target.name, err)
			return
		}
		rt.replications.Add(1)
		obsReplications.Inc()
		rt.logf("cluster: replicated hot matrix %s to %s", e.id, target.name)
	}()
}

// handleList merges the live replicas' listings, deduped by ID in the
// router's placement order — so a serve.Client sees one coherent registry.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	obsRequests.Inc()
	merged := map[string]serve.MatrixInfo{}
	for _, rep := range rt.aliveReplicas() {
		infos, err := rt.client(rep).Matrices()
		if err != nil {
			continue
		}
		for _, info := range infos {
			if _, ok := merged[info.ID]; !ok {
				merged[info.ID] = info
			}
		}
	}
	out := make([]serve.MatrixInfo, 0, len(merged))
	for _, info := range merged {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

// handleStats aggregates the fleet's serve counters so single-node
// tooling (spmmload's summary, the e2e asserts) works against a cluster
// unchanged: counts sum, matrix totals dedup through the router's view.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	obsRequests.Inc()
	var agg serve.StatsResponse
	for _, rep := range rt.aliveReplicas() {
		st, err := rt.client(rep).Stats()
		if err != nil {
			continue
		}
		agg.Requests += st.Requests
		agg.Multiplies += st.Multiplies
		agg.Batches += st.Batches
		agg.BatchedRequests += st.BatchedRequests
		agg.Shed += st.Shed
		agg.Timeouts += st.Timeouts
		agg.InFlight += st.InFlight
		agg.Queued += st.Queued
		agg.Cache.Entries += st.Cache.Entries
		agg.Cache.Bytes += st.Cache.Bytes
		agg.Cache.CapacityBytes += st.Cache.CapacityBytes
		agg.Cache.Hits += st.Cache.Hits
		agg.Cache.Misses += st.Cache.Misses
		agg.Cache.Prepares += st.Cache.Prepares
		agg.Cache.Evictions += st.Cache.Evictions
		for v, n := range st.Variants {
			if agg.Variants == nil {
				agg.Variants = map[string]int64{}
			}
			agg.Variants[v] += n
		}
		if st.Delta != nil {
			if agg.Delta == nil {
				agg.Delta = &serve.DeltaStats{}
			}
			agg.Delta.Mutations += st.Delta.Mutations
			agg.Delta.Ops += st.Delta.Ops
			agg.Delta.Mutated += st.Delta.Mutated
			agg.Delta.OverlayNNZ += st.Delta.OverlayNNZ
			agg.Delta.Compactions += st.Delta.Compactions
			agg.Delta.CompactionErrors += st.Delta.CompactionErrors
		}
	}
	rt.mu.Lock()
	agg.Matrices = len(rt.entries)
	rt.mu.Unlock()
	writeJSON(w, http.StatusOK, &agg)
}

func (rt *Router) aliveReplicas() []*replica {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	names := make([]string, 0, len(rt.replicas))
	for n := range rt.replicas {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*replica, 0, len(names))
	for _, n := range names {
		if rep := rt.replicas[n]; !rep.down {
			out = append(out, rep)
		}
	}
	return out
}

// ClusterStats snapshots the router's placement and event counters.
func (rt *Router) ClusterStats() Stats {
	ring := rt.ring.Load()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st := Stats{
		Ring:          ring.Members(),
		Matrices:      len(rt.entries),
		Placements:    map[string][]string{},
		Requests:      rt.requests.Load(),
		Moves:         rt.moves.Load(),
		Spillovers:    rt.spillovers.Load(),
		Failovers:     rt.failovers.Load(),
		Ejects:        rt.ejects.Load(),
		Readmits:      rt.readmits.Load(),
		Replications:  rt.replications.Load(),
		ProbeFailures: rt.probeFailures.Load(),
		ProbeRounds:   rt.probes.Load(),
	}
	held := map[string]int{}
	for id, e := range rt.entries {
		st.Placements[id] = append([]string(nil), e.holders...)
		for _, h := range e.holders {
			held[h]++
		}
	}
	names := make([]string, 0, len(rt.replicas))
	for n := range rt.replicas {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		rep := rt.replicas[n]
		st.Replicas = append(st.Replicas, ReplicaStats{
			Name: rep.name, Base: rep.base, Down: rep.down,
			Matrices:            held[rep.name],
			InFlight:            rep.inFlight.Load(),
			Proxied:             rep.proxied.Load(),
			Errors:              rep.errors.Load(),
			Failovers:           rep.failovers.Load(),
			ProbeFails:          rep.fails,
			SinceStateChangeSec: time.Since(rep.stateChange).Seconds(),
		})
	}
	return st
}

func (rt *Router) handleCluster(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	obsRequests.Inc()
	writeJSON(w, http.StatusOK, rt.ClusterStats())
}

func (rt *Router) handleJoin(w http.ResponseWriter, r *http.Request) {
	var jr JoinRequest
	if err := json.NewDecoder(r.Body).Decode(&jr); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	moved, err := rt.Join(jr)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	rt.mu.Lock()
	total := len(rt.entries)
	rt.mu.Unlock()
	writeJSON(w, http.StatusOK, JoinResponse{
		Moved: moved, Matrices: total, Ring: rt.ring.Load().Members(),
	})
}

func (rt *Router) handleLeave(w http.ResponseWriter, r *http.Request) {
	var lr LeaveRequest
	if err := json.NewDecoder(r.Body).Decode(&lr); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	moved, err := rt.Leave(lr.Name)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, LeaveResponse{Moved: moved, Ring: rt.ring.Load().Members()})
}
