package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/matrix"
	"repro/internal/serve"
)

// The deterministic multi-replica harness: N real spmmserve instances on
// loopback listeners, each behind a fault gate the test scripts (kill,
// hang, slow), a router on an injected clock, and a standalone single-node
// server whose answers are the bitwise ground truth. Everything runs
// in-process, so the whole suite works under -race, and every timing the
// router owns (probe cadence, attempt timeouts) is scripted through
// clock.Fake — the only real time left is the loopback round-trip itself.

// faultGate wraps a replica's handler with a scriptable fault. Faults
// apply to every route, /healthz included — a hung replica hangs its
// health checks too, which is exactly what the prober must detect.
type faultGate struct {
	mu      sync.Mutex
	inmates sync.WaitGroup // handlers inside the gate; teardown drains them
	mode    string         // "" healthy, "hang", "slow"
	delay   time.Duration
	release chan struct{}
	next    http.Handler
}

func (g *faultGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.inmates.Add(1)
	defer g.inmates.Done()
	g.mu.Lock()
	mode, delay, release := g.mode, g.delay, g.release
	g.mu.Unlock()
	switch mode {
	case "hang":
		// Hold the connection open without answering until healed. After
		// heal the stalled requests fail clean rather than pretend to work.
		<-release
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	case "slow":
		time.Sleep(delay)
	}
	g.next.ServeHTTP(w, r)
}

// hang makes every subsequent request block until heal.
func (g *faultGate) hang() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.mode = "hang"
	g.release = make(chan struct{})
}

// slow delays every subsequent request by d.
func (g *faultGate) slow(d time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.mode = "slow"
	g.delay = d
}

// heal clears the fault and releases any requests stuck in it.
func (g *faultGate) heal() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.release != nil {
		close(g.release)
		g.release = nil
	}
	g.mode = ""
	g.delay = 0
}

// testReplica is one in-process spmmserve behind its fault gate.
type testReplica struct {
	name string
	base string
	srv  *serve.Server
	hs   *http.Server
	gate *faultGate
	dead bool
}

// kill abruptly closes the replica's listener and every open connection —
// in-flight requests see a reset, new ones a refused connection. The
// closest in-process stand-in for SIGKILL.
func (tr *testReplica) kill() {
	tr.dead = true
	tr.hs.Close()
}

// testCluster is the full fixture: replicas, router, reference server.
type testCluster struct {
	t        *testing.T
	clk      *clock.Fake
	router   *Router
	front    *httptest.Server // the router's HTTP face
	client   *serve.Client    // speaks to the cluster through the router
	replicas map[string]*testReplica

	refSrv    *serve.Server // single-node ground truth
	refServer *httptest.Server
	refClient *serve.Client

	// serveMutate adjusts each replica's serve.Config before start (nil for
	// the shared default) — the request-tracing tests switch the ring on.
	serveMutate func(*serve.Config)
}

// serveConfig is the per-replica server shape every harness replica and the
// single-node reference share — identical thread counts keep parallel
// accumulation order, and therefore bits, identical across them.
func serveConfig() serve.Config {
	return serve.Config{Threads: 2, MaxInFlight: 8, QueueDepth: 32}
}

func startReplica(t *testing.T, name string, mutate func(*serve.Config)) *testReplica {
	t.Helper()
	cfg := serveConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gate := &faultGate{next: srv.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: gate}
	go hs.Serve(ln)
	tr := &testReplica{
		name: name,
		base: "http://" + ln.Addr().String(),
		srv:  srv,
		hs:   hs,
		gate: gate,
	}
	t.Cleanup(func() {
		gate.heal()
		hs.Close()
		// A handler released from a fault (or still sleeping in a slow gate)
		// may only now be entering the server; wait it out before closing the
		// server's worker pool under it.
		gate.inmates.Wait()
		srv.Close()
	})
	return tr
}

// newTestCluster builds n replicas named r0..r(n-1), a router over them on
// a fake clock, and the single-node reference. cfg mutates the router
// config before construction (nil for defaults).
func newTestCluster(t *testing.T, n int, mutate func(*Config)) *testCluster {
	return newTestClusterServe(t, n, mutate, nil)
}

// newTestClusterServe additionally mutates every replica's serve.Config —
// how the tracing tests enable per-request rings on the fleet.
func newTestClusterServe(t *testing.T, n int, mutate func(*Config), serveMutate func(*serve.Config)) *testCluster {
	t.Helper()
	tc := &testCluster{t: t, clk: clock.NewFake(), replicas: map[string]*testReplica{}, serveMutate: serveMutate}

	cfg := Config{
		Clock:          tc.clk,
		ProbeInterval:  time.Second,
		ProbeTimeout:   200 * time.Millisecond,
		EjectAfter:     2,
		AttemptTimeout: 5 * time.Second, // virtual: fires only when advanced past
		ReplicateAfter: 1 << 30,         // effectively off unless a test lowers it
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("r%d", i)
		tr := startReplica(t, name, serveMutate)
		tc.replicas[name] = tr
		cfg.Replicas = append(cfg.Replicas, JoinRequest{Name: name, Base: tr.base})
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc.router = rt
	tc.front = httptest.NewServer(rt.Handler())
	tc.client = serve.NewClient(tc.front.URL)
	t.Cleanup(func() {
		tc.front.Close()
		rt.Close()
	})

	refSrv, err := serve.New(serveConfig())
	if err != nil {
		t.Fatal(err)
	}
	tc.refSrv = refSrv
	tc.refServer = httptest.NewServer(refSrv.Handler())
	tc.refClient = serve.NewClient(tc.refServer.URL)
	t.Cleanup(func() {
		tc.refServer.Close()
		refSrv.Close()
	})
	return tc
}

// addReplica starts a fresh replica process and joins it through the
// router's control plane, returning the join verdict.
func (tc *testCluster) addReplica(name string) *JoinResponse {
	tc.t.Helper()
	tr := startReplica(tc.t, name, tc.serveMutate)
	tc.replicas[name] = tr
	var out JoinResponse
	if err := postJSON(tc.front.URL+"/v1/cluster/join", JoinRequest{Name: name, Base: tr.base}, &out); err != nil {
		tc.t.Fatalf("join %s: %v", name, err)
	}
	return &out
}

func postJSON(url string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return fmt.Errorf("%s returned %d: %s", url, resp.StatusCode, raw)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// clusterStats fetches /v1/cluster through the router's HTTP face.
func (tc *testCluster) clusterStats() Stats {
	tc.t.Helper()
	resp, err := http.Get(tc.front.URL + "/v1/cluster")
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		tc.t.Fatal(err)
	}
	return st
}

// testMatrix is one registered matrix plus its ground truth handle.
type testMatrix struct {
	reg *serve.RegisterResponse
}

// registerMatrices uploads count deterministic random sparse matrices as
// raw triplets through the router AND the single-node reference, asserting
// both hash them identically — the content-address agreement everything
// downstream (failover bitwise checks, rebalance pulls) rests on.
func (tc *testCluster) registerMatrices(count int) []*testMatrix {
	tc.t.Helper()
	out := make([]*testMatrix, 0, count)
	for i := 0; i < count; i++ {
		rr := randomTriplets(60+i, 45+i, 350, int64(1000+i))
		reg, err := tc.client.Register(rr)
		if err != nil {
			tc.t.Fatalf("register %d via router: %v", i, err)
		}
		ref, err := tc.refClient.Register(rr)
		if err != nil {
			tc.t.Fatalf("register %d on reference: %v", i, err)
		}
		if reg.ID != ref.ID {
			tc.t.Fatalf("matrix %d: cluster hashed %s, reference %s", i, reg.ID, ref.ID)
		}
		out = append(out, &testMatrix{reg: reg})
	}
	return out
}

// randomTriplets builds a deterministic random COO upload. Duplicate
// coordinates are fine — the registry canonicalizes (dedups) server-side.
func randomTriplets(rows, cols, nnz int, seed int64) serve.RegisterRequest {
	rng := rand.New(rand.NewSource(seed))
	rr := serve.RegisterRequest{
		Rows:   rows,
		Cols:   cols,
		RowIdx: make([]int32, nnz),
		ColIdx: make([]int32, nnz),
		Vals:   make([]float64, nnz),
	}
	for i := 0; i < nnz; i++ {
		rr.RowIdx[i] = int32(rng.Intn(rows))
		rr.ColIdx[i] = int32(rng.Intn(cols))
		rr.Vals[i] = rng.NormFloat64()
	}
	return rr
}

// multiplyBoth runs the same multiply through the cluster and the
// single-node reference and requires bitwise-identical panels. It returns
// the cluster-side result for metadata assertions.
func (tc *testCluster) multiplyBoth(m *testMatrix, k int, seed int64) *serve.MultiplyResult {
	tc.t.Helper()
	b := matrix.NewDenseRand[float64](m.reg.Cols, k, seed)
	got, err := tc.client.Multiply(m.reg.ID, m.reg.Rows, b, k, 0)
	if err != nil {
		tc.t.Fatalf("cluster multiply %s: %v", m.reg.ID, err)
	}
	want, err := tc.refClient.Multiply(m.reg.ID, m.reg.Rows, b, k, 0)
	if err != nil {
		tc.t.Fatalf("reference multiply %s: %v", m.reg.ID, err)
	}
	if diff, _ := got.C.MaxAbsDiff(want.C); diff != 0 {
		tc.t.Fatalf("cluster result for %s differs from single-node by %g", m.reg.ID, diff)
	}
	if got.Replica == "" {
		tc.t.Fatalf("cluster response for %s carries no %s header", m.reg.ID, serve.HeaderReplica)
	}
	return got
}

// waitFor polls cond until it holds, failing after a generous real-time
// bound — the bridge between real proxy goroutines and scripted time.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// advanceProbe advances scripted time past one probe interval and waits for
// the prober to complete the round it kicked off.
func (tc *testCluster) advanceProbe() {
	tc.t.Helper()
	before := tc.router.ProbeRounds()
	tc.clk.Advance(time.Second)
	waitFor(tc.t, "probe round to complete", func() bool {
		return tc.router.ProbeRounds() > before
	})
}
