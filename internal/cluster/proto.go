package cluster

// Control-plane wire types for the router's own endpoints (/v1/cluster*).
// The data plane — register, multiply, stats — reuses internal/serve's
// protocol verbatim: a serve.Client pointed at the router works unchanged,
// which is what lets cmd/spmmload drive a cluster and a single node with
// the same code.

// JoinRequest adds a replica to the ring (POST /v1/cluster/join).
type JoinRequest struct {
	// Name is the replica's stable ring identity. Placement hashes names,
	// not addresses, so a replica restarting on a new port keeps its arcs.
	Name string `json:"name"`
	// Base is the replica's URL root, e.g. "http://127.0.0.1:9001".
	Base string `json:"base"`
}

// JoinResponse reports the rebalance a join triggered.
type JoinResponse struct {
	// Moved is how many matrix IDs re-homed onto the joined replica —
	// each one registered and cache-warmed on it before its ring cutover.
	Moved int `json:"moved"`
	// Matrices is the cluster's total registered-matrix count, the
	// denominator of the minimal-disruption guarantee.
	Matrices int      `json:"matrices"`
	Ring     []string `json:"ring"`
}

// LeaveRequest gracefully removes a replica (POST /v1/cluster/leave):
// matrices it solely holds are re-homed (pulled while it is still up)
// before it leaves the ring.
type LeaveRequest struct {
	Name string `json:"name"`
}

// LeaveResponse reports the rebalance a leave triggered.
type LeaveResponse struct {
	Moved int      `json:"moved"`
	Ring  []string `json:"ring"`
}

// ReplicaStats is one replica's view in the cluster snapshot.
type ReplicaStats struct {
	Name string `json:"name"`
	Base string `json:"base"`
	// Down reports the health prober's current verdict.
	Down bool `json:"down"`
	// Matrices is how many registered IDs this replica holds.
	Matrices int `json:"matrices"`
	// InFlight is the router's count of proxied requests currently
	// outstanding against the replica — the load signal spillover reads.
	InFlight int64 `json:"in_flight"`
	// Proxied / Errors are per-replica proxy totals.
	Proxied int64 `json:"proxied"`
	Errors  int64 `json:"errors"`
	// Failovers counts multiplies this replica served after an earlier
	// candidate in the plan had already failed.
	Failovers int64 `json:"failovers"`
	// ProbeFails is the replica's current consecutive-probe-failure count
	// (EjectAfter of them take it out of rotation).
	ProbeFails int `json:"probe_fails"`
	// SinceStateChangeSec is how long ago the health prober last flipped
	// this replica's up/down verdict (or since it joined).
	SinceStateChangeSec float64 `json:"since_state_change_sec"`
}

// Stats is the /v1/cluster snapshot: ring membership, per-replica health
// and load, matrix placement, and the router's event counters.
type Stats struct {
	Ring     []string       `json:"ring"`
	Replicas []ReplicaStats `json:"replicas"`
	Matrices int            `json:"matrices"`
	// Placements maps each matrix ID to the replicas holding it, primary
	// preference first — the observable the rebalance and replication
	// tests assert against.
	Placements map[string][]string `json:"placements"`

	Requests     int64 `json:"requests"`
	Moves        int64 `json:"moves"`
	Spillovers   int64 `json:"spillovers"`
	Failovers    int64 `json:"failovers"`
	Ejects       int64 `json:"ejects"`
	Readmits     int64 `json:"readmits"`
	Replications int64 `json:"replications"`
	// ProbeFailures totals failed health probes (the metric the
	// spmm_cluster_probe_failures_total counter tracks); ProbeRounds totals
	// completed probe sweeps over the fleet.
	ProbeFailures int64 `json:"probe_failures"`
	ProbeRounds   int64 `json:"probe_rounds"`
}
