// Package cluster is the sharded-serving tier: a consistent-hash router
// (cmd/spmmrouter) spreads content-addressed matrix IDs across N spmmserve
// replicas, replicates hot matrices to secondaries, health-checks the fleet
// and rebalances without drain on membership changes. The ring here is the
// placement function everything else hangs off: deterministic, cheap to
// copy, and — critically for the rebalancer — minimally disruptive, so a
// join or leave moves only the IDs whose arc changed hands.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member. 128 keeps the
// max/mean ownership skew under ~1.35 across realistic fleet sizes (the
// ring property test pins exactly that) while the full point table for a
// 16-replica fleet stays around 2k entries — binary-searchable in tens of
// nanoseconds.
const DefaultVNodes = 128

// Ring is an immutable consistent-hash ring over named members. Mutation
// returns a new ring (With/Without), so a router can swap rings through an
// atomic pointer while lookups proceed lock-free on the old one. Members
// are stable replica NAMES, not addresses: placement must survive a replica
// restarting on a new port.
type Ring struct {
	vnodes  int
	members []string
	points  []point // sorted by hash; derived from vnodes × members
}

// point is one virtual node: a position on the 64-bit hash circle owned by
// members[owner].
type point struct {
	hash  uint64
	owner int
}

// hash64 is the ring's position function: the first 8 bytes of SHA-256.
// Cryptographic quality matters here — member names and matrix IDs are
// short, structured strings, and a weak mixer would cluster their points.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring with the given virtual-node count (<= 0 means
// DefaultVNodes) over the named members. Duplicate names collapse.
func NewRing(vnodes int, members ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(members))
	seen := map[string]bool{}
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, members: uniq}
	r.build()
	return r
}

// build derives the sorted point table from (vnodes, members). Each virtual
// node hashes "name#i" — a pure function of the member name, so the same
// membership always yields the identical table regardless of join order or
// serialization round-trips.
func (r *Ring) build() {
	r.points = make([]point, 0, r.vnodes*len(r.members))
	for mi, name := range r.members {
		for v := 0; v < r.vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(name + "#" + strconv.Itoa(v)), owner: mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// A 64-bit collision between two members' points is astronomically
		// unlikely; break it by name so placement stays deterministic anyway.
		return r.members[a.owner] < r.members[b.owner]
	})
}

// Members returns the member names in sorted order (a copy).
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Len is the member count.
func (r *Ring) Len() int { return len(r.members) }

// Has reports membership.
func (r *Ring) Has(name string) bool {
	i := sort.SearchStrings(r.members, name)
	return i < len(r.members) && r.members[i] == name
}

// With returns a new ring with the member added (or the same membership if
// already present).
func (r *Ring) With(name string) *Ring {
	return NewRing(r.vnodes, append(r.Members(), name)...)
}

// Without returns a new ring with the member removed.
func (r *Ring) Without(name string) *Ring {
	kept := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m != name {
			kept = append(kept, m)
		}
	}
	return NewRing(r.vnodes, kept...)
}

// Owner returns the member owning id — the first virtual node at or after
// the id's position, wrapping at the top of the circle. Empty ring → "".
func (r *Ring) Owner(id string) string {
	owners := r.Owners(id, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n DISTINCT members in preference order for id: the
// owner first, then the successors a replication policy spills onto. The
// walk is clockwise from the id's position, skipping virtual nodes of
// members already collected, so every member appears at most once.
func (r *Ring) Owners(id string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(id)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !taken[p.owner] {
			taken[p.owner] = true
			out = append(out, r.members[p.owner])
		}
	}
	return out
}

// ringState is the serialized form: the derived point table is rebuilt, not
// shipped, so two routers deserializing the same state cannot disagree.
type ringState struct {
	VNodes  int      `json:"vnodes"`
	Members []string `json:"members"`
}

// MarshalJSON serializes the ring's defining state (vnodes + members).
func (r *Ring) MarshalJSON() ([]byte, error) {
	return json.Marshal(ringState{VNodes: r.vnodes, Members: r.members})
}

// UnmarshalJSON rebuilds a ring from its serialized state.
func (r *Ring) UnmarshalJSON(b []byte) error {
	var st ringState
	if err := json.Unmarshal(b, &st); err != nil {
		return fmt.Errorf("cluster: ring state: %w", err)
	}
	nr := NewRing(st.VNodes, st.Members...)
	*r = *nr
	return nil
}
