package cluster

import (
	"fmt"

	"repro/internal/obs"
)

// Cluster-tier metrics. The fleet-wide totals register at init like every
// other subsystem; the per-replica series (latency, proxied requests) are
// registered lazily when a replica joins, carrying the replica name as a
// constant label — obs registration is idempotent, so a replica that
// leaves and rejoins reuses its series.
var (
	obsRingSize = obs.NewGauge("spmm_cluster_ring_size",
		"Replicas currently in the consistent-hash ring.")
	obsRequests = obs.NewCounter("spmm_cluster_requests_total",
		"Requests received by the cluster router.")
	obsMoves = obs.NewCounter("spmm_cluster_moves_total",
		"Matrix IDs re-homed by rebalances (join/leave ring changes).")
	obsSpillovers = obs.NewCounter("spmm_cluster_spillovers_total",
		"Multiplies routed to a secondary holder because the owner was loaded.")
	obsFailovers = obs.NewCounter("spmm_cluster_failovers_total",
		"Multiplies retried on another holder after a replica failure.")
	obsEjects = obs.NewCounter("spmm_cluster_ejects_total",
		"Replicas ejected by the health prober after consecutive probe failures.")
	obsReadmits = obs.NewCounter("spmm_cluster_readmits_total",
		"Ejected replicas re-admitted after a successful probe.")
	obsReplications = obs.NewCounter("spmm_cluster_replications_total",
		"Hot matrices replicated to a secondary holder.")
	obsProbeFailures = obs.NewCounter("spmm_cluster_probe_failures_total",
		"Health probes that failed (timeout or non-200).")
)

// replicaObs is the lazily registered per-replica series set.
type replicaObs struct {
	proxied *obs.Counter
	errors  *obs.Counter
	seconds *obs.Histogram
}

func newReplicaObs(name string) replicaObs {
	label := fmt.Sprintf("{replica=%q}", name)
	return replicaObs{
		proxied: obs.NewCounter("spmm_cluster_proxied_total"+label,
			"Requests proxied to this replica."),
		errors: obs.NewCounter("spmm_cluster_proxy_errors_total"+label,
			"Proxy attempts against this replica that failed."),
		seconds: obs.NewHistogram("spmm_cluster_proxy_seconds"+label,
			"Proxy latency against this replica, request out to response in."),
	}
}
