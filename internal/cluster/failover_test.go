package cluster

import (
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/matrix"
	"repro/internal/serve"
)

// replicateAll serves every matrix once to cross the ReplicateAfter=1
// threshold, then waits until each has exactly two holders with the
// secondary warmed — the precondition for the kill/hang scenarios, where
// every ID must survive losing a replica.
func replicateAll(t *testing.T, tc *testCluster, mats []*testMatrix) {
	t.Helper()
	for i, m := range mats {
		tc.multiplyBoth(m, 4, int64(7000+i))
	}
	waitFor(t, "every matrix to gain a second holder", func() bool {
		st := tc.clusterStats()
		if st.Replications < int64(len(mats)) {
			return false
		}
		for _, m := range mats {
			if len(st.Placements[m.reg.ID]) != 2 {
				return false
			}
		}
		return true
	})
}

// leakCheck polls the goroutine count back down to a baseline — the
// wedge detector: a proxy pool stuck on a dead or hung replica shows up as
// goroutines that never exit. The small tolerance absorbs idle HTTP
// keep-alive conns; a real wedge leaks one goroutine per stuck request,
// far beyond it.
func leakCheck(t *testing.T, tc *testCluster, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if tr, ok := tc.router.httpc.Transport.(*http.Transport); ok {
			tr.CloseIdleConnections()
		}
		if n := runtime.NumGoroutine(); n <= before+5 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("proxy goroutines wedged: %d before the fault, %d after recovery",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFailoverOnKill is the acceptance scenario: a replica dies abruptly
// (listener and every connection reset) under concurrent multiply load,
// and the router retries on the secondary holder so that 100% of client
// requests complete with panels bitwise-identical to single-node serving —
// the client sees zero errors and makes zero retries of its own.
func TestFailoverOnKill(t *testing.T) {
	tc := newTestCluster(t, 3, func(cfg *Config) {
		cfg.ReplicateAfter = 1
		cfg.MaxHolders = 2
		cfg.SpillMargin = 1000 // keep routing by preference, not load, in this test
	})
	mats := tc.registerMatrices(6)
	replicateAll(t, tc, mats)

	// Ground truth per matrix, computed on the single-node reference with
	// the same panel every worker will send.
	const k = 4
	type truth struct {
		b    *matrix.Dense[float64]
		want *matrix.Dense[float64]
	}
	truths := make([]truth, len(mats))
	for i, m := range mats {
		b := matrix.NewDenseRand[float64](m.reg.Cols, k, int64(8000+i))
		res, err := tc.refClient.Multiply(m.reg.ID, m.reg.Rows, b, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		truths[i] = truth{b: b, want: res.C}
	}

	victim := tc.clusterStats().Placements[mats[0].reg.ID][0]
	before := runtime.NumGoroutine()

	const workers = 4
	const rounds = 3
	firstRound := make(chan struct{}, workers)
	killed := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds*len(mats))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, m := range mats {
					res, err := tc.client.Multiply(m.reg.ID, m.reg.Rows, truths[i].b, k, 0)
					if err != nil {
						errs <- fmt.Errorf("worker %d round %d matrix %s: %w", w, r, m.reg.ID, err)
						return
					}
					if diff, _ := res.C.MaxAbsDiff(truths[i].want); diff != 0 {
						errs <- fmt.Errorf("worker %d round %d matrix %s: differs from single-node by %g",
							w, r, m.reg.ID, diff)
						return
					}
				}
				if r == 0 {
					firstRound <- struct{}{}
					<-killed // every later round runs against a dead replica
				}
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-firstRound
	}

	// Park one multiply INSIDE the victim (slow gate), then kill it with the
	// request mid-flight: the router sees the connection reset, retries on
	// the secondary, and the caller gets a clean bitwise answer.
	tc.replicas[victim].gate.slow(500 * time.Millisecond)
	tc.router.mu.Lock()
	victimRep := tc.router.replicas[victim]
	tc.router.mu.Unlock()
	midFlight := make(chan error, 1)
	go func() {
		res, err := tc.client.Multiply(mats[0].reg.ID, mats[0].reg.Rows, truths[0].b, k, 0)
		if err != nil {
			midFlight <- err
			return
		}
		if diff, _ := res.C.MaxAbsDiff(truths[0].want); diff != 0 {
			midFlight <- fmt.Errorf("mid-kill multiply differs from single-node by %g", diff)
			return
		}
		if res.Replica == victim {
			midFlight <- fmt.Errorf("mid-kill multiply answered by the killed replica %s", victim)
			return
		}
		midFlight <- nil
	}()
	waitFor(t, "the multiply to park inside the victim", func() bool {
		return victimRep.inFlight.Load() >= 1
	})
	tc.replicas[victim].kill()
	if err := <-midFlight; err != nil {
		t.Fatalf("multiply in flight during the kill: %v", err)
	}
	close(killed)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	st := tc.clusterStats()
	if st.Failovers < 1 {
		t.Fatalf("failover counter = %d after killing %s under load, want >= 1", st.Failovers, victim)
	}
	if got := tc.client.Retries(); got != 0 {
		t.Fatalf("client made %d retries of its own; failover must be invisible", got)
	}

	// The prober, on scripted time, ejects the corpse; routing then skips
	// it without paying a refused connection per request.
	tc.advanceProbe()
	tc.advanceProbe()
	if !tc.router.ReplicaDown(victim) {
		t.Fatalf("prober has not ejected killed replica %s after %d rounds", victim, 2)
	}
	if got := tc.clusterStats().Ejects; got != 1 {
		t.Fatalf("ejects = %d, want 1", got)
	}
	for i, m := range mats {
		res := tc.multiplyBoth(m, k, int64(8100+i))
		if res.Replica == victim {
			t.Fatalf("matrix %s served by ejected replica %s", m.reg.ID, victim)
		}
	}
	leakCheck(t, tc, before)
}

// TestHangEjectsWithinScriptedDeadline covers the nastier failure: a
// replica that accepts connections but never answers. An in-flight proxy
// attempt against it fails over as soon as scripted time passes the
// attempt timeout; the health prober — whose cadence is also scripted —
// ejects the replica after exactly EjectAfter rounds; and a heal followed
// by one successful probe re-admits it. Throughout, clients see zero
// errors and the proxy goroutine pool never wedges.
func TestHangEjectsWithinScriptedDeadline(t *testing.T) {
	tc := newTestCluster(t, 3, func(cfg *Config) {
		cfg.ReplicateAfter = 1
		cfg.MaxHolders = 2
		cfg.SpillMargin = 1000
		cfg.AttemptTimeout = 2 * time.Second // virtual; fires on Advance
	})
	mats := tc.registerMatrices(6)
	replicateAll(t, tc, mats)

	// Pick a matrix and hang its primary holder.
	st := tc.clusterStats()
	target := mats[0]
	holders := st.Placements[target.reg.ID]
	primary, secondary := holders[0], holders[1]
	before := runtime.NumGoroutine()
	tc.replicas[primary].gate.hang()

	// A multiply fired now proxies to the hung primary and parks there.
	const k = 4
	b := matrix.NewDenseRand[float64](target.reg.Cols, k, 9000)
	want, err := tc.refClient.Multiply(target.reg.ID, target.reg.Rows, b, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *serve.MultiplyResult, 1)
	fail := make(chan error, 1)
	go func() {
		res, err := tc.client.Multiply(target.reg.ID, target.reg.Rows, b, k, 0)
		if err != nil {
			fail <- err
			return
		}
		done <- res
	}()
	tc.router.mu.Lock()
	primRep := tc.router.replicas[primary]
	tc.router.mu.Unlock()
	waitFor(t, "the multiply to park on the hung primary", func() bool {
		return primRep.inFlight.Load() >= 1
	})

	// Scripted time passes the attempt timeout: the router cancels the
	// parked attempt and fails over to the secondary. The client sees a
	// normal, bitwise-correct answer.
	tc.clk.Advance(2 * time.Second)
	select {
	case err := <-fail:
		t.Fatalf("multiply against hung primary surfaced an error: %v", err)
	case res := <-done:
		if diff, _ := res.C.MaxAbsDiff(want.C); diff != 0 {
			t.Fatalf("failover result differs from single-node by %g", diff)
		}
		if res.Replica != secondary {
			t.Fatalf("failover served by %s, want secondary %s", res.Replica, secondary)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("multiply wedged on the hung primary past the scripted attempt timeout")
	}
	failoversAfterHang := tc.clusterStats().Failovers
	if failoversAfterHang < 1 {
		t.Fatalf("failovers = %d, want >= 1", failoversAfterHang)
	}

	// The 2s advance above also kicked one probe round (interval 1s); each
	// advanceProbe completes one more. The hung replica's probes time out
	// in real time (ProbeTimeout), fail, and after EjectAfter=2 failures it
	// is out.
	waitFor(t, "the hang-window probe round", func() bool { return tc.router.ProbeRounds() >= 1 })
	if !tc.router.ReplicaDown(primary) {
		tc.advanceProbe()
	}
	if !tc.router.ReplicaDown(primary) {
		t.Fatalf("prober did not eject hung replica %s within the scripted deadline", primary)
	}
	if got := tc.clusterStats().Ejects; got != 1 {
		t.Fatalf("ejects = %d, want 1", got)
	}

	// While ejected, its matrices route straight to their secondaries —
	// no timeout paid, no errors.
	for i, m := range mats {
		if res := tc.multiplyBoth(m, k, int64(9100+i)); res.Replica == primary {
			t.Fatalf("matrix %s served by ejected replica %s", m.reg.ID, primary)
		}
	}

	// Heal: the parked gate goroutines release, the next probe succeeds,
	// and the replica rejoins rotation with its registry and cache intact.
	tc.replicas[primary].gate.heal()
	tc.advanceProbe()
	if tc.router.ReplicaDown(primary) {
		t.Fatalf("healed replica %s not re-admitted after a successful probe", primary)
	}
	if got := tc.clusterStats().Readmits; got != 1 {
		t.Fatalf("readmits = %d, want 1", got)
	}
	res := tc.multiplyBoth(target, k, 9200)
	if res.Replica != primary {
		t.Fatalf("after re-admission, %s served by %s, want its owner %s back", target.reg.ID, res.Replica, primary)
	}
	if !res.CacheHit {
		t.Fatal("re-admitted replica lost its prepared cache — hang must not destroy state")
	}
	leakCheck(t, tc, before)
}
