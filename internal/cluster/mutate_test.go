package cluster

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/matrix"
	"repro/internal/serve"
)

// localMatrix is one registered matrix plus its client-side mutation fold:
// batches[b] creates epoch b+1 and states[e] is the merged content at
// epoch e.
type localMatrix struct {
	reg     *serve.RegisterResponse
	batches [][]serve.MutateOp
	states  []*matrix.COO[float64]
}

// registerMutable registers count deterministic triplet matrices through
// the router and precomputes a mutation plan for each, folding every batch
// through the delta package so the per-epoch merged content is known
// before the stream starts.
func registerMutable(t *testing.T, tc *testCluster, count, rounds, opsPer int) []*localMatrix {
	t.Helper()
	out := make([]*localMatrix, 0, count)
	for i := 0; i < count; i++ {
		rr := randomTriplets(60+i, 45+i, 350, int64(3000+i))
		reg, err := tc.client.Register(rr)
		if err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
		base := &matrix.COO[float64]{
			Rows:   rr.Rows,
			Cols:   rr.Cols,
			RowIdx: append([]int32(nil), rr.RowIdx...),
			ColIdx: append([]int32(nil), rr.ColIdx...),
			Vals:   append([]float64(nil), rr.Vals...),
		}
		serve.Canonicalize(base)
		if got := serve.ContentID(base); got != reg.ID {
			t.Fatalf("matrix %d: local fold base hashes to %s, router registered %s", i, got, reg.ID)
		}
		lm := &localMatrix{reg: reg, states: []*matrix.COO[float64]{base}}
		rng := rand.New(rand.NewSource(int64(7000 + i)))
		cur := base
		for b := 0; b < rounds; b++ {
			ops := make([]serve.MutateOp, opsPer)
			dops := make([]delta.Op, opsPer)
			for j := range ops {
				row, col := int32(rng.Intn(base.Rows)), int32(rng.Intn(base.Cols))
				del := rng.Float64() < 0.25
				var val float64
				if !del {
					val = rng.NormFloat64()
				}
				ops[j] = serve.MutateOp{Row: row, Col: col, Val: val, Del: del}
				dops[j] = delta.Op{Row: row, Col: col, Val: val, Del: del}
			}
			ov, err := (*delta.Overlay)(nil).Extend(cur, dops)
			if err != nil {
				t.Fatalf("matrix %d fold batch %d: %v", i, b+1, err)
			}
			if ov.NNZ() > 0 {
				cur = ov.Merge()
			}
			lm.batches = append(lm.batches, ops)
			lm.states = append(lm.states, cur)
		}
		out = append(out, lm)
	}
	return out
}

// TestRebalanceMidMutationStream is the dynamic-matrices rebalance
// guarantee: a replica joins the ring while mutation batches are streaming
// through the router, and when the dust settles every holder of every
// matrix — including the joiner, which received its copy mid-stream via
// the epoch-tagged export path — serves the same epoch, the same content
// hash, and bitwise-identical multiply panels, all equal to the client-side
// fold of the full batch sequence.
func TestRebalanceMidMutationStream(t *testing.T) {
	const (
		count  = 12
		rounds = 10
		opsPer = 6
		k      = 4
	)
	// Background compaction off fleet-wide: compaction is representation-
	// only, but it re-bases the content hash, and this test pins exact
	// hash agreement across independently-timed replicas.
	tc := newTestClusterServe(t, 3, nil, func(c *serve.Config) {
		c.CompactRatio, c.CompactCost = -1, -1
	})
	mats := registerMutable(t, tc, count, rounds, opsPer)

	// Stream: round-robin across matrices so every entry is mid-mutation
	// when the join lands. The epoch sequence per matrix is the anchor —
	// any lost or doubled batch on any holder breaks it.
	var acked atomic.Int64
	streamErr := make(chan error, 1)
	go func() {
		defer close(streamErr)
		for b := 0; b < rounds; b++ {
			for i, lm := range mats {
				resp, err := tc.client.Mutate(lm.reg.ID, lm.batches[b])
				if err != nil {
					streamErr <- fmt.Errorf("matrix %d batch %d: %w", i, b+1, err)
					return
				}
				if resp.Epoch != int64(b+1) {
					streamErr <- fmt.Errorf("matrix %d batch %d acked epoch %d", i, b+1, resp.Epoch)
					return
				}
				acked.Add(1)
			}
		}
	}()

	// Join a fourth replica once the stream is well underway.
	waitFor(t, "a third of the stream to ack", func() bool {
		return acked.Load() > count*rounds/3
	})
	join := tc.addReplica("r3")
	if join.Moved == 0 {
		t.Fatal("join moved nothing — with 12 IDs and a quarter of the ring, the joiner must own some")
	}
	if err, ok := <-streamErr; ok && err != nil {
		t.Fatal(err)
	}

	// Settle and audit: every holder of every matrix must agree exactly.
	st := tc.clusterStats()
	ring := tc.router.ring.Load()
	movedChecked := 0
	for i, lm := range mats {
		final := lm.states[rounds]
		bm := matrix.NewDenseRand[float64](lm.reg.Cols, k, int64(9000+i))
		ref := refMultiply(t, final, bm, k)

		res, err := tc.client.Multiply(lm.reg.ID, lm.reg.Rows, bm, k, 0)
		if err != nil {
			t.Fatalf("router multiply %s: %v", lm.reg.ID, err)
		}
		if res.Epoch != rounds {
			t.Fatalf("router serves %s at epoch %d, want %d", lm.reg.ID, res.Epoch, rounds)
		}
		if diff, _ := res.C.MaxAbsDiff(ref); diff != 0 {
			t.Fatalf("router multiply %s differs from the fold by %g", lm.reg.ID, diff)
		}

		holders := st.Placements[lm.reg.ID]
		if len(holders) == 0 {
			t.Fatalf("matrix %s has no holders", lm.reg.ID)
		}
		if owner := ring.Owner(lm.reg.ID); owner == "r3" {
			movedChecked++
			found := false
			for _, h := range holders {
				found = found || h == "r3"
			}
			if !found {
				t.Fatalf("matrix %s is owned by the joiner but not held by it: %v", lm.reg.ID, holders)
			}
		}
		wantHash := fmt.Sprintf("%s+e%d", lm.reg.ID, rounds)
		for _, h := range holders {
			direct := serve.NewClient(tc.replicas[h].base)
			exp, err := direct.Export(lm.reg.ID)
			if err != nil {
				t.Fatalf("export %s from %s: %v", lm.reg.ID, h, err)
			}
			if exp.Epoch != rounds || exp.Hash != wantHash {
				t.Fatalf("holder %s has %s at epoch %d hash %q, want %d/%q",
					h, lm.reg.ID, exp.Epoch, exp.Hash, rounds, wantHash)
			}
			dres, err := direct.Multiply(lm.reg.ID, lm.reg.Rows, bm, k, 0)
			if err != nil {
				t.Fatalf("direct multiply %s on %s: %v", lm.reg.ID, h, err)
			}
			if diff, _ := dres.C.MaxAbsDiff(ref); diff != 0 {
				t.Fatalf("holder %s serves %s bits differing from the fold by %g", h, lm.reg.ID, diff)
			}
		}
	}
	if movedChecked == 0 {
		t.Fatal("ring moved no audited matrix onto the joiner")
	}
	t.Logf("rebalance mid-stream: %d matrices × %d batches, %d moved to the joiner, all holders bitwise-identical",
		count, rounds, join.Moved)
}

// refMultiply computes the serial reference panel over one merged state —
// the bitwise contract makes csr-serial the oracle for every replica's
// format and variant choice.
func refMultiply(t *testing.T, st *matrix.COO[float64], b *matrix.Dense[float64], k int) *matrix.Dense[float64] {
	t.Helper()
	kern, err := core.New("csr-serial", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	p.K = k
	if err := kern.Prepare(st, p); err != nil {
		t.Fatal(err)
	}
	c := matrix.NewDense[float64](st.Rows, k)
	if err := kern.Calculate(b, c, p); err != nil {
		t.Fatal(err)
	}
	return c
}
