package cluster

import (
	"context"
	"fmt"
	"net/http"
	"time"
)

// Health probing. The cadence runs on the router's injectable clock — a
// clock.AfterFunc rearms after every round, and its callback only kicks a
// channel (fake-clock callbacks must not block), which the prober goroutine
// drains to run the actual HTTP probes. Each probe is bounded by a REAL
// timeout: a hung replica reveals itself by a connection that never
// answers, which only wall time can observe. Tests therefore script WHEN
// rounds happen (Advance past ProbeInterval, then wait for ProbeRounds to
// tick) while each round's verdict stays deterministic.

// armProbe schedules the next probe kick on the router clock.
func (rt *Router) armProbe() {
	rt.clk.AfterFunc(rt.cfg.ProbeInterval, func() {
		select {
		case rt.probeKick <- struct{}{}:
		default:
		}
	})
}

// proberLoop runs probe rounds until Close.
func (rt *Router) proberLoop() {
	defer rt.wg.Done()
	for {
		select {
		case <-rt.stop:
			return
		case <-rt.probeKick:
		}
		rt.probeAll()
		rt.probes.Add(1)
		rt.armProbe()
	}
}

// ProbeRounds reports completed probe rounds — the synchronization point
// scripted-clock tests wait on after advancing past ProbeInterval.
func (rt *Router) ProbeRounds() int64 { return rt.probes.Load() }

// probeAll probes every replica once and applies the eject/re-admit rules:
// EjectAfter consecutive failures take a replica out of rotation, a single
// success puts it back.
func (rt *Router) probeAll() {
	rt.mu.Lock()
	reps := make([]*replica, 0, len(rt.replicas))
	for _, rep := range rt.replicas {
		reps = append(reps, rep)
	}
	rt.mu.Unlock()

	for _, rep := range reps {
		err := rt.probeOne(rep)
		rt.mu.Lock()
		if err != nil {
			rep.fails++
			rt.probeFailures.Add(1)
			obsProbeFailures.Inc()
			if !rep.down && rep.fails >= rt.cfg.EjectAfter {
				rep.down = true
				rep.stateChange = time.Now()
				rt.ejects.Add(1)
				obsEjects.Inc()
				rt.logf("cluster: ejected %s after %d failed probes: %v", rep.name, rep.fails, err)
			}
		} else {
			if rep.down {
				rep.down = false
				rep.stateChange = time.Now()
				rt.readmits.Add(1)
				obsReadmits.Inc()
				rt.logf("cluster: re-admitted %s", rep.name)
			}
			rep.fails = 0
		}
		rt.mu.Unlock()
	}
}

// probeOne issues one real-time-bounded /healthz probe.
func (rt *Router) probeOne(rep *replica) error {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := rt.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s /healthz returned %d", rep.name, resp.StatusCode)
	}
	return nil
}

// ReplicaDown reports the prober's current verdict for one replica (false
// for unknown names) — a test observable.
func (rt *Router) ReplicaDown(name string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rep, ok := rt.replicas[name]
	return ok && rep.down
}
