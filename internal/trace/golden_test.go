package trace_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// The trace-schema golden test: a fixed-seed mini-campaign (a CPU-parallel
// run, a simulated-GPU run, and a manual load span — the same span sources
// a real spmmbench -trace invocation hits) is exported as Chrome
// trace_event JSON, and the output is held to the schema contract:
// it parses, every event carries a pinned phase name, no duration is
// negative, worker spans nest inside the pipeline window, and simulated
// time stays on its own process id.

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

func runGoldenCampaign(t *testing.T) *trace.Tracer {
	t.Helper()
	const threads = 3
	tr := trace.New(threads+2, 1<<12)
	tr.SetEnabled(true)
	parallel.SetTracer(tr)
	t.Cleanup(func() { parallel.SetTracer(nil) })

	rng := rand.New(rand.NewSource(42))
	coo := matrix.NewCOO[float64](80, 60, 0)
	for i := 0; i < 400; i++ {
		coo.Append(int32(rng.Intn(80)), int32(rng.Intn(60)), rng.NormFloat64())
	}
	coo.Dedup()

	// The load span spmmbench emits around matrix loading.
	span := tr.Start()
	tr.EndDetail(0, trace.PhaseLoad, "golden", span, int64(coo.NNZ()))

	// The request-lifecycle spans the serving path emits around a multiply:
	// admission-queue wait, one router proxy attempt, the response write.
	span = tr.Start()
	tr.EndDetail(0, trace.PhaseQueue, "", span, 1)
	span = tr.Start()
	tr.EndDetail(0, trace.PhaseAttemptRemote, "replica-a ok", span, 1)
	span = tr.Start()
	tr.EndDetail(0, trace.PhaseRespond, "", span, 0)

	// CPU-parallel run: prepare/warmup/calculate/verify plus per-worker
	// chunk spans through the parallel hook.
	k, err := core.New("csr-omp", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{Reps: 2, Threads: threads, K: 16, BlockSize: 4, Verify: true, Seed: 1, Trace: tr}
	if _, err := core.Run(k, coo, "golden", p); err != nil {
		t.Fatal(err)
	}

	// Simulated-GPU run: sim-kernel spans on the simulated-time process.
	dev, err := gpusim.NewDevice(gpusim.TestDevice(64 << 20))
	if err != nil {
		t.Fatal(err)
	}
	gk, err := core.New("csr-gpu", core.Options{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	gp := core.Params{Reps: 1, Threads: 1, K: 8, BlockSize: 4, Verify: false, Seed: 1, Trace: tr}
	if _, err := core.Run(gk, coo, "golden", gp); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestChromeTraceGolden(t *testing.T) {
	tr := runGoldenCampaign(t)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("exported trace has no events")
	}

	pinned := map[string]bool{}
	for _, name := range trace.Phases() {
		pinned[name] = true
	}

	seen := map[string]bool{}
	var spans []chromeEvent
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M": // process/thread metadata carries display names, not phases
			continue
		case "X":
			if ev.Dur < 0 {
				t.Errorf("span %q at ts=%v has negative duration %v", ev.Name, ev.Ts, ev.Dur)
			}
			spans = append(spans, ev)
		case "i":
			if ev.S != "t" {
				t.Errorf("instant %q has scope %q, want thread scope \"t\"", ev.Name, ev.S)
			}
		default:
			t.Errorf("event %q has unknown phase type %q", ev.Name, ev.Ph)
			continue
		}
		if !pinned[ev.Name] {
			t.Errorf("event name %q is not in the pinned phase set %v", ev.Name, trace.Phases())
		}
		if ev.Pid != 1 && ev.Pid != 2 {
			t.Errorf("event %q on pid %d, want 1 (wall) or 2 (simulated)", ev.Name, ev.Pid)
		}
		if ev.Ts < 0 {
			t.Errorf("event %q has negative timestamp %v", ev.Name, ev.Ts)
		}
		seen[ev.Name] = true
	}

	// The mini-campaign must have produced the whole pipeline vocabulary.
	for _, want := range []string{
		trace.PhaseLoad, trace.PhasePrepare, trace.PhaseWarmup, trace.PhaseCalculate,
		trace.PhaseVerify, trace.PhaseChunk, trace.PhaseSimKernel,
		trace.PhaseQueue, trace.PhaseAttemptRemote, trace.PhaseRespond,
	} {
		if !seen[want] {
			t.Errorf("mini-campaign emitted no %q event", want)
		}
	}

	// Nesting within a lane: overlapping spans on the same (pid, tid) must
	// be properly nested — a span starting inside another ends inside it.
	// The exporter rounds ns to µs floats, so allow that much slack.
	const slack = 0.002
	for i, a := range spans {
		for j, b := range spans {
			if i == j || a.Pid != b.Pid || a.Tid != b.Tid {
				continue
			}
			if a.Ts <= b.Ts && b.Ts < a.Ts+a.Dur {
				if b.Ts+b.Dur > a.Ts+a.Dur+slack {
					t.Errorf("span %q [%v, %v] starts inside %q [%v, %v] but ends outside it",
						b.Name, b.Ts, b.Ts+b.Dur, a.Name, a.Ts, a.Ts+a.Dur)
				}
			}
		}
	}

	// Cross-lane: every worker chunk span must fall inside the wall-clock
	// pipeline window spanned by lane 0 (chunks only run under a pipeline
	// phase, never before the first or after the last).
	var lo, hi float64
	first := true
	for _, s := range spans {
		if s.Pid == 1 && s.Tid == 0 {
			if first || s.Ts < lo {
				lo = s.Ts
			}
			if first || s.Ts+s.Dur > hi {
				hi = s.Ts + s.Dur
			}
			first = false
		}
	}
	if first {
		t.Fatal("no lane-0 pipeline spans in the trace")
	}
	for _, s := range spans {
		if s.Pid != 1 || s.Tid == 0 || s.Name != trace.PhaseChunk {
			continue
		}
		if s.Ts < lo-slack || s.Ts+s.Dur > hi+slack {
			t.Errorf("worker chunk [%v, %v] on tid %d escapes the pipeline window [%v, %v]",
				s.Ts, s.Ts+s.Dur, s.Tid, lo, hi)
		}
	}

	// Simulated-time events stay on the simulated process, and vice versa:
	// sim phases never leak onto the wall-clock pid.
	for _, s := range spans {
		isSimName := s.Name == trace.PhaseSimKernel || s.Name == trace.PhaseSimChunk
		if (s.Pid == 2) != isSimName {
			t.Errorf("span %q on pid %d: simulated phases and pid 2 must coincide", s.Name, s.Pid)
		}
	}
}

// TestSummaryGolden pins the summary derived from the same campaign: every
// phase share is a valid fraction, wall time is positive, and nothing was
// dropped at this buffer size.
func TestSummaryGolden(t *testing.T) {
	tr := runGoldenCampaign(t)
	s := tr.Summary()
	if s.WallNs <= 0 {
		t.Fatalf("wall = %d ns, want > 0", s.WallNs)
	}
	if s.Dropped != 0 {
		t.Fatalf("dropped %d spans at a 4096-span buffer", s.Dropped)
	}
	if s.WorkerIdleFraction < 0 || s.WorkerIdleFraction > 1 {
		t.Fatalf("worker idle fraction %v outside [0, 1]", s.WorkerIdleFraction)
	}
	for _, p := range s.Phases {
		if p.Share < 0 || p.Share > 1 {
			t.Errorf("phase %s share %v outside [0, 1]", p.Name, p.Share)
		}
		if p.Count <= 0 || p.TotalNs < 0 || p.MaxNs < 0 {
			t.Errorf("phase %s has degenerate stats: %+v", p.Name, p)
		}
	}
}
