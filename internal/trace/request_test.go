package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Tests for the request-scoped tracing layer: nil-safety of the disabled
// path, ring bounding and filtering, the done-flag race guard, and the
// stitched multi-process Chrome export.

func TestRequestsDisabledNilSafe(t *testing.T) {
	var rr *Requests
	if rr.Enabled() {
		t.Fatal("nil *Requests reports Enabled")
	}
	req := rr.Begin("rid-1", "m1") // must be nil
	if req != nil {
		t.Fatal("Begin on nil *Requests returned a live *Req")
	}
	// Every *Req method must be a no-op on nil.
	if req.ID() != "" {
		t.Fatal("nil Req has an ID")
	}
	if req.Now() != 0 {
		t.Fatal("nil Req reports a nonzero Now")
	}
	if req.At(time.Now()) != 0 {
		t.Fatal("nil Req reports a nonzero At")
	}
	req.Phase(PhaseQueue, "", 0, 0)
	req.AddPhase(PhaseKernel, "v", 0, 10, 1)
	req.SetError("boom")
	if rec := req.Snapshot(); len(rec.Spans) != 0 {
		t.Fatal("nil Req snapshot has spans")
	}
	if rec := req.Finish(); rec.ID != "" {
		t.Fatal("nil Req Finish returned a record")
	}
	if got := rr.Snapshot(ReqFilter{}); got != nil {
		t.Fatalf("nil Requests snapshot = %v, want nil", got)
	}
	if rr.Total() != 0 {
		t.Fatal("nil Requests has a total")
	}
	if NewRequests(0) != nil || NewRequests(-3) != nil {
		t.Fatal("NewRequests with cap <= 0 should disable (nil)")
	}
}

func TestRequestsDisabledZeroAlloc(t *testing.T) {
	var rr *Requests
	allocs := testing.AllocsPerRun(100, func() {
		req := rr.Begin("rid", "m")
		s := req.Now()
		req.Phase(PhaseQueue, "", s, 0)
		req.AddPhase(PhaseKernel, "csr", s, 5, 1)
		req.Finish()
	})
	if allocs != 0 {
		t.Fatalf("disabled request-trace path allocates %v per op, want 0", allocs)
	}
}

func TestRequestLifecycle(t *testing.T) {
	rr := NewRequests(8)
	if !rr.Enabled() {
		t.Fatal("NewRequests(8) not enabled")
	}
	req := rr.Begin("rid-7", "mat-a")
	if req == nil {
		t.Fatal("Begin returned nil on an enabled ring")
	}
	if req.ID() != "rid-7" {
		t.Fatalf("ID = %q", req.ID())
	}
	qs := req.Now()
	time.Sleep(time.Millisecond)
	if d := req.Phase(PhaseQueue, "", qs, 3); d <= 0 {
		t.Fatalf("Phase returned non-positive duration %d", d)
	}
	req.AddPhase(PhaseKernel, "csr-omp", req.Now(), 2e6, 64)
	rec := req.Finish()
	if rec.ID != "rid-7" || rec.Subject != "mat-a" {
		t.Fatalf("record identity = %q/%q", rec.ID, rec.Subject)
	}
	if rec.TotalNs <= 0 {
		t.Fatalf("TotalNs = %d, want > 0", rec.TotalNs)
	}
	if len(rec.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(rec.Spans))
	}
	if rec.Spans[0].Name != PhaseQueue || rec.Spans[1].Name != PhaseKernel {
		t.Fatalf("span order = %q, %q", rec.Spans[0].Name, rec.Spans[1].Name)
	}
	if rec.Spans[1].Detail != "csr-omp" || rec.Spans[1].Arg != 64 {
		t.Fatalf("kernel span = %+v", rec.Spans[1])
	}

	// Finished record must be in the ring.
	got := rr.Snapshot(ReqFilter{ID: "rid-7"})
	if len(got) != 1 || got[0].ID != "rid-7" {
		t.Fatalf("ring snapshot by ID = %+v", got)
	}

	// Post-Finish span adds (a late batcher flush) must drop silently.
	req.AddPhase(PhaseBatch, "", 0, 1, 1)
	if got := rr.Snapshot(ReqFilter{ID: "rid-7"}); len(got[0].Spans) != 2 {
		t.Fatal("AddPhase after Finish mutated the sealed record")
	}
	// Double Finish must not duplicate the ring entry.
	req.Finish()
	if n := len(rr.Snapshot(ReqFilter{ID: "rid-7"})); n != 1 {
		t.Fatalf("double Finish produced %d ring entries", n)
	}
}

func TestRequestsRingBoundAndFilters(t *testing.T) {
	rr := NewRequests(4)
	for i := 0; i < 10; i++ {
		req := rr.Begin(fmt.Sprintf("rid-%d", i), fmt.Sprintf("mat-%d", i%2))
		req.AddPhase(PhaseKernel, "", 0, int64(i)*1e6, 1)
		req.Finish()
	}
	if rr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", rr.Total())
	}
	all := rr.Snapshot(ReqFilter{})
	if len(all) != 4 {
		t.Fatalf("ring holds %d records, want cap 4", len(all))
	}
	// Newest first: rid-9, rid-8, rid-7, rid-6.
	for i, want := range []string{"rid-9", "rid-8", "rid-7", "rid-6"} {
		if all[i].ID != want {
			t.Fatalf("snapshot[%d] = %q, want %q", i, all[i].ID, want)
		}
	}
	bySubj := rr.Snapshot(ReqFilter{Subject: "mat-0"})
	for _, r := range bySubj {
		if r.Subject != "mat-0" {
			t.Fatalf("subject filter leaked %+v", r)
		}
	}
	if len(bySubj) != 2 { // rid-8, rid-6 survive in the ring
		t.Fatalf("subject filter kept %d, want 2", len(bySubj))
	}
	if got := rr.Snapshot(ReqFilter{Limit: 2}); len(got) != 2 {
		t.Fatalf("limit 2 returned %d", len(got))
	}
	minDur := rr.Snapshot(ReqFilter{MinDur: 8 * time.Millisecond})
	for _, r := range minDur {
		if time.Duration(r.TotalNs) < 8*time.Millisecond {
			t.Fatalf("min-duration filter leaked %v total", time.Duration(r.TotalNs))
		}
	}
}

func TestRequestConcurrentSpans(t *testing.T) {
	// The batcher goroutine adds phases while the handler goroutine may be
	// finishing — exercised under -race in check.sh.
	rr := NewRequests(32)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		req := rr.Begin(fmt.Sprintf("r%d", i), "m")
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				req.AddPhase(PhaseBatch, "", 0, 1, 1)
			}
		}()
		go func() {
			defer wg.Done()
			req.Phase(PhaseQueue, "", req.Now(), 0)
			req.Finish()
		}()
	}
	wg.Wait()
	if got := len(rr.Snapshot(ReqFilter{})); got != 16 {
		t.Fatalf("ring has %d records, want 16", got)
	}
}

func TestWriteStitchedChromeTrace(t *testing.T) {
	procs := []Process{
		{Name: "router", Spans: []ReqSpan{
			{Name: PhaseAttemptRemote, Detail: "replica-a ok", Start: 1e6, Dur: 5e6, Arg: 1},
			{Name: PhaseRespond, Start: 6e6, Dur: 1e6},
		}},
		{Name: "replica replica-a", Spans: []ReqSpan{
			{Name: PhaseQueue, Start: 1.2e6, Dur: 0.1e6},
			{Name: PhaseKernel, Detail: "csr-omp", Start: 1.4e6, Dur: 4e6, Arg: 64},
		}},
	}
	var buf bytes.Buffer
	if err := WriteStitchedChromeTrace(&buf, procs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("stitched trace is not valid JSON: %v", err)
	}
	names := map[int]string{}
	spansPerPid := map[int]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				names[ev.Pid], _ = ev.Args["name"].(string)
			}
		case "X", "i":
			spansPerPid[ev.Pid]++
			if ev.Dur < 0 || ev.Ts < 0 {
				t.Fatalf("bad event %+v", ev)
			}
		default:
			t.Fatalf("unknown phase type %q", ev.Ph)
		}
	}
	if names[1] != "router" || names[2] != "replica replica-a" {
		t.Fatalf("process rows = %v, want router on pid 1, replica on pid 2", names)
	}
	if spansPerPid[1] != 2 || spansPerPid[2] != 2 {
		t.Fatalf("span counts per pid = %v", spansPerPid)
	}
}
