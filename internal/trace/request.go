package trace

import (
	"io"
	"sync"
	"time"
)

// Request-scoped tracing: while the Tracer attributes a *process's* time to
// phases on per-lane rings, a ReqRecord attributes one *request's* latency to
// phases as it crosses admission, batching, preparation, the kernel, and (in
// a cluster) router failover attempts. Records are correlated across
// processes by a request ID minted at the edge and propagated on the wire
// (X-Spmm-Request-Id), so a router can stitch its own attempt spans together
// with the winning replica's queue/batch/kernel spans into one timeline.
//
// The contract matches the Tracer's: a nil *Requests ring is a permanently
// disabled recorder, Begin on it returns a nil *Req, and every *Req method is
// nil-safe and allocation-free — instrumented hot paths hold the pointers
// unconditionally and pay only nil checks when request tracing is off.

// ReqSpan is one phase interval inside a request timeline. Start and Dur are
// nanoseconds relative to the request's own start (not the tracer epoch), so
// records from different processes can be aligned by shifting a single
// offset.
type ReqSpan struct {
	// Name is a pinned phase name from Phases().
	Name string
	// Detail refines the phase (cache hit/miss, kernel variant,
	// "replica verdict" for attempt-remote spans). Free-form.
	Detail string
	// Start and Dur are nanoseconds since the request began.
	Start int64
	Dur   int64
	// Arg is an optional numeric payload (batch width, attempt number).
	Arg int64
}

// ReqRecord is one finished request timeline.
type ReqRecord struct {
	// ID is the request ID (minted at the edge or client-supplied).
	ID string
	// Subject is what the request operated on (the matrix ID).
	Subject string
	// Start is the wall-clock begin time (informational; alignment across
	// processes uses span offsets, never wall clocks).
	Start time.Time
	// TotalNs is the request's end-to-end duration inside this process.
	TotalNs int64
	// Error holds the failure class when the request did not succeed.
	Error string
	// Spans is the phase breakdown, in recording order.
	Spans []ReqSpan
}

// Req accumulates one in-flight request's spans. Methods are safe for
// concurrent use (the batcher goroutine records kernel spans while the
// handler goroutine may be timing out) and nil-safe (nil = tracing disabled).
type Req struct {
	ring  *Requests
	start time.Time

	mu   sync.Mutex
	done bool
	rec  ReqRecord
}

// Now returns nanoseconds since the request began (0 for nil).
func (q *Req) Now() int64 {
	if q == nil {
		return 0
	}
	return int64(time.Since(q.start))
}

// At converts an absolute time into this request's relative offset, clamped
// at 0 (0 for nil). The batcher uses it to fan one dispatch interval out to
// every joined request's timeline.
func (q *Req) At(t time.Time) int64 {
	if q == nil {
		return 0
	}
	d := int64(t.Sub(q.start))
	if d < 0 {
		d = 0
	}
	return d
}

// ID returns the request ID ("" for nil).
func (q *Req) ID() string {
	if q == nil {
		return ""
	}
	return q.rec.ID
}

// Phase records a span from a start offset (a prior Now() value) to now and
// returns its duration in nanoseconds. Nil receivers return 0.
func (q *Req) Phase(name, detail string, start, arg int64) int64 {
	if q == nil {
		return 0
	}
	dur := q.Now() - start
	if dur < 0 {
		dur = 0
	}
	q.AddPhase(name, detail, start, dur, arg)
	return dur
}

// AddPhase records a span with an explicitly measured interval — the escape
// hatch for spans measured outside the request goroutine (kernel dispatches
// fanned out by the batcher). After Finish the record is immutable, so late
// spans are dropped rather than racing the ring snapshot.
func (q *Req) AddPhase(name, detail string, start, dur, arg int64) {
	if q == nil {
		return
	}
	q.mu.Lock()
	if !q.done {
		q.rec.Spans = append(q.rec.Spans, ReqSpan{Name: name, Detail: detail, Start: start, Dur: dur, Arg: arg})
	}
	q.mu.Unlock()
}

// SetError tags the record with a failure class.
func (q *Req) SetError(msg string) {
	if q == nil {
		return
	}
	q.mu.Lock()
	if !q.done {
		q.rec.Error = msg
	}
	q.mu.Unlock()
}

// Snapshot copies the record as it stands, with TotalNs set to the current
// elapsed time — used to build the timing header before the response body is
// written. Returns a zero record for nil.
func (q *Req) Snapshot() ReqRecord {
	if q == nil {
		return ReqRecord{}
	}
	q.mu.Lock()
	rec := q.rec
	rec.Spans = append([]ReqSpan(nil), q.rec.Spans...)
	q.mu.Unlock()
	if rec.TotalNs == 0 {
		rec.TotalNs = q.Now()
	}
	return rec
}

// Finish seals the record, stamps its total duration, pushes it onto the
// ring, and returns the finished record. Later Phase/AddPhase calls no-op.
// Finishing twice keeps the first seal.
func (q *Req) Finish() ReqRecord {
	if q == nil {
		return ReqRecord{}
	}
	q.mu.Lock()
	if !q.done {
		q.done = true
		q.rec.TotalNs = q.Now()
		rec := q.rec
		q.mu.Unlock()
		q.ring.push(rec)
		return rec
	}
	rec := q.rec
	q.mu.Unlock()
	return rec
}

// Requests is a bounded ring of recently finished request records. A nil
// ring is a valid, permanently disabled recorder.
type Requests struct {
	mu    sync.Mutex
	buf   []ReqRecord
	total int64
}

// NewRequests builds a ring holding the most recent capacity records.
// capacity <= 0 returns nil — the disabled recorder.
func NewRequests(capacity int) *Requests {
	if capacity <= 0 {
		return nil
	}
	return &Requests{buf: make([]ReqRecord, 0, capacity)}
}

// Enabled reports whether records are kept (false for nil).
func (rr *Requests) Enabled() bool { return rr != nil }

// Begin opens a request timeline. Nil rings return nil — every downstream
// instrumentation call then no-ops for free.
func (rr *Requests) Begin(id, subject string) *Req {
	if rr == nil {
		return nil
	}
	q := &Req{ring: rr, start: time.Now()}
	q.rec = ReqRecord{ID: id, Subject: subject, Start: q.start, Spans: make([]ReqSpan, 0, 8)}
	return q
}

// Total reports how many records have ever been finished into the ring.
func (rr *Requests) Total() int64 {
	if rr == nil {
		return 0
	}
	rr.mu.Lock()
	defer rr.mu.Unlock()
	return rr.total
}

func (rr *Requests) push(rec ReqRecord) {
	if rr == nil {
		return
	}
	rr.mu.Lock()
	if len(rr.buf) < cap(rr.buf) {
		rr.buf = append(rr.buf, rec)
	} else {
		rr.buf[rr.total%int64(cap(rr.buf))] = rec
	}
	rr.total++
	rr.mu.Unlock()
}

// ReqFilter selects records out of the ring. Zero values match everything.
type ReqFilter struct {
	// ID matches exactly when set.
	ID string
	// Subject matches the record's subject (matrix ID) exactly when set.
	Subject string
	// MinDur drops records faster than this when > 0.
	MinDur time.Duration
	// Limit caps the result count when > 0 (newest records win).
	Limit int
}

// Snapshot returns matching records, newest first.
func (rr *Requests) Snapshot(f ReqFilter) []ReqRecord {
	if rr == nil {
		return nil
	}
	rr.mu.Lock()
	n := len(rr.buf)
	recs := make([]ReqRecord, 0, n)
	// Walk newest to oldest: the ring's logical order is total-1 .. total-n.
	for i := int64(0); i < int64(n); i++ {
		idx := (rr.total - 1 - i) % int64(cap(rr.buf))
		if idx < 0 {
			idx += int64(cap(rr.buf))
		}
		recs = append(recs, rr.buf[idx])
	}
	rr.mu.Unlock()
	out := recs[:0]
	for _, rec := range recs {
		if f.ID != "" && rec.ID != f.ID {
			continue
		}
		if f.Subject != "" && rec.Subject != f.Subject {
			continue
		}
		if f.MinDur > 0 && rec.TotalNs < int64(f.MinDur) {
			continue
		}
		out = append(out, rec)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Process is one participant's row in a stitched distributed trace: a name
// ("router", "replica r1") plus its spans with Start offsets already aligned
// onto the stitched timeline (the router's own spans keep their offsets; a
// replica's spans are shifted by the attempt span that carried them).
type Process struct {
	Name  string
	Spans []ReqSpan
}

// WriteStitchedChromeTrace exports one distributed request as Chrome
// trace_event JSON with one process row per participant — the multi-process
// sibling of Tracer.WriteChromeTrace, reusing the same event schema.
func WriteStitchedChromeTrace(w io.Writer, procs []Process) error {
	events := make([]any, 0, len(procs)*4)
	for i, p := range procs {
		pid := i + 1
		events = append(events,
			chromeMeta{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]string{"name": p.Name}},
			chromeMeta{Name: "thread_name", Ph: "M", Pid: pid, Tid: 0, Args: map[string]string{"name": "request"}},
		)
		for _, s := range p.Spans {
			ev := chromeEvent{
				Name: s.Name,
				Ts:   float64(s.Start) / 1e3,
				Pid:  pid,
				Tid:  0,
			}
			if s.Dur > 0 {
				ev.Ph = "X"
				ev.Dur = float64(s.Dur) / 1e3
			} else {
				ev.Ph = "i"
				ev.S = "t"
			}
			if s.Detail != "" || s.Arg != 0 {
				ev.Args = map[string]any{}
				if s.Detail != "" {
					ev.Args["detail"] = s.Detail
				}
				if s.Arg != 0 {
					ev.Args["arg"] = s.Arg
				}
			}
			events = append(events, ev)
		}
	}
	return writeChromeEnvelope(w, events)
}
