package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// chromeEvent is one Chrome trace_event record. The "X" (complete) phase
// carries both timestamp and duration; "i" marks instants. Timestamps are
// microseconds, as the format demands.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeMeta is a metadata record naming a process or thread.
type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// Chrome-trace process ids: wall-clock spans and simulated-time spans live
// in separate processes so their unrelated timelines never interleave.
const (
	chromePidWall = 1
	chromePidSim  = 2
)

// WriteChromeTrace exports the recorded spans as Chrome trace_event JSON
// (the {"traceEvents": [...]} envelope). Load the file in chrome://tracing
// or https://ui.perfetto.dev. Lane 0 renders as the "pipeline" thread,
// lane 1+w as "worker w"; simulated spans land in a second process named
// "simulated time".
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	events := make([]any, 0, len(spans)+8)
	events = append(events,
		chromeMeta{Name: "process_name", Ph: "M", Pid: chromePidWall, Args: map[string]string{"name": "spmm-bench"}},
		chromeMeta{Name: "thread_name", Ph: "M", Pid: chromePidWall, Tid: 0, Args: map[string]string{"name": "pipeline"}},
	)
	simSeen := false
	laneSeen := map[int]bool{}
	for _, s := range spans {
		pid := chromePidWall
		if s.Sim {
			pid = chromePidSim
			if !simSeen {
				simSeen = true
				events = append(events,
					chromeMeta{Name: "process_name", Ph: "M", Pid: chromePidSim, Args: map[string]string{"name": "simulated time"}})
			}
		} else if s.Lane > 0 && !laneSeen[s.Lane] {
			laneSeen[s.Lane] = true
			events = append(events, chromeMeta{Name: "thread_name", Ph: "M", Pid: chromePidWall, Tid: s.Lane,
				Args: map[string]string{"name": fmt.Sprintf("worker %d", s.Lane-1)}})
		}
		ev := chromeEvent{
			Name: s.Name,
			Ts:   float64(s.Start) / 1e3,
			Pid:  pid,
			Tid:  s.Lane,
		}
		if s.Dur > 0 {
			ev.Ph = "X"
			ev.Dur = float64(s.Dur) / 1e3
		} else {
			ev.Ph = "i"
			ev.S = "t" // thread-scoped instant
		}
		if s.Detail != "" || s.Arg != 0 {
			ev.Args = map[string]any{}
			if s.Detail != "" {
				ev.Args["detail"] = s.Detail
			}
			if s.Arg != 0 {
				ev.Args["arg"] = s.Arg
			}
		}
		events = append(events, ev)
	}
	return writeChromeEnvelope(w, events)
}

// writeChromeEnvelope wraps events in the {"traceEvents": [...]} envelope.
func writeChromeEnvelope(w io.Writer, events []any) error {
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// PhaseStat aggregates every span sharing one name.
type PhaseStat struct {
	Name  string
	Count int
	// TotalNs sums the spans' durations; Share is TotalNs over the summed
	// duration of all phases (self-times overlap across lanes and nesting
	// levels, so shares describe attribution weight, not wall fractions).
	TotalNs int64
	MaxNs   int64
	Share   float64
	Sim     bool
}

// Summary is the flat per-phase aggregation of a trace.
type Summary struct {
	Phases []PhaseStat
	// WallNs is the wall-clock window covered: last span end minus first
	// span start over the non-simulated spans.
	WallNs int64
	// WorkerBusyNs sums chunk-span durations; WorkerIdleFraction is
	// 1 − busy/(lanes × window) over the worker lanes that recorded chunk
	// spans — the visual imbalance number, folded flat.
	WorkerBusyNs       int64
	WorkerIdleFraction float64
	Dropped            int64
}

// Summarize aggregates spans into per-phase totals plus the worker idle
// fraction derived from chunk spans.
func Summarize(spans []Span, dropped int64) Summary {
	sum := Summary{Dropped: dropped}
	byName := map[string]*PhaseStat{}
	var order []string
	var wallLo, wallHi int64
	var chunkLo, chunkHi int64
	chunkLanes := map[int]bool{}
	first := true
	chunkFirst := true
	var total int64
	for _, s := range spans {
		st, ok := byName[s.Name]
		if !ok {
			st = &PhaseStat{Name: s.Name, Sim: s.Sim}
			byName[s.Name] = st
			order = append(order, s.Name)
		}
		st.Count++
		st.TotalNs += s.Dur
		if s.Dur > st.MaxNs {
			st.MaxNs = s.Dur
		}
		total += s.Dur
		if !s.Sim {
			if first || s.Start < wallLo {
				wallLo = s.Start
			}
			if end := s.Start + s.Dur; first || end > wallHi {
				wallHi = end
			}
			first = false
		}
		if s.Name == PhaseChunk && !s.Sim {
			sum.WorkerBusyNs += s.Dur
			chunkLanes[s.Lane] = true
			if chunkFirst || s.Start < chunkLo {
				chunkLo = s.Start
			}
			if end := s.Start + s.Dur; chunkFirst || end > chunkHi {
				chunkHi = end
			}
			chunkFirst = false
		}
	}
	if !first {
		sum.WallNs = wallHi - wallLo
	}
	if n := len(chunkLanes); n > 0 && chunkHi > chunkLo {
		capacity := int64(n) * (chunkHi - chunkLo)
		idle := 1 - float64(sum.WorkerBusyNs)/float64(capacity)
		if idle < 0 {
			idle = 0
		}
		sum.WorkerIdleFraction = idle
	}
	sort.Strings(order)
	for _, name := range order {
		st := byName[name]
		if total > 0 {
			st.Share = float64(st.TotalNs) / float64(total)
		}
		sum.Phases = append(sum.Phases, *st)
	}
	return sum
}

// Summary aggregates the tracer's recorded spans.
func (t *Tracer) Summary() Summary {
	return Summarize(t.Spans(), t.Dropped())
}

// WriteTable renders the summary as an aligned text table: one row per
// phase plus the idle-fraction and dropped-span footers.
func (s Summary) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\tcount\ttotal ms\tmax ms\tshare")
	for _, p := range s.Phases {
		name := p.Name
		if p.Sim {
			name += " (sim)"
		}
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\t%.1f%%\n",
			name, p.Count, float64(p.TotalNs)/1e6, float64(p.MaxNs)/1e6, p.Share*100)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "wall: %.3f ms", float64(s.WallNs)/1e6)
	if s.WorkerBusyNs > 0 {
		fmt.Fprintf(w, "  worker idle: %.1f%%", s.WorkerIdleFraction*100)
	}
	if s.Dropped > 0 {
		fmt.Fprintf(w, "  dropped: %d", s.Dropped)
	}
	_, err := fmt.Fprintln(w)
	return err
}
