// Package trace is the suite's observability substrate: a zero-dependency,
// low-overhead span tracer that attributes a campaign's wall time to phases
// (load / prepare / calculate / verify), to harness recovery machinery
// (attempts, retries, backoff, degradation) and to individual parallel
// workers (per-chunk spans, exposing load imbalance visually) — the same
// per-phase attribution a roofline analyzer gives a C kernel, but for the
// whole pipeline.
//
// Design constraints, in order:
//
//   - Disabled tracing must be free: 0 allocs/op and a handful of
//     instructions on the hot path (a nil check or one atomic load). The
//     kernels' zero-allocation audit covers the tracer-disabled paths.
//   - The enabled hot path takes no locks: every span lands in a per-lane
//     ring buffer; a lane is owned by one worker at a time (the worker-id
//     contract of internal/parallel), and slot reservation is a single
//     atomic add, so concurrent lanes never contend.
//   - One schema for real and simulated time: simulator spans (gpusim,
//     machine) carry the Sim mark and their own nanosecond timeline, and
//     export under a separate Chrome-trace process so wall-clock and
//     modelled time never interleave on one timeline.
//
// Spans export as Chrome trace_event JSON (load in chrome://tracing or
// https://ui.perfetto.dev) or aggregate into a flat per-phase Summary.
package trace

import (
	"sort"
	"sync/atomic"
	"time"
)

// Span is one recorded interval (or instant, when Dur is 0 and the name is
// an event name). Times are nanoseconds since the tracer's epoch; simulated
// spans (Sim true) count nanoseconds of modelled time instead.
type Span struct {
	// Name is the phase name — one of the pinned set in Phases for
	// pipeline spans (the golden schema test enforces this).
	Name string
	// Detail refines the name with the concrete subject (kernel name,
	// matrix, error class). Free-form; not part of the pinned schema.
	Detail string
	// Lane is the ring-buffer index the span was recorded on: 0 for the
	// sequential pipeline, 1+w for parallel worker w.
	Lane int
	// Start and Dur are nanoseconds since the tracer epoch (or simulated
	// nanoseconds for Sim spans).
	Start int64
	Dur   int64
	// Arg is an optional numeric payload (rows in a chunk, attempt
	// number, modelled cycles).
	Arg int64
	// Sim marks a simulated-time span (gpusim / machine models).
	Sim bool
}

// Pinned pipeline phase names. Spans wired by this repository use these
// names (plus free-form Detail); the trace-schema golden test fails when a
// new span name ships without being added here.
const (
	PhaseLoad      = "load"       // matrix load/generation (CLI)
	PhasePrepare   = "prepare"    // Kernel.Prepare (format conversion)
	PhaseWarmup    = "warmup"     // untimed warm-up Calculate
	PhaseCalculate = "calculate"  // one timed Calculate repetition
	PhaseVerify    = "verify"     // COO-reference verification
	PhaseKernel    = "kernel"     // one kernels.*Opts dispatch
	PhaseChunk     = "chunk"      // one parallel worker's chunk
	PhaseAttempt   = "attempt"    // one harness attempt (core.Run inside)
	PhaseBackoff   = "backoff"    // harness retry backoff sleep
	PhaseRetry     = "retry"      // instant: a retry was granted
	PhaseDegrade   = "degrade"    // instant: budget degradation substituted a kernel
	PhaseSkip      = "skip"       // instant: journal resume skipped a run
	PhaseSimKernel = "sim-kernel" // simulated-time kernel execution (gpusim/machine)
	PhaseSimChunk  = "sim-chunk"  // simulated-time per-thread chunk (machine.Multicore)
	PhaseBatch     = "batch"      // one coalesced serving-layer dispatch (internal/serve)

	// Request-scoped phases (distributed tracing, internal/serve +
	// internal/cluster). They appear both on Tracer lanes and in per-request
	// ReqRecord timelines.
	PhaseQueue         = "queue"          // admission-queue wait before a multiply runs
	PhaseAttemptRemote = "attempt-remote" // one router->replica proxy attempt (detail: "replica verdict")
	PhaseRespond       = "respond"        // response encode + write back to the client
	PhaseMutate        = "mutate"         // one applied mutation batch (internal/serve, detail: matrix id)
	PhaseCompact       = "compact"        // one overlay compaction: merge + re-prepare + swap
)

// Phases lists every pinned phase name; the golden schema test pins
// pipeline traces to this set.
func Phases() []string {
	return []string{
		PhaseLoad, PhasePrepare, PhaseWarmup, PhaseCalculate, PhaseVerify,
		PhaseKernel, PhaseChunk, PhaseAttempt, PhaseBackoff, PhaseRetry,
		PhaseDegrade, PhaseSkip, PhaseSimKernel, PhaseSimChunk, PhaseBatch,
		PhaseQueue, PhaseAttemptRemote, PhaseRespond,
		PhaseMutate, PhaseCompact,
	}
}

// lane is one ring buffer. Only one worker writes a lane at a time (the
// worker-id contract), so the atomic counter is for cross-region visibility
// and safe draining, not for write contention.
type lane struct {
	n   atomic.Int64 // spans ever recorded on this lane
	buf []Span
	// pad keeps adjacent lanes' counters off one cache line so workers
	// bumping their own counters never false-share.
	_ [48]byte
}

// Tracer records spans into per-lane ring buffers. The zero value and the
// nil pointer are valid, permanently-disabled tracers: every method is
// nil-safe and free when disabled, so pipeline code holds a *Tracer
// unconditionally and never branches on configuration.
type Tracer struct {
	enabled atomic.Bool
	epoch   time.Time
	lanes   []*lane
	dropped atomic.Int64
	simNow  atomic.Int64 // simulated-time cursor (ns), see SimAdvance
}

// New builds a tracer with the given number of lanes (1 sequential lane +
// one per parallel worker is the usual sizing) and ring capacity per lane.
// The tracer starts disabled; call SetEnabled(true) to record.
func New(lanes, capacity int) *Tracer {
	if lanes < 1 {
		lanes = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	t := &Tracer{epoch: time.Now(), lanes: make([]*lane, lanes)}
	for i := range t.lanes {
		t.lanes[i] = &lane{buf: make([]Span, capacity)}
	}
	return t
}

// SetEnabled switches recording on or off. Spans recorded so far are kept.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether the tracer records. Nil tracers are disabled.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Now returns nanoseconds since the tracer epoch (0 for nil tracers).
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.epoch))
}

// Start opens a span: it returns the current monotonic offset when the
// tracer records, and 0 when disabled — End treats a 0 token as "nothing
// was started", so the Start/End pair is free end to end when tracing is
// off. The +1 below keeps a span genuinely started at offset 0 (the first
// nanosecond of the epoch) from being confused with the disabled token;
// one nanosecond of skew is far below timer resolution.
func (t *Tracer) Start() int64 {
	if !t.Enabled() {
		return 0
	}
	n := int64(time.Since(t.epoch))
	if n == 0 {
		n = 1
	}
	return n
}

// End closes a span opened by Start, recording it on the lane. A 0 start
// token (disabled at Start time) is a no-op, as is a disabled or nil
// tracer. Lanes out of range count as dropped.
func (t *Tracer) End(laneIdx int, name string, start int64, arg int64) {
	if start == 0 || !t.Enabled() {
		return
	}
	now := int64(time.Since(t.epoch))
	t.push(laneIdx, Span{Name: name, Lane: laneIdx, Start: start, Dur: now - start, Arg: arg})
}

// EndDetail is End with a Detail refinement (kernel name, matrix, class).
func (t *Tracer) EndDetail(laneIdx int, name, detail string, start int64, arg int64) {
	if start == 0 || !t.Enabled() {
		return
	}
	now := int64(time.Since(t.epoch))
	t.push(laneIdx, Span{Name: name, Detail: detail, Lane: laneIdx, Start: start, Dur: now - start, Arg: arg})
}

// Instant records a zero-duration event at the current time.
func (t *Tracer) Instant(laneIdx int, name, detail string, arg int64) {
	if !t.Enabled() {
		return
	}
	now := int64(time.Since(t.epoch))
	t.push(laneIdx, Span{Name: name, Detail: detail, Lane: laneIdx, Start: now, Arg: arg})
}

// Add records a span with explicit timestamps — the escape hatch for
// callers that measured the interval themselves.
func (t *Tracer) Add(laneIdx int, name, detail string, start, dur, arg int64) {
	if !t.Enabled() {
		return
	}
	t.push(laneIdx, Span{Name: name, Detail: detail, Lane: laneIdx, Start: start, Dur: dur, Arg: arg})
}

// AddSim records a simulated-time span with explicit modelled timestamps.
// Simulated spans live on their own timeline (Chrome-trace pid 2), so the
// simulators emit the same schema as real runs without their modelled
// nanoseconds colliding with wall-clock offsets.
func (t *Tracer) AddSim(laneIdx int, name, detail string, start, dur, arg int64) {
	if !t.Enabled() {
		return
	}
	t.push(laneIdx, Span{Name: name, Detail: detail, Lane: laneIdx, Start: start, Dur: dur, Arg: arg, Sim: true})
}

// SimNow returns the simulated-time cursor in nanoseconds. Simulators call
// SimAdvance after each modelled kernel so consecutive simulated spans lay
// out sequentially, mirroring how the modelled executions would follow one
// another on the device.
func (t *Tracer) SimNow() int64 {
	if t == nil {
		return 0
	}
	return t.simNow.Load()
}

// SimAdvance moves the simulated-time cursor forward by dur nanoseconds and
// returns the span's start (the cursor before the advance).
func (t *Tracer) SimAdvance(dur int64) int64 {
	if t == nil {
		return 0
	}
	return t.simNow.Add(dur) - dur
}

// push stores a span on its lane's ring. Slot reservation is one atomic
// add; the ring keeps the most recent `capacity` spans and counts overwrites
// of still-unread history implicitly via the lane counter (Spans reports
// only the surviving window; Dropped counts out-of-range lanes).
func (t *Tracer) push(laneIdx int, s Span) {
	if laneIdx < 0 || laneIdx >= len(t.lanes) {
		t.dropped.Add(1)
		return
	}
	l := t.lanes[laneIdx]
	i := l.n.Add(1) - 1
	l.buf[i%int64(len(l.buf))] = s
}

// Dropped reports spans lost to out-of-range lane indices.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Len reports the number of spans currently held (post-wrap survivors).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for _, l := range t.lanes {
		n += int(min64(l.n.Load(), int64(len(l.buf))))
	}
	return n
}

// Spans snapshots every recorded span, ordered by start time (wall-clock
// spans first, then simulated). Call it after the traced work has
// quiesced; it is not synchronised against concurrent recording beyond the
// lane counters.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, t.Len())
	for _, l := range t.lanes {
		n := l.n.Load()
		kept := min64(n, int64(len(l.buf)))
		// Oldest surviving span first.
		for i := n - kept; i < n; i++ {
			out = append(out, l.buf[i%int64(len(l.buf))])
		}
	}
	sortSpans(out)
	return out
}

// sortSpans orders wall-clock spans before simulated ones, then by start
// time, then by lane — a stable layout for exporters and tests.
func sortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Sim != b.Sim {
			return !a.Sim
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Lane != b.Lane {
			return a.Lane < b.Lane
		}
		return a.Dur > b.Dur // parents (longer) before children at equal start
	})
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
