package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestDisabledIsFree(t *testing.T) {
	tr := New(2, 16)
	allocs := testing.AllocsPerRun(100, func() {
		s := tr.Start()
		tr.End(0, PhaseCalculate, s, 0)
		tr.Instant(0, PhaseRetry, "", 1)
		tr.Add(1, PhaseChunk, "", 10, 20, 30)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %.1f allocs/op, want 0", allocs)
	}
	if tr.Len() != 0 {
		t.Fatalf("disabled tracer recorded %d spans, want 0", tr.Len())
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		s := tr.Start()
		tr.End(0, PhaseCalculate, s, 0)
		tr.EndDetail(0, PhaseCalculate, "x", s, 0)
		tr.Instant(0, PhaseRetry, "", 0)
		tr.Add(0, PhaseChunk, "", 1, 2, 3)
		tr.AddSim(0, PhaseSimKernel, "", 1, 2, 3)
		tr.SetEnabled(true)
		_ = tr.Enabled()
		_ = tr.Now()
		_ = tr.SimNow()
		_ = tr.SimAdvance(5)
		_ = tr.Dropped()
		_ = tr.Len()
		_ = tr.Spans()
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestEnabledRecordsSpans(t *testing.T) {
	tr := New(3, 8)
	tr.SetEnabled(true)
	s := tr.Start()
	if s == 0 {
		t.Fatal("enabled Start returned the disabled token 0")
	}
	time.Sleep(time.Millisecond)
	tr.EndDetail(0, PhaseCalculate, "csr/parallel", s, 7)
	tr.Instant(0, PhaseRetry, "timeout", 2)
	tr.Add(1, PhaseChunk, "", 100, 50, 10)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	var calc *Span
	for i := range spans {
		if spans[i].Name == PhaseCalculate {
			calc = &spans[i]
		}
	}
	if calc == nil {
		t.Fatal("calculate span missing")
	}
	if calc.Dur <= 0 {
		t.Fatalf("calculate span has non-positive duration %d", calc.Dur)
	}
	if calc.Detail != "csr/parallel" || calc.Arg != 7 {
		t.Fatalf("calculate span detail/arg = %q/%d", calc.Detail, calc.Arg)
	}
}

func TestRingKeepsNewest(t *testing.T) {
	tr := New(1, 4)
	tr.SetEnabled(true)
	for i := int64(1); i <= 10; i++ {
		tr.Add(0, PhaseChunk, "", i, 1, i)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want ring capacity 4", len(spans))
	}
	for i, s := range spans {
		want := int64(7 + i)
		if s.Arg != want {
			t.Fatalf("span %d has arg %d, want %d (newest 4 kept in order)", i, s.Arg, want)
		}
	}
}

func TestOutOfRangeLaneDropped(t *testing.T) {
	tr := New(1, 4)
	tr.SetEnabled(true)
	tr.Add(5, PhaseChunk, "", 1, 1, 0)
	tr.Add(-1, PhaseChunk, "", 1, 1, 0)
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("Dropped() = %d, want 2", got)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", tr.Len())
	}
}

func TestSimCursor(t *testing.T) {
	tr := New(1, 8)
	tr.SetEnabled(true)
	s1 := tr.SimAdvance(100)
	s2 := tr.SimAdvance(250)
	if s1 != 0 || s2 != 100 || tr.SimNow() != 350 {
		t.Fatalf("sim cursor: starts %d,%d now %d; want 0,100,350", s1, s2, tr.SimNow())
	}
	tr.AddSim(0, PhaseSimKernel, "csr", s1, 100, 0)
	tr.AddSim(0, PhaseSimKernel, "csr", s2, 250, 0)
	spans := tr.Spans()
	if len(spans) != 2 || !spans[0].Sim || !spans[1].Sim {
		t.Fatalf("want 2 simulated spans, got %+v", spans)
	}
	if spans[1].Start != spans[0].Start+spans[0].Dur {
		t.Fatal("simulated spans are not laid out sequentially")
	}
}

func TestSpansOrder(t *testing.T) {
	tr := New(3, 8)
	tr.SetEnabled(true)
	tr.Add(2, PhaseChunk, "", 50, 10, 0)
	tr.Add(1, PhaseChunk, "", 30, 10, 0)
	tr.AddSim(0, PhaseSimKernel, "", 10, 5, 0)
	tr.Add(0, PhaseCalculate, "", 20, 100, 0)
	spans := tr.Spans()
	wantStarts := []int64{20, 30, 50, 10} // wall by start, sim last
	for i, s := range spans {
		if s.Start != wantStarts[i] {
			t.Fatalf("span %d start = %d, want %d (order %+v)", i, s.Start, wantStarts[i], spans)
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := New(2, 16)
	tr.SetEnabled(true)
	s := tr.Start()
	tr.EndDetail(0, PhaseCalculate, "csr/parallel", s, 3)
	tr.Add(1, PhaseChunk, "", 1000, 500, 42)
	tr.Instant(0, PhaseDegrade, "bcsr->csr", 0)
	tr.AddSim(0, PhaseSimKernel, "ell", 0, 2000, 64)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	var complete, instant, meta, sim int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
			if ev["dur"].(float64) <= 0 {
				t.Fatalf("complete event with non-positive dur: %v", ev)
			}
		case "i":
			instant++
		case "M":
			meta++
		}
		if ev["pid"].(float64) == 2 && ev["ph"] != "M" {
			sim++
		}
	}
	if complete != 3 || instant != 1 || sim != 1 {
		t.Fatalf("event mix complete=%d instant=%d sim=%d, want 3/1/1", complete, instant, sim)
	}
	if meta < 3 {
		t.Fatalf("only %d metadata records; want process/thread names for both pids", meta)
	}
}

func TestSummarize(t *testing.T) {
	spans := []Span{
		{Name: PhaseCalculate, Lane: 0, Start: 0, Dur: 600},
		{Name: PhaseChunk, Lane: 1, Start: 0, Dur: 300},
		{Name: PhaseChunk, Lane: 2, Start: 0, Dur: 100},
	}
	s := Summarize(spans, 1)
	if s.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", s.Dropped)
	}
	if s.WallNs != 600 {
		t.Fatalf("WallNs = %d, want 600", s.WallNs)
	}
	if s.WorkerBusyNs != 400 {
		t.Fatalf("WorkerBusyNs = %d, want 400", s.WorkerBusyNs)
	}
	// 2 worker lanes over a 300ns chunk window → capacity 600, busy 400.
	wantIdle := 1 - 400.0/600.0
	if diff := s.WorkerIdleFraction - wantIdle; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("WorkerIdleFraction = %v, want %v", s.WorkerIdleFraction, wantIdle)
	}
	var calc, chunk *PhaseStat
	for i := range s.Phases {
		switch s.Phases[i].Name {
		case PhaseCalculate:
			calc = &s.Phases[i]
		case PhaseChunk:
			chunk = &s.Phases[i]
		}
	}
	if calc == nil || chunk == nil {
		t.Fatalf("phases missing: %+v", s.Phases)
	}
	if calc.Count != 1 || calc.TotalNs != 600 || chunk.Count != 2 || chunk.TotalNs != 400 || chunk.MaxNs != 300 {
		t.Fatalf("bad aggregation: calc=%+v chunk=%+v", calc, chunk)
	}
	if calc.Share != 0.6 || chunk.Share != 0.4 {
		t.Fatalf("shares calc=%v chunk=%v, want 0.6/0.4", calc.Share, chunk.Share)
	}
}

func TestSummaryTable(t *testing.T) {
	tr := New(2, 8)
	tr.SetEnabled(true)
	tr.Add(0, PhaseCalculate, "", 0, 1_000_000, 0)
	tr.Add(1, PhaseChunk, "", 0, 500_000, 0)
	tr.AddSim(0, PhaseSimKernel, "", 0, 42, 0)
	var buf bytes.Buffer
	if err := tr.Summary().WriteTable(&buf); err != nil {
		t.Fatalf("WriteTable: %v", err)
	}
	out := buf.String()
	for _, want := range []string{PhaseCalculate, PhaseChunk, "sim-kernel (sim)", "wall:", "worker idle:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary table missing %q:\n%s", want, out)
		}
	}
}

func TestPhasesPinned(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Phases() {
		if seen[p] {
			t.Fatalf("duplicate phase name %q", p)
		}
		seen[p] = true
	}
	if len(seen) != 20 {
		t.Fatalf("pinned phase set has %d names, want 20 — update this test AND the golden schema test together", len(seen))
	}
}

func TestConcurrentLanes(t *testing.T) {
	const lanes, per = 8, 200
	tr := New(lanes, per)
	tr.SetEnabled(true)
	done := make(chan struct{})
	for l := 0; l < lanes; l++ {
		go func(l int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				s := tr.Start()
				tr.End(l, PhaseChunk, s, int64(i))
			}
		}(l)
	}
	for l := 0; l < lanes; l++ {
		<-done
	}
	if got := tr.Len(); got != lanes*per {
		t.Fatalf("Len() = %d, want %d", got, lanes*per)
	}
	for _, s := range tr.Spans() {
		if s.Dur < 0 {
			t.Fatalf("negative duration span: %+v", s)
		}
	}
}
