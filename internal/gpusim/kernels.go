package gpusim

import (
	"fmt"

	"repro/internal/formats"
	"repro/internal/matrix"
)

// This file holds the suite's "OpenMP target offload" GPU kernels: the
// straightforward thread-per-row (or thread-per-nonzero) translations of
// the CPU loops, exactly the kind of code the thesis' `#pragma omp target
// teams distribute parallel for` produced. They are deliberately naive in
// their memory behaviour — every lane walks B and C rows privately
// (uncoalesced across lanes), COO accumulates with per-element atomics, and
// warps diverge on irregular row lengths — because that is the baseline the
// cuSparse study (Study 7) compares the tuned vendorlib kernels against.
//
// The inner j-loops are accounted with the Warp range operations and the
// arithmetic is done directly on the device buffers, keeping the functional
// simulation linear in real work.

const threadsPerBlock = 256

// checkGPU validates operand shapes for C[:, :k] = A(ar×ac) × B[:, :k].
func checkGPU(ar, ac int, b, c *matrix.Dense[float64], k int) error {
	switch {
	case k < 0 || k > b.Cols || k > c.Cols:
		return fmt.Errorf("%w: k=%d with B %dx%d, C %dx%d", ErrLaunch, k, b.Rows, b.Cols, c.Rows, c.Cols)
	case b.Rows != ac || c.Rows != ar:
		return fmt.Errorf("%w: A is %dx%d, B %dx%d, C %dx%d", ErrLaunch, ar, ac, b.Rows, b.Cols, c.Rows, c.Cols)
	}
	return nil
}

// UploadDenseK copies the first k columns of h into a device buffer with
// compact stride k.
func UploadDenseK(d *Device, h *matrix.Dense[float64], k int) (*F64Buf, error) {
	buf, err := d.AllocF64(h.Rows*k, nil)
	if err != nil {
		return nil, err
	}
	for i := 0; i < h.Rows; i++ {
		copy(buf.Data[i*k:(i+1)*k], h.Data[i*h.Stride:i*h.Stride+k])
	}
	return buf, nil
}

// DownloadDenseK copies a compact rows×k device buffer into the first k
// columns of h.
func DownloadDenseK(buf *F64Buf, h *matrix.Dense[float64], k int) {
	for i := 0; i < h.Rows; i++ {
		copy(h.Data[i*h.Stride:i*h.Stride+k], buf.Data[i*k:(i+1)*k])
	}
}

func gridFor(work int) int {
	if work <= 0 {
		return 0
	}
	return (work + threadsPerBlock - 1) / threadsPerBlock
}

// csrBufs uploads a CSR matrix.
func csrBufs(d *Device, a *formats.CSR[float64]) (rowPtr, colIdx *I32Buf, vals *F64Buf, err error) {
	if rowPtr, err = d.AllocI32(len(a.RowPtr), a.RowPtr); err != nil {
		return
	}
	if colIdx, err = d.AllocI32(len(a.ColIdx), a.ColIdx); err != nil {
		return
	}
	vals, err = d.AllocF64(len(a.Vals), a.Vals)
	return
}

// SpMMCSR runs the naive thread-per-row CSR SpMM on the device and returns
// the modelled launch result. C[:, :k] is overwritten.
func SpMMCSR(d *Device, a *formats.CSR[float64], b, c *matrix.Dense[float64], k int) (LaunchResult, error) {
	if err := checkGPU(a.Rows, a.Cols, b, c, k); err != nil {
		return LaunchResult{}, err
	}
	defer d.FreeAll()
	rowPtr, colIdx, vals, err := csrBufs(d, a)
	if err != nil {
		return LaunchResult{}, err
	}
	bd, err := UploadDenseK(d, b, k)
	if err != nil {
		return LaunchResult{}, err
	}
	cd, err := d.AllocF64(a.Rows*k, nil)
	if err != nil {
		return LaunchResult{}, err
	}

	rows := a.Rows
	res, err := d.Launch(gridFor(rows), threadsPerBlock, func(w *Warp) {
		base := w.GlobalThread(0)
		if base >= rows {
			return
		}
		n := min(WarpSize, rows-base)
		mask := MaskFirst(n)
		var rIdx, start, length, cols, endIdx, idx, cIdx0, bIdx0 [WarpSize]int32
		var vv [WarpSize]float64
		for lane := 0; lane < n; lane++ {
			rIdx[lane] = int32(base + lane)
			endIdx[lane] = rIdx[lane] + 1
			cIdx0[lane] = rIdx[lane] * int32(k)
		}
		// Row extents: two coalesced int32 gathers.
		w.GatherI32(rowPtr, &rIdx, mask, &start)
		w.GatherI32(rowPtr, &endIdx, mask, &length)
		maxLen := 0
		for lane := 0; lane < n; lane++ {
			length[lane] -= start[lane]
			maxLen = max(maxLen, int(length[lane]))
		}
		// Zero the output rows.
		w.ScatterF64Range(cd, &cIdx0, k, mask)
		for lane := 0; lane < n; lane++ {
			clear(cd.Data[int(cIdx0[lane]) : int(cIdx0[lane])+k])
		}
		// Walk nonzeros in lockstep; lanes with shorter rows idle while
		// the warp's longest row finishes (thread-per-row divergence).
		for t := 0; t < maxLen; t++ {
			m := uint32(0)
			for lane := 0; lane < n; lane++ {
				if int32(t) < length[lane] {
					m |= 1 << lane
					idx[lane] = start[lane] + int32(t)
				}
			}
			if m == 0 {
				break
			}
			w.GatherI32(colIdx, &idx, m, &cols)
			w.GatherF64(vals, &idx, m, &vv)
			for lane := 0; lane < n; lane++ {
				if m&(1<<lane) != 0 {
					bIdx0[lane] = cols[lane] * int32(k)
				}
			}
			// Per-lane private j-loop over B and C rows (uncoalesced
			// across lanes).
			w.GatherF64Range(bd, &bIdx0, k, m)
			w.GatherF64Range(cd, &cIdx0, k, m)
			w.ScatterF64Range(cd, &cIdx0, k, m)
			w.FMAN(k, m)
			for lane := 0; lane < n; lane++ {
				if m&(1<<lane) == 0 || vv[lane] == 0 {
					continue
				}
				crow := cd.Data[int(cIdx0[lane]) : int(cIdx0[lane])+k]
				brow := bd.Data[int(bIdx0[lane]) : int(bIdx0[lane])+k]
				v := vv[lane]
				for j := range crow {
					crow[j] += v * brow[j]
				}
			}
		}
	})
	if err != nil {
		return LaunchResult{}, err
	}
	DownloadDenseK(cd, c, k)
	return res, nil
}

// SpMMCOO runs the naive thread-per-nonzero COO SpMM (atomic accumulation)
// on the device. C[:, :k] is overwritten.
func SpMMCOO(d *Device, a *matrix.COO[float64], b, c *matrix.Dense[float64], k int) (LaunchResult, error) {
	if err := checkGPU(a.Rows, a.Cols, b, c, k); err != nil {
		return LaunchResult{}, err
	}
	defer d.FreeAll()
	rowIdx, err := d.AllocI32(len(a.RowIdx), a.RowIdx)
	if err != nil {
		return LaunchResult{}, err
	}
	colIdx, err := d.AllocI32(len(a.ColIdx), a.ColIdx)
	if err != nil {
		return LaunchResult{}, err
	}
	vals, err := d.AllocF64(len(a.Vals), a.Vals)
	if err != nil {
		return LaunchResult{}, err
	}
	bd, err := UploadDenseK(d, b, k)
	if err != nil {
		return LaunchResult{}, err
	}
	cd, err := d.AllocF64(a.Rows*k, nil)
	if err != nil {
		return LaunchResult{}, err
	}

	nnz := a.NNZ()
	res, err := d.Launch(gridFor(nnz), threadsPerBlock, func(w *Warp) {
		base := w.GlobalThread(0)
		if base >= nnz {
			return
		}
		n := min(WarpSize, nnz-base)
		mask := MaskFirst(n)
		var pIdx, rr, cc, bIdx0, cIdx0 [WarpSize]int32
		var vv [WarpSize]float64
		for lane := 0; lane < n; lane++ {
			pIdx[lane] = int32(base + lane)
		}
		w.GatherI32(rowIdx, &pIdx, mask, &rr)
		w.GatherI32(colIdx, &pIdx, mask, &cc)
		w.GatherF64(vals, &pIdx, mask, &vv)
		for lane := 0; lane < n; lane++ {
			bIdx0[lane] = cc[lane] * int32(k)
			cIdx0[lane] = rr[lane] * int32(k)
		}
		w.GatherF64Range(bd, &bIdx0, k, mask)
		w.FMAN(k, mask)
		// Every contribution lands with an atomic add (colliding rows!).
		w.AtomicAddF64Range(cd, &cIdx0, k, mask)
		for lane := 0; lane < n; lane++ {
			if vv[lane] == 0 {
				continue
			}
			crow := cd.Data[int(cIdx0[lane]) : int(cIdx0[lane])+k]
			brow := bd.Data[int(bIdx0[lane]) : int(bIdx0[lane])+k]
			v := vv[lane]
			for j := range crow {
				crow[j] += v * brow[j]
			}
		}
	})
	if err != nil {
		return LaunchResult{}, err
	}
	DownloadDenseK(cd, c, k)
	return res, nil
}

// SpMMELL runs the naive thread-per-row ELLPACK SpMM. The storage layout of
// a decides the coalescing of the A-array loads: ColMajor lets adjacent
// rows (lanes) read adjacent slots, RowMajor does not — the layout ablation
// the suite benchmarks. Padded slots cost their slot loads and lockstep
// iterations, the fixed-shape price of ELL on SIMT hardware.
func SpMMELL(d *Device, a *formats.ELL[float64], b, c *matrix.Dense[float64], k int) (LaunchResult, error) {
	if err := checkGPU(a.Rows, a.Cols, b, c, k); err != nil {
		return LaunchResult{}, err
	}
	defer d.FreeAll()
	colIdx, err := d.AllocI32(len(a.ColIdx), a.ColIdx)
	if err != nil {
		return LaunchResult{}, err
	}
	vals, err := d.AllocF64(len(a.Vals), a.Vals)
	if err != nil {
		return LaunchResult{}, err
	}
	bd, err := UploadDenseK(d, b, k)
	if err != nil {
		return LaunchResult{}, err
	}
	cd, err := d.AllocF64(a.Rows*k, nil)
	if err != nil {
		return LaunchResult{}, err
	}

	rows, width := a.Rows, a.Width
	colMajor := a.Layout == formats.ColMajor
	res, err := d.Launch(gridFor(rows), threadsPerBlock, func(w *Warp) {
		base := w.GlobalThread(0)
		if base >= rows {
			return
		}
		n := min(WarpSize, rows-base)
		mask := MaskFirst(n)
		var slot, cols, bIdx0, cIdx0 [WarpSize]int32
		var vv [WarpSize]float64
		for lane := 0; lane < n; lane++ {
			cIdx0[lane] = int32((base + lane) * k)
		}
		w.ScatterF64Range(cd, &cIdx0, k, mask)
		for lane := 0; lane < n; lane++ {
			clear(cd.Data[int(cIdx0[lane]) : int(cIdx0[lane])+k])
		}
		for s := 0; s < width; s++ {
			for lane := 0; lane < n; lane++ {
				r := base + lane
				if colMajor {
					slot[lane] = int32(s*rows + r)
				} else {
					slot[lane] = int32(r*width + s)
				}
			}
			w.GatherI32(colIdx, &slot, mask, &cols)
			w.GatherF64(vals, &slot, mask, &vv)
			// All lanes march in lockstep: padded lanes (v == 0) do the
			// loads and FMAs too — the GPU has no cheap way to skip them.
			for lane := 0; lane < n; lane++ {
				bIdx0[lane] = cols[lane] * int32(k)
			}
			w.GatherF64Range(bd, &bIdx0, k, mask)
			w.GatherF64Range(cd, &cIdx0, k, mask)
			w.ScatterF64Range(cd, &cIdx0, k, mask)
			w.FMAN(k, mask)
			for lane := 0; lane < n; lane++ {
				if vv[lane] == 0 {
					continue // adds zero; result unchanged
				}
				crow := cd.Data[int(cIdx0[lane]) : int(cIdx0[lane])+k]
				brow := bd.Data[int(bIdx0[lane]) : int(bIdx0[lane])+k]
				v := vv[lane]
				for j := range crow {
					crow[j] += v * brow[j]
				}
			}
		}
	})
	if err != nil {
		return LaunchResult{}, err
	}
	DownloadDenseK(cd, c, k)
	return res, nil
}

// SpMMBCSR runs the naive thread-per-output-row BCSR SpMM: thread i owns
// matrix row i, walking the blocks of its block row.
func SpMMBCSR(d *Device, a *formats.BCSR[float64], b, c *matrix.Dense[float64], k int) (LaunchResult, error) {
	if err := checkGPU(a.Rows, a.Cols, b, c, k); err != nil {
		return LaunchResult{}, err
	}
	defer d.FreeAll()
	rowPtr, err := d.AllocI32(len(a.RowPtr), a.RowPtr)
	if err != nil {
		return LaunchResult{}, err
	}
	colIdx, err := d.AllocI32(len(a.ColIdx), a.ColIdx)
	if err != nil {
		return LaunchResult{}, err
	}
	vals, err := d.AllocF64(len(a.Vals), a.Vals)
	if err != nil {
		return LaunchResult{}, err
	}
	bd, err := UploadDenseK(d, b, k)
	if err != nil {
		return LaunchResult{}, err
	}
	cd, err := d.AllocF64(a.Rows*k, nil)
	if err != nil {
		return LaunchResult{}, err
	}

	rows, br, bc := a.Rows, a.BR, a.BC
	cols := a.Cols
	blkSize := int32(br * bc)
	res, err := d.Launch(gridFor(rows), threadsPerBlock, func(w *Warp) {
		base := w.GlobalThread(0)
		if base >= rows {
			return
		}
		n := min(WarpSize, rows-base)
		mask := MaskFirst(n)
		var briIdx, briNext, start, length, blkPos, bcol, vIdx, bIdx0, cIdx0 [WarpSize]int32
		var vv [WarpSize]float64
		for lane := 0; lane < n; lane++ {
			briIdx[lane] = int32((base + lane) / br)
			briNext[lane] = briIdx[lane] + 1
			cIdx0[lane] = int32((base + lane) * k)
		}
		w.GatherI32(rowPtr, &briIdx, mask, &start)
		w.GatherI32(rowPtr, &briNext, mask, &length)
		maxBlocks := 0
		for lane := 0; lane < n; lane++ {
			length[lane] -= start[lane]
			maxBlocks = max(maxBlocks, int(length[lane]))
		}
		w.ScatterF64Range(cd, &cIdx0, k, mask)
		for lane := 0; lane < n; lane++ {
			clear(cd.Data[int(cIdx0[lane]) : int(cIdx0[lane])+k])
		}
		for t := 0; t < maxBlocks; t++ {
			m := uint32(0)
			for lane := 0; lane < n; lane++ {
				if int32(t) < length[lane] {
					m |= 1 << lane
					blkPos[lane] = start[lane] + int32(t)
				}
			}
			if m == 0 {
				break
			}
			w.GatherI32(colIdx, &blkPos, m, &bcol)
			for cc := 0; cc < bc; cc++ {
				m2 := uint32(0)
				for lane := 0; lane < n; lane++ {
					if m&(1<<lane) == 0 {
						continue
					}
					col := int(bcol[lane])*bc + cc
					if col >= cols {
						continue
					}
					m2 |= 1 << lane
					r := (base + lane) % br
					vIdx[lane] = blkPos[lane]*blkSize + int32(r*bc+cc)
					bIdx0[lane] = int32(col * k)
				}
				if m2 == 0 {
					continue
				}
				w.GatherF64(vals, &vIdx, m2, &vv)
				w.GatherF64Range(bd, &bIdx0, k, m2)
				w.GatherF64Range(cd, &cIdx0, k, m2)
				w.ScatterF64Range(cd, &cIdx0, k, m2)
				w.FMAN(k, m2)
				for lane := 0; lane < n; lane++ {
					if m2&(1<<lane) == 0 || vv[lane] == 0 {
						continue
					}
					crow := cd.Data[int(cIdx0[lane]) : int(cIdx0[lane])+k]
					brow := bd.Data[int(bIdx0[lane]) : int(bIdx0[lane])+k]
					v := vv[lane]
					for j := range crow {
						crow[j] += v * brow[j]
					}
				}
			}
		}
	})
	if err != nil {
		return LaunchResult{}, err
	}
	DownloadDenseK(cd, c, k)
	return res, nil
}

// SpMMBELL runs the naive thread-per-output-row Blocked-ELL SpMM. BELL is
// the blocked format GPU vendors actually expose (cuSPARSE's blocked-ELL):
// every block row has the same number of block slots, so — unlike BCSR —
// the lockstep walk has no divergence; padding blocks (zero values) are the
// price.
func SpMMBELL(d *Device, a *formats.BELL[float64], b, c *matrix.Dense[float64], k int) (LaunchResult, error) {
	if err := checkGPU(a.Rows, a.Cols, b, c, k); err != nil {
		return LaunchResult{}, err
	}
	defer d.FreeAll()
	colIdx, err := d.AllocI32(len(a.ColIdx), a.ColIdx)
	if err != nil {
		return LaunchResult{}, err
	}
	vals, err := d.AllocF64(len(a.Vals), a.Vals)
	if err != nil {
		return LaunchResult{}, err
	}
	bd, err := UploadDenseK(d, b, k)
	if err != nil {
		return LaunchResult{}, err
	}
	cd, err := d.AllocF64(a.Rows*k, nil)
	if err != nil {
		return LaunchResult{}, err
	}

	rows, br, bc, width := a.Rows, a.BR, a.BC, a.Width
	cols := a.Cols
	blkSize := br * bc
	res, err := d.Launch(gridFor(rows), threadsPerBlock, func(w *Warp) {
		base := w.GlobalThread(0)
		if base >= rows {
			return
		}
		n := min(WarpSize, rows-base)
		mask := MaskFirst(n)
		var slot, bcol, vIdx, bIdx0, cIdx0 [WarpSize]int32
		var vv [WarpSize]float64
		for lane := 0; lane < n; lane++ {
			cIdx0[lane] = int32((base + lane) * k)
		}
		w.ScatterF64Range(cd, &cIdx0, k, mask)
		for lane := 0; lane < n; lane++ {
			clear(cd.Data[int(cIdx0[lane]) : int(cIdx0[lane])+k])
		}
		// Every block row walks exactly `width` slots: perfect lockstep,
		// padding blocks included.
		for s := 0; s < width; s++ {
			for lane := 0; lane < n; lane++ {
				brow := (base + lane) / br
				slot[lane] = int32(brow*width + s)
			}
			w.GatherI32(colIdx, &slot, mask, &bcol)
			for cc := 0; cc < bc; cc++ {
				m2 := uint32(0)
				for lane := 0; lane < n; lane++ {
					col := int(bcol[lane])*bc + cc
					if col >= cols {
						continue
					}
					m2 |= 1 << lane
					r := (base + lane) % br
					vIdx[lane] = slot[lane]*int32(blkSize) + int32(r*bc+cc)
					bIdx0[lane] = int32(col * k)
				}
				if m2 == 0 {
					continue
				}
				w.GatherF64(vals, &vIdx, m2, &vv)
				w.GatherF64Range(bd, &bIdx0, k, m2)
				w.GatherF64Range(cd, &cIdx0, k, m2)
				w.ScatterF64Range(cd, &cIdx0, k, m2)
				w.FMAN(k, m2)
				for lane := 0; lane < n; lane++ {
					if m2&(1<<lane) == 0 || vv[lane] == 0 {
						continue
					}
					crow := cd.Data[int(cIdx0[lane]) : int(cIdx0[lane])+k]
					brow := bd.Data[int(bIdx0[lane]) : int(bIdx0[lane])+k]
					v := vv[lane]
					for j := range crow {
						crow[j] += v * brow[j]
					}
				}
			}
		}
	})
	if err != nil {
		return LaunchResult{}, err
	}
	DownloadDenseK(cd, c, k)
	return res, nil
}

// TransposeDense charges an on-device blocked transpose of an n×k dense
// matrix (coalesced reads, strided writes) and performs it functionally,
// returning the kᵀ×n buffer. Study 8's rule applies on the GPU too: the
// transposed kernels pay for producing Bᵀ.
func TransposeDense(d *Device, src *F64Buf, n, k int) (*F64Buf, error) {
	dst, err := d.AllocF64(n*k, nil)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			dst.Data[j*n+i] = src.Data[i*k+j]
		}
	}
	// One warp per 32 rows: coalesced source reads, strided destination
	// writes.
	_, err = d.Launch(gridFor(n), threadsPerBlock, func(w *Warp) {
		base := w.GlobalThread(0)
		if base >= n {
			return
		}
		rows := min(WarpSize, n-base)
		mask := MaskFirst(rows)
		var idx [WarpSize]int32
		for lane := 0; lane < rows; lane++ {
			idx[lane] = int32((base + lane) * k)
		}
		w.GatherF64Range(src, &idx, k, mask)
		w.StridedBulk(k, mask)
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// SpMMCSRT runs the transposed-B thread-per-row CSR SpMM on the device,
// including the on-device transposition of B (charged to the kernel, as in
// Study 8). The inner loop walks a column of Bᵀ — one cache line per
// element — which is what makes the transposed variant lose.
func SpMMCSRT(d *Device, a *formats.CSR[float64], b, c *matrix.Dense[float64], k int) (LaunchResult, error) {
	if err := checkGPU(a.Rows, a.Cols, b, c, k); err != nil {
		return LaunchResult{}, err
	}
	defer d.FreeAll()
	rowPtr, colIdx, vals, err := csrBufs(d, a)
	if err != nil {
		return LaunchResult{}, err
	}
	bd, err := UploadDenseK(d, b, k)
	if err != nil {
		return LaunchResult{}, err
	}
	n := a.Cols
	btd, err := TransposeDense(d, bd, n, k)
	if err != nil {
		return LaunchResult{}, err
	}
	cd, err := d.AllocF64(a.Rows*k, nil)
	if err != nil {
		return LaunchResult{}, err
	}

	rows := a.Rows
	res, err := d.Launch(gridFor(rows), threadsPerBlock, func(w *Warp) {
		base := w.GlobalThread(0)
		if base >= rows {
			return
		}
		nw := min(WarpSize, rows-base)
		mask := MaskFirst(nw)
		var rIdx, endIdx, start, length, cols, idx, cIdx0 [WarpSize]int32
		var vv [WarpSize]float64
		for lane := 0; lane < nw; lane++ {
			rIdx[lane] = int32(base + lane)
			endIdx[lane] = rIdx[lane] + 1
			cIdx0[lane] = rIdx[lane] * int32(k)
		}
		w.GatherI32(rowPtr, &rIdx, mask, &start)
		w.GatherI32(rowPtr, &endIdx, mask, &length)
		maxLen := 0
		for lane := 0; lane < nw; lane++ {
			length[lane] -= start[lane]
			maxLen = max(maxLen, int(length[lane]))
		}
		w.ScatterF64Range(cd, &cIdx0, k, mask)
		for lane := 0; lane < nw; lane++ {
			clear(cd.Data[int(cIdx0[lane]) : int(cIdx0[lane])+k])
		}
		for t := 0; t < maxLen; t++ {
			m := uint32(0)
			for lane := 0; lane < nw; lane++ {
				if int32(t) < length[lane] {
					m |= 1 << lane
					idx[lane] = start[lane] + int32(t)
				}
			}
			if m == 0 {
				break
			}
			w.GatherI32(colIdx, &idx, m, &cols)
			w.GatherF64(vals, &idx, m, &vv)
			// Bᵀ column walk: one line per element, per lane.
			w.StridedBulk(k, m)
			w.GatherF64Range(cd, &cIdx0, k, m)
			w.ScatterF64Range(cd, &cIdx0, k, m)
			w.FMAN(k, m)
			for lane := 0; lane < nw; lane++ {
				if m&(1<<lane) == 0 || vv[lane] == 0 {
					continue
				}
				crow := cd.Data[int(cIdx0[lane]) : int(cIdx0[lane])+k]
				col := int(cols[lane])
				v := vv[lane]
				for j := range crow {
					crow[j] += v * btd.Data[j*n+col]
				}
			}
		}
	})
	if err != nil {
		return LaunchResult{}, err
	}
	DownloadDenseK(cd, c, k)
	return res, nil
}
