package gpusim

import (
	"testing"

	"repro/internal/formats"
	"repro/internal/matrix"
)

// launchOne runs the kernel as a single warp and returns the stats.
func launchOne(t *testing.T, d *Device, kernel func(w *Warp)) Stats {
	t.Helper()
	res, err := d.Launch(1, 32, kernel)
	if err != nil {
		t.Fatal(err)
	}
	return res.Stats
}

func TestGatherRangeAccounting(t *testing.T) {
	d := newTestDevice(t) // 64B lines => 8 float64 per line
	buf, err := d.AllocF64(4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	var idx [WarpSize]int32
	for lane := range idx {
		idx[lane] = int32(lane * 64) // disjoint, line-aligned ranges
	}
	const elems = 16 // 2 lines per lane
	s := launchOne(t, d, func(w *Warp) {
		w.GatherF64Range(buf, &idx, elems, FullMask)
	})
	if s.MemInstrs != elems {
		t.Fatalf("memInstrs %d, want %d", s.MemInstrs, elems)
	}
	// 32 lanes × 2 distinct lines each = 64 hierarchy transactions; the
	// other 14 accesses per lane are same-line L1 hits.
	if got := s.L2Transactions + s.DRAMTransactions; got != 64 {
		t.Fatalf("hierarchy transactions %d, want 64", got)
	}
	if s.L1Transactions != int64(32*(elems-2)) {
		t.Fatalf("L1 credits %d, want %d", s.L1Transactions, 32*(elems-2))
	}
}

func TestGatherRangeMaskedLanes(t *testing.T) {
	d := newTestDevice(t)
	buf, err := d.AllocF64(1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	var idx [WarpSize]int32
	idx[0] = 0
	s := launchOne(t, d, func(w *Warp) {
		w.GatherF64Range(buf, &idx, 8, MaskFirst(1)) // one lane, one line
	})
	if got := s.L2Transactions + s.DRAMTransactions; got != 1 {
		t.Fatalf("hierarchy transactions %d, want 1", got)
	}
	if s.L1Transactions != 7 {
		t.Fatalf("L1 credits %d, want 7", s.L1Transactions)
	}
}

func TestCoalescedRangeAccounting(t *testing.T) {
	d := newTestDevice(t)
	buf, err := d.AllocF64(1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	const elems = 128 // 16 lines of 64B, cooperatively loaded
	s := launchOne(t, d, func(w *Warp) {
		w.GatherF64Coalesced(buf, 0, elems, FullMask)
	})
	if s.MemInstrs != (elems+WarpSize-1)/WarpSize {
		t.Fatalf("memInstrs %d, want %d", s.MemInstrs, (elems+WarpSize-1)/WarpSize)
	}
	if got := s.L1Transactions + s.L2Transactions + s.DRAMTransactions; got != 16 {
		t.Fatalf("transactions %d, want 16 (one per line)", got)
	}
	if s.CoalescingEfficiency() != 1 {
		t.Fatalf("coalesced range efficiency %v, want 1", s.CoalescingEfficiency())
	}
}

func TestAtomicRangeBypassesL1(t *testing.T) {
	d := newTestDevice(t)
	buf, err := d.AllocF64(4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	var idx [WarpSize]int32
	for lane := range idx {
		idx[lane] = int32(lane * 64)
	}
	const elems = 16 // 2 lines per lane
	s := launchOne(t, d, func(w *Warp) {
		w.AtomicAddF64Range(buf, &idx, elems, FullMask)
	})
	// Per lane: ceil(16*8/64) = 2 atomic line transactions, all at L2.
	if s.AtomicTransacts != 64 {
		t.Fatalf("atomic transactions %d, want 64", s.AtomicTransacts)
	}
	if s.L1Transactions != 0 {
		t.Fatalf("atomics must not earn L1 credits, got %d", s.L1Transactions)
	}
}

func TestAtomicCoalescedAccounting(t *testing.T) {
	d := newTestDevice(t)
	buf, err := d.AllocF64(1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := launchOne(t, d, func(w *Warp) {
		w.AtomicAddF64Coalesced(buf, 0, 64, FullMask) // 8 lines
	})
	if s.AtomicTransacts != 8 {
		t.Fatalf("atomic transactions %d, want 8", s.AtomicTransacts)
	}
}

func TestWarpL1CatchesReuse(t *testing.T) {
	d := newTestDevice(t)
	buf, err := d.AllocF64(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	var idx [WarpSize]int32 // all lanes, same line
	var out [WarpSize]float64
	s := launchOne(t, d, func(w *Warp) {
		w.GatherF64(buf, &idx, FullMask, &out) // first touch: miss
		w.GatherF64(buf, &idx, FullMask, &out) // second: warp-L1 hit
	})
	if s.L1Transactions != 1 {
		t.Fatalf("L1 hits %d, want 1", s.L1Transactions)
	}
	if got := s.L2Transactions + s.DRAMTransactions; got != 1 {
		t.Fatalf("hierarchy transactions %d, want 1", got)
	}
}

func TestWarpL1ResetBetweenWarps(t *testing.T) {
	d := newTestDevice(t)
	buf, err := d.AllocF64(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	var idx [WarpSize]int32
	var out [WarpSize]float64
	// Two warps touching the same line: the second warp's L1 starts
	// cold (but the device L2 now holds the line).
	res, err := d.Launch(1, 64, func(w *Warp) {
		w.GatherF64(buf, &idx, FullMask, &out)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.L1Transactions != 0 {
		t.Fatalf("cross-warp L1 sharing not modelled: %d L1 hits", res.Stats.L1Transactions)
	}
	if res.Stats.L2Transactions != 1 || res.Stats.DRAMTransactions != 1 {
		t.Fatalf("want 1 DRAM (first warp) + 1 L2 (second warp), got %d/%d",
			res.Stats.DRAMTransactions, res.Stats.L2Transactions)
	}
}

func TestScaledDown(t *testing.T) {
	cfg := H100Like()
	small := cfg.ScaledDown(0.02)
	if small.SMs >= cfg.SMs || small.SMs < 2 {
		t.Fatalf("scaled SMs %d", small.SMs)
	}
	if small.MemoryBytes >= cfg.MemoryBytes {
		t.Fatal("memory must scale")
	}
	if same := cfg.ScaledDown(1); same.SMs != cfg.SMs {
		t.Fatal("factor 1 must be identity")
	}
	if same := cfg.ScaledDown(0); same.SMs != cfg.SMs {
		t.Fatal("factor 0 must be identity (invalid factor ignored)")
	}
}

func TestBELLGPUMatchesReference(t *testing.T) {
	coo := testMatrix(31, 90, 70, 800)
	b := matrix.NewDenseRand[float64](70, 64, 4)
	want := reference(t, coo, b, 48)
	bell, err := formats.BELLFromCOO(coo, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := newTestDevice(t)
	c := matrix.NewDense[float64](90, 64)
	if _, err := SpMMBELL(d, bell, b, c, 48); err != nil {
		t.Fatal(err)
	}
	view, _ := c.View(0, 0, 90, 48)
	if !view.Clone().EqualTol(want, 1e-9) {
		t.Fatal("BELL GPU kernel mismatch")
	}
}

func TestCSRTransposedGPUMatchesReference(t *testing.T) {
	coo := testMatrix(77, 80, 60, 700)
	csr := formats.CSRFromCOO(coo)
	b := matrix.NewDenseRand[float64](60, 64, 9)
	want := reference(t, coo, b, 40)
	d := newTestDevice(t)
	c := matrix.NewDense[float64](80, 64)
	res, err := SpMMCSRT(d, csr, b, c, 40)
	if err != nil {
		t.Fatal(err)
	}
	view, _ := c.View(0, 0, 80, 40)
	if !view.Clone().EqualTol(want, 1e-9) {
		t.Fatal("transposed GPU CSR mismatch")
	}
	plain, err := SpMMCSR(d, csr, b, c, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= plain.Seconds {
		t.Errorf("transposed GPU kernel (%.3gs) should lose to plain (%.3gs)",
			res.Seconds, plain.Seconds)
	}
}

func TestAllGPUKernelsHandleOOM(t *testing.T) {
	coo := testMatrix(3, 60, 60, 400)
	csr := formats.CSRFromCOO(coo)
	ell := formats.ELLFromCOO(coo, formats.ColMajor)
	bcsr, err := formats.BCSRFromCOO(coo, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	bell, err := formats.BELLFromCOO(coo, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	b := matrix.NewDenseRand[float64](60, 16, 1)
	c := matrix.NewDense[float64](60, 16)
	cfg := TestDevice(512) // nothing fits
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for label, run := range map[string]func() (LaunchResult, error){
		"coo":   func() (LaunchResult, error) { return SpMMCOO(d, coo, b, c, 16) },
		"csr":   func() (LaunchResult, error) { return SpMMCSR(d, csr, b, c, 16) },
		"csr-t": func() (LaunchResult, error) { return SpMMCSRT(d, csr, b, c, 16) },
		"ell":   func() (LaunchResult, error) { return SpMMELL(d, ell, b, c, 16) },
		"bcsr":  func() (LaunchResult, error) { return SpMMBCSR(d, bcsr, b, c, 16) },
		"bell":  func() (LaunchResult, error) { return SpMMBELL(d, bell, b, c, 16) },
	} {
		if _, err := run(); err == nil {
			t.Errorf("%s: OOM not reported", label)
		}
		if d.Allocated() != 0 {
			t.Errorf("%s: leaked %d bytes after OOM", label, d.Allocated())
		}
	}
}
