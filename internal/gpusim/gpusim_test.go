package gpusim

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/formats"
	"repro/internal/kernels"
	"repro/internal/matrix"
)

func testMatrix(seed int64, rows, cols, nnz int) *matrix.COO[float64] {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewCOO[float64](rows, cols, nnz)
	for i := 0; i < nnz; i++ {
		m.Append(int32(rng.Intn(rows)), int32(rng.Intn(cols)), rng.NormFloat64())
	}
	m.Dedup()
	return m
}

func reference(t *testing.T, coo *matrix.COO[float64], b *matrix.Dense[float64], k int) *matrix.Dense[float64] {
	t.Helper()
	want := matrix.NewDense[float64](coo.Rows, k)
	bk, err := b.View(0, 0, b.Rows, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := kernels.GEMM(coo.ToDense(), bk.Clone(), want); err != nil {
		t.Fatal(err)
	}
	return want
}

func newTestDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(TestDevice(1 << 30))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func checkC(t *testing.T, c, want *matrix.Dense[float64], k int, label string) {
	t.Helper()
	view, err := c.View(0, 0, c.Rows, k)
	if err != nil {
		t.Fatal(err)
	}
	if !view.Clone().EqualTol(want, 1e-9) {
		t.Fatalf("%s: GPU result differs from reference", label)
	}
}

func TestDeviceConfigValidation(t *testing.T) {
	bad := TestDevice(1 << 20)
	bad.SMs = 0
	if _, err := NewDevice(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestAllocationAccounting(t *testing.T) {
	d, err := NewDevice(TestDevice(1024))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AllocF64(64, nil); err != nil { // 512 bytes
		t.Fatal(err)
	}
	if d.Allocated() != 512 {
		t.Fatalf("allocated %d, want 512", d.Allocated())
	}
	if _, err := d.AllocF64(128, nil); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected OOM, got %v", err)
	}
	d.FreeAll()
	if d.Allocated() != 0 {
		t.Fatal("FreeAll must zero accounting")
	}
	if _, err := d.AllocI32(256, nil); err != nil { // 1024 bytes fits now
		t.Fatal(err)
	}
}

func TestLaunchValidation(t *testing.T) {
	d := newTestDevice(t)
	if _, err := d.Launch(1, 100, func(w *Warp) {}); !errors.Is(err, ErrLaunch) {
		t.Fatal("non-multiple-of-32 block accepted")
	}
	if _, err := d.Launch(-1, 32, func(w *Warp) {}); !errors.Is(err, ErrLaunch) {
		t.Fatal("negative grid accepted")
	}
	res, err := d.Launch(0, 32, func(w *Warp) {})
	if err != nil || res.Cycles != 0 {
		t.Fatalf("empty launch: %v %v", res, err)
	}
}

func TestWarpIdentifiers(t *testing.T) {
	d := newTestDevice(t)
	seen := map[int]bool{}
	_, err := d.Launch(3, 64, func(w *Warp) {
		gw := w.GlobalWarp()
		if seen[gw] {
			t.Errorf("warp %d visited twice", gw)
		}
		seen[gw] = true
		if w.GlobalThread(0) != gw*WarpSize {
			t.Errorf("warp %d: lane-0 thread %d", gw, w.GlobalThread(0))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 6 {
		t.Fatalf("visited %d warps, want 6", len(seen))
	}
}

func TestCoalescingModel(t *testing.T) {
	d := newTestDevice(t)
	buf, err := d.AllocF64(4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	var consec, strided, same [WarpSize]int32
	for lane := 0; lane < WarpSize; lane++ {
		consec[lane] = int32(lane)       // 32 consecutive float64 = 256B = 4 lines of 64B
		strided[lane] = int32(lane * 64) // every lane on its own line
		same[lane] = 7                   // all lanes on one line
	}
	var out [WarpSize]float64

	run := func(idx *[WarpSize]int32) Stats {
		res, err := d.Launch(1, 32, func(w *Warp) {
			w.GatherF64(buf, idx, FullMask, &out)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	if s := run(&consec); s.Transactions != 4 || s.CoalescingEfficiency() != 1 {
		t.Fatalf("consecutive: %d transactions, eff %v", s.Transactions, s.CoalescingEfficiency())
	}
	if s := run(&strided); s.Transactions != 32 {
		t.Fatalf("strided: %d transactions, want 32", s.Transactions)
	}
	if s := run(&same); s.Transactions != 1 {
		t.Fatalf("same-address: %d transactions, want 1", s.Transactions)
	}
}

func TestMaskedLanesDoNotTouchMemory(t *testing.T) {
	d := newTestDevice(t)
	buf, err := d.AllocF64(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	var idx [WarpSize]int32
	for lane := range idx {
		idx[lane] = int32(1 << 20) // out of range: must not be dereferenced
	}
	idx[0] = 3
	var out [WarpSize]float64
	buf.Data[3] = 42
	_, err = d.Launch(1, 32, func(w *Warp) {
		w.GatherF64(buf, &idx, MaskFirst(1), &out)
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 42 {
		t.Fatal("active lane load lost")
	}
}

func TestAtomicAddAccumulates(t *testing.T) {
	d := newTestDevice(t)
	buf, err := d.AllocF64(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var idx [WarpSize]int32 // all lanes hit index 0
	var vals [WarpSize]float64
	for lane := range vals {
		vals[lane] = 1
	}
	res, err := d.Launch(1, 32, func(w *Warp) {
		w.AtomicAddF64(buf, &idx, &vals, FullMask)
	})
	if err != nil {
		t.Fatal(err)
	}
	if buf.Data[0] != 32 {
		t.Fatalf("atomic sum %v, want 32", buf.Data[0])
	}
	if res.Stats.AtomicTransacts == 0 {
		t.Fatal("atomics must be accounted")
	}
}

func TestScatterLastLaneWins(t *testing.T) {
	d := newTestDevice(t)
	buf, err := d.AllocF64(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var idx [WarpSize]int32
	var vals [WarpSize]float64
	for lane := range vals {
		vals[lane] = float64(lane)
	}
	if _, err := d.Launch(1, 32, func(w *Warp) {
		w.ScatterF64(buf, &idx, &vals, FullMask)
	}); err != nil {
		t.Fatal(err)
	}
	if buf.Data[0] != 31 {
		t.Fatalf("scatter collision result %v, want 31", buf.Data[0])
	}
}

func TestRooflineBounds(t *testing.T) {
	d := newTestDevice(t)
	// Pure compute: many FMAs, no memory.
	res, err := d.Launch(1, 32, func(w *Warp) {
		w.FMAN(100000, FullMask)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound != "compute" || res.Cycles <= 0 {
		t.Fatalf("pure-FMA launch bound %q, cycles %v", res.Bound, res.Cycles)
	}
	// Memory heavy: strided gathers dominate.
	buf, _ := d.AllocF64(1<<16, nil)
	var idx [WarpSize]int32
	for lane := range idx {
		idx[lane] = int32(lane * 512)
	}
	var out [WarpSize]float64
	res, err = d.Launch(1, 32, func(w *Warp) {
		for i := 0; i < 1000; i++ {
			w.GatherF64(buf, &idx, FullMask, &out)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound == "compute" {
		t.Fatalf("memory-heavy launch classified as %q", res.Bound)
	}
}

func TestMaskFirst(t *testing.T) {
	if MaskFirst(0) != 0 || MaskFirst(-1) != 0 {
		t.Fatal("empty masks")
	}
	if MaskFirst(1) != 1 || MaskFirst(32) != FullMask || MaskFirst(33) != FullMask {
		t.Fatal("mask values")
	}
	if MaskFirst(5) != 0b11111 {
		t.Fatal("mask 5")
	}
}

func TestGPUKernelsMatchReference(t *testing.T) {
	for _, k := range []int{8, 32, 40} {
		coo := testMatrix(int64(100+k), 70, 55, 600)
		b := matrix.NewDenseRand[float64](55, 64, 5)
		want := reference(t, coo, b, k)

		d := newTestDevice(t)
		c := matrix.NewDense[float64](70, 64)
		if _, err := SpMMCOO(d, coo, b, c, k); err != nil {
			t.Fatal(err)
		}
		checkC(t, c, want, k, "SpMMCOO")

		csr := formats.CSRFromCOO(coo)
		c = matrix.NewDense[float64](70, 64)
		if _, err := SpMMCSR(d, csr, b, c, k); err != nil {
			t.Fatal(err)
		}
		checkC(t, c, want, k, "SpMMCSR")

		for _, layout := range []formats.ELLLayout{formats.RowMajor, formats.ColMajor} {
			ell := formats.ELLFromCOO(coo, layout)
			c = matrix.NewDense[float64](70, 64)
			if _, err := SpMMELL(d, ell, b, c, k); err != nil {
				t.Fatal(err)
			}
			checkC(t, c, want, k, "SpMMELL "+layout.String())
		}

		for _, bs := range [][2]int{{2, 2}, {4, 4}, {3, 5}} {
			bcsr, err := formats.BCSRFromCOO(coo, bs[0], bs[1])
			if err != nil {
				t.Fatal(err)
			}
			c = matrix.NewDense[float64](70, 64)
			if _, err := SpMMBCSR(d, bcsr, b, c, k); err != nil {
				t.Fatal(err)
			}
			checkC(t, c, want, k, "SpMMBCSR")
		}
	}
}

func TestGPUKernelOOM(t *testing.T) {
	d, err := NewDevice(TestDevice(256)) // far too small
	if err != nil {
		t.Fatal(err)
	}
	coo := testMatrix(1, 50, 50, 300)
	csr := formats.CSRFromCOO(coo)
	b := matrix.NewDenseRand[float64](50, 16, 1)
	c := matrix.NewDense[float64](50, 16)
	if _, err := SpMMCSR(d, csr, b, c, 16); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected OOM, got %v", err)
	}
	// The failed call must not leak allocation accounting.
	if d.Allocated() != 0 {
		t.Fatalf("leaked %d bytes after OOM", d.Allocated())
	}
}

func TestELLColMajorCoalescesBetter(t *testing.T) {
	coo := testMatrix(9, 256, 256, 2000)
	b := matrix.NewDenseRand[float64](256, 32, 2)
	d := newTestDevice(t)
	c := matrix.NewDense[float64](256, 32)

	rm, err := SpMMELL(d, formats.ELLFromCOO(coo, formats.RowMajor), b, c, 32)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := SpMMELL(d, formats.ELLFromCOO(coo, formats.ColMajor), b, c, 32)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Stats.Transactions >= rm.Stats.Transactions {
		t.Fatalf("col-major ELL should issue fewer transactions: %d vs %d",
			cm.Stats.Transactions, rm.Stats.Transactions)
	}
	if cm.Seconds > rm.Seconds {
		t.Fatalf("col-major ELL should be no slower: %v vs %v", cm.Seconds, rm.Seconds)
	}
}

func TestLaunchDeterministic(t *testing.T) {
	coo := testMatrix(4, 100, 100, 800)
	csr := formats.CSRFromCOO(coo)
	b := matrix.NewDenseRand[float64](100, 32, 3)
	d := newTestDevice(t)
	c := matrix.NewDense[float64](100, 32)
	r1, err := SpMMCSR(d, csr, b, c, 32)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SpMMCSR(d, csr, b, c, 32)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Stats != r2.Stats {
		t.Fatal("simulation must be deterministic")
	}
}

func TestProfilesSane(t *testing.T) {
	for _, cfg := range []Config{H100Like(), A100Like()} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
	}
	if H100Like().SMs <= A100Like().SMs {
		t.Fatal("H100 profile should have more SMs than A100")
	}
}
