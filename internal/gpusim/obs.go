package gpusim

import "repro/internal/obs"

// Simulated hardware counters, exported to the process-wide metrics
// registry. Handles are resolved once at package init and each Launch does a
// fixed handful of atomic adds at the end — nothing per warp, so the
// simulator's inner loop cost is untouched.
var (
	obsLaunches = obs.NewCounter("spmm_gpusim_launches_total",
		"Kernel launches executed by the GPU simulator.")
	obsWarps = obs.NewCounter("spmm_gpusim_warps_total",
		"Warps executed across all launches.")
	obsFMAInstrs = obs.NewCounter("spmm_gpusim_fma_instrs_total",
		"Warp-level FMA instructions issued.")
	obsMemInstrs = obs.NewCounter("spmm_gpusim_mem_instrs_total",
		"Warp-level memory instructions issued.")
	obsL1Hits = obs.NewCounter("spmm_gpusim_l1_hits_total",
		"Memory transactions served from L1.")
	obsL1Misses = obs.NewCounter("spmm_gpusim_l1_misses_total",
		"Memory transactions that missed L1 (served by L2 or DRAM).")
	obsL2Hits = obs.NewCounter("spmm_gpusim_l2_hits_total",
		"Memory transactions served from the device-wide L2.")
	obsL2Misses = obs.NewCounter("spmm_gpusim_l2_misses_total",
		"Memory transactions that missed L2 and went to DRAM.")
	obsDRAMBytes = obs.NewCounter("spmm_gpusim_dram_bytes_total",
		"Modelled DRAM traffic in bytes (DRAM transactions x cache line).")
	obsCoalesced = obs.NewCounter("spmm_gpusim_coalesced_transactions_total",
		"Transactions a perfectly coalesced access pattern would have issued.")
	obsUncoalesced = obs.NewCounter("spmm_gpusim_uncoalesced_transactions_total",
		"Excess transactions over the perfectly coalesced minimum.")
	obsAtomics = obs.NewCounter("spmm_gpusim_atomic_transactions_total",
		"Atomic memory transactions issued.")
	obsOccupancy = obs.NewGauge("spmm_gpusim_occupancy_ratio",
		"Resident-warp occupancy of the last launch: mean over active SMs of resident/max warps.")
)

// flushObs exports one launch's aggregate statistics.
func flushObs(cfg Config, s Stats, smWarps []int) {
	obsLaunches.Inc()
	obsWarps.Add(int64(s.Warps))
	obsFMAInstrs.Add(s.FMAInstrs)
	obsMemInstrs.Add(s.MemInstrs)
	obsL1Hits.Add(s.L1Transactions)
	obsL1Misses.Add(s.L2Transactions + s.DRAMTransactions)
	obsL2Hits.Add(s.L2Transactions)
	obsL2Misses.Add(s.DRAMTransactions)
	obsDRAMBytes.Add(s.DRAMTransactions * int64(cfg.CachelineBytes))
	obsCoalesced.Add(s.IdealTransactions)
	obsUncoalesced.Add(s.Transactions - s.IdealTransactions)
	obsAtomics.Add(s.AtomicTransacts)

	// Occupancy: mean over SMs that received work of resident warps over the
	// architectural maximum — the figure a profiler's "achieved occupancy"
	// counter reports for the launch.
	if cfg.MaxWarpsPerSM > 0 {
		sum, active := 0.0, 0
		for _, w := range smWarps {
			if w == 0 {
				continue
			}
			active++
			sum += float64(min(w, cfg.MaxWarpsPerSM)) / float64(cfg.MaxWarpsPerSM)
		}
		if active > 0 {
			obsOccupancy.Set(sum / float64(active))
		}
	}
}
