// Package gpusim is a deterministic SIMT GPU simulator standing in for the
// OpenMP-target-offload + CUDA hardware of the thesis (H100 on the Grace
// Hopper "Arm" machine, A100 on the "Aries" x86 machine). Kernels are
// written warp-synchronously: a kernel function is invoked once per warp and
// issues 32-lane gather/scatter/FMA instructions through the Warp API. The
// simulator executes those instructions functionally (the numerics are
// real) while accounting cycles with a roofline model per SM:
//
//   - compute:  warp FMA instructions / FMA issue rate
//   - memory:   DRAM transactions × transaction cost (coalescing-aware:
//     one transaction per distinct cache line touched by the 32 lanes)
//   - latency:  memory instructions × latency, hidden by resident warps
//
// The per-SM time is the maximum of the three; the launch time is the
// busiest SM's. This reproduces the structural effects the thesis' GPU
// studies depend on — coalescing differences between formats and layouts,
// warp divergence on irregular rows, and occupancy — without pretending to
// cycle accuracy.
package gpusim

import "errors"

// ErrOutOfMemory is returned when an allocation exceeds device memory —
// the condition that forced the thesis to omit five matrices from its
// cuSparse study (§5.9).
var ErrOutOfMemory = errors.New("gpusim: device out of memory")

// ErrLaunch is returned for invalid launch configurations.
var ErrLaunch = errors.New("gpusim: invalid launch configuration")

// WarpSize is the SIMT width, fixed at 32 lanes as on NVIDIA hardware.
const WarpSize = 32

// Config describes a simulated device.
type Config struct {
	Name string
	// SMs is the number of streaming multiprocessors.
	SMs int
	// MaxWarpsPerSM bounds resident warps (occupancy) per SM.
	MaxWarpsPerSM int
	// ClockGHz converts cycles to seconds.
	ClockGHz float64
	// FMAPerCycle is the number of warp-wide FMA instructions an SM
	// issues per cycle.
	FMAPerCycle float64
	// CachelineBytes is the memory transaction granularity.
	CachelineBytes int
	// BytesPerCycleSM is the DRAM bandwidth available to one SM, in
	// bytes per cycle.
	BytesPerCycleSM float64
	// L1Lines is the per-SM L1/read-only cache capacity in lines; lines
	// re-touched by a warp while resident cost only L1 latency.
	L1Lines int
	// L1LatencyCycles and L2LatencyCycles are the hit latencies used by
	// the latency roofline term.
	L1LatencyCycles float64
	L2LatencyCycles float64
	// L2Bytes and L2Ways describe the device-wide L2 cache; transactions
	// that hit in L2 draw on L2BytesPerCycleSM instead of DRAM bandwidth.
	L2Bytes           int
	L2Ways            int
	L2BytesPerCycleSM float64
	// MemLatencyCycles is the DRAM access latency.
	MemLatencyCycles float64
	// MLP is the memory-level parallelism per warp: how many outstanding
	// line fills overlap, dividing the latency roofline term.
	MLP float64
	// AtomicPenaltyCycles is the extra cost per atomic transaction.
	AtomicPenaltyCycles float64
	// MemoryBytes is the device memory capacity.
	MemoryBytes int64
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	if c.SMs < 1 || c.MaxWarpsPerSM < 1 || c.ClockGHz <= 0 || c.FMAPerCycle <= 0 ||
		c.CachelineBytes < 8 || c.BytesPerCycleSM <= 0 || c.MemLatencyCycles < 0 ||
		c.MemoryBytes < 0 {
		return errors.New("gpusim: invalid device config")
	}
	if c.L2Bytes < 0 || (c.L2Bytes > 0 && (c.L2Ways < 1 || c.L2BytesPerCycleSM <= 0)) {
		return errors.New("gpusim: invalid L2 config")
	}
	if c.L1Lines < 0 || c.L1LatencyCycles < 0 || c.L2LatencyCycles < 0 {
		return errors.New("gpusim: invalid L1 config")
	}
	if c.MLP < 0 {
		return errors.New("gpusim: invalid MLP")
	}
	return nil
}

// H100Like models the Hopper-class GPU of the thesis' Arm (Grace Hopper)
// machine: 132 SMs, ~1.8 GHz, HBM3-class bandwidth.
func H100Like() Config {
	return Config{
		Name:                "h100-sim",
		MLP:                 8,
		L1Lines:             2048,
		L1LatencyCycles:     30,
		L2LatencyCycles:     220,
		SMs:                 132,
		MaxWarpsPerSM:       64,
		ClockGHz:            1.8,
		FMAPerCycle:         2,
		CachelineBytes:      128,
		BytesPerCycleSM:     14, // ≈3.3 TB/s aggregate
		L2Bytes:             64 << 20,
		L2Ways:              16,
		L2BytesPerCycleSM:   56,
		MemLatencyCycles:    450,
		AtomicPenaltyCycles: 6,
		MemoryBytes:         80 << 30,
	}
}

// A100Like models the Ampere-class GPU of the thesis' Aries (x86) machine:
// 108 SMs, ~1.4 GHz, HBM2e bandwidth.
func A100Like() Config {
	return Config{
		Name:                "a100-sim",
		MLP:                 6,
		L1Lines:             1536,
		L1LatencyCycles:     32,
		L2LatencyCycles:     230,
		SMs:                 108,
		MaxWarpsPerSM:       64,
		ClockGHz:            1.41,
		FMAPerCycle:         2,
		CachelineBytes:      128,
		BytesPerCycleSM:     13, // ≈2 TB/s aggregate
		L2Bytes:             32 << 20,
		L2Ways:              16,
		L2BytesPerCycleSM:   48,
		MemLatencyCycles:    470,
		AtomicPenaltyCycles: 8,
		MemoryBytes:         40 << 30,
	}
}

// TestDevice is a tiny configuration for unit tests: 4 SMs and a small
// memory so out-of-memory paths are exercisable.
func TestDevice(memory int64) Config {
	return Config{
		Name:                "test-sim",
		MLP:                 2,
		L1Lines:             64,
		L1LatencyCycles:     4,
		L2LatencyCycles:     40,
		SMs:                 4,
		MaxWarpsPerSM:       8,
		ClockGHz:            1,
		FMAPerCycle:         1,
		CachelineBytes:      64,
		BytesPerCycleSM:     8,
		L2Bytes:             256 << 10,
		L2Ways:              8,
		L2BytesPerCycleSM:   32,
		MemLatencyCycles:    100,
		AtomicPenaltyCycles: 10,
		MemoryBytes:         memory,
	}
}

// ScaledDown returns a copy of c with the SM count (and proportionally the
// device memory) scaled by factor in (0, 1]. The studies shrink their
// matrices by a scale factor; shrinking the device the same way preserves
// blocks-per-SM — the occupancy regime — so the scaled simulation keeps the
// full-size run's shape.
func (c Config) ScaledDown(factor float64) Config {
	if factor <= 0 || factor >= 1 {
		return c
	}
	out := c
	out.SMs = max(2, int(float64(c.SMs)*factor+0.5))
	out.MemoryBytes = int64(float64(c.MemoryBytes) * factor)
	return out
}
