package gpusim

import "math/bits"

// FullMask activates all 32 lanes.
const FullMask uint32 = 0xffffffff

// MaskFirst returns a mask with the first n lanes active (n clamped to
// [0, 32]).
func MaskFirst(n int) uint32 {
	if n <= 0 {
		return 0
	}
	if n >= WarpSize {
		return FullMask
	}
	return (uint32(1) << n) - 1
}

// Warp is the handle a warp-synchronous kernel uses to issue instructions.
// Lanes are numbered 0..31; per-lane operands travel in [WarpSize] arrays.
// Every Gather/Scatter/FMA call models exactly one warp instruction.
type Warp struct {
	dev *Device
	// Block and Warp identify the warp within the launch.
	Block, NumBlocks int
	BlockDim         int
	WarpInBlock      int

	fmaInstrs         int64
	activeLaneFMAs    int64
	memInstrs         int64
	l1Transacts       int64
	l2Transacts       int64
	dramTransacts     int64
	idealTransactions int64
	atomicTransacts   int64

	lineBuf [WarpSize]uint64
	// l1 is a direct-mapped per-warp line cache standing in for the SM's
	// L1/read-only cache; it is what lets loop-invariant A loads and
	// consecutive-j B loads avoid repeated L2/DRAM traffic.
	l1 []uint64
}

func (w *Warp) reset(block, numBlocks, blockDim, warpInBlock int) {
	w.Block = block
	w.NumBlocks = numBlocks
	w.BlockDim = blockDim
	w.WarpInBlock = warpInBlock
	w.fmaInstrs = 0
	w.activeLaneFMAs = 0
	w.memInstrs = 0
	w.l1Transacts = 0
	w.l2Transacts = 0
	w.dramTransacts = 0
	w.idealTransactions = 0
	w.atomicTransacts = 0
	if n := w.dev.cfg.L1Lines; n > 0 {
		if len(w.l1) != n {
			w.l1 = make([]uint64, n)
		} else {
			clear(w.l1)
		}
	}
}

// GlobalThread returns the global thread id of the given lane.
func (w *Warp) GlobalThread(lane int) int {
	return w.Block*w.BlockDim + w.WarpInBlock*WarpSize + lane
}

// GlobalWarp returns the warp's global index.
func (w *Warp) GlobalWarp() int {
	return w.Block*(w.BlockDim/WarpSize) + w.WarpInBlock
}

// countTransactions folds one memory instruction's addresses into the
// accounting: one transaction per distinct cache line among active lanes,
// each classified as an L2 hit or a DRAM access.
func (w *Warp) countTransactions(addrs *[WarpSize]uint64, elemBytes int, mask uint32) int64 {
	if mask == 0 {
		return 0
	}
	w.memInstrs++
	line := uint64(w.dev.cfg.CachelineBytes)
	distinct := 0
	for lane := 0; lane < WarpSize; lane++ {
		if mask&(1<<lane) == 0 {
			continue
		}
		l := addrs[lane] / line
		dup := false
		for i := 0; i < distinct; i++ {
			if w.lineBuf[i] == l {
				dup = true
				break
			}
		}
		if !dup {
			w.lineBuf[distinct] = l
			distinct++
		}
	}
	for i := 0; i < distinct; i++ {
		w.touchLine(w.lineBuf[i])
	}
	// Ideal: the active lanes' bytes packed densely.
	active := int64(bits.OnesCount32(mask))
	bytes := active * int64(elemBytes)
	w.idealTransactions += (bytes + int64(line) - 1) / int64(line)
	return int64(distinct)
}

// touchLine classifies one transaction through the warp L1 and device L2.
func (w *Warp) touchLine(line uint64) {
	if n := len(w.l1); n > 0 {
		slot := int(line) & (n - 1)
		tag := line | 1<<63
		if w.l1[slot] == tag {
			w.l1Transacts++
			return
		}
		w.l1[slot] = tag
	}
	if w.dev.l2 != nil && w.dev.l2.access(line) {
		w.l2Transacts++
		return
	}
	w.dramTransacts++
}

// GatherF64 performs one warp gather from a float64 buffer: active lanes
// load buf.Data[idx[lane]] into out[lane]. Coalescing is analysed over the
// 32 lane addresses.
func (w *Warp) GatherF64(buf *F64Buf, idx *[WarpSize]int32, mask uint32, out *[WarpSize]float64) {
	var addrs [WarpSize]uint64
	for lane := 0; lane < WarpSize; lane++ {
		if mask&(1<<lane) == 0 {
			continue
		}
		i := idx[lane]
		addrs[lane] = buf.base + uint64(i)*8
		out[lane] = buf.Data[i]
	}
	w.countTransactions(&addrs, 8, mask)
}

// GatherI32 performs one warp gather from an int32 buffer.
func (w *Warp) GatherI32(buf *I32Buf, idx *[WarpSize]int32, mask uint32, out *[WarpSize]int32) {
	var addrs [WarpSize]uint64
	for lane := 0; lane < WarpSize; lane++ {
		if mask&(1<<lane) == 0 {
			continue
		}
		i := idx[lane]
		addrs[lane] = buf.base + uint64(i)*4
		out[lane] = buf.Data[i]
	}
	w.countTransactions(&addrs, 4, mask)
}

// BroadcastF64 models all active lanes loading the same element (a uniform
// load): one instruction, one transaction.
func (w *Warp) BroadcastF64(buf *F64Buf, idx int32, mask uint32) float64 {
	if mask == 0 {
		return 0
	}
	w.memInstrs++
	w.touchLine((buf.base + uint64(idx)*8) / uint64(w.dev.cfg.CachelineBytes))
	w.idealTransactions++
	return buf.Data[idx]
}

// BroadcastI32 is the int32 uniform load.
func (w *Warp) BroadcastI32(buf *I32Buf, idx int32, mask uint32) int32 {
	if mask == 0 {
		return 0
	}
	w.memInstrs++
	w.touchLine((buf.base + uint64(idx)*4) / uint64(w.dev.cfg.CachelineBytes))
	w.idealTransactions++
	return buf.Data[idx]
}

// ScatterF64 performs one warp store: active lanes write vals[lane] to
// buf.Data[idx[lane]]. Lanes writing the same index are applied in lane
// order (last lane wins), as on real hardware with undefined-but-single
// winner semantics.
func (w *Warp) ScatterF64(buf *F64Buf, idx *[WarpSize]int32, vals *[WarpSize]float64, mask uint32) {
	var addrs [WarpSize]uint64
	for lane := 0; lane < WarpSize; lane++ {
		if mask&(1<<lane) == 0 {
			continue
		}
		i := idx[lane]
		addrs[lane] = buf.base + uint64(i)*8
		buf.Data[i] = vals[lane]
	}
	w.countTransactions(&addrs, 8, mask)
}

// AtomicAddF64 performs one warp atomic-add instruction: active lanes add
// vals[lane] into buf.Data[idx[lane]]. Unlike ScatterF64, colliding lanes
// all take effect. Each transaction pays the device's atomic penalty.
func (w *Warp) AtomicAddF64(buf *F64Buf, idx *[WarpSize]int32, vals *[WarpSize]float64, mask uint32) {
	var addrs [WarpSize]uint64
	for lane := 0; lane < WarpSize; lane++ {
		if mask&(1<<lane) == 0 {
			continue
		}
		i := idx[lane]
		addrs[lane] = buf.base + uint64(i)*8
		buf.Data[i] += vals[lane]
	}
	w.atomicTransacts += w.countTransactions(&addrs, 8, mask)
}

// FMA models one warp fused-multiply-add instruction with the given active
// mask. The arithmetic itself is done by the kernel in plain Go; FMA only
// accounts for it.
func (w *Warp) FMA(mask uint32) {
	if mask == 0 {
		return
	}
	w.fmaInstrs++
	w.activeLaneFMAs += int64(bits.OnesCount32(mask))
}

// FMAN models n back-to-back warp FMA instructions with the same mask.
func (w *Warp) FMAN(n int, mask uint32) {
	if mask == 0 || n <= 0 {
		return
	}
	w.fmaInstrs += int64(n)
	w.activeLaneFMAs += int64(n) * int64(bits.OnesCount32(mask))
}

// ---- Range operations ----
//
// The inner j-loop of an SpMM kernel issues, per lane, `elems` consecutive
// accesses (B row, C row). Modelling each as its own warp instruction makes
// functional simulation quadratically slow, so the range operations below
// account a whole per-lane run in one call: every distinct cache line in a
// lane's range goes through the memory hierarchy once, and the remaining
// accesses are L1 hits by construction (consecutive addresses). The caller
// performs the arithmetic directly on the buffer data.

// laneRange touches the lines of one lane's [addr, addr+bytes) run and
// returns the number of distinct lines.
func (w *Warp) laneRange(addr uint64, bytes int) int64 {
	line := uint64(w.dev.cfg.CachelineBytes)
	first := addr / line
	last := (addr + uint64(bytes) - 1) / line
	for l := first; l <= last; l++ {
		w.touchLine(l)
	}
	return int64(last - first + 1)
}

// GatherF64Range accounts, for each active lane, `elems` consecutive
// float64 loads starting at element idx[lane]. Accounting only — read
// buf.Data directly for the values.
func (w *Warp) GatherF64Range(buf *F64Buf, idx *[WarpSize]int32, elems int, mask uint32) {
	if mask == 0 || elems <= 0 {
		return
	}
	w.memInstrs += int64(elems)
	line := int64(w.dev.cfg.CachelineBytes)
	for lane := 0; lane < WarpSize; lane++ {
		if mask&(1<<lane) == 0 {
			continue
		}
		distinct := w.laneRange(buf.base+uint64(idx[lane])*8, elems*8)
		// The non-distinct accesses re-touch a line a consecutive
		// neighbour just brought in: guaranteed L1 hits.
		w.l1Transacts += int64(elems) - distinct
	}
	active := int64(bits.OnesCount32(mask))
	w.idealTransactions += (active*int64(elems)*8 + line - 1) / line
}

// ScatterF64Range accounts the store-side run (write-allocate: same cost
// shape as the gather).
func (w *Warp) ScatterF64Range(buf *F64Buf, idx *[WarpSize]int32, elems int, mask uint32) {
	w.GatherF64Range(buf, idx, elems, mask)
}

// AtomicAddF64Range accounts, per active lane, `elems` consecutive atomic
// adds. Atomics resolve at L2 on real hardware — no L1 credit — and each
// element is an atomic transaction.
func (w *Warp) AtomicAddF64Range(buf *F64Buf, idx *[WarpSize]int32, elems int, mask uint32) {
	if mask == 0 || elems <= 0 {
		return
	}
	active := int64(bits.OnesCount32(mask))
	w.memInstrs += int64(elems)
	line := int64(w.dev.cfg.CachelineBytes)
	lines := (int64(elems)*8 + line - 1) / line
	// Atomics resolve at L2 (no L1 credit); consecutive same-line atomics
	// serialise into roughly one transaction per line per lane, each
	// paying the atomic penalty.
	_ = buf
	_ = idx
	w.l2Transacts += lines * active
	w.atomicTransacts += lines * active
	w.idealTransactions += (active*int64(elems)*8 + line - 1) / line
}

// GatherF64Coalesced accounts a cooperative load of `elems` consecutive
// float64 values spread across the warp's lanes (the vendor-kernel access
// pattern): ceil(elems/32) instructions, each line touched once.
func (w *Warp) GatherF64Coalesced(buf *F64Buf, startIdx int32, elems int, mask uint32) {
	if mask == 0 || elems <= 0 {
		return
	}
	w.memInstrs += int64((elems + WarpSize - 1) / WarpSize)
	distinct := w.laneRange(buf.base+uint64(startIdx)*8, elems*8)
	w.idealTransactions += distinct
}

// ScatterF64Coalesced accounts the cooperative store.
func (w *Warp) ScatterF64Coalesced(buf *F64Buf, startIdx int32, elems int, mask uint32) {
	w.GatherF64Coalesced(buf, startIdx, elems, mask)
}

// AtomicAddF64Coalesced accounts a cooperative run of `elems` atomic adds
// on consecutive addresses: one atomic transaction per element, resolved at
// L2.
func (w *Warp) AtomicAddF64Coalesced(buf *F64Buf, startIdx int32, elems int, mask uint32) {
	if mask == 0 || elems <= 0 {
		return
	}
	_ = buf
	_ = startIdx
	w.memInstrs += int64((elems + WarpSize - 1) / WarpSize)
	line := int64(w.dev.cfg.CachelineBytes)
	lines := (int64(elems)*8 + line - 1) / line
	w.l2Transacts += lines
	w.atomicTransacts += lines
	w.idealTransactions += lines
}

// StridedBulk accounts, per active lane, `elems` accesses whose addresses
// step by at least one cache line (a transposed-B column walk): no spatial
// reuse, so every access is its own transaction. To keep the functional
// simulation linear, the lines are accounted in bulk — an even split
// between L2 (stride prefetchers and earlier passes catch some) and DRAM —
// instead of being walked through the tag caches one by one.
func (w *Warp) StridedBulk(elems int, mask uint32) {
	if mask == 0 || elems <= 0 {
		return
	}
	active := int64(bits.OnesCount32(mask))
	w.memInstrs += int64(elems)
	total := int64(elems) * active
	w.l2Transacts += total / 2
	w.dramTransacts += total - total/2
	w.idealTransactions += (total*8 + int64(w.dev.cfg.CachelineBytes) - 1) /
		int64(w.dev.cfg.CachelineBytes)
}
