package gpusim

import (
	"errors"
	"fmt"

	"repro/internal/trace"
)

// Device is a simulated GPU. Allocate buffers, then Launch warp-synchronous
// kernels against them. Devices are not safe for concurrent use.
type Device struct {
	cfg       Config
	allocated int64
	nextBase  uint64
	l2        *l2cache
	// Trace, when non-nil and enabled, receives one simulated-time span per
	// Launch (the modelled kernel duration on the tracer's simulated
	// timeline — same schema as real runs, separate Chrome-trace process).
	Trace *trace.Tracer
}

// NewDevice creates a device from the configuration.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{cfg: cfg, nextBase: 1 << 20}
	if cfg.L2Bytes > 0 {
		l2, err := newL2(cfg.L2Bytes, cfg.L2Ways, cfg.CachelineBytes)
		if err != nil {
			return nil, err
		}
		d.l2 = l2
	}
	return d, nil
}

// l2cache is a set-associative LRU tag cache at line granularity, shared
// device-wide as on real GPUs.
type l2cache struct {
	ways    int
	setMask uint64
	tags    []uint64
	age     []uint64
	tick    uint64
}

func newL2(sizeBytes, ways, lineBytes int) (*l2cache, error) {
	lines := sizeBytes / lineBytes
	if lines < ways || lines%ways != 0 {
		return nil, errors.New("gpusim: L2 size not divisible into ways")
	}
	sets := lines / ways
	if sets&(sets-1) != 0 {
		return nil, errors.New("gpusim: L2 set count not a power of two")
	}
	return &l2cache{
		ways:    ways,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, sets*ways),
		age:     make([]uint64, sets*ways),
	}, nil
}

// access touches a line (already divided by line size) and reports a hit.
func (c *l2cache) access(line uint64) bool {
	set := int(line & c.setMask)
	tag := line | 1<<63
	base := set * c.ways
	c.tick++
	lruWay, lruAge := 0, ^uint64(0)
	for way := 0; way < c.ways; way++ {
		i := base + way
		if c.tags[i] == tag {
			c.age[i] = c.tick
			return true
		}
		if c.age[i] < lruAge {
			lruAge = c.age[i]
			lruWay = way
		}
	}
	i := base + lruWay
	c.tags[i] = tag
	c.age[i] = c.tick
	return false
}

func (c *l2cache) reset() {
	clear(c.tags)
	clear(c.age)
	c.tick = 0
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Allocated reports the bytes currently allocated on the device.
func (d *Device) Allocated() int64 { return d.allocated }

// F64Buf is a device buffer of float64 values.
type F64Buf struct {
	Data []float64
	base uint64
}

// I32Buf is a device buffer of int32 values.
type I32Buf struct {
	Data []int32
	base uint64
}

func (d *Device) reserve(bytes int64) (uint64, error) {
	if d.allocated+bytes > d.cfg.MemoryBytes {
		return 0, fmt.Errorf("%w: need %d bytes, %d of %d in use",
			ErrOutOfMemory, bytes, d.allocated, d.cfg.MemoryBytes)
	}
	d.allocated += bytes
	base := d.nextBase
	// Separate buffers by a guard region so cache-line analysis never
	// merges accesses from different buffers, and keep every base
	// line-aligned so repeated identical launches see identical
	// coalescing regardless of allocation history.
	line := uint64(d.cfg.CachelineBytes)
	span := (uint64(bytes)/line + 2) * line
	d.nextBase += span
	return base, nil
}

// AllocF64 allocates an n-element float64 buffer holding a copy of src
// (src may be nil for a zeroed buffer of length n).
func (d *Device) AllocF64(n int, src []float64) (*F64Buf, error) {
	base, err := d.reserve(int64(n) * 8)
	if err != nil {
		return nil, err
	}
	buf := &F64Buf{Data: make([]float64, n), base: base}
	if src != nil {
		copy(buf.Data, src)
	}
	return buf, nil
}

// AllocI32 allocates an n-element int32 buffer holding a copy of src.
func (d *Device) AllocI32(n int, src []int32) (*I32Buf, error) {
	base, err := d.reserve(int64(n) * 4)
	if err != nil {
		return nil, err
	}
	buf := &I32Buf{Data: make([]int32, n), base: base}
	if src != nil {
		copy(buf.Data, src)
	}
	return buf, nil
}

// FreeAll releases all allocations (buffers already handed out remain
// usable as host memory but no longer count against the device).
func (d *Device) FreeAll() { d.allocated = 0 }

// Stats aggregates the instruction and memory activity of one launch.
type Stats struct {
	Warps           int
	FMAInstrs       int64
	MemInstrs       int64
	Transactions    int64
	AtomicTransacts int64
	ActiveLaneFMAs  int64
	// L1Transactions, L2Transactions and DRAMTransactions split
	// Transactions by where the line was served from.
	L1Transactions   int64
	L2Transactions   int64
	DRAMTransactions int64
	// IdealTransactions is the minimum transaction count had every
	// access been perfectly coalesced.
	IdealTransactions int64
}

// CoalescingEfficiency is IdealTransactions/Transactions in (0, 1]; 1 means
// perfectly coalesced.
func (s Stats) CoalescingEfficiency() float64 {
	if s.Transactions == 0 {
		return 1
	}
	return float64(s.IdealTransactions) / float64(s.Transactions)
}

// LaunchResult reports the modelled execution of one kernel launch.
type LaunchResult struct {
	Cycles  float64
	Seconds float64
	Stats   Stats
	// Bound names the roofline term that dominated: "compute", "memory"
	// or "latency".
	Bound string
}

// Launch runs the kernel for every warp of a grid of `blocks` thread blocks
// of `threadsPerBlock` threads. The kernel receives each warp exactly once.
// Execution is sequential and deterministic.
func (d *Device) Launch(blocks, threadsPerBlock int, kernel func(w *Warp)) (LaunchResult, error) {
	if blocks < 0 || threadsPerBlock < 1 || threadsPerBlock%WarpSize != 0 {
		return LaunchResult{}, fmt.Errorf("%w: blocks=%d threads=%d (threads must be a positive multiple of %d)",
			ErrLaunch, blocks, threadsPerBlock, WarpSize)
	}
	warpsPerBlock := threadsPerBlock / WarpSize
	totalWarps := blocks * warpsPerBlock
	if d.l2 != nil {
		d.l2.reset()
	}

	smFMA := make([]int64, d.cfg.SMs)
	smMemInstr := make([]int64, d.cfg.SMs)
	smL1 := make([]int64, d.cfg.SMs)
	smL2 := make([]int64, d.cfg.SMs)
	smDRAM := make([]int64, d.cfg.SMs)
	smAtomic := make([]int64, d.cfg.SMs)
	smWarps := make([]int, d.cfg.SMs)

	var agg Stats
	agg.Warps = totalWarps

	w := &Warp{dev: d}
	for b := 0; b < blocks; b++ {
		sm := b % d.cfg.SMs // round-robin block scheduling
		for wi := 0; wi < warpsPerBlock; wi++ {
			w.reset(b, blocks, threadsPerBlock, wi)
			kernel(w)
			smFMA[sm] += w.fmaInstrs
			smMemInstr[sm] += w.memInstrs
			smL1[sm] += w.l1Transacts
			smL2[sm] += w.l2Transacts
			smDRAM[sm] += w.dramTransacts
			smAtomic[sm] += w.atomicTransacts
			smWarps[sm]++
			agg.FMAInstrs += w.fmaInstrs
			agg.MemInstrs += w.memInstrs
			agg.Transactions += w.l1Transacts + w.l2Transacts + w.dramTransacts
			agg.L1Transactions += w.l1Transacts
			agg.L2Transactions += w.l2Transacts
			agg.DRAMTransactions += w.dramTransacts
			agg.AtomicTransacts += w.atomicTransacts
			agg.ActiveLaneFMAs += w.activeLaneFMAs
			agg.IdealTransactions += w.idealTransactions
		}
	}

	// Roofline per SM.
	lineBytes := float64(d.cfg.CachelineBytes)
	var worst float64
	bound := "compute"
	for sm := 0; sm < d.cfg.SMs; sm++ {
		if smWarps[sm] == 0 {
			continue
		}
		compute := float64(smFMA[sm]) / d.cfg.FMAPerCycle
		l2BW := d.cfg.L2BytesPerCycleSM
		if l2BW <= 0 {
			l2BW = d.cfg.BytesPerCycleSM
		}
		memory := float64(smDRAM[sm])*lineBytes/d.cfg.BytesPerCycleSM +
			float64(smL2[sm])*lineBytes/l2BW +
			float64(smL1[sm])*0.05 + // L1 hits cost LDST issue slots only
			float64(smAtomic[sm])*d.cfg.AtomicPenaltyCycles
		resident := float64(min(smWarps[sm], d.cfg.MaxWarpsPerSM))
		mlp := d.cfg.MLP
		if mlp < 1 {
			mlp = 1
		}
		latency := (float64(smDRAM[sm])*d.cfg.MemLatencyCycles +
			float64(smL2[sm])*d.cfg.L2LatencyCycles +
			float64(smL1[sm])*d.cfg.L1LatencyCycles) / (resident * mlp)
		cycles, b := compute, "compute"
		if memory > cycles {
			cycles, b = memory, "memory"
		}
		if latency > cycles {
			cycles, b = latency, "latency"
		}
		if cycles > worst {
			worst, bound = cycles, b
		}
	}
	flushObs(d.cfg, agg, smWarps)
	res := LaunchResult{
		Cycles:  worst,
		Seconds: worst / (d.cfg.ClockGHz * 1e9),
		Stats:   agg,
		Bound:   bound,
	}
	if d.Trace.Enabled() {
		durNs := int64(res.Seconds * 1e9)
		if durNs < 1 {
			durNs = 1
		}
		start := d.Trace.SimAdvance(durNs)
		d.Trace.AddSim(0, trace.PhaseSimKernel, res.Bound, start, durNs, int64(res.Cycles))
	}
	return res, nil
}
