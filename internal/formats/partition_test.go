package formats

import (
	"testing"

	"repro/internal/matrix"
	"repro/internal/parallel"
)

func skewedCOO(rows, cols int) *matrix.COO[float64] {
	m := matrix.NewCOO[float64](rows, cols, 0)
	for i := 0; i < rows; i++ {
		// Row 0 is a hub touching every column; the rest hold one entry.
		if i == 0 {
			for j := 0; j < cols; j++ {
				m.Append(0, int32(j), 1)
			}
			continue
		}
		m.Append(int32(i), int32(i%cols), 1)
	}
	m.SortRowMajor()
	return m
}

func TestCSRBalancedBoundsValidAndMemoized(t *testing.T) {
	c := CSRFromCOO(skewedCOO(200, 100))
	for _, chunks := range []int{1, 3, 8, 1000} {
		b := c.BalancedBounds(chunks)
		if err := parallel.ValidateBounds(b, c.Rows); err != nil {
			t.Fatalf("chunks=%d: %v", chunks, err)
		}
		b2 := c.BalancedBounds(chunks)
		if &b[0] != &b2[0] {
			t.Fatalf("chunks=%d: bounds not memoized", chunks)
		}
	}
}

func TestBCSRBalancedBounds(t *testing.T) {
	b, err := BCSRFromCOO(skewedCOO(64, 64), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	bounds := b.BalancedBounds(8)
	if err := parallel.ValidateBounds(bounds, b.BlockRows); err != nil {
		t.Fatal(err)
	}
}

func TestSELLCSBalancedBounds(t *testing.T) {
	s, err := SELLCSFromCOO(skewedCOO(100, 50), 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	bounds := s.BalancedBounds(4)
	if err := parallel.ValidateBounds(bounds, s.NumSlices()); err != nil {
		t.Fatal(err)
	}
}
