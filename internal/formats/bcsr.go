package formats

import (
	"sort"

	"repro/internal/matrix"
)

// BCSR is the block compressed sparse row format: CSR over dense BR×BC
// blocks. Any block containing at least one nonzero is stored in full, with
// the absent positions padded by explicit zeros. Block rows cover rows
// [i*BR, (i+1)*BR); the trailing block row/column is padded when the matrix
// dimensions are not multiples of the block size.
type BCSR[T matrix.Float] struct {
	Rows, Cols int // logical matrix dimensions
	BR, BC     int // block dimensions
	// BlockRows and BlockCols are the block-grid dimensions
	// (ceil(Rows/BR), ceil(Cols/BC)).
	BlockRows, BlockCols int
	// RowPtr has BlockRows+1 entries; block row i's blocks are
	// ColIdx[RowPtr[i]:RowPtr[i+1]].
	RowPtr []int32
	// ColIdx holds block-column indices, ascending within each block row.
	ColIdx []int32
	// Vals holds the dense blocks, each BR*BC values in row-major order,
	// concatenated in block order.
	Vals []T

	balanced partitionCache // memoized block-balanced block-row splits
}

// BCSRFromCOO converts a COO matrix to BCSR with BR×BC blocks using a
// sorted two-pass builder: O(nnz log nnz) overall. This is the suite's fast
// formatting path — the thesis reports its original (map-heavy) BCSR
// formatter took 40 hours over its matrix set (§6.3.2); the sorted builder
// is the fix, and BCSRFromCOOMap preserves the original strategy for the
// ablation benchmark.
func BCSRFromCOO[T matrix.Float](m *matrix.COO[T], br, bc int) (*BCSR[T], error) {
	if br < 1 || bc < 1 {
		return nil, invalidBlock(br, bc)
	}
	b := newBCSRShell[T](m, br, bc)
	nnz := m.NNZ()
	if nnz == 0 {
		return b, nil
	}

	// Pass 1: key every triplet by (block row, block col) and order them.
	type keyed struct {
		key int64
		idx int32
	}
	keys := make([]keyed, nnz)
	for i := 0; i < nnz; i++ {
		bri := int64(m.RowIdx[i]) / int64(br)
		bci := int64(m.ColIdx[i]) / int64(bc)
		keys[i] = keyed{key: bri*int64(b.BlockCols) + bci, idx: int32(i)}
	}
	sort.Slice(keys, func(x, y int) bool { return keys[x].key < keys[y].key })

	// Pass 2: count distinct blocks, then fill.
	nblocks := 0
	prev := int64(-1)
	for _, k := range keys {
		if k.key != prev {
			nblocks++
			prev = k.key
		}
	}
	b.ColIdx = make([]int32, nblocks)
	b.Vals = make([]T, nblocks*br*bc)

	blk := -1
	prev = -1
	for _, k := range keys {
		if k.key != prev {
			blk++
			prev = k.key
			bri := k.key / int64(b.BlockCols)
			bci := k.key % int64(b.BlockCols)
			b.RowPtr[bri+1]++
			b.ColIdx[blk] = int32(bci)
		}
		i := k.idx
		r := int(m.RowIdx[i]) % br
		c := int(m.ColIdx[i]) % bc
		b.Vals[blk*br*bc+r*bc+c] += m.Vals[i]
	}
	for i := 0; i < b.BlockRows; i++ {
		b.RowPtr[i+1] += b.RowPtr[i]
	}
	return b, nil
}

// BCSRFromCOOMap converts COO to BCSR via hash-map block discovery. This is
// the thesis' original formatting strategy ("we solved it ... by using the
// containers ... especially maps", §4.2) kept for the BCSR-formatting
// ablation; BCSRFromCOO produces an identical matrix faster.
func BCSRFromCOOMap[T matrix.Float](m *matrix.COO[T], br, bc int) (*BCSR[T], error) {
	if br < 1 || bc < 1 {
		return nil, invalidBlock(br, bc)
	}
	b := newBCSRShell[T](m, br, bc)
	blockOf := make(map[int64][]int32) // block key -> triplet indices
	for i := 0; i < m.NNZ(); i++ {
		bri := int64(m.RowIdx[i]) / int64(br)
		bci := int64(m.ColIdx[i]) / int64(bc)
		key := bri*int64(b.BlockCols) + bci
		blockOf[key] = append(blockOf[key], int32(i))
	}
	keyList := make([]int64, 0, len(blockOf))
	for k := range blockOf {
		keyList = append(keyList, k)
	}
	sort.Slice(keyList, func(x, y int) bool { return keyList[x] < keyList[y] })

	b.ColIdx = make([]int32, len(keyList))
	b.Vals = make([]T, len(keyList)*br*bc)
	for blk, key := range keyList {
		bri := key / int64(b.BlockCols)
		bci := key % int64(b.BlockCols)
		b.RowPtr[bri+1]++
		b.ColIdx[blk] = int32(bci)
		for _, i := range blockOf[key] {
			r := int(m.RowIdx[i]) % br
			c := int(m.ColIdx[i]) % bc
			b.Vals[blk*br*bc+r*bc+c] += m.Vals[i]
		}
	}
	for i := 0; i < b.BlockRows; i++ {
		b.RowPtr[i+1] += b.RowPtr[i]
	}
	return b, nil
}

func newBCSRShell[T matrix.Float](m *matrix.COO[T], br, bc int) *BCSR[T] {
	blockRows := ceilDiv(max(m.Rows, 0), br)
	blockCols := ceilDiv(max(m.Cols, 0), bc)
	return &BCSR[T]{
		Rows:      m.Rows,
		Cols:      m.Cols,
		BR:        br,
		BC:        bc,
		BlockRows: blockRows,
		BlockCols: blockCols,
		RowPtr:    make([]int32, blockRows+1),
	}
}

func invalidBlock(br, bc int) error {
	return invalidf("bcsr: block size %dx%d (both dimensions must be >= 1): %v",
		br, bc, ErrBlockSize)
}

// Block returns the dense values of the i-th stored block as a BR*BC
// row-major slice sharing storage with the matrix.
func (b *BCSR[T]) Block(i int) []T {
	sz := b.BR * b.BC
	return b.Vals[i*sz : (i+1)*sz]
}

// NumBlocks reports the number of stored blocks.
func (b *BCSR[T]) NumBlocks() int { return len(b.ColIdx) }

// ToCOO expands stored nonzero positions back into sorted COO form,
// dropping padding zeros and clipping any padded fringe outside the logical
// dimensions.
func (b *BCSR[T]) ToCOO() *matrix.COO[T] {
	m := matrix.NewCOO[T](b.Rows, b.Cols, b.NNZ())
	for bri := 0; bri < b.BlockRows; bri++ {
		for p := b.RowPtr[bri]; p < b.RowPtr[bri+1]; p++ {
			bci := int(b.ColIdx[p])
			blk := b.Block(int(p))
			for r := 0; r < b.BR; r++ {
				row := bri*b.BR + r
				if row >= b.Rows {
					break
				}
				for c := 0; c < b.BC; c++ {
					col := bci*b.BC + c
					if col >= b.Cols {
						break
					}
					if v := blk[r*b.BC+c]; v != 0 {
						m.Append(int32(row), int32(col), v)
					}
				}
			}
		}
	}
	m.SortRowMajor()
	return m
}

// FormatName implements Sparse.
func (b *BCSR[T]) FormatName() string { return "bcsr" }

// Dims implements Sparse.
func (b *BCSR[T]) Dims() (int, int) { return b.Rows, b.Cols }

// NNZ implements Sparse; it counts nonzero stored values, excluding block
// padding.
func (b *BCSR[T]) NNZ() int {
	n := 0
	for _, v := range b.Vals {
		if v != 0 {
			n++
		}
	}
	return n
}

// Stored implements Sparse; every block slot is stored.
func (b *BCSR[T]) Stored() int { return len(b.Vals) }

// Bytes implements Sparse.
func (b *BCSR[T]) Bytes() int {
	var z T
	return len(b.RowPtr)*4 + len(b.ColIdx)*4 + len(b.Vals)*valueSize(z)
}

// FillRatio reports the fraction of stored slots holding real nonzeros — the
// efficiency of the chosen block size for this matrix (1.0 = no padding).
func (b *BCSR[T]) FillRatio() float64 {
	if len(b.Vals) == 0 {
		return 1
	}
	return float64(b.NNZ()) / float64(len(b.Vals))
}

// Validate checks the BCSR structural invariants.
func (b *BCSR[T]) Validate() error {
	if b.BR < 1 || b.BC < 1 {
		return invalidBlock(b.BR, b.BC)
	}
	if len(b.RowPtr) != b.BlockRows+1 {
		return invalidf("bcsr: RowPtr length %d, want %d", len(b.RowPtr), b.BlockRows+1)
	}
	if b.RowPtr[0] != 0 || int(b.RowPtr[b.BlockRows]) != len(b.ColIdx) {
		return invalidf("bcsr: RowPtr endpoints [%d, %d], want [0, %d]",
			b.RowPtr[0], b.RowPtr[b.BlockRows], len(b.ColIdx))
	}
	if len(b.Vals) != len(b.ColIdx)*b.BR*b.BC {
		return invalidf("bcsr: Vals length %d, want %d blocks * %d",
			len(b.Vals), len(b.ColIdx), b.BR*b.BC)
	}
	for i := 0; i < b.BlockRows; i++ {
		if b.RowPtr[i+1] < b.RowPtr[i] {
			return invalidf("bcsr: RowPtr not monotone at block row %d", i)
		}
		for p := b.RowPtr[i] + 1; p < b.RowPtr[i+1]; p++ {
			if b.ColIdx[p] <= b.ColIdx[p-1] {
				return invalidf("bcsr: block columns not ascending in block row %d", i)
			}
		}
	}
	for p, col := range b.ColIdx {
		if col < 0 || int(col) >= b.BlockCols {
			return invalidf("bcsr: block %d column %d outside [0, %d)", p, col, b.BlockCols)
		}
	}
	return nil
}
