package formats

import (
	"sync"

	"repro/internal/parallel"
)

// This file attaches nonzero-balanced partition caches to the row-compressed
// formats. The balanced split points are a pure function of the format's
// prefix-sum array and the chunk count, so they are computed once — at
// Prepare time or on the first parallel Calculate — and reused by every
// subsequent call of a campaign. That keeps the binary-search cost (and its
// allocation) out of the steady-state kernel path, which the zero-allocation
// audit in internal/kernels pins.

// partitionCache memoizes balanced chunk bounds per chunk count. The zero
// value is ready to use; the cache is safe for concurrent readers.
type partitionCache struct {
	mu       sync.Mutex
	byChunks map[int][]int
}

// bounds returns the memoized balanced partition for `chunks`, computing it
// from the prefix-sum array on first use. Callers must not mutate the
// returned slice.
func (pc *partitionCache) bounds(rowptr []int32, chunks int) []int {
	if chunks < 1 {
		chunks = 1
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if b, ok := pc.byChunks[chunks]; ok {
		return b
	}
	if pc.byChunks == nil {
		pc.byChunks = make(map[int][]int, 4)
	}
	b := parallel.BalancedBounds(rowptr, chunks)
	pc.byChunks[chunks] = b
	return b
}

// BalancedBounds returns row chunk bounds of near-equal nonzero count for up
// to `chunks` workers, memoized per chunk count. The result follows the
// parallel.BalancedBounds contract; callers must not mutate it.
func (c *CSR[T]) BalancedBounds(chunks int) []int {
	return c.balanced.bounds(c.RowPtr, chunks)
}

// BalancedBounds returns block-row chunk bounds of near-equal stored-block
// count. Every block holds the same BR*BC slots, so equal blocks is equal
// arithmetic work. Memoized per chunk count; callers must not mutate the
// result.
func (b *BCSR[T]) BalancedBounds(chunks int) []int {
	return b.balanced.bounds(b.RowPtr, chunks)
}

// BalancedBounds returns slice chunk bounds of near-equal stored-element
// count (padding included — SlicePtr already counts the padded slots each
// lane streams). Memoized per chunk count; callers must not mutate the
// result.
func (s *SELLCS[T]) BalancedBounds(chunks int) []int {
	return s.balanced.bounds(s.SlicePtr, chunks)
}
