// Package formats implements the sparse matrix storage formats studied by
// the thesis — COO (in package matrix), CSR, ELLPACK and BCSR — plus the two
// formats its future-work section names as next targets: Blocked-ELLPACK
// (BELL) and a SELL-C-σ style sliced format standing in for CSR5.
//
// Every format is built from the COO base representation, matching the
// suite's design in which "all other formats will format their structures
// based on the COO representation" (§4.1).
package formats

import (
	"errors"
	"fmt"
)

// ErrInvalid is returned when a format fails structural validation.
var ErrInvalid = errors.New("formats: invalid structure")

// ErrBlockSize is returned for unusable block configurations.
var ErrBlockSize = errors.New("formats: invalid block size")

// Sparse is the interface every concrete format satisfies; it exposes the
// bookkeeping the benchmark core and the memory-footprint accounting
// (future-work §6.3.5) need.
type Sparse interface {
	// FormatName is the short name used in reports ("csr", "ell", ...).
	FormatName() string
	// Dims returns the logical matrix dimensions.
	Dims() (rows, cols int)
	// NNZ reports the number of logical nonzeros represented.
	NNZ() int
	// Stored reports the number of stored value slots including padding;
	// Stored >= NNZ, and Stored/NNZ is the padding overhead factor.
	Stored() int
	// Bytes reports the memory footprint of the format's arrays.
	Bytes() int
}

func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }
