package formats

import (
	"sort"

	"repro/internal/matrix"
)

// SELLCS is a SELL-C-σ ("sliced ELLPACK") matrix — the suite's stand-in for
// the CSR5 future-work format the thesis names in §6.3.1. Both CSR5 and
// SELL-C-σ attack the same weakness: ELLPACK pads every row to the global
// maximum, so one long row poisons the whole matrix. SELL-C-σ instead
//
//  1. sorts rows by length within windows of σ rows (bounded reordering,
//     so locality of the original ordering is roughly kept),
//  2. groups the (permuted) rows into slices of C rows, and
//  3. pads each slice only to its own maximum width, storing the slice
//     column-major so slot s of all C rows is contiguous (SIMD/GPU lanes).
type SELLCS[T matrix.Float] struct {
	Rows, Cols int
	// C is the slice height; Sigma the sorting-window size (a multiple of
	// C; Sigma == Rows gives a full sort, Sigma == C disables sorting).
	C, Sigma int
	// Perm maps permuted position -> original row; row Perm[i] of the
	// matrix is stored at permuted position i.
	Perm []int32
	// SlicePtr has numSlices+1 entries giving each slice's offset into
	// ColIdx/Vals (in elements, already multiplied by C).
	SlicePtr []int32
	// Width[s] is slice s's padded row width.
	Width []int32
	// ColIdx/Vals store slice s column-major: entry (lane l, slot j) of
	// slice s is at SlicePtr[s] + j*C + l. Padding repeats the lane's
	// last real column with value 0.
	ColIdx []int32
	Vals   []T

	balanced partitionCache // memoized element-balanced slice splits
}

// SELLCSFromCOO converts a COO matrix to SELL-C-σ form. c must be >= 1 and
// sigma a positive multiple of c (or sigma == 0 for "no sorting").
func SELLCSFromCOO[T matrix.Float](m *matrix.COO[T], c, sigma int) (*SELLCS[T], error) {
	if c < 1 {
		return nil, invalidf("sellcs: slice height %d (must be >= 1)", c)
	}
	if sigma == 0 {
		sigma = c
	}
	if sigma < c || sigma%c != 0 {
		return nil, invalidf("sellcs: sigma %d must be a positive multiple of C=%d", sigma, c)
	}

	csr := CSRFromCOO(m)
	rows := m.Rows

	// Sort rows by descending length within σ-windows.
	perm := make([]int32, rows)
	for i := range perm {
		perm[i] = int32(i)
	}
	for lo := 0; lo < rows; lo += sigma {
		hi := min(lo+sigma, rows)
		win := perm[lo:hi]
		sort.SliceStable(win, func(a, b int) bool {
			return csr.RowNNZ(int(win[a])) > csr.RowNNZ(int(win[b]))
		})
	}

	numSlices := ceilDiv(max(rows, 1), c)
	if rows == 0 {
		numSlices = 0
	}
	s := &SELLCS[T]{
		Rows:     rows,
		Cols:     m.Cols,
		C:        c,
		Sigma:    sigma,
		Perm:     perm,
		SlicePtr: make([]int32, numSlices+1),
		Width:    make([]int32, numSlices),
	}

	// First pass: slice widths and offsets.
	total := 0
	for sl := 0; sl < numSlices; sl++ {
		w := 0
		for l := 0; l < c; l++ {
			pos := sl*c + l
			if pos >= rows {
				break
			}
			if n := csr.RowNNZ(int(perm[pos])); n > w {
				w = n
			}
		}
		s.Width[sl] = int32(w)
		s.SlicePtr[sl] = int32(total)
		total += w * c
	}
	if numSlices > 0 {
		s.SlicePtr[numSlices] = int32(total)
	}
	s.ColIdx = make([]int32, total)
	s.Vals = make([]T, total)

	// Second pass: scatter entries column-major per slice.
	for sl := 0; sl < numSlices; sl++ {
		base := int(s.SlicePtr[sl])
		w := int(s.Width[sl])
		for l := 0; l < c; l++ {
			pos := sl*c + l
			lastCol := int32(0)
			if pos < rows {
				r := int(perm[pos])
				lastCol = int32(min(r, max(m.Cols-1, 0)))
				j := 0
				for p := csr.RowPtr[r]; p < csr.RowPtr[r+1]; p++ {
					s.ColIdx[base+j*c+l] = csr.ColIdx[p]
					s.Vals[base+j*c+l] = csr.Vals[p]
					lastCol = csr.ColIdx[p]
					j++
				}
				for ; j < w; j++ {
					s.ColIdx[base+j*c+l] = lastCol
				}
			} else {
				for j := 0; j < w; j++ {
					s.ColIdx[base+j*c+l] = lastCol
				}
			}
		}
	}
	return s, nil
}

// NumSlices reports the number of row slices.
func (s *SELLCS[T]) NumSlices() int { return len(s.Width) }

// ToCOO expands stored nonzeros back into sorted COO form, undoing the row
// permutation.
func (s *SELLCS[T]) ToCOO() *matrix.COO[T] {
	m := matrix.NewCOO[T](s.Rows, s.Cols, 0)
	for sl := 0; sl < s.NumSlices(); sl++ {
		base := int(s.SlicePtr[sl])
		w := int(s.Width[sl])
		for l := 0; l < s.C; l++ {
			pos := sl*s.C + l
			if pos >= s.Rows {
				break
			}
			row := s.Perm[pos]
			for j := 0; j < w; j++ {
				v := s.Vals[base+j*s.C+l]
				if v != 0 {
					m.Append(row, s.ColIdx[base+j*s.C+l], v)
				}
			}
		}
	}
	m.SortRowMajor()
	return m
}

// FormatName implements Sparse.
func (s *SELLCS[T]) FormatName() string { return "sellcs" }

// Dims implements Sparse.
func (s *SELLCS[T]) Dims() (int, int) { return s.Rows, s.Cols }

// NNZ implements Sparse.
func (s *SELLCS[T]) NNZ() int {
	n := 0
	for _, v := range s.Vals {
		if v != 0 {
			n++
		}
	}
	return n
}

// Stored implements Sparse.
func (s *SELLCS[T]) Stored() int { return len(s.Vals) }

// Bytes implements Sparse.
func (s *SELLCS[T]) Bytes() int {
	var z T
	return len(s.Perm)*4 + len(s.SlicePtr)*4 + len(s.Width)*4 +
		len(s.ColIdx)*4 + len(s.Vals)*valueSize(z)
}

// Validate checks the SELL-C-σ structural invariants.
func (s *SELLCS[T]) Validate() error {
	if s.C < 1 {
		return invalidf("sellcs: C=%d", s.C)
	}
	if len(s.Perm) != s.Rows {
		return invalidf("sellcs: Perm length %d, want %d", len(s.Perm), s.Rows)
	}
	seen := make([]bool, s.Rows)
	for _, p := range s.Perm {
		if p < 0 || int(p) >= s.Rows || seen[p] {
			return invalidf("sellcs: Perm is not a permutation (row %d)", p)
		}
		seen[p] = true
	}
	if len(s.SlicePtr) != len(s.Width)+1 {
		return invalidf("sellcs: SlicePtr length %d, want %d", len(s.SlicePtr), len(s.Width)+1)
	}
	for sl := range s.Width {
		if got := s.SlicePtr[sl+1] - s.SlicePtr[sl]; got != s.Width[sl]*int32(s.C) {
			return invalidf("sellcs: slice %d spans %d elements, want %d", sl, got, s.Width[sl]*int32(s.C))
		}
	}
	if n := len(s.SlicePtr); n > 0 && int(s.SlicePtr[n-1]) != len(s.Vals) {
		return invalidf("sellcs: SlicePtr end %d, want %d", s.SlicePtr[n-1], len(s.Vals))
	}
	if len(s.ColIdx) != len(s.Vals) {
		return invalidf("sellcs: ColIdx length %d != Vals length %d", len(s.ColIdx), len(s.Vals))
	}
	for i, col := range s.ColIdx {
		if col < 0 || (int(col) >= s.Cols && s.Cols > 0) {
			return invalidf("sellcs: slot %d column %d outside [0, %d)", i, col, s.Cols)
		}
	}
	return nil
}
