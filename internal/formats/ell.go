package formats

import (
	"repro/internal/matrix"
)

// ELLLayout selects the storage order of the ELLPACK arrays.
type ELLLayout uint8

const (
	// RowMajor stores each row's Width slots contiguously — the natural
	// layout for one-CPU-thread-per-row traversal.
	RowMajor ELLLayout = iota
	// ColMajor stores slot j of every row contiguously — the layout GPU
	// kernels want, because adjacent threads (rows) then load adjacent
	// memory (coalescing). Comparing the two layouts is one of the
	// suite's ablation benchmarks.
	ColMajor
)

func (l ELLLayout) String() string {
	if l == ColMajor {
		return "colmajor"
	}
	return "rowmajor"
}

// ELL is the ELLPACK format: every row stores exactly Width (column, value)
// slots, where Width is the maximum number of nonzeros in any row. Shorter
// rows are padded with explicit zeros. The thesis pads "in proximity to the
// nonzero elements to introduce spatial locality" (§2.2): padding slots
// repeat the row's last real column index (or the row index clamped into
// range for empty rows) with value 0, so padded loads touch memory the real
// entries already brought into cache.
type ELL[T matrix.Float] struct {
	Rows, Cols int
	Width      int
	Layout     ELLLayout
	// ColIdx and Vals have Rows*Width entries laid out per Layout.
	ColIdx []int32
	Vals   []T
}

// ELLFromCOO converts a COO matrix to ELLPACK in the requested layout.
// The ELL width is the maximum row degree; matrices with one very long row
// (a high "column ratio" in the thesis' metrics) therefore pad heavily,
// which is exactly the degradation the benchmark measures.
func ELLFromCOO[T matrix.Float](m *matrix.COO[T], layout ELLLayout) *ELL[T] {
	m.SortRowMajor()
	counts := m.RowCounts()
	width := 0
	for _, c := range counts {
		if c > width {
			width = c
		}
	}
	e := &ELL[T]{
		Rows:   m.Rows,
		Cols:   m.Cols,
		Width:  width,
		Layout: layout,
		ColIdx: make([]int32, m.Rows*width),
		Vals:   make([]T, m.Rows*width),
	}
	if width == 0 {
		return e
	}
	// Walk the sorted triplets row by row, then pad.
	p := 0
	for i := 0; i < m.Rows; i++ {
		slot := 0
		lastCol := int32(min(i, m.Cols-1)) // padding column for empty rows
		for p < m.NNZ() && int(m.RowIdx[p]) == i {
			idx := e.index(i, slot)
			e.ColIdx[idx] = m.ColIdx[p]
			e.Vals[idx] = m.Vals[p]
			lastCol = m.ColIdx[p]
			slot++
			p++
		}
		for ; slot < width; slot++ {
			idx := e.index(i, slot)
			e.ColIdx[idx] = lastCol
			// Vals already zero.
		}
	}
	return e
}

// index maps (row, slot) to the flat array position for the layout.
func (e *ELL[T]) index(row, slot int) int {
	if e.Layout == ColMajor {
		return slot*e.Rows + row
	}
	return row*e.Width + slot
}

// At returns the (column, value) stored at the given row and slot.
func (e *ELL[T]) At(row, slot int) (int32, T) {
	idx := e.index(row, slot)
	return e.ColIdx[idx], e.Vals[idx]
}

// Relayout returns a copy of e converted to the requested layout (or e
// itself when the layout already matches).
func (e *ELL[T]) Relayout(layout ELLLayout) *ELL[T] {
	if layout == e.Layout {
		return e
	}
	out := &ELL[T]{
		Rows:   e.Rows,
		Cols:   e.Cols,
		Width:  e.Width,
		Layout: layout,
		ColIdx: make([]int32, len(e.ColIdx)),
		Vals:   make([]T, len(e.Vals)),
	}
	for i := 0; i < e.Rows; i++ {
		for s := 0; s < e.Width; s++ {
			src := e.index(i, s)
			dst := out.index(i, s)
			out.ColIdx[dst] = e.ColIdx[src]
			out.Vals[dst] = e.Vals[src]
		}
	}
	return out
}

// ToCOO expands the real (nonzero) entries back into sorted COO form.
// Padding slots are dropped, so a round trip through ELL preserves the
// logical matrix whenever the source had no explicit zero values.
func (e *ELL[T]) ToCOO() *matrix.COO[T] {
	m := matrix.NewCOO[T](e.Rows, e.Cols, e.NNZ())
	for i := 0; i < e.Rows; i++ {
		for s := 0; s < e.Width; s++ {
			col, v := e.At(i, s)
			if v != 0 {
				m.Append(int32(i), col, v)
			}
		}
	}
	m.SortRowMajor()
	return m
}

// FormatName implements Sparse.
func (e *ELL[T]) FormatName() string { return "ell" }

// Dims implements Sparse.
func (e *ELL[T]) Dims() (int, int) { return e.Rows, e.Cols }

// NNZ implements Sparse; it counts nonzero stored values, excluding padding.
func (e *ELL[T]) NNZ() int {
	n := 0
	for _, v := range e.Vals {
		if v != 0 {
			n++
		}
	}
	return n
}

// Stored implements Sparse; every slot, padded or not, is stored.
func (e *ELL[T]) Stored() int { return len(e.Vals) }

// Bytes implements Sparse.
func (e *ELL[T]) Bytes() int {
	var z T
	return len(e.ColIdx)*4 + len(e.Vals)*valueSize(z)
}

// Validate checks structural invariants: array lengths matching Rows*Width
// and in-range column indices.
func (e *ELL[T]) Validate() error {
	want := e.Rows * e.Width
	if len(e.ColIdx) != want || len(e.Vals) != want {
		return invalidf("ell: arrays have %d/%d entries, want %d",
			len(e.ColIdx), len(e.Vals), want)
	}
	for i, col := range e.ColIdx {
		if col < 0 || int(col) >= e.Cols {
			if e.Cols == 0 && col == 0 {
				continue
			}
			return invalidf("ell: slot %d column %d outside [0, %d)", i, col, e.Cols)
		}
	}
	return nil
}
