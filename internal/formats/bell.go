package formats

import (
	"repro/internal/matrix"
)

// BELL is the Blocked-ELLPACK format named by the thesis as "halfway
// between ELL and BCSR" (§2.2) and the first future-work target (§6.3.1):
// the matrix is partitioned into BR×BC blocks, and each block row stores the
// same number of blocks — the maximum over all block rows — padded with zero
// blocks. It is, exactly, ELLPACK applied at block granularity.
type BELL[T matrix.Float] struct {
	Rows, Cols           int
	BR, BC               int
	BlockRows, BlockCols int
	// Width is the number of block slots per block row (max blocks in any
	// block row).
	Width int
	// ColIdx has BlockRows*Width block-column indices, row-major by block
	// row; padding slots repeat the block row's last real block column.
	ColIdx []int32
	// Vals has BlockRows*Width dense blocks of BR*BC values each.
	Vals []T
}

// BELLFromCOO converts a COO matrix to Blocked-ELL by building the block
// structure (as BCSR does) and then padding every block row to the widest.
func BELLFromCOO[T matrix.Float](m *matrix.COO[T], br, bc int) (*BELL[T], error) {
	bcsr, err := BCSRFromCOO(m, br, bc)
	if err != nil {
		return nil, err
	}
	width := 0
	for i := 0; i < bcsr.BlockRows; i++ {
		if w := int(bcsr.RowPtr[i+1] - bcsr.RowPtr[i]); w > width {
			width = w
		}
	}
	e := &BELL[T]{
		Rows:      bcsr.Rows,
		Cols:      bcsr.Cols,
		BR:        br,
		BC:        bc,
		BlockRows: bcsr.BlockRows,
		BlockCols: bcsr.BlockCols,
		Width:     width,
		ColIdx:    make([]int32, bcsr.BlockRows*width),
		Vals:      make([]T, bcsr.BlockRows*width*br*bc),
	}
	blkSize := br * bc
	for i := 0; i < bcsr.BlockRows; i++ {
		slot := 0
		lastCol := int32(min(i, max(e.BlockCols-1, 0)))
		for p := bcsr.RowPtr[i]; p < bcsr.RowPtr[i+1]; p++ {
			dst := (i*width + slot) * blkSize
			copy(e.Vals[dst:dst+blkSize], bcsr.Block(int(p)))
			e.ColIdx[i*width+slot] = bcsr.ColIdx[p]
			lastCol = bcsr.ColIdx[p]
			slot++
		}
		for ; slot < width; slot++ {
			e.ColIdx[i*width+slot] = lastCol
			// Vals already zero.
		}
	}
	return e, nil
}

// BlockAt returns the dense values of the block at block row i, slot s.
func (e *BELL[T]) BlockAt(i, s int) []T {
	sz := e.BR * e.BC
	off := (i*e.Width + s) * sz
	return e.Vals[off : off+sz]
}

// ToCOO expands stored nonzeros back into sorted COO form.
func (e *BELL[T]) ToCOO() *matrix.COO[T] {
	m := matrix.NewCOO[T](e.Rows, e.Cols, e.NNZ())
	for i := 0; i < e.BlockRows; i++ {
		for s := 0; s < e.Width; s++ {
			bci := int(e.ColIdx[i*e.Width+s])
			blk := e.BlockAt(i, s)
			for r := 0; r < e.BR; r++ {
				row := i*e.BR + r
				if row >= e.Rows {
					break
				}
				for c := 0; c < e.BC; c++ {
					col := bci*e.BC + c
					if col >= e.Cols {
						break
					}
					if v := blk[r*e.BC+c]; v != 0 {
						m.Append(int32(row), int32(col), v)
					}
				}
			}
		}
	}
	m.Dedup() // padding slots may alias a real block column with zero values
	return m
}

// FormatName implements Sparse.
func (e *BELL[T]) FormatName() string { return "bell" }

// Dims implements Sparse.
func (e *BELL[T]) Dims() (int, int) { return e.Rows, e.Cols }

// NNZ implements Sparse.
func (e *BELL[T]) NNZ() int {
	n := 0
	for _, v := range e.Vals {
		if v != 0 {
			n++
		}
	}
	return n
}

// Stored implements Sparse.
func (e *BELL[T]) Stored() int { return len(e.Vals) }

// Bytes implements Sparse.
func (e *BELL[T]) Bytes() int {
	var z T
	return len(e.ColIdx)*4 + len(e.Vals)*valueSize(z)
}

// Validate checks the BELL structural invariants.
func (e *BELL[T]) Validate() error {
	if e.BR < 1 || e.BC < 1 {
		return invalidBlock(e.BR, e.BC)
	}
	if len(e.ColIdx) != e.BlockRows*e.Width {
		return invalidf("bell: ColIdx length %d, want %d", len(e.ColIdx), e.BlockRows*e.Width)
	}
	if len(e.Vals) != e.BlockRows*e.Width*e.BR*e.BC {
		return invalidf("bell: Vals length %d, want %d", len(e.Vals), e.BlockRows*e.Width*e.BR*e.BC)
	}
	for i, col := range e.ColIdx {
		if col < 0 || (int(col) >= e.BlockCols && e.BlockCols > 0) {
			return invalidf("bell: slot %d block column %d outside [0, %d)", i, col, e.BlockCols)
		}
	}
	return nil
}
