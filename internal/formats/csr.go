package formats

import (
	"repro/internal/matrix"
)

// CSR is the compressed sparse row format: COO with the row indices
// compressed into a rows+1 prefix-sum array.
type CSR[T matrix.Float] struct {
	Rows, Cols int
	// RowPtr has length Rows+1; row i's entries live at
	// ColIdx[RowPtr[i]:RowPtr[i+1]] and Vals[RowPtr[i]:RowPtr[i+1]].
	RowPtr []int32
	ColIdx []int32
	Vals   []T

	balanced partitionCache // memoized nnz-balanced row splits
}

// CSRFromCOO converts a COO matrix to CSR. The input is sorted row-major
// first (a no-op when already sorted); duplicates are preserved, matching
// the additive semantics of the multiply kernels.
func CSRFromCOO[T matrix.Float](m *matrix.COO[T]) *CSR[T] {
	m.SortRowMajor()
	nnz := m.NNZ()
	c := &CSR[T]{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int32, m.Rows+1),
		ColIdx: make([]int32, nnz),
		Vals:   make([]T, nnz),
	}
	for _, r := range m.RowIdx {
		c.RowPtr[r+1]++
	}
	for i := 0; i < m.Rows; i++ {
		c.RowPtr[i+1] += c.RowPtr[i]
	}
	copy(c.ColIdx, m.ColIdx)
	copy(c.Vals, m.Vals)
	return c
}

// ToCOO expands the CSR matrix back into row-major sorted COO form.
func (c *CSR[T]) ToCOO() *matrix.COO[T] {
	m := matrix.NewCOO[T](c.Rows, c.Cols, c.NNZ())
	for i := 0; i < c.Rows; i++ {
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			m.Append(int32(i), c.ColIdx[p], c.Vals[p])
		}
	}
	return m
}

// FormatName implements Sparse.
func (c *CSR[T]) FormatName() string { return "csr" }

// Dims implements Sparse.
func (c *CSR[T]) Dims() (int, int) { return c.Rows, c.Cols }

// NNZ implements Sparse.
func (c *CSR[T]) NNZ() int { return len(c.Vals) }

// Stored implements Sparse; CSR stores exactly the nonzeros.
func (c *CSR[T]) Stored() int { return len(c.Vals) }

// Bytes implements Sparse.
func (c *CSR[T]) Bytes() int {
	var z T
	return len(c.RowPtr)*4 + len(c.ColIdx)*4 + len(c.Vals)*valueSize(z)
}

// RowNNZ returns the number of stored entries in row i.
func (c *CSR[T]) RowNNZ(i int) int { return int(c.RowPtr[i+1] - c.RowPtr[i]) }

// Validate checks the CSR structural invariants: monotone row pointers
// spanning the value array and in-range column indices.
func (c *CSR[T]) Validate() error {
	if len(c.RowPtr) != c.Rows+1 {
		return invalidf("csr: RowPtr length %d, want %d", len(c.RowPtr), c.Rows+1)
	}
	if len(c.ColIdx) != len(c.Vals) {
		return invalidf("csr: ColIdx length %d != Vals length %d", len(c.ColIdx), len(c.Vals))
	}
	if c.RowPtr[0] != 0 || int(c.RowPtr[c.Rows]) != len(c.Vals) {
		return invalidf("csr: RowPtr endpoints [%d, %d], want [0, %d]",
			c.RowPtr[0], c.RowPtr[c.Rows], len(c.Vals))
	}
	for i := 0; i < c.Rows; i++ {
		if c.RowPtr[i+1] < c.RowPtr[i] {
			return invalidf("csr: RowPtr not monotone at row %d", i)
		}
	}
	for p, col := range c.ColIdx {
		if col < 0 || int(col) >= c.Cols {
			return invalidf("csr: entry %d column %d outside [0, %d)", p, col, c.Cols)
		}
	}
	return nil
}

// CSC is the compressed sparse column format — the transpose-oriented twin
// of CSR. The related work the thesis surveys ([17]) studies SpMM on CSC;
// the suite provides it so a CSC kernel can be benchmarked alongside.
type CSC[T matrix.Float] struct {
	Rows, Cols int
	ColPtr     []int32
	RowIdx     []int32
	Vals       []T
}

// CSCFromCOO converts a COO matrix to CSC by transposing, compressing, and
// relabelling.
func CSCFromCOO[T matrix.Float](m *matrix.COO[T]) *CSC[T] {
	t := m.Transpose()
	csr := CSRFromCOO(t)
	return &CSC[T]{
		Rows:   m.Rows,
		Cols:   m.Cols,
		ColPtr: csr.RowPtr,
		RowIdx: csr.ColIdx,
		Vals:   csr.Vals,
	}
}

// FormatName implements Sparse.
func (c *CSC[T]) FormatName() string { return "csc" }

// Dims implements Sparse.
func (c *CSC[T]) Dims() (int, int) { return c.Rows, c.Cols }

// NNZ implements Sparse.
func (c *CSC[T]) NNZ() int { return len(c.Vals) }

// Stored implements Sparse.
func (c *CSC[T]) Stored() int { return len(c.Vals) }

// Bytes implements Sparse.
func (c *CSC[T]) Bytes() int {
	var z T
	return len(c.ColPtr)*4 + len(c.RowIdx)*4 + len(c.Vals)*valueSize(z)
}

// ToCOO expands the CSC matrix into row-major sorted COO form.
func (c *CSC[T]) ToCOO() *matrix.COO[T] {
	m := matrix.NewCOO[T](c.Rows, c.Cols, c.NNZ())
	for j := 0; j < c.Cols; j++ {
		for p := c.ColPtr[j]; p < c.ColPtr[j+1]; p++ {
			m.Append(c.RowIdx[p], int32(j), c.Vals[p])
		}
	}
	m.SortRowMajor()
	return m
}

func valueSize[T matrix.Float](T) int {
	var z T
	switch any(z).(type) {
	case float32:
		return 4
	default:
		return 8
	}
}
