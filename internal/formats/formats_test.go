package formats

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// randomCOO builds a random rows×cols COO with distinct entries.
func randomCOO(rng *rand.Rand, rows, cols, nnzTarget int) *matrix.COO[float64] {
	m := matrix.NewCOO[float64](rows, cols, nnzTarget)
	for i := 0; i < nnzTarget; i++ {
		m.Append(int32(rng.Intn(rows)), int32(rng.Intn(cols)), rng.NormFloat64()+3) // offset avoids exact zeros
	}
	m.Dedup()
	return m
}

func quickCOO(seed int64) *matrix.COO[float64] {
	rng := rand.New(rand.NewSource(seed))
	rows := 1 + rng.Intn(40)
	cols := 1 + rng.Intn(40)
	return randomCOO(rng, rows, cols, rng.Intn(rows*cols+1))
}

func sameDense(t *testing.T, a, b *matrix.COO[float64], label string) {
	t.Helper()
	if !a.ToDense().EqualTol(b.ToDense(), 1e-12) {
		t.Fatalf("%s: dense expansion differs", label)
	}
}

func TestCSRRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		m := quickCOO(seed)
		c := CSRFromCOO(m)
		if c.Validate() != nil {
			return false
		}
		return c.ToCOO().ToDense().EqualTol(m.ToDense(), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCSRKnownSmall(t *testing.T) {
	m := matrix.NewCOO[float64](3, 3, 3)
	m.Append(0, 1, 2)
	m.Append(2, 0, 5)
	m.Append(2, 2, 7)
	c := CSRFromCOO(m)
	wantPtr := []int32{0, 1, 1, 3}
	for i, w := range wantPtr {
		if c.RowPtr[i] != w {
			t.Fatalf("RowPtr = %v, want %v", c.RowPtr, wantPtr)
		}
	}
	if c.RowNNZ(0) != 1 || c.RowNNZ(1) != 0 || c.RowNNZ(2) != 2 {
		t.Fatal("RowNNZ wrong")
	}
	if c.NNZ() != 3 || c.Stored() != 3 {
		t.Fatal("NNZ/Stored wrong")
	}
}

func TestCSRValidateCatchesCorruption(t *testing.T) {
	m := quickCOO(7)
	c := CSRFromCOO(m)
	good := c.RowPtr[len(c.RowPtr)-1]
	c.RowPtr[len(c.RowPtr)-1] = good + 1
	if c.Validate() == nil {
		t.Fatal("bad endpoint undetected")
	}
	c.RowPtr[len(c.RowPtr)-1] = good
	if len(c.ColIdx) > 0 {
		c.ColIdx[0] = int32(c.Cols)
		if c.Validate() == nil {
			t.Fatal("out-of-range column undetected")
		}
	}
}

func TestCSCRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		m := quickCOO(seed)
		c := CSCFromCOO(m)
		return c.ToCOO().ToDense().EqualTol(m.ToDense(), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestELLRoundTripBothLayouts(t *testing.T) {
	for _, layout := range []ELLLayout{RowMajor, ColMajor} {
		f := func(seed int64) bool {
			m := quickCOO(seed)
			e := ELLFromCOO(m, layout)
			if e.Validate() != nil {
				return false
			}
			return e.ToCOO().ToDense().EqualTol(m.ToDense(), 0)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("layout %v: %v", layout, err)
		}
	}
}

func TestELLWidthIsMaxRowDegree(t *testing.T) {
	m := matrix.NewCOO[float64](4, 6, 5)
	m.Append(1, 0, 1)
	m.Append(1, 2, 1)
	m.Append(1, 5, 1)
	m.Append(3, 3, 1)
	e := ELLFromCOO(m, RowMajor)
	if e.Width != 3 {
		t.Fatalf("Width = %d, want 3", e.Width)
	}
	if e.Stored() != 12 {
		t.Fatalf("Stored = %d, want 12", e.Stored())
	}
}

func TestELLPaddingLocality(t *testing.T) {
	// Padding must repeat the row's last real column (spatial locality).
	m := matrix.NewCOO[float64](2, 8, 3)
	m.Append(0, 3, 1)
	m.Append(1, 1, 1)
	m.Append(1, 6, 1)
	e := ELLFromCOO(m, RowMajor)
	col, v := e.At(0, 1)
	if v != 0 || col != 3 {
		t.Fatalf("padding slot = (%d, %v), want (3, 0)", col, v)
	}
}

func TestELLRelayoutPreservesContent(t *testing.T) {
	m := quickCOO(99)
	e := ELLFromCOO(m, RowMajor)
	cm := e.Relayout(ColMajor)
	if cm.Layout != ColMajor {
		t.Fatal("layout flag not updated")
	}
	for i := 0; i < e.Rows; i++ {
		for s := 0; s < e.Width; s++ {
			c1, v1 := e.At(i, s)
			c2, v2 := cm.At(i, s)
			if c1 != c2 || v1 != v2 {
				t.Fatalf("slot (%d,%d) differs after relayout", i, s)
			}
		}
	}
	if e.Relayout(RowMajor) != e {
		t.Fatal("same-layout relayout should return the receiver")
	}
}

func TestBCSRRoundTripAllBlockSizes(t *testing.T) {
	for _, bs := range [][2]int{{1, 1}, {2, 2}, {4, 4}, {3, 5}, {16, 16}} {
		f := func(seed int64) bool {
			m := quickCOO(seed)
			b, err := BCSRFromCOO(m, bs[0], bs[1])
			if err != nil || b.Validate() != nil {
				return false
			}
			return b.ToCOO().ToDense().EqualTol(m.ToDense(), 0)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("block %v: %v", bs, err)
		}
	}
}

func TestBCSRMapAndSortedBuildersAgree(t *testing.T) {
	f := func(seed int64) bool {
		m := quickCOO(seed)
		fast, err1 := BCSRFromCOO(m, 4, 4)
		slow, err2 := BCSRFromCOOMap(m, 4, 4)
		if err1 != nil || err2 != nil {
			return false
		}
		if len(fast.ColIdx) != len(slow.ColIdx) || len(fast.Vals) != len(slow.Vals) {
			return false
		}
		for i := range fast.RowPtr {
			if fast.RowPtr[i] != slow.RowPtr[i] {
				return false
			}
		}
		for i := range fast.ColIdx {
			if fast.ColIdx[i] != slow.ColIdx[i] {
				return false
			}
		}
		for i := range fast.Vals {
			if fast.Vals[i] != slow.Vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBCSRRejectsBadBlockSize(t *testing.T) {
	m := quickCOO(1)
	for _, bs := range [][2]int{{0, 4}, {4, 0}, {-1, 2}} {
		if _, err := BCSRFromCOO(m, bs[0], bs[1]); err == nil {
			t.Fatalf("block %v accepted", bs)
		}
		if _, err := BCSRFromCOOMap(m, bs[0], bs[1]); err == nil {
			t.Fatalf("map builder: block %v accepted", bs)
		}
	}
}

func TestBCSRFillRatio(t *testing.T) {
	// A dense 4x4 corner in an 8x8 matrix: one full block, ratio 1.
	m := matrix.NewCOO[float64](8, 8, 16)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m.Append(int32(i), int32(j), 1)
		}
	}
	b, err := BCSRFromCOO(m, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumBlocks() != 1 || b.FillRatio() != 1 {
		t.Fatalf("blocks=%d fill=%v", b.NumBlocks(), b.FillRatio())
	}
	// A single entry in a 4x4 block: ratio 1/16.
	m2 := matrix.NewCOO[float64](8, 8, 1)
	m2.Append(0, 0, 1)
	b2, _ := BCSRFromCOO(m2, 4, 4)
	if b2.FillRatio() != 1.0/16 {
		t.Fatalf("fill=%v, want 1/16", b2.FillRatio())
	}
}

func TestBCSRUnevenDimensions(t *testing.T) {
	// 5x7 with 4x4 blocks exercises the padded fringe.
	rng := rand.New(rand.NewSource(5))
	m := randomCOO(rng, 5, 7, 20)
	b, err := BCSRFromCOO(m, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.BlockRows != 2 || b.BlockCols != 2 {
		t.Fatalf("grid %dx%d", b.BlockRows, b.BlockCols)
	}
	sameDense(t, m, b.ToCOO(), "uneven bcsr")
}

func TestBELLRoundTrip(t *testing.T) {
	for _, bs := range [][2]int{{2, 2}, {4, 4}, {3, 2}} {
		f := func(seed int64) bool {
			m := quickCOO(seed)
			e, err := BELLFromCOO(m, bs[0], bs[1])
			if err != nil || e.Validate() != nil {
				return false
			}
			return e.ToCOO().ToDense().EqualTol(m.ToDense(), 0)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("block %v: %v", bs, err)
		}
	}
}

func TestBELLWidthUniform(t *testing.T) {
	m := quickCOO(3)
	e, err := BELLFromCOO(m, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.ColIdx) != e.BlockRows*e.Width {
		t.Fatal("every block row must have exactly Width slots")
	}
	b, _ := BCSRFromCOO(m, 2, 2)
	for i := 0; i < b.BlockRows; i++ {
		if w := int(b.RowPtr[i+1] - b.RowPtr[i]); w > e.Width {
			t.Fatalf("block row %d has %d blocks > BELL width %d", i, w, e.Width)
		}
	}
}

func TestSELLCSRoundTrip(t *testing.T) {
	for _, cfg := range [][2]int{{1, 1}, {4, 4}, {4, 16}, {8, 8}, {32, 64}} {
		f := func(seed int64) bool {
			m := quickCOO(seed)
			s, err := SELLCSFromCOO(m, cfg[0], cfg[1])
			if err != nil || s.Validate() != nil {
				return false
			}
			return s.ToCOO().ToDense().EqualTol(m.ToDense(), 0)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("C=%d sigma=%d: %v", cfg[0], cfg[1], err)
		}
	}
}

func TestSELLCSRejectsBadParams(t *testing.T) {
	m := quickCOO(2)
	if _, err := SELLCSFromCOO(m, 0, 0); err == nil {
		t.Fatal("C=0 accepted")
	}
	if _, err := SELLCSFromCOO(m, 4, 6); err == nil {
		t.Fatal("sigma not multiple of C accepted")
	}
	if _, err := SELLCSFromCOO(m, 4, 2); err == nil {
		t.Fatal("sigma < C accepted")
	}
}

func TestSELLCSPadsLessThanELL(t *testing.T) {
	// One long row: ELL pads everything; SELL with small C pads one slice.
	m := matrix.NewCOO[float64](64, 64, 0)
	for j := 0; j < 64; j++ {
		m.Append(0, int32(j), 1)
	}
	for i := 1; i < 64; i++ {
		m.Append(int32(i), int32(i), 1)
	}
	ell := ELLFromCOO(m, RowMajor)
	sell, err := SELLCSFromCOO(m, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sell.Stored() >= ell.Stored() {
		t.Fatalf("SELL stored %d should beat ELL stored %d on a skewed matrix",
			sell.Stored(), ell.Stored())
	}
}

func TestSparseInterfaceCompliance(t *testing.T) {
	m := quickCOO(11)
	var sparses []Sparse
	sparses = append(sparses, CSRFromCOO(m), CSCFromCOO(m), ELLFromCOO(m, RowMajor))
	if b, err := BCSRFromCOO(m, 4, 4); err == nil {
		sparses = append(sparses, b)
	}
	if e, err := BELLFromCOO(m, 4, 4); err == nil {
		sparses = append(sparses, e)
	}
	if s, err := SELLCSFromCOO(m, 4, 8); err == nil {
		sparses = append(sparses, s)
	}
	names := map[string]bool{}
	for _, s := range sparses {
		if s.FormatName() == "" || names[s.FormatName()] {
			t.Fatalf("duplicate or empty format name %q", s.FormatName())
		}
		names[s.FormatName()] = true
		r, c := s.Dims()
		if r != m.Rows || c != m.Cols {
			t.Fatalf("%s: dims %dx%d", s.FormatName(), r, c)
		}
		if s.Stored() < s.NNZ() {
			t.Fatalf("%s: Stored %d < NNZ %d", s.FormatName(), s.Stored(), s.NNZ())
		}
		if s.Bytes() <= 0 && s.NNZ() > 0 {
			t.Fatalf("%s: Bytes %d", s.FormatName(), s.Bytes())
		}
	}
}

func TestBCSRBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		m := quickCOO(seed)
		b, err := BCSRFromCOO(m, 4, 4)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteBCSR(&buf, b); err != nil {
			return false
		}
		back, err := ReadBCSR[float64](&buf)
		if err != nil {
			return false
		}
		return back.ToCOO().ToDense().EqualTol(m.ToDense(), 0) &&
			back.BR == b.BR && back.BC == b.BC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBCSRBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("BCSR"),
		[]byte("NOTBCSR1 some garbage"),
		append([]byte(bcsrMagic), bytes.Repeat([]byte{0xff}, 56)...), // nonsense header
	}
	for i, in := range cases {
		if _, err := ReadBCSR[float64](bytes.NewReader(in)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestBCSRBinaryTruncated(t *testing.T) {
	m := quickCOO(8)
	b, _ := BCSRFromCOO(m, 2, 2)
	var buf bytes.Buffer
	if err := WriteBCSR(&buf, b); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if len(full) < 20 {
		t.Skip("matrix too small to truncate meaningfully")
	}
	for _, cut := range []int{10, len(full) / 2, len(full) - 1} {
		if _, err := ReadBCSR[float64](bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestFloat32Formats(t *testing.T) {
	m := matrix.NewCOO[float32](4, 4, 2)
	m.Append(0, 0, 1.5)
	m.Append(3, 3, -2.5)
	c := CSRFromCOO(m)
	if c.Bytes() >= CSRFromCOO(convert64(m)).Bytes() {
		t.Fatal("float32 CSR must be smaller than float64")
	}
}

func convert64(m *matrix.COO[float32]) *matrix.COO[float64] {
	out := matrix.NewCOO[float64](m.Rows, m.Cols, m.NNZ())
	for i := range m.Vals {
		out.Append(m.RowIdx[i], m.ColIdx[i], float64(m.Vals[i]))
	}
	return out
}
