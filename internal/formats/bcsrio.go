package formats

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/matrix"
)

// The thesis' interim answer to its slow BCSR formatter was "a small tool
// that would format the BCSR matrix into a given block configuration, and
// then save that to a file, which the BCSR kernels could quickly load and
// use" (§6.3.2). This file implements that on-disk format: a little-endian
// binary encoding with a magic header, used by cmd/bcsrfmt.

const bcsrMagic = "BCSR0001"

// WriteBCSR serialises b to w in the suite's binary BCSR format. Values are
// always stored as float64 on disk regardless of the in-memory type.
func WriteBCSR[T matrix.Float](w io.Writer, b *BCSR[T]) error {
	if err := b.Validate(); err != nil {
		return fmt.Errorf("formats: refusing to write invalid BCSR: %w", err)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(bcsrMagic); err != nil {
		return err
	}
	hdr := []int64{
		int64(b.Rows), int64(b.Cols),
		int64(b.BR), int64(b.BC),
		int64(b.BlockRows), int64(b.BlockCols),
		int64(len(b.ColIdx)),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, b.RowPtr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, b.ColIdx); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, v := range b.Vals {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(float64(v)))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBCSR deserialises a BCSR matrix written by WriteBCSR.
func ReadBCSR[T matrix.Float](r io.Reader) (*BCSR[T], error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(bcsrMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("formats: reading BCSR magic: %w", err)
	}
	if string(magic) != bcsrMagic {
		return nil, invalidf("bcsrio: bad magic %q", magic)
	}
	hdr := make([]int64, 7)
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("formats: reading BCSR header: %w", err)
		}
	}
	rows, cols := int(hdr[0]), int(hdr[1])
	brz, bcz := int(hdr[2]), int(hdr[3])
	blockRows, blockCols := int(hdr[4]), int(hdr[5])
	nblocks := int(hdr[6])
	if rows < 0 || cols < 0 || brz < 1 || bcz < 1 || blockRows < 0 || blockCols < 0 || nblocks < 0 {
		return nil, invalidf("bcsrio: nonsense header %v", hdr)
	}
	const maxReasonable = 1 << 34
	if int64(nblocks)*int64(brz)*int64(bcz) > maxReasonable {
		return nil, invalidf("bcsrio: implausible block count %d", nblocks)
	}
	b := &BCSR[T]{
		Rows: rows, Cols: cols,
		BR: brz, BC: bcz,
		BlockRows: blockRows, BlockCols: blockCols,
		RowPtr: make([]int32, blockRows+1),
		ColIdx: make([]int32, nblocks),
		Vals:   make([]T, nblocks*brz*bcz),
	}
	if err := binary.Read(br, binary.LittleEndian, b.RowPtr); err != nil {
		return nil, fmt.Errorf("formats: reading BCSR row pointers: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, b.ColIdx); err != nil {
		return nil, fmt.Errorf("formats: reading BCSR block columns: %w", err)
	}
	buf := make([]byte, 8)
	for i := range b.Vals {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("formats: reading BCSR values: %w", err)
		}
		b.Vals[i] = T(math.Float64frombits(binary.LittleEndian.Uint64(buf)))
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("formats: loaded BCSR is invalid: %w", err)
	}
	return b, nil
}

// WriteBCSRFile serialises b to a file.
func WriteBCSRFile[T matrix.Float](path string, b *BCSR[T]) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBCSR(f, b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBCSRFile deserialises a BCSR matrix from a file.
func ReadBCSRFile[T matrix.Float](path string) (*BCSR[T], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b, err := ReadBCSR[T](f)
	if err != nil {
		return nil, fmt.Errorf("formats: %s: %w", path, err)
	}
	return b, nil
}
