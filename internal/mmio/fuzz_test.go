package mmio

import (
	"bytes"
	"testing"
)

// FuzzReadCOO feeds arbitrary bytes to the MatrixMarket reader. The
// contract under fuzzing: never panic, never allocate unboundedly off the
// untrusted size line, and every accepted matrix must be internally
// consistent (Validate passes, row-major sorted) — anything else would let
// a corrupt file poison the kernels downstream.
func FuzzReadCOO(f *testing.F) {
	seeds := []string{
		// The valid corpus: every header shape the reader supports.
		"%%MatrixMarket matrix coordinate real general\n3 3 3\n1 1 1.5\n2 2 2.5\n3 1 -1\n",
		"%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 4\n3 1 2\n",
		"%%MatrixMarket matrix coordinate real skew-symmetric\n3 3 1\n2 1 7\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n",
		"%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 2 5\n",
		"%%MatrixMarket matrix array real general\n2 2\n1\n0\n3\n4\n",
		"%%MatrixMarket matrix coordinate real general\n% comment\n\n2 2 1\n1 1 1\n",
		// Malformed shapes steering the fuzzer at the validation paths.
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1\n2 2 2\n",
		"%%MatrixMarket matrix coordinate real general\n99999999999 1 1\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 987654321\n1 1 1\n",
		"%%MatrixMarket matrix array real general\n1000000 1000000\n1\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadCOO[float64](bytes.NewReader(data))
		if err != nil {
			if m != nil {
				t.Fatalf("error %v returned alongside a matrix", err)
			}
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted matrix fails Validate: %v\ninput: %q", err, data)
		}
		if !m.IsSortedRowMajor() {
			t.Fatalf("accepted matrix is not row-major sorted\ninput: %q", data)
		}
	})
}
