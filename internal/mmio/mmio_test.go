package mmio

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func TestReadGeneralCoordinate(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment line
3 4 3
1 1 1.5
3 4 -2
2 2 0.25
`
	m, err := ReadCOO[float64](strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 4 || m.NNZ() != 3 {
		t.Fatalf("dims %dx%d nnz %d", m.Rows, m.Cols, m.NNZ())
	}
	if !m.IsSortedRowMajor() {
		t.Fatal("reader must sort row-major")
	}
	d := m.ToDense()
	if d.At(0, 0) != 1.5 || d.At(2, 3) != -2 || d.At(1, 1) != 0.25 {
		t.Fatalf("values wrong: %v", d.Data)
	}
}

func TestReadSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 2
2 1 5
3 2 7
`
	m, err := ReadCOO[float64](strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 5 { // diagonal entry not mirrored
		t.Fatalf("NNZ = %d, want 5", m.NNZ())
	}
	d := m.ToDense()
	if d.At(0, 1) != 5 || d.At(1, 0) != 5 || d.At(1, 2) != 7 || d.At(2, 1) != 7 {
		t.Fatalf("symmetric expansion wrong: %v", d.Data)
	}
}

func TestReadSkewSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3
`
	m, err := ReadCOO[float64](strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	d := m.ToDense()
	if d.At(1, 0) != 3 || d.At(0, 1) != -3 {
		t.Fatalf("skew expansion wrong: %v", d.Data)
	}
}

func TestReadPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	m, err := ReadCOO[float64](strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range m.Vals {
		if v != 1 {
			t.Fatalf("pattern value %v, want 1", v)
		}
	}
}

func TestReadInteger(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate integer general
2 2 1
1 1 7
`
	m, err := ReadCOO[float64](strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Vals[0] != 7 {
		t.Fatalf("value %v", m.Vals[0])
	}
}

func TestReadArray(t *testing.T) {
	in := `%%MatrixMarket matrix array real general
2 2
1
0
3
4
`
	m, err := ReadCOO[float64](strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	d := m.ToDense()
	// Array layout is column-major: (1,0,3,4) -> [[1 3] [0 4]].
	if d.At(0, 0) != 1 || d.At(0, 1) != 3 || d.At(1, 0) != 0 || d.At(1, 1) != 4 {
		t.Fatalf("array read wrong: %v", d.Data)
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 (zero dropped)", m.NNZ())
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"bad banner":       "%%NotMatrixMarket matrix coordinate real general\n1 1 1\n1 1 1\n",
		"bad object":       "%%MatrixMarket vector coordinate real general\n1 1 1\n1 1 1\n",
		"complex":          "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"array pattern":    "%%MatrixMarket matrix array pattern general\n1 1\n",
		"missing size":     "%%MatrixMarket matrix coordinate real general\n",
		"short size":       "%%MatrixMarket matrix coordinate real general\n3 3\n",
		"nonnumeric size":  "%%MatrixMarket matrix coordinate real general\na b c\n",
		"truncated data":   "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n",
		"bad indices":      "%%MatrixMarket matrix coordinate real general\n2 2 1\nx y 1\n",
		"out of range":     "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
		"zero index":       "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n",
		"bad value":        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 zz\n",
		"missing value":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
		"array truncated":  "%%MatrixMarket matrix array real general\n2 2\n1\n2\n",
		"array bad value":  "%%MatrixMarket matrix array real general\n1 1\nzz\n",
		"unknown symmetry": "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
	}
	for name, in := range cases {
		if _, err := ReadCOO[float64](strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}

func TestErrFormatWrapping(t *testing.T) {
	_, err := ReadCOO[float64](strings.NewReader("%%MatrixMarket matrix coordinate real general\nbad\n"))
	if !errors.Is(err, ErrFormat) {
		t.Fatalf("error %v should wrap ErrFormat", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(12)
		cols := 1 + rng.Intn(12)
		m := matrix.NewCOO[float64](rows, cols, 0)
		for i := 0; i < rng.Intn(30); i++ {
			m.Append(int32(rng.Intn(rows)), int32(rng.Intn(cols)), rng.NormFloat64())
		}
		m.Dedup()
		var buf bytes.Buffer
		if err := WriteCOO(&buf, m); err != nil {
			return false
		}
		back, err := ReadCOO[float64](&buf)
		if err != nil {
			return false
		}
		return back.Rows == m.Rows && back.Cols == m.Cols &&
			back.ToDense().EqualTol(m.ToDense(), 1e-15)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.mtx")
	m := matrix.NewCOO[float64](3, 3, 2)
	m.Append(0, 2, 1.25)
	m.Append(2, 0, -4)
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile[float64](path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.ToDense().EqualTol(m.ToDense(), 0) {
		t.Fatal("file round trip mismatch")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile[float64](filepath.Join(t.TempDir(), "nope.mtx")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestFloat32Read(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 0.5\n"
	m, err := ReadCOO[float32](strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Vals[0] != 0.5 {
		t.Fatalf("value %v", m.Vals[0])
	}
}
