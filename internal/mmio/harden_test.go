package mmio

import (
	"errors"
	"strings"
	"testing"
)

// TestRejectTrailingData: the declared entry count and the data lines must
// agree exactly — extra lines mean the size line under-counted, and
// silently dropping them would hand the kernels a different matrix than
// the file holds.
func TestRejectTrailingData(t *testing.T) {
	cases := map[string]string{
		"coordinate": "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n2 2 5.0\n",
		"array":      "%%MatrixMarket matrix array real general\n2 1\n1.0\n2.0\n3.0\n",
	}
	for name, in := range cases {
		_, err := ReadCOO[float64](strings.NewReader(in))
		if !errors.Is(err, ErrFormat) {
			t.Errorf("%s: trailing data accepted (err %v)", name, err)
			continue
		}
		if !strings.Contains(err.Error(), "more data follows") {
			t.Errorf("%s: error %q does not name the trailing data", name, err)
		}
	}
}

// TestRejectNonPositiveIndices: MatrixMarket is 1-based; zero or negative
// indices indicate a 0-based or corrupt file, and the error must point at
// the offending line.
func TestRejectNonPositiveIndices(t *testing.T) {
	cases := []struct {
		name, in, wantLine string
	}{
		{"zero row", "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n", "line 3"},
		{"zero col", "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 0 1.0\n", "line 3"},
		{"negative row", "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n-1 2 1.0\n", "line 4"},
		{"pattern zero", "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 2\n", "line 3"},
	}
	for _, c := range cases {
		_, err := ReadCOO[float64](strings.NewReader(c.in))
		if !errors.Is(err, ErrFormat) {
			t.Errorf("%s: accepted (err %v)", c.name, err)
			continue
		}
		msg := err.Error()
		if !strings.Contains(msg, "must be >= 1") {
			t.Errorf("%s: error %q does not explain the 1-based convention", c.name, msg)
		}
		if !strings.Contains(msg, c.wantLine) {
			t.Errorf("%s: error %q does not point at %s", c.name, msg, c.wantLine)
		}
	}
}

// TestRejectOversizedDimensions: dimensions beyond the int32 index range
// would overflow the COO indices and produce a matrix that fails Validate.
func TestRejectOversizedDimensions(t *testing.T) {
	cases := map[string]string{
		"coordinate": "%%MatrixMarket matrix coordinate real general\n3000000000 1 0\n",
		"array":      "%%MatrixMarket matrix array real general\n1 3000000000\n",
	}
	for name, in := range cases {
		if _, err := ReadCOO[float64](strings.NewReader(in)); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: 3e9 dimension accepted (err %v)", name, err)
		}
	}
}

// TestHostileSizeLineDoesNotPreallocate: a bogus entry count far beyond the
// actual data must fail cleanly (truncated-data error) instead of
// committing gigabytes of triplet storage up front.
func TestHostileSizeLineDoesNotPreallocate(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real general\n1000000 1000000 2000000000\n1 1 1.0\n"
	_, err := ReadCOO[float64](strings.NewReader(in))
	if !errors.Is(err, ErrFormat) {
		t.Fatalf("hostile size line: %v", err)
	}
	if !strings.Contains(err.Error(), "expected 2000000000 entries") {
		t.Fatalf("error %q does not report the truncation", err)
	}
}
