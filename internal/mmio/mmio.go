// Package mmio reads and writes Matrix Market exchange files, the on-disk
// format of the SuiteSparse collection the thesis benchmarks against. The
// coordinate layout maps directly onto the suite's COO base format.
//
// Supported headers:
//
//	%%MatrixMarket matrix coordinate {real|integer|pattern} {general|symmetric|skew-symmetric}
//	%%MatrixMarket matrix array      {real|integer}         general
//
// Pattern entries read as value 1. Symmetric files are expanded to full
// storage (both triangles), matching how the thesis' loader feeds its
// kernels.
package mmio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/matrix"
)

// ErrFormat is returned for malformed Matrix Market input.
var ErrFormat = errors.New("mmio: malformed MatrixMarket input")

// maxCapHint bounds how many triplets the readers preallocate on the word
// of the (untrusted) size line; storage grows past it only as real data
// lines arrive.
const maxCapHint = 1 << 20

// Header describes the banner line of a Matrix Market file.
type Header struct {
	Object   string // "matrix"
	Layout   string // "coordinate" or "array"
	Field    string // "real", "integer", "pattern"
	Symmetry string // "general", "symmetric", "skew-symmetric"
}

func parseHeader(line string) (Header, error) {
	fields := strings.Fields(strings.ToLower(line))
	if len(fields) != 5 || fields[0] != "%%matrixmarket" {
		return Header{}, fmt.Errorf("%w: bad banner %q", ErrFormat, line)
	}
	h := Header{Object: fields[1], Layout: fields[2], Field: fields[3], Symmetry: fields[4]}
	if h.Object != "matrix" {
		return Header{}, fmt.Errorf("%w: unsupported object %q", ErrFormat, h.Object)
	}
	switch h.Layout {
	case "coordinate", "array":
	default:
		return Header{}, fmt.Errorf("%w: unsupported layout %q", ErrFormat, h.Layout)
	}
	switch h.Field {
	case "real", "integer", "pattern":
	case "complex", "hermitian":
		return Header{}, fmt.Errorf("%w: complex matrices are not supported", ErrFormat)
	default:
		return Header{}, fmt.Errorf("%w: unsupported field %q", ErrFormat, h.Field)
	}
	switch h.Symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return Header{}, fmt.Errorf("%w: unsupported symmetry %q", ErrFormat, h.Symmetry)
	}
	if h.Layout == "array" && h.Field == "pattern" {
		return Header{}, fmt.Errorf("%w: array layout cannot be pattern", ErrFormat)
	}
	return h, nil
}

// scanner wraps bufio.Scanner with comment skipping and line counting.
type scanner struct {
	s    *bufio.Scanner
	line int
}

func newScanner(r io.Reader) *scanner {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &scanner{s: s}
}

// next returns the next non-comment, non-blank line.
func (sc *scanner) next() (string, error) {
	for sc.s.Scan() {
		sc.line++
		line := strings.TrimSpace(sc.s.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		return line, nil
	}
	if err := sc.s.Err(); err != nil {
		return "", err
	}
	return "", io.EOF
}

// ReadCOO parses a Matrix Market stream into a COO matrix. Symmetric and
// skew-symmetric inputs are expanded into full (general) storage. The result
// is sorted row-major.
func ReadCOO[T matrix.Float](r io.Reader) (*matrix.COO[T], error) {
	sc := newScanner(r)
	if !sc.s.Scan() {
		if err := sc.s.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: empty input", ErrFormat)
	}
	sc.line++
	hdr, err := parseHeader(sc.s.Text())
	if err != nil {
		return nil, err
	}

	sizeLine, err := sc.next()
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("%w: missing size line", ErrFormat)
		}
		return nil, err
	}

	if hdr.Layout == "array" {
		return readArray[T](sc, sizeLine)
	}
	return readCoordinate[T](sc, hdr, sizeLine)
}

func readCoordinate[T matrix.Float](sc *scanner, hdr Header, sizeLine string) (*matrix.COO[T], error) {
	fields := strings.Fields(sizeLine)
	if len(fields) != 3 {
		return nil, fmt.Errorf("%w: line %d: coordinate size line needs 3 fields, got %q",
			ErrFormat, sc.line, sizeLine)
	}
	rows, err1 := strconv.Atoi(fields[0])
	cols, err2 := strconv.Atoi(fields[1])
	nnz, err3 := strconv.Atoi(fields[2])
	if err1 != nil || err2 != nil || err3 != nil || rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("%w: line %d: bad size line %q", ErrFormat, sc.line, sizeLine)
	}
	if rows > math.MaxInt32 || cols > math.MaxInt32 {
		return nil, fmt.Errorf("%w: line %d: dimensions %dx%d exceed 32-bit index range",
			ErrFormat, sc.line, rows, cols)
	}

	symmetric := hdr.Symmetry != "general"
	capHint := nnz
	if symmetric {
		capHint = 2 * nnz
	}
	// The size line is untrusted input: cap the preallocation so a bogus
	// (or hostile) entry count cannot commit gigabytes before a single
	// data line is read. Append grows past the hint as needed.
	m := matrix.NewCOO[T](rows, cols, min(capHint, maxCapHint))

	for i := 0; i < nnz; i++ {
		line, err := sc.next()
		if err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("%w: expected %d entries, got %d", ErrFormat, nnz, i)
			}
			return nil, err
		}
		f := strings.Fields(line)
		wantFields := 3
		if hdr.Field == "pattern" {
			wantFields = 2
		}
		if len(f) < wantFields {
			return nil, fmt.Errorf("%w: line %d: entry needs %d fields, got %q",
				ErrFormat, sc.line, wantFields, line)
		}
		r, err1 := strconv.Atoi(f[0])
		c, err2 := strconv.Atoi(f[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%w: line %d: bad indices in %q", ErrFormat, sc.line, line)
		}
		// MatrixMarket is 1-based, so zero or negative indices are not
		// merely out of range — they indicate a 0-based or corrupt file,
		// worth a distinct message.
		if r < 1 || c < 1 {
			return nil, fmt.Errorf("%w: line %d: coordinate index (%d,%d) must be >= 1 (MatrixMarket is 1-based)",
				ErrFormat, sc.line, r, c)
		}
		r--
		c--
		if r >= rows || c >= cols {
			return nil, fmt.Errorf("%w: line %d: entry (%d,%d) outside %dx%d",
				ErrFormat, sc.line, r+1, c+1, rows, cols)
		}
		var v float64 = 1
		if hdr.Field != "pattern" {
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: bad value in %q", ErrFormat, sc.line, line)
			}
		}
		m.Append(int32(r), int32(c), T(v))
		if symmetric && r != c {
			off := v
			if hdr.Symmetry == "skew-symmetric" {
				off = -v
			}
			m.Append(int32(c), int32(r), T(off))
		}
	}
	// The declared entry count and the data must agree exactly: trailing
	// data lines mean the size line under-counted, and silently dropping
	// them would hand the kernels a different matrix than the file holds.
	if extra, err := sc.next(); err != io.EOF {
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: line %d: %d entries declared but more data follows (%q)",
			ErrFormat, sc.line, nnz, extra)
	}
	m.SortRowMajor()
	return m, nil
}

func readArray[T matrix.Float](sc *scanner, sizeLine string) (*matrix.COO[T], error) {
	fields := strings.Fields(sizeLine)
	if len(fields) != 2 {
		return nil, fmt.Errorf("%w: line %d: array size line needs 2 fields, got %q",
			ErrFormat, sc.line, sizeLine)
	}
	rows, err1 := strconv.Atoi(fields[0])
	cols, err2 := strconv.Atoi(fields[1])
	if err1 != nil || err2 != nil || rows < 0 || cols < 0 {
		return nil, fmt.Errorf("%w: line %d: bad size line %q", ErrFormat, sc.line, sizeLine)
	}
	if rows > math.MaxInt32 || cols > math.MaxInt32 {
		return nil, fmt.Errorf("%w: line %d: dimensions %dx%d exceed 32-bit index range",
			ErrFormat, sc.line, rows, cols)
	}
	// Cap the preallocation: rows*cols comes from an untrusted size line
	// and may overflow or demand gigabytes up front (see readCoordinate).
	capHint := rows * cols
	if cols != 0 && capHint/cols != rows {
		capHint = maxCapHint // multiplication overflowed
	}
	m := matrix.NewCOO[T](rows, cols, min(capHint, maxCapHint))
	// Array layout is column-major, all entries present.
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			line, err := sc.next()
			if err != nil {
				if err == io.EOF {
					return nil, fmt.Errorf("%w: array data ended early at (%d,%d)", ErrFormat, r+1, c+1)
				}
				return nil, err
			}
			v, err := strconv.ParseFloat(line, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: bad array value %q", ErrFormat, sc.line, line)
			}
			if v != 0 {
				m.Append(int32(r), int32(c), T(v))
			}
		}
	}
	if extra, err := sc.next(); err != io.EOF {
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: line %d: %dx%d array complete but more data follows (%q)",
			ErrFormat, sc.line, rows, cols, extra)
	}
	m.SortRowMajor()
	return m, nil
}

// WriteCOO writes m as a general real coordinate Matrix Market file.
func WriteCOO[T matrix.Float](w io.Writer, m *matrix.COO[T]) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for i := range m.Vals {
		if _, err := fmt.Fprintf(bw, "%d %d %.17g\n",
			m.RowIdx[i]+1, m.ColIdx[i]+1, float64(m.Vals[i])); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFile loads a Matrix Market file from disk.
func ReadFile[T matrix.Float](path string) (*matrix.COO[T], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := ReadCOO[T](f)
	if err != nil {
		return nil, fmt.Errorf("mmio: %s: %w", path, err)
	}
	return m, nil
}

// WriteFile stores m to disk as a Matrix Market file.
func WriteFile[T matrix.Float](path string, m *matrix.COO[T]) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCOO(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
