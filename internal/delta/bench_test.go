package delta

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
)

// benchOverlay builds an overlay holding frac × base-nnz random updates
// and inserts over base. frac == 0 returns a nil overlay — the clean-path
// case the perf gate pins at 0 allocs/op.
func benchOverlay(b *testing.B, base *matrix.COO[float64], frac float64) *Overlay {
	b.Helper()
	if frac == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(17))
	n := int(frac * float64(base.NNZ()))
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, Op{
			Row: int32(rng.Intn(base.Rows)),
			Col: int32(rng.Intn(base.Cols)),
			Val: rng.NormFloat64(),
		})
	}
	ov, err := (*Overlay)(nil).Extend(base, ops)
	if err != nil {
		b.Fatal(err)
	}
	return ov
}

// BenchmarkOverlayApply prices overlay application on top of a prepared
// CSR multiply: the empty row is the hot-path tax every clean multiply
// pays (must be 0 allocs/op), the 1% and 10% rows bound the dirty-matrix
// tax the compaction cost model trades against re-preparation.
func BenchmarkOverlayApply(b *testing.B) {
	const rows, cols, k = 2048, 2048, 32
	base := randomCOO(b, rows, cols, 0.01, 13)
	kern, err := core.New("csr-serial", core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	p := core.DefaultParams()
	p.Reps, p.K, p.Verify = 1, k, false
	if err := kern.Prepare(base, p); err != nil {
		b.Fatal(err)
	}
	bm := matrix.NewDenseRand[float64](cols, k, 3)
	c := matrix.NewDense[float64](rows, k)

	for _, tc := range []struct {
		name string
		frac float64
	}{
		{"empty", 0},
		{"overlay1pct", 0.01},
		{"overlay10pct", 0.10},
	} {
		ov := benchOverlay(b, base, tc.frac)
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := kern.Calculate(bm, c, p); err != nil {
					b.Fatal(err)
				}
				ov.Apply(c, bm, k)
			}
		})
	}
}

// BenchmarkCompaction prices the background path: merge the overlay into
// a fresh canonical base and re-prepare it — the one-time cost the model
// weighs against the per-multiply overlay tax.
func BenchmarkCompaction(b *testing.B) {
	const rows, cols = 2048, 2048
	base := randomCOO(b, rows, cols, 0.01, 19)
	ov := benchOverlay(b, base, 0.05)
	p := core.DefaultParams()
	p.Reps, p.K, p.Verify = 1, 32, false
	b.Run(fmt.Sprintf("nnz%d_overlay%d", base.NNZ(), ov.NNZ()), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			merged := ov.Merge()
			kern, err := core.New("csr-serial", core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if err := kern.Prepare(merged, p); err != nil {
				b.Fatal(err)
			}
		}
	})
}
