// Package delta implements mutation overlays for served sparse matrices.
//
// A served matrix is prepared once into its plan's format; re-preparing on
// every edit would put an O(prepare) cost on a O(row) change. Instead the
// registry keeps the prepared base immutable and accumulates edits in an
// Overlay: a sorted row-major delta-COO where each entry is either a value
// override (insert or update) or a tombstone (structural delete). At
// multiply time the base kernel runs unchanged and Apply recomputes only
// the dirty rows on top of its output.
//
// The merge order is bitwise-defined: a dirty row is recomputed by
// merge-scanning the base row and the overlay row in ascending column
// order, accumulating c[j] += v*b[j] per entry exactly as the serial CSR
// kernel does. Every servable kernel variant preserves that per-row,
// column-ascending serial accumulation (the repo's bitwise contract), so
// base-kernel-plus-Apply produces bit-identical output to running any
// servable variant on the fully merged matrix. Compaction — materializing
// the merged matrix and re-preparing it — therefore never changes a single
// result bit, only the cost of producing it.
//
// Tombstones are structural: a deleted coordinate's entry is skipped
// entirely rather than multiplied as 0.0 (accumulating +0.0 could flip a
// -0.0 partial sum and break bitwise identity with the merged matrix,
// which simply lacks the entry).
package delta

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/matrix"
)

// Op is one mutation: set (insert-or-update) the value at (Row, Col), or
// delete the coordinate when Del is true. Ops within a batch apply in
// order, so a later op on the same coordinate wins.
type Op struct {
	Row, Col int32
	Val      float64
	Del      bool
}

// Overlay is an immutable delta-COO snapshot over an immutable base.
// Entries are unique coordinates in row-major order; Del marks tombstones.
// Extend returns a new Overlay sharing the base and its row pointer, so a
// snapshot captured by an in-flight multiply stays valid forever.
type Overlay struct {
	base *matrix.COO[float64]
	// rowPtr is a CSR-style row pointer into the (canonical, row-major
	// sorted) base, shared across every Overlay derived from it.
	rowPtr []int32

	RowIdx []int32
	ColIdx []int32
	Vals   []float64
	Del    []bool

	live int // entries that are not tombstones
}

// NewOverlay returns an empty overlay over base. The base must be
// canonical (row-major sorted, unique coordinates), which is what the
// serving registry guarantees for every registered matrix.
func NewOverlay(base *matrix.COO[float64]) *Overlay {
	return &Overlay{base: base, rowPtr: rowPtrOf(base)}
}

// rowPtrOf builds the CSR row pointer of a canonical COO.
func rowPtrOf(base *matrix.COO[float64]) []int32 {
	ptr := make([]int32, base.Rows+1)
	for _, r := range base.RowIdx {
		ptr[r+1]++
	}
	for i := 0; i < base.Rows; i++ {
		ptr[i+1] += ptr[i]
	}
	return ptr
}

// Base returns the immutable base matrix this overlay applies over.
func (o *Overlay) Base() *matrix.COO[float64] { return o.base }

// NNZ reports the number of overlay entries, tombstones included — the
// quantity that prices overlay application.
func (o *Overlay) NNZ() int {
	if o == nil {
		return 0
	}
	return len(o.RowIdx)
}

// Live reports the number of non-tombstone overlay entries.
func (o *Overlay) Live() int {
	if o == nil {
		return 0
	}
	return o.live
}

// Bytes estimates the overlay's heap footprint (entries only; the row
// pointer is shared with every overlay over the same base).
func (o *Overlay) Bytes() int {
	if o == nil {
		return 0
	}
	return len(o.RowIdx)*(4+4+1) + len(o.Vals)*8
}

// MergedNNZ reports the nonzero count of the merged matrix without
// materializing it: base entries minus masked ones, plus live inserts.
func (o *Overlay) MergedNNZ() int {
	if o == nil {
		return 0
	}
	nnz := o.base.NNZ()
	for i := range o.RowIdx {
		if o.inBase(o.RowIdx[i], o.ColIdx[i]) {
			if o.Del[i] {
				nnz-- // tombstone removes a base entry; an override keeps it
			}
		} else if !o.Del[i] {
			nnz++ // live insert at a coordinate the base lacks
		}
	}
	return nnz
}

// inBase reports whether coordinate (r, c) exists in the base.
func (o *Overlay) inBase(r, c int32) bool {
	lo, hi := int(o.rowPtr[r]), int(o.rowPtr[r+1])
	cols := o.base.ColIdx[lo:hi]
	i := sort.Search(len(cols), func(i int) bool { return cols[i] >= c })
	return i < len(cols) && cols[i] == c
}

// Extend returns a new overlay with ops applied on top of o, sharing o's
// base. A nil receiver is an empty overlay over base (pass the base so the
// first mutation can build the row pointer). Ops are validated against the
// base's dimensions; on error the receiver is unchanged and no overlay is
// returned. Deletes of coordinates absent from both the base and the live
// overlay are dropped (they mask nothing and would only tax Apply).
func (o *Overlay) Extend(base *matrix.COO[float64], ops []Op) (*Overlay, error) {
	if o == nil {
		o = NewOverlay(base)
	}
	rows, cols := int32(o.base.Rows), int32(o.base.Cols)
	for i, op := range ops {
		if op.Row < 0 || op.Row >= rows || op.Col < 0 || op.Col >= cols {
			return nil, fmt.Errorf("delta: op %d: coordinate (%d,%d) outside %dx%d",
				i, op.Row, op.Col, rows, cols)
		}
		if !op.Del && (math.IsNaN(op.Val) || math.IsInf(op.Val, 0)) {
			return nil, fmt.Errorf("delta: op %d: non-finite value at (%d,%d)", i, op.Row, op.Col)
		}
	}

	// Canonicalize the batch: stable row-major sort, then keep the last op
	// per coordinate (batch order defines precedence for duplicates).
	batch := make([]Op, len(ops))
	copy(batch, ops)
	sort.SliceStable(batch, func(i, j int) bool {
		if batch[i].Row != batch[j].Row {
			return batch[i].Row < batch[j].Row
		}
		return batch[i].Col < batch[j].Col
	})
	w := 0
	for i := 0; i < len(batch); {
		j := i + 1
		for j < len(batch) && batch[j].Row == batch[i].Row && batch[j].Col == batch[i].Col {
			j++
		}
		batch[w] = batch[j-1]
		w++
		i = j
	}
	batch = batch[:w]

	// Merge-scan existing entries with the batch; batch wins on equal
	// coordinates. Copy-on-write: o's slices are never touched.
	n := &Overlay{
		base:   o.base,
		rowPtr: o.rowPtr,
		RowIdx: make([]int32, 0, len(o.RowIdx)+len(batch)),
		ColIdx: make([]int32, 0, len(o.ColIdx)+len(batch)),
		Vals:   make([]float64, 0, len(o.Vals)+len(batch)),
		Del:    make([]bool, 0, len(o.Del)+len(batch)),
	}
	push := func(r, c int32, v float64, del bool) {
		if del && !o.inBase(r, c) {
			return // masks nothing: structural no-op
		}
		n.RowIdx = append(n.RowIdx, r)
		n.ColIdx = append(n.ColIdx, c)
		n.Vals = append(n.Vals, v)
		n.Del = append(n.Del, del)
		if !del {
			n.live++
		}
	}
	ei, bi := 0, 0
	for ei < len(o.RowIdx) || bi < len(batch) {
		switch {
		case bi == len(batch):
			push(o.RowIdx[ei], o.ColIdx[ei], o.Vals[ei], o.Del[ei])
			ei++
		case ei == len(o.RowIdx):
			push(batch[bi].Row, batch[bi].Col, batch[bi].Val, batch[bi].Del)
			bi++
		default:
			er, ec := o.RowIdx[ei], o.ColIdx[ei]
			br, bc := batch[bi].Row, batch[bi].Col
			switch {
			case er < br || (er == br && ec < bc):
				push(er, ec, o.Vals[ei], o.Del[ei])
				ei++
			case br < er || (br == er && bc < ec):
				push(br, bc, batch[bi].Val, batch[bi].Del)
				bi++
			default: // same coordinate: the new batch wins
				push(br, bc, batch[bi].Val, batch[bi].Del)
				ei++
				bi++
			}
		}
	}
	return n, nil
}

// Apply recomputes the overlay's dirty rows of c on top of the base
// kernel's output, using the first k columns of b and c. A nil or empty
// overlay is a no-op that allocates nothing — the clean-matrix hot path.
//
// Each dirty row is cleared and re-accumulated from the merge-scan of base
// and overlay entries in ascending column order, replicating the serial
// kernels' clear-then-axpy accumulation bit for bit.
func (o *Overlay) Apply(c, b *matrix.Dense[float64], k int) {
	if o == nil || len(o.RowIdx) == 0 {
		return
	}
	for i := 0; i < len(o.RowIdx); {
		r := o.RowIdx[i]
		j := i + 1
		for j < len(o.RowIdx) && o.RowIdx[j] == r {
			j++
		}
		o.applyRow(int(r), i, j, c, b, k)
		i = j
	}
}

// applyRow recomputes row r of c from the base row merged with overlay
// entries [lo, hi).
func (o *Overlay) applyRow(r, lo, hi int, c, b *matrix.Dense[float64], k int) {
	crow := c.Data[r*c.Stride : r*c.Stride+k]
	clear(crow)
	bs, be := int(o.rowPtr[r]), int(o.rowPtr[r+1])
	ov := lo
	for bs < be || ov < hi {
		var col int32
		var val float64
		switch {
		case ov == hi:
			col, val = o.base.ColIdx[bs], o.base.Vals[bs]
			bs++
		case bs == be:
			if o.Del[ov] {
				ov++
				continue
			}
			col, val = o.ColIdx[ov], o.Vals[ov]
			ov++
		default:
			bc, oc := o.base.ColIdx[bs], o.ColIdx[ov]
			switch {
			case bc < oc:
				col, val = bc, o.base.Vals[bs]
				bs++
			case oc < bc:
				if o.Del[ov] {
					ov++
					continue
				}
				col, val = oc, o.Vals[ov]
				ov++
			default: // overlay overrides (or deletes) the base entry
				bs++
				if o.Del[ov] {
					ov++
					continue
				}
				col, val = oc, o.Vals[ov]
				ov++
			}
		}
		axpyRow(crow, b.Data[int(col)*b.Stride:int(col)*b.Stride+k], val, k)
	}
}

// axpyRow computes c[j] += v * b[j] for j in [0, k) with the same
// full-slice re-expression as the kernels package's axpy, so the compiled
// inner loop — and therefore every floating-point operation — is
// identical to the one the serial kernels run.
func axpyRow(c, b []float64, v float64, k int) {
	c = c[:k:k]
	b = b[:k:k]
	for j := range c {
		c[j] += v * b[j]
	}
}

// Merge materializes the merged matrix: base entries overridden or masked
// by the overlay, plus live inserts, in canonical row-major order. The
// result shares nothing with the base, so it can become a new immutable
// base. A nil overlay clones nothing and returns nil.
func (o *Overlay) Merge() *matrix.COO[float64] {
	if o == nil {
		return nil
	}
	m := matrix.NewCOO[float64](o.base.Rows, o.base.Cols, o.MergedNNZ())
	bs, ov := 0, 0
	bn, on := o.base.NNZ(), len(o.RowIdx)
	push := func(r, c int32, v float64) {
		m.RowIdx = append(m.RowIdx, r)
		m.ColIdx = append(m.ColIdx, c)
		m.Vals = append(m.Vals, v)
	}
	for bs < bn || ov < on {
		switch {
		case ov == on:
			push(o.base.RowIdx[bs], o.base.ColIdx[bs], o.base.Vals[bs])
			bs++
		case bs == bn:
			if !o.Del[ov] {
				push(o.RowIdx[ov], o.ColIdx[ov], o.Vals[ov])
			}
			ov++
		default:
			br, bc := o.base.RowIdx[bs], o.base.ColIdx[bs]
			or, oc := o.RowIdx[ov], o.ColIdx[ov]
			switch {
			case br < or || (br == or && bc < oc):
				push(br, bc, o.base.Vals[bs])
				bs++
			case or < br || (or == br && oc < bc):
				if !o.Del[ov] {
					push(or, oc, o.Vals[ov])
				}
				ov++
			default:
				if !o.Del[ov] {
					push(or, oc, o.Vals[ov])
				}
				bs++
				ov++
			}
		}
	}
	return m
}

// Rebase re-expresses the overlay over a new base — the freshly merged
// matrix a compaction installs. Entries already represented in the new
// base (same value at the same coordinate, or a tombstone of an absent
// coordinate) are dropped; what remains are exactly the mutations that
// landed after the compaction's merge snapshot. Rebasing an overlay onto
// its own Merge() therefore yields nil: the matrix is clean.
func (o *Overlay) Rebase(base *matrix.COO[float64]) *Overlay {
	if o == nil {
		return nil
	}
	n := NewOverlay(base)
	for i := range o.RowIdx {
		r, c := o.RowIdx[i], o.ColIdx[i]
		lo, hi := int(n.rowPtr[r]), int(n.rowPtr[r+1])
		cols := base.ColIdx[lo:hi]
		p := sort.Search(len(cols), func(j int) bool { return cols[j] >= c })
		present := p < len(cols) && cols[p] == c
		if o.Del[i] {
			if !present {
				continue // already absent from the new base
			}
		} else if present && sameBits(base.Vals[lo+p], o.Vals[i]) {
			continue // already merged into the new base
		}
		n.RowIdx = append(n.RowIdx, r)
		n.ColIdx = append(n.ColIdx, c)
		n.Vals = append(n.Vals, o.Vals[i])
		n.Del = append(n.Del, o.Del[i])
		if !o.Del[i] {
			n.live++
		}
	}
	if len(n.RowIdx) == 0 {
		return nil
	}
	return n
}

func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// Ops returns the overlay's entries as a mutation batch — the wire and
// journal form of a pending overlay. Applying the result to an empty
// overlay over the same base reproduces o exactly.
func (o *Overlay) Ops() []Op {
	if o == nil {
		return nil
	}
	ops := make([]Op, len(o.RowIdx))
	for i := range ops {
		ops[i] = Op{Row: o.RowIdx[i], Col: o.ColIdx[i], Val: o.Vals[i], Del: o.Del[i]}
	}
	return ops
}

// CostModel decides when an overlay has outgrown incremental application.
// Every multiply against a dirty matrix pays a measured overlay-apply tax;
// compaction pays a one-time re-preparation. Compact when the cumulative
// tax crosses BreakEven times the measured prepare cost, or when the
// overlay's entry count reaches MaxRatio of the base nnz (past that the
// per-multiply tax itself is no longer small, whatever the clock says).
type CostModel struct {
	// BreakEven multiplies the measured prepare seconds: cumulative
	// overlay-apply seconds beyond it trigger compaction. <= 0 disables
	// the time trigger.
	BreakEven float64
	// MaxRatio caps overlay nnz / base nnz. <= 0 disables the ratio
	// trigger.
	MaxRatio float64
}

// ShouldCompact reports whether the overlay's measured cost crosses the
// model's threshold.
func (cm CostModel) ShouldCompact(overlayNNZ, baseNNZ int, applySeconds, prepareSeconds float64) bool {
	if overlayNNZ == 0 {
		return false
	}
	if cm.MaxRatio > 0 && baseNNZ > 0 &&
		float64(overlayNNZ) >= cm.MaxRatio*float64(baseNNZ) {
		return true
	}
	if cm.BreakEven > 0 && prepareSeconds > 0 &&
		applySeconds >= cm.BreakEven*prepareSeconds {
		return true
	}
	return false
}
