package delta

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
)

// testFormats are the four first-class serving formats the overlay must be
// bitwise-transparent over.
var testFormats = []string{"coo", "csr", "ell", "bcsr"}

// randomCOO builds a canonical sparse matrix with the given density.
func randomCOO(t testing.TB, rows, cols int, density float64, seed int64) *matrix.COO[float64] {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewCOO[float64](rows, cols, int(float64(rows*cols)*density)+1)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < density {
				m.RowIdx = append(m.RowIdx, int32(r))
				m.ColIdx = append(m.ColIdx, int32(c))
				m.Vals = append(m.Vals, rng.NormFloat64())
			}
		}
	}
	return m
}

// serialResult multiplies coo × b with the named serial kernel.
func serialResult(t testing.TB, format string, coo *matrix.COO[float64], b *matrix.Dense[float64], k int) *matrix.Dense[float64] {
	t.Helper()
	kern, err := core.New(format+"-serial", core.Options{})
	if err != nil {
		t.Fatalf("core.New(%s-serial): %v", format, err)
	}
	p := core.DefaultParams()
	p.Reps, p.K, p.Verify = 1, k, false
	if err := kern.Prepare(coo, p); err != nil {
		t.Fatalf("prepare %s: %v", format, err)
	}
	c := matrix.NewDense[float64](coo.Rows, k)
	if err := kern.Calculate(b, c, p); err != nil {
		t.Fatalf("calculate %s: %v", format, err)
	}
	return c
}

func bitsEqual(a, b *matrix.Dense[float64]) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for r := 0; r < a.Rows; r++ {
		for c := 0; c < a.Cols; c++ {
			av := a.Data[r*a.Stride+c]
			bv := b.Data[r*b.Stride+c]
			if math.Float64bits(av) != math.Float64bits(bv) {
				return false
			}
		}
	}
	return true
}

// applyOpsDense maintains the dense ground truth for a mutation sequence.
func applyOpsDense(d *matrix.Dense[float64], ops []Op) {
	for _, op := range ops {
		if op.Del {
			d.Data[int(op.Row)*d.Stride+int(op.Col)] = 0
		} else {
			d.Data[int(op.Row)*d.Stride+int(op.Col)] = op.Val
		}
	}
}

// checkOverlay asserts the package's two invariants for a base + overlay
// pair: (1) base-kernel output + Apply is bit-identical to the merged
// matrix through every serving format's serial kernel, and (2) the merged
// matrix matches the dense ground truth exactly.
func checkOverlay(t *testing.T, base *matrix.COO[float64], ov *Overlay, truth *matrix.Dense[float64], k int) {
	t.Helper()
	merged := ov.Merge()
	if merged == nil {
		merged = base
	}
	if truth != nil {
		got := merged.ToDense()
		if diff, _ := got.MaxAbsDiff(truth); diff != 0 {
			t.Fatalf("merged matrix differs from dense ground truth by %g", diff)
		}
	}
	b := matrix.NewDenseRand[float64](base.Cols, k, 42)
	for _, format := range testFormats {
		want := serialResult(t, format, merged, b, k)
		got := serialResult(t, format, base, b, k)
		ov.Apply(got, b, k)
		if !bitsEqual(got, want) {
			t.Fatalf("format %s: base+overlay result is not bit-identical to the merged matrix", format)
		}
	}
}

func TestOverlayInsertUpdateDelete(t *testing.T) {
	base := randomCOO(t, 24, 16, 0.2, 1)
	truth := base.ToDense()
	var ov *Overlay

	batches := [][]Op{
		// Insert into empty coordinates, update an existing one.
		{{Row: 0, Col: 0, Val: 3.5}, {Row: base.RowIdx[0], Col: base.ColIdx[0], Val: -2.25}},
		// Delete an existing entry and an absent one (no-op).
		{{Row: base.RowIdx[1], Col: base.ColIdx[1], Del: true}, {Row: 23, Col: 15, Del: true}},
		// Duplicate coordinates within one batch: last op wins.
		{{Row: 5, Col: 5, Val: 1}, {Row: 5, Col: 5, Val: 2}, {Row: 5, Col: 5, Del: true}, {Row: 5, Col: 5, Val: 7}},
	}
	for _, ops := range batches {
		next, err := ov.Extend(base, ops)
		if err != nil {
			t.Fatal(err)
		}
		ov = next
		applyOpsDense(truth, ops)
		checkOverlay(t, base, ov, truth, 8)
	}
	if got := truth.Data[5*truth.Stride+5]; got != 7 {
		t.Fatalf("duplicate-coordinate batch: final value %g, want 7 (last op wins)", got)
	}
}

func TestOverlayDeleteToEmptyRow(t *testing.T) {
	base := randomCOO(t, 16, 12, 0.3, 2)
	truth := base.ToDense()
	// Tombstone every entry of row 3: the merged matrix must have an empty
	// row and the recomputed row must be exactly zero.
	var ops []Op
	for i := range base.RowIdx {
		if base.RowIdx[i] == 3 {
			ops = append(ops, Op{Row: 3, Col: base.ColIdx[i], Del: true})
		}
	}
	if len(ops) == 0 {
		t.Skip("row 3 empty in generated matrix")
	}
	ov, err := (*Overlay)(nil).Extend(base, ops)
	if err != nil {
		t.Fatal(err)
	}
	applyOpsDense(truth, ops)
	checkOverlay(t, base, ov, truth, 4)
	merged := ov.Merge()
	for i := range merged.RowIdx {
		if merged.RowIdx[i] == 3 {
			t.Fatalf("row 3 still has entries after delete-to-empty")
		}
	}
}

func TestOverlayExtendValidation(t *testing.T) {
	base := randomCOO(t, 8, 8, 0.2, 3)
	for _, ops := range [][]Op{
		{{Row: 8, Col: 0, Val: 1}},
		{{Row: 0, Col: -1, Val: 1}},
		{{Row: 0, Col: 0, Val: math.NaN()}},
		{{Row: 0, Col: 0, Val: math.Inf(1)}},
	} {
		if _, err := (*Overlay)(nil).Extend(base, ops); err == nil {
			t.Fatalf("Extend(%+v) accepted an invalid op", ops)
		}
	}
}

func TestOverlayNoopTombstoneDropped(t *testing.T) {
	base := randomCOO(t, 8, 8, 0.2, 4)
	ov, err := (*Overlay)(nil).Extend(base, []Op{{Row: 0, Col: 0, Del: true}})
	if err != nil {
		t.Fatal(err)
	}
	// (0,0) may or may not exist in the random base; either way a second
	// delete of a definitely-absent coordinate must not grow the overlay.
	n1 := ov.NNZ()
	ov2, err := ov.Extend(base, []Op{{Row: 7, Col: 7, Del: true}})
	if err != nil {
		t.Fatal(err)
	}
	has77 := false
	for i := range base.RowIdx {
		if base.RowIdx[i] == 7 && base.ColIdx[i] == 7 {
			has77 = true
		}
	}
	if !has77 && ov2.NNZ() != n1 {
		t.Fatalf("no-op tombstone retained: nnz %d -> %d", n1, ov2.NNZ())
	}
}

func TestOverlayRebase(t *testing.T) {
	base := randomCOO(t, 20, 20, 0.15, 5)
	ov, err := (*Overlay)(nil).Extend(base, []Op{
		{Row: 1, Col: 1, Val: 4},
		{Row: 2, Col: 2, Del: true},
		{Row: 3, Col: 3, Val: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	merged := ov.Merge()
	// Rebasing an overlay onto its own merge yields a clean matrix.
	if re := ov.Rebase(merged); re != nil {
		t.Fatalf("rebase onto own merge left %d entries", re.NNZ())
	}
	// Mutations landing after the merge snapshot survive a rebase.
	ov2, err := ov.Extend(base, []Op{{Row: 4, Col: 4, Val: 9}})
	if err != nil {
		t.Fatal(err)
	}
	re := ov2.Rebase(merged)
	if re == nil || re.NNZ() != 1 || re.Vals[0] != 9 {
		t.Fatalf("rebase lost the post-snapshot mutation: %+v", re)
	}
	// The rebased overlay over the merged base is bitwise-equivalent to
	// the full overlay over the original base.
	k := 6
	b := matrix.NewDenseRand[float64](base.Cols, k, 7)
	want := serialResult(t, "csr", base, b, k)
	ov2.Apply(want, b, k)
	got := serialResult(t, "csr", merged, b, k)
	re.Apply(got, b, k)
	if !bitsEqual(got, want) {
		t.Fatal("rebased overlay over merged base differs from full overlay over original base")
	}
}

func TestOverlayMergedNNZ(t *testing.T) {
	base := randomCOO(t, 16, 16, 0.2, 6)
	ov, err := (*Overlay)(nil).Extend(base, []Op{
		{Row: 0, Col: 0, Val: 1},                              // insert or update
		{Row: base.RowIdx[0], Col: base.ColIdx[0], Del: true}, // delete existing
		{Row: base.RowIdx[2], Col: base.ColIdx[2], Val: 2.5},  // update existing
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ov.MergedNNZ(), ov.Merge().NNZ(); got != want {
		t.Fatalf("MergedNNZ %d, Merge().NNZ() %d", got, want)
	}
}

func TestOverlayApplyEmptyIsNoop(t *testing.T) {
	base := randomCOO(t, 8, 8, 0.3, 8)
	b := matrix.NewDenseRand[float64](8, 4, 1)
	c := serialResult(t, "csr", base, b, 4)
	want := matrix.NewDense[float64](8, 4)
	copy(want.Data, c.Data)
	var ov *Overlay
	ov.Apply(c, b, 4) // nil overlay
	NewOverlay(base).Apply(c, b, 4)
	if !bitsEqual(c, want) {
		t.Fatal("empty overlay Apply changed the result")
	}
	allocs := testing.AllocsPerRun(100, func() {
		ov.Apply(c, b, 4)
		NewOverlay(base).Apply(c, b, 4)
	})
	// NewOverlay allocates (it builds a row pointer); the Apply calls must
	// not add to that. Measure the nil path alone for the 0-alloc pin.
	_ = allocs
	if got := testing.AllocsPerRun(100, func() { ov.Apply(c, b, 4) }); got != 0 {
		t.Fatalf("nil-overlay Apply allocates %v/op, want 0", got)
	}
}

func TestCostModel(t *testing.T) {
	cm := CostModel{BreakEven: 2, MaxRatio: 0.5}
	if cm.ShouldCompact(0, 1000, 100, 1) {
		t.Fatal("empty overlay should never compact")
	}
	if !cm.ShouldCompact(500, 1000, 0, 1) {
		t.Fatal("ratio trigger did not fire at MaxRatio")
	}
	if !cm.ShouldCompact(1, 1000, 2.5, 1) {
		t.Fatal("time trigger did not fire past break-even")
	}
	if cm.ShouldCompact(1, 1000, 1.5, 1) {
		t.Fatal("time trigger fired below break-even")
	}
	if (CostModel{}).ShouldCompact(999, 1000, 1e9, 1e-9) {
		t.Fatal("zero-valued model must disable both triggers")
	}
}

func TestOverlayOpsRoundTrip(t *testing.T) {
	base := randomCOO(t, 12, 12, 0.25, 9)
	ov, err := (*Overlay)(nil).Extend(base, []Op{
		{Row: 0, Col: 1, Val: 2},
		{Row: base.RowIdx[1], Col: base.ColIdx[1], Del: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := (*Overlay)(nil).Extend(base, ov.Ops())
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != ov.NNZ() || back.Live() != ov.Live() {
		t.Fatalf("ops round trip: %d/%d entries, want %d/%d",
			back.NNZ(), back.Live(), ov.NNZ(), ov.Live())
	}
	for i := range ov.RowIdx {
		if back.RowIdx[i] != ov.RowIdx[i] || back.ColIdx[i] != ov.ColIdx[i] ||
			math.Float64bits(back.Vals[i]) != math.Float64bits(ov.Vals[i]) || back.Del[i] != ov.Del[i] {
			t.Fatalf("ops round trip entry %d differs", i)
		}
	}
}
