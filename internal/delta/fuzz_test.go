package delta

import (
	"testing"

	"repro/internal/matrix"
)

// FuzzMutateOverlay drives random mutation batches over a random base and
// checks, after every batch, that base-kernel output + overlay application
// is bit-identical to serving the merged matrix through all four formats,
// and that the merged matrix matches a dense ground truth exactly.
//
// The fuzz input is a byte stream decoded into ops: two coordinate bytes,
// one value byte, and an action bit. Values are mapped onto a small set of
// finite, mostly-nonzero floats — NaN/Inf are rejected by Extend (covered
// in the unit tests) and would void the cross-format bitwise contract the
// fuzz asserts.
func FuzzMutateOverlay(f *testing.F) {
	// Delete-to-empty-row: tombstone every column of row 1, leaving the
	// merged matrix with a structurally empty row.
	emptyRow := make([]byte, 0, 30)
	for c := byte(0); c < 10; c++ {
		emptyRow = append(emptyRow, 0x01, c, 0x00)
	}
	f.Add(emptyRow)
	// Duplicate coordinates in one batch: set, re-set, delete, set again.
	f.Add([]byte{0x05, 0x05, 0x12, 0x05, 0x05, 0x34, 0x05, 0x05, 0x01, 0x05, 0x05, 0x56})
	// Mixed inserts and updates across two batches (0xFF splits batches).
	f.Add([]byte{0x10, 0x20, 0x30, 0xFF, 0x40, 0x50, 0x60, 0x07, 0x08, 0x09})

	const rows, cols, k = 12, 10, 4
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			t.Skip("bound the per-input work")
		}
		base := randomCOO(t, rows, cols, 0.25, 11)
		truth := base.ToDense()
		var ov *Overlay

		var batch []Op
		flush := func() {
			if len(batch) == 0 {
				return
			}
			next, err := ov.Extend(base, batch)
			if err != nil {
				t.Fatalf("Extend rejected in-range finite ops: %v", err)
			}
			ov = next
			applyOpsDense(truth, batch)
			batch = batch[:0]
		}
		for i := 0; i+2 < len(data); i += 3 {
			if data[i] == 0xFF {
				flush()
				i -= 2 // consume one byte as the batch separator
				continue
			}
			op := Op{
				Row: int32(data[i] % rows),
				Col: int32(data[i+1] % cols),
			}
			v := data[i+2]
			if v&1 == 1 && v > 1 {
				op.Val = float64(int(v>>1)-32) / 8 // finite, can be zero or negative
			} else if v == 0 {
				op.Del = true
			} else {
				op.Val = float64(v)
			}
			batch = append(batch, op)
		}
		flush()
		if ov == nil {
			t.Skip("no ops decoded")
		}

		merged := ov.Merge()
		got := merged.ToDense()
		if diff, _ := got.MaxAbsDiff(truth); diff != 0 {
			t.Fatalf("merged matrix differs from dense ground truth by %g", diff)
		}
		b := matrix.NewDenseRand[float64](cols, k, 21)
		for _, format := range testFormats {
			want := serialResult(t, format, merged, b, k)
			res := serialResult(t, format, base, b, k)
			ov.Apply(res, b, k)
			if !bitsEqual(res, want) {
				t.Fatalf("format %s: overlay result not bit-identical to merged matrix", format)
			}
		}
	})
}
