// Package metrics computes the matrix property metrics of the thesis
// (§4.3, Table 5.1), the FLOPS-based performance figures every study
// reports, and plain-text/CSV reporting helpers.
package metrics

import (
	"math"
	"sort"

	"repro/internal/matrix"
)

// Properties are the per-matrix metrics of Table 5.1. All the row metrics
// describe the distribution of nonzeros per row: the thesis uses them to
// predict blocked-format behaviour (high Ratio ⇒ ELLPACK degrades).
type Properties struct {
	Rows, Cols int
	NNZ        int
	// MaxRow is the largest number of nonzeros in any row ("Max").
	MaxRow int
	// AvgRow is the mean number of nonzeros per row ("Avg").
	AvgRow float64
	// Ratio is MaxRow/AvgRow — the "column ratio", the thesis' most
	// predictive metric.
	Ratio float64
	// Variance and StdDev describe the spread of nonzeros per row.
	Variance float64
	StdDev   float64
	// Gini is the Gini coefficient of the nonzeros-per-row distribution:
	// 0 when every row holds the same count, approaching 1 when a few hub
	// rows own nearly all nonzeros. It is the scheduling-imbalance metric —
	// a high Gini means row-static chunking hands some worker far more work
	// than the rest, and nonzero-balanced scheduling pays off.
	Gini float64
}

// Compute derives the Table 5.1 properties of a COO matrix.
func Compute[T matrix.Float](m *matrix.COO[T]) Properties {
	p := Properties{Rows: m.Rows, Cols: m.Cols, NNZ: m.NNZ()}
	if m.Rows == 0 {
		return p
	}
	counts := m.RowCounts()
	sum := 0
	for _, c := range counts {
		sum += c
		if c > p.MaxRow {
			p.MaxRow = c
		}
	}
	p.AvgRow = float64(sum) / float64(m.Rows)
	if p.AvgRow > 0 {
		p.Ratio = float64(p.MaxRow) / p.AvgRow
	}
	var ss float64
	for _, c := range counts {
		d := float64(c) - p.AvgRow
		ss += d * d
	}
	p.Variance = ss / float64(m.Rows)
	p.StdDev = math.Sqrt(p.Variance)
	p.Gini = gini(counts)
	return p
}

// gini computes the Gini coefficient of a count distribution via the
// sorted-rank formula G = (2·Σᵢ i·xᵢ)/(n·Σᵢ xᵢ) − (n+1)/n, i 1-based over
// ascending xᵢ. Returns 0 for empty or all-zero input.
func gini(counts []int) float64 {
	n := len(counts)
	if n == 0 {
		return 0
	}
	sorted := make([]int, n)
	copy(sorted, counts)
	sort.Ints(sorted)
	var total, weighted float64
	for i, c := range sorted {
		total += float64(c)
		weighted += float64(i+1) * float64(c)
	}
	if total == 0 {
		return 0
	}
	return 2*weighted/(float64(n)*total) - float64(n+1)/float64(n)
}

// ELLWidth reports the ELLPACK row width the matrix would format to
// (== MaxRow) and the padding overhead factor Stored/NNZ it implies.
func (p Properties) ELLOverhead() float64 {
	if p.NNZ == 0 {
		return 1
	}
	return float64(p.MaxRow*p.Rows) / float64(p.NNZ)
}

// MFLOPS converts an operation count and wall time in seconds to
// mega-FLOPS, the unit of every figure in the evaluation ("all runtime
// results are reported in MFLOPs", §5.1).
func MFLOPS(flops float64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return flops / seconds / 1e6
}

// GFLOPS converts an operation count and wall time to giga-FLOPS.
func GFLOPS(flops float64, seconds float64) float64 {
	return MFLOPS(flops, seconds) / 1e3
}
