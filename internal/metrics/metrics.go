// Package metrics computes the matrix property metrics of the thesis
// (§4.3, Table 5.1), the FLOPS-based performance figures every study
// reports, and plain-text/CSV reporting helpers.
package metrics

import (
	"math"

	"repro/internal/matrix"
)

// Properties are the per-matrix metrics of Table 5.1. All the row metrics
// describe the distribution of nonzeros per row: the thesis uses them to
// predict blocked-format behaviour (high Ratio ⇒ ELLPACK degrades).
type Properties struct {
	Rows, Cols int
	NNZ        int
	// MaxRow is the largest number of nonzeros in any row ("Max").
	MaxRow int
	// AvgRow is the mean number of nonzeros per row ("Avg").
	AvgRow float64
	// Ratio is MaxRow/AvgRow — the "column ratio", the thesis' most
	// predictive metric.
	Ratio float64
	// Variance and StdDev describe the spread of nonzeros per row.
	Variance float64
	StdDev   float64
}

// Compute derives the Table 5.1 properties of a COO matrix.
func Compute[T matrix.Float](m *matrix.COO[T]) Properties {
	p := Properties{Rows: m.Rows, Cols: m.Cols, NNZ: m.NNZ()}
	if m.Rows == 0 {
		return p
	}
	counts := m.RowCounts()
	sum := 0
	for _, c := range counts {
		sum += c
		if c > p.MaxRow {
			p.MaxRow = c
		}
	}
	p.AvgRow = float64(sum) / float64(m.Rows)
	if p.AvgRow > 0 {
		p.Ratio = float64(p.MaxRow) / p.AvgRow
	}
	var ss float64
	for _, c := range counts {
		d := float64(c) - p.AvgRow
		ss += d * d
	}
	p.Variance = ss / float64(m.Rows)
	p.StdDev = math.Sqrt(p.Variance)
	return p
}

// ELLWidth reports the ELLPACK row width the matrix would format to
// (== MaxRow) and the padding overhead factor Stored/NNZ it implies.
func (p Properties) ELLOverhead() float64 {
	if p.NNZ == 0 {
		return 1
	}
	return float64(p.MaxRow*p.Rows) / float64(p.NNZ)
}

// MFLOPS converts an operation count and wall time in seconds to
// mega-FLOPS, the unit of every figure in the evaluation ("all runtime
// results are reported in MFLOPs", §5.1).
func MFLOPS(flops float64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return flops / seconds / 1e6
}

// GFLOPS converts an operation count and wall time to giga-FLOPS.
func GFLOPS(flops float64, seconds float64) float64 {
	return MFLOPS(flops, seconds) / 1e3
}
