package metrics

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// PhaseMix folds a trace's span aggregates into the metrics layer: the
// share of attributed time per pipeline phase plus the worker idle
// fraction. It is the "phase mix" the perf gate diffs — a run whose ns/op
// held steady but whose prepare share doubled (or whose workers went idle)
// regressed in a way end-to-end timing alone cannot show.
type PhaseMix struct {
	// Shares maps phase name to its fraction of the total attributed span
	// time, in [0, 1]. Simulated phases are excluded: their nanoseconds are
	// modelled, not spent.
	Shares map[string]float64
	// WorkerIdleFraction is 1 − busy/capacity over the worker lanes that
	// recorded chunk spans (0 when the trace has no parallel work).
	WorkerIdleFraction float64
}

// PhaseMixFrom derives the phase mix from a trace summary.
func PhaseMixFrom(s trace.Summary) PhaseMix {
	mix := PhaseMix{Shares: map[string]float64{}, WorkerIdleFraction: s.WorkerIdleFraction}
	var total int64
	for _, p := range s.Phases {
		if !p.Sim {
			total += p.TotalNs
		}
	}
	if total == 0 {
		return mix
	}
	for _, p := range s.Phases {
		if !p.Sim {
			mix.Shares[p.Name] = float64(p.TotalNs) / float64(total)
		}
	}
	return mix
}

// Table renders the mix with phases sorted by descending share.
func (m PhaseMix) Table() *Table {
	names := make([]string, 0, len(m.Shares))
	for n := range m.Shares {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if m.Shares[names[i]] != m.Shares[names[j]] {
			return m.Shares[names[i]] > m.Shares[names[j]]
		}
		return names[i] < names[j]
	})
	t := NewTable("phase", "share")
	for _, n := range names {
		t.AddRow(n, fmt.Sprintf("%.1f%%", m.Shares[n]*100))
	}
	t.AddRow("worker idle", fmt.Sprintf("%.1f%%", m.WorkerIdleFraction*100))
	return t
}
