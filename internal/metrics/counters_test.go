package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterSetBasics(t *testing.T) {
	s := NewCounterSet("ok", "failed")
	s.Add("ok", 2)
	s.Add("failed", 1)
	s.Add("extra", 5) // unregistered names append on first Add
	if s.Get("ok") != 2 || s.Get("failed") != 1 || s.Get("extra") != 5 {
		t.Fatalf("snapshot %v", s.Snapshot())
	}
	if s.Get("unknown") != 0 {
		t.Fatal("unknown counter not zero")
	}
	want := []CounterValue{{"ok", 2}, {"failed", 1}, {"extra", 5}}
	snap := s.Snapshot()
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d entries, want %d: %v", len(snap), len(want), snap)
	}
	for i, cv := range want {
		if snap[i] != cv {
			t.Fatalf("snapshot[%d] = %+v, want %+v", i, snap[i], cv)
		}
	}
	var b strings.Builder
	if err := s.Table().Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	okPos, extraPos := strings.Index(out, "ok"), strings.Index(out, "extra")
	if okPos < 0 || extraPos < 0 || okPos > extraPos {
		t.Fatalf("registration order lost:\n%s", out)
	}
}

func TestCounterSetConcurrent(t *testing.T) {
	s := NewCounterSet("n")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if got := s.Get("n"); got != 8000 {
		t.Fatalf("n = %d, want 8000", got)
	}
}
