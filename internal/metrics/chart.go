package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// BarChart renders grouped horizontal bar charts as text — the suite's
// stand-in for the thesis' matplotlib figures: each figure is a grouped bar
// chart of MFLOPS per matrix and series.
type BarChart struct {
	Title string
	// Unit labels the values (e.g. "MFLOPS").
	Unit string
	// Width is the maximum bar width in characters (default 48).
	Width int

	groups []chartGroup
}

type chartGroup struct {
	label  string
	series []chartSeries
}

type chartSeries struct {
	label string
	value float64
}

// NewBarChart creates a chart with the given title and value unit.
func NewBarChart(title, unit string) *BarChart {
	return &BarChart{Title: title, Unit: unit, Width: 48}
}

// Add appends one bar: group is the outer category (e.g. the matrix name),
// series the inner one (e.g. the format).
func (c *BarChart) Add(group, series string, value float64) {
	for i := range c.groups {
		if c.groups[i].label == group {
			c.groups[i].series = append(c.groups[i].series, chartSeries{series, value})
			return
		}
	}
	c.groups = append(c.groups, chartGroup{label: group, series: []chartSeries{{series, value}}})
}

// FromTable builds a chart from a rendered study table: the first column is
// the group label and every listed column index becomes a series (header
// text as the series label). Non-numeric cells are skipped.
func (c *BarChart) FromTable(t *Table, valueCols ...int) {
	c.FromTableWithGroups(t, []int{0}, valueCols)
}

// FromTableWithGroups is FromTable with a multi-column group label (e.g.
// matrix + block size), joined with "/".
func (c *BarChart) FromTableWithGroups(t *Table, groupCols, valueCols []int) {
	for _, row := range t.rows {
		parts := make([]string, 0, len(groupCols))
		for _, g := range groupCols {
			if g >= 0 && g < len(row) {
				parts = append(parts, row[g])
			}
		}
		group := strings.Join(parts, "/")
		for _, col := range valueCols {
			if col <= 0 || col >= len(row) || col >= len(t.Header) {
				continue
			}
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[col], "x"), 64)
			if err != nil {
				continue
			}
			c.Add(group, t.Header[col], v)
		}
	}
}

// Render writes the chart. Bars are scaled to the chart-wide maximum so
// groups are visually comparable, exactly like a shared figure axis.
func (c *BarChart) Render(w io.Writer) error {
	width := c.Width
	if width <= 0 {
		width = 48
	}
	maxVal := 0.0
	maxGroup, maxSeries := 0, 0
	for _, g := range c.groups {
		maxGroup = max(maxGroup, len(g.label))
		for _, s := range g.series {
			maxVal = max(maxVal, s.value)
			maxSeries = max(maxSeries, len(s.label))
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
		return err
	}
	if len(c.groups) == 0 || maxVal <= 0 {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	for _, g := range c.groups {
		if _, err := fmt.Fprintf(w, "%s\n", g.label); err != nil {
			return err
		}
		for _, s := range g.series {
			bar := int(s.value / maxVal * float64(width))
			if s.value > 0 && bar == 0 {
				bar = 1
			}
			if _, err := fmt.Fprintf(w, "  %-*s %-*s %.0f %s\n",
				maxSeries, s.label, width, strings.Repeat("█", bar), s.value, c.Unit); err != nil {
				return err
			}
		}
	}
	return nil
}
