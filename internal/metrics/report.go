package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of string cells and renders them with aligned
// columns — the studies print their figure data as such tables so every
// series the paper plots is regenerable as text.
type Table struct {
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{Header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			sb.WriteString(c)
			if i != len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
		_, err := io.WriteString(w, sb.String())
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the table as CSV, the format the thesis' plotting
// scripts consume.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
