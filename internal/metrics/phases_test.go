package metrics

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestPhaseMixFrom(t *testing.T) {
	s := trace.Summarize([]trace.Span{
		{Name: trace.PhaseCalculate, Lane: 0, Start: 0, Dur: 750},
		{Name: trace.PhasePrepare, Lane: 0, Start: 0, Dur: 250},
		{Name: trace.PhaseSimKernel, Lane: 0, Start: 0, Dur: 9999, Sim: true},
	}, 0)
	mix := PhaseMixFrom(s)
	if got := mix.Shares[trace.PhaseCalculate]; got != 0.75 {
		t.Fatalf("calculate share = %v, want 0.75", got)
	}
	if got := mix.Shares[trace.PhasePrepare]; got != 0.25 {
		t.Fatalf("prepare share = %v, want 0.25", got)
	}
	if _, ok := mix.Shares[trace.PhaseSimKernel]; ok {
		t.Fatal("simulated phase leaked into the wall-clock mix")
	}
}

func TestPhaseMixEmpty(t *testing.T) {
	mix := PhaseMixFrom(trace.Summarize(nil, 0))
	if len(mix.Shares) != 0 || mix.WorkerIdleFraction != 0 {
		t.Fatalf("empty trace mix = %+v, want zero", mix)
	}
}

func TestPhaseMixTable(t *testing.T) {
	s := trace.Summarize([]trace.Span{
		{Name: trace.PhaseCalculate, Lane: 0, Start: 0, Dur: 900},
		{Name: trace.PhaseChunk, Lane: 1, Start: 0, Dur: 100},
	}, 0)
	var sb strings.Builder
	if err := PhaseMixFrom(s).Table().Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{trace.PhaseCalculate, "90.0%", "worker idle"} {
		if !strings.Contains(out, want) {
			t.Fatalf("phase mix table missing %q:\n%s", want, out)
		}
	}
	// The biggest share renders first.
	if strings.Index(out, trace.PhaseCalculate) > strings.Index(out, trace.PhaseChunk) {
		t.Fatalf("phases not sorted by descending share:\n%s", out)
	}
}
