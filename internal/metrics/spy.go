package metrics

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/matrix"
)

// SpyPlot renders the sparsity pattern of a matrix as text — the thesis'
// conclusion notes that "understanding your matrix data is probably best
// done with a graphical representation" (§6.2). Each character cell covers
// a rows/height × cols/width tile and is shaded by the tile's nonzero
// density.
func SpyPlot[T matrix.Float](w io.Writer, m *matrix.COO[T], width, height int) error {
	if width < 1 || height < 1 {
		return fmt.Errorf("metrics: SpyPlot needs positive dimensions, got %dx%d", width, height)
	}
	if m.Rows == 0 || m.Cols == 0 {
		_, err := fmt.Fprintln(w, "(empty matrix)")
		return err
	}
	if width > m.Cols {
		width = m.Cols
	}
	if height > m.Rows {
		height = m.Rows
	}
	counts := make([]int, width*height)
	for i := range m.Vals {
		r := int(m.RowIdx[i]) * height / m.Rows
		c := int(m.ColIdx[i]) * width / m.Cols
		counts[r*width+c]++
	}
	// Shade by density relative to the densest tile.
	maxCount := 0
	for _, c := range counts {
		maxCount = max(maxCount, c)
	}
	shades := []rune(" .:+*#@")
	var sb strings.Builder
	border := "+" + strings.Repeat("-", width) + "+\n"
	sb.WriteString(border)
	for r := 0; r < height; r++ {
		sb.WriteByte('|')
		for c := 0; c < width; c++ {
			n := counts[r*width+c]
			if n == 0 {
				sb.WriteRune(' ')
				continue
			}
			idx := 1 + n*(len(shades)-2)/maxCount
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			sb.WriteRune(shades[idx])
		}
		sb.WriteString("|\n")
	}
	sb.WriteString(border)
	sb.WriteString(fmt.Sprintf("%dx%d, %d nonzeros (each cell ~%dx%d elements)\n",
		m.Rows, m.Cols, m.NNZ(), (m.Rows+height-1)/height, (m.Cols+width-1)/width))
	_, err := io.WriteString(w, sb.String())
	return err
}
