package metrics

import (
	"sync"
)

// CounterSet is a small set of named monotonic counters with a stable
// rendering order. The campaign harness uses one to tally run outcomes
// (ok / retried / degraded / skipped / failed); any other subsystem that
// needs cheap concurrent counters can reuse it. The zero value is not
// usable — construct with NewCounterSet.
type CounterSet struct {
	mu    sync.Mutex
	names []string
	vals  map[string]int64
}

// NewCounterSet creates a counter set whose Table renders the given names
// in order. Counters not listed here are appended in first-Add order.
func NewCounterSet(names ...string) *CounterSet {
	s := &CounterSet{names: append([]string(nil), names...), vals: make(map[string]int64)}
	for _, n := range names {
		s.vals[n] = 0
	}
	return s
}

// Add increments the named counter by delta, registering the name if new.
func (s *CounterSet) Add(name string, delta int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.vals[name]; !ok {
		s.names = append(s.names, name)
	}
	s.vals[name] += delta
}

// Get returns the named counter's value (zero for unknown names).
func (s *CounterSet) Get(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vals[name]
}

// CounterValue is one (name, value) pair of a Snapshot.
type CounterValue struct {
	Name  string
	Value int64
}

// Snapshot returns an ordered copy of all counters in registration order —
// the same order Table renders — so callers can read values without parsing
// rendered output.
func (s *CounterSet) Snapshot() []CounterValue {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CounterValue, 0, len(s.names))
	for _, n := range s.names {
		out = append(out, CounterValue{Name: n, Value: s.vals[n]})
	}
	return out
}

// Table renders the counters as a two-column table in registration order.
func (s *CounterSet) Table() *Table {
	t := NewTable("counter", "count")
	for _, cv := range s.Snapshot() {
		t.AddRow(cv.Name, cv.Value)
	}
	return t
}
