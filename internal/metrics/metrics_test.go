package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/matrix"
)

func TestComputeKnownMatrix(t *testing.T) {
	// Rows with 3, 1, 0, 2 nonzeros: mean 1.5, max 3, ratio 2,
	// variance = ((1.5)^2 + (0.5)^2 + (1.5)^2 + (0.5)^2)/4 = 1.25.
	m := matrix.NewCOO[float64](4, 5, 6)
	m.Append(0, 0, 1)
	m.Append(0, 1, 1)
	m.Append(0, 4, 1)
	m.Append(1, 2, 1)
	m.Append(3, 0, 1)
	m.Append(3, 3, 1)
	p := Compute(m)
	if p.Rows != 4 || p.Cols != 5 || p.NNZ != 6 {
		t.Fatalf("dims/nnz wrong: %+v", p)
	}
	if p.MaxRow != 3 || p.AvgRow != 1.5 || p.Ratio != 2 {
		t.Fatalf("row stats wrong: %+v", p)
	}
	if math.Abs(p.Variance-1.25) > 1e-12 || math.Abs(p.StdDev-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("variance/std wrong: %+v", p)
	}
}

func TestGini(t *testing.T) {
	// Uniform distribution: Gini 0.
	if g := gini([]int{5, 5, 5, 5}); g != 0 {
		t.Fatalf("uniform gini = %v, want 0", g)
	}
	// One row owns everything: Gini -> (n-1)/n.
	if g := gini([]int{0, 0, 0, 100}); math.Abs(g-0.75) > 1e-12 {
		t.Fatalf("concentrated gini = %v, want 0.75", g)
	}
	// Order must not matter.
	if gini([]int{1, 2, 3, 4}) != gini([]int{4, 1, 3, 2}) {
		t.Fatal("gini must be order-invariant")
	}
	if g := gini(nil); g != 0 {
		t.Fatalf("empty gini = %v, want 0", g)
	}
	if g := gini([]int{0, 0}); g != 0 {
		t.Fatalf("all-zero gini = %v, want 0", g)
	}
	// Compute wires it through: the hub matrix must report a high Gini.
	m := matrix.NewCOO[float64](4, 8, 0)
	for j := int32(0); j < 8; j++ {
		m.Append(0, j, 1)
	}
	m.Append(1, 0, 1)
	if p := Compute(m); p.Gini < 0.5 {
		t.Fatalf("hub matrix gini = %v, want >= 0.5", p.Gini)
	}
}

func TestComputeEmpty(t *testing.T) {
	m := matrix.NewCOO[float64](0, 0, 0)
	p := Compute(m)
	if p.NNZ != 0 || p.MaxRow != 0 || p.Ratio != 0 {
		t.Fatalf("empty matrix props: %+v", p)
	}
}

func TestELLOverhead(t *testing.T) {
	p := Properties{Rows: 10, NNZ: 20, MaxRow: 4}
	if p.ELLOverhead() != 2 {
		t.Fatalf("overhead %v, want 2", p.ELLOverhead())
	}
	if (Properties{}).ELLOverhead() != 1 {
		t.Fatal("empty overhead must be 1")
	}
}

func TestMFLOPS(t *testing.T) {
	if MFLOPS(2e6, 1) != 2 {
		t.Fatal("MFLOPS")
	}
	if MFLOPS(1e6, 0) != 0 {
		t.Fatal("zero time must not divide by zero")
	}
	if GFLOPS(2e9, 1) != 2 {
		t.Fatal("GFLOPS")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("matrix", "mflops")
	tb.AddRow("cant", 12345.6)
	tb.AddRow("dw4096", 7.25)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected header+sep+2 rows, got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "matrix") || !strings.Contains(lines[2], "cant") {
		t.Fatalf("table content wrong:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Fatal("NumRows")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow(1, 2.5)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2.500\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		12345.6: "12346",
		42.42:   "42.4",
		1.23456: "1.235",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestBarChartRender(t *testing.T) {
	c := NewBarChart("Fig X: test", "MFLOPS")
	c.Add("cant", "csr", 100)
	c.Add("cant", "ell", 50)
	c.Add("dw4096", "csr", 25)
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig X: test", "cant", "dw4096", "csr", "ell", "MFLOPS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// The 100-value bar must be strictly longer than the 50-value bar.
	lines := strings.Split(out, "\n")
	var csrBar, ellBar int
	for _, l := range lines {
		if strings.Contains(l, "csr") && csrBar == 0 {
			csrBar = strings.Count(l, "█")
		}
		if strings.Contains(l, "ell") {
			ellBar = strings.Count(l, "█")
		}
	}
	if csrBar <= ellBar {
		t.Fatalf("bar lengths: csr %d, ell %d", csrBar, ellBar)
	}
}

func TestBarChartFromTable(t *testing.T) {
	tb := NewTable("matrix", "csr", "ell", "best")
	tb.AddRow("cant", 100.0, 50.0, "csr")
	tb.AddRow("dw4096", "not-a-number", 25.0, "ell")
	c := NewBarChart("from table", "MFLOPS")
	c.FromTable(tb, 1, 2)
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dw4096") {
		t.Fatal("group missing")
	}
	// The non-numeric cell must be skipped, not rendered as a bar.
	if strings.Count(buf.String(), "cant") != 1 {
		t.Fatal("cant group duplicated")
	}
}

func TestBarChartEmpty(t *testing.T) {
	c := NewBarChart("empty", "x")
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("empty chart must say so")
	}
}

func TestSpyPlot(t *testing.T) {
	m := matrix.NewCOO[float64](100, 100, 0)
	for i := 0; i < 100; i++ {
		m.Append(int32(i), int32(i), 1) // diagonal
	}
	var buf bytes.Buffer
	if err := SpyPlot(&buf, m, 20, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "100x100, 100 nonzeros") {
		t.Fatalf("summary line missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Border + 10 rows + border + summary.
	if len(lines) < 13 {
		t.Fatalf("expected at least 13 lines, got %d", len(lines))
	}
	// Diagonal pattern: row r of the plot has its mark around column r*2.
	row0 := lines[1]
	if !strings.ContainsAny(row0[1:3], ".:+*#@") {
		t.Fatalf("diagonal start not marked: %q", row0)
	}
	// Off-diagonal corner must be blank.
	if row0[len(row0)-2] != ' ' {
		t.Fatalf("top-right corner should be empty: %q", row0)
	}
}

func TestSpyPlotEdgeCases(t *testing.T) {
	var buf bytes.Buffer
	if err := SpyPlot(&buf, matrix.NewCOO[float64](0, 0, 0), 10, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Fatal("empty matrix must render a placeholder")
	}
	if err := SpyPlot(&buf, matrix.NewCOO[float64](5, 5, 0), 0, 10); err == nil {
		t.Fatal("zero width must error")
	}
	// Plot larger than the matrix clamps to the matrix dimensions.
	m := matrix.NewCOO[float64](3, 3, 0)
	m.Append(1, 1, 1)
	buf.Reset()
	if err := SpyPlot(&buf, m, 100, 100); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(buf.String(), "\n")) > 8 {
		t.Fatal("plot should clamp to matrix size")
	}
}
