package serve

import (
	"context"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/matrix"
)

// testMatrix builds a small deterministic random matrix.
func testMatrix(tb testing.TB, rows, cols int, density float64, seed int64) *matrix.COO[float64] {
	tb.Helper()
	m, err := gen.UniformRandom[float64](rows, cols, density, seed)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func TestContentIDCanonical(t *testing.T) {
	a := testMatrix(t, 50, 40, 0.05, 1)
	b := a.Clone()
	// Shuffle b's triplet order: the ID must not depend on it.
	for i := range b.Vals {
		j := (i * 7) % len(b.Vals)
		b.RowIdx[i], b.RowIdx[j] = b.RowIdx[j], b.RowIdx[i]
		b.ColIdx[i], b.ColIdx[j] = b.ColIdx[j], b.ColIdx[i]
		b.Vals[i], b.Vals[j] = b.Vals[j], b.Vals[i]
	}
	Canonicalize(a)
	Canonicalize(b)
	if ida, idb := ContentID(a), ContentID(b); ida != idb {
		t.Fatalf("triplet order changed the content ID: %s vs %s", ida, idb)
	}
	c := testMatrix(t, 50, 40, 0.05, 2)
	Canonicalize(c)
	if ContentID(a) == ContentID(c) {
		t.Fatal("different matrices collided on one content ID")
	}
}

func TestRegisterIdempotent(t *testing.T) {
	r := NewRegistry(0, 2)
	m1, existed, err := r.Register(testMatrix(t, 60, 60, 0.04, 7))
	if err != nil || existed {
		t.Fatalf("first register: existed=%v err=%v", existed, err)
	}
	m2, existed, err := r.Register(testMatrix(t, 60, 60, 0.04, 7))
	if err != nil || !existed {
		t.Fatalf("second register: existed=%v err=%v", existed, err)
	}
	if m1 != m2 {
		t.Fatal("re-registering the same content returned a different entry")
	}
	if r.Len() != 1 {
		t.Fatalf("registry holds %d matrices, want 1", r.Len())
	}
}

// TestCacheBytesAccounting pins that the cache's byte gauge is exactly the
// sum of the resident prepared formats' footprints.
func TestCacheBytesAccounting(t *testing.T) {
	r := NewRegistry(0, 2)
	ctx := context.Background()
	var want int64
	for seed := int64(1); seed <= 3; seed++ {
		m, _, err := r.Register(testMatrix(t, 80, 80, 0.03, seed))
		if err != nil {
			t.Fatal(err)
		}
		sv, hit, err := r.Prepared(ctx, m.ID)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatalf("first Prepared of %s reported a cache hit", m.ID)
		}
		want += int64(sv.Kernel.Bytes())
	}
	st := r.Stats()
	if st.Entries != 3 {
		t.Fatalf("cache entries = %d, want 3", st.Entries)
	}
	if st.Bytes != want {
		t.Fatalf("cache bytes = %d, want %d (sum of prepared footprints)", st.Bytes, want)
	}
	if st.Prepares != 3 || st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("counters = %+v, want 3 prepares, 3 misses, 0 hits", st)
	}
}

// TestLRUEvictionOrder pins the eviction policy: least recently *used*
// leaves first, and a hit refreshes recency.
func TestLRUEvictionOrder(t *testing.T) {
	// Measure one prepared footprint first, then budget for two.
	probe := NewRegistry(0, 2)
	pm, _, err := probe.Register(testMatrix(t, 100, 100, 0.03, 1))
	if err != nil {
		t.Fatal(err)
	}
	psv, _, err := probe.Prepared(context.Background(), pm.ID)
	if err != nil {
		t.Fatal(err)
	}
	one := int64(psv.Kernel.Bytes())

	r := NewRegistry(2*one+one/2, 2)
	ctx := context.Background()
	ids := make([]string, 3)
	for i, seed := range []int64{1, 2, 3} {
		m, _, err := r.Register(testMatrix(t, 100, 100, 0.03, seed))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = m.ID
	}
	mustPrepare := func(id string, wantHit bool) {
		t.Helper()
		if _, hit, err := r.Prepared(ctx, id); err != nil || hit != wantHit {
			t.Fatalf("Prepared(%s): hit=%v err=%v, want hit=%v", id, hit, err, wantHit)
		}
	}
	mustPrepare(ids[0], false) // cache: [0]
	mustPrepare(ids[1], false) // cache: [1 0]
	mustPrepare(ids[0], true)  // refresh 0 → cache: [0 1]
	mustPrepare(ids[2], false) // budget forces eviction of 1 → [2 0]

	got := r.CachedIDs()
	if len(got) != 2 || got[0] != ids[2] || got[1] != ids[0] {
		t.Fatalf("cache residents (MRU first) = %v, want [%s %s] — LRU must evict the least recently used, not the oldest insert", got, ids[2], ids[0])
	}
	if st := r.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// The evicted matrix re-prepares on demand (a miss, not an error).
	mustPrepare(ids[1], false)
}

// TestSecondMultiplyZeroPrepare is the amortization contract: once a
// matrix's format is resident, further multiplies perform zero preparation.
func TestSecondMultiplyZeroPrepare(t *testing.T) {
	r := NewRegistry(0, 2)
	ctx := context.Background()
	m, _, err := r.Register(testMatrix(t, 70, 50, 0.05, 11))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Prepared(ctx, m.ID); err != nil {
		t.Fatal(err)
	}
	base := r.Stats().Prepares
	for i := 0; i < 5; i++ {
		_, hit, err := r.Prepared(ctx, m.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !hit {
			t.Fatalf("multiply %d after warm-up missed the cache", i+2)
		}
	}
	if got := r.Stats().Prepares; got != base {
		t.Fatalf("prepare counter advanced from %d to %d on cached multiplies", base, got)
	}
}

// TestConcurrentRegisterEvict hammers register + prepare + evict from many
// goroutines under a budget that fits roughly one prepared format; run with
// -race this is the cache's data-race audit.
func TestConcurrentRegisterEvict(t *testing.T) {
	probe := NewRegistry(0, 2)
	pm, _, _ := probe.Register(testMatrix(t, 90, 90, 0.03, 1))
	psv, _, err := probe.Prepared(context.Background(), pm.ID)
	if err != nil {
		t.Fatal(err)
	}
	one := int64(psv.Kernel.Bytes())
	r := NewRegistry(one+one/3, 2)

	const workers = 8
	const iters = 30
	seeds := []int64{1, 2, 3, 4}
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				seed := seeds[(w+i)%len(seeds)]
				m, _, err := r.Register(testMatrix(t, 90, 90, 0.03, seed))
				if err != nil {
					t.Error(err)
					return
				}
				sv, _, err := r.Prepared(ctx, m.ID)
				if err != nil {
					t.Error(err)
					return
				}
				if sv.Kernel == nil || sv.Kernel.Bytes() <= 0 {
					t.Error("Prepared returned an unusable kernel")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != len(seeds) {
		t.Fatalf("registry holds %d matrices, want %d", r.Len(), len(seeds))
	}
	st := r.Stats()
	if st.Entries < 1 {
		t.Fatalf("cache emptied entirely: %+v", st)
	}
	if st.Bytes < 0 {
		t.Fatalf("negative cache bytes after churn: %+v", st)
	}
	if st.Hits+st.Misses != workers*iters {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, workers*iters)
	}
}
