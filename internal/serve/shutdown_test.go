package serve

import (
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/matrix"
)

// TestDrainReturns503NotReset pins the graceful-shutdown contract: once
// Drain is called, register and multiply requests get a clean, retryable
// 503 with Retry-After — never a hang or a connection reset — while the
// listener is still up (the window spmmserve holds open between Drain and
// http.Server.Shutdown). Afterwards the process winds back down to its
// starting goroutine count: shutdown leaks nothing.
func TestDrainReturns503NotReset(t *testing.T) {
	before := runtime.NumGoroutine()

	func() {
		const k = 4
		srv, client, teardown := newTestServer(t, Config{Threads: 1})
		reg, err := client.Register(RegisterRequest{Name: "dw4096", Scale: 0.02})
		if err != nil {
			t.Fatal(err)
		}

		srv.Drain()
		if !srv.Draining() {
			t.Fatal("Draining() false after Drain()")
		}

		// A burst of concurrent requests against the draining server: every
		// one must complete its HTTP exchange with a 503 + Retry-After.
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for i := 0; i < 4; i++ {
			wg.Add(2)
			go func(i int) {
				defer wg.Done()
				b := matrix.NewDenseRand[float64](reg.Cols, k, int64(i))
				_, err := client.Multiply(reg.ID, reg.Rows, b, k, 0)
				errs <- err
			}(i)
			go func() {
				defer wg.Done()
				_, err := client.Register(RegisterRequest{Name: "dw4096", Scale: 0.05})
				errs <- err
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			se, ok := err.(*StatusError)
			if !ok {
				t.Fatalf("draining server: want a clean 503 StatusError, got %v", err)
			}
			if se.Code != http.StatusServiceUnavailable {
				t.Fatalf("draining server returned %d, want 503", se.Code)
			}
			if se.RetryAfter <= 0 {
				t.Fatal("draining 503 carries no Retry-After")
			}
			if !se.Retryable() {
				t.Fatal("draining 503 not classified retryable by the client")
			}
		}

		// Cheap read-only endpoints stay up through the drain (health checks
		// and final stats scrapes must not flap).
		if _, err := client.Stats(); err != nil {
			t.Fatalf("stats during drain: %v", err)
		}
		if _, err := client.Matrices(); err != nil {
			t.Fatalf("list during drain: %v", err)
		}
		teardown()
	}()

	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak across drain + teardown: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClientRetriesDrainThenRecovers exercises the satellite retry path end
// to end: a client with retries enabled fires at a draining server, every
// attempt 503s, and the attempt counters expose the whole story; then
// against a healthy server the same client succeeds without burning spare
// attempts.
func TestClientRetriesDrainThenRecovers(t *testing.T) {
	srv, client, _ := newTestServer(t, Config{Threads: 1})
	client.MaxAttempts = 2 // one retry: the pause honors the server's 1s Retry-After
	client.Backoff = harness.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}
	// Record the retry pauses instead of sleeping through them: the pacing
	// contract is asserted on the recorded durations, deterministically.
	var pauses []time.Duration
	client.Sleep = func(d time.Duration) { pauses = append(pauses, d) }

	srv.Drain()
	_, err := client.Register(RegisterRequest{Name: "dw4096", Scale: 0.02})
	se, ok := err.(*StatusError)
	if !ok || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining register after retries: %v, want a final 503", err)
	}
	if got := client.Attempts(); got != 2 {
		t.Fatalf("client made %d attempts against a draining server, want MaxAttempts=2", got)
	}
	if got := client.Retries(); got != 1 {
		t.Fatalf("client counted %d retries, want 1", got)
	}
	// The pause between the attempts honored the 1s Retry-After, not the
	// millisecond backoff schedule.
	if len(pauses) != 1 || pauses[0] < time.Second {
		t.Fatalf("retry pauses %v; the server's Retry-After: 1 is the floor", pauses)
	}

	// A healthy server: one attempt, no retries added.
	_, fresh, _ := newTestServer(t, Config{Threads: 1})
	fresh.MaxAttempts = 3
	fresh.Backoff = harness.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}
	if _, err := fresh.Register(RegisterRequest{Name: "dw4096", Scale: 0.02}); err != nil {
		t.Fatal(err)
	}
	if fresh.Attempts() != 1 || fresh.Retries() != 0 {
		t.Fatalf("healthy register: attempts=%d retries=%d, want 1/0", fresh.Attempts(), fresh.Retries())
	}
}

// TestClientHonorsRetryAfter pins that the server's Retry-After hint is a
// floor on the retry pause, even when the backoff schedule would retry
// sooner.
func TestClientHonorsRetryAfter(t *testing.T) {
	c := NewClient("http://unused")
	c.Backoff = harness.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}
	if d := c.retryDelay(1, 500*time.Millisecond); d < 500*time.Millisecond {
		t.Fatalf("retry delay %s ignores the 500ms Retry-After floor", d)
	}
	if d := c.retryDelay(1, 0); d > 2*time.Millisecond {
		t.Fatalf("retry delay %s exceeds the backoff cap with no server hint", d)
	}
}

// TestClientRetriesConnErrors points a RetryConnErrors client at a dead
// port: every attempt is a transport error, all MaxAttempts are spent, and
// the final error is the transport error (not a panic or a hang).
func TestClientRetriesConnErrors(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listens on port 1
	c.MaxAttempts = 3
	c.RetryConnErrors = true
	c.Backoff = harness.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}
	if _, err := c.Stats(); err == nil {
		t.Fatal("stats against a dead port succeeded")
	}
	if got := c.Attempts(); got != 3 {
		t.Fatalf("client made %d attempts against a dead port, want 3", got)
	}
	// Without the flag, transport errors are terminal on the first attempt.
	c2 := NewClient("http://127.0.0.1:1")
	c2.MaxAttempts = 3
	if _, err := c2.Stats(); err == nil {
		t.Fatal("stats against a dead port succeeded")
	}
	if got := c2.Attempts(); got != 1 {
		t.Fatalf("non-retrying client made %d attempts, want 1", got)
	}
}
