package serve

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/matrix"
)

// The chaos suite for the durability layer: every test drives the real WAL
// and snapshot files in a temp dir, with faults injected through the
// harness' deterministic injector — torn writes, fsync failures, disk
// full, crash-at-point during snapshot — and proves the recovery contract:
// a registration that was acked survives any crash; a registration that
// was not made durable is never acked.

// durableServer builds a server backed by dir.
func durableServer(t *testing.T, dir string, inject *harness.Injector) (*Server, *Client, func()) {
	t.Helper()
	return newTestServer(t, Config{
		Threads:       1,
		DataDir:       dir,
		SnapshotEvery: -1, // tests trigger snapshot compaction explicitly
		CompactRatio:  -1, // overlay compaction is forced, never background —
		CompactCost:   -1, // the chaos tests pin exact epoch/hash states
		Injector:      inject,
	})
}

// registerGen registers a generator-spec matrix and returns the response.
func registerGen(t *testing.T, c *Client, name string, scale float64) *RegisterResponse {
	t.Helper()
	reg, err := c.Register(RegisterRequest{Name: name, Scale: scale})
	if err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
	return reg
}

// listIDs fetches the registry listing as a set of content hashes.
func listIDs(t *testing.T, c *Client) map[string]bool {
	t.Helper()
	infos, err := c.Matrices()
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, info := range infos {
		ids[info.ID] = true
	}
	return ids
}

// TestRecoverAcrossRestart is the core durability property over the real
// HTTP surface: register (generator spec AND raw MTX upload), stop the
// server, start a fresh one on the same data dir — every matrix is back
// with the same content hash and serving plan, and a multiply returns
// bitwise-identical results to the same-format serial kernel.
func TestRecoverAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	const k = 4

	// MTX upload: a small matrix with no generator spec, so the WAL must
	// carry its canonical triplets.
	mtx := "%%MatrixMarket matrix coordinate real general\n3 3 4\n1 1 2.0\n1 3 -1.5\n2 2 4.25\n3 1 0.125\n"

	srv1, c1, teardown1 := durableServer(t, dir, nil)
	regGen := registerGen(t, c1, "dw4096", 0.02)
	regMTX, err := c1.Register(RegisterRequest{MTX: mtx})
	if err != nil {
		t.Fatal(err)
	}
	if regGen.Existed || regMTX.Existed {
		t.Fatal("fresh registrations reported existed")
	}
	_ = srv1
	teardown1()

	srv2, c2, _ := durableServer(t, dir, nil)
	ids := listIDs(t, c2)
	if !ids[regGen.ID] || !ids[regMTX.ID] {
		t.Fatalf("restart lost registrations: have %v, want %s and %s", ids, regGen.ID, regMTX.ID)
	}
	stats, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Durability.Enabled || stats.Durability.Recovered != 2 {
		t.Fatalf("durability stats after restart: %+v", stats.Durability)
	}

	// The recovered serving plan must match what was acked.
	m, ok := srv2.Registry().Get(regGen.ID)
	if !ok {
		t.Fatalf("recovered registry misses %s", regGen.ID)
	}
	plan := m.Plan()
	if plan.Format != regGen.Format || plan.Schedule.String() != regGen.Schedule || plan.Block != regGen.Block {
		t.Fatalf("recovered plan (%s/%s/%d) != acked plan (%s/%s/%d)",
			plan.Format, plan.Schedule, plan.Block, regGen.Format, regGen.Schedule, regGen.Block)
	}
	if plan.Variant != regGen.Variant || plan.Version != regGen.PlanVersion {
		t.Fatalf("recovered variant %s v%d != acked %s v%d",
			plan.Variant, plan.Version, regGen.Variant, regGen.PlanVersion)
	}

	// Re-registering the same inputs must dedup onto the recovered entries.
	if again := registerGen(t, c2, "dw4096", 0.02); !again.Existed || again.ID != regGen.ID {
		t.Fatalf("re-register after restart: existed=%v id=%s, want existed=true id=%s",
			again.Existed, again.ID, regGen.ID)
	}

	// Multiply on the recovered matrix: bitwise vs the serial reference
	// (also proves lazy re-preparation works).
	ref, refParams := serialReference(t, regGen, k)
	b := matrix.NewDenseRand[float64](regGen.Cols, k, 7)
	res, err := c2.Multiply(regGen.ID, regGen.Rows, b, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	refC := matrix.NewDense[float64](regGen.Rows, k)
	if err := ref.Calculate(b, refC, refParams); err != nil {
		t.Fatal(err)
	}
	if diff, _ := res.C.MaxAbsDiff(refC); diff != 0 {
		t.Fatalf("recovered multiply differs from serial %s by %g", regGen.Format, diff)
	}
}

// TestTornWALTailSkipped crashes mid-append by construction: a valid WAL
// plus a half-written final record. Recovery keeps every intact record,
// skips the torn tail, and the reopened WAL appends cleanly after repair.
func TestTornWALTailSkipped(t *testing.T) {
	dir := t.TempDir()

	_, c1, teardown1 := durableServer(t, dir, nil)
	reg := registerGen(t, c1, "dw4096", 0.02)
	teardown1()

	// Tear the tail: append half of a fake record, no newline — what a
	// kill mid-write leaves behind.
	walPath := filepath.Join(dir, "wal.jsonl")
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":999,"id":"deadbeef","rows":3,`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, c2, teardown2 := durableServer(t, dir, nil)
	ids := listIDs(t, c2)
	if !ids[reg.ID] {
		t.Fatalf("torn tail destroyed intact record %s", reg.ID)
	}
	if len(ids) != 1 {
		t.Fatalf("torn record leaked into the registry: %v", ids)
	}
	// The repaired WAL must accept appends (and survive another restart).
	reg2 := registerGen(t, c2, "dw4096", 0.05)
	teardown2()

	_, c3, _ := durableServer(t, dir, nil)
	ids = listIDs(t, c3)
	if !ids[reg.ID] || !ids[reg2.ID] {
		t.Fatalf("post-repair append lost records: %v", ids)
	}
}

// TestCorruptWALRecordCRC flips payload bytes inside a sealed record (still
// valid JSON, wrong content): the CRC must catch it.
func TestCorruptWALRecordCRC(t *testing.T) {
	rec := &walRecord{ID: "abc", Rows: 2, Cols: 2, Format: "csr", Schedule: "static", Block: 4}
	data, err := sealRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifyRecord(rec); err != nil {
		t.Fatalf("freshly sealed record fails its own CRC: %v", err)
	}
	// Bit-flip the rows field through a JSON-preserving edit.
	munged := strings.Replace(string(data), `"rows":2`, `"rows":3`, 1)
	dir := t.TempDir()
	walPath := filepath.Join(dir, "wal.jsonl")
	if err := os.WriteFile(walPath, []byte(munged), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, torn, err := readWAL(walPath)
	if err != nil || !torn || len(recs) != 0 {
		t.Fatalf("corrupt final record: recs=%d torn=%v err=%v, want 0/true/nil", len(recs), torn, err)
	}
}

// TestCorruptSnapshotFallsBackToWAL corrupts the snapshot body (CRC
// mismatch) while the WAL still holds everything: recovery must log-and-
// ignore the snapshot and replay the full WAL.
func TestCorruptSnapshotFallsBackToWAL(t *testing.T) {
	dir := t.TempDir()

	srv, c1, teardown1 := durableServer(t, dir, nil)
	reg1 := registerGen(t, c1, "dw4096", 0.02)
	reg2 := registerGen(t, c1, "dw4096", 0.05)

	// Write a snapshot WITHOUT truncating the WAL, so the WAL remains a
	// complete fallback, then corrupt the snapshot's body.
	snap := &snapshot{Version: 1, LastSeq: 0, Records: srv.Registry().dumpRecords()}
	if err := writeSnapshot(dir, snap, nil); err != nil {
		t.Fatal(err)
	}
	teardown1()

	snapPath := filepath.Join(dir, "snapshot.dat")
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // flip a body byte; header CRC now mismatches
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSnapshot(dir); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("loadSnapshot on corrupt file: %v, want ErrCorruptSnapshot", err)
	}

	_, c2, _ := durableServer(t, dir, nil)
	ids := listIDs(t, c2)
	if !ids[reg1.ID] || !ids[reg2.ID] {
		t.Fatalf("corrupt snapshot lost WAL-covered records: %v", ids)
	}
}

// TestSnapshotCompactionTruncatesWAL proves the compaction cycle: snapshot
// lands, WAL empties, and a restart recovers everything from the snapshot
// alone — then keeps accepting appends.
func TestSnapshotCompactionTruncatesWAL(t *testing.T) {
	dir := t.TempDir()

	srv, c1, teardown1 := durableServer(t, dir, nil)
	reg1 := registerGen(t, c1, "dw4096", 0.02)
	reg2 := registerGen(t, c1, "dw4096", 0.05)
	if err := srv.store.Compact(); err != nil {
		t.Fatal(err)
	}
	st := srv.store.Stats()
	if st.Snapshots != 1 || st.WALBytes != 0 {
		t.Fatalf("after compaction: snapshots=%d wal_bytes=%d, want 1/0", st.Snapshots, st.WALBytes)
	}
	teardown1()

	_, c2, teardown2 := durableServer(t, dir, nil)
	ids := listIDs(t, c2)
	if !ids[reg1.ID] || !ids[reg2.ID] {
		t.Fatalf("snapshot-only recovery lost records: %v", ids)
	}
	reg3 := registerGen(t, c2, "shallow_water1", 0.02)
	teardown2()

	_, c3, _ := durableServer(t, dir, nil)
	ids = listIDs(t, c3)
	if !ids[reg1.ID] || !ids[reg2.ID] || !ids[reg3.ID] {
		t.Fatalf("snapshot + WAL tail recovery lost records: %v", ids)
	}
}

// TestAutoSnapshotTriggers proves the background compactor fires on the
// SnapshotEvery threshold without an explicit Compact call.
func TestAutoSnapshotTriggers(t *testing.T) {
	dir := t.TempDir()
	srv, c, _ := newTestServer(t, Config{
		Threads:       1,
		DataDir:       dir,
		SnapshotEvery: 2,
	})
	registerGen(t, c, "dw4096", 0.02)
	registerGen(t, c, "dw4096", 0.05)
	// The second append crosses the threshold; compaction runs in the
	// background — join it through the store.
	if err := srv.store.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := srv.store.Stats(); st.Snapshots < 1 {
		t.Fatalf("no snapshot after %d registrations with SnapshotEvery=2", 2)
	}
}

// TestFsyncFailureNeverAcks is the ack-after-durable contract under an
// injected fsync error: the registration must fail with 503, the matrix
// must not be listed, and a restart must not resurrect it.
func TestFsyncFailureNeverAcks(t *testing.T) {
	dir := t.TempDir()
	inject := harness.NewInjector(1, harness.Fault{
		Point: harness.PointWALSync, Kind: harness.FaultErr,
		Err: errors.New("fsync: input/output error"),
	})
	_, c1, teardown1 := durableServer(t, dir, inject)

	_, err := c1.Register(RegisterRequest{Name: "dw4096", Scale: 0.02})
	se, ok := err.(*StatusError)
	if !ok || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("register with failing fsync: %v, want a 503", err)
	}
	if ids := listIDs(t, c1); len(ids) != 0 {
		t.Fatalf("un-durable registration is visible: %v", ids)
	}
	// The fault was single-shot: the retry path works.
	reg := registerGen(t, c1, "dw4096", 0.02)
	if reg.Existed {
		t.Fatal("failed registration left state behind (existed=true on retry)")
	}
	teardown1()

	_, c2, _ := durableServer(t, dir, nil)
	ids := listIDs(t, c2)
	if !ids[reg.ID] || len(ids) != 1 {
		t.Fatalf("restart after fsync fault: %v, want exactly %s", ids, reg.ID)
	}
}

// TestDiskFullAtAppend injects ENOSPC-style failure at the write itself.
func TestDiskFullAtAppend(t *testing.T) {
	dir := t.TempDir()
	inject := harness.NewInjector(1, harness.Fault{
		Point: harness.PointWALAppend, Kind: harness.FaultErr,
		Err: errors.New("write: no space left on device"),
	})
	_, c, _ := durableServer(t, dir, inject)
	_, err := c.Register(RegisterRequest{Name: "dw4096", Scale: 0.02})
	se, ok := err.(*StatusError)
	if !ok || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("register on a full disk: %v, want a 503", err)
	}
	if !strings.Contains(se.Message, "no space left") {
		t.Fatalf("503 hides the disk-full cause: %q", se.Message)
	}
	if ids := listIDs(t, c); len(ids) != 0 {
		t.Fatalf("disk-full registration is visible: %v", ids)
	}
}

// TestTornWALWriteCrash injects a torn write — half the record hits the
// disk, then the write fails. The registration is not acked, and because
// the process is still alive the log rolls back to the record boundary:
// the very next append in the SAME process must land cleanly instead of
// fusing onto the partial line (which would make the fused line
// unparseable and drop the acked record on the next restart).
func TestTornWALWriteCrash(t *testing.T) {
	dir := t.TempDir()
	inject := harness.NewInjector(1, harness.Fault{
		Point: harness.PointWALAppend, Kind: harness.FaultTorn,
	})
	_, c1, teardown1 := durableServer(t, dir, inject)
	_, err := c1.Register(RegisterRequest{Name: "dw4096", Scale: 0.02})
	if se, ok := err.(*StatusError); !ok || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("torn-write register: %v, want a 503", err)
	}
	if ids := listIDs(t, c1); len(ids) != 0 {
		t.Fatalf("torn write acked a registration: %v", ids)
	}
	// Same process, after the rollback: this append must not fuse.
	reg := registerGen(t, c1, "dw4096", 0.02)
	teardown1()

	_, c2, teardown2 := durableServer(t, dir, nil)
	ids := listIDs(t, c2)
	if !ids[reg.ID] || len(ids) != 1 {
		t.Fatalf("append after in-process torn-write rollback did not survive restart: %v, want exactly %s", ids, reg.ID)
	}
	reg2 := registerGen(t, c2, "dw4096", 0.05)
	teardown2()

	_, c3, _ := durableServer(t, dir, nil)
	if ids := listIDs(t, c3); !ids[reg.ID] || !ids[reg2.ID] {
		t.Fatalf("recovery after torn-write rollback lost records: %v", ids)
	}
}

// TestSnapshotCarriesUncommittedAppend pins the append→insert window the
// compactor must bridge: a record whose WAL append succeeded but whose
// registry insert has not happened yet (commit not called) is invisible to
// the registry dump — a compaction running in that window must carry the
// record into the snapshot itself, or truncation erases the only durable
// copy of an about-to-be-acked registration.
func TestSnapshotCarriesUncommittedAppend(t *testing.T) {
	dir := t.TempDir()
	st, recs, err := OpenStore(dir, StoreOpts{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh store recovered %d records", len(recs))
	}
	// The registry insert has not happened yet: the dump sees nothing.
	st.dump = func() []walRecord { return nil }
	rec := &walRecord{ID: "feedfacefeedface", Rows: 2, Cols: 2,
		Format: "csr", Schedule: "static", Block: 4}
	commit, err := st.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	// Compaction fires inside the window.
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	commit()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	snap, err := loadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || len(snap.Records) != 1 || snap.Records[0].ID != rec.ID {
		t.Fatalf("compaction during the append→insert window dropped the record: %+v", snap)
	}
	st2, recs, err := OpenStore(dir, StoreOpts{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if len(recs) != 1 || recs[0].ID != rec.ID {
		t.Fatalf("restart after mid-window compaction lost the record: %+v", recs)
	}
}

// TestWALPartialTruncate pins compaction under traffic: truncating up to a
// covered seq rewrites the log down to just the uncovered tail instead of
// skipping truncation entirely, so the WAL shrinks on every snapshot even
// when appends keep landing mid-compaction.
func TestWALPartialTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	w, err := openWAL(path, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := func(seq uint64) *walRecord {
		return &walRecord{Seq: seq, ID: fmt.Sprintf("matrix%010d", seq),
			Rows: 2, Cols: 2, Format: "csr", Schedule: "static", Block: 4}
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := w.append(rec(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.truncate(2); err != nil {
		t.Fatal(err)
	}
	recs, torn, err := readWAL(path)
	if err != nil || torn {
		t.Fatalf("read after partial truncate: torn=%v err=%v", torn, err)
	}
	if len(recs) != 1 || recs[0].Seq != 3 {
		t.Fatalf("partial truncate kept %+v, want exactly seq 3", recs)
	}
	// The swapped-in file must keep accepting (and persisting) appends.
	if err := w.append(rec(4)); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err = readWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Seq != 3 || recs[1].Seq != 4 {
		t.Fatalf("append after partial truncate: %+v, want seqs 3,4", recs)
	}
}

// TestWALRejectsOversizedRecord: a record whose sealed form exceeds the
// replay limit must be refused at append time — before it is acked — since
// appending it would succeed and then read back as mid-file corruption on
// the next restart, dropping it and every record after it.
func TestWALRejectsOversizedRecord(t *testing.T) {
	old := maxWALRecordBytes
	maxWALRecordBytes = 4096
	defer func() { maxWALRecordBytes = old }()

	path := filepath.Join(t.TempDir(), "wal.jsonl")
	w, err := openWAL(path, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	big := &walRecord{Seq: 1, ID: "toolarge", Rows: 64, Cols: 64,
		Vals: make([]float64, 4096), Format: "csr", Schedule: "static", Block: 4}
	if err := w.append(big); err == nil {
		t.Fatal("record beyond the replay limit was appended; a restart would drop it as corruption")
	}
	if w.size() != 0 {
		t.Fatalf("rejected record left %d bytes in the log", w.size())
	}
	// The log stays usable for records the scanner can replay.
	small := &walRecord{Seq: 2, ID: "small", Rows: 2, Cols: 2,
		Format: "csr", Schedule: "static", Block: 4}
	if err := w.append(small); err != nil {
		t.Fatal(err)
	}
	recs, torn, err := readWAL(path)
	if err != nil || torn || len(recs) != 1 || recs[0].ID != "small" {
		t.Fatalf("log after oversize rejection: recs=%+v torn=%v err=%v", recs, torn, err)
	}
}

// TestCrashDuringSnapshotKeepsWAL injects a failure mid-snapshot-write
// (crash-at-point): the temp file is abandoned, the previous snapshot (if
// any) stays intact, the WAL is NOT truncated, and recovery loses nothing.
func TestCrashDuringSnapshotKeepsWAL(t *testing.T) {
	dir := t.TempDir()
	inject := harness.NewInjector(1, harness.Fault{
		Point: harness.PointSnapshot, Kind: harness.FaultErr,
		Err: errors.New("write: no space left on device"),
	})
	srv, c1, teardown1 := durableServer(t, dir, inject)
	reg1 := registerGen(t, c1, "dw4096", 0.02)
	reg2 := registerGen(t, c1, "dw4096", 0.05)

	if err := srv.store.Compact(); err == nil {
		t.Fatal("compaction with an injected snapshot fault reported success")
	}
	st := srv.store.Stats()
	if st.Snapshots != 0 || st.SnapshotFailures != 1 {
		t.Fatalf("after failed snapshot: %+v", st)
	}
	if st.WALBytes == 0 {
		t.Fatal("failed snapshot truncated the WAL — acked registrations at risk")
	}
	// The fault is spent: the next compaction must land.
	if err := srv.store.Compact(); err != nil {
		t.Fatalf("second compaction: %v", err)
	}
	teardown1()

	_, c2, _ := durableServer(t, dir, nil)
	ids := listIDs(t, c2)
	if !ids[reg1.ID] || !ids[reg2.ID] {
		t.Fatalf("crash-at-snapshot lost acked registrations: %v", ids)
	}
}

// TestRecoveredMultiplyLazilyPrepares pins the fast-recovery design: a
// restarted server lists recovered matrices as unprepared, and only the
// first multiply pays the preparation.
func TestRecoveredMultiplyLazilyPrepares(t *testing.T) {
	dir := t.TempDir()
	_, c1, teardown1 := durableServer(t, dir, nil)
	reg := registerGen(t, c1, "dw4096", 0.02)
	teardown1()

	_, c2, _ := durableServer(t, dir, nil)
	infos, err := c2.Matrices()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Prepared {
		t.Fatalf("recovered matrix should be listed unprepared: %+v", infos)
	}
	const k = 4
	b := matrix.NewDenseRand[float64](reg.Cols, k, 3)
	res, err := c2.Multiply(reg.ID, reg.Rows, b, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("first multiply after recovery claims a cache hit")
	}
	res, err = c2.Multiply(reg.ID, reg.Rows, b, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("second multiply after recovery missed the cache")
	}
}

// TestWALRecordGeneratorRoundTrip pins matrixFromRecord: both sourcing
// paths rebuild the exact registered matrix.
func TestWALRecordGeneratorRoundTrip(t *testing.T) {
	r := NewRegistry(0, 1)
	m := testMatrix(t, 40, 40, 0.05, 3)
	entry, _, err := r.Register(m)
	if err != nil {
		t.Fatal(err)
	}
	rec := recordFor(entry)
	if rec.Name != "" || len(rec.Vals) != entry.COO.NNZ() {
		t.Fatalf("spec-less matrix must serialize triplets: %+v", rec)
	}
	got, err := matrixFromRecord(rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != entry.ID || got.Plan() != entry.Plan() {
		t.Fatalf("round trip changed the plan: %+v != %+v", got.Plan(), entry.Plan())
	}
	if _, err := core.New(got.Plan().Format+"-omp", core.Options{}); err != nil {
		t.Fatalf("recovered format %q is not servable: %v", got.Plan().Format, err)
	}

	// Hash-mismatch detection: corrupt one value.
	rec.Vals[0] += 1
	if _, err := matrixFromRecord(rec, nil); err == nil {
		t.Fatal("corrupted triplets recovered without a hash mismatch")
	}
}
