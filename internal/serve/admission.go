package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrOverloaded is returned (and mapped to 429 + Retry-After) when the
// admission queue is full. Shedding at the door instead of queueing without
// bound keeps tail latency bounded: a request the server cannot start
// within its deadline is cheaper to reject immediately.
var ErrOverloaded = errors.New("serve: overloaded, request shed")

// admission is the server's concurrency gate: at most inFlight requests
// execute at once, at most queueDepth more wait for a slot, and everything
// beyond that is shed. Waiting is deadline-aware — a request whose context
// expires in the queue leaves without executing, the cooperative-
// cancellation contract the campaign harness established.
type admission struct {
	sem        chan struct{}
	inFlight   int64
	queueDepth int64
	admitted   atomic.Int64 // waiting + executing
	executing  atomic.Int64
	shed       atomic.Int64
	timeouts   atomic.Int64
}

func newAdmission(inFlight, queueDepth int) *admission {
	if inFlight < 1 {
		inFlight = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admission{
		sem:        make(chan struct{}, inFlight),
		inFlight:   int64(inFlight),
		queueDepth: int64(queueDepth),
	}
}

// acquire claims an execution slot. It fails fast with ErrOverloaded when
// the queue is full, and with ctx.Err() when the deadline expires while
// waiting. On success the caller must release().
func (a *admission) acquire(ctx context.Context) error {
	if a.admitted.Add(1) > a.inFlight+a.queueDepth {
		a.admitted.Add(-1)
		a.shed.Add(1)
		obsShed.Inc()
		return ErrOverloaded
	}
	obsQueueDepth.Set(float64(a.queued()))
	select {
	case a.sem <- struct{}{}:
		a.executing.Add(1)
		obsInflight.Set(float64(a.executing.Load()))
		obsQueueDepth.Set(float64(a.queued()))
		return nil
	case <-ctx.Done():
		a.admitted.Add(-1)
		a.timeouts.Add(1)
		obsTimeouts.Inc()
		obsQueueDepth.Set(float64(a.queued()))
		return ctx.Err()
	}
}

// release returns an execution slot.
func (a *admission) release() {
	<-a.sem
	a.admitted.Add(-1)
	a.executing.Add(-1)
	obsInflight.Set(float64(a.executing.Load()))
	obsQueueDepth.Set(float64(a.queued()))
}

// queued is the number of admitted requests still waiting for a slot.
func (a *admission) queued() int64 {
	q := a.admitted.Load() - a.executing.Load()
	if q < 0 {
		q = 0
	}
	return q
}
