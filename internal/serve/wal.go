package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"sync"
	"time"

	"repro/internal/advisor"
	"repro/internal/harness"
)

// The registry write-ahead log: one fsynced JSONL record per successful
// registration, appended before the registration is acked. A record carries
// everything recovery needs to rebuild the matrix and its serving plan
// without redoing registration work — the content hash, dims, the canonical
// triplets (or the generator spec that deterministically regenerates them),
// and the advisor report. Prepared formats are deliberately NOT persisted:
// they are pure functions of the canonical COO and re-prepare lazily on
// first use, which keeps recovery fast and the WAL small.
//
// Each record carries a CRC32 over its own JSON (computed with the crc
// field zeroed), so corruption is detected per record, and the file is
// plain JSONL, so a crash can at worst tear the final line — the same
// append/flush idiom internal/harness/journal.go established, hardened
// with per-append fsync.

// walRecord is one durable registration.
type walRecord struct {
	// Seq is the append sequence number; snapshots record the last seq
	// they cover so replay knows where the tail starts.
	Seq uint64 `json:"seq"`
	// ID is the content-addressed matrix ID (recovery re-verifies it).
	ID   string `json:"id"`
	Rows int    `json:"rows"`
	Cols int    `json:"cols"`
	// Name/Scale is a generator spec: recovery regenerates the matrix
	// deterministically instead of storing its triplets.
	Name  string  `json:"name,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	// RowIdx/ColIdx/Vals are the canonical row-major triplets for
	// matrices with no generator spec (MTX uploads).
	RowIdx []int32   `json:"row_idx,omitempty"`
	ColIdx []int32   `json:"col_idx,omitempty"`
	Vals   []float64 `json:"vals,omitempty"`
	// The serving plan chosen at registration — recovery reuses it
	// rather than re-running the advisor.
	Format   string         `json:"format"`
	Schedule string         `json:"schedule"`
	Block    int            `json:"block"`
	Report   advisor.Report `json:"report"`
	// CRC is the IEEE CRC32 of this record's JSON with CRC itself zeroed.
	CRC uint32 `json:"crc"`
}

// sealRecord marshals rec with its CRC filled in.
func sealRecord(rec *walRecord) ([]byte, error) {
	rec.CRC = 0
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("serve: wal marshal: %w", err)
	}
	rec.CRC = crc32.ChecksumIEEE(body)
	sealed, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("serve: wal marshal: %w", err)
	}
	return append(sealed, '\n'), nil
}

// verifyRecord checks rec's CRC by re-marshalling with it zeroed. JSON
// encoding of the record struct is deterministic (no maps), so the bytes
// reproduce exactly.
func verifyRecord(rec *walRecord) error {
	want := rec.CRC
	rec.CRC = 0
	body, err := json.Marshal(rec)
	rec.CRC = want
	if err != nil {
		return fmt.Errorf("serve: wal remarshal: %w", err)
	}
	if got := crc32.ChecksumIEEE(body); got != want {
		return fmt.Errorf("serve: wal record %d (%s): crc mismatch %08x != %08x",
			rec.Seq, rec.ID, got, want)
	}
	return nil
}

// wal is the append side of the registry log.
type wal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	seq    uint64
	bytes  int64
	sync   bool
	inject *harness.Injector
}

// openWAL opens (creating if needed) the log at path for appending,
// repairing a torn trailing record the same way harness journals do.
// nextSeq is where the sequence counter resumes (recovery passes the max
// seq it observed plus one).
func openWAL(path string, nextSeq uint64, fsync bool, inject *harness.Injector) (*wal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: open wal: %w", err)
	}
	if _, err := harness.RepairTornTail(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("serve: wal %s: %w", path, err)
	}
	size, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("serve: wal seek: %w", err)
	}
	return &wal{f: f, path: path, seq: nextSeq, bytes: size, sync: fsync, inject: inject}, nil
}

// append seals and writes one record, fsyncs it, and returns its assigned
// sequence number. The record is durable when append returns nil — the
// invariant the register handler relies on to never ack before durability.
// Fault points: PointWALAppend before the write (FaultErr simulates disk
// full; FaultTorn persists only half the record then fails, as a crash
// mid-write would) and PointWALSync before the fsync.
func (w *wal) append(rec *walRecord) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq++
	rec.Seq = w.seq
	data, err := sealRecord(rec)
	if err != nil {
		return 0, err
	}
	if err := w.inject.Fire("wal|"+rec.ID, harness.PointWALAppend); err != nil {
		if errors.Is(err, harness.ErrTornWrite) {
			// Persist a prefix, as a crash mid-write would, then fail.
			if n, werr := w.f.Write(data[:len(data)/2]); werr == nil {
				w.bytes += int64(n)
				w.f.Sync()
			}
		}
		return 0, fmt.Errorf("serve: wal append: %w", err)
	}
	n, err := w.f.Write(data)
	w.bytes += int64(n)
	if err != nil {
		return 0, fmt.Errorf("serve: wal append: %w", err)
	}
	if w.sync {
		if err := w.inject.Fire("wal|"+rec.ID, harness.PointWALSync); err != nil {
			return 0, fmt.Errorf("serve: wal fsync: %w", err)
		}
		start := time.Now()
		if err := w.f.Sync(); err != nil {
			return 0, fmt.Errorf("serve: wal fsync: %w", err)
		}
		obsWALFsyncSeconds.Observe(time.Since(start).Seconds())
	}
	obsWALAppends.Inc()
	obsWALBytes.Set(float64(w.bytes))
	return rec.Seq, nil
}

// truncate empties the log — called after a snapshot that covers every
// record currently in it. upTo guards the race with concurrent appends: the
// caller passes the last seq its snapshot covers, and truncation is skipped
// if anything newer landed in the meantime (the next snapshot catches it).
func (w *wal) truncate(upTo uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seq != upTo {
		return nil
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("serve: wal truncate: %w", err)
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return fmt.Errorf("serve: wal seek: %w", err)
	}
	w.bytes = 0
	obsWALBytes.Set(0)
	return nil
}

// lastSeq reports the newest assigned sequence number.
func (w *wal) lastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// size reports the log's current byte length.
func (w *wal) size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}

func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// readWAL loads every intact record from path, in file order. A missing
// file is an empty log. A torn or CRC-corrupt final record is skipped (the
// crash window per-append fsync bounds us to); corruption earlier in the
// file stops the read there and returns the intact prefix alongside the
// error, so recovery can keep what provably survived.
func readWAL(path string) (recs []walRecord, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("serve: read wal: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 256*1024*1024)
	line := 0
	var pendingErr error
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		// A bad record is only tolerable as the final line.
		if pendingErr != nil {
			return recs, true, pendingErr
		}
		var rec walRecord
		if err := json.Unmarshal(text, &rec); err != nil {
			pendingErr = fmt.Errorf("serve: wal %s line %d: %w", path, line, err)
			continue
		}
		if err := verifyRecord(&rec); err != nil {
			pendingErr = fmt.Errorf("serve: wal %s line %d: %w", path, line, err)
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return recs, false, fmt.Errorf("serve: read wal: %w", err)
	}
	return recs, pendingErr != nil, nil
}
