package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/advisor"
	"repro/internal/harness"
	"repro/internal/tune"
)

// The registry write-ahead log: one fsynced JSONL record per successful
// registration, appended before the registration is acked. A record carries
// everything recovery needs to rebuild the matrix and its serving plan
// without redoing registration work — the content hash, dims, the canonical
// triplets (or the generator spec that deterministically regenerates them),
// and the advisor report. Prepared formats are deliberately NOT persisted:
// they are pure functions of the canonical COO and re-prepare lazily on
// first use, which keeps recovery fast and the WAL small.
//
// Each record carries a CRC32 over its own JSON (computed with the crc
// field zeroed), so corruption is detected per record, and the file is
// plain JSONL, so a crash can at worst tear the final line — the same
// append/flush idiom internal/harness/journal.go established, hardened
// with per-append fsync. While the process is live the log additionally
// guarantees it always ends on a record boundary: a failed or short write
// is rolled back to the record's start offset, so a later append can never
// fuse onto a partial line.

// maxWALRecordBytes bounds one sealed WAL record on both sides of the log:
// append refuses anything larger, and readWAL sizes its scanner to it, so
// any record that lands in the log is guaranteed replayable. It is derived
// from the register endpoint's body cap: JSON-encoding a triplet upload
// inflates the MTX text by a small constant factor (indices and
// shortest-round-trip floats roughly match their text form, plus field
// names and commas), so 8× the body cap clears the largest record
// sealRecord can produce with room to spare. A var only so tests can lower
// it.
var maxWALRecordBytes = 8 * maxRegisterBody

// walKindProfile marks a tuner-profile record; the empty kind is a
// registration (the only kind PR-6 logs wrote, so old logs replay as-is).
const walKindProfile = "profile"

// walKindMutate is one acked mutation batch: the canonicalized ops (Mut*
// arrays) plus the epoch the batch produced. Replay applies batches in
// epoch order on top of the matrix's registration record; a batch at or
// below the current epoch is a duplicate and skips.
const walKindMutate = "mutate"

// walKindCompact marks a completed compaction: every mutation through
// Epoch was merged into a new canonical base whose content hash is
// BaseHash. Replay merges the accumulated overlay, verifies the hash,
// and clears the overlay — so recovery never re-applies pre-compaction
// mutation records to the post-compaction base.
const walKindCompact = "compact"

// walRecord is one durable record: a registration (Kind "") or a learned
// tuning profile (Kind "profile", Profile set, keyed by the same matrix
// ID; replay keeps the newest per matrix).
type walRecord struct {
	// Seq is the append sequence number, assigned by the Store; snapshots
	// record the last seq they cover so replay knows where the tail starts.
	Seq uint64 `json:"seq"`
	// Kind discriminates record types; "" is a registration.
	Kind string `json:"kind,omitempty"`
	// ID is the content-addressed matrix ID (recovery re-verifies it).
	ID   string `json:"id"`
	Rows int    `json:"rows"`
	Cols int    `json:"cols"`
	// Name/Scale is a generator spec: recovery regenerates the matrix
	// deterministically instead of storing its triplets.
	Name  string  `json:"name,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	// RowIdx/ColIdx/Vals are the canonical row-major triplets for
	// matrices with no generator spec (MTX uploads).
	RowIdx []int32   `json:"row_idx,omitempty"`
	ColIdx []int32   `json:"col_idx,omitempty"`
	Vals   []float64 `json:"vals,omitempty"`
	// The serving plan — recovery reuses it rather than re-running the
	// advisor. Variant/PlanVersion track tuner promotions; both empty on
	// pre-tuner records (replay then derives the variant from the plan).
	Format      string         `json:"format"`
	Schedule    string         `json:"schedule"`
	Block       int            `json:"block"`
	Variant     string         `json:"variant,omitempty"`
	PlanVersion int64          `json:"plan_version,omitempty"`
	Report      advisor.Report `json:"report"`
	// Profile is the tuner's learned state for Kind "profile" records.
	Profile *tune.Profile `json:"profile,omitempty"`
	// Epoch is the mutation epoch: for "mutate" records, the epoch the
	// batch produced; for "compact" records, the boundary merged through;
	// for registration records written after mutations (snapshot dumps,
	// cluster imports), the matrix's current epoch.
	Epoch int64 `json:"epoch,omitempty"`
	// CompactEpoch, on mutated registration records, is how far the base
	// has been compacted (the recovered state's compactedThrough).
	CompactEpoch int64 `json:"compact_epoch,omitempty"`
	// BaseHash is the content hash of the current canonical base when it
	// no longer matches ID (the matrix was compacted): "compact" records
	// journal the post-merge hash for verification, and mutated
	// registration records carry it so recovery re-verifies the triplets.
	BaseHash string `json:"base_hash,omitempty"`
	// MutRowIdx/MutColIdx/MutVals/MutDel are overlay ops in canonical
	// order: a "mutate" record's batch, or a mutated registration record's
	// pending overlay.
	MutRowIdx []int32   `json:"mut_row_idx,omitempty"`
	MutColIdx []int32   `json:"mut_col_idx,omitempty"`
	MutVals   []float64 `json:"mut_vals,omitempty"`
	MutDel    []bool    `json:"mut_del,omitempty"`
	// CRC is the IEEE CRC32 of this record's JSON with CRC itself zeroed.
	CRC uint32 `json:"crc"`
}

// sealRecord marshals rec with its CRC filled in.
func sealRecord(rec *walRecord) ([]byte, error) {
	rec.CRC = 0
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("serve: wal marshal: %w", err)
	}
	rec.CRC = crc32.ChecksumIEEE(body)
	sealed, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("serve: wal marshal: %w", err)
	}
	return append(sealed, '\n'), nil
}

// verifyRecord checks rec's CRC by re-marshalling with it zeroed. JSON
// encoding of the record struct is deterministic (no maps), so the bytes
// reproduce exactly.
func verifyRecord(rec *walRecord) error {
	want := rec.CRC
	rec.CRC = 0
	body, err := json.Marshal(rec)
	rec.CRC = want
	if err != nil {
		return fmt.Errorf("serve: wal remarshal: %w", err)
	}
	if got := crc32.ChecksumIEEE(body); got != want {
		return fmt.Errorf("serve: wal record %d (%s): crc mismatch %08x != %08x",
			rec.Seq, rec.ID, got, want)
	}
	return nil
}

// wal is the append side of the registry log. Sequence numbers are owned by
// the Store (which must keep them consistent with its in-flight set); the
// wal only guarantees durable, boundary-clean writes.
type wal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	bytes  int64
	sync   bool
	inject *harness.Injector
	// damaged poisons the log after a failed rollback left the file ending
	// mid-record: every later append fails rather than fuse onto the
	// partial line. Cleared by a truncate (which rewrites the file) or a
	// reopen (whose RepairTornTail removes the damage).
	damaged error
}

// openWAL opens (creating if needed) the log at path for appending,
// repairing a torn trailing record the same way harness journals do.
func openWAL(path string, fsync bool, inject *harness.Injector) (*wal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: open wal: %w", err)
	}
	if _, err := harness.RepairTornTail(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("serve: wal %s: %w", path, err)
	}
	size, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("serve: wal seek: %w", err)
	}
	return &wal{f: f, path: path, bytes: size, sync: fsync, inject: inject}, nil
}

// append seals and writes one record (whose Seq the caller assigned) and
// fsyncs it. The record is durable when append returns nil — the invariant
// the register handler relies on to never ack before durability. A failed
// or short write rolls the file back to the record boundary so the process
// can keep serving. Fault points: PointWALAppend before the write (FaultErr
// simulates disk full; FaultTorn persists only half the record then fails,
// as a crash mid-write would, before the rollback restores the boundary)
// and PointWALSync before the fsync.
func (w *wal) append(rec *walRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.damaged != nil {
		return w.damaged
	}
	data, err := sealRecord(rec)
	if err != nil {
		return err
	}
	if len(data) > maxWALRecordBytes {
		// A record too large for the replay scanner must never reach the
		// file: it would append and ack fine, then be dropped as mid-file
		// corruption (taking every later record with it) on restart.
		return fmt.Errorf("serve: wal append %s: record is %d bytes, beyond the %d replay limit",
			rec.ID, len(data), maxWALRecordBytes)
	}
	start := w.bytes
	if err := w.inject.Fire("wal|"+rec.ID, harness.PointWALAppend); err != nil {
		if errors.Is(err, harness.ErrTornWrite) {
			// Persist a prefix, as a crash mid-write would, then restore the
			// record boundary — the process is still alive, and the next
			// append must not fuse onto the partial line.
			if n, werr := w.f.Write(data[:len(data)/2]); werr == nil {
				w.bytes += int64(n)
				w.f.Sync()
			}
			w.rollback(start)
		}
		return fmt.Errorf("serve: wal append: %w", err)
	}
	n, err := w.f.Write(data)
	w.bytes += int64(n)
	if err != nil || n != len(data) {
		w.rollback(start)
		if err == nil {
			err = io.ErrShortWrite
		}
		return fmt.Errorf("serve: wal append: %w", err)
	}
	if w.sync {
		if err := w.inject.Fire("wal|"+rec.ID, harness.PointWALSync); err != nil {
			return fmt.Errorf("serve: wal fsync: %w", err)
		}
		start := time.Now()
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("serve: wal fsync: %w", err)
		}
		obsWALFsyncSeconds.Observe(time.Since(start).Seconds())
	}
	obsWALAppends.Inc()
	obsWALBytes.Set(float64(w.bytes))
	return nil
}

// rollback restores the record boundary after a failed or short write by
// truncating back to the record's start offset. If even that fails, the
// file may end mid-record; the log then poisons itself so later appends
// fail loudly instead of fusing the next record onto the partial line
// (recovery's RepairTornTail clears the damage on reopen).
func (w *wal) rollback(start int64) {
	if err := w.f.Truncate(start); err != nil {
		w.damaged = fmt.Errorf("serve: wal ends mid-record and rollback failed: %w", err)
		return
	}
	w.bytes = start
	obsWALBytes.Set(float64(start))
}

// truncate drops every record a snapshot covers (seq <= upTo). When nothing
// newer landed the file is simply emptied; otherwise the uncovered tail is
// rewritten to a fresh file that is atomically renamed over the log, so the
// WAL shrinks on every successful compaction even under sustained
// registration traffic instead of growing until a quiet window. A crash
// anywhere leaves either the old complete log or the new tail, and both
// replay correctly against the just-published snapshot. A torn or
// unparseable line is never an acked record (append rolls failed writes
// back), so the rewrite drops it — which also clears a damaged log.
func (w *wal) truncate(upTo uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	data, err := os.ReadFile(w.path)
	if err != nil {
		return fmt.Errorf("serve: wal truncate: %w", err)
	}
	var keep []byte
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		body := bytes.TrimSpace(line)
		if len(body) == 0 {
			continue
		}
		var head struct {
			Seq uint64 `json:"seq"`
		}
		if json.Unmarshal(body, &head) != nil || head.Seq <= upTo {
			continue
		}
		keep = append(keep, body...)
		keep = append(keep, '\n')
	}
	if len(keep) == 0 {
		if err := w.f.Truncate(0); err != nil {
			return fmt.Errorf("serve: wal truncate: %w", err)
		}
		if _, err := w.f.Seek(0, 0); err != nil {
			return fmt.Errorf("serve: wal seek: %w", err)
		}
		w.bytes = 0
		w.damaged = nil
		obsWALBytes.Set(0)
		return nil
	}
	tmp := w.path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("serve: wal rewrite: %w", err)
	}
	if _, err := tf.Write(keep); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: wal rewrite: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: wal rewrite fsync: %w", err)
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: wal rewrite close: %w", err)
	}
	// Open the append handle on the temp file first, then rename: the
	// handle follows the inode, so there is no window where the log's path
	// exists without a writable handle behind it.
	nf, err := os.OpenFile(tmp, os.O_APPEND|os.O_RDWR, 0o644)
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: wal reopen: %w", err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: wal swap: %w", err)
	}
	w.f.Close()
	w.f = nf
	w.bytes = int64(len(keep))
	w.damaged = nil
	obsWALBytes.Set(float64(w.bytes))
	return syncDir(filepath.Dir(w.path))
}

// size reports the log's current byte length.
func (w *wal) size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}

func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// readWAL loads every intact record from path, in file order. A missing
// file is an empty log. A torn or CRC-corrupt final record is skipped (the
// crash window per-append fsync bounds us to); corruption earlier in the
// file stops the read there and returns the intact prefix alongside the
// error, so recovery can keep what provably survived.
func readWAL(path string) (recs []walRecord, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("serve: read wal: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	// The cap must exceed anything append admits, or an acked record would
	// read back as corruption; append enforces maxWALRecordBytes for
	// exactly this reason.
	sc.Buffer(make([]byte, 0, 64*1024), maxWALRecordBytes)
	line := 0
	var pendingErr error
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		// A bad record is only tolerable as the final line.
		if pendingErr != nil {
			return recs, true, pendingErr
		}
		var rec walRecord
		if err := json.Unmarshal(text, &rec); err != nil {
			pendingErr = fmt.Errorf("serve: wal %s line %d: %w", path, line, err)
			continue
		}
		if err := verifyRecord(&rec); err != nil {
			pendingErr = fmt.Errorf("serve: wal %s line %d: %w", path, line, err)
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return recs, false, fmt.Errorf("serve: read wal: %w", err)
	}
	return recs, pendingErr != nil, nil
}
