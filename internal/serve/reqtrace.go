package serve

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Request-scoped tracing glue: request-ID minting, the X-Spmm-Timing header
// codec, the JSON wire shape of trace.ReqRecord, and the /v1/trace/requests
// endpoint. The cluster router reuses all of it (same IDs, same header, same
// wire records) so one request reads identically on every hop.

// reqIDPrefix makes IDs minted by different processes collide-free without
// any hot-path randomness: the prefix is drawn once at startup, and each
// mint is one atomic increment.
var (
	reqIDPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Fall back to the startup time; uniqueness within the process
			// still holds via the counter.
			return fmt.Sprintf("t%x", time.Now().UnixNano()&0xffffffff)
		}
		return hex.EncodeToString(b[:])
	}()
	reqIDSeq atomic.Uint64
)

// MintRequestID returns a process-unique request ID ("<prefix>-<seq>"). The
// edge of a request's path mints one when the client did not supply
// X-Spmm-Request-Id; every later hop propagates it unchanged.
func MintRequestID() string {
	return reqIDPrefix + "-" + strconv.FormatUint(reqIDSeq.Add(1), 10)
}

// TimingPhase is one aggregated phase of an X-Spmm-Timing header.
type TimingPhase struct {
	Phase string
	Ms    float64
}

// Timing is the parsed X-Spmm-Timing breakdown: per-phase milliseconds in
// server recording order plus the request total at header-write time.
type Timing struct {
	Phases  []TimingPhase
	TotalMs float64
}

// Ms returns one phase's milliseconds (0 when absent).
func (t Timing) Ms(phase string) float64 {
	for _, p := range t.Phases {
		if p.Phase == phase {
			return p.Ms
		}
	}
	return 0
}

// SumMs totals the per-phase milliseconds (excluding the total entry).
func (t Timing) SumMs() float64 {
	var sum float64
	for _, p := range t.Phases {
		sum += p.Ms
	}
	return sum
}

// Valid reports whether the header carried any phases.
func (t Timing) Valid() bool { return len(t.Phases) > 0 }

// FormatTiming renders a record as an X-Spmm-Timing value: same-named spans
// are summed (a request that prepared twice still reads one "prepare" entry),
// phases keep first-recorded order, and "total" closes the list:
//
//	queue=0.012;prepare=0.001;batch=0.850;kernel=1.254;total=2.202
//
// extraPhase/extraNs append one more (possibly still-open) phase — the
// multiply handler uses it to include the response encode it has just
// measured before the header must be flushed.
func FormatTiming(rec trace.ReqRecord, extraPhase string, extraNs int64) string {
	type agg struct {
		name string
		ns   int64
	}
	var order []agg
	idx := map[string]int{}
	add := func(name string, ns int64) {
		if i, ok := idx[name]; ok {
			order[i].ns += ns
			return
		}
		idx[name] = len(order)
		order = append(order, agg{name: name, ns: ns})
	}
	for _, sp := range rec.Spans {
		add(sp.Name, sp.Dur)
	}
	if extraPhase != "" {
		add(extraPhase, extraNs)
	}
	var b strings.Builder
	for _, a := range order {
		fmt.Fprintf(&b, "%s=%.3f;", a.name, float64(a.ns)/1e6)
	}
	fmt.Fprintf(&b, "total=%.3f", float64(rec.TotalNs)/1e6)
	return b.String()
}

// ParseTiming decodes an X-Spmm-Timing value. ok is false when the value is
// empty or malformed.
func ParseTiming(s string) (Timing, bool) {
	if s == "" {
		return Timing{}, false
	}
	var t Timing
	for _, part := range strings.Split(s, ";") {
		name, val, found := strings.Cut(part, "=")
		if !found {
			return Timing{}, false
		}
		ms, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return Timing{}, false
		}
		if name == "total" {
			t.TotalMs = ms
			continue
		}
		t.Phases = append(t.Phases, TimingPhase{Phase: name, Ms: ms})
	}
	return t, len(t.Phases) > 0 || t.TotalMs > 0
}

// RequestTracePhase is the JSON wire shape of one trace.ReqSpan.
type RequestTracePhase struct {
	Phase   string  `json:"phase"`
	Detail  string  `json:"detail,omitempty"`
	StartMs float64 `json:"start_ms"`
	Ms      float64 `json:"ms"`
	Arg     int64   `json:"arg,omitempty"`
}

// RequestTraceRecord is the JSON wire shape of one trace.ReqRecord, served
// by GET /v1/trace/requests on both spmmserve and spmmrouter.
type RequestTraceRecord struct {
	ID      string              `json:"id"`
	Matrix  string              `json:"matrix"`
	Start   time.Time           `json:"start"`
	TotalMs float64             `json:"total_ms"`
	Error   string              `json:"error,omitempty"`
	Phases  []RequestTracePhase `json:"phases"`
}

// TraceRecordWire converts a finished record to its wire shape.
func TraceRecordWire(rec trace.ReqRecord) RequestTraceRecord {
	out := RequestTraceRecord{
		ID: rec.ID, Matrix: rec.Subject, Start: rec.Start,
		TotalMs: float64(rec.TotalNs) / 1e6, Error: rec.Error,
		Phases: make([]RequestTracePhase, 0, len(rec.Spans)),
	}
	for _, sp := range rec.Spans {
		out.Phases = append(out.Phases, RequestTracePhase{
			Phase: sp.Name, Detail: sp.Detail,
			StartMs: float64(sp.Start) / 1e6, Ms: float64(sp.Dur) / 1e6,
			Arg: sp.Arg,
		})
	}
	return out
}

// ReqSpans converts a wire record back into span form (ns offsets) — the
// router's stitcher pulls replica records over HTTP and aligns these onto
// its own timeline.
func (r RequestTraceRecord) ReqSpans() []trace.ReqSpan {
	spans := make([]trace.ReqSpan, 0, len(r.Phases))
	for _, p := range r.Phases {
		spans = append(spans, trace.ReqSpan{
			Name: p.Phase, Detail: p.Detail,
			Start: int64(p.StartMs * 1e6), Dur: int64(p.Ms * 1e6),
			Arg: p.Arg,
		})
	}
	return spans
}

// TraceRequestsQuery evaluates a /v1/trace/requests query against a ring:
// ?id= exact request ID, ?matrix= exact matrix ID, ?min_ms= minimum total
// duration, ?n= result cap (default 64). Newest records first.
func TraceRequestsQuery(rr *trace.Requests, q url.Values) ([]RequestTraceRecord, error) {
	f := trace.ReqFilter{ID: q.Get("id"), Subject: q.Get("matrix"), Limit: 64}
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			return nil, fmt.Errorf("serve: bad min_ms %q", v)
		}
		f.MinDur = time.Duration(ms * float64(time.Millisecond))
	}
	if v := q.Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("serve: bad n %q", v)
		}
		f.Limit = n
	}
	recs := rr.Snapshot(f)
	out := make([]RequestTraceRecord, 0, len(recs))
	for _, rec := range recs {
		out = append(out, TraceRecordWire(rec))
	}
	return out, nil
}

// handleTraceRequests serves the bounded ring of recent request records.
func (s *Server) handleTraceRequests(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	obsRequests.Inc()
	recs, err := TraceRequestsQuery(s.reqs, r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, recs)
}

// RequestTraces exposes the request-record ring (nil when request tracing is
// disabled) — tests and the in-process cluster harness read it directly.
func (s *Server) RequestTraces() *trace.Requests { return s.reqs }

// beginRequest opens a request timeline for a multiply. When request tracing
// is enabled it adopts the client-supplied ID or mints one; when disabled it
// returns ("", nil) and every downstream instrumentation call no-ops.
func (s *Server) beginRequest(r *http.Request, subject string) (string, *trace.Req) {
	if !s.reqs.Enabled() {
		return "", nil
	}
	rid := r.Header.Get(HeaderRequestID)
	if rid == "" {
		rid = MintRequestID()
	}
	return rid, s.reqs.Begin(rid, subject)
}

// failRequest seals a traced request that ended in an error.
func (s *Server) failRequest(req *trace.Req, err error) {
	if req == nil {
		return
	}
	if err != nil {
		req.SetError(err.Error())
	}
	s.finishRequest(req)
}

// finishRequest seals a traced request: the record lands in the ring, its
// phases feed the spmm_serve_phase_seconds histograms, and a request slower
// than Config.SlowRequest emits one request-ID-correlated slog line.
func (s *Server) finishRequest(req *trace.Req) {
	if req == nil {
		return
	}
	rec := req.Finish()
	observePhaseSeconds(rec)
	if s.cfg.SlowRequest > 0 && s.log != nil && time.Duration(rec.TotalNs) >= s.cfg.SlowRequest {
		s.log.Warn("slow request", slowAttrs(rec)...)
	}
}

// slowAttrs flattens a record into slog attributes: request identity, total,
// and one "<phase>_ms" attribute per aggregated phase.
func slowAttrs(rec trace.ReqRecord) []any {
	attrs := []any{"rid", rec.ID, "matrix", rec.Subject,
		"total_ms", float64(rec.TotalNs) / 1e6}
	sums := map[string]int64{}
	var order []string
	for _, sp := range rec.Spans {
		if _, ok := sums[sp.Name]; !ok {
			order = append(order, sp.Name)
		}
		sums[sp.Name] += sp.Dur
	}
	sort.Strings(order)
	for _, name := range order {
		attrs = append(attrs, name+"_ms", float64(sums[name])/1e6)
	}
	if rec.Error != "" {
		attrs = append(attrs, "err", rec.Error)
	}
	return attrs
}
