package serve

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/harness"
)

// Store is the registry's durability engine: a fsynced write-ahead log of
// registrations plus a background snapshotter that compacts the log into a
// CRC-guarded snapshot and truncates it. Opening a store IS recovery — it
// replays snapshot + WAL tail and hands the merged record set back so the
// server can rebuild its registry before accepting traffic. Prepared
// formats re-prepare lazily on first use, so recovery cost is parsing, not
// format conversion.
type Store struct {
	dir    string
	wal    *wal
	every  int // appends between automatic snapshots; <= 0 disables
	inject *harness.Injector
	log    *slog.Logger

	// dump serializes the current registry for compaction; the server
	// points it at Registry.dumpRecords.
	dump func() []walRecord

	mu sync.Mutex
	// seq is the last assigned registration sequence number. The store —
	// not the wal — owns it, so the compactor can read the truncation
	// boundary and the in-flight set under one lock.
	seq      uint64
	inflight map[uint64]*inflightRec
	pending  int           // appends since the last snapshot
	snapDone chan struct{} // non-nil while a compaction is running

	recovered        int
	recoverySeconds  float64
	snapshots        int64
	snapshotFailures int64
}

// inflightRec is a registration between sequence assignment and its commit
// callback: it may not be visible to the registry dump yet (the insert
// happens after Append returns), so the compactor carries durable in-flight
// records into snapshots itself — otherwise a compaction landing in that
// window would truncate the only durable copy of an acked registration.
type inflightRec struct {
	rec     *walRecord
	durable bool // WAL write + fsync completed
}

// StoreOpts tunes OpenStore.
type StoreOpts struct {
	// SnapshotEvery compacts the WAL after this many appends (<= 0
	// disables automatic snapshots; the WAL then grows until Compact).
	SnapshotEvery int
	// NoFsync skips the per-append fsync — registrations then survive a
	// process crash but not a machine crash.
	NoFsync bool
	// Injector arms durability fault points (tests only).
	Injector *harness.Injector
	// Log receives recovery and compaction notes; nil discards them.
	Log *slog.Logger
}

// OpenStore opens (creating if needed) the data directory and recovers its
// contents: the snapshot if it verifies, else a warning and full WAL
// replay; then the WAL tail, tolerating a torn final record. The returned
// records are deduplicated by content hash in first-seen order — ready to
// rebuild a registry.
func OpenStore(dir string, opts StoreOpts) (*Store, []walRecord, error) {
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("serve: store dir: %w", err)
	}
	st := &Store{
		dir:      dir,
		every:    opts.SnapshotEvery,
		inject:   opts.Injector,
		log:      opts.Log,
		inflight: map[uint64]*inflightRec{},
	}

	snap, err := loadSnapshot(dir)
	if err != nil {
		// A corrupt snapshot is not fatal: the WAL is the ground truth and
		// is only truncated after a snapshot verifiably landed. Worst case
		// here is re-replaying records the snapshot had compacted.
		st.warn("snapshot unreadable, falling back to full WAL replay", "err", err)
		snap = nil
	}

	walPath := filepath.Join(dir, "wal.jsonl")
	walRecs, torn, err := readWAL(walPath)
	if err != nil {
		// Mid-file corruption: keep the intact prefix, lose the rest. This
		// should be impossible with fsynced appends — surface it loudly.
		st.warn("WAL corrupt beyond its final record; recovering intact prefix",
			"records", len(walRecs), "err", err)
	} else if torn {
		st.warn("WAL ended in a torn record (crash mid-append); skipped it")
	}

	// Merge: snapshot first, then the WAL. Content-addressed IDs make
	// replay idempotent, so registration records the snapshot already
	// covers (seq <= LastSeq, or duplicate registrations) dedup naturally —
	// keeping, when the same handle appears twice, the record with the
	// highest mutation epoch (a snapshot dump or cluster import of a
	// mutated matrix supersedes the original registration), replacing in
	// place so ordering is preserved. Profile records share the matrix ID
	// but are state, not identity: the NEWEST one per matrix wins (later
	// promotions supersede earlier profiles). Mutate and compact records
	// are an ordered journal, never deduplicated — replay applies them in
	// sequence and skips the ones the base record already covers by epoch.
	var nextSeq uint64
	regAt := map[string]int{}
	profAt := map[string]int{}
	var merged []walRecord
	add := func(rec walRecord) {
		if rec.Seq > nextSeq {
			nextSeq = rec.Seq
		}
		switch rec.Kind {
		case walKindProfile:
			if i, ok := profAt[rec.ID]; ok {
				merged[i] = rec
				return
			}
			profAt[rec.ID] = len(merged)
		case walKindMutate, walKindCompact:
			merged = append(merged, rec)
			return
		default:
			if i, ok := regAt[rec.ID]; ok {
				if rec.Epoch >= merged[i].Epoch {
					merged[i] = rec
				}
				return
			}
			regAt[rec.ID] = len(merged)
		}
		merged = append(merged, rec)
	}
	if snap != nil {
		if snap.LastSeq > nextSeq {
			nextSeq = snap.LastSeq
		}
		for _, rec := range snap.Records {
			add(rec)
		}
	}
	for _, rec := range walRecs {
		add(rec)
	}

	st.wal, err = openWAL(walPath, !opts.NoFsync, opts.Injector)
	if err != nil {
		return nil, nil, err
	}
	st.seq = nextSeq
	st.recovered = len(regAt) // registrations, not profiles or mutations
	st.recoverySeconds = time.Since(start).Seconds()
	obsRecoverySeconds.Set(st.recoverySeconds)
	obsRecoveredMatrices.Set(float64(st.recovered))
	if st.log != nil && (st.recovered > 0 || snap != nil) {
		st.log.Info("registry recovered", "dir", dir, "matrices", st.recovered,
			"from_snapshot", snap != nil, "wal_tail", len(walRecs),
			"seconds", st.recoverySeconds)
	}
	return st, merged, nil
}

// Append durably logs one registration. When it returns a nil error the
// record is fsynced to disk — only then may the registration be acked. The
// returned commit callback MUST be invoked once the record's matrix is
// visible to the registry dump (its insert completed, or a concurrent
// registration of the same matrix already made it visible); until then the
// compactor treats the record as in-flight and carries it into snapshots
// itself.
func (st *Store) Append(rec *walRecord) (commit func(), err error) {
	st.mu.Lock()
	st.seq++
	rec.Seq = st.seq
	st.inflight[rec.Seq] = &inflightRec{rec: rec}
	st.mu.Unlock()

	if err := st.wal.append(rec); err != nil {
		st.mu.Lock()
		delete(st.inflight, rec.Seq)
		st.mu.Unlock()
		obsWALAppendErrors.Inc()
		return nil, err
	}

	st.mu.Lock()
	st.inflight[rec.Seq].durable = true
	st.pending++
	trigger := st.every > 0 && st.pending >= st.every && st.snapDone == nil
	if trigger {
		st.snapDone = make(chan struct{})
		st.pending = 0
	}
	st.mu.Unlock()
	if trigger {
		go st.compact()
	}
	seq := rec.Seq
	return func() {
		st.mu.Lock()
		delete(st.inflight, seq)
		st.mu.Unlock()
	}, nil
}

// Compact synchronously snapshots the registry and truncates the WAL — the
// background trigger's logic, exposed for shutdown and tests. If a
// compaction is already running, Compact joins it (waits for it to finish)
// instead of starting a second.
func (st *Store) Compact() error {
	st.mu.Lock()
	if done := st.snapDone; done != nil {
		st.mu.Unlock()
		<-done
		return nil
	}
	st.snapDone = make(chan struct{})
	st.mu.Unlock()
	return st.compact()
}

// compact writes the snapshot and truncates the covered WAL records. The
// truncation boundary and the in-flight set are read under one lock, so
// every sequence number at or below the boundary is either already visible
// to the registry dump (its commit ran after the insert) or merged in from
// the in-flight set — the snapshot can only over-cover, never under-cover,
// which is what makes truncation safe. An in-flight record whose WAL write
// has not finished instead caps the boundary below its seq: it is not yet
// durable, so it must be neither snapshotted nor have its log record
// truncated.
func (st *Store) compact() error {
	defer func() {
		st.mu.Lock()
		close(st.snapDone)
		st.snapDone = nil
		st.mu.Unlock()
	}()
	st.mu.Lock()
	upTo := st.seq
	var carry []walRecord
	for seq, inf := range st.inflight {
		if !inf.durable {
			if seq <= upTo {
				upTo = seq - 1
			}
			continue
		}
		carry = append(carry, *inf.rec)
	}
	st.mu.Unlock()

	recs := st.dump()
	// Replay order matters for the journal kinds, and the inflight map
	// iterates randomly — restore append order first.
	sort.Slice(carry, func(i, j int) bool { return carry[i].Seq < carry[j].Seq })
	// Dedup carry against the dump by (kind, id): a profile record shares
	// its matrix's ID, and one must never shadow the other. Mutate and
	// compact records are an ordered journal and always carry — replay
	// dedups them by epoch against the dump's registration record, which
	// may or may not already reflect them depending on when the dump ran.
	key := func(rec *walRecord) string { return rec.Kind + "\x00" + rec.ID }
	seen := make(map[string]bool, len(recs))
	for i := range recs {
		seen[key(&recs[i])] = true
	}
	for i := range carry {
		switch {
		case carry[i].Kind == walKindMutate || carry[i].Kind == walKindCompact:
			recs = append(recs, carry[i])
		case carry[i].Kind == "" && carry[i].Epoch > 0:
			// A mutated-state registration (cluster import): the dump may
			// hold an older copy of the handle; replay keeps whichever
			// epoch is newest, so append unconditionally.
			recs = append(recs, carry[i])
		default:
			if !seen[key(&carry[i])] {
				seen[key(&carry[i])] = true
				recs = append(recs, carry[i])
			}
		}
	}
	snap := &snapshot{Version: 1, LastSeq: upTo, Records: recs}
	start := time.Now()
	if err := writeSnapshot(st.dir, snap, st.inject); err != nil {
		st.mu.Lock()
		st.snapshotFailures++
		st.mu.Unlock()
		obsSnapshotErrors.Inc()
		st.warn("snapshot failed; WAL keeps growing", "err", err)
		return err
	}
	if err := st.wal.truncate(upTo); err != nil {
		st.warn("WAL truncate after snapshot failed", "err", err)
		return err
	}
	st.mu.Lock()
	st.snapshots++
	st.mu.Unlock()
	obsSnapshots.Inc()
	obsSnapshotSeconds.Observe(time.Since(start).Seconds())
	if st.log != nil {
		st.log.Info("registry snapshot", "dir", st.dir,
			"matrices", len(snap.Records), "last_seq", upTo,
			"seconds", time.Since(start).Seconds())
	}
	return nil
}

// Close waits out any in-flight compaction and closes the WAL.
func (st *Store) Close() error {
	for {
		st.mu.Lock()
		done := st.snapDone
		st.mu.Unlock()
		if done == nil {
			break
		}
		<-done
	}
	return st.wal.close()
}

// Stats snapshots the durability counters.
func (st *Store) Stats() DurabilityStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return DurabilityStats{
		Enabled:          true,
		Dir:              st.dir,
		WALBytes:         st.wal.size(),
		LastSeq:          st.seq,
		Snapshots:        st.snapshots,
		SnapshotFailures: st.snapshotFailures,
		Recovered:        st.recovered,
		RecoverySeconds:  st.recoverySeconds,
	}
}

func (st *Store) warn(msg string, args ...any) {
	if st.log != nil {
		st.log.Warn(msg, args...)
	}
}
