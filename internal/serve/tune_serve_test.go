package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/tune"
)

// Tests for the tuner/registry seam: promotion re-preparation through the
// single-flight cache path, plan/format consistency under promotion churn,
// and the promoted profile surviving crash recovery (WAL tail and
// snapshot paths both).

// altVariant picks a servable pool variant different from current, so a
// test promotion always changes the plan. Block-free formats only — the
// registered plan's Block is meaningful just for bcsr/bell.
func altVariant(current string) string {
	if current != "ell/opts-pool" {
		return "ell/opts-pool"
	}
	return "csr/opts-pool"
}

// TestPromoteReprepare pins the promotion contract on the registry: the
// promoted plan bumps the version, the stale cached format is replaced
// through the normal miss path (exactly one extra prepare, synchronous
// warm), the byte gauge tracks only the new resident format, and
// subsequent lookups are version-matched hits.
func TestPromoteReprepare(t *testing.T) {
	r := NewRegistry(0, 2)
	ctx := context.Background()
	m, _, err := r.Register(testMatrix(t, 80, 80, 0.03, 5))
	if err != nil {
		t.Fatal(err)
	}

	sv0, hit, err := r.Prepared(ctx, m.ID)
	if err != nil || hit {
		t.Fatalf("first Prepared: hit=%v err=%v", hit, err)
	}
	k0, p0 := sv0.Kernel, sv0.Plan
	if p0.Version != 1 || k0.Format() != p0.Format {
		t.Fatalf("initial plan %+v served by a %s kernel", p0, k0.Format())
	}
	if got := r.Stats().Prepares; got != 1 {
		t.Fatalf("prepares = %d, want 1", got)
	}

	tgt := altVariant(p0.Variant)
	plan, err := r.Promote(ctx, m.ID, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Variant != tgt || plan.Version != 2 {
		t.Fatalf("promoted plan %+v, want %s v2", plan, tgt)
	}
	// Promote warms synchronously: exactly one more prepare, and the stale
	// format's bytes are released.
	if got := r.Stats().Prepares; got != 2 {
		t.Fatalf("prepares after promote = %d, want 2 (one warm re-prepare)", got)
	}

	sv1, hit, err := r.Prepared(ctx, m.ID)
	if err != nil || !hit {
		t.Fatalf("post-promotion Prepared: hit=%v err=%v — warm promote must leave a resident format", hit, err)
	}
	k1, p1 := sv1.Kernel, sv1.Plan
	if p1 != plan {
		t.Fatalf("served plan %+v != promoted plan %+v", p1, plan)
	}
	if k1.Format() != p1.Format {
		t.Fatalf("kernel format %s does not match plan format %s", k1.Format(), p1.Format)
	}
	if got := r.Stats().Prepares; got != 2 {
		t.Fatalf("version-matched hit re-prepared: prepares = %d", got)
	}
	if got, want := r.Stats().Bytes, int64(k1.Bytes()); got != want {
		t.Fatalf("cache bytes = %d, want %d — the stale format's bytes must be released on promotion", got, want)
	}

	// An unservable variant is refused without touching the plan.
	if _, err := r.Promote(ctx, m.ID, "no-such/variant"); err == nil {
		t.Fatal("promoting an unknown variant succeeded")
	}
	if got := m.Plan(); got != plan {
		t.Fatalf("failed promotion changed the plan: %+v", got)
	}
}

// TestPromoteChurn hammers Prepared from many readers while a promoter
// cycles the plan — under -race this is the audit of the mutable-plan
// cache path. Every lookup must return a kernel whose format matches the
// plan it was returned with (never a half-built or mismatched format), and
// the byte gauge must end exactly equal to the resident footprints.
func TestPromoteChurn(t *testing.T) {
	r := NewRegistry(0, 2)
	ctx := context.Background()
	ids := make([]string, 2)
	for i, seed := range []int64{3, 4} {
		m, _, err := r.Register(testMatrix(t, 80, 80, 0.03, seed))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = m.ID
	}

	cycle := []string{"csr/opts-pool", "ell/opts-pool", "coo/opts-pool", "sellcs/opts-balanced-pool"}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 24; i++ {
			for _, id := range ids {
				if _, err := r.Promote(ctx, id, cycle[i%len(cycle)]); err != nil {
					t.Errorf("promote %s to %s: %v", id, cycle[i%len(cycle)], err)
					return
				}
			}
		}
	}()

	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[(w+i)%len(ids)]
				sv, _, err := r.Prepared(ctx, id)
				if err != nil {
					t.Errorf("Prepared(%s): %v", id, err)
					return
				}
				if sv.Kernel.Format() != sv.Plan.Format {
					t.Errorf("Prepared(%s) returned a %s kernel for plan %+v", id, sv.Kernel.Format(), sv.Plan)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Quiescent accounting: the gauge equals the sum of resident bytes.
	r.mu.Lock()
	var sum int64
	for _, el := range r.entries {
		sum += el.Value.(*cacheEntry).bytes
	}
	used := r.used
	r.mu.Unlock()
	if used != sum {
		t.Fatalf("cache gauge %d != sum of resident entries %d after promotion churn", used, sum)
	}

	// Every matrix still serves a plan-consistent kernel.
	for _, id := range ids {
		sv, _, err := r.Prepared(ctx, id)
		if err != nil || sv.Kernel.Format() != sv.Plan.Format {
			t.Fatalf("post-churn Prepared(%s): format %s, plan %+v, err %v", id, sv.Kernel.Format(), sv.Plan, err)
		}
	}
}

// scriptedTuneConfig builds a serve tune config whose execution is the
// real variant runner (so results stay bitwise-correct against live
// responses) but whose reported durations are scripted: the variant in
// target is "measured" 1000x faster than everything else. Timing becomes
// deterministic while correctness checking stays real.
func scriptedTuneConfig(target *atomic.Value) *tune.Config {
	return &tune.Config{
		Duty:       0.5,
		MinSamples: 1,
		QueueDepth: 256,
		Threads:    1,
		Seed:       1,
		Exec: func(variant string, in *kernels.VariantInput, out *matrix.Dense[float64]) (time.Duration, error) {
			err := kernels.RunVariant(variant, in, out)
			if tv, _ := target.Load().(string); tv == variant {
				return time.Microsecond, err
			}
			return time.Millisecond, err
		},
	}
}

// TestTunedPromotionSurvivesRestart is the durability contract of the
// tentpole, end to end over HTTP: live traffic drives a measured
// promotion, every response (before, during and after the plan switch) is
// bitwise-identical to the serial reference, and after a restart — from
// the WAL tail, and again from a snapshot — the server comes back serving
// the promoted variant with the tuner's learned profile warm.
func TestTunedPromotionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	var target atomic.Value
	cfg := func() Config {
		return Config{
			Threads:       1,
			DataDir:       dir,
			SnapshotEvery: -1,
			Tune:          scriptedTuneConfig(&target),
		}
	}

	s1, c1, teardown1 := newTestServer(t, cfg())
	reg := registerGen(t, c1, "dw4096", 0.02)
	tgt := altVariant(reg.Variant)
	target.Store(tgt)

	const k = 8
	ref, rp := serialReference(t, reg, k)
	b := matrix.NewDenseRand[float64](reg.Cols, k, 5)
	refC := matrix.NewDense[float64](reg.Rows, k)
	if err := ref.Calculate(b, refC, rp); err != nil {
		t.Fatal(err)
	}

	mustMultiply := func(c *Client) *MultiplyResult {
		t.Helper()
		res, err := c.Multiply(reg.ID, reg.Rows, b, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if diff, _ := res.C.MaxAbsDiff(refC); diff != 0 {
			t.Fatalf("response differs from the serial %s reference by %g", reg.Format, diff)
		}
		return res
	}

	promoted := false
	for i := 0; i < 300 && !promoted; i++ {
		mustMultiply(c1)
		s1.Tuner().Flush()
		promoted = s1.Tuner().Stats().Promotions >= 1
	}
	if !promoted {
		t.Fatal("tuner never promoted the scripted-fastest variant")
	}
	if res := mustMultiply(c1); res.Variant != tgt {
		t.Fatalf("post-promotion response served %s, want promoted %s", res.Variant, tgt)
	}
	ts, err := c1.Tune()
	if err != nil || !ts.Enabled || ts.Promotions < 1 {
		t.Fatalf("/v1/tune after promotion: %+v err=%v", ts, err)
	}
	teardown1()

	// Restart #1: recovery replays the WAL tail (registration + profile).
	checkRecovered := func(s *Server, c *Client, stage string) {
		t.Helper()
		m, ok := s.Registry().Get(reg.ID)
		if !ok {
			t.Fatalf("%s: matrix lost", stage)
		}
		plan := m.Plan()
		if plan.Variant != tgt || plan.Version != 2 {
			t.Fatalf("%s: recovered plan %+v, want promoted %s v2", stage, plan, tgt)
		}
		prof := s.Tuner().Profile(reg.ID)
		if prof == nil {
			t.Fatalf("%s: tuner profile lost", stage)
		}
		if prof.Incumbent != tgt || len(prof.History) < 1 || prof.History[len(prof.History)-1].To != tgt {
			t.Fatalf("%s: recovered profile %+v does not record the promotion to %s", stage, prof, tgt)
		}
		if res := mustMultiply(c); res.Variant != tgt {
			t.Fatalf("%s: recovered server served %s, want %s", stage, res.Variant, tgt)
		}
	}

	s2, c2, teardown2 := newTestServer(t, cfg())
	checkRecovered(s2, c2, "WAL-tail recovery")
	// Compact so the next recovery must come through the snapshot path —
	// the profile record has to survive the snapshot/carry dedup too.
	if err := s2.store.Compact(); err != nil {
		t.Fatal(err)
	}
	teardown2()

	s3, c3, _ := newTestServer(t, cfg())
	checkRecovered(s3, c3, "snapshot recovery")
}
