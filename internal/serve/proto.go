package serve

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/advisor"
	"repro/internal/matrix"
)

// The wire protocol: control-plane messages are JSON, data-plane payloads
// (dense B panels in, C panels out) are raw little-endian float64 arrays in
// row-major order — the same layout matrix.Dense stores, so encode/decode is
// one pass with no per-element framing. Metadata about a multiply rides in
// response headers (see the X-Spmm-* constants) so the body stays pure
// payload.

// Multiply metadata headers.
const (
	// HeaderFormat reports the sparse format the multiply dispatched on.
	HeaderFormat = "X-Spmm-Format"
	// HeaderCache is "hit" when the prepared format was already cached,
	// "prepare" when this request (or its batch) had to prepare it.
	HeaderCache = "X-Spmm-Cache"
	// HeaderBatchWidth is the number of requests coalesced into the
	// dispatch that served this response (1 = unbatched).
	HeaderBatchWidth = "X-Spmm-Batch-Width"
	// HeaderBatchK is the total dense-column count of that dispatch.
	HeaderBatchK = "X-Spmm-Batch-K"
	// HeaderVariant reports the kernel variant (the kernels registry name,
	// e.g. "csr/opts-balanced-pool") the multiply's serving plan executed —
	// the identity the online tuner promotes.
	HeaderVariant = "X-Spmm-Variant"
	// HeaderDeadlineMs is the request header carrying the client's
	// deadline in milliseconds; absent means the server default applies.
	HeaderDeadlineMs = "X-Spmm-Deadline-Ms"
	// HeaderReplica is set by the cluster router (cmd/spmmrouter) on every
	// proxied response: the name of the replica that actually served it.
	// Single-node servers never set it.
	HeaderReplica = "X-Spmm-Replica"
	// HeaderRequestID carries the distributed-tracing request ID. The edge
	// (router or server) mints one when the client did not supply it; every
	// hop propagates it unchanged and echoes it on the response.
	HeaderRequestID = "X-Spmm-Request-Id"
	// HeaderTiming is the per-phase latency breakdown of a multiply,
	// "phase=ms;...;total=ms" (see FormatTiming/ParseTiming). Only set when
	// request tracing is enabled.
	HeaderTiming = "X-Spmm-Timing"
	// HeaderEpoch is the mutation epoch the multiply's result reflects:
	// exactly the mutations acked through that epoch are visible, no more,
	// no fewer. 0 (or absent) means the matrix has never been mutated.
	HeaderEpoch = "X-Spmm-Epoch"
	// HeaderContentHash is the content hash of the state the multiply
	// served: the matrix ID until the first post-mutation compaction
	// re-bases it (see MutateResponse.Hash for the versioning rule).
	// Both headers are omitted on never-mutated matrices — epoch 0's
	// hash is the request path's ID, and the clean multiply path keeps
	// its baseline per-response header budget.
	HeaderContentHash = "X-Spmm-Content-Hash"
)

// RegisterRequest uploads a matrix. Exactly one source must be set: a
// generator spec (Name, optionally Scale), inline MatrixMarket text (MTX),
// or raw COO triplets (Rows/Cols/RowIdx/ColIdx/Vals — the shape
// ExportRecord carries, so a matrix exported from one replica re-registers
// on another byte-for-byte; the cluster rebalancer moves shards this way).
type RegisterRequest struct {
	// Name is a generator-registry matrix name (gen.Names).
	Name string `json:"name,omitempty"`
	// Scale shrinks the generator spec; 0 means 1.0 (full size).
	Scale float64 `json:"scale,omitempty"`
	// MTX is inline MatrixMarket text.
	MTX string `json:"mtx,omitempty"`
	// Rows/Cols/RowIdx/ColIdx/Vals carry a raw COO upload (canonical or
	// not; the registry canonicalizes). Set Rows and Cols to use them.
	Rows   int       `json:"rows,omitempty"`
	Cols   int       `json:"cols,omitempty"`
	RowIdx []int32   `json:"row_idx,omitempty"`
	ColIdx []int32   `json:"col_idx,omitempty"`
	Vals   []float64 `json:"vals,omitempty"`
	// ServeID, when set, imports a mutated matrix under an existing handle
	// (the cluster rebalance path for matrices whose served state has
	// diverged from their original registration). The triplets above are
	// then the CURRENT base (hashing to BaseHash, which the receiver
	// verifies), Epoch/CompactEpoch the exporter's version counters, and
	// the Ov* arrays its pending overlay. If the receiver already holds
	// ServeID at the same or a newer epoch the import is an idempotent
	// no-op; an older copy is replaced wholesale.
	ServeID      string    `json:"serve_id,omitempty"`
	Epoch        int64     `json:"epoch,omitempty"`
	CompactEpoch int64     `json:"compact_epoch,omitempty"`
	BaseHash     string    `json:"base_hash,omitempty"`
	OvRowIdx     []int32   `json:"ov_row_idx,omitempty"`
	OvColIdx     []int32   `json:"ov_col_idx,omitempty"`
	OvVals       []float64 `json:"ov_vals,omitempty"`
	OvDel        []bool    `json:"ov_del,omitempty"`
}

// Triplets reports whether the request carries a raw COO upload.
func (r *RegisterRequest) Triplets() bool { return r.Rows > 0 || r.Cols > 0 || len(r.Vals) > 0 }

// Import reports whether the request is a mutated-state import (adopting
// an existing serving handle) rather than a content-addressed registration.
func (r *RegisterRequest) Import() bool { return r.ServeID != "" }

// RegisterResponse describes the registered matrix. Registration is
// idempotent: the ID is content-addressed, so re-uploading the same matrix
// returns the same ID with Existed set.
type RegisterResponse struct {
	ID   string `json:"id"`
	Rows int    `json:"rows"`
	Cols int    `json:"cols"`
	NNZ  int    `json:"nnz"`
	// Format is the sparse format the advisor selected for serving.
	Format string `json:"format"`
	// Schedule is the selected work partition ("static" or "balanced").
	Schedule string `json:"schedule"`
	// Block is the BCSR/BELL block edge multiplies will use.
	Block int `json:"block"`
	// Variant is the kernel variant the serving plan currently executes —
	// the advisor's pick at first registration, possibly a tuner promotion
	// on a re-registration of an already-served matrix.
	Variant string `json:"variant"`
	// PlanVersion is the serving-plan version (1 = the advisor's plan;
	// each tuner promotion increments it).
	PlanVersion int64 `json:"plan_version"`
	// Existed reports that the matrix was already registered.
	Existed bool `json:"existed"`
	// Epoch/Hash report the mutation state after an import registration
	// (zero-valued for plain content-addressed registrations).
	Epoch int64  `json:"epoch,omitempty"`
	Hash  string `json:"hash,omitempty"`
	// FormatBytes is the prepared format's footprint.
	FormatBytes int `json:"format_bytes"`
	// Advice is the full advisor report behind the format selection — the
	// same struct `spmmadvise -json` emits.
	Advice advisor.Report `json:"advice"`
}

// MatrixInfo is one registry listing entry.
type MatrixInfo struct {
	ID       string `json:"id"`
	Rows     int    `json:"rows"`
	Cols     int    `json:"cols"`
	NNZ      int    `json:"nnz"`
	Format   string `json:"format"`
	Schedule string `json:"schedule"`
	Block    int    `json:"block"`
	// Name/Scale are the generator-spec provenance ("" for direct
	// uploads) — the registry metadata a cluster router needs to
	// re-materialize the matrix on another replica without the triplets.
	Name  string  `json:"name,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	// Variant/PlanVersion identify the serving plan currently installed
	// (promotions by the online tuner bump the version).
	Variant     string `json:"variant"`
	PlanVersion int64  `json:"plan_version"`
	// Prepared reports whether the prepared format currently cached matches
	// the current plan version (a just-promoted matrix reads false until
	// its re-prepare lands).
	Prepared bool `json:"prepared"`
	// Epoch is the mutation epoch (0 = never mutated); Hash is the content
	// hash of the served state (== ID until the first compaction re-bases
	// it); OverlayNNZ is the pending delta-overlay entry count awaiting
	// compaction.
	Epoch      int64  `json:"epoch,omitempty"`
	Hash       string `json:"hash"`
	OverlayNNZ int    `json:"overlay_nnz,omitempty"`
}

// MutateOp is one nonzero mutation: an insert/update (Del false, Val the
// new value) or a delete (Del true, Val ignored) at (Row, Col). Within a
// batch, later ops at the same coordinate win.
type MutateOp struct {
	Row int32   `json:"row"`
	Col int32   `json:"col"`
	Val float64 `json:"val,omitempty"`
	Del bool    `json:"del,omitempty"`
}

// MutateRequest is the body of POST /v1/matrices/{id}/mutate: one atomic
// batch of mutations. The batch is applied, made durable, and acked as a
// unit; the response's epoch identifies the state every subsequent
// multiply at that epoch reflects.
type MutateRequest struct {
	Ops []MutateOp `json:"ops"`
}

// MutateResponse acks one applied mutation batch.
type MutateResponse struct {
	ID string `json:"id"`
	// Epoch is the mutation epoch the batch produced: the cumulative count
	// of acked batches since registration. Compaction merges the overlay
	// into a new base but never rewinds the epoch.
	Epoch int64 `json:"epoch"`
	// Hash is the content hash of the served state: the canonical base
	// hash when the overlay is empty (after compaction it is the hash of
	// the merged triplets — re-registering them anywhere reproduces it),
	// or "<base>+e<epoch>" while mutations are pending on top of it.
	Hash string `json:"hash"`
	// OverlayNNZ is the overlay's entry count after the batch; Applied is
	// how many canonicalized ops the batch contributed (duplicates within
	// the batch collapse, last-op-wins).
	OverlayNNZ int `json:"overlay_nnz"`
	Applied    int `json:"applied"`
}

// CompactResponse answers POST /v1/matrices/{id}/compact — a forced
// synchronous compaction (the background compactor uses the same path).
// Compacted is false when there was nothing to merge.
type CompactResponse struct {
	ID        string `json:"id"`
	Compacted bool   `json:"compacted"`
	Epoch     int64  `json:"epoch"`
	Hash      string `json:"hash"`
}

// CacheStats is the prepared-format cache section of StatsResponse.
type CacheStats struct {
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	CapacityBytes int64 `json:"capacity_bytes"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Prepares      int64 `json:"prepares"`
	Evictions     int64 `json:"evictions"`
}

// DurabilityStats is the durability section of StatsResponse; the zero
// value (Enabled false) means the server runs without a data dir.
type DurabilityStats struct {
	Enabled bool   `json:"enabled"`
	Dir     string `json:"dir,omitempty"`
	// WALBytes is the current write-ahead-log length (drops to ~0 after
	// each snapshot compaction).
	WALBytes int64 `json:"wal_bytes"`
	// LastSeq is the newest WAL sequence number assigned.
	LastSeq          uint64 `json:"last_seq"`
	Snapshots        int64  `json:"snapshots"`
	SnapshotFailures int64  `json:"snapshot_failures"`
	// Recovered is how many registrations startup replay restored.
	Recovered       int     `json:"recovered"`
	RecoverySeconds float64 `json:"recovery_seconds"`
}

// StatsResponse is the /v1/stats snapshot.
type StatsResponse struct {
	Matrices        int             `json:"matrices"`
	Requests        int64           `json:"requests"`
	Multiplies      int64           `json:"multiplies"`
	Batches         int64           `json:"batches"`
	BatchedRequests int64           `json:"batched_requests"`
	Shed            int64           `json:"shed"`
	Timeouts        int64           `json:"timeouts"`
	InFlight        int64           `json:"in_flight"`
	Queued          int64           `json:"queued"`
	Cache           CacheStats      `json:"cache"`
	Durability      DurabilityStats `json:"durability"`
	// Variants counts multiplies served per kernel variant name — the
	// externally-visible trace of tuner promotions.
	Variants map[string]int64 `json:"variants,omitempty"`
	// Tune summarizes the online tuner; nil when tuning is disabled (the
	// full decision trail lives at /v1/tune).
	Tune *TuneSummary `json:"tune,omitempty"`
	// Delta summarizes the mutation subsystem; nil until the first
	// mutation lands.
	Delta *DeltaStats `json:"delta,omitempty"`
}

// DeltaStats is the /v1/stats digest of the mutation subsystem.
type DeltaStats struct {
	// Mutations is acked mutation batches; Ops is canonicalized ops
	// applied across them.
	Mutations int64 `json:"mutations"`
	Ops       int64 `json:"ops"`
	// Mutated is how many registered matrices currently carry a non-empty
	// overlay; OverlayNNZ sums their pending overlay entries.
	Mutated    int   `json:"mutated"`
	OverlayNNZ int64 `json:"overlay_nnz"`
	// Compactions counts completed background/forced compactions;
	// CompactionErrors counts ones whose re-prepare failed (the merged
	// base still swapped in; the prepared format rebuilds lazily).
	Compactions      int64 `json:"compactions"`
	CompactionErrors int64 `json:"compaction_errors"`
}

// TuneSummary is the /v1/stats digest of the online tuner's counters.
type TuneSummary struct {
	Enabled    bool  `json:"enabled"`
	Trials     int64 `json:"trials"`
	Promotions int64 `json:"promotions"`
	Rejects    int64 `json:"rejects"`
	Dropped    int64 `json:"dropped"`
	Stale      int64 `json:"stale"`
}

// ExportRecord is the registry-metadata export of one matrix
// (GET /v1/matrices/{id}/export): the canonical triplets plus the
// generator-spec provenance. It is exactly what another replica needs to
// register the identical matrix — the cluster rebalancer pulls it from a
// live holder when a shard moves and its provenance has no generator spec.
type ExportRecord struct {
	ID    string  `json:"id"`
	Rows  int     `json:"rows"`
	Cols  int     `json:"cols"`
	Name  string  `json:"name,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	// RowIdx/ColIdx/Vals are the CURRENT canonical base triplets
	// (row-major sorted, deduped). For a never-compacted matrix they hash
	// back to ID; after a compaction they hash to BaseHash instead.
	RowIdx []int32   `json:"row_idx"`
	ColIdx []int32   `json:"col_idx"`
	Vals   []float64 `json:"vals"`
	// Epoch/CompactEpoch/BaseHash/Hash carry the mutation state (all
	// zero-valued for a never-mutated matrix): the mutation epoch, the
	// epoch the base was last compacted through, the base triplets' own
	// content hash when it differs from ID, and the served state's
	// current content hash.
	Epoch        int64  `json:"epoch,omitempty"`
	CompactEpoch int64  `json:"compact_epoch,omitempty"`
	BaseHash     string `json:"base_hash,omitempty"`
	Hash         string `json:"hash,omitempty"`
	// OvRowIdx/OvColIdx/OvVals/OvDel are the pending overlay's entries in
	// canonical order (OvDel true = tombstone). Importing base + overlay
	// reproduces the exporter's served bits exactly.
	OvRowIdx []int32   `json:"ov_row_idx,omitempty"`
	OvColIdx []int32   `json:"ov_col_idx,omitempty"`
	OvVals   []float64 `json:"ov_vals,omitempty"`
	OvDel    []bool    `json:"ov_del,omitempty"`
}

// Mutated reports whether the export carries diverged (mutated) state that
// a plain content-addressed re-registration cannot reproduce.
func (e *ExportRecord) Mutated() bool { return e.Epoch > 0 || e.BaseHash != "" }

// Request turns an export back into a registration request. It prefers the
// triplets (always present, always exact) so the receiving replica needs no
// generator determinism guarantees. For a mutated export the request
// carries the full mutation state: the receiver adopts the exporter's
// handle (ServeID), verifies the base hash, and installs base + overlay
// bitwise-identical.
func (e *ExportRecord) Request() RegisterRequest {
	return RegisterRequest{
		Rows: e.Rows, Cols: e.Cols,
		RowIdx: e.RowIdx, ColIdx: e.ColIdx, Vals: e.Vals,
		ServeID: e.ID, Epoch: e.Epoch, CompactEpoch: e.CompactEpoch,
		BaseHash: e.BaseHash,
		OvRowIdx: e.OvRowIdx, OvColIdx: e.OvColIdx,
		OvVals: e.OvVals, OvDel: e.OvDel,
	}
}

// PrepareResponse answers the warm-prepare endpoint
// (POST /v1/matrices/{id}/prepare): Cache is "hit" when the plan-current
// prepared format was already resident, "prepare" when this call built it.
// The cluster rebalancer calls it on a shard's new owner before flipping
// the ring, so the first routed multiply is a cache hit.
type PrepareResponse struct {
	ID          string `json:"id"`
	Cache       string `json:"cache"`
	Format      string `json:"format"`
	Variant     string `json:"variant"`
	FormatBytes int    `json:"format_bytes"`
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// WritePanel writes the first k columns of d as raw little-endian float64s,
// row-major: rows*k values, no framing.
func WritePanel(w io.Writer, d *matrix.Dense[float64], k int) error {
	if k < 0 || k > d.Cols {
		return fmt.Errorf("serve: panel k=%d outside [0, %d]", k, d.Cols)
	}
	buf := make([]byte, k*8)
	for i := 0; i < d.Rows; i++ {
		row := d.Row(i)
		for j := 0; j < k; j++ {
			binary.LittleEndian.PutUint64(buf[j*8:], math.Float64bits(row[j]))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadPanel reads a rows×k raw little-endian float64 panel written by
// WritePanel. It fails if the stream holds fewer than rows*k values; extra
// trailing bytes are the caller's concern.
func ReadPanel(r io.Reader, rows, k int) (*matrix.Dense[float64], error) {
	if rows < 0 || k < 0 {
		return nil, fmt.Errorf("serve: negative panel shape %dx%d", rows, k)
	}
	d := matrix.NewDense[float64](rows, k)
	buf := make([]byte, k*8)
	for i := 0; i < rows; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("serve: short panel read at row %d: %w", i, err)
		}
		row := d.Row(i)
		for j := 0; j < k; j++ {
			row[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[j*8:]))
		}
	}
	return d, nil
}
