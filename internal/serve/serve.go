// Package serve is the suite's network serving layer: SpMM as a service.
// It exposes the existing pipeline — format conversion, advisor-driven
// format selection, the pooled parallel kernels — as a long-running
// HTTP/JSON (+ binary panel payload) service, turning the thesis' central
// economic observation into an architecture: the best format depends on the
// matrix, and preparation cost amortizes only across repeated multiplies,
// so a server that prepares once per registered matrix and multiplies many
// times is exactly where format selection pays.
//
// The server owns four pieces:
//
//   - A matrix registry with content-addressed IDs (upload MatrixMarket
//     text or a generator spec; identical matrices collapse to one entry).
//   - A bytes-bounded LRU cache of prepared formats, chosen per matrix by
//     internal/advisor and warmed (balanced partitions included) so
//     steady-state multiplies perform zero preparation.
//   - A multiply endpoint with request batching: requests against the same
//     matrix inside a short window are stacked into one wider-k dispatch
//     through the kernels' Opts layer on the shared parallel.Pool.
//   - Admission control: a bounded in-flight semaphore plus a bounded
//     queue; overload sheds with 429 + Retry-After, deadlines cancel
//     queued requests cooperatively, and shutdown drains in-flight work.
//
// Every stage is instrumented through internal/obs (request, batch,
// queue-depth and cache metrics on the same monitor `spmmbench -serve`
// uses) and internal/trace (one "batch" span per coalesced dispatch).
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/advisor"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/matrix"
	"repro/internal/mmio"
	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/internal/tune"
)

// Config tunes a Server. The zero value is usable: defaults fill in New.
type Config struct {
	// Threads is the kernel thread count per dispatch (default
	// parallel.MaxThreads).
	Threads int
	// CacheBytes bounds the prepared-format cache (<= 0: unbounded).
	CacheBytes int64
	// BatchWindow is how long the first request of a batch waits for
	// company; 0 disables batching (every request dispatches alone).
	BatchWindow time.Duration
	// MaxBatchK caps the total dense columns of one coalesced dispatch
	// (default 512). A single request at or above the cap bypasses the
	// window.
	MaxBatchK int
	// MaxK caps one request's panel width (default 1024).
	MaxK int
	// MaxInFlight bounds concurrently executing multiplies (default
	// 2×Threads — enough overlap to keep the batcher fed).
	MaxInFlight int
	// QueueDepth bounds admitted-but-waiting multiplies; beyond it the
	// server sheds with 429 (default 4×MaxInFlight).
	QueueDepth int
	// DefaultDeadline applies when a request carries no deadline header
	// (default 30s).
	DefaultDeadline time.Duration
	// Pool, when non-nil, is the worker pool kernels dispatch on; nil
	// makes the server own one sized to Threads.
	Pool *parallel.Pool
	// Tracer receives batch and kernel spans; nil disables tracing.
	Tracer *trace.Tracer
	// ReqTraceRing enables request-scoped tracing: the server keeps this
	// many recent per-request phase records (GET /v1/trace/requests), sets
	// the X-Spmm-Request-Id / X-Spmm-Timing response headers, and feeds the
	// spmm_serve_phase_seconds histograms. 0 disables it entirely — the
	// multiply hot path then pays only nil checks (0 allocs/op).
	ReqTraceRing int
	// SlowRequest, when > 0 with request tracing on, logs one structured
	// line (request ID + per-phase breakdown) for every multiply slower
	// than this threshold.
	SlowRequest time.Duration
	// Log receives serving lifecycle notes; nil discards them.
	Log *slog.Logger
	// Clock drives the batch-window timers; nil means the wall clock.
	// Tests inject clock.NewFake() so window expiry is a deterministic
	// Advance, not a sleep.
	Clock clock.Clock

	// DataDir enables crash-safe serving: registrations are journaled to
	// a fsynced WAL in this directory before they are acked, compacted
	// into a CRC-guarded snapshot, and replayed on startup. "" keeps the
	// registry purely in memory.
	DataDir string
	// SnapshotEvery compacts the WAL after this many registrations
	// (default 64; < 0 disables automatic snapshots).
	SnapshotEvery int
	// NoFsync skips the per-registration fsync — acks then survive a
	// process crash but not a machine crash.
	NoFsync bool
	// Injector arms durability fault points (tests only).
	Injector *harness.Injector

	// CompactRatio triggers a background overlay compaction once a mutated
	// matrix's pending overlay reaches this fraction of its base nonzeros
	// (default 0.25; negative disables the ratio trigger).
	CompactRatio float64
	// CompactCost is the break-even multiple for the measured trigger: a
	// compaction fires once the accumulated overlay-apply time reaches
	// CompactCost × the last measured base-preparation time (default 1.0;
	// negative disables the measured trigger).
	CompactCost float64

	// Tune, when non-nil, enables the online auto-tuner (internal/tune):
	// live multiplies are shadow-measured on a duty cycle and a measured-
	// faster kernel variant is promoted into the matrix's serving plan.
	// Threads, Promote, Persist and Log are filled by the server; the
	// caller sets policy (Duty, MinSamples, Margin, ...).
	Tune *tune.Config
}

// Server is the SpMM service: registry, cache, batcher and admission gate
// behind an http.Handler.
type Server struct {
	cfg     Config
	reg     *Registry
	adm     *admission
	pool    *parallel.Pool
	ownPool bool
	tracer  *trace.Tracer
	reqs    *trace.Requests
	log     *slog.Logger
	clk     clock.Clock
	store   *Store
	tuner   *tune.Tuner
	// draining flips when shutdown begins: new expensive requests get a
	// clean 503 + Retry-After instead of racing http.Server.Shutdown.
	draining atomic.Bool

	mu       sync.Mutex
	batchers map[string]*batcher

	// The background compactor: a single goroutine draining a bounded
	// queue of matrix IDs whose overlay crossed the cost model. The
	// pending set dedups enqueues; costModel is the configured policy.
	costModel      delta.CostModel
	compactCh      chan string
	compactWG      sync.WaitGroup
	compactMu      sync.Mutex
	compactPending map[string]bool
	compactClosed  bool

	// Mutation-subsystem counters (the /v1/stats Delta section).
	mutations        atomic.Int64
	mutOps           atomic.Int64
	compactions      atomic.Int64
	compactionErrors atomic.Int64

	// variants counts multiplies served per kernel variant name — the
	// /v1/stats view of which arms actually execute.
	variantMu sync.Mutex
	variants  map[string]int64

	requests        atomic.Int64
	multiplies      atomic.Int64
	batches         atomic.Int64
	batchedRequests atomic.Int64
}

// New builds a Server, filling Config defaults. With DataDir set it opens
// the durability store and recovers every previously-acked registration
// (advisor plans included; formats re-prepare lazily on first use) before
// returning.
func New(cfg Config) (*Server, error) {
	if cfg.Threads < 1 {
		cfg.Threads = parallel.MaxThreads()
	}
	if cfg.MaxBatchK < 1 {
		cfg.MaxBatchK = 512
	}
	if cfg.MaxK < 1 {
		cfg.MaxK = 1024
	}
	if cfg.MaxInFlight < 1 {
		cfg.MaxInFlight = 2 * cfg.Threads
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 4 * cfg.MaxInFlight
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = 30 * time.Second
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 64
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	if cfg.CompactRatio == 0 {
		cfg.CompactRatio = 0.25
	}
	if cfg.CompactCost == 0 {
		cfg.CompactCost = 1.0
	}
	s := &Server{
		cfg:            cfg,
		reg:            NewRegistry(cfg.CacheBytes, cfg.Threads),
		adm:            newAdmission(cfg.MaxInFlight, cfg.QueueDepth),
		pool:           cfg.Pool,
		tracer:         cfg.Tracer,
		reqs:           trace.NewRequests(cfg.ReqTraceRing),
		log:            cfg.Log,
		clk:            cfg.Clock,
		batchers:       map[string]*batcher{},
		variants:       map[string]int64{},
		compactCh:      make(chan string, 128),
		compactPending: map[string]bool{},
	}
	s.costModel = delta.CostModel{BreakEven: cfg.CompactCost, MaxRatio: cfg.CompactRatio}
	if cfg.CompactCost < 0 {
		s.costModel.BreakEven = 0
	}
	if cfg.CompactRatio < 0 {
		s.costModel.MaxRatio = 0
	}
	if s.pool == nil {
		s.pool = parallel.NewPool(cfg.Threads)
		s.ownPool = true
	}
	var recovered []*Matrix
	profiles := map[string]*tune.Profile{}
	if cfg.DataDir != "" {
		st, recs, err := OpenStore(cfg.DataDir, StoreOpts{
			SnapshotEvery: cfg.SnapshotEvery,
			NoFsync:       cfg.NoFsync,
			Injector:      cfg.Injector,
			Log:           cfg.Log,
		})
		if err != nil {
			s.closePool()
			return nil, err
		}
		for i := range recs {
			switch recs[i].Kind {
			case walKindProfile:
				if p := recs[i].Profile; p != nil {
					profiles[recs[i].ID] = p
				}
			case walKindMutate:
				if err := s.reg.applyRecoveredMutation(&recs[i]); err != nil && s.log != nil {
					s.log.Warn("skipping unrecoverable mutation record", "err", err)
				}
			case walKindCompact:
				if err := s.reg.applyRecoveredCompaction(&recs[i]); err != nil && s.log != nil {
					s.log.Warn("skipping unrecoverable compaction record", "err", err)
				}
			default:
				m, err := matrixFromRecord(&recs[i], func(name string, scale float64) (*matrix.COO[float64], error) {
					coo, _, err := gen.GenerateScaled(name, scale)
					return coo, err
				})
				if err != nil {
					// One unrecoverable record must not take the whole registry
					// down with it — skip it loudly.
					if s.log != nil {
						s.log.Warn("skipping unrecoverable registration", "err", err)
					}
					continue
				}
				s.reg.restore(m)
				recovered = append(recovered, m)
			}
		}
		// The registry dump feeding snapshots carries the tuner's learned
		// profiles alongside the registrations, so a compaction that
		// truncates a profile's WAL record preserves it in the snapshot.
		st.dump = func() []walRecord {
			out := s.reg.dumpRecords()
			if s.tuner != nil {
				for _, p := range s.tuner.Profiles() {
					out = append(out, walRecord{Kind: walKindProfile, ID: p.ID, Profile: p})
				}
			}
			return out
		}
		s.reg.persist = func(m *Matrix) (func(), error) { return st.Append(recordFor(m)) }
		s.reg.persistMut = func(m *Matrix, epoch int64, ops []delta.Op) (func(), error) {
			rec := &walRecord{Kind: walKindMutate, ID: m.ID, Epoch: epoch}
			rec.MutRowIdx = make([]int32, len(ops))
			rec.MutColIdx = make([]int32, len(ops))
			rec.MutVals = make([]float64, len(ops))
			rec.MutDel = make([]bool, len(ops))
			for i, op := range ops {
				rec.MutRowIdx[i], rec.MutColIdx[i], rec.MutVals[i], rec.MutDel[i] = op.Row, op.Col, op.Val, op.Del
			}
			return st.Append(rec)
		}
		s.reg.persistCompact = func(m *Matrix, boundary int64, baseHash string) (func(), error) {
			return st.Append(&walRecord{Kind: walKindCompact, ID: m.ID, Epoch: boundary, BaseHash: baseHash})
		}
		s.store = st
	}
	s.compactWG.Add(1)
	go s.compactorLoop()
	if cfg.Tune != nil {
		tc := *cfg.Tune
		if tc.Threads < 1 {
			tc.Threads = cfg.Threads
		}
		if tc.Log == nil {
			tc.Log = cfg.Log
		}
		tc.Promote = func(id string, pr tune.Promotion) (int64, error) {
			plan, err := s.reg.Promote(context.Background(), id, pr.To)
			if err != nil {
				return 0, err
			}
			return plan.Version, nil
		}
		if s.store != nil {
			tc.Persist = s.persistProfile
		}
		s.tuner = tune.New(tc)
		// Warm-start recovered matrices from their recovered profiles. The
		// profile's promoted plan is adopted before tracking so the tuner's
		// incumbent and the serving plan agree; a profile that fails
		// validation leaves the matrix tracked cold.
		for _, m := range recovered {
			prof := profiles[m.ID]
			if prof != nil {
				if err := s.reg.adoptPlan(m.ID, prof.Incumbent, prof.PlanVersion); err != nil {
					if s.log != nil {
						s.log.Warn("discarding recovered tuning profile", "id", m.ID, "err", err)
					}
					prof = nil
				}
			}
			// A compacted matrix's current base diverged from the original
			// registration the profile (and the registration report) describe:
			// the tuner's lab copy and feature vector must track the CURRENT
			// base — its trials verify bitwise against served results — so the
			// learned profile is dropped and the features recomputed.
			base, feat := m.COO, m.Report.Features
			if cur := m.CurrentBase(); cur != base {
				f, err := advisor.Extract(cur)
				if err != nil {
					// Tracking the stale base would make every shadow trial
					// diverge bitwise; leave the matrix untuned instead.
					if s.log != nil {
						s.log.Warn("feature extraction on recovered compacted base failed; matrix left untuned", "id", m.ID, "err", err)
					}
					continue
				}
				base = cur
				feat = advisor.NewReport(m.ID, f, []advisor.Environment{advisor.ParallelCPU}).Features
				prof = nil
			}
			plan := m.Plan()
			if err := s.tuner.Restore(m.ID, base, plan.Block, feat,
				plan.Variant, plan.Version, prof); err != nil && s.log != nil {
				s.log.Warn("recovered tuning profile rejected; starting cold", "id", m.ID, "err", err)
			}
		}
	}
	return s, nil
}

// persistProfile durably appends a tuner profile record. The commit runs
// immediately: by the time the tuner calls Persist its in-memory state (the
// source of the snapshot dump) already reflects the profile, so the
// compactor never needs to carry it.
func (s *Server) persistProfile(id string, p *tune.Profile) error {
	rec := &walRecord{Kind: walKindProfile, ID: id, Profile: p}
	commit, err := s.store.Append(rec)
	if err != nil {
		return err
	}
	commit()
	return nil
}

// Tuner exposes the online auto-tuner (nil when tuning is disabled) — the
// load generator and the benchmarks flush it for deterministic reads.
func (s *Server) Tuner() *tune.Tuner { return s.tuner }

// countVariant attributes n served multiplies to a kernel variant.
func (s *Server) countVariant(variant string, n int64) {
	if variant == "" {
		return
	}
	s.variantMu.Lock()
	s.variants[variant] += n
	s.variantMu.Unlock()
}

// variantCounts snapshots the per-variant multiply counters.
func (s *Server) variantCounts() map[string]int64 {
	s.variantMu.Lock()
	defer s.variantMu.Unlock()
	if len(s.variants) == 0 {
		return nil
	}
	out := make(map[string]int64, len(s.variants))
	for k, v := range s.variants {
		out[k] = v
	}
	return out
}

func (s *Server) closePool() {
	if s.ownPool {
		s.pool.Close()
	}
}

// Registry exposes the matrix registry (the load generator's client and the
// tests inspect cache behaviour through it).
func (s *Server) Registry() *Registry { return s.reg }

// Drain marks the server as shutting down: register and multiply requests
// arriving after Drain get a clean 503 + Retry-After instead of racing the
// HTTP listener teardown, while already-admitted work runs to completion.
// Call it immediately before http.Server.Shutdown.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close releases resources the server owns (its worker pool, the
// durability store). Callers drain in-flight HTTP requests first
// (http.Server.Shutdown); Close does not interrupt running dispatches.
func (s *Server) Close() {
	if s.tuner != nil {
		// Stop the tuner before its Promote/Persist targets go away; Close
		// drains queued trials first.
		s.tuner.Close()
	}
	// Stop the compactor before the store: an in-flight compaction journals
	// through Store.Append and must finish before the WAL closes.
	s.compactMu.Lock()
	if !s.compactClosed {
		s.compactClosed = true
		close(s.compactCh)
	}
	s.compactMu.Unlock()
	s.compactWG.Wait()
	s.closePool()
	if s.store != nil {
		if err := s.store.Close(); err != nil && s.log != nil {
			s.log.Warn("durability store close failed", "err", err)
		}
	}
}

// requestCompact enqueues a background compaction for the matrix, dropping
// the request if one is already queued (the compactor re-evaluates the
// cost model when it runs) or the queue is full (a later trigger retries).
func (s *Server) requestCompact(id string) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	if s.compactClosed || s.compactPending[id] {
		return
	}
	select {
	case s.compactCh <- id:
		s.compactPending[id] = true
	default:
	}
}

// compactorLoop is the background compactor goroutine: it serializes all
// compactions (they are CPU-heavy — a merge plus a format preparation) so
// mutation-heavy workloads cannot saturate the host with concurrent
// re-preparations.
func (s *Server) compactorLoop() {
	defer s.compactWG.Done()
	for id := range s.compactCh {
		s.compactMu.Lock()
		delete(s.compactPending, id)
		s.compactMu.Unlock()
		s.compactNow(id)
	}
}

// driftKeepWithin is the feature-drift threshold under which a compaction
// carries the tuner's measured arm windows over to the merged base: the
// matrix is still the same shape, so the rankings stay informative.
const driftKeepWithin = 0.25

// compactNow runs one compaction through the registry and settles the
// bookkeeping around it: counters, the compact trace span, and rebasing
// the online tuner onto the merged base (its lab copy must match the
// served base bitwise for shadow trials to verify).
func (s *Server) compactNow(id string) (bool, error) {
	start := time.Now()
	span := s.tracer.Start()
	did, err := s.reg.Compact(id)
	s.tracer.EndDetail(0, trace.PhaseCompact, id, span, 0)
	if err != nil {
		s.compactionErrors.Add(1)
		obsDeltaCompactionErrors.Inc()
		if s.log != nil {
			s.log.Warn("overlay compaction failed", "id", id, "err", err)
		}
	}
	if !did {
		return false, err
	}
	dur := time.Since(start)
	s.compactions.Add(1)
	obsDeltaCompactions.Inc()
	obsDeltaCompactionSeconds.Observe(dur.Seconds())
	if h, ok := obsPhaseSeconds[trace.PhaseCompact]; ok {
		h.Observe(dur.Seconds())
	}
	m, ok := s.reg.Get(id)
	if !ok {
		return did, err
	}
	if s.log != nil {
		s.log.Info("overlay compacted", "id", id, "epoch", m.Epoch(),
			"hash", m.ContentHash(), "seconds", dur.Seconds())
	}
	s.rebaseTuner(m)
	return did, err
}

// rebaseTuner swaps the tuner's lab state onto the matrix's current base
// (after a compaction or a mutated-state import). Measured arm windows
// carry over when the feature drift stays under driftKeepWithin; past it
// the matrix's arms restart cold. A feature-extraction failure untracks
// nothing — the stale state's trials are dropped by plan-version skew, so
// the tuner just stops learning for this matrix until the next rebase.
func (s *Server) rebaseTuner(m *Matrix) {
	if s.tuner == nil {
		return
	}
	base := m.CurrentBase()
	f, err := advisor.Extract(base)
	if err != nil {
		if s.log != nil {
			s.log.Warn("tuner rebase: feature extraction failed", "id", m.ID, "err", err)
		}
		return
	}
	feat := advisor.NewReport(m.ID, f, []advisor.Environment{advisor.ParallelCPU}).Features
	plan := m.Plan()
	kept := s.tuner.Rebase(m.ID, base, plan.Block, feat, plan.Variant, plan.Version, driftKeepWithin)
	if s.log != nil {
		s.log.Info("tuner rebased onto merged base", "id", m.ID, "windows_kept", kept)
	}
}

// params assembles the kernel dispatch parameters for one multiply from its
// serving plan: schedule, block size, pool machinery and the tracer — the
// same Opts path the benchmark pipeline uses. An unpooled plan leaves Pool
// nil so core routes to the goroutine-per-call machinery the plan's variant
// names.
func (s *Server) params(plan Plan, k int) core.Params {
	p := core.Params{
		Reps: 1, Threads: s.cfg.Threads, BlockSize: plan.Block, K: k, Seed: 1,
		Schedule: plan.Schedule, Trace: s.tracer,
	}
	if plan.Pooled {
		p.Pool = s.pool
	}
	return p
}

// Handler returns the service mux:
//
//	POST /v1/matrices              register (JSON in, JSON out)
//	GET  /v1/matrices              list registered matrices
//	GET  /v1/matrices/{id}         one matrix's info
//	GET  /v1/matrices/{id}/export  registry-metadata export (base + pending overlay)
//	POST /v1/matrices/{id}/prepare warm the prepared-format cache
//	POST /v1/matrices/{id}/multiply?k=K   multiply (binary panels)
//	POST /v1/matrices/{id}/mutate  apply one insert/update/delete batch
//	POST /v1/matrices/{id}/compact force a synchronous overlay compaction
//	GET  /v1/stats                 serving counters snapshot
//	GET  /v1/tune                  auto-tuner decision trail
//	GET  /v1/trace/requests        recent per-request phase records
//	GET  /healthz                  liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/matrices", s.handleRegister)
	mux.HandleFunc("GET /v1/matrices", s.handleList)
	mux.HandleFunc("GET /v1/matrices/{id}", s.handleInfo)
	mux.HandleFunc("GET /v1/matrices/{id}/export", s.handleExport)
	mux.HandleFunc("POST /v1/matrices/{id}/prepare", s.handlePrepare)
	mux.HandleFunc("POST /v1/matrices/{id}/multiply", s.handleMultiply)
	mux.HandleFunc("POST /v1/matrices/{id}/mutate", s.handleMutate)
	mux.HandleFunc("POST /v1/matrices/{id}/compact", s.handleCompact)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/tune", s.handleTune)
	mux.HandleFunc("GET /v1/trace/requests", s.handleTraceRequests)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	return mux
}

// batcherFor returns the matrix's batcher, creating it on first use.
func (s *Server) batcherFor(m *Matrix) *batcher {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.batchers[m.ID]
	if !ok {
		t = &batcher{s: s, m: m}
		s.batchers[m.ID] = t
	}
	return t
}

// pendingBatch reports how many requests are waiting in the matrix's open
// batch window — the synchronization hook fake-clock tests poll before
// advancing past the window.
func (s *Server) pendingBatch(id string) int {
	s.mu.Lock()
	t, ok := s.batchers[id]
	s.mu.Unlock()
	if !ok {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pending)
}

// maxRegisterBody caps a register request body. The WAL's per-record replay
// limit (maxWALRecordBytes) is derived from it, so every registration the
// handler admits is guaranteed journalable and replayable.
const maxRegisterBody = 256 << 20

// ErrNotDurable marks a registration the WAL could not make durable; the
// server maps it to 503 so the client knows to retry, and the matrix is
// never acked or inserted.
var ErrNotDurable = errors.New("serve: registration could not be journaled")

// errDraining is the clean shutdown refusal: the listener is about to
// close, so new expensive work is turned away retryably.
var errDraining = errors.New("serve: draining for shutdown, retry elsewhere")

func isDurabilityErr(err error) bool { return errors.Is(err, ErrNotDurable) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	// Both shed (429) and unavailable (503) are retryable; Retry-After
	// feeds the client's backoff.
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

// Materialize builds the COO matrix a register request describes: generator
// spec, inline MatrixMarket text, or raw triplets. It is exported so the
// cluster router can compute a registration's content-addressed ID (and
// thereby its shard owner) without registering anywhere first.
func Materialize(req RegisterRequest) (*matrix.COO[float64], error) {
	sources := 0
	for _, set := range []bool{req.MTX != "", req.Name != "", req.Triplets()} {
		if set {
			sources++
		}
	}
	if sources > 1 {
		return nil, errors.New("serve: register carries more than one matrix source")
	}
	switch {
	case req.MTX != "":
		return mmio.ReadCOO[float64](strings.NewReader(req.MTX))
	case req.Name != "":
		scale := req.Scale
		if scale == 0 {
			scale = 1
		}
		m, _, err := gen.GenerateScaled(req.Name, scale)
		return m, err
	case req.Triplets():
		m := &matrix.COO[float64]{
			Rows: req.Rows, Cols: req.Cols,
			RowIdx: req.RowIdx, ColIdx: req.ColIdx, Vals: req.Vals,
		}
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("serve: register triplets: %w", err)
		}
		return m, nil
	default:
		return nil, errors.New("serve: register needs a generator spec, MTX text, or triplets")
	}
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	obsRequests.Inc()
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	var req RegisterRequest
	body := http.MaxBytesReader(w, r.Body, maxRegisterBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad register body: %w", err))
		return
	}
	if req.Import() {
		s.handleImport(w, r, &req)
		return
	}
	coo, err := Materialize(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The WAL append (and its fsync) happens inside RegisterSourced,
	// before the matrix becomes visible — so by the time the 200 below is
	// written, the registration is already durable. A journaling failure
	// is a 503: the input was fine, the disk was not.
	m, existed, err := s.reg.RegisterSourced(coo, RegisterSource{Name: req.Name, Scale: req.Scale})
	if err != nil {
		code := http.StatusBadRequest
		if isDurabilityErr(err) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	// Warm the prepared format under the admission gate so a registration
	// burst cannot saturate the CPU outside the server's own bounds.
	var formatBytes int
	if err := s.adm.acquire(r.Context()); err == nil {
		sv, _, perr := s.reg.Prepared(r.Context(), m.ID)
		s.adm.release()
		if perr != nil {
			writeError(w, http.StatusInternalServerError, perr)
			return
		}
		formatBytes = sv.Kernel.Bytes()
	}
	plan := m.Plan()
	advice := m.Report
	if s.tuner != nil {
		s.tuner.Track(m.ID, m.COO, plan.Block, m.Report.Features, plan.Variant, plan.Version)
		// A re-registered matrix that has already been shadow-measured gets
		// the measured rankings alongside the heuristic ones.
		advice.Measured = s.tuner.Measured(m.ID)
	}
	if s.log != nil {
		s.log.Info("matrix registered", "id", m.ID, "rows", m.COO.Rows,
			"nnz", m.COO.NNZ(), "format", plan.Format,
			"schedule", plan.Schedule.String(), "variant", plan.Variant,
			"existed", existed)
	}
	writeJSON(w, http.StatusOK, RegisterResponse{
		ID: m.ID, Rows: m.COO.Rows, Cols: m.COO.Cols, NNZ: m.COO.NNZ(),
		Format: plan.Format, Schedule: plan.Schedule.String(), Block: plan.Block,
		Variant: plan.Variant, PlanVersion: plan.Version,
		Existed: existed, FormatBytes: formatBytes, Advice: advice,
	})
}

// deltaOps converts parallel mutation arrays (wire or journal form) into
// ops, validating that the arrays agree in length.
func deltaOps(rows, cols []int32, vals []float64, del []bool) ([]delta.Op, error) {
	if len(cols) != len(rows) ||
		(len(vals) != len(rows) && !(len(vals) == 0 && len(rows) == 0)) ||
		(del != nil && len(del) != len(rows)) {
		return nil, fmt.Errorf("serve: ragged mutation arrays (%d/%d/%d/%d)",
			len(rows), len(cols), len(vals), len(del))
	}
	ops := make([]delta.Op, len(rows))
	for i := range ops {
		ops[i] = delta.Op{Row: rows[i], Col: cols[i], Val: vals[i]}
		if del != nil {
			ops[i].Del = del[i]
		}
	}
	return ops, nil
}

// handleImport is the mutated-state registration path (RegisterRequest
// with ServeID set): the cluster rebalancer shipping a matrix whose served
// state has diverged from its original registration. The receiver adopts
// the exporter's handle, verifies the base hash, installs base + overlay
// bitwise-identical, and points the tuner at the imported base.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request, req *RegisterRequest) {
	if !req.Triplets() {
		writeError(w, http.StatusBadRequest, errors.New("serve: import needs the base triplets"))
		return
	}
	base := &matrix.COO[float64]{
		Rows: req.Rows, Cols: req.Cols,
		RowIdx: req.RowIdx, ColIdx: req.ColIdx, Vals: req.Vals,
	}
	ops, err := deltaOps(req.OvRowIdx, req.OvColIdx, req.OvVals, req.OvDel)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	m, existed, err := s.reg.ImportMutated(req.ServeID, base,
		RegisterSource{Name: req.Name, Scale: req.Scale},
		req.BaseHash, req.Epoch, req.CompactEpoch, ops)
	if err != nil {
		code := http.StatusBadRequest
		if isDurabilityErr(err) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	var formatBytes int
	if err := s.adm.acquire(r.Context()); err == nil {
		sv, _, perr := s.reg.Prepared(r.Context(), m.ID)
		s.adm.release()
		if perr != nil {
			writeError(w, http.StatusInternalServerError, perr)
			return
		}
		formatBytes = sv.Kernel.Bytes()
	}
	if !existed {
		s.rebaseTuner(m)
	}
	plan := m.Plan()
	if s.log != nil {
		s.log.Info("matrix imported", "id", m.ID, "epoch", m.Epoch(),
			"hash", m.ContentHash(), "existed", existed)
	}
	writeJSON(w, http.StatusOK, RegisterResponse{
		ID: m.ID, Rows: m.COO.Rows, Cols: m.COO.Cols, NNZ: m.CurrentBase().NNZ(),
		Format: plan.Format, Schedule: plan.Schedule.String(), Block: plan.Block,
		Variant: plan.Variant, PlanVersion: plan.Version,
		Existed: existed, FormatBytes: formatBytes, Advice: m.Report,
		Epoch: m.Epoch(), Hash: m.ContentHash(),
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	obsRequests.Inc()
	writeJSON(w, http.StatusOK, s.reg.List())
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	obsRequests.Inc()
	id := r.PathValue("id")
	m, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown matrix %q", id))
		return
	}
	for _, info := range s.reg.List() {
		if info.ID == m.ID {
			writeJSON(w, http.StatusOK, info)
			return
		}
	}
}

// handleExport serves the registry-metadata export: the CURRENT canonical
// base triplets, the pending overlay (epoch-tagged), and the generator-spec
// provenance — enough for any other replica to serve the identical bits at
// the identical epoch. This is the data path of a cluster shard move, and
// it works mid-mutation-stream: the state is captured in one atomic load,
// so the export is always a consistent epoch snapshot.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	obsRequests.Inc()
	id := r.PathValue("id")
	m, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown matrix %q", id))
		return
	}
	ms := m.mutView()
	rec := ExportRecord{
		ID: m.ID, Rows: m.COO.Rows, Cols: m.COO.Cols,
		Name: m.Source.Name, Scale: m.Source.Scale,
		RowIdx: ms.base.RowIdx, ColIdx: ms.base.ColIdx, Vals: ms.base.Vals,
		Hash: ms.hash,
	}
	if ms.epoch > 0 || ms.baseHash != m.ID {
		rec.Epoch, rec.CompactEpoch = ms.epoch, ms.compactedThrough
		if ms.baseHash != m.ID {
			rec.BaseHash = ms.baseHash
		}
		if ms.overlay.NNZ() > 0 {
			rec.OvRowIdx = ms.overlay.RowIdx
			rec.OvColIdx = ms.overlay.ColIdx
			rec.OvVals = ms.overlay.Vals
			rec.OvDel = ms.overlay.Del
		}
	}
	w.Header().Set(HeaderEpoch, strconv.FormatInt(ms.epoch, 10))
	w.Header().Set(HeaderContentHash, ms.hash)
	writeJSON(w, http.StatusOK, rec)
}

// handleMutate applies one atomic insert/update/delete batch to a served
// matrix. The batch is journaled (durability before visibility, exactly
// like registrations) and the new epoch's overlay installed before the ack;
// every multiply from the ack on reflects the batch, bit-exactly, and the
// response's epoch/hash identify that state.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	obsRequests.Inc()
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	start := time.Now()
	id := r.PathValue("id")
	m, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown matrix %q", id))
		return
	}
	var req MutateRequest
	body := http.MaxBytesReader(w, r.Body, maxRegisterBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad mutate body: %w", err))
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("serve: mutate batch carries no ops"))
		return
	}
	ops := make([]delta.Op, len(req.Ops))
	for i, op := range req.Ops {
		ops[i] = delta.Op{Row: op.Row, Col: op.Col, Val: op.Val, Del: op.Del}
	}
	span := s.tracer.Start()
	ms, err := s.reg.Mutate(id, ops)
	s.tracer.EndDetail(0, trace.PhaseMutate, id, span, int64(len(ops)))
	if err != nil {
		code := http.StatusBadRequest
		if isDurabilityErr(err) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	s.mutations.Add(1)
	s.mutOps.Add(int64(len(ops)))
	obsDeltaMutations.Inc()
	obsDeltaOps.Add(int64(len(ops)))
	_, totalOverlay := s.reg.deltaTotals()
	obsDeltaOverlayNNZ.Set(float64(totalOverlay))
	if h, ok := obsPhaseSeconds[trace.PhaseMutate]; ok {
		h.Observe(time.Since(start).Seconds())
	}
	if s.reg.shouldCompact(m, s.costModel) {
		s.requestCompact(id)
	}
	w.Header().Set(HeaderEpoch, strconv.FormatInt(ms.epoch, 10))
	w.Header().Set(HeaderContentHash, ms.hash)
	writeJSON(w, http.StatusOK, MutateResponse{
		ID: id, Epoch: ms.epoch, Hash: ms.hash,
		OverlayNNZ: ms.overlay.NNZ(), Applied: len(ops),
	})
}

// handleCompact forces a synchronous overlay compaction — the ops endpoint
// for "merge now, don't wait for the cost model". It shares the background
// compactor's code path (counters, tuner rebase included) and serializes
// with it on the matrix's mutation lock.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	obsRequests.Inc()
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	id := r.PathValue("id")
	m, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown matrix %q", id))
		return
	}
	did, err := s.compactNow(id)
	if err != nil {
		code := http.StatusInternalServerError
		if isDurabilityErr(err) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	_, totalOverlay := s.reg.deltaTotals()
	obsDeltaOverlayNNZ.Set(float64(totalOverlay))
	writeJSON(w, http.StatusOK, CompactResponse{
		ID: id, Compacted: did, Epoch: m.Epoch(), Hash: m.ContentHash(),
	})
}

// handlePrepare warms the prepared-format cache for one matrix under the
// admission gate — the cluster rebalancer's pre-cutover step, so the first
// multiply routed to a shard's new owner is a cache hit, not a prepare.
// Idempotent; the response (and the X-Spmm-Cache header) reports whether
// the plan-current format was already resident.
func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	obsRequests.Inc()
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	id := r.PathValue("id")
	m, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown matrix %q", id))
		return
	}
	if err := s.adm.acquire(r.Context()); err != nil {
		if errors.Is(err, ErrOverloaded) {
			writeError(w, http.StatusTooManyRequests, err)
		} else {
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("serve: deadline expired in queue: %w", err))
		}
		return
	}
	sv, hit, err := s.reg.Prepared(r.Context(), id)
	s.adm.release()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	cache := "prepare"
	if hit {
		cache = "hit"
	}
	w.Header().Set(HeaderCache, cache)
	writeJSON(w, http.StatusOK, PrepareResponse{
		ID: m.ID, Cache: cache, Format: sv.Plan.Format,
		Variant: sv.Plan.Variant, FormatBytes: sv.Kernel.Bytes(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	obsRequests.Inc()
	resp := StatsResponse{
		Matrices:        s.reg.Len(),
		Requests:        s.requests.Load(),
		Multiplies:      s.multiplies.Load(),
		Batches:         s.batches.Load(),
		BatchedRequests: s.batchedRequests.Load(),
		Shed:            s.adm.shed.Load(),
		Timeouts:        s.adm.timeouts.Load(),
		InFlight:        s.adm.executing.Load(),
		Queued:          s.adm.queued(),
		Cache:           s.reg.Stats(),
	}
	if s.store != nil {
		resp.Durability = s.store.Stats()
	}
	resp.Variants = s.variantCounts()
	if mutated, ovnnz := s.reg.deltaTotals(); mutated > 0 || s.mutations.Load() > 0 || s.compactions.Load() > 0 {
		resp.Delta = &DeltaStats{
			Mutations:        s.mutations.Load(),
			Ops:              s.mutOps.Load(),
			Mutated:          mutated,
			OverlayNNZ:       ovnnz,
			Compactions:      s.compactions.Load(),
			CompactionErrors: s.compactionErrors.Load(),
		}
	}
	if s.tuner != nil {
		ts := s.tuner.Stats()
		resp.Tune = &TuneSummary{
			Enabled: true, Trials: ts.Trials, Promotions: ts.Promotions,
			Rejects: ts.Rejects, Dropped: ts.Dropped, Stale: ts.Stale,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTune serves the auto-tuner's full decision trail: per-matrix arm
// rankings, promotion history and the global counters. With tuning disabled
// it reports {"enabled": false}.
func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	obsRequests.Inc()
	if s.tuner == nil {
		writeJSON(w, http.StatusOK, tune.Stats{})
		return
	}
	writeJSON(w, http.StatusOK, s.tuner.Stats())
}

// handleMultiply is the data path: admission, panel read, prepared-format
// lookup (cache), batched dispatch, panel write.
func (s *Server) handleMultiply(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	obsRequests.Inc()
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	start := time.Now()

	id := r.PathValue("id")
	m, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown matrix %q", id))
		return
	}
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k < 1 || k > s.cfg.MaxK {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: k must be an integer in [1, %d]", s.cfg.MaxK))
		return
	}

	deadline := s.cfg.DefaultDeadline
	if h := r.Header.Get(HeaderDeadlineMs); h != "" {
		ms, err := strconv.Atoi(h)
		if err != nil || ms < 1 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("serve: bad %s %q", HeaderDeadlineMs, h))
			return
		}
		deadline = time.Duration(ms) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	// The request timeline opens before admission so queue wait is on it.
	// With request tracing off, rid is "" and req is nil — every
	// instrumentation call below is then a free nil check.
	rid, req := s.beginRequest(r, id)

	// Admission before the body read: overload answers 429 without paying
	// for the payload, and a queued request that times out leaves without
	// executing — the harness' cooperative-cancellation contract.
	queueStart := req.Now()
	if err := s.adm.acquire(ctx); err != nil {
		s.failRequest(req, err)
		if errors.Is(err, ErrOverloaded) {
			writeError(w, http.StatusTooManyRequests, err)
		} else {
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("serve: deadline expired in queue: %w", err))
		}
		return
	}
	defer s.adm.release()
	req.Phase(trace.PhaseQueue, "", queueStart, 0)

	loadStart := req.Now()
	b, err := ReadPanel(http.MaxBytesReader(w, r.Body, int64(m.COO.Cols)*int64(k)*8+8), m.COO.Cols, k)
	if err != nil {
		s.failRequest(req, err)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req.Phase(trace.PhaseLoad, "panel", loadStart, int64(k))

	prepStart := req.Now()
	sv, hit, err := s.reg.Prepared(ctx, id)
	if err != nil {
		s.failRequest(req, err)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	cache := "prepare"
	if hit {
		cache = "hit"
	}
	req.Phase(trace.PhasePrepare, cache, prepStart, 0)

	res := s.batcherFor(m).multiply(ctx, sv, b, k, req)
	if res.err != nil {
		s.failRequest(req, res.err)
		code := http.StatusInternalServerError
		if errors.Is(res.err, context.DeadlineExceeded) || errors.Is(res.err, context.Canceled) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, res.err)
		return
	}

	// Hand the request panel and the served result to the tuner (both are
	// per-request allocations; ownership transfers). On the duty cycle the
	// pair becomes a shadow trial — off this request's critical path. A
	// matrix with a pending overlay is never offered: shadow trials replay
	// against the base-only prepared formats and would mis-verify.
	if s.tuner != nil && sv.Overlay.NNZ() == 0 {
		s.tuner.Offer(id, res.plan.Variant, res.plan.Version, b, res.c, k)
	}

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(m.COO.Rows*k*8))
	w.Header().Set(HeaderFormat, res.plan.Format)
	w.Header().Set(HeaderVariant, res.plan.Variant)
	// Epoch/hash headers only once the matrix has mutated: at epoch 0 the
	// served hash IS the request path's ID, and the clean multiply path
	// stays at its baseline header (and allocation) budget.
	if sv.Epoch > 0 {
		w.Header().Set(HeaderEpoch, strconv.FormatInt(sv.Epoch, 10))
		w.Header().Set(HeaderContentHash, sv.Hash)
	}
	w.Header().Set(HeaderCache, cache)
	w.Header().Set(HeaderBatchWidth, strconv.Itoa(res.width))
	w.Header().Set(HeaderBatchK, strconv.Itoa(res.k))
	if req == nil {
		// Untraced fast path: stream the panel straight to the socket.
		if err := WritePanel(w, res.c, k); err != nil && s.log != nil {
			s.log.Warn("multiply response write failed", "id", id, "err", err)
		}
	} else {
		// Traced path: encode to a buffer first so the timing header can
		// carry the response-encode cost (headers must precede the body);
		// the recorded respond span additionally covers the socket write.
		respStart := req.Now()
		var payload bytes.Buffer
		payload.Grow(m.COO.Rows * k * 8)
		if err := WritePanel(&payload, res.c, k); err != nil {
			s.failRequest(req, err)
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		snap := req.Snapshot()
		w.Header().Set(HeaderRequestID, rid)
		w.Header().Set(HeaderTiming, FormatTiming(snap, trace.PhaseRespond, snap.TotalNs-respStart))
		if _, err := w.Write(payload.Bytes()); err != nil && s.log != nil {
			s.log.Warn("multiply response write failed", "id", id, "rid", rid, "err", err)
		}
		req.Phase(trace.PhaseRespond, "", respStart, 0)
		s.finishRequest(req)
	}
	obsRequestSeconds.Observe(time.Since(start).Seconds())
}
