package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/harness"
)

// The snapshot is the WAL's compaction target: the full registry serialized
// as one CRC-guarded file, after which the log can be truncated. The layout
// is
//
//	magic "SPMMSNP1" (8) | crc32 (4) | body length (8) | body (JSON)
//
// written to a temp file, fsynced, and renamed into place (then the
// directory fsynced), so a crash mid-snapshot leaves the previous snapshot
// intact and a torn rename is impossible. Load verifies magic, length and
// CRC; any mismatch is ErrCorruptSnapshot and recovery falls back to full
// WAL replay.

const snapshotMagic = "SPMMSNP1"

// ErrCorruptSnapshot marks a snapshot that failed its magic, length or CRC
// check. Recovery treats it as absent and replays the whole WAL.
var ErrCorruptSnapshot = errors.New("serve: corrupt snapshot")

// snapshot is the persisted registry image.
type snapshot struct {
	Version int `json:"version"`
	// LastSeq is the newest WAL sequence number the snapshot covers; WAL
	// records at or below it are redundant on replay.
	LastSeq uint64      `json:"last_seq"`
	Records []walRecord `json:"records"`
}

// writeSnapshot atomically publishes snap at dir/snapshot.dat. The
// PointSnapshot fault point fires mid-body-write: FaultErr aborts with the
// temp file partially written (crash-at-point during snapshot), which must
// leave the previous snapshot untouched.
func writeSnapshot(dir string, snap *snapshot, inject *harness.Injector) error {
	body, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("serve: snapshot marshal: %w", err)
	}
	var header [20]byte
	copy(header[:8], snapshotMagic)
	binary.LittleEndian.PutUint32(header[8:12], crc32.ChecksumIEEE(body))
	binary.LittleEndian.PutUint64(header[12:20], uint64(len(body)))

	tmp := filepath.Join(dir, "snapshot.tmp")
	final := filepath.Join(dir, "snapshot.dat")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("serve: snapshot create: %w", err)
	}
	defer os.Remove(tmp) // no-op after a successful rename
	if _, err := f.Write(header[:]); err != nil {
		f.Close()
		return fmt.Errorf("serve: snapshot write: %w", err)
	}
	// Fault point between header and body: an injected failure here leaves
	// a structurally torn temp file, exactly what a crash produces.
	if err := inject.Fire("snapshot", harness.PointSnapshot); err != nil {
		f.Write(body[:len(body)/2])
		f.Close()
		return fmt.Errorf("serve: snapshot write: %w", err)
	}
	if _, err := f.Write(body); err != nil {
		f.Close()
		return fmt.Errorf("serve: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("serve: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("serve: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("serve: snapshot publish: %w", err)
	}
	return syncDir(dir)
}

// loadSnapshot reads and verifies dir/snapshot.dat. A missing file returns
// (nil, nil); any structural or checksum failure returns ErrCorruptSnapshot
// (wrapped with the cause).
func loadSnapshot(dir string) (*snapshot, error) {
	f, err := os.Open(filepath.Join(dir, "snapshot.dat"))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("serve: open snapshot: %w", err)
	}
	defer f.Close()

	var header [20]byte
	if _, err := io.ReadFull(f, header[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorruptSnapshot, err)
	}
	if string(header[:8]) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptSnapshot, header[:8])
	}
	wantCRC := binary.LittleEndian.Uint32(header[8:12])
	length := binary.LittleEndian.Uint64(header[12:20])
	if length > 1<<40 {
		return nil, fmt.Errorf("%w: implausible body length %d", ErrCorruptSnapshot, length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(f, body); err != nil {
		return nil, fmt.Errorf("%w: short body: %v", ErrCorruptSnapshot, err)
	}
	if got := crc32.ChecksumIEEE(body); got != wantCRC {
		return nil, fmt.Errorf("%w: crc %08x != %08x", ErrCorruptSnapshot, got, wantCRC)
	}
	var snap snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return nil, fmt.Errorf("%w: body: %v", ErrCorruptSnapshot, err)
	}
	return &snap, nil
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("serve: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("serve: fsync dir: %w", err)
	}
	return nil
}
