package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/matrix"
	"repro/internal/tune"
)

// Client is the Go client for a spmmserve endpoint — the library behind
// cmd/spmmload and the end-to-end tests. It speaks the same wire protocol
// the handlers do: JSON control plane, raw float64 panels on the data
// plane.
//
// With MaxAttempts > 1 the client retries retryable failures — 429 sheds,
// 503 unavailability (drain, queue deadline, durability hiccough) and,
// when RetryConnErrors is set, transport-level errors (the restart window
// of a crashed server). The pause before each retry is the larger of the
// server's Retry-After hint and capped exponential backoff with jitter
// (harness.Backoff), so a thundering herd of clients does not re-shed
// itself in lockstep.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client; nil uses http.DefaultClient.
	HTTP *http.Client
	// MaxAttempts caps tries per request; <= 1 disables retry.
	MaxAttempts int
	// Backoff paces retries; the zero value means harness.DefaultBackoff.
	Backoff harness.Backoff
	// RetryConnErrors extends retry to transport errors (connection
	// refused/reset) — for riding out a server crash-and-restart window.
	RetryConnErrors bool
	// Sleep paces the retry waits; nil means time.Sleep. Tests inject a
	// recorder so retry pacing is asserted deterministically, not slept
	// through — the injectable-time pattern internal/clock generalizes.
	Sleep func(time.Duration)

	attempts atomic.Int64
	retries  atomic.Int64

	rngOnce sync.Once
	rngMu   sync.Mutex
	rng     *rand.Rand
}

// NewClient builds a client for the given base URL.
func NewClient(base string) *Client { return &Client{Base: base} }

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Attempts returns the total HTTP attempts made, retries included.
func (c *Client) Attempts() int64 { return c.attempts.Load() }

// Retries returns how many of those attempts were retries.
func (c *Client) Retries() int64 { return c.retries.Load() }

// StatusError is a non-2xx server reply.
type StatusError struct {
	Code int
	// RetryAfter is the parsed Retry-After header (zero when absent).
	RetryAfter time.Duration
	Message    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: server returned %d: %s", e.Code, e.Message)
}

// Overloaded reports a 429 shed.
func (e *StatusError) Overloaded() bool { return e.Code == http.StatusTooManyRequests }

// Retryable reports a reply worth retrying after a pause: a 429 shed or a
// 503 (drain, queue deadline, durability unavailable).
func (e *StatusError) Retryable() bool {
	return e.Code == http.StatusTooManyRequests || e.Code == http.StatusServiceUnavailable
}

func statusError(resp *http.Response) error {
	var msg ErrorResponse
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err := json.Unmarshal(body, &msg); err != nil || msg.Error == "" {
		msg.Error = string(body)
	}
	e := &StatusError{Code: resp.StatusCode, Message: msg.Error}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}

// retryDelay computes the pause before retry `attempt`, honoring the
// server's Retry-After when it is longer than the backoff schedule.
func (c *Client) retryDelay(attempt int, serverHint time.Duration) time.Duration {
	c.rngOnce.Do(func() { c.rng = rand.New(rand.NewSource(time.Now().UnixNano())) })
	c.rngMu.Lock()
	d := c.Backoff.Delay(attempt, c.rng)
	c.rngMu.Unlock()
	if serverHint > d {
		d = serverHint
	}
	return d
}

// do runs build→request with retry. build is re-invoked per attempt so the
// request body is fresh each time.
func (c *Client) do(build func() (*http.Request, error)) (*http.Response, error) {
	maxAttempts := c.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	for attempt := 1; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		c.attempts.Add(1)
		if attempt > 1 {
			c.retries.Add(1)
		}
		resp, err := c.http().Do(req)
		if err != nil {
			if !c.RetryConnErrors || attempt >= maxAttempts {
				return nil, err
			}
			c.sleep(c.retryDelay(attempt, 0))
			continue
		}
		if resp.StatusCode == http.StatusOK {
			return resp, nil
		}
		serr := statusError(resp)
		resp.Body.Close()
		se, ok := serr.(*StatusError)
		if !ok || !se.Retryable() || attempt >= maxAttempts {
			return nil, serr
		}
		c.sleep(c.retryDelay(attempt, se.RetryAfter))
	}
}

func (c *Client) sleep(d time.Duration) {
	if c.Sleep != nil {
		c.Sleep(d)
		return
	}
	time.Sleep(d)
}

func (c *Client) postJSON(path string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := c.do(func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, c.Base+path, bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) getJSON(path string, out any) error {
	resp, err := c.do(func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, c.Base+path, nil)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Register uploads a matrix (generator spec or MatrixMarket text).
// Registration is content-addressed and idempotent, so retrying it — even
// across a server restart — converges on the same ID.
func (c *Client) Register(req RegisterRequest) (*RegisterResponse, error) {
	var out RegisterResponse
	if err := c.postJSON("/v1/matrices", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Matrices lists the registered matrices.
func (c *Client) Matrices() ([]MatrixInfo, error) {
	var out []MatrixInfo
	if err := c.getJSON("/v1/matrices", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Export fetches the registry-metadata export of one matrix: canonical
// triplets plus generator-spec provenance, enough to re-register the exact
// matrix (same content ID) anywhere.
func (c *Client) Export(id string) (*ExportRecord, error) {
	var out ExportRecord
	if err := c.getJSON("/v1/matrices/"+id+"/export", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Prepare warms the prepared-format cache for one matrix. The response
// reports whether the plan-current format was already resident.
func (c *Client) Prepare(id string) (*PrepareResponse, error) {
	var out PrepareResponse
	if err := c.postJSON("/v1/matrices/"+id+"/prepare", struct{}{}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Mutate applies one insert/update/delete batch to a served matrix. The
// returned epoch + content hash identify the post-batch state: every
// multiply answered at that epoch reflects the batch bit-exactly.
func (c *Client) Mutate(id string, ops []MutateOp) (*MutateResponse, error) {
	var out MutateResponse
	if err := c.postJSON("/v1/matrices/"+id+"/mutate", MutateRequest{Ops: ops}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Compact forces a synchronous overlay compaction for one matrix. The
// response reports whether anything was merged and the (unchanged) epoch.
func (c *Client) Compact(id string) (*CompactResponse, error) {
	var out CompactResponse
	if err := c.postJSON("/v1/matrices/"+id+"/compact", struct{}{}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the serving counters.
func (c *Client) Stats() (*StatsResponse, error) {
	var out StatsResponse
	if err := c.getJSON("/v1/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MultiplyResult is one multiply's payload plus its serving metadata.
type MultiplyResult struct {
	// C is the rows×k result panel.
	C *matrix.Dense[float64]
	// Format is the sparse format the server dispatched on.
	Format string
	// Variant is the kernel variant the dispatch executed (X-Spmm-Variant)
	// — watching it change is how a client observes a tuner promotion.
	Variant string
	// CacheHit reports the prepared format was already resident.
	CacheHit bool
	// BatchWidth is how many requests shared the dispatch (1 = alone).
	BatchWidth int
	// BatchK is the dispatch's total dense-column count.
	BatchK int
	// Replica names the cluster replica that served the multiply
	// (X-Spmm-Replica, set by spmmrouter; "" against a single server).
	Replica string
	// RequestID is the distributed-tracing ID of this multiply
	// (X-Spmm-Request-Id; "" when the server runs without request tracing).
	RequestID string
	// Epoch is the mutation epoch the result was computed at (X-Spmm-Epoch;
	// 0 for a never-mutated matrix).
	Epoch int64
	// Hash is the content hash of the state served (X-Spmm-Content-Hash) —
	// the client-side key for picking the reference to verify against.
	Hash string
	// Timing is the server's per-phase latency breakdown (X-Spmm-Timing);
	// Timing.Valid() is false when absent.
	Timing Timing
}

// Multiply computes C[:, :k] = A×B[:, :k] on the server for the registered
// matrix. b must have the matrix's column count as rows and at least k
// columns; deadline 0 leaves the server default in force.
func (c *Client) Multiply(id string, rows int, b *matrix.Dense[float64], k int, deadline time.Duration) (*MultiplyResult, error) {
	var payload bytes.Buffer
	payload.Grow(b.Rows * k * 8)
	if err := WritePanel(&payload, b, k); err != nil {
		return nil, err
	}
	url := fmt.Sprintf("%s/v1/matrices/%s/multiply?k=%d", c.Base, id, k)
	resp, err := c.do(func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload.Bytes()))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		if deadline > 0 {
			req.Header.Set(HeaderDeadlineMs, strconv.Itoa(int(deadline.Milliseconds())))
		}
		return req, nil
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := ReadPanel(resp.Body, rows, k)
	if err != nil {
		return nil, err
	}
	width, _ := strconv.Atoi(resp.Header.Get(HeaderBatchWidth))
	batchK, _ := strconv.Atoi(resp.Header.Get(HeaderBatchK))
	timing, _ := ParseTiming(resp.Header.Get(HeaderTiming))
	epoch, _ := strconv.ParseInt(resp.Header.Get(HeaderEpoch), 10, 64)
	// The server omits the epoch/hash headers while the matrix has never
	// mutated — the served hash is then the content-addressed ID itself.
	hash := resp.Header.Get(HeaderContentHash)
	if hash == "" {
		hash = id
	}
	return &MultiplyResult{
		C:          out,
		Format:     resp.Header.Get(HeaderFormat),
		Variant:    resp.Header.Get(HeaderVariant),
		CacheHit:   resp.Header.Get(HeaderCache) == "hit",
		BatchWidth: width,
		BatchK:     batchK,
		Replica:    resp.Header.Get(HeaderReplica),
		RequestID:  resp.Header.Get(HeaderRequestID),
		Epoch:      epoch,
		Hash:       hash,
		Timing:     timing,
	}, nil
}

// TraceRequests fetches the server's recent request records
// (GET /v1/trace/requests). Zero-valued filters are omitted.
func (c *Client) TraceRequests(id, matrixID string, minMs float64, n int) ([]RequestTraceRecord, error) {
	q := make([]string, 0, 4)
	if id != "" {
		q = append(q, "id="+id)
	}
	if matrixID != "" {
		q = append(q, "matrix="+matrixID)
	}
	if minMs > 0 {
		q = append(q, fmt.Sprintf("min_ms=%g", minMs))
	}
	if n > 0 {
		q = append(q, fmt.Sprintf("n=%d", n))
	}
	path := "/v1/trace/requests"
	if len(q) > 0 {
		path += "?" + strings.Join(q, "&")
	}
	var out []RequestTraceRecord
	if err := c.getJSON(path, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Tune fetches the auto-tuner's decision trail (/v1/tune). With tuning
// disabled the result has Enabled false.
func (c *Client) Tune() (*tune.Stats, error) {
	var out tune.Stats
	if err := c.getJSON("/v1/tune", &out); err != nil {
		return nil, err
	}
	return &out, nil
}
