package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/matrix"
)

// Client is the Go client for a spmmserve endpoint — the library behind
// cmd/spmmload and the end-to-end tests. It speaks the same wire protocol
// the handlers do: JSON control plane, raw float64 panels on the data
// plane.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client; nil uses http.DefaultClient.
	HTTP *http.Client
}

// NewClient builds a client for the given base URL.
func NewClient(base string) *Client { return &Client{Base: base} }

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// StatusError is a non-2xx server reply.
type StatusError struct {
	Code int
	// RetryAfter is the parsed Retry-After header (zero when absent).
	RetryAfter time.Duration
	Message    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: server returned %d: %s", e.Code, e.Message)
}

// Overloaded reports a 429 shed.
func (e *StatusError) Overloaded() bool { return e.Code == http.StatusTooManyRequests }

func statusError(resp *http.Response) error {
	var msg ErrorResponse
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err := json.Unmarshal(body, &msg); err != nil || msg.Error == "" {
		msg.Error = string(body)
	}
	e := &StatusError{Code: resp.StatusCode, Message: msg.Error}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}

func (c *Client) postJSON(path string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := c.http().Post(c.Base+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) getJSON(path string, out any) error {
	resp, err := c.http().Get(c.Base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Register uploads a matrix (generator spec or MatrixMarket text).
func (c *Client) Register(req RegisterRequest) (*RegisterResponse, error) {
	var out RegisterResponse
	if err := c.postJSON("/v1/matrices", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Matrices lists the registered matrices.
func (c *Client) Matrices() ([]MatrixInfo, error) {
	var out []MatrixInfo
	if err := c.getJSON("/v1/matrices", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Stats fetches the serving counters.
func (c *Client) Stats() (*StatsResponse, error) {
	var out StatsResponse
	if err := c.getJSON("/v1/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MultiplyResult is one multiply's payload plus its serving metadata.
type MultiplyResult struct {
	// C is the rows×k result panel.
	C *matrix.Dense[float64]
	// Format is the sparse format the server dispatched on.
	Format string
	// CacheHit reports the prepared format was already resident.
	CacheHit bool
	// BatchWidth is how many requests shared the dispatch (1 = alone).
	BatchWidth int
	// BatchK is the dispatch's total dense-column count.
	BatchK int
}

// Multiply computes C[:, :k] = A×B[:, :k] on the server for the registered
// matrix. b must have the matrix's column count as rows and at least k
// columns; deadline 0 leaves the server default in force.
func (c *Client) Multiply(id string, rows int, b *matrix.Dense[float64], k int, deadline time.Duration) (*MultiplyResult, error) {
	var payload bytes.Buffer
	payload.Grow(b.Rows * k * 8)
	if err := WritePanel(&payload, b, k); err != nil {
		return nil, err
	}
	url := fmt.Sprintf("%s/v1/matrices/%s/multiply?k=%d", c.Base, id, k)
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload.Bytes()))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if deadline > 0 {
		req.Header.Set(HeaderDeadlineMs, strconv.Itoa(int(deadline.Milliseconds())))
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp)
	}
	out, err := ReadPanel(resp.Body, rows, k)
	if err != nil {
		return nil, err
	}
	width, _ := strconv.Atoi(resp.Header.Get(HeaderBatchWidth))
	batchK, _ := strconv.Atoi(resp.Header.Get(HeaderBatchK))
	return &MultiplyResult{
		C:          out,
		Format:     resp.Header.Get(HeaderFormat),
		CacheHit:   resp.Header.Get(HeaderCache) == "hit",
		BatchWidth: width,
		BatchK:     batchK,
	}, nil
}
