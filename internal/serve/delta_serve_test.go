package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/harness"
	"repro/internal/matrix"
)

// The mutation-subsystem suite over the real HTTP surface: every test
// drives POST /v1/matrices/{id}/mutate and .../compact through the client
// library and verifies multiplies bitwise against a client-side fold of
// the same mutation plan — the per-epoch merged content is the oracle,
// csr-serial over it the universal reference (the bitwise contract makes
// the server's format/variant choice invisible).

// deltaPlan is a precomputed mutation schedule: batch b creates epoch b+1
// and states[e] is the full merged content at epoch e (states[0] is the
// registered base).
type deltaPlan struct {
	batches [][]MutateOp
	states  []*matrix.COO[float64]
}

// buildDeltaPlan folds `batches` deterministic op batches over base
// through the delta package itself, yielding the canonical merged content
// at every epoch. ~25% of ops are deletes.
func buildDeltaPlan(t *testing.T, base *matrix.COO[float64], batches, opsPer int, seed int64) *deltaPlan {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	plan := &deltaPlan{states: []*matrix.COO[float64]{base}}
	cur := base
	for b := 0; b < batches; b++ {
		ops := make([]MutateOp, opsPer)
		dops := make([]delta.Op, opsPer)
		for i := range ops {
			row, col := int32(rng.Intn(base.Rows)), int32(rng.Intn(base.Cols))
			del := rng.Float64() < 0.25
			var val float64
			if !del {
				val = rng.NormFloat64()
			}
			ops[i] = MutateOp{Row: row, Col: col, Val: val, Del: del}
			dops[i] = delta.Op{Row: row, Col: col, Val: val, Del: del}
		}
		ov, err := (*delta.Overlay)(nil).Extend(cur, dops)
		if err != nil {
			t.Fatalf("fold batch %d: %v", b+1, err)
		}
		if ov.NNZ() > 0 {
			cur = ov.Merge()
		}
		plan.batches = append(plan.batches, ops)
		plan.states = append(plan.states, cur)
	}
	return plan
}

// multiplyRef computes the serial reference panel for one epoch state.
func multiplyRef(t *testing.T, st *matrix.COO[float64], b *matrix.Dense[float64], k int) *matrix.Dense[float64] {
	t.Helper()
	kern, err := core.New("csr-serial", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	p.K = k
	if err := kern.Prepare(st, p); err != nil {
		t.Fatal(err)
	}
	c := matrix.NewDense[float64](st.Rows, k)
	if err := kern.Calculate(b, c, p); err != nil {
		t.Fatal(err)
	}
	return c
}

// registerSmall uploads a deterministic random triplet matrix and returns
// the registration plus the canonical local copy (the epoch-0 state).
func registerSmall(t *testing.T, c *Client, rows, cols, nnz int, seed int64) (*RegisterResponse, *matrix.COO[float64]) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rr := RegisterRequest{
		Rows:   rows,
		Cols:   cols,
		RowIdx: make([]int32, nnz),
		ColIdx: make([]int32, nnz),
		Vals:   make([]float64, nnz),
	}
	for i := 0; i < nnz; i++ {
		rr.RowIdx[i] = int32(rng.Intn(rows))
		rr.ColIdx[i] = int32(rng.Intn(cols))
		rr.Vals[i] = rng.NormFloat64()
	}
	local := &matrix.COO[float64]{
		Rows:   rows,
		Cols:   cols,
		RowIdx: append([]int32(nil), rr.RowIdx...),
		ColIdx: append([]int32(nil), rr.ColIdx...),
		Vals:   append([]float64(nil), rr.Vals...),
	}
	Canonicalize(local)
	reg, err := c.Register(rr)
	if err != nil {
		t.Fatal(err)
	}
	if got := ContentID(local); got != reg.ID {
		t.Fatalf("local canonical copy hashes to %s, server registered %s", got, reg.ID)
	}
	return reg, local
}

// mutateInfo fetches one matrix's listing entry.
func mutateInfo(t *testing.T, c *Client, id string) MatrixInfo {
	t.Helper()
	infos, err := c.Matrices()
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		if info.ID == id {
			return info
		}
	}
	t.Fatalf("matrix %s not listed", id)
	return MatrixInfo{}
}

// TestMutateServeBitwise walks a mutation plan epoch by epoch: every ack
// carries the expected epoch and content hash, every multiply between
// batches is bitwise-identical to the serial reference over that epoch's
// merged content, and a forced compaction restores the canonical base
// hash without changing a single served bit.
func TestMutateServeBitwise(t *testing.T) {
	const k = 8
	// Background compaction disabled: this test pins the exact hash at
	// every epoch, so the only compaction allowed is the forced one below.
	_, client, _ := newTestServer(t, Config{Threads: 2, CompactRatio: -1, CompactCost: -1})
	reg, local := registerSmall(t, client, 256, 200, 1500, 7)
	plan := buildDeltaPlan(t, local, 6, 16, 11)

	for b, ops := range plan.batches {
		epoch := int64(b + 1)
		resp, err := client.Mutate(reg.ID, ops)
		if err != nil {
			t.Fatalf("mutate batch %d: %v", epoch, err)
		}
		if resp.Epoch != epoch {
			t.Fatalf("batch %d acked epoch %d", epoch, resp.Epoch)
		}
		wantHash := reg.ID
		if resp.OverlayNNZ > 0 {
			wantHash = fmt.Sprintf("%s+e%d", reg.ID, epoch)
		}
		if resp.Hash != wantHash {
			t.Fatalf("epoch %d hash %q, want %q", epoch, resp.Hash, wantHash)
		}

		bm := matrix.NewDenseRand[float64](reg.Cols, k, 100+epoch)
		res, err := client.Multiply(reg.ID, reg.Rows, bm, k, 0)
		if err != nil {
			t.Fatalf("multiply at epoch %d: %v", epoch, err)
		}
		if res.Epoch != epoch || res.Hash != resp.Hash {
			t.Fatalf("multiply at epoch %d answered epoch %d hash %q, want hash %q",
				epoch, res.Epoch, res.Hash, resp.Hash)
		}
		ref := multiplyRef(t, plan.states[epoch], bm, k)
		if diff, _ := res.C.MaxAbsDiff(ref); diff != 0 {
			t.Fatalf("epoch %d multiply differs from merged reference by %g", epoch, diff)
		}
	}

	// Forced compaction: epoch sticks, hash re-bases to the merged
	// triplets' canonical content address, bits stay identical.
	final := int64(len(plan.batches))
	mergedID := ContentID(plan.states[final])
	cres, err := client.Compact(reg.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !cres.Compacted || cres.Epoch != final || cres.Hash != mergedID {
		t.Fatalf("compact answered %+v, want compacted at epoch %d hash %s", cres, final, mergedID)
	}
	bm := matrix.NewDenseRand[float64](reg.Cols, k, 999)
	res, err := client.Multiply(reg.ID, reg.Rows, bm, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != final || res.Hash != mergedID {
		t.Fatalf("post-compact multiply at epoch %d hash %q, want epoch %d hash %s",
			res.Epoch, res.Hash, final, mergedID)
	}
	ref := multiplyRef(t, plan.states[final], bm, k)
	if diff, _ := res.C.MaxAbsDiff(ref); diff != 0 {
		t.Fatalf("post-compact multiply differs by %g", diff)
	}
	// Nothing left to merge.
	if cres, err = client.Compact(reg.ID); err != nil || cres.Compacted {
		t.Fatalf("second compact: %+v, %v; want a no-op", cres, err)
	}

	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	d := stats.Delta
	if d == nil || d.Mutations != final || d.Compactions != 1 || d.Mutated != 0 || d.OverlayNNZ != 0 {
		t.Fatalf("stats delta %+v, want %d mutations, 1 compaction, no pending overlay", d, final)
	}
}

// TestMutateValidation pins the refusal paths: unknown matrix, empty
// batch, and out-of-range coordinates — none may advance the epoch.
func TestMutateValidation(t *testing.T) {
	_, client, _ := newTestServer(t, Config{Threads: 1})
	reg, _ := registerSmall(t, client, 64, 64, 300, 3)

	_, err := client.Mutate("deadbeefdeadbeef", []MutateOp{{Row: 0, Col: 0, Val: 1}})
	if se, ok := err.(*StatusError); !ok || se.Code != http.StatusNotFound {
		t.Fatalf("mutate unknown id: %v, want 404", err)
	}
	_, err = client.Mutate(reg.ID, nil)
	if se, ok := err.(*StatusError); !ok || se.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: %v, want 400", err)
	}
	_, err = client.Mutate(reg.ID, []MutateOp{{Row: int32(reg.Rows), Col: 0, Val: 1}})
	if se, ok := err.(*StatusError); !ok || se.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range row: %v, want 400", err)
	}
	if info := mutateInfo(t, client, reg.ID); info.Epoch != 0 || info.Hash != reg.ID {
		t.Fatalf("rejected batches advanced state: %+v", info)
	}
}

// TestExportOverlayRoundTrip moves a mutated matrix the way the cluster
// rebalancer does: export from one server (base + pending overlay,
// epoch-tagged), import into a fresh one, and require the copy to serve
// bitwise-identical results at the identical epoch and content hash —
// before AND after the source compacts.
func TestExportOverlayRoundTrip(t *testing.T) {
	const k = 4
	_, src, _ := newTestServer(t, Config{Threads: 1})
	reg, local := registerSmall(t, src, 120, 90, 700, 21)
	plan := buildDeltaPlan(t, local, 3, 10, 31)
	for _, ops := range plan.batches {
		if _, err := src.Mutate(reg.ID, ops); err != nil {
			t.Fatal(err)
		}
	}

	exp, err := src.Export(reg.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !exp.Mutated() || exp.Epoch != 3 || len(exp.OvRowIdx) == 0 {
		t.Fatalf("export of a mutated matrix carries no overlay state: epoch=%d ov=%d",
			exp.Epoch, len(exp.OvRowIdx))
	}
	if got := ContentID(&matrix.COO[float64]{Rows: exp.Rows, Cols: exp.Cols,
		RowIdx: exp.RowIdx, ColIdx: exp.ColIdx, Vals: exp.Vals}); got != reg.ID {
		t.Fatalf("export base triplets hash to %s, want the uncompacted base %s", got, reg.ID)
	}

	_, dst, _ := newTestServer(t, Config{Threads: 1})
	reg2, err := dst.Register(exp.Request())
	if err != nil {
		t.Fatal(err)
	}
	if reg2.ID != reg.ID {
		t.Fatalf("import adopted handle %s, want %s", reg2.ID, reg.ID)
	}
	bm := matrix.NewDenseRand[float64](reg.Cols, k, 55)
	ref := multiplyRef(t, plan.states[3], bm, k)
	for name, cl := range map[string]*Client{"source": src, "import": dst} {
		res, err := cl.Multiply(reg.ID, reg.Rows, bm, k, 0)
		if err != nil {
			t.Fatalf("%s multiply: %v", name, err)
		}
		if res.Epoch != 3 || res.Hash != exp.Hash {
			t.Fatalf("%s serves epoch %d hash %q, want 3/%q", name, res.Epoch, res.Hash, exp.Hash)
		}
		if diff, _ := res.C.MaxAbsDiff(ref); diff != 0 {
			t.Fatalf("%s multiply differs from merged reference by %g", name, diff)
		}
	}

	// Compact the source and round-trip again: the export now carries a
	// re-based BaseHash and no overlay.
	if cres, err := src.Compact(reg.ID); err != nil || !cres.Compacted {
		t.Fatalf("compact: %+v, %v", cres, err)
	}
	exp2, err := src.Export(reg.ID)
	if err != nil {
		t.Fatal(err)
	}
	mergedID := ContentID(plan.states[3])
	if exp2.BaseHash != mergedID || len(exp2.OvRowIdx) != 0 || exp2.Hash != mergedID {
		t.Fatalf("post-compact export %+v, want base hash %s and no overlay", exp2, mergedID)
	}
	_, dst2, _ := newTestServer(t, Config{Threads: 1})
	if reg3, err := dst2.Register(exp2.Request()); err != nil || reg3.ID != reg.ID {
		t.Fatalf("post-compact import: %v, id %v", err, reg3)
	}
	res, err := dst2.Multiply(reg.ID, reg.Rows, bm, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diff, _ := res.C.MaxAbsDiff(ref); diff != 0 {
		t.Fatalf("post-compact import multiply differs by %g", diff)
	}
}

// TestMutateDurableAcrossRestart is the mutation durability contract: a
// mutate→compact→mutate history survives a restart exactly — epoch,
// content hash, pending overlay, and served bits — and the epoch sequence
// continues where it left off.
func TestMutateDurableAcrossRestart(t *testing.T) {
	const k = 4
	dir := t.TempDir()
	_, c1, teardown1 := durableServer(t, dir, nil)
	reg, local := registerSmall(t, c1, 180, 140, 900, 17)
	plan := buildDeltaPlan(t, local, 6, 14, 23)

	for b := 0; b < 3; b++ {
		if _, err := c1.Mutate(reg.ID, plan.batches[b]); err != nil {
			t.Fatal(err)
		}
	}
	if cres, err := c1.Compact(reg.ID); err != nil || !cres.Compacted {
		t.Fatalf("compact: %+v, %v", cres, err)
	}
	var last *MutateResponse
	var err error
	for b := 3; b < 5; b++ {
		if last, err = c1.Mutate(reg.ID, plan.batches[b]); err != nil {
			t.Fatal(err)
		}
	}
	wantHash := fmt.Sprintf("%s+e%d", ContentID(plan.states[3]), 5)
	if last.Epoch != 5 || last.Hash != wantHash {
		t.Fatalf("pre-restart state epoch %d hash %q, want 5/%q", last.Epoch, last.Hash, wantHash)
	}
	teardown1()

	_, c2, _ := durableServer(t, dir, nil)
	info := mutateInfo(t, c2, reg.ID)
	if info.Epoch != 5 || info.Hash != wantHash || info.OverlayNNZ != last.OverlayNNZ {
		t.Fatalf("recovered state %+v, want epoch 5 hash %q overlay %d",
			info, wantHash, last.OverlayNNZ)
	}
	bm := matrix.NewDenseRand[float64](reg.Cols, k, 77)
	res, err := c2.Multiply(reg.ID, reg.Rows, bm, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 5 || res.Hash != wantHash {
		t.Fatalf("recovered multiply at epoch %d hash %q", res.Epoch, res.Hash)
	}
	if diff, _ := res.C.MaxAbsDiff(multiplyRef(t, plan.states[5], bm, k)); diff != 0 {
		t.Fatalf("recovered multiply differs from pre-crash content by %g", diff)
	}
	// The epoch sequence continues: no replayed batch, no gap.
	next, err := c2.Mutate(reg.ID, plan.batches[5])
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch != 6 {
		t.Fatalf("post-restart mutation acked epoch %d, want 6", next.Epoch)
	}
}

// TestMutateFsyncFailureNeverAcks extends the ack-after-durable contract
// to mutations: an fsync failure on the mutate WAL append yields a 503,
// the epoch does not advance, and a restart shows no trace of the failed
// batch — while the retry lands cleanly.
func TestMutateFsyncFailureNeverAcks(t *testing.T) {
	dir := t.TempDir()
	inject := harness.NewInjector(1)
	_, c1, teardown1 := durableServer(t, dir, inject)
	reg, local := registerSmall(t, c1, 96, 96, 500, 9)
	plan := buildDeltaPlan(t, local, 1, 12, 19)

	inject.Arm(harness.Fault{
		Point: harness.PointWALSync, Kind: harness.FaultErr,
		Err: errors.New("fsync: input/output error"),
	})
	_, err := c1.Mutate(reg.ID, plan.batches[0])
	if se, ok := err.(*StatusError); !ok || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("mutate with failing fsync: %v, want a 503", err)
	}
	if info := mutateInfo(t, c1, reg.ID); info.Epoch != 0 {
		t.Fatalf("un-durable mutation advanced the epoch: %+v", info)
	}
	// Single-shot fault: the retry is the real ack.
	resp, err := c1.Mutate(reg.ID, plan.batches[0])
	if err != nil || resp.Epoch != 1 {
		t.Fatalf("retry: %+v, %v, want epoch 1", resp, err)
	}
	teardown1()

	_, c2, _ := durableServer(t, dir, nil)
	if info := mutateInfo(t, c2, reg.ID); info.Epoch != 1 {
		t.Fatalf("restart recovered epoch %d, want exactly the acked 1", info.Epoch)
	}
	bm := matrix.NewDenseRand[float64](reg.Cols, 4, 5)
	res, err := c2.Multiply(reg.ID, reg.Rows, bm, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diff, _ := res.C.MaxAbsDiff(multiplyRef(t, plan.states[1], bm, 4)); diff != 0 {
		t.Fatalf("recovered content differs by %g", diff)
	}
}

// TestCrashMidCompaction injects a torn write into the compaction's WAL
// append — the crash window between "merge computed" and "boundary
// durable". The compaction must fail without changing ANY served state
// (epoch, hash, overlay, bits), a restart must recover the exact
// pre-crash state, and a clean retry must then compact normally.
func TestCrashMidCompaction(t *testing.T) {
	const k = 4
	dir := t.TempDir()
	inject := harness.NewInjector(1)
	_, c1, teardown1 := durableServer(t, dir, inject)
	reg, local := registerSmall(t, c1, 150, 110, 800, 13)
	plan := buildDeltaPlan(t, local, 3, 12, 29)
	var last *MutateResponse
	var err error
	for _, ops := range plan.batches {
		if last, err = c1.Mutate(reg.ID, ops); err != nil {
			t.Fatal(err)
		}
	}
	wantHash := fmt.Sprintf("%s+e3", reg.ID)

	inject.Arm(harness.Fault{Point: harness.PointWALAppend, Kind: harness.FaultTorn})
	_, err = c1.Compact(reg.ID)
	if se, ok := err.(*StatusError); !ok || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("compact over a torn WAL append: %v, want a 503", err)
	}
	info := mutateInfo(t, c1, reg.ID)
	if info.Epoch != 3 || info.Hash != wantHash || info.OverlayNNZ != last.OverlayNNZ {
		t.Fatalf("failed compaction changed live state: %+v", info)
	}
	bm := matrix.NewDenseRand[float64](reg.Cols, k, 61)
	ref := multiplyRef(t, plan.states[3], bm, k)
	res, err := c1.Multiply(reg.ID, reg.Rows, bm, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diff, _ := res.C.MaxAbsDiff(ref); diff != 0 {
		t.Fatalf("multiply after failed compaction differs by %g", diff)
	}
	teardown1()

	// Restart across the torn record: the exact pre-crash state comes back.
	_, c2, teardown2 := durableServer(t, dir, nil)
	info = mutateInfo(t, c2, reg.ID)
	if info.Epoch != 3 || info.Hash != wantHash || info.OverlayNNZ != last.OverlayNNZ {
		t.Fatalf("recovered state %+v, want pre-crash epoch 3 hash %q", info, wantHash)
	}
	res, err = c2.Multiply(reg.ID, reg.Rows, bm, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diff, _ := res.C.MaxAbsDiff(ref); diff != 0 {
		t.Fatalf("recovered multiply differs by %g", diff)
	}
	// Clean retry compacts, and the compaction itself is durable.
	mergedID := ContentID(plan.states[3])
	if cres, err := c2.Compact(reg.ID); err != nil || !cres.Compacted || cres.Hash != mergedID {
		t.Fatalf("retry compact: %+v, %v, want hash %s", cres, err, mergedID)
	}
	teardown2()
	_, c3, _ := durableServer(t, dir, nil)
	info = mutateInfo(t, c3, reg.ID)
	if info.Epoch != 3 || info.Hash != mergedID || info.OverlayNNZ != 0 {
		t.Fatalf("compacted state did not survive restart: %+v", info)
	}
	res, err = c3.Multiply(reg.ID, reg.Rows, bm, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diff, _ := res.C.MaxAbsDiff(ref); diff != 0 {
		t.Fatalf("post-compact recovered multiply differs by %g", diff)
	}
}

// TestMutateRaceE2E is the acceptance e2e, sized for -race: 1000 mutation
// batches stream against concurrent multiplies with aggressive background
// compaction, and every multiply is verified bitwise against the merged
// content of the exact epoch the server answered at. Compactions re-base
// the matrix many times mid-stream; no response may ever mix epochs.
func TestMutateRaceE2E(t *testing.T) {
	const (
		k       = 4
		batches = 1000
		opsPer  = 4
		workers = 4
	)
	_, client, _ := newTestServer(t, Config{
		Threads:      2,
		BatchWindow:  200 * time.Microsecond,
		MaxInFlight:  workers,
		QueueDepth:   4 * workers,
		CompactRatio: 0.01, // overlay > 1% of base nnz triggers the compactor
	})
	reg, local := registerSmall(t, client, 300, 240, 1500, 43)
	plan := buildDeltaPlan(t, local, batches, opsPer, 47)

	// Reference kernels are built lazily per observed epoch — the workers
	// only pay for epochs they actually landed on.
	var refMu sync.Mutex
	kerns := map[int64]core.Kernel{}
	refFor := func(epoch int64, bm *matrix.Dense[float64]) (*matrix.Dense[float64], error) {
		refMu.Lock()
		defer refMu.Unlock()
		kern, ok := kerns[epoch]
		if !ok {
			var err error
			if kern, err = core.New("csr-serial", core.Options{}); err != nil {
				return nil, err
			}
			p := core.DefaultParams()
			p.K = k
			if err := kern.Prepare(plan.states[epoch], p); err != nil {
				return nil, err
			}
			kerns[epoch] = kern
		}
		p := core.DefaultParams()
		p.K = k
		c := matrix.NewDense[float64](reg.Rows, k)
		if err := kern.Calculate(bm, c, p); err != nil {
			return nil, err
		}
		return c, nil
	}

	var done atomic.Bool
	errs := make(chan error, workers+1)
	var wg sync.WaitGroup
	var verified atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !done.Load(); i++ {
				bm := matrix.NewDenseRand[float64](reg.Cols, k, int64(1000*w+i))
				res, err := client.Multiply(reg.ID, reg.Rows, bm, k, 0)
				if err != nil {
					errs <- fmt.Errorf("worker %d multiply %d: %w", w, i, err)
					return
				}
				ref, err := refFor(res.Epoch, bm)
				if err != nil {
					errs <- err
					return
				}
				if diff, _ := res.C.MaxAbsDiff(ref); diff != 0 {
					errs <- fmt.Errorf("worker %d: epoch %d response differs from its merged reference by %g",
						w, res.Epoch, diff)
					return
				}
				verified.Add(1)
			}
		}(w)
	}

	for b, ops := range plan.batches {
		resp, err := client.Mutate(reg.ID, ops)
		if err != nil {
			done.Store(true)
			wg.Wait()
			t.Fatalf("mutate batch %d: %v", b+1, err)
		}
		if resp.Epoch != int64(b+1) {
			done.Store(true)
			wg.Wait()
			t.Fatalf("batch %d acked epoch %d", b+1, resp.Epoch)
		}
	}
	done.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delta == nil || stats.Delta.Mutations != batches {
		t.Fatalf("stats delta %+v, want %d mutation batches", stats.Delta, batches)
	}
	if stats.Delta.Compactions < 2 {
		t.Fatalf("only %d background compactions across %d batches — the cost model never fired",
			stats.Delta.Compactions, batches)
	}
	if verified.Load() == 0 {
		t.Fatal("no concurrent multiply was verified")
	}

	// Settle: force a final compaction and check the terminal state is the
	// canonical content address of the fully merged matrix.
	if _, err := client.Compact(reg.ID); err != nil {
		t.Fatal(err)
	}
	mergedID := ContentID(plan.states[batches])
	bm := matrix.NewDenseRand[float64](reg.Cols, k, 424242)
	res, err := client.Multiply(reg.ID, reg.Rows, bm, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != batches || res.Hash != mergedID {
		t.Fatalf("terminal state epoch %d hash %q, want %d/%s", res.Epoch, res.Hash, batches, mergedID)
	}
	ref, err := refFor(batches, bm)
	if err != nil {
		t.Fatal(err)
	}
	if diff, _ := res.C.MaxAbsDiff(ref); diff != 0 {
		t.Fatalf("terminal multiply differs by %g", diff)
	}
	t.Logf("race e2e: %d batches, %d compactions, %d concurrent multiplies verified bitwise",
		batches, stats.Delta.Compactions, verified.Load())
}
