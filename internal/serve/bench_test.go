package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/matrix"
	"repro/internal/trace"
	"repro/internal/tune"
)

// benchServer builds a warmed server + client for the serving-path
// benchmarks: matrix registered, format prepared, so the measured loop is
// pure steady-state (admission → cache hit → dispatch → panel write).
func benchServer(b *testing.B, cfg Config) (*Server, *Client, *RegisterResponse, func()) {
	b.Helper()
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	tr := &http.Transport{MaxIdleConnsPerHost: 64}
	c := NewClient(ts.URL)
	c.HTTP = &http.Client{Transport: tr}
	reg, err := c.Register(RegisterRequest{Name: "dw4096", Scale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	return s, c, reg, func() {
		tr.CloseIdleConnections()
		ts.Close()
		s.Close()
	}
}

// BenchmarkServeCachedMultiply is the single-client round-trip latency of a
// cached multiply: HTTP overhead + panel codec + one kernel dispatch, zero
// preparation. This is the serving layer's perf-baseline number.
func BenchmarkServeCachedMultiply(b *testing.B) {
	const k = 32
	_, client, reg, done := benchServer(b, Config{BatchWindow: 0})
	defer done()
	panel := matrix.NewDenseRand[float64](reg.Cols, k, 1)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := client.Multiply(reg.ID, reg.Rows, panel, k, 0)
		if err != nil {
			b.Fatal(err)
		}
		if !res.CacheHit {
			b.Fatal("benchmark multiply missed the prepared-format cache")
		}
	}
}

// BenchmarkServeUnbatched is concurrent throughput with coalescing off:
// every request pays its own kernel launch.
func BenchmarkServeUnbatched(b *testing.B) {
	benchConcurrent(b, 0)
}

// BenchmarkServeBatched is the same load with a 500µs window: concurrent
// same-matrix requests stack into wider-k dispatches. Comparing against
// BenchmarkServeUnbatched prices the coalescing machinery.
func BenchmarkServeBatched(b *testing.B) {
	benchConcurrent(b, 500*time.Microsecond)
}

// BenchmarkTunedMultiply prices the auto-tuner on the serving path:
// steady-state cached multiplies with tuning off (advisor's static pick)
// versus on (5% shadow-measurement duty, post-exploration). The tuned
// number carries both the tuner's off-critical-path overhead and whatever
// promotion it found during warm-up.
func BenchmarkTunedMultiply(b *testing.B) {
	const k = 32
	for _, mode := range []struct {
		name string
		tc   *tune.Config
	}{
		{"advisor", nil},
		{"tuned", &tune.Config{Duty: 0.05, MinSamples: 8}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := Config{BatchWindow: 0}
			if mode.tc != nil {
				tc := *mode.tc
				cfg.Tune = &tc
			}
			s, client, reg, done := benchServer(b, cfg)
			defer done()
			panel := matrix.NewDenseRand[float64](reg.Cols, k, 1)
			// Warm to steady state: format resident, and with tuning on the
			// exploration phase mostly behind us before the clock starts.
			for i := 0; i < 200; i++ {
				if _, err := client.Multiply(reg.ID, reg.Rows, panel, k, 0); err != nil {
					b.Fatal(err)
				}
			}
			if s.Tuner() != nil {
				s.Tuner().Flush()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Multiply(reg.ID, reg.Rows, panel, k, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALAppend prices the durability tax on registration: seal (two
// JSON marshals + CRC32), write, fsync — per record, on a generator-spec
// record (the common case, a few hundred bytes). The fsync dominates; the
// NoFsync variant isolates the CPU cost of sealing.
func BenchmarkWALAppend(b *testing.B) {
	for _, mode := range []struct {
		name  string
		fsync bool
	}{{"fsync", true}, {"nosync", false}} {
		b.Run(mode.name, func(b *testing.B) {
			w, err := openWAL(b.TempDir()+"/wal.jsonl", mode.fsync, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer w.close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := &walRecord{
					Seq: uint64(i + 1),
					ID:  "benchbenchbench0", Rows: 8192, Cols: 8192,
					Name: "dw4096", Scale: 1,
					Format: "csr", Schedule: "static", Block: 4,
				}
				if err := w.append(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRequestTraceOverhead prices the per-request tracing
// instrumentation exactly as the multiply handler runs it: begin, queue
// phase, prepare phase, batcher fan-out (batch + kernel), respond, finish,
// and (enabled only) the X-Spmm-Timing render. The disabled variant is the
// hot path every untraced deployment pays and must stay at 0 allocs/op —
// scripts/bench.sh gates on it via the stored baseline.
func BenchmarkRequestTraceOverhead(b *testing.B) {
	run := func(b *testing.B, rr *trace.Requests) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := rr.Begin("bench-rid", "bench-matrix")
			qs := req.Now()
			req.Phase(trace.PhaseQueue, "", qs, 0)
			ps := req.Now()
			req.Phase(trace.PhasePrepare, "hit", ps, 0)
			at := req.Now()
			req.AddPhase(trace.PhaseBatch, "csr", at, 1000, 1)
			req.AddPhase(trace.PhaseKernel, "csr-omp", at, 5000, 32)
			rs := req.Now()
			if rr.Enabled() {
				snap := req.Snapshot()
				_ = FormatTiming(snap, trace.PhaseRespond, snap.TotalNs-rs)
			}
			req.Phase(trace.PhaseRespond, "", rs, 0)
			req.Finish()
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("enabled", func(b *testing.B) { run(b, trace.NewRequests(512)) })
}

func benchConcurrent(b *testing.B, window time.Duration) {
	const k = 32
	_, client, reg, done := benchServer(b, Config{BatchWindow: window, MaxBatchK: 4096})
	defer done()

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		panel := matrix.NewDenseRand[float64](reg.Cols, k, 1)
		for pb.Next() {
			if _, err := client.Multiply(reg.ID, reg.Rows, panel, k, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
