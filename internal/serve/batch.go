package serve

import (
	"context"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/matrix"
	"repro/internal/trace"
)

// batcher coalesces concurrent multiply requests against one matrix into a
// single wider-k kernel dispatch. SpMM throughput grows with k (the B-panel
// width) because every loaded nonzero of A is reused across all k columns —
// so stacking the B panels of requests that arrive within a short window
// and running one A×[B1|B2|...] multiplies the arithmetic intensity of the
// dispatch at the cost of two panel copies. The window is the classic
// latency/throughput trade: a solo request waits out the window before it
// runs; a loaded server amortizes one kernel launch over the whole batch.
type batcher struct {
	s *Server
	m *Matrix

	mu       sync.Mutex
	pending  []*batchRequest
	pendingK int
	timer    clock.Timer
}

// batchRequest is one caller's panel waiting in the batch. done is buffered
// so the flusher never blocks on a caller that gave up (deadline expired).
// The whole Serving view travels together: the kernel was prepared under
// exactly that plan version, so a promotion landing mid-batch cannot mix a
// new plan's parameters with an old plan's format — and the epoch + overlay
// pin which mutation state the dispatch computes.
type batchRequest struct {
	sv   Serving
	b    *matrix.Dense[float64]
	k    int
	done chan batchResult
	// req is the caller's request-trace timeline (nil when request tracing
	// is off); joined is the caller's own clock at join time, so the flusher
	// can attribute the batch wait and fan the dispatch's kernel interval
	// out to every member's record.
	req    *trace.Req
	joined int64
}

// batchResult is what a flush hands back to each coalesced caller.
type batchResult struct {
	c     *matrix.Dense[float64]
	plan  Plan // the plan the dispatch executed under
	width int  // requests coalesced into the dispatch
	k     int  // total dense columns of the dispatch
	err   error
}

// multiply runs one request through the batcher. With batching disabled
// (window <= 0) or a panel already at the batch-width cap it dispatches
// immediately; otherwise it joins the open batch (starting the window timer
// if it is the first) and waits for the flush or the caller's deadline,
// whichever comes first.
func (t *batcher) multiply(ctx context.Context, sv Serving, b *matrix.Dense[float64], k int, tr *trace.Req) batchResult {
	if t.s.cfg.BatchWindow <= 0 || k >= t.s.cfg.MaxBatchK {
		req := &batchRequest{sv: sv, b: b, k: k, done: make(chan batchResult, 1), req: tr, joined: tr.Now()}
		t.run([]*batchRequest{req})
		return <-req.done
	}
	req := &batchRequest{sv: sv, b: b, k: k, done: make(chan batchResult, 1), req: tr, joined: tr.Now()}
	t.mu.Lock()
	// A mutation landing between two joiners' Prepared calls must not let
	// them share one dispatch: same-epoch requests are bitwise-exchangeable,
	// cross-epoch ones are not. Flush the stale-epoch batch immediately and
	// open a fresh one for this request.
	if len(t.pending) > 0 && t.pending[0].sv.Epoch != sv.Epoch {
		stale := t.takeLocked()
		go t.run(stale)
	}
	t.pending = append(t.pending, req)
	t.pendingK += k
	if len(t.pending) == 1 {
		// The window timer comes from the server's injectable clock, so
		// tests script the coalescing window instead of sleeping on it.
		t.timer = t.s.clk.AfterFunc(t.s.cfg.BatchWindow, t.flushPending)
	}
	var full []*batchRequest
	if t.pendingK >= t.s.cfg.MaxBatchK {
		full = t.takeLocked()
	}
	t.mu.Unlock()
	if full != nil {
		t.run(full)
	}
	select {
	case res := <-req.done:
		return res
	case <-ctx.Done():
		// The batch may still execute and discard this caller's column
		// block; the buffered done channel lets the flusher move on.
		return batchResult{err: ctx.Err()}
	}
}

// takeLocked claims the open batch and disarms its timer. Callers hold t.mu.
func (t *batcher) takeLocked() []*batchRequest {
	batch := t.pending
	t.pending = nil
	t.pendingK = 0
	if t.timer != nil {
		t.timer.Stop()
		t.timer = nil
	}
	return batch
}

// flushPending is the window-timer callback.
func (t *batcher) flushPending() {
	t.mu.Lock()
	batch := t.takeLocked()
	t.mu.Unlock()
	if len(batch) > 0 {
		t.run(batch)
	}
}

// run dispatches one batch as a single kernel call and distributes the
// result columns back to the callers. A width-1 batch skips the panel
// copies and dispatches on the caller's B directly.
func (t *batcher) run(batch []*batchRequest) {
	s := t.s
	totalK := 0
	for _, req := range batch {
		totalK += req.k
	}
	rows := t.m.COO.Rows
	cols := t.m.COO.Cols
	// The whole batch executes under the first member's Serving view; the
	// epoch-split in multiply() guarantees every member captured the same
	// epoch, so later joiners that captured a different (promoted) plan
	// still get a bitwise-identical result — every servable variant holds
	// the bitwise contract — just attributed to this dispatch's plan.
	sv := batch[0].sv
	kern := sv.Kernel
	plan := sv.Plan

	// dispatchAt anchors the members' request timelines: everything from
	// here to the kernel's return — panel assembly and overlay application
	// included — is the "kernel" phase fanned out to every joined request
	// below.
	dispatchAt := time.Now()
	span := s.tracer.Start()
	var err error
	var combB, combC *matrix.Dense[float64]
	if len(batch) == 1 {
		combB = batch[0].b
		combC = matrix.NewDense[float64](rows, batch[0].k)
		err = kern.Calculate(combB, combC, s.params(plan, batch[0].k))
	} else {
		combB = matrix.NewDense[float64](cols, totalK)
		for i := 0; i < cols; i++ {
			dst := combB.Row(i)
			off := 0
			for _, req := range batch {
				copy(dst[off:off+req.k], req.b.Row(i)[:req.k])
				off += req.k
			}
		}
		combC = matrix.NewDense[float64](rows, totalK)
		err = kern.Calculate(combB, combC, s.params(plan, totalK))
	}
	// Mutated matrix: recompute the dirty rows from base + overlay on top of
	// the prepared format's result. On the clean path (nil or empty overlay)
	// this is a single branch — zero allocations, zero work.
	if err == nil && sv.Overlay.NNZ() > 0 {
		applyStart := time.Now()
		sv.Overlay.Apply(combC, combB, totalK)
		applyNs := int64(time.Since(applyStart))
		t.m.applyNs.Add(applyNs)
		obsDeltaApplySeconds.Observe(float64(applyNs) / 1e9)
		if s.reg.shouldCompact(t.m, s.costModel) {
			s.requestCompact(t.m.ID)
		}
	}
	s.tracer.EndDetail(0, trace.PhaseBatch, plan.Format, span, int64(len(batch)))
	s.countVariant(plan.Variant, int64(len(batch)))
	kernelNs := int64(time.Since(dispatchAt))
	for _, req := range batch {
		if req.req != nil {
			at := req.req.At(dispatchAt)
			wait := at - req.joined
			if wait < 0 {
				wait = 0
			}
			req.req.AddPhase(trace.PhaseBatch, plan.Format, req.joined, wait, int64(len(batch)))
			req.req.AddPhase(trace.PhaseKernel, plan.Variant, at, kernelNs, int64(totalK))
		}
	}

	s.batches.Add(1)
	s.batchedRequests.Add(int64(len(batch)))
	s.multiplies.Add(int64(len(batch)))
	obsBatches.Inc()
	obsBatchedRequests.Add(int64(len(batch)))
	obsMultiplies.Add(int64(len(batch)))
	obsBatchWidth.Observe(float64(len(batch)))

	if err != nil {
		for _, req := range batch {
			req.done <- batchResult{err: err, plan: plan, width: len(batch), k: totalK}
		}
		return
	}
	if len(batch) == 1 {
		batch[0].done <- batchResult{c: combC, plan: plan, width: 1, k: totalK}
		return
	}
	off := 0
	for _, req := range batch {
		c := matrix.NewDense[float64](rows, req.k)
		for i := 0; i < rows; i++ {
			copy(c.Row(i), combC.Row(i)[off:off+req.k])
		}
		off += req.k
		req.done <- batchResult{c: c, plan: plan, width: len(batch), k: totalK}
	}
}
