package serve

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/matrix"
)

// Registry is the server's matrix store: uploaded matrices keyed by
// content-addressed IDs, plus a bytes-bounded LRU cache of prepared formats.
// The registry owns the COO base representations permanently (they are the
// ground truth a prepared format can always be rebuilt from); the prepared
// formats — the expensive, large artifacts — live in the LRU and are evicted
// when the byte budget fills. A cache hit means a multiply pays zero
// preparation: the thesis' amortization argument (§6.2, preparation cost
// only pays off across repeated multiplies) turned into a serving policy.
type Registry struct {
	capacity int64 // prepared-cache byte budget; <= 0 means unbounded
	threads  int   // partition-warm target for prepared formats
	opts     core.Options

	// persist, when set, durably logs a registration BEFORE the matrix
	// becomes visible; a persist failure fails the registration, so a
	// successful Register is always recoverable. It returns a commit
	// callback the registry must invoke once the matrix is visible (or a
	// concurrent registration made it visible) — until then the durability
	// layer carries the record through compactions itself. The server
	// points it at Store.Append.
	persist func(*Matrix) (func(), error)

	mu       sync.Mutex
	matrices map[string]*Matrix
	order    []string // registration order, for stable listings
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used; holds *cacheEntry
	used     int64

	hits      atomic.Int64
	misses    atomic.Int64
	prepares  atomic.Int64
	evictions atomic.Int64
}

// Matrix is one registered matrix with its serving plan. The plan starts
// as the advisor's pick and is mutable: the online tuner (internal/tune)
// promotes a measured-faster variant by installing a new plan version.
// Multiplies read the plan through an atomic pointer, so a promotion never
// blocks the data path.
type Matrix struct {
	ID  string
	COO *matrix.COO[float64]
	// Report is the full advisor report behind the initial selection.
	Report advisor.Report
	// Source records how the matrix was uploaded. A generator spec lets
	// the WAL persist a few bytes and regenerate deterministically on
	// recovery; without one the WAL stores the canonical triplets.
	Source RegisterSource

	plan atomic.Pointer[Plan]
}

// Plan is one immutable serving-plan version: which kernel variant every
// multiply against the matrix dispatches on. Promotions install a new Plan
// with a bumped Version; the prepared-format cache keys on the version so
// a stale format is never served after a promotion.
type Plan struct {
	// Format is the sparse format multiplies dispatch on.
	Format string
	// Schedule is the work-partition choice.
	Schedule kernels.Schedule
	// Block is the BCSR block edge used when Format is "bcsr".
	Block int
	// Pooled selects dispatch on the persistent worker pool (the serving
	// default) versus fresh goroutines per call.
	Pooled bool
	// Variant is the kernels registry name of the executing arm — the
	// identity the tuner races and the X-Spmm-Variant header reports.
	Variant string
	// Version increments on every promotion; 1 is the advisor's plan.
	Version int64
}

// Plan returns the matrix's current serving plan.
func (m *Matrix) Plan() Plan { return *m.plan.Load() }

func (m *Matrix) setPlan(p Plan) { m.plan.Store(&p) }

// RegisterSource is the provenance of a registered matrix.
type RegisterSource struct {
	// Name is a generator-registry spec name ("" for direct uploads).
	Name string
	// Scale is the generator scale factor (normalized; never 0 when Name
	// is set).
	Scale float64
}

// cacheEntry is one prepared format in the LRU. ready closes once prepare
// finished (err set on failure), so concurrent requests for the same matrix
// share a single preparation instead of racing duplicate ones. plan is the
// plan version the format was prepared under; a promotion makes the entry
// stale and the next lookup re-prepares through the same ready-channel
// single-flight path.
type cacheEntry struct {
	id     string
	plan   Plan
	kernel core.Kernel
	bytes  int64
	ready  chan struct{}
	err    error
}

// NewRegistry builds a registry whose prepared-format cache holds at most
// capacityBytes of formatted matrices (<= 0 disables the bound). threads is
// the worker count prepared formats warm their balanced partitions for.
func NewRegistry(capacityBytes int64, threads int) *Registry {
	if threads < 1 {
		threads = 1
	}
	return &Registry{
		capacity: capacityBytes,
		threads:  threads,
		matrices: map[string]*Matrix{},
		entries:  map[string]*list.Element{},
		lru:      list.New(),
	}
}

// Canonicalize sorts m row-major and merges duplicate entries — the
// canonical form ContentID hashes and every format conversion starts from.
// Clients that verify results against a local kernel must canonicalize
// their copy the same way before preparing it.
func Canonicalize[T matrix.Float](m *matrix.COO[T]) {
	if !m.IsSortedRowMajor() {
		m.SortRowMajor()
	}
	m.Dedup()
}

// ContentID returns the content-addressed ID of a canonicalized matrix:
// the first 16 hex digits of the SHA-256 over dims and the row-major
// triplet stream. Two uploads of the same matrix — whether from a file or a
// generator spec — collapse to one registry entry.
func ContentID(m *matrix.COO[float64]) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(m.Rows))
	put(uint64(m.Cols))
	put(uint64(m.NNZ()))
	for i := range m.Vals {
		put(uint64(uint32(m.RowIdx[i]))<<32 | uint64(uint32(m.ColIdx[i])))
		put(math.Float64bits(m.Vals[i]))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Register adds a matrix to the registry, choosing its serving plan via the
// advisor, and reports whether it already existed. The registry takes
// ownership of m and canonicalizes it in place. Registration does not
// prepare the format — the first multiply (or an explicit Prepared call)
// does, so a registration burst cannot blow the cache budget.
func (r *Registry) Register(m *matrix.COO[float64]) (*Matrix, bool, error) {
	return r.RegisterSourced(m, RegisterSource{})
}

// RegisterSourced is Register with upload provenance: a generator spec lets
// the durability layer journal the spec instead of the triplets. When a
// persist hook is installed, the registration is durably logged before the
// matrix becomes visible — a persist failure fails the whole registration,
// so nothing is ever acked that a restart would forget.
func (r *Registry) RegisterSourced(m *matrix.COO[float64], src RegisterSource) (*Matrix, bool, error) {
	if err := m.Validate(); err != nil {
		return nil, false, fmt.Errorf("serve: register: %w", err)
	}
	Canonicalize(m)
	id := ContentID(m)

	r.mu.Lock()
	if got, ok := r.matrices[id]; ok {
		r.mu.Unlock()
		return got, true, nil
	}
	r.mu.Unlock()

	// Feature extraction and scoring run outside the lock: they cost a
	// pass over the nonzeros and must not stall concurrent multiplies.
	f, err := advisor.Extract(m)
	if err != nil {
		return nil, false, err
	}
	report := advisor.NewReport(id, f, []advisor.Environment{advisor.ParallelCPU})
	best := report.Best(advisor.ParallelCPU)
	sched := kernels.ScheduleStatic
	if report.Schedule.Format == "balanced" {
		sched = kernels.ScheduleBalanced
	}
	if src.Name != "" && src.Scale == 0 {
		src.Scale = 1
	}
	entry := &Matrix{
		ID:     id,
		COO:    m,
		Report: report,
		Source: src,
	}
	entry.setPlan(Plan{
		Format:   best.Format,
		Schedule: sched,
		Block:    4,
		Pooled:   true,
		Variant:  kernels.ServingVariant(best.Format, sched, true),
		Version:  1,
	})

	// Durability before visibility. Two racing registrations of the same
	// matrix may both journal it; replay dedups by content hash, so the
	// duplicate record is harmless. The commit callback runs only after
	// the insert below is visible (deferred behind the unlock): until
	// then a concurrent compaction cannot see the matrix in the registry
	// dump, and commit is what tells the store to stop carrying the
	// journaled record itself.
	if r.persist != nil {
		commit, err := r.persist(entry)
		if err != nil {
			return nil, false, fmt.Errorf("%w: %v", ErrNotDurable, err)
		}
		defer commit()
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.matrices[id]; ok { // lost a concurrent register race
		return got, true, nil
	}
	r.matrices[id] = entry
	r.order = append(r.order, id)
	return entry, false, nil
}

// restore inserts a recovered matrix directly, trusting the journaled
// serving plan instead of re-running the advisor — registration work is
// the state the WAL exists to preserve. Duplicates are ignored.
func (r *Registry) restore(entry *Matrix) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.matrices[entry.ID]; ok {
		return
	}
	r.matrices[entry.ID] = entry
	r.order = append(r.order, entry.ID)
}

// recordFor serializes a matrix into its WAL/snapshot record, carrying the
// CURRENT serving plan — so a snapshot taken after a promotion recovers
// straight into the promoted plan.
func recordFor(m *Matrix) *walRecord {
	plan := m.Plan()
	rec := &walRecord{
		ID:          m.ID,
		Rows:        m.COO.Rows,
		Cols:        m.COO.Cols,
		Format:      plan.Format,
		Schedule:    plan.Schedule.String(),
		Block:       plan.Block,
		Variant:     plan.Variant,
		PlanVersion: plan.Version,
		Report:      m.Report,
	}
	if m.Source.Name != "" {
		rec.Name, rec.Scale = m.Source.Name, m.Source.Scale
	} else {
		rec.RowIdx, rec.ColIdx, rec.Vals = m.COO.RowIdx, m.COO.ColIdx, m.COO.Vals
	}
	return rec
}

// matrixFromRecord rebuilds a registered matrix from its durable record:
// regenerate from the spec (and re-verify the content hash — the generator
// must reproduce the exact matrix that was acked) or adopt the stored
// canonical triplets.
func matrixFromRecord(rec *walRecord, regen func(name string, scale float64) (*matrix.COO[float64], error)) (*Matrix, error) {
	var coo *matrix.COO[float64]
	if rec.Name != "" {
		m, err := regen(rec.Name, rec.Scale)
		if err != nil {
			return nil, fmt.Errorf("serve: recover %s: regenerate %q: %w", rec.ID, rec.Name, err)
		}
		Canonicalize(m)
		coo = m
	} else {
		coo = &matrix.COO[float64]{
			Rows: rec.Rows, Cols: rec.Cols,
			RowIdx: rec.RowIdx, ColIdx: rec.ColIdx, Vals: rec.Vals,
		}
		if err := coo.Validate(); err != nil {
			return nil, fmt.Errorf("serve: recover %s: %w", rec.ID, err)
		}
	}
	if got := ContentID(coo); got != rec.ID {
		return nil, fmt.Errorf("serve: recover %s: rebuilt matrix hashes to %s", rec.ID, got)
	}
	sched := kernels.ScheduleStatic
	if rec.Schedule == kernels.ScheduleBalanced.String() {
		sched = kernels.ScheduleBalanced
	}
	m := &Matrix{
		ID:     rec.ID,
		COO:    coo,
		Report: rec.Report,
		Source: RegisterSource{Name: rec.Name, Scale: rec.Scale},
	}
	plan := Plan{
		Format:   rec.Format,
		Schedule: sched,
		Block:    rec.Block,
		Pooled:   true,
		Variant:  rec.Variant,
		Version:  rec.PlanVersion,
	}
	if plan.Variant == "" {
		// Pre-tuner record: synthesize the arm name its plan executes.
		plan.Variant = kernels.ServingVariant(plan.Format, sched, true)
	} else if _, _, pooled, ok := kernels.PlanForVariant(plan.Variant); ok {
		plan.Pooled = pooled
	}
	if plan.Version < 1 {
		plan.Version = 1
	}
	m.setPlan(plan)
	return m, nil
}

// dumpRecords serializes every registered matrix in registration order —
// the snapshotter's source.
func (r *Registry) dumpRecords() []walRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]walRecord, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, *recordFor(r.matrices[id]))
	}
	return out
}

// Get returns the registered matrix by ID.
func (r *Registry) Get(id string) (*Matrix, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.matrices[id]
	return m, ok
}

// List returns the registered matrices in registration order, with their
// current cache residency.
func (r *Registry) List() []MatrixInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MatrixInfo, 0, len(r.order))
	for _, id := range r.order {
		m := r.matrices[id]
		plan := m.Plan()
		prepared := false
		if el, ok := r.entries[id]; ok {
			prepared = el.Value.(*cacheEntry).plan.Version == plan.Version
		}
		out = append(out, MatrixInfo{
			ID: m.ID, Rows: m.COO.Rows, Cols: m.COO.Cols, NNZ: m.COO.NNZ(),
			Format: plan.Format, Schedule: plan.Schedule.String(), Block: plan.Block,
			Name: m.Source.Name, Scale: m.Source.Scale,
			Variant: plan.Variant, PlanVersion: plan.Version,
			Prepared: prepared,
		})
	}
	return out
}

// Prepared returns the matrix's prepared-format kernel and the plan it was
// prepared under, preparing (and caching) it on a miss. hit reports whether
// the prepared format was already resident — the "zero preparation" steady
// state. Concurrent callers for the same matrix share one preparation; ctx
// bounds the wait. An entry prepared under an older plan version (a
// promotion happened) is treated as a miss: it is dropped and the new plan
// re-prepares through the same pending-entry single-flight path, so
// concurrent multiplies during a promotion never double-prepare and never
// see a half-built format — the returned kernel always matches the
// returned plan.
func (r *Registry) Prepared(ctx context.Context, id string) (k core.Kernel, plan Plan, hit bool, err error) {
	r.mu.Lock()
	m, ok := r.matrices[id]
	if !ok {
		r.mu.Unlock()
		return nil, Plan{}, false, fmt.Errorf("serve: unknown matrix %q", id)
	}
	plan = m.Plan()
	if el, ok := r.entries[id]; ok {
		e := el.Value.(*cacheEntry)
		if e.plan.Version == plan.Version {
			r.lru.MoveToFront(el)
			r.mu.Unlock()
			select {
			case <-e.ready:
			case <-ctx.Done():
				return nil, plan, false, ctx.Err()
			}
			if e.err != nil {
				return nil, plan, false, e.err
			}
			r.hits.Add(1)
			obsCacheHits.Inc()
			return e.kernel, e.plan, true, nil
		}
		// Stale plan version: drop the old entry and fall through to the
		// miss path. If its preparation is still in flight, the preparer's
		// own still-resident re-check below keeps it from charging the
		// budget for this untracked entry.
		r.removeLocked(el, e)
	}
	// Miss: insert a pending entry under the lock so concurrent callers
	// wait on it, then prepare outside the lock.
	e := &cacheEntry{id: id, plan: plan, ready: make(chan struct{})}
	r.entries[id] = r.lru.PushFront(e)
	r.mu.Unlock()
	r.misses.Add(1)
	obsCacheMisses.Inc()

	e.kernel, e.err = r.prepare(m, plan)
	if e.err != nil {
		close(e.ready)
		r.mu.Lock()
		if el, ok := r.entries[id]; ok && el.Value.(*cacheEntry) == e {
			r.lru.Remove(el)
			delete(r.entries, id)
		}
		r.mu.Unlock()
		return nil, plan, false, e.err
	}
	bytes := int64(e.kernel.Bytes())
	close(e.ready)

	// Account the finished entry under the lock — e.bytes is only ever
	// read by evictLocked, which also holds it — and only if the entry is
	// still resident: churn (eviction or a promotion dropping the stale
	// entry) can remove a pending entry while it prepares, and charging
	// the budget for an untracked entry would leak r.used.
	r.mu.Lock()
	if el, ok := r.entries[id]; ok && el.Value.(*cacheEntry) == e {
		e.bytes = bytes
		r.used += bytes
		r.evictLocked(e)
		obsCacheBytes.Set(float64(r.used))
	}
	r.mu.Unlock()
	return e.kernel, plan, false, nil
}

// removeLocked unlinks a cache entry, refunding its budget charge if it
// had one (a pending entry has not been charged yet). Callers hold r.mu.
func (r *Registry) removeLocked(el *list.Element, e *cacheEntry) {
	r.lru.Remove(el)
	delete(r.entries, e.id)
	if e.bytes > 0 {
		r.used -= e.bytes
		e.bytes = 0
		obsCacheBytes.Set(float64(r.used))
	}
}

// Promote installs the named kernel variant as the matrix's serving plan,
// bumping the plan version, and synchronously re-prepares the new format
// through the normal Prepared path — so by the time Promote returns, the
// promoted plan is warm (single-flight shared with any concurrent
// multiplies that observed the new version first). The tuner calls this
// off the request path; multiplies in flight keep the plan + kernel pair
// they captured, which stays bitwise-correct.
func (r *Registry) Promote(ctx context.Context, id, variant string) (Plan, error) {
	format, sched, pooled, ok := kernels.PlanForVariant(variant)
	if !ok {
		return Plan{}, fmt.Errorf("serve: promote %s: %q is not a servable variant", id, variant)
	}
	r.mu.Lock()
	m, found := r.matrices[id]
	if !found {
		r.mu.Unlock()
		return Plan{}, fmt.Errorf("serve: promote unknown matrix %q", id)
	}
	old := m.Plan()
	plan := Plan{
		Format:   format,
		Schedule: sched,
		Block:    old.Block,
		Pooled:   pooled,
		Variant:  variant,
		Version:  old.Version + 1,
	}
	m.setPlan(plan)
	r.mu.Unlock()

	if _, _, _, err := r.Prepared(ctx, id); err != nil {
		return plan, fmt.Errorf("serve: promote %s to %s: warm prepare: %w", id, variant, err)
	}
	return plan, nil
}

// adoptPlan restores a recovered profile's promoted plan without bumping
// the version — recovery replays state, it does not create new versions.
func (r *Registry) adoptPlan(id, variant string, version int64) error {
	format, sched, pooled, ok := kernels.PlanForVariant(variant)
	if !ok {
		return fmt.Errorf("serve: recovered profile names unservable variant %q", variant)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, found := r.matrices[id]
	if !found {
		return fmt.Errorf("serve: recovered profile for unknown matrix %q", id)
	}
	old := m.Plan()
	if version < old.Version {
		return nil
	}
	m.setPlan(Plan{
		Format: format, Schedule: sched, Block: old.Block,
		Pooled: pooled, Variant: variant, Version: version,
	})
	return nil
}

// prepare builds and formats the matrix's serving kernel under the given
// plan, warming the balanced-partition cache for the registry's thread
// count so steady-state multiplies never compute a partition either.
func (r *Registry) prepare(m *Matrix, plan Plan) (core.Kernel, error) {
	r.prepares.Add(1)
	obsCachePrepares.Inc()
	k, err := core.New(plan.Format+"-omp", r.opts)
	if err != nil {
		return nil, err
	}
	p := core.Params{
		Reps: 1, Threads: r.threads, BlockSize: plan.Block, K: 1,
		Schedule: plan.Schedule,
	}
	if err := k.Prepare(m.COO, p); err != nil {
		return nil, fmt.Errorf("serve: prepare %s as %s: %w", m.ID, plan.Format, err)
	}
	return k, nil
}

// evictLocked drops least-recently-used prepared formats until the cache
// fits the byte budget. keep (the entry just inserted) is never evicted:
// a single matrix larger than the whole budget must still be servable, it
// just monopolizes the cache until something else displaces it.
func (r *Registry) evictLocked(keep *cacheEntry) {
	if r.capacity <= 0 {
		return
	}
	for r.used > r.capacity {
		el := r.lru.Back()
		if el == nil {
			return
		}
		e := el.Value.(*cacheEntry)
		if e == keep {
			return
		}
		r.lru.Remove(el)
		delete(r.entries, e.id)
		r.used -= e.bytes
		r.evictions.Add(1)
		obsCacheEvictions.Inc()
	}
}

// CachedIDs returns the prepared-cache residents, most recently used first
// — the observable LRU order the eviction tests pin.
func (r *Registry) CachedIDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, r.lru.Len())
	for el := r.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).id)
	}
	return out
}

// Stats snapshots the cache counters.
func (r *Registry) Stats() CacheStats {
	r.mu.Lock()
	entries, used := r.lru.Len(), r.used
	r.mu.Unlock()
	return CacheStats{
		Entries:       entries,
		Bytes:         used,
		CapacityBytes: r.capacity,
		Hits:          r.hits.Load(),
		Misses:        r.misses.Load(),
		Prepares:      r.prepares.Load(),
		Evictions:     r.evictions.Load(),
	}
}

// Len reports the number of registered matrices.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.matrices)
}
