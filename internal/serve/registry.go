package serve

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/kernels"
	"repro/internal/matrix"
)

// Registry is the server's matrix store: uploaded matrices keyed by
// content-addressed IDs, plus a bytes-bounded LRU cache of prepared formats.
// The registry owns the COO base representations permanently (they are the
// ground truth a prepared format can always be rebuilt from); the prepared
// formats — the expensive, large artifacts — live in the LRU and are evicted
// when the byte budget fills. A cache hit means a multiply pays zero
// preparation: the thesis' amortization argument (§6.2, preparation cost
// only pays off across repeated multiplies) turned into a serving policy.
type Registry struct {
	capacity int64 // prepared-cache byte budget; <= 0 means unbounded
	threads  int   // partition-warm target for prepared formats
	opts     core.Options

	// persist, when set, durably logs a registration BEFORE the matrix
	// becomes visible; a persist failure fails the registration, so a
	// successful Register is always recoverable. It returns a commit
	// callback the registry must invoke once the matrix is visible (or a
	// concurrent registration made it visible) — until then the durability
	// layer carries the record through compactions itself. The server
	// points it at Store.Append.
	persist func(*Matrix) (func(), error)
	// persistMut and persistCompact mirror persist for the mutation write
	// path: a mutation batch (resp. a compaction boundary) is journaled
	// before the new epoch becomes visible.
	persistMut     func(m *Matrix, epoch int64, ops []delta.Op) (func(), error)
	persistCompact func(m *Matrix, boundary int64, baseHash string) (func(), error)

	mu       sync.Mutex
	matrices map[string]*Matrix
	order    []string // registration order, for stable listings
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used; holds *cacheEntry
	used     int64

	hits      atomic.Int64
	misses    atomic.Int64
	prepares  atomic.Int64
	evictions atomic.Int64
}

// Matrix is one registered matrix with its serving plan. The plan starts
// as the advisor's pick and is mutable: the online tuner (internal/tune)
// promotes a measured-faster variant by installing a new plan version.
// Multiplies read the plan through an atomic pointer, so a promotion never
// blocks the data path.
type Matrix struct {
	ID string
	// COO is the canonical matrix as registered. It is immutable: the
	// mutation subsystem never touches it, so lock-free readers of the
	// dimensions stay safe. After a compaction the CURRENT base lives in
	// the mutation state — read it through CurrentBase, not this field.
	COO *matrix.COO[float64]
	// Report is the full advisor report behind the initial selection.
	Report advisor.Report
	// Source records how the matrix was uploaded. A generator spec lets
	// the WAL persist a few bytes and regenerate deterministically on
	// recovery; without one the WAL stores the canonical triplets.
	Source RegisterSource

	plan atomic.Pointer[Plan]

	// mut is the matrix's mutation state; nil until the first mutation,
	// so clean matrices pay one nil atomic load on the multiply path.
	mut atomic.Pointer[mutState]
	// mutMu serializes the mutation write path (Mutate, Compact) per
	// matrix; the read path never takes it.
	mutMu sync.Mutex

	// applyNs accumulates measured overlay-apply time since the last
	// compaction; prepNs is the last measured base preparation. Together
	// they feed the compaction cost model.
	applyNs atomic.Int64
	prepNs  atomic.Int64
}

// mutState is one immutable mutation-epoch snapshot: the current base
// (merged at compactions), the pending overlay (nil when clean), and the
// derived versioning metadata. Multiplies capture the whole state in one
// atomic load, so a concurrent mutation or compaction can never tear the
// (base, overlay, epoch) triple a request executes under.
type mutState struct {
	// epoch counts acked mutation batches over the matrix's lifetime; it
	// is NOT bumped by compactions, which only move entries from overlay
	// to base without changing a result bit.
	epoch int64
	// compactedThrough is the epoch boundary of the last compaction:
	// mutations at or below it are merged into base. Recovery uses it to
	// skip stale compact records.
	compactedThrough int64
	// baseHash is ContentID(base); equals the registry ID until the first
	// compaction replaces the base with a merged matrix.
	baseHash string
	// hash is the served content hash: baseHash while clean, else
	// baseHash+"+e<epoch>" — every mutation epoch re-versions it and a
	// compaction restores the canonical post-merge hash.
	hash    string
	base    *matrix.COO[float64]
	overlay *delta.Overlay
}

// mutView returns the matrix's mutation state, synthesizing the implicit
// clean state for a never-mutated matrix. Cold paths only — it allocates.
func (m *Matrix) mutView() *mutState {
	if ms := m.mut.Load(); ms != nil {
		return ms
	}
	return &mutState{baseHash: m.ID, hash: m.ID, base: m.COO}
}

// CurrentBase returns the matrix's current canonical base — the registered
// triplets until a compaction installs a merged matrix.
func (m *Matrix) CurrentBase() *matrix.COO[float64] {
	if ms := m.mut.Load(); ms != nil {
		return ms.base
	}
	return m.COO
}

// Epoch returns the matrix's mutation epoch (0 = never mutated).
func (m *Matrix) Epoch() int64 {
	if ms := m.mut.Load(); ms != nil {
		return ms.epoch
	}
	return 0
}

// ContentHash returns the served content hash for the current epoch.
func (m *Matrix) ContentHash() string {
	if ms := m.mut.Load(); ms != nil {
		return ms.hash
	}
	return m.ID
}

// mutHash derives the served content hash: the canonical base hash while
// the overlay is empty, re-versioned by epoch while mutations are pending.
func mutHash(baseHash string, epoch int64, ov *delta.Overlay) string {
	if ov.NNZ() == 0 {
		return baseHash
	}
	return fmt.Sprintf("%s+e%d", baseHash, epoch)
}

// Plan is one immutable serving-plan version: which kernel variant every
// multiply against the matrix dispatches on. Promotions install a new Plan
// with a bumped Version; the prepared-format cache keys on the version so
// a stale format is never served after a promotion.
type Plan struct {
	// Format is the sparse format multiplies dispatch on.
	Format string
	// Schedule is the work-partition choice.
	Schedule kernels.Schedule
	// Block is the BCSR block edge used when Format is "bcsr".
	Block int
	// Pooled selects dispatch on the persistent worker pool (the serving
	// default) versus fresh goroutines per call.
	Pooled bool
	// Variant is the kernels registry name of the executing arm — the
	// identity the tuner races and the X-Spmm-Variant header reports.
	Variant string
	// Version increments on every promotion; 1 is the advisor's plan.
	Version int64
}

// Plan returns the matrix's current serving plan.
func (m *Matrix) Plan() Plan { return *m.plan.Load() }

func (m *Matrix) setPlan(p Plan) { m.plan.Store(&p) }

// RegisterSource is the provenance of a registered matrix.
type RegisterSource struct {
	// Name is a generator-registry spec name ("" for direct uploads).
	Name string
	// Scale is the generator scale factor (normalized; never 0 when Name
	// is set).
	Scale float64
}

// cacheEntry is one prepared format in the LRU. ready closes once prepare
// finished (err set on failure), so concurrent requests for the same matrix
// share a single preparation instead of racing duplicate ones. plan is the
// plan version the format was prepared under; a promotion makes the entry
// stale and the next lookup re-prepares through the same ready-channel
// single-flight path.
type cacheEntry struct {
	id     string
	plan   Plan
	kernel core.Kernel
	bytes  int64
	ready  chan struct{}
	err    error
}

// NewRegistry builds a registry whose prepared-format cache holds at most
// capacityBytes of formatted matrices (<= 0 disables the bound). threads is
// the worker count prepared formats warm their balanced partitions for.
func NewRegistry(capacityBytes int64, threads int) *Registry {
	if threads < 1 {
		threads = 1
	}
	return &Registry{
		capacity: capacityBytes,
		threads:  threads,
		matrices: map[string]*Matrix{},
		entries:  map[string]*list.Element{},
		lru:      list.New(),
	}
}

// Canonicalize sorts m row-major and merges duplicate entries — the
// canonical form ContentID hashes and every format conversion starts from.
// Clients that verify results against a local kernel must canonicalize
// their copy the same way before preparing it.
func Canonicalize[T matrix.Float](m *matrix.COO[T]) {
	if !m.IsSortedRowMajor() {
		m.SortRowMajor()
	}
	m.Dedup()
}

// ContentID returns the content-addressed ID of a canonicalized matrix:
// the first 16 hex digits of the SHA-256 over dims and the row-major
// triplet stream. Two uploads of the same matrix — whether from a file or a
// generator spec — collapse to one registry entry.
func ContentID(m *matrix.COO[float64]) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(m.Rows))
	put(uint64(m.Cols))
	put(uint64(m.NNZ()))
	for i := range m.Vals {
		put(uint64(uint32(m.RowIdx[i]))<<32 | uint64(uint32(m.ColIdx[i])))
		put(math.Float64bits(m.Vals[i]))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Register adds a matrix to the registry, choosing its serving plan via the
// advisor, and reports whether it already existed. The registry takes
// ownership of m and canonicalizes it in place. Registration does not
// prepare the format — the first multiply (or an explicit Prepared call)
// does, so a registration burst cannot blow the cache budget.
func (r *Registry) Register(m *matrix.COO[float64]) (*Matrix, bool, error) {
	return r.RegisterSourced(m, RegisterSource{})
}

// RegisterSourced is Register with upload provenance: a generator spec lets
// the durability layer journal the spec instead of the triplets. When a
// persist hook is installed, the registration is durably logged before the
// matrix becomes visible — a persist failure fails the whole registration,
// so nothing is ever acked that a restart would forget.
func (r *Registry) RegisterSourced(m *matrix.COO[float64], src RegisterSource) (*Matrix, bool, error) {
	if err := m.Validate(); err != nil {
		return nil, false, fmt.Errorf("serve: register: %w", err)
	}
	Canonicalize(m)
	id := ContentID(m)

	r.mu.Lock()
	if got, ok := r.matrices[id]; ok {
		r.mu.Unlock()
		return got, true, nil
	}
	r.mu.Unlock()

	// Feature extraction and scoring run outside the lock: they cost a
	// pass over the nonzeros and must not stall concurrent multiplies.
	f, err := advisor.Extract(m)
	if err != nil {
		return nil, false, err
	}
	report := advisor.NewReport(id, f, []advisor.Environment{advisor.ParallelCPU})
	best := report.Best(advisor.ParallelCPU)
	sched := kernels.ScheduleStatic
	if report.Schedule.Format == "balanced" {
		sched = kernels.ScheduleBalanced
	}
	if src.Name != "" && src.Scale == 0 {
		src.Scale = 1
	}
	entry := &Matrix{
		ID:     id,
		COO:    m,
		Report: report,
		Source: src,
	}
	entry.setPlan(Plan{
		Format:   best.Format,
		Schedule: sched,
		Block:    4,
		Pooled:   true,
		Variant:  kernels.ServingVariant(best.Format, sched, true),
		Version:  1,
	})

	// Durability before visibility. Two racing registrations of the same
	// matrix may both journal it; replay dedups by content hash, so the
	// duplicate record is harmless. The commit callback runs only after
	// the insert below is visible (deferred behind the unlock): until
	// then a concurrent compaction cannot see the matrix in the registry
	// dump, and commit is what tells the store to stop carrying the
	// journaled record itself.
	if r.persist != nil {
		commit, err := r.persist(entry)
		if err != nil {
			return nil, false, fmt.Errorf("%w: %v", ErrNotDurable, err)
		}
		defer commit()
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.matrices[id]; ok { // lost a concurrent register race
		return got, true, nil
	}
	r.matrices[id] = entry
	r.order = append(r.order, id)
	return entry, false, nil
}

// ImportMutated installs a matrix under an existing serving handle — the
// cluster rebalance path for matrices whose served state has diverged from
// their original registration through mutations. base is the exporter's
// CURRENT canonical base (post-compaction it no longer hashes to the
// handle), ops the pending overlay, epoch/compactedThrough the exporter's
// version counters. wantHash is the exporter's claimed base hash ("" means
// the base is still the original registration and must hash to the handle
// itself); the import is rejected when the shipped triplets do not
// reproduce it bitwise. An existing matrix at the same or a newer epoch is
// returned as-is (idempotent re-import); an older one — a holder that
// missed mutations — is replaced wholesale, its stale prepared entry
// dropped.
func (r *Registry) ImportMutated(handle string, base *matrix.COO[float64], src RegisterSource, wantHash string, epoch, compactedThrough int64, ops []delta.Op) (*Matrix, bool, error) {
	if err := base.Validate(); err != nil {
		return nil, false, fmt.Errorf("serve: import %s: %w", handle, err)
	}
	Canonicalize(base)
	baseHash := ContentID(base)
	if wantHash == "" {
		wantHash = handle
	}
	if baseHash != wantHash {
		return nil, false, fmt.Errorf("serve: import %s: shipped base hashes to %s, want %s",
			handle, baseHash, wantHash)
	}

	r.mu.Lock()
	existing := r.matrices[handle]
	r.mu.Unlock()
	if existing != nil && existing.Epoch() >= epoch {
		return existing, true, nil
	}

	f, err := advisor.Extract(base)
	if err != nil {
		return nil, false, err
	}
	report := advisor.NewReport(handle, f, []advisor.Environment{advisor.ParallelCPU})
	best := report.Best(advisor.ParallelCPU)
	sched := kernels.ScheduleStatic
	if report.Schedule.Format == "balanced" {
		sched = kernels.ScheduleBalanced
	}
	if src.Name != "" && src.Scale == 0 {
		src.Scale = 1
	}
	entry := &Matrix{ID: handle, COO: base, Report: report, Source: src}
	version := int64(1)
	if existing != nil {
		// Outrun any plan version the stale copy reached, so a cached
		// entry prepared for the old object can never be mistaken for one
		// matching the imported state.
		version = existing.Plan().Version + 1
	}
	entry.setPlan(Plan{
		Format:   best.Format,
		Schedule: sched,
		Block:    4,
		Pooled:   true,
		Variant:  kernels.ServingVariant(best.Format, sched, true),
		Version:  version,
	})
	ov, err := (*delta.Overlay)(nil).Extend(base, ops)
	if err != nil {
		return nil, false, fmt.Errorf("serve: import %s: %w", handle, err)
	}
	if ov.NNZ() == 0 {
		ov = nil
	}
	if epoch > 0 || baseHash != handle {
		entry.mut.Store(&mutState{
			epoch:            epoch,
			compactedThrough: compactedThrough,
			baseHash:         baseHash,
			hash:             mutHash(baseHash, epoch, ov),
			base:             base,
			overlay:          ov,
		})
	}

	if r.persist != nil {
		commit, err := r.persist(entry)
		if err != nil {
			return nil, false, fmt.Errorf("%w: %v", ErrNotDurable, err)
		}
		defer commit()
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.matrices[handle]; ok {
		if got.Epoch() >= epoch { // lost a concurrent import race
			return got, true, nil
		}
		// Replacing a stale copy: its prepared entry must go with it.
		if el, ok := r.entries[handle]; ok {
			r.removeLocked(el, el.Value.(*cacheEntry))
		}
	} else {
		r.order = append(r.order, handle)
	}
	r.matrices[handle] = entry
	return entry, false, nil
}

// restore inserts a recovered matrix directly, trusting the journaled
// serving plan instead of re-running the advisor — registration work is
// the state the WAL exists to preserve. Duplicates are ignored.
func (r *Registry) restore(entry *Matrix) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.matrices[entry.ID]; ok {
		return
	}
	r.matrices[entry.ID] = entry
	r.order = append(r.order, entry.ID)
}

// recordFor serializes a matrix into its WAL/snapshot record, carrying the
// CURRENT serving plan — so a snapshot taken after a promotion recovers
// straight into the promoted plan.
func recordFor(m *Matrix) *walRecord {
	plan := m.Plan()
	ms := m.mutView()
	rec := &walRecord{
		ID:          m.ID,
		Rows:        m.COO.Rows,
		Cols:        m.COO.Cols,
		Format:      plan.Format,
		Schedule:    plan.Schedule.String(),
		Block:       plan.Block,
		Variant:     plan.Variant,
		PlanVersion: plan.Version,
		Report:      m.Report,
	}
	// A generator spec only regenerates the ORIGINAL base; once a
	// compaction has merged mutations into it, the record must carry the
	// current triplets (and their hash, since they no longer hash to the
	// registry ID).
	if m.Source.Name != "" && ms.baseHash == m.ID {
		rec.Name, rec.Scale = m.Source.Name, m.Source.Scale
	} else {
		rec.RowIdx, rec.ColIdx, rec.Vals = ms.base.RowIdx, ms.base.ColIdx, ms.base.Vals
	}
	if ms.baseHash != m.ID {
		rec.BaseHash = ms.baseHash
	}
	if ms.epoch > 0 {
		rec.Epoch = ms.epoch
		rec.CompactEpoch = ms.compactedThrough
		if ms.overlay.NNZ() > 0 {
			rec.MutRowIdx = ms.overlay.RowIdx
			rec.MutColIdx = ms.overlay.ColIdx
			rec.MutVals = ms.overlay.Vals
			rec.MutDel = ms.overlay.Del
		}
	}
	return rec
}

// matrixFromRecord rebuilds a registered matrix from its durable record:
// regenerate from the spec (and re-verify the content hash — the generator
// must reproduce the exact matrix that was acked) or adopt the stored
// canonical triplets.
func matrixFromRecord(rec *walRecord, regen func(name string, scale float64) (*matrix.COO[float64], error)) (*Matrix, error) {
	var coo *matrix.COO[float64]
	if rec.Name != "" {
		m, err := regen(rec.Name, rec.Scale)
		if err != nil {
			return nil, fmt.Errorf("serve: recover %s: regenerate %q: %w", rec.ID, rec.Name, err)
		}
		Canonicalize(m)
		coo = m
	} else {
		coo = &matrix.COO[float64]{
			Rows: rec.Rows, Cols: rec.Cols,
			RowIdx: rec.RowIdx, ColIdx: rec.ColIdx, Vals: rec.Vals,
		}
		if err := coo.Validate(); err != nil {
			return nil, fmt.Errorf("serve: recover %s: %w", rec.ID, err)
		}
	}
	// A compacted matrix's base no longer hashes to its registry ID — the
	// record carries the merged base's own hash to verify against instead.
	wantHash := rec.ID
	if rec.BaseHash != "" {
		wantHash = rec.BaseHash
	}
	if got := ContentID(coo); got != wantHash {
		return nil, fmt.Errorf("serve: recover %s: rebuilt matrix hashes to %s, want %s", rec.ID, got, wantHash)
	}
	sched := kernels.ScheduleStatic
	if rec.Schedule == kernels.ScheduleBalanced.String() {
		sched = kernels.ScheduleBalanced
	}
	m := &Matrix{
		ID:     rec.ID,
		COO:    coo,
		Report: rec.Report,
		Source: RegisterSource{Name: rec.Name, Scale: rec.Scale},
	}
	plan := Plan{
		Format:   rec.Format,
		Schedule: sched,
		Block:    rec.Block,
		Pooled:   true,
		Variant:  rec.Variant,
		Version:  rec.PlanVersion,
	}
	if plan.Variant == "" {
		// Pre-tuner record: synthesize the arm name its plan executes.
		plan.Variant = kernels.ServingVariant(plan.Format, sched, true)
	} else if _, _, pooled, ok := kernels.PlanForVariant(plan.Variant); ok {
		plan.Pooled = pooled
	}
	if plan.Version < 1 {
		plan.Version = 1
	}
	m.setPlan(plan)
	if rec.Epoch > 0 || rec.BaseHash != "" {
		ov, err := overlayFromRecord(coo, rec)
		if err != nil {
			return nil, fmt.Errorf("serve: recover %s: %w", rec.ID, err)
		}
		m.mut.Store(&mutState{
			epoch:            rec.Epoch,
			compactedThrough: rec.CompactEpoch,
			baseHash:         wantHash,
			hash:             mutHash(wantHash, rec.Epoch, ov),
			base:             coo,
			overlay:          ov,
		})
	}
	return m, nil
}

// overlayFromRecord rebuilds a pending overlay from a record's mutation
// arrays (nil when the record carries none).
func overlayFromRecord(base *matrix.COO[float64], rec *walRecord) (*delta.Overlay, error) {
	if len(rec.MutRowIdx) == 0 {
		return nil, nil
	}
	if len(rec.MutColIdx) != len(rec.MutRowIdx) || len(rec.MutVals) != len(rec.MutRowIdx) ||
		len(rec.MutDel) != len(rec.MutRowIdx) {
		return nil, fmt.Errorf("ragged overlay arrays (%d/%d/%d/%d)",
			len(rec.MutRowIdx), len(rec.MutColIdx), len(rec.MutVals), len(rec.MutDel))
	}
	ops := make([]delta.Op, len(rec.MutRowIdx))
	for i := range ops {
		ops[i] = delta.Op{Row: rec.MutRowIdx[i], Col: rec.MutColIdx[i], Val: rec.MutVals[i], Del: rec.MutDel[i]}
	}
	return (*delta.Overlay)(nil).Extend(base, ops)
}

// applyRecoveredMutation replays one journaled mutation batch. Replay is
// idempotent by epoch: a record at or below the matrix's recovered epoch
// is already reflected (the snapshot folded it in) and is skipped.
func (r *Registry) applyRecoveredMutation(rec *walRecord) error {
	r.mu.Lock()
	m, ok := r.matrices[rec.ID]
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: recovered mutation for unknown matrix %q", rec.ID)
	}
	m.mutMu.Lock()
	defer m.mutMu.Unlock()
	cur := m.mutView()
	if rec.Epoch <= cur.epoch {
		return nil
	}
	if rec.Epoch != cur.epoch+1 {
		return fmt.Errorf("serve: recover %s: mutation epoch %d after epoch %d (gap)",
			rec.ID, rec.Epoch, cur.epoch)
	}
	ops := make([]delta.Op, len(rec.MutRowIdx))
	for i := range ops {
		ops[i] = delta.Op{Row: rec.MutRowIdx[i], Col: rec.MutColIdx[i], Val: rec.MutVals[i], Del: rec.MutDel[i]}
	}
	next, err := cur.overlay.Extend(cur.base, ops)
	if err != nil {
		return fmt.Errorf("serve: recover %s: mutation epoch %d: %w", rec.ID, rec.Epoch, err)
	}
	m.mut.Store(&mutState{
		epoch:            rec.Epoch,
		compactedThrough: cur.compactedThrough,
		baseHash:         cur.baseHash,
		hash:             mutHash(cur.baseHash, rec.Epoch, next),
		base:             cur.base,
		overlay:          next,
	})
	return nil
}

// applyRecoveredCompaction replays one journaled compaction boundary: the
// merge is deterministic, so the record only needs the boundary epoch and
// the expected post-merge hash. A boundary at or below the recovered
// compactedThrough is already folded in and is skipped.
func (r *Registry) applyRecoveredCompaction(rec *walRecord) error {
	r.mu.Lock()
	m, ok := r.matrices[rec.ID]
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: recovered compaction for unknown matrix %q", rec.ID)
	}
	m.mutMu.Lock()
	defer m.mutMu.Unlock()
	cur := m.mutView()
	if rec.Epoch <= cur.compactedThrough {
		return nil
	}
	if rec.Epoch != cur.epoch {
		// Compactions journal under the mutation lock, so in WAL order the
		// boundary always equals the epoch of the mutations replayed so far.
		return fmt.Errorf("serve: recover %s: compaction at epoch %d but matrix is at epoch %d",
			rec.ID, rec.Epoch, cur.epoch)
	}
	merged := cur.overlay.Merge()
	if merged == nil {
		merged = cur.base
	}
	if got := ContentID(merged); rec.BaseHash != "" && got != rec.BaseHash {
		return fmt.Errorf("serve: recover %s: replayed compaction hashes to %s, want %s",
			rec.ID, got, rec.BaseHash)
	}
	hash := ContentID(merged)
	m.mut.Store(&mutState{
		epoch:            cur.epoch,
		compactedThrough: rec.Epoch,
		baseHash:         hash,
		hash:             hash,
		base:             merged,
	})
	// The recovered plan version stays as journaled; there is no prepared
	// entry yet, so nothing to drop or re-key.
	return nil
}

// dumpRecords serializes every registered matrix in registration order —
// the snapshotter's source.
func (r *Registry) dumpRecords() []walRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]walRecord, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, *recordFor(r.matrices[id]))
	}
	return out
}

// Get returns the registered matrix by ID.
func (r *Registry) Get(id string) (*Matrix, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.matrices[id]
	return m, ok
}

// List returns the registered matrices in registration order, with their
// current cache residency.
func (r *Registry) List() []MatrixInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MatrixInfo, 0, len(r.order))
	for _, id := range r.order {
		m := r.matrices[id]
		plan := m.Plan()
		prepared := false
		if el, ok := r.entries[id]; ok {
			prepared = el.Value.(*cacheEntry).plan.Version == plan.Version
		}
		info := MatrixInfo{
			ID: m.ID, Rows: m.COO.Rows, Cols: m.COO.Cols, NNZ: m.CurrentBase().NNZ(),
			Format: plan.Format, Schedule: plan.Schedule.String(), Block: plan.Block,
			Name: m.Source.Name, Scale: m.Source.Scale,
			Variant: plan.Variant, PlanVersion: plan.Version,
			Prepared: prepared,
			Hash:     m.ID,
		}
		if ms := m.mut.Load(); ms != nil {
			info.Epoch, info.Hash, info.OverlayNNZ = ms.epoch, ms.hash, ms.overlay.NNZ()
		}
		out = append(out, info)
	}
	return out
}

// Serving is the consistent execution state one multiply captures: the
// prepared kernel, the plan it was prepared under, and the mutation-epoch
// snapshot (base, overlay, epoch, content hash) the kernel's output must
// be interpreted against. The whole struct is immutable once returned — a
// request that captured it stays bitwise-correct for its epoch no matter
// what mutations or compactions land afterwards.
type Serving struct {
	Kernel core.Kernel
	Plan   Plan
	// Epoch and Hash version the result; the X-Spmm-Epoch and
	// X-Spmm-Content-Hash headers report them.
	Epoch int64
	Hash  string
	// Overlay is the pending delta the kernel's output must be corrected
	// by; nil for a clean matrix (the zero-cost fast path).
	Overlay *delta.Overlay
	// Base is the canonical matrix the kernel was prepared from.
	Base *matrix.COO[float64]
}

// Prepared returns the matrix's serving state — prepared-format kernel,
// plan, and mutation-epoch snapshot — preparing (and caching) the kernel
// on a miss. hit reports whether the prepared format was already resident
// — the "zero preparation" steady state. Concurrent callers for the same
// matrix share one preparation; ctx bounds the wait. An entry prepared
// under an older plan version (a promotion or compaction happened) is
// treated as a miss: it is dropped and the new plan re-prepares through
// the same pending-entry single-flight path, so concurrent multiplies
// during a promotion never double-prepare and never see a half-built
// format — the returned kernel always matches the returned plan, and
// (because a base swap always bumps the plan version under the same lock)
// always matches the returned base + overlay pair.
func (r *Registry) Prepared(ctx context.Context, id string) (sv Serving, hit bool, err error) {
	r.mu.Lock()
	m, ok := r.matrices[id]
	if !ok {
		r.mu.Unlock()
		return Serving{}, false, fmt.Errorf("serve: unknown matrix %q", id)
	}
	plan := m.Plan()
	sv = Serving{Plan: plan, Hash: m.ID, Base: m.COO}
	if ms := m.mut.Load(); ms != nil {
		sv.Epoch, sv.Hash, sv.Overlay, sv.Base = ms.epoch, ms.hash, ms.overlay, ms.base
	}
	if el, ok := r.entries[id]; ok {
		e := el.Value.(*cacheEntry)
		if e.plan.Version == plan.Version {
			r.lru.MoveToFront(el)
			r.mu.Unlock()
			select {
			case <-e.ready:
			case <-ctx.Done():
				return sv, false, ctx.Err()
			}
			if e.err != nil {
				return sv, false, e.err
			}
			r.hits.Add(1)
			obsCacheHits.Inc()
			sv.Kernel, sv.Plan = e.kernel, e.plan
			return sv, true, nil
		}
		// Stale plan version: drop the old entry and fall through to the
		// miss path. If its preparation is still in flight, the preparer's
		// own still-resident re-check below keeps it from charging the
		// budget for this untracked entry.
		r.removeLocked(el, e)
	}
	// Miss: insert a pending entry under the lock so concurrent callers
	// wait on it, then prepare outside the lock — from the base captured
	// under the lock, so a compaction mid-prepare cannot swap the matrix
	// under the kernel (it bumps the version and drops this entry, and
	// this request serves its own, still-consistent epoch).
	e := &cacheEntry{id: id, plan: plan, ready: make(chan struct{})}
	r.entries[id] = r.lru.PushFront(e)
	r.mu.Unlock()
	r.misses.Add(1)
	obsCacheMisses.Inc()

	e.kernel, e.err = r.prepare(m, sv.Base, plan)
	if e.err != nil {
		close(e.ready)
		r.mu.Lock()
		if el, ok := r.entries[id]; ok && el.Value.(*cacheEntry) == e {
			r.lru.Remove(el)
			delete(r.entries, id)
		}
		r.mu.Unlock()
		return sv, false, e.err
	}
	bytes := int64(e.kernel.Bytes())
	close(e.ready)

	// Account the finished entry under the lock — e.bytes is only ever
	// read by evictLocked, which also holds it — and only if the entry is
	// still resident: churn (eviction or a promotion dropping the stale
	// entry) can remove a pending entry while it prepares, and charging
	// the budget for an untracked entry would leak r.used.
	r.mu.Lock()
	if el, ok := r.entries[id]; ok && el.Value.(*cacheEntry) == e {
		e.bytes = bytes
		r.used += bytes
		r.evictLocked(e)
		obsCacheBytes.Set(float64(r.used))
	}
	r.mu.Unlock()
	sv.Kernel = e.kernel
	return sv, false, nil
}

// removeLocked unlinks a cache entry, refunding its budget charge if it
// had one (a pending entry has not been charged yet). Callers hold r.mu.
func (r *Registry) removeLocked(el *list.Element, e *cacheEntry) {
	r.lru.Remove(el)
	delete(r.entries, e.id)
	if e.bytes > 0 {
		r.used -= e.bytes
		e.bytes = 0
		obsCacheBytes.Set(float64(r.used))
	}
}

// Promote installs the named kernel variant as the matrix's serving plan,
// bumping the plan version, and synchronously re-prepares the new format
// through the normal Prepared path — so by the time Promote returns, the
// promoted plan is warm (single-flight shared with any concurrent
// multiplies that observed the new version first). The tuner calls this
// off the request path; multiplies in flight keep the plan + kernel pair
// they captured, which stays bitwise-correct.
func (r *Registry) Promote(ctx context.Context, id, variant string) (Plan, error) {
	format, sched, pooled, ok := kernels.PlanForVariant(variant)
	if !ok {
		return Plan{}, fmt.Errorf("serve: promote %s: %q is not a servable variant", id, variant)
	}
	r.mu.Lock()
	m, found := r.matrices[id]
	if !found {
		r.mu.Unlock()
		return Plan{}, fmt.Errorf("serve: promote unknown matrix %q", id)
	}
	old := m.Plan()
	plan := Plan{
		Format:   format,
		Schedule: sched,
		Block:    old.Block,
		Pooled:   pooled,
		Variant:  variant,
		Version:  old.Version + 1,
	}
	m.setPlan(plan)
	// Drop the superseded prepared entry promptly, releasing its bytes —
	// the stale format can never be served again, so letting it age out
	// under LRU pressure would only squeeze live entries out of budget.
	r.dropStaleLocked(id, plan.Version)
	r.mu.Unlock()

	if _, _, err := r.Prepared(ctx, id); err != nil {
		return plan, fmt.Errorf("serve: promote %s to %s: warm prepare: %w", id, variant, err)
	}
	return plan, nil
}

// dropStaleLocked removes the matrix's cached entry if it was prepared
// under an older plan version. Callers hold r.mu. A pending (still
// preparing) stale entry is removed too: its preparer's still-resident
// re-check sees the removal and never charges the budget.
func (r *Registry) dropStaleLocked(id string, version int64) {
	if el, ok := r.entries[id]; ok {
		if e := el.Value.(*cacheEntry); e.plan.Version != version {
			r.removeLocked(el, e)
		}
	}
}

// adoptPlan restores a recovered profile's promoted plan without bumping
// the version — recovery replays state, it does not create new versions.
func (r *Registry) adoptPlan(id, variant string, version int64) error {
	format, sched, pooled, ok := kernels.PlanForVariant(variant)
	if !ok {
		return fmt.Errorf("serve: recovered profile names unservable variant %q", variant)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, found := r.matrices[id]
	if !found {
		return fmt.Errorf("serve: recovered profile for unknown matrix %q", id)
	}
	old := m.Plan()
	if version < old.Version {
		return nil
	}
	m.setPlan(Plan{
		Format: format, Schedule: sched, Block: old.Block,
		Pooled: pooled, Variant: variant, Version: version,
	})
	return nil
}

// prepare builds and formats the serving kernel for base under the given
// plan, warming the balanced-partition cache for the registry's thread
// count so steady-state multiplies never compute a partition either. The
// measured duration lands in m.prepNs — the re-preparation price the
// compaction cost model weighs overlay taxes against.
func (r *Registry) prepare(m *Matrix, base *matrix.COO[float64], plan Plan) (core.Kernel, error) {
	r.prepares.Add(1)
	obsCachePrepares.Inc()
	k, err := core.New(plan.Format+"-omp", r.opts)
	if err != nil {
		return nil, err
	}
	p := core.Params{
		Reps: 1, Threads: r.threads, BlockSize: plan.Block, K: 1,
		Schedule: plan.Schedule,
	}
	start := time.Now()
	if err := k.Prepare(base, p); err != nil {
		return nil, fmt.Errorf("serve: prepare %s as %s: %w", m.ID, plan.Format, err)
	}
	m.prepNs.Store(int64(time.Since(start)))
	return k, nil
}

// Mutate applies one insert/update/delete batch to a registered matrix,
// journaling it (durability before visibility, like registrations) and
// installing the next epoch's overlay. The returned state describes the
// new epoch. Mutations to the same matrix serialize on its mutMu; the
// multiply path never blocks on it.
func (r *Registry) Mutate(id string, ops []delta.Op) (*mutState, error) {
	r.mu.Lock()
	m, ok := r.matrices[id]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serve: mutate unknown matrix %q", id)
	}
	m.mutMu.Lock()
	defer m.mutMu.Unlock()

	cur := m.mutView()
	next, err := cur.overlay.Extend(cur.base, ops)
	if err != nil {
		return nil, fmt.Errorf("serve: mutate %s: %w", id, err)
	}
	epoch := cur.epoch + 1
	if r.persistMut != nil {
		commit, err := r.persistMut(m, epoch, ops)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrNotDurable, err)
		}
		defer commit()
	}
	ms := &mutState{
		epoch:            epoch,
		compactedThrough: cur.compactedThrough,
		baseHash:         cur.baseHash,
		hash:             mutHash(cur.baseHash, epoch, next),
		base:             cur.base,
		overlay:          next,
	}
	m.mut.Store(ms)
	return ms, nil
}

// shouldCompact evaluates the cost model against the matrix's measured
// overlay-apply accumulation and last prepare duration.
func (r *Registry) shouldCompact(m *Matrix, cm delta.CostModel) bool {
	ms := m.mut.Load()
	if ms == nil || ms.overlay.NNZ() == 0 {
		return false
	}
	return cm.ShouldCompact(ms.overlay.NNZ(), ms.base.NNZ(),
		time.Duration(m.applyNs.Load()).Seconds(),
		time.Duration(m.prepNs.Load()).Seconds())
}

// deltaTotals reports how many registered matrices currently carry a
// non-empty overlay and the total pending overlay entries across them —
// the /v1/stats and gauge view of outstanding mutation debt.
func (r *Registry) deltaTotals() (mutated int, overlayNNZ int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.matrices {
		if ms := m.mut.Load(); ms != nil && ms.overlay.NNZ() > 0 {
			mutated++
			overlayNNZ += int64(ms.overlay.NNZ())
		}
	}
	return mutated, overlayNNZ
}

// Compact merges the matrix's pending overlay into a freshly prepared
// base, swapping both in atomically under a bumped plan version
// (superseded prepared entries dropped promptly, the fresh kernel
// installed warm). The whole sequence holds the matrix's mutation lock:
// the MULTIPLY path never touches that lock — compaction runs off the
// request path — but concurrent mutation batches stall until the swap,
// which keeps the journaled boundary equal to the live epoch and makes
// crash replay reconstruct the exact pre-crash state (the compact record
// at epoch E replays as "merge everything through E", which is precisely
// what it meant when written). Returns false when there was nothing to
// compact. A kernel-preparation failure still swaps the merged base —
// the bits are identical either way — and surfaces the error; the next
// multiply re-prepares through the normal miss path.
func (r *Registry) Compact(id string) (bool, error) {
	r.mu.Lock()
	m, ok := r.matrices[id]
	r.mu.Unlock()
	if !ok {
		return false, fmt.Errorf("serve: compact unknown matrix %q", id)
	}
	m.mutMu.Lock()
	defer m.mutMu.Unlock()
	cur := m.mut.Load()
	if cur == nil || cur.overlay.NNZ() == 0 {
		return false, nil
	}
	merged := cur.overlay.Merge()
	newBaseHash := ContentID(merged)
	// Durability before visibility: the compact record lands (fsynced)
	// before the swap, so recovery never re-applies merged deltas. A
	// crash between append and swap replays to bit-identical state — the
	// merged matrix IS the base + overlay it replaces.
	if r.persistCompact != nil {
		commit, err := r.persistCompact(m, cur.epoch, newBaseHash)
		if err != nil {
			return false, fmt.Errorf("%w: %v", ErrNotDurable, err)
		}
		defer commit()
	}
	plan := m.Plan()
	kern, kerr := r.prepare(m, merged, plan)
	ms := &mutState{
		epoch:            cur.epoch,
		compactedThrough: cur.epoch,
		baseHash:         newBaseHash,
		hash:             newBaseHash, // canonical post-merge hash restored
		base:             merged,
	}

	r.mu.Lock()
	nowPlan := m.Plan()
	newPlan := nowPlan
	newPlan.Version++
	m.setPlan(newPlan)
	m.mut.Store(ms)
	m.applyNs.Store(0)
	// Prompt stale-entry drop: the old base's prepared format can never
	// be served again, so release its bytes now instead of letting it
	// age out under LRU pressure.
	r.dropStaleLocked(id, newPlan.Version)
	// Install the freshly prepared kernel warm — unless a promotion raced
	// the merge and changed the plan, in which case the next multiply
	// re-prepares the promoted format from the merged base.
	if kerr == nil && nowPlan.Version == plan.Version {
		ready := make(chan struct{})
		close(ready)
		e := &cacheEntry{id: id, plan: newPlan, kernel: kern, bytes: int64(kern.Bytes()), ready: ready}
		r.entries[id] = r.lru.PushFront(e)
		r.used += e.bytes
		r.evictLocked(e)
		obsCacheBytes.Set(float64(r.used))
	}
	r.mu.Unlock()
	if kerr != nil {
		return true, fmt.Errorf("serve: compact %s: prepare merged base: %w", id, kerr)
	}
	return true, nil
}

// evictLocked drops least-recently-used prepared formats until the cache
// fits the byte budget. keep (the entry just inserted) is never evicted:
// a single matrix larger than the whole budget must still be servable, it
// just monopolizes the cache until something else displaces it.
func (r *Registry) evictLocked(keep *cacheEntry) {
	if r.capacity <= 0 {
		return
	}
	for r.used > r.capacity {
		el := r.lru.Back()
		if el == nil {
			return
		}
		e := el.Value.(*cacheEntry)
		if e == keep {
			return
		}
		r.lru.Remove(el)
		delete(r.entries, e.id)
		r.used -= e.bytes
		r.evictions.Add(1)
		obsCacheEvictions.Inc()
	}
}

// CachedIDs returns the prepared-cache residents, most recently used first
// — the observable LRU order the eviction tests pin.
func (r *Registry) CachedIDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, r.lru.Len())
	for el := r.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).id)
	}
	return out
}

// Stats snapshots the cache counters.
func (r *Registry) Stats() CacheStats {
	r.mu.Lock()
	entries, used := r.lru.Len(), r.used
	r.mu.Unlock()
	return CacheStats{
		Entries:       entries,
		Bytes:         used,
		CapacityBytes: r.capacity,
		Hits:          r.hits.Load(),
		Misses:        r.misses.Load(),
		Prepares:      r.prepares.Load(),
		Evictions:     r.evictions.Load(),
	}
}

// Len reports the number of registered matrices.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.matrices)
}
