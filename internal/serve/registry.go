package serve

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/matrix"
)

// Registry is the server's matrix store: uploaded matrices keyed by
// content-addressed IDs, plus a bytes-bounded LRU cache of prepared formats.
// The registry owns the COO base representations permanently (they are the
// ground truth a prepared format can always be rebuilt from); the prepared
// formats — the expensive, large artifacts — live in the LRU and are evicted
// when the byte budget fills. A cache hit means a multiply pays zero
// preparation: the thesis' amortization argument (§6.2, preparation cost
// only pays off across repeated multiplies) turned into a serving policy.
type Registry struct {
	capacity int64 // prepared-cache byte budget; <= 0 means unbounded
	threads  int   // partition-warm target for prepared formats
	opts     core.Options

	// persist, when set, durably logs a registration BEFORE the matrix
	// becomes visible; a persist failure fails the registration, so a
	// successful Register is always recoverable. It returns a commit
	// callback the registry must invoke once the matrix is visible (or a
	// concurrent registration made it visible) — until then the durability
	// layer carries the record through compactions itself. The server
	// points it at Store.Append.
	persist func(*Matrix) (func(), error)

	mu       sync.Mutex
	matrices map[string]*Matrix
	order    []string // registration order, for stable listings
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used; holds *cacheEntry
	used     int64

	hits      atomic.Int64
	misses    atomic.Int64
	prepares  atomic.Int64
	evictions atomic.Int64
}

// Matrix is one registered matrix with its serving plan: the advisor-chosen
// format, schedule, and block size every multiply against it uses.
type Matrix struct {
	ID  string
	COO *matrix.COO[float64]
	// Format is the advisor's pick for the parallel-CPU serving path.
	Format string
	// Schedule is the advisor's work-partition pick.
	Schedule kernels.Schedule
	// Block is the BCSR block edge used when Format is "bcsr".
	Block int
	// Report is the full advisor report behind the selection.
	Report advisor.Report
	// Source records how the matrix was uploaded. A generator spec lets
	// the WAL persist a few bytes and regenerate deterministically on
	// recovery; without one the WAL stores the canonical triplets.
	Source RegisterSource
}

// RegisterSource is the provenance of a registered matrix.
type RegisterSource struct {
	// Name is a generator-registry spec name ("" for direct uploads).
	Name string
	// Scale is the generator scale factor (normalized; never 0 when Name
	// is set).
	Scale float64
}

// cacheEntry is one prepared format in the LRU. ready closes once prepare
// finished (err set on failure), so concurrent requests for the same matrix
// share a single preparation instead of racing duplicate ones.
type cacheEntry struct {
	id     string
	kernel core.Kernel
	bytes  int64
	ready  chan struct{}
	err    error
}

// NewRegistry builds a registry whose prepared-format cache holds at most
// capacityBytes of formatted matrices (<= 0 disables the bound). threads is
// the worker count prepared formats warm their balanced partitions for.
func NewRegistry(capacityBytes int64, threads int) *Registry {
	if threads < 1 {
		threads = 1
	}
	return &Registry{
		capacity: capacityBytes,
		threads:  threads,
		matrices: map[string]*Matrix{},
		entries:  map[string]*list.Element{},
		lru:      list.New(),
	}
}

// Canonicalize sorts m row-major and merges duplicate entries — the
// canonical form ContentID hashes and every format conversion starts from.
// Clients that verify results against a local kernel must canonicalize
// their copy the same way before preparing it.
func Canonicalize[T matrix.Float](m *matrix.COO[T]) {
	if !m.IsSortedRowMajor() {
		m.SortRowMajor()
	}
	m.Dedup()
}

// ContentID returns the content-addressed ID of a canonicalized matrix:
// the first 16 hex digits of the SHA-256 over dims and the row-major
// triplet stream. Two uploads of the same matrix — whether from a file or a
// generator spec — collapse to one registry entry.
func ContentID(m *matrix.COO[float64]) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(m.Rows))
	put(uint64(m.Cols))
	put(uint64(m.NNZ()))
	for i := range m.Vals {
		put(uint64(uint32(m.RowIdx[i]))<<32 | uint64(uint32(m.ColIdx[i])))
		put(math.Float64bits(m.Vals[i]))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Register adds a matrix to the registry, choosing its serving plan via the
// advisor, and reports whether it already existed. The registry takes
// ownership of m and canonicalizes it in place. Registration does not
// prepare the format — the first multiply (or an explicit Prepared call)
// does, so a registration burst cannot blow the cache budget.
func (r *Registry) Register(m *matrix.COO[float64]) (*Matrix, bool, error) {
	return r.RegisterSourced(m, RegisterSource{})
}

// RegisterSourced is Register with upload provenance: a generator spec lets
// the durability layer journal the spec instead of the triplets. When a
// persist hook is installed, the registration is durably logged before the
// matrix becomes visible — a persist failure fails the whole registration,
// so nothing is ever acked that a restart would forget.
func (r *Registry) RegisterSourced(m *matrix.COO[float64], src RegisterSource) (*Matrix, bool, error) {
	if err := m.Validate(); err != nil {
		return nil, false, fmt.Errorf("serve: register: %w", err)
	}
	Canonicalize(m)
	id := ContentID(m)

	r.mu.Lock()
	if got, ok := r.matrices[id]; ok {
		r.mu.Unlock()
		return got, true, nil
	}
	r.mu.Unlock()

	// Feature extraction and scoring run outside the lock: they cost a
	// pass over the nonzeros and must not stall concurrent multiplies.
	f, err := advisor.Extract(m)
	if err != nil {
		return nil, false, err
	}
	report := advisor.NewReport(id, f, []advisor.Environment{advisor.ParallelCPU})
	best := report.Best(advisor.ParallelCPU)
	sched := kernels.ScheduleStatic
	if report.Schedule.Format == "balanced" {
		sched = kernels.ScheduleBalanced
	}
	if src.Name != "" && src.Scale == 0 {
		src.Scale = 1
	}
	entry := &Matrix{
		ID:       id,
		COO:      m,
		Format:   best.Format,
		Schedule: sched,
		Block:    4,
		Report:   report,
		Source:   src,
	}

	// Durability before visibility. Two racing registrations of the same
	// matrix may both journal it; replay dedups by content hash, so the
	// duplicate record is harmless. The commit callback runs only after
	// the insert below is visible (deferred behind the unlock): until
	// then a concurrent compaction cannot see the matrix in the registry
	// dump, and commit is what tells the store to stop carrying the
	// journaled record itself.
	if r.persist != nil {
		commit, err := r.persist(entry)
		if err != nil {
			return nil, false, fmt.Errorf("%w: %v", ErrNotDurable, err)
		}
		defer commit()
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.matrices[id]; ok { // lost a concurrent register race
		return got, true, nil
	}
	r.matrices[id] = entry
	r.order = append(r.order, id)
	return entry, false, nil
}

// restore inserts a recovered matrix directly, trusting the journaled
// serving plan instead of re-running the advisor — registration work is
// the state the WAL exists to preserve. Duplicates are ignored.
func (r *Registry) restore(entry *Matrix) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.matrices[entry.ID]; ok {
		return
	}
	r.matrices[entry.ID] = entry
	r.order = append(r.order, entry.ID)
}

// recordFor serializes a matrix into its WAL/snapshot record.
func recordFor(m *Matrix) *walRecord {
	rec := &walRecord{
		ID:       m.ID,
		Rows:     m.COO.Rows,
		Cols:     m.COO.Cols,
		Format:   m.Format,
		Schedule: m.Schedule.String(),
		Block:    m.Block,
		Report:   m.Report,
	}
	if m.Source.Name != "" {
		rec.Name, rec.Scale = m.Source.Name, m.Source.Scale
	} else {
		rec.RowIdx, rec.ColIdx, rec.Vals = m.COO.RowIdx, m.COO.ColIdx, m.COO.Vals
	}
	return rec
}

// matrixFromRecord rebuilds a registered matrix from its durable record:
// regenerate from the spec (and re-verify the content hash — the generator
// must reproduce the exact matrix that was acked) or adopt the stored
// canonical triplets.
func matrixFromRecord(rec *walRecord, regen func(name string, scale float64) (*matrix.COO[float64], error)) (*Matrix, error) {
	var coo *matrix.COO[float64]
	if rec.Name != "" {
		m, err := regen(rec.Name, rec.Scale)
		if err != nil {
			return nil, fmt.Errorf("serve: recover %s: regenerate %q: %w", rec.ID, rec.Name, err)
		}
		Canonicalize(m)
		coo = m
	} else {
		coo = &matrix.COO[float64]{
			Rows: rec.Rows, Cols: rec.Cols,
			RowIdx: rec.RowIdx, ColIdx: rec.ColIdx, Vals: rec.Vals,
		}
		if err := coo.Validate(); err != nil {
			return nil, fmt.Errorf("serve: recover %s: %w", rec.ID, err)
		}
	}
	if got := ContentID(coo); got != rec.ID {
		return nil, fmt.Errorf("serve: recover %s: rebuilt matrix hashes to %s", rec.ID, got)
	}
	sched := kernels.ScheduleStatic
	if rec.Schedule == kernels.ScheduleBalanced.String() {
		sched = kernels.ScheduleBalanced
	}
	return &Matrix{
		ID:       rec.ID,
		COO:      coo,
		Format:   rec.Format,
		Schedule: sched,
		Block:    rec.Block,
		Report:   rec.Report,
		Source:   RegisterSource{Name: rec.Name, Scale: rec.Scale},
	}, nil
}

// dumpRecords serializes every registered matrix in registration order —
// the snapshotter's source.
func (r *Registry) dumpRecords() []walRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]walRecord, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, *recordFor(r.matrices[id]))
	}
	return out
}

// Get returns the registered matrix by ID.
func (r *Registry) Get(id string) (*Matrix, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.matrices[id]
	return m, ok
}

// List returns the registered matrices in registration order, with their
// current cache residency.
func (r *Registry) List() []MatrixInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MatrixInfo, 0, len(r.order))
	for _, id := range r.order {
		m := r.matrices[id]
		_, prepared := r.entries[id]
		out = append(out, MatrixInfo{
			ID: m.ID, Rows: m.COO.Rows, Cols: m.COO.Cols, NNZ: m.COO.NNZ(),
			Format: m.Format, Schedule: m.Schedule.String(), Block: m.Block,
			Prepared: prepared,
		})
	}
	return out
}

// Prepared returns the matrix's prepared-format kernel, preparing (and
// caching) it on a miss. hit reports whether the prepared format was
// already resident — the "zero preparation" steady state. Concurrent
// callers for the same matrix share one preparation; ctx bounds the wait.
func (r *Registry) Prepared(ctx context.Context, id string) (k core.Kernel, hit bool, err error) {
	r.mu.Lock()
	m, ok := r.matrices[id]
	if !ok {
		r.mu.Unlock()
		return nil, false, fmt.Errorf("serve: unknown matrix %q", id)
	}
	if el, ok := r.entries[id]; ok {
		r.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		r.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if e.err != nil {
			return nil, false, e.err
		}
		r.hits.Add(1)
		obsCacheHits.Inc()
		return e.kernel, true, nil
	}
	// Miss: insert a pending entry under the lock so concurrent callers
	// wait on it, then prepare outside the lock.
	e := &cacheEntry{id: id, ready: make(chan struct{})}
	r.entries[id] = r.lru.PushFront(e)
	r.mu.Unlock()
	r.misses.Add(1)
	obsCacheMisses.Inc()

	e.kernel, e.err = r.prepare(m)
	if e.err != nil {
		close(e.ready)
		r.mu.Lock()
		if el, ok := r.entries[id]; ok && el.Value.(*cacheEntry) == e {
			r.lru.Remove(el)
			delete(r.entries, id)
		}
		r.mu.Unlock()
		return nil, false, e.err
	}
	bytes := int64(e.kernel.Bytes())
	close(e.ready)

	// Account the finished entry under the lock — e.bytes is only ever
	// read by evictLocked, which also holds it — and only if the entry is
	// still resident: churn can evict a pending entry while it prepares,
	// and charging the budget for an untracked entry would leak r.used.
	r.mu.Lock()
	if el, ok := r.entries[id]; ok && el.Value.(*cacheEntry) == e {
		e.bytes = bytes
		r.used += bytes
		r.evictLocked(e)
		obsCacheBytes.Set(float64(r.used))
	}
	r.mu.Unlock()
	return e.kernel, false, nil
}

// prepare builds and formats the matrix's serving kernel, warming the
// balanced-partition cache for the registry's thread count so steady-state
// multiplies never compute a partition either.
func (r *Registry) prepare(m *Matrix) (core.Kernel, error) {
	r.prepares.Add(1)
	obsCachePrepares.Inc()
	k, err := core.New(m.Format+"-omp", r.opts)
	if err != nil {
		return nil, err
	}
	p := core.Params{
		Reps: 1, Threads: r.threads, BlockSize: m.Block, K: 1,
		Schedule: m.Schedule,
	}
	if err := k.Prepare(m.COO, p); err != nil {
		return nil, fmt.Errorf("serve: prepare %s as %s: %w", m.ID, m.Format, err)
	}
	return k, nil
}

// evictLocked drops least-recently-used prepared formats until the cache
// fits the byte budget. keep (the entry just inserted) is never evicted:
// a single matrix larger than the whole budget must still be servable, it
// just monopolizes the cache until something else displaces it.
func (r *Registry) evictLocked(keep *cacheEntry) {
	if r.capacity <= 0 {
		return
	}
	for r.used > r.capacity {
		el := r.lru.Back()
		if el == nil {
			return
		}
		e := el.Value.(*cacheEntry)
		if e == keep {
			return
		}
		r.lru.Remove(el)
		delete(r.entries, e.id)
		r.used -= e.bytes
		r.evictions.Add(1)
		obsCacheEvictions.Inc()
	}
}

// CachedIDs returns the prepared-cache residents, most recently used first
// — the observable LRU order the eviction tests pin.
func (r *Registry) CachedIDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, r.lru.Len())
	for el := r.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).id)
	}
	return out
}

// Stats snapshots the cache counters.
func (r *Registry) Stats() CacheStats {
	r.mu.Lock()
	entries, used := r.lru.Len(), r.used
	r.mu.Unlock()
	return CacheStats{
		Entries:       entries,
		Bytes:         used,
		CapacityBytes: r.capacity,
		Hits:          r.hits.Load(),
		Misses:        r.misses.Load(),
		Prepares:      r.prepares.Load(),
		Evictions:     r.evictions.Load(),
	}
}

// Len reports the number of registered matrices.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.matrices)
}
