package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/trace"
)

// waitFor polls cond until it holds, failing the test after a generous
// real-time bound. It is the bridge between real goroutines (HTTP handlers
// parked on channels) and the fake clock: wait for the system to quiesce in
// the state the test wants, then advance virtual time deterministically.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// newTestServer spins up an in-process service on a random port and a client
// pointed at it. The returned teardown (also registered with t.Cleanup, and
// idempotent) closes client connections, the listener, and the server's
// worker pool — so goroutine-leak checks can run it early and see a quiet
// process.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client, func()) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	tr := &http.Transport{}
	var once sync.Once
	teardown := func() {
		once.Do(func() {
			tr.CloseIdleConnections()
			ts.Close()
			s.Close()
		})
	}
	t.Cleanup(teardown)
	c := NewClient(ts.URL)
	c.HTTP = &http.Client{Transport: tr}
	return s, c, teardown
}

// serialReference prepares the same-format serial kernel from the same
// canonical COO the server hashed. Parallel kernels preserve per-row
// accumulation order, so server responses must match it bitwise.
func serialReference(t *testing.T, reg *RegisterResponse, k int) (core.Kernel, core.Params) {
	t.Helper()
	local, _, err := gen.GenerateScaled("dw4096", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	Canonicalize(local)
	if got := ContentID(local); got != reg.ID {
		t.Fatalf("local matrix hashes to %s, server registered %s", got, reg.ID)
	}
	ref, err := core.New(reg.Format+"-serial", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	p.BlockSize = reg.Block
	p.K = k
	if err := ref.Prepare(local, p); err != nil {
		t.Fatal(err)
	}
	return ref, p
}

// TestEndToEndServe is the smoke test of the whole serving path: an
// in-process server, eight concurrent workers through the client library,
// every response verified bitwise against the serial kernel, steady-state
// multiplies all cache hits, and no goroutine left behind.
func TestEndToEndServe(t *testing.T) {
	before := runtime.NumGoroutine()

	func() {
		const k = 8
		const workers = 8
		const perWorker = 5

		_, client, teardown := newTestServer(t, Config{
			Threads:     2,
			BatchWindow: time.Millisecond,
			MaxInFlight: workers,
			QueueDepth:  2 * workers,
		})
		reg, err := client.Register(RegisterRequest{Name: "dw4096", Scale: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		if reg.Existed {
			t.Fatal("fresh registry reported the matrix as existing")
		}
		if reg.Format == "" || reg.FormatBytes <= 0 {
			t.Fatalf("register response missing format selection: %+v", reg)
		}
		ref, refParams := serialReference(t, reg, k)

		var misses atomic.Int64
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				refC := matrix.NewDense[float64](reg.Rows, k)
				for i := 0; i < perWorker; i++ {
					b := matrix.NewDenseRand[float64](reg.Cols, k, int64(100*w+i))
					res, err := client.Multiply(reg.ID, reg.Rows, b, k, 0)
					if err != nil {
						errs <- fmt.Errorf("worker %d request %d: %w", w, i, err)
						return
					}
					if !res.CacheHit {
						misses.Add(1)
					}
					if err := ref.Calculate(b, refC, refParams); err != nil {
						errs <- err
						return
					}
					if diff, _ := res.C.MaxAbsDiff(refC); diff != 0 {
						errs <- fmt.Errorf("worker %d request %d: differs from serial %s by %g",
							w, i, reg.Format, diff)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}

		stats, err := client.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Multiplies != workers*perWorker {
			t.Fatalf("server multiplies = %d, want %d", stats.Multiplies, workers*perWorker)
		}
		// Registration warm-prepared the format, so every multiply — first
		// included — must have hit the cache: exactly one prepare ever.
		if stats.Cache.Prepares != 1 {
			t.Fatalf("cache prepares = %d, want 1 (steady-state multiplies must not re-prepare)", stats.Cache.Prepares)
		}
		if misses.Load() != 0 {
			t.Fatalf("%d multiplies reported cache misses after warm registration", misses.Load())
		}
		if stats.Shed != 0 {
			t.Fatalf("server shed %d requests under a sufficient admission budget", stats.Shed)
		}
		teardown()
	}()

	// Teardown ran (client conns, listener, worker pool); the
	// process must wind back down to its starting goroutine count.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after server teardown",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBatchCoalescing pins the tentpole's throughput mechanism: concurrent
// same-matrix requests inside the window come back from ONE wider-k kernel
// dispatch — visible both in the response metadata and as a single "batch"
// trace span whose arg is the coalesced width. The batch window runs on an
// injected clock, so the test waits for every caller to join the open batch
// and then elapses the window in one deterministic Advance — all callers
// coalesce, every run.
func TestBatchCoalescing(t *testing.T) {
	const k = 8
	const callers = 4

	tracer := trace.New(4, 1<<12)
	tracer.SetEnabled(true)
	clk := clock.NewFake()
	srv, client, _ := newTestServer(t, Config{
		Threads:     2,
		BatchWindow: 100 * time.Millisecond,
		MaxInFlight: 2 * callers,
		QueueDepth:  2 * callers,
		Tracer:      tracer,
		Clock:       clk,
	})
	reg, err := client.Register(RegisterRequest{Name: "dw4096", Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	ref, refParams := serialReference(t, reg, k)

	start := make(chan struct{})
	results := make([]*MultiplyResult, callers)
	panels := make([]*matrix.Dense[float64], callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		panels[i] = matrix.NewDenseRand[float64](reg.Cols, k, int64(i+1))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = client.Multiply(reg.ID, reg.Rows, panels[i], k, 0)
		}(i)
	}
	close(start)
	// The fake clock keeps the window open until every caller has joined;
	// one Advance then flushes the whole batch as a single dispatch.
	waitFor(t, "all callers in the open batch", func() bool {
		return srv.pendingBatch(reg.ID) == callers
	})
	clk.Advance(100 * time.Millisecond)
	wg.Wait()

	refC := matrix.NewDense[float64](reg.Rows, k)
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		res := results[i]
		if res.BatchWidth != callers {
			t.Fatalf("caller %d: batch width = %d, want %d (scripted window coalesces every caller)",
				i, res.BatchWidth, callers)
		}
		if res.BatchK != callers*k {
			t.Fatalf("caller %d: dispatch k = %d, want %d", i, res.BatchK, callers*k)
		}
		// Coalescing must not perturb results: still bitwise-serial.
		if err := ref.Calculate(panels[i], refC, refParams); err != nil {
			t.Fatal(err)
		}
		if diff, _ := res.C.MaxAbsDiff(refC); diff != 0 {
			t.Fatalf("caller %d: batched result differs from serial %s by %g", i, reg.Format, diff)
		}
	}
	maxWidth := callers

	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Batches != 1 {
		t.Fatalf("%d dispatches for %d coalescible requests, want exactly 1", stats.Batches, callers)
	}
	if stats.BatchedRequests != callers {
		t.Fatalf("batched requests = %d, want %d", stats.BatchedRequests, callers)
	}

	// The wider-k dispatch is visible in the trace: one "batch" span per
	// dispatch, the widest carrying the coalesced width as its arg.
	var batchSpans, widest int64
	for _, sp := range tracer.Spans() {
		if sp.Name != trace.PhaseBatch {
			continue
		}
		batchSpans++
		if sp.Detail != reg.Format {
			t.Fatalf("batch span detail = %q, want the dispatch format %q", sp.Detail, reg.Format)
		}
		if sp.Arg > widest {
			widest = sp.Arg
		}
	}
	if batchSpans != stats.Batches {
		t.Fatalf("trace shows %d batch spans, server counted %d dispatches", batchSpans, stats.Batches)
	}
	if widest != int64(maxWidth) {
		t.Fatalf("widest batch span arg = %d, responses saw width %d", widest, maxWidth)
	}
}

// TestOverloadShedsNotDeadlocks drives a MaxInFlight=1, zero-queue server
// with a burst: the surplus must come back as 429 + Retry-After immediately —
// not hang, not 500 — while at least one request completes normally.
func TestOverloadShedsNotDeadlocks(t *testing.T) {
	const callers = 8
	const k = 4

	_, client, _ := newTestServer(t, Config{
		Threads:     1,
		BatchWindow: 30 * time.Millisecond,
		MaxInFlight: 1,
		QueueDepth:  -1, // no queue: surplus sheds instantly
	})
	reg, err := client.Register(RegisterRequest{Name: "dw4096", Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}

	var ok, shed atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			b := matrix.NewDenseRand[float64](reg.Cols, k, int64(i+1))
			_, err := client.Multiply(reg.ID, reg.Rows, b, k, 0)
			if err == nil {
				ok.Add(1)
				return
			}
			se, isStatus := err.(*StatusError)
			if !isStatus || !se.Overloaded() {
				t.Errorf("caller %d: want a 429 shed, got %v", i, err)
				return
			}
			if se.RetryAfter <= 0 {
				t.Errorf("caller %d: 429 without Retry-After", i)
				return
			}
			shed.Add(1)
		}(i)
	}
	close(start)
	wg.Wait()

	if ok.Load() < 1 {
		t.Fatal("overload shed every request; at least the in-flight one must complete")
	}
	if shed.Load() < 1 {
		t.Fatalf("%d concurrent requests against a 1-slot, 0-queue server and none shed", callers)
	}
	if ok.Load()+shed.Load() != callers {
		t.Fatalf("ok %d + shed %d != %d callers", ok.Load(), shed.Load(), callers)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shed != shed.Load() {
		t.Fatalf("server shed counter = %d, clients saw %d", stats.Shed, shed.Load())
	}
}

// TestQueueDeadlineExpires covers cooperative cancellation in the queue: a
// request whose deadline lapses while it waits for an admission slot leaves
// with 503 without ever executing. The slot holder is parked in a
// fake-clock batch window that cannot elapse on its own, so the queued
// request's deadline deterministically expires first — no sleep racing the
// holder's completion.
func TestQueueDeadlineExpires(t *testing.T) {
	const k = 4
	clk := clock.NewFake()
	srv, client, _ := newTestServer(t, Config{
		Threads:     1,
		BatchWindow: 150 * time.Millisecond, // slot holder dwells in its window
		MaxInFlight: 1,
		QueueDepth:  4,
		Clock:       clk,
	})
	reg, err := client.Register(RegisterRequest{Name: "dw4096", Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}

	holderDone := make(chan error, 1)
	go func() {
		b := matrix.NewDenseRand[float64](reg.Cols, k, 1)
		_, err := client.Multiply(reg.ID, reg.Rows, b, k, 0)
		holderDone <- err
	}()
	// The holder owns the only slot once it is parked in its batch window.
	waitFor(t, "holder parked in its batch window", func() bool {
		return srv.pendingBatch(reg.ID) == 1
	})

	b := matrix.NewDenseRand[float64](reg.Cols, k, 2)
	_, err = client.Multiply(reg.ID, reg.Rows, b, k, 20*time.Millisecond)
	se, isStatus := err.(*StatusError)
	if !isStatus || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("queued request past its deadline: want 503, got %v", err)
	}
	clk.Advance(150 * time.Millisecond) // release the holder's window
	if err := <-holderDone; err != nil {
		t.Fatalf("slot holder failed: %v", err)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Timeouts < 1 {
		t.Fatalf("server timeout counter = %d, want >= 1", stats.Timeouts)
	}
	// The timed-out request never multiplied: only the holder's dispatch ran.
	if stats.Multiplies != 1 {
		t.Fatalf("server ran %d multiplies, want 1 (expired request must not execute)", stats.Multiplies)
	}
}

// TestPanelRoundTrip pins the binary wire codec.
func TestPanelRoundTrip(t *testing.T) {
	d := matrix.NewDenseRand[float64](7, 5, 42)
	var buf bytes.Buffer
	if err := WritePanel(&buf, d, 3); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 7*3*8 {
		t.Fatalf("encoded panel is %d bytes, want %d", buf.Len(), 7*3*8)
	}
	got, err := ReadPanel(&buf, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		for j := 0; j < 3; j++ {
			if got.At(i, j) != d.At(i, j) {
				t.Fatalf("panel[%d][%d] = %g, want %g", i, j, got.At(i, j), d.At(i, j))
			}
		}
	}
}
