package serve

import (
	"repro/internal/obs"
	"repro/internal/trace"
)

// Serving-layer metrics, registered into the process-wide registry so a
// `-metrics` monitor (obs.Serve) exposes them next to the kernel and
// scheduling counters. Per-Server totals for /v1/stats live on the Server
// itself; these globals are the Prometheus view.
var (
	obsRequests = obs.NewCounter("spmm_serve_requests_total",
		"HTTP requests received by the serving layer.")
	obsMultiplies = obs.NewCounter("spmm_serve_multiplies_total",
		"Multiply requests completed (each coalesced request counts once).")
	obsBatches = obs.NewCounter("spmm_serve_batches_total",
		"Kernel dispatches issued by the batcher (a width-w batch is one).")
	obsBatchedRequests = obs.NewCounter("spmm_serve_batched_requests_total",
		"Multiply requests that travelled through a batch dispatch.")
	obsBatchWidth = obs.NewHistogram("spmm_serve_batch_width",
		"Requests coalesced per dispatch.")
	obsShed = obs.NewCounter("spmm_serve_shed_total",
		"Requests shed with 429 because the admission queue was full.")
	obsTimeouts = obs.NewCounter("spmm_serve_timeouts_total",
		"Requests whose deadline expired while queued for admission.")
	obsQueueDepth = obs.NewGauge("spmm_serve_queue_depth",
		"Admitted requests currently waiting for an execution slot.")
	obsInflight = obs.NewGauge("spmm_serve_in_flight",
		"Requests currently holding an execution slot.")
	obsRequestSeconds = obs.NewHistogram("spmm_serve_request_seconds",
		"Multiply request latency, admission to response write.")
	obsCacheHits = obs.NewCounter("spmm_serve_cache_hits_total",
		"Multiplies served from an already-prepared format.")
	obsCacheMisses = obs.NewCounter("spmm_serve_cache_misses_total",
		"Multiplies that found no prepared format resident.")
	obsCachePrepares = obs.NewCounter("spmm_serve_cache_prepares_total",
		"Format preparations performed by the cache.")
	obsCacheEvictions = obs.NewCounter("spmm_serve_cache_evictions_total",
		"Prepared formats evicted to fit the cache byte budget.")
	obsCacheBytes = obs.NewGauge("spmm_serve_cache_bytes",
		"Bytes of prepared formats currently resident.")

	// Durability: the registry WAL, its snapshot compactor, and startup
	// recovery. wal_fsync_seconds is the price of the ack-after-durable
	// contract; BenchmarkWALAppend pins it, and it must never appear on
	// the multiply path.
	obsWALAppends = obs.NewCounter("spmm_serve_wal_appends_total",
		"Registration records durably appended to the write-ahead log.")
	obsWALAppendErrors = obs.NewCounter("spmm_serve_wal_append_errors_total",
		"WAL appends that failed (write or fsync); the registration was not acked.")
	obsWALFsyncSeconds = obs.NewHistogram("spmm_serve_wal_fsync_seconds",
		"Per-append WAL fsync latency.")
	obsWALBytes = obs.NewGauge("spmm_serve_wal_bytes",
		"Current write-ahead-log length in bytes.")
	obsSnapshots = obs.NewCounter("spmm_serve_snapshots_total",
		"Registry snapshots published (each truncates the covered WAL prefix).")
	obsSnapshotErrors = obs.NewCounter("spmm_serve_snapshot_errors_total",
		"Snapshot attempts that failed; the WAL keeps growing until one lands.")
	obsSnapshotSeconds = obs.NewHistogram("spmm_serve_snapshot_seconds",
		"Snapshot write + WAL truncate latency.")
	obsRecoverySeconds = obs.NewGauge("spmm_serve_recovery_seconds",
		"Duration of the last startup registry recovery (snapshot + WAL replay).")
	obsRecoveredMatrices = obs.NewGauge("spmm_serve_recovered_matrices",
		"Registrations restored by the last startup recovery.")

	// Dynamic matrices: the mutation API, delta-COO overlays, and the
	// background compactor. overlay_apply_seconds is the per-dispatch tax a
	// dirty matrix pays; the compactor exists to drive it back to zero.
	obsDeltaMutations = obs.NewCounter("spmm_delta_mutations_total",
		"Mutation batches applied and acked.")
	obsDeltaOps = obs.NewCounter("spmm_delta_ops_total",
		"Canonicalized mutation ops applied across all batches.")
	obsDeltaOverlayNNZ = obs.NewGauge("spmm_delta_overlay_nnz",
		"Pending delta-overlay entries across all matrices, awaiting compaction.")
	obsDeltaApplySeconds = obs.NewHistogram("spmm_delta_overlay_apply_seconds",
		"Per-dispatch overlay application latency on mutated matrices.")
	obsDeltaCompactions = obs.NewCounter("spmm_delta_compactions_total",
		"Overlay compactions completed (merge + re-prepare + atomic swap).")
	obsDeltaCompactionErrors = obs.NewCounter("spmm_delta_compaction_errors_total",
		"Compactions whose re-prepare failed (the merged base still swapped in).")
	obsDeltaCompactionSeconds = obs.NewHistogram("spmm_delta_compaction_seconds",
		"Compaction latency: merge, journal, re-prepare, swap.")

	// Per-phase multiply latency, labelled with the request-trace phase
	// vocabulary (labels ride in the registration name, the registry's
	// convention). Fed only while request tracing is on — the phases are
	// not measured otherwise.
	obsPhaseSeconds = map[string]*obs.Histogram{
		trace.PhaseQueue:   newPhaseHistogram(trace.PhaseQueue),
		trace.PhaseLoad:    newPhaseHistogram(trace.PhaseLoad),
		trace.PhasePrepare: newPhaseHistogram(trace.PhasePrepare),
		trace.PhaseBatch:   newPhaseHistogram(trace.PhaseBatch),
		trace.PhaseKernel:  newPhaseHistogram(trace.PhaseKernel),
		trace.PhaseRespond: newPhaseHistogram(trace.PhaseRespond),
		trace.PhaseMutate:  newPhaseHistogram(trace.PhaseMutate),
		trace.PhaseCompact: newPhaseHistogram(trace.PhaseCompact),
	}
)

func newPhaseHistogram(phase string) *obs.Histogram {
	return obs.NewHistogram(`spmm_serve_phase_seconds{phase="`+phase+`"}`,
		"Per-request time spent in the "+phase+" phase of a multiply.")
}

// observePhaseSeconds feeds one finished request record into the per-phase
// histograms (unlabelled phases — e.g. attempt-remote on a router — are the
// router's own obs concern and skipped here).
func observePhaseSeconds(rec trace.ReqRecord) {
	for _, sp := range rec.Spans {
		if h, ok := obsPhaseSeconds[sp.Name]; ok {
			h.Observe(float64(sp.Dur) / 1e9)
		}
	}
}
