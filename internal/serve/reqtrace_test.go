package serve

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/matrix"
	"repro/internal/trace"
)

// Tests for per-request tracing on a single server: response headers, the
// timing codec, the record ring endpoint, batch fan-out, and the
// slow-request log line.

func TestFormatParseTimingRoundTrip(t *testing.T) {
	rec := trace.ReqRecord{
		ID: "r1", Subject: "m", TotalNs: 2_202_000,
		Spans: []trace.ReqSpan{
			{Name: trace.PhaseQueue, Dur: 12_000},
			{Name: trace.PhasePrepare, Dur: 1_000},
			{Name: trace.PhasePrepare, Dur: 2_000}, // same-named spans sum
			{Name: trace.PhaseKernel, Dur: 1_254_000},
		},
	}
	s := FormatTiming(rec, trace.PhaseRespond, 500_000)
	timing, ok := ParseTiming(s)
	if !ok || !timing.Valid() {
		t.Fatalf("ParseTiming(%q) not ok", s)
	}
	if got := timing.Ms(trace.PhasePrepare); math.Abs(got-0.003) > 1e-9 {
		t.Fatalf("prepare = %v ms, want 0.003 (summed)", got)
	}
	if got := timing.Ms(trace.PhaseRespond); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("respond = %v ms, want 0.5", got)
	}
	if math.Abs(timing.TotalMs-2.202) > 1e-9 {
		t.Fatalf("total = %v ms, want 2.202", timing.TotalMs)
	}
	// Phase order is recording order.
	if timing.Phases[0].Phase != trace.PhaseQueue || timing.Phases[len(timing.Phases)-1].Phase != trace.PhaseRespond {
		t.Fatalf("phase order = %+v", timing.Phases)
	}
	if _, ok := ParseTiming(""); ok {
		t.Fatal("empty header parsed as valid")
	}
	if _, ok := ParseTiming("queue=abc"); ok {
		t.Fatal("malformed header parsed as valid")
	}
}

func TestMultiplyRequestTracing(t *testing.T) {
	const k = 64
	_, client, _ := newTestServer(t, Config{
		Threads:      2,
		BatchWindow:  200 * time.Microsecond,
		ReqTraceRing: 64,
	})
	reg, err := client.Register(RegisterRequest{Name: "dw4096", Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	b := matrix.NewDenseRand[float64](reg.Cols, k, 7)
	// Warm the prepared-format cache so the traced request is steady-state
	// and kernel-dominated — the regime the 5% sum-vs-total bound targets.
	if _, err := client.Multiply(reg.ID, reg.Rows, b, k, 0); err != nil {
		t.Fatal(err)
	}
	res, err := client.Multiply(reg.ID, reg.Rows, b, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestID == "" {
		t.Fatal("traced multiply returned no X-Spmm-Request-Id")
	}
	if !res.Timing.Valid() {
		t.Fatal("traced multiply returned no X-Spmm-Timing")
	}
	for _, phase := range []string{trace.PhaseQueue, trace.PhasePrepare, trace.PhaseBatch, trace.PhaseKernel, trace.PhaseRespond} {
		if res.Timing.Ms(phase) < 0 {
			t.Fatalf("phase %s has negative ms", phase)
		}
		found := false
		for _, p := range res.Timing.Phases {
			if p.Phase == phase {
				found = true
			}
		}
		if !found {
			t.Errorf("X-Spmm-Timing missing phase %q: %+v", phase, res.Timing.Phases)
		}
	}
	// The per-phase breakdown must account for the request: phase sum within
	// 5% of the request total (instrumentation gaps are the only slack).
	if gap := math.Abs(res.Timing.TotalMs - res.Timing.SumMs()); gap > 0.05*res.Timing.TotalMs {
		t.Errorf("phase sum %.3f ms vs total %.3f ms: gap %.3f ms exceeds 5%%",
			res.Timing.SumMs(), res.Timing.TotalMs, gap)
	}

	// The record must be queryable from the ring endpoint by its ID.
	recs, err := client.TraceRequests(res.RequestID, "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("trace endpoint returned %d records for id %s", len(recs), res.RequestID)
	}
	rec := recs[0]
	if rec.Matrix != reg.ID {
		t.Fatalf("record matrix = %s, want %s", rec.Matrix, reg.ID)
	}
	var kernel, batch *RequestTracePhase
	for i := range rec.Phases {
		switch rec.Phases[i].Phase {
		case trace.PhaseKernel:
			kernel = &rec.Phases[i]
		case trace.PhaseBatch:
			batch = &rec.Phases[i]
		}
	}
	if kernel == nil || batch == nil {
		t.Fatalf("ring record missing batch/kernel spans: %+v", rec.Phases)
	}
	if kernel.Detail != res.Variant {
		t.Errorf("kernel span detail = %q, want served variant %q", kernel.Detail, res.Variant)
	}
	if batch.Detail != res.Format {
		t.Errorf("batch span detail = %q, want served format %q", batch.Detail, res.Format)
	}
	if batch.Arg < 1 || kernel.Arg < int64(k) {
		t.Errorf("span args batch=%d kernel=%d, want width >= 1 and totalK >= %d", batch.Arg, kernel.Arg, k)
	}

	// Matrix filter and min_ms filter reach the same record.
	byMatrix, err := client.TraceRequests("", reg.ID, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(byMatrix) == 0 {
		t.Fatal("matrix filter found nothing")
	}
	if _, err := client.TraceRequests("", "", -1, 0); err != nil {
		t.Fatal(err) // negative minMs is omitted client-side, not an error
	}
}

func TestMultiplyAdoptsClientRequestID(t *testing.T) {
	const k = 4
	s, client, _ := newTestServer(t, Config{Threads: 1, ReqTraceRing: 16})
	reg, err := client.Register(RegisterRequest{Name: "dw4096", Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	b := matrix.NewDenseRand[float64](reg.Cols, k, 3)
	var payload bytes.Buffer
	if err := WritePanel(&payload, b, k); err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("%s/v1/matrices/%s/multiply?k=%d", client.Base, reg.ID, k)
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(HeaderRequestID, "edge-rid-42")
	resp, err := client.http().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("multiply returned %d", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderRequestID); got != "edge-rid-42" {
		t.Fatalf("server echoed rid %q, want the client-supplied edge-rid-42", got)
	}
	if got := s.RequestTraces().Snapshot(trace.ReqFilter{ID: "edge-rid-42"}); len(got) != 1 {
		t.Fatalf("ring has %d records under the adopted id", len(got))
	}
}

func TestRequestTracingDisabled(t *testing.T) {
	const k = 4
	s, client, _ := newTestServer(t, Config{Threads: 1}) // ReqTraceRing 0
	reg, err := client.Register(RegisterRequest{Name: "dw4096", Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	b := matrix.NewDenseRand[float64](reg.Cols, k, 3)
	res, err := client.Multiply(reg.ID, reg.Rows, b, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestID != "" || res.Timing.Valid() {
		t.Fatalf("disabled tracing still set headers: rid=%q timing=%+v", res.RequestID, res.Timing)
	}
	if s.RequestTraces() != nil {
		t.Fatal("disabled server has a live request ring")
	}
	// The endpoint stays mounted and answers with an empty list.
	recs, err := client.TraceRequests("", "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("disabled ring returned %d records", len(recs))
	}
}

// lockedBuffer is a goroutine-safe bytes.Buffer for capturing slog output.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestSlowRequestLog(t *testing.T) {
	const k = 4
	var logbuf lockedBuffer
	_, client, _ := newTestServer(t, Config{
		Threads:      1,
		ReqTraceRing: 16,
		SlowRequest:  time.Nanosecond, // every request is "slow"
		Log:          slog.New(slog.NewTextHandler(&logbuf, nil)),
	})
	reg, err := client.Register(RegisterRequest{Name: "dw4096", Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	b := matrix.NewDenseRand[float64](reg.Cols, k, 3)
	res, err := client.Multiply(reg.ID, reg.Rows, b, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := logbuf.String()
	if !strings.Contains(out, "slow request") {
		t.Fatalf("no slow-request line in log:\n%s", out)
	}
	if !strings.Contains(out, res.RequestID) {
		t.Fatalf("slow-request line is not correlated with rid %s:\n%s", res.RequestID, out)
	}
	if !strings.Contains(out, "kernel_ms=") || !strings.Contains(out, "total_ms=") {
		t.Fatalf("slow-request line missing phase breakdown:\n%s", out)
	}
}
