package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCrashRecoveryE2E is the kill-and-restart end-to-end: real spmmserve
// and spmmload binaries, a real SIGKILL mid-load, a real restart on the
// same data dir. The load generator registers a matrix, the server is
// killed without warning while multiplies are in flight, a second server
// process recovers the registry from the WAL, and spmmload — riding the
// crash window on -retry-conn — finishes with every response verified
// bitwise against its local serial kernel. Durable means exactly this.
func TestCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes; skipped with -short")
	}

	bin := t.TempDir()
	dataDir := filepath.Join(bin, "data")
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, cmd := range []string{"spmmserve", "spmmload"} {
		build := exec.Command("go", "build", "-o", filepath.Join(bin, cmd), "./cmd/"+cmd)
		build.Dir = root
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", cmd, err, out)
		}
	}

	// Reserve a port both server processes will bind: spmmload needs one
	// stable address across the crash.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	startServer := func() *exec.Cmd {
		t.Helper()
		srv := exec.Command(filepath.Join(bin, "spmmserve"),
			"-addr", addr, "-data-dir", dataDir, "-t", "1")
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		// Poll /healthz until the listener answers.
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get("http://" + addr + "/healthz")
			if err == nil {
				resp.Body.Close()
				return srv
			}
			if time.Now().After(deadline) {
				srv.Process.Kill()
				t.Fatalf("spmmserve never became healthy on %s: %v", addr, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	srv1 := startServer()

	// spmmload with enough retries (and -retry-conn) to ride out the
	// restart window; its own bitwise verification is the test oracle.
	load := exec.Command(filepath.Join(bin, "spmmload"),
		"-addr", "http://"+addr, "-matrix", "dw4096", "-scale", "0.05",
		"-workers", "4", "-n", "120", "-k", "8", "-retries", "8", "-retry-conn")
	stdout, err := load.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	load.Stderr = load.Stdout // interleave; we only assert on the combined text
	if err := load.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait for the registration ack — the moment durability is promised —
	// then SIGKILL the server mid-load. No drain, no flush, no mercy.
	sc := bufio.NewScanner(stdout)
	var out strings.Builder
	registered := false
	for sc.Scan() {
		line := sc.Text()
		out.WriteString(line + "\n")
		if strings.HasPrefix(line, "registered ") {
			registered = true
			break
		}
	}
	if !registered {
		load.Wait()
		t.Fatalf("spmmload never registered:\n%s", out.String())
	}
	if err := srv1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	srv1.Wait()

	// Restart on the same data dir and port: recovery replaces re-registration.
	srv2 := startServer()
	defer func() {
		srv2.Process.Kill()
		srv2.Wait()
	}()

	for sc.Scan() {
		out.WriteString(sc.Text() + "\n")
	}
	if err := load.Wait(); err != nil {
		t.Fatalf("spmmload failed across the crash: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "verified: all") {
		t.Fatalf("spmmload finished without bitwise verification:\n%s", text)
	}

	// The restarted server must report the recovery in its stats.
	resp, err := http.Get("http://" + addr + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Durability.Enabled || stats.Durability.Recovered != 1 {
		t.Fatalf("restarted server durability stats: %+v, want 1 recovered matrix",
			stats.Durability)
	}
	if stats.Matrices != 1 {
		t.Fatalf("restarted server lists %d matrices, want 1", stats.Matrices)
	}
	fmt.Println("crash e2e: registration survived SIGKILL; load verified bitwise across restart")
}
