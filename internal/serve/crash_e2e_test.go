package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/matrix"
)

// TestCrashRecoveryE2E is the kill-and-restart end-to-end: real spmmserve
// and spmmload binaries, a real SIGKILL mid-load, a real restart on the
// same data dir. The load generator registers a matrix, the server is
// killed without warning while multiplies are in flight, a second server
// process recovers the registry from the WAL, and spmmload — riding the
// crash window on -retry-conn — finishes with every response verified
// bitwise against its local serial kernel. Durable means exactly this.
func TestCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes; skipped with -short")
	}

	bin := t.TempDir()
	dataDir := filepath.Join(bin, "data")
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, cmd := range []string{"spmmserve", "spmmload"} {
		build := exec.Command("go", "build", "-o", filepath.Join(bin, cmd), "./cmd/"+cmd)
		build.Dir = root
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", cmd, err, out)
		}
	}

	// Reserve a port both server processes will bind: spmmload needs one
	// stable address across the crash.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	startServer := func() *exec.Cmd {
		t.Helper()
		srv := exec.Command(filepath.Join(bin, "spmmserve"),
			"-addr", addr, "-data-dir", dataDir, "-t", "1")
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		// Poll /healthz until the listener answers.
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get("http://" + addr + "/healthz")
			if err == nil {
				resp.Body.Close()
				return srv
			}
			if time.Now().After(deadline) {
				srv.Process.Kill()
				t.Fatalf("spmmserve never became healthy on %s: %v", addr, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	srv1 := startServer()

	// spmmload with enough retries (and -retry-conn) to ride out the
	// restart window; its own bitwise verification is the test oracle.
	load := exec.Command(filepath.Join(bin, "spmmload"),
		"-addr", "http://"+addr, "-matrix", "dw4096", "-scale", "0.05",
		"-workers", "4", "-n", "120", "-k", "8", "-retries", "8", "-retry-conn")
	stdout, err := load.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	load.Stderr = load.Stdout // interleave; we only assert on the combined text
	if err := load.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait for the registration ack — the moment durability is promised —
	// then SIGKILL the server mid-load. No drain, no flush, no mercy.
	sc := bufio.NewScanner(stdout)
	var out strings.Builder
	registered := false
	for sc.Scan() {
		line := sc.Text()
		out.WriteString(line + "\n")
		if strings.HasPrefix(line, "registered ") {
			registered = true
			break
		}
	}
	if !registered {
		load.Wait()
		t.Fatalf("spmmload never registered:\n%s", out.String())
	}
	if err := srv1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	srv1.Wait()

	// Restart on the same data dir and port: recovery replaces re-registration.
	srv2 := startServer()
	defer func() {
		srv2.Process.Kill()
		srv2.Wait()
	}()

	for sc.Scan() {
		out.WriteString(sc.Text() + "\n")
	}
	if err := load.Wait(); err != nil {
		t.Fatalf("spmmload failed across the crash: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "verified: all") {
		t.Fatalf("spmmload finished without bitwise verification:\n%s", text)
	}

	// The restarted server must report the recovery in its stats.
	resp, err := http.Get("http://" + addr + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Durability.Enabled || stats.Durability.Recovered != 1 {
		t.Fatalf("restarted server durability stats: %+v, want 1 recovered matrix",
			stats.Durability)
	}
	if stats.Matrices != 1 {
		t.Fatalf("restarted server lists %d matrices, want 1", stats.Matrices)
	}
	fmt.Println("crash e2e: registration survived SIGKILL; load verified bitwise across restart")
}

// TestMutationCrashRecoveryE2E kills a real spmmserve process — SIGKILL,
// no drain — in the middle of a mutation stream running against an
// aggressive background-compaction policy, then restarts it on the same
// data dir. The recovered epoch must cover every acked batch (an extra
// batch that reached the WAL but whose ack was lost to the crash is
// allowed), and a multiply at the recovered epoch must be bitwise-equal
// to the client-side fold of exactly that many batches.
func TestMutationCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes; skipped with -short")
	}

	bin := t.TempDir()
	dataDir := filepath.Join(bin, "data")
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	build := exec.Command("go", "build", "-o", filepath.Join(bin, "spmmserve"), "./cmd/spmmserve")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build spmmserve: %v\n%s", err, out)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	startServer := func() *exec.Cmd {
		t.Helper()
		srv := exec.Command(filepath.Join(bin, "spmmserve"),
			"-addr", addr, "-data-dir", dataDir, "-t", "1",
			"-compact-ratio", "0.02") // compact constantly: the kill lands near one
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get("http://" + addr + "/healthz")
			if err == nil {
				resp.Body.Close()
				return srv
			}
			if time.Now().After(deadline) {
				srv.Process.Kill()
				t.Fatalf("spmmserve never became healthy on %s: %v", addr, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	srv1 := startServer()
	client := NewClient("http://" + addr)
	reg, local := registerSmall(t, client, 220, 180, 1100, 31)
	plan := buildDeltaPlan(t, local, 400, 8, 37)

	// Stream mutations at ~1ms spacing and SIGKILL mid-stream. lastAcked
	// is the durability promise; lastSent bounds how far ahead the WAL can
	// possibly be (one un-acked batch may have landed).
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(150 * time.Millisecond)
		srv1.Process.Signal(syscall.SIGKILL)
		srv1.Wait()
	}()
	lastAcked, lastSent := 0, 0
	for b, ops := range plan.batches {
		lastSent = b + 1
		resp, err := client.Mutate(reg.ID, ops)
		if err != nil {
			break // the kill landed
		}
		if resp.Epoch != int64(b+1) {
			t.Fatalf("batch %d acked epoch %d", b+1, resp.Epoch)
		}
		lastAcked = b + 1
		time.Sleep(time.Millisecond)
	}
	<-killed
	if lastAcked == 0 {
		t.Fatal("server died before any mutation was acked — nothing to recover")
	}

	srv2 := startServer()
	defer func() {
		srv2.Process.Kill()
		srv2.Wait()
	}()
	info := mutateInfo(t, client, reg.ID)
	if info.Epoch < int64(lastAcked) || info.Epoch > int64(lastSent) {
		t.Fatalf("recovered epoch %d, want every acked batch in [%d, %d]",
			info.Epoch, lastAcked, lastSent)
	}
	const k = 4
	bm := matrix.NewDenseRand[float64](reg.Cols, k, 71)
	res, err := client.Multiply(reg.ID, reg.Rows, bm, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != info.Epoch || res.Hash != info.Hash {
		t.Fatalf("recovered multiply at epoch %d hash %q, registry says %d/%q",
			res.Epoch, res.Hash, info.Epoch, info.Hash)
	}
	ref := multiplyRef(t, plan.states[info.Epoch], bm, k)
	if diff, _ := res.C.MaxAbsDiff(ref); diff != 0 {
		t.Fatalf("recovered multiply differs from the epoch-%d fold by %g", info.Epoch, diff)
	}
	// The stream resumes exactly where durability left it.
	if int(info.Epoch) < len(plan.batches) {
		next, err := client.Mutate(reg.ID, plan.batches[info.Epoch])
		if err != nil {
			t.Fatal(err)
		}
		if next.Epoch != info.Epoch+1 {
			t.Fatalf("post-recovery mutation acked epoch %d, want %d", next.Epoch, info.Epoch+1)
		}
	}
	fmt.Printf("mutation crash e2e: %d acked batches survived SIGKILL; recovered at epoch %d\n",
		lastAcked, info.Epoch)
}
