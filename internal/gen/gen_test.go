package gen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

func TestDegreeSequenceExactSumAndMax(t *testing.T) {
	cases := []DegreeParams{
		{Rows: 100, NNZ: 800, MaxRow: 24, Variance: 14},
		{Rows: 50, NNZ: 1000, MaxRow: 84, Variance: 197},
		{Rows: 1000, NNZ: 5000, MaxRow: 8, Variance: 0},
		{Rows: 500, NNZ: 36500, MaxRow: 3263, Variance: 176054}, // torso1-like tail
		{Rows: 10, NNZ: 10, MaxRow: 1, Variance: 0},
	}
	for _, p := range cases {
		rng := rand.New(rand.NewSource(1))
		deg, err := DegreeSequence(p, rng)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		sum, maxDeg := 0, 0
		for _, d := range deg {
			if d < 0 {
				t.Fatalf("%+v: negative degree", p)
			}
			sum += d
			maxDeg = max(maxDeg, d)
		}
		if sum != p.NNZ {
			t.Errorf("%+v: sum %d, want %d", p, sum, p.NNZ)
		}
		if maxDeg != p.MaxRow {
			t.Errorf("%+v: max %d, want %d", p, maxDeg, p.MaxRow)
		}
	}
}

func TestDegreeSequenceVarianceApprox(t *testing.T) {
	p := DegreeParams{Rows: 20000, NNZ: 20000 * 20, MaxRow: 108, Variance: 79}
	rng := rand.New(rand.NewSource(2))
	deg, err := DegreeSequence(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	mean := float64(p.NNZ) / float64(p.Rows)
	var ss float64
	for _, d := range deg {
		diff := float64(d) - mean
		ss += diff * diff
	}
	v := ss / float64(p.Rows)
	if v < p.Variance/3 || v > p.Variance*3 {
		t.Errorf("variance %v too far from target %v", v, p.Variance)
	}
}

func TestDegreeSequenceErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []DegreeParams{
		{Rows: 0, NNZ: 10, MaxRow: 5},
		{Rows: 10, NNZ: -1, MaxRow: 5},
		{Rows: 10, NNZ: 3, MaxRow: 5},   // NNZ < MaxRow
		{Rows: 10, NNZ: 200, MaxRow: 5}, // NNZ > Rows*MaxRow
		{Rows: 10, NNZ: 10, MaxRow: -2}, // negative max
		{Rows: 10, NNZ: 10, MaxRow: 5, Variance: -1},
	}
	for _, p := range bad {
		if _, err := DegreeSequence(p, rng); err == nil {
			t.Errorf("%+v: expected error", p)
		}
	}
}

func TestFromDegreesDistinctSortedColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	deg := []int{5, 0, 12, 3, 12}
	m, err := FromDegrees[float64](deg, PlaceParams{Cols: 12, Kind: KindFEM, Locality: 0.8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := m.RowCounts()
	for i, want := range deg {
		if counts[i] != want {
			t.Fatalf("row %d has %d entries, want %d", i, counts[i], want)
		}
	}
	if !m.IsSortedRowMajor() {
		t.Fatal("output must be sorted")
	}
	// Distinct columns per row: dedup must not merge anything.
	if merged := m.Clone().Dedup(); merged != 0 {
		t.Fatalf("%d duplicate columns generated", merged)
	}
}

func TestFromDegreesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := FromDegrees[float64]([]int{1}, PlaceParams{Cols: 0}, rng); err == nil {
		t.Fatal("cols=0 accepted")
	}
	if _, err := FromDegrees[float64]([]int{5}, PlaceParams{Cols: 3}, rng); err == nil {
		t.Fatal("degree > cols accepted")
	}
	if _, err := FromDegrees[float64]([]int{1}, PlaceParams{Cols: 3, Locality: 2}, rng); err == nil {
		t.Fatal("locality > 1 accepted")
	}
}

func TestBandedStructure(t *testing.T) {
	m, err := Banded[float64](10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := metrics.Compute(m)
	if p.MaxRow != 5 {
		t.Fatalf("band max %d, want 5", p.MaxRow)
	}
	for i := range m.Vals {
		if d := int(m.ColIdx[i]) - int(m.RowIdx[i]); d < -2 || d > 2 {
			t.Fatalf("entry outside band: (%d,%d)", m.RowIdx[i], m.ColIdx[i])
		}
	}
}

func TestUniformRandomDensity(t *testing.T) {
	m, err := UniformRandom[float64](100, 200, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 100*10 {
		t.Fatalf("nnz %d, want 1000", m.NNZ())
	}
}

func TestRegistryLookup(t *testing.T) {
	if len(Registry) != 14 {
		t.Fatalf("registry has %d matrices, want 14", len(Registry))
	}
	s, err := Lookup("torso1")
	if err != nil || s.MaxRow != 3263 {
		t.Fatalf("torso1 lookup: %+v, %v", s, err)
	}
	if _, err := Lookup("nonexistent"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if len(Names()) != 14 || Names()[0] != "2cubes_sphere" {
		t.Fatal("Names order wrong")
	}
}

func TestStudy7OmitsFiveLargest(t *testing.T) {
	names := Study7Names()
	if len(names) != 9 {
		t.Fatalf("study 7 set has %d matrices, want 9", len(names))
	}
	omitted := map[string]bool{"nd24k": true, "torso1": true, "crankseg_2": true, "x104": true, "rma10": true}
	for _, n := range names {
		if omitted[n] {
			t.Fatalf("%s should be omitted (top-5 nnz)", n)
		}
	}
}

func TestGenerateScaledPropertiesMatchSpec(t *testing.T) {
	// At 10% scale the average row degree, column ratio, and (roughly)
	// variance of each generated matrix must match Table 5.1.
	for _, spec := range Registry {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			m, scaled, err := GenerateScaled(spec.Name, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
			p := metrics.Compute(m)
			if p.NNZ != scaled.NNZ {
				t.Errorf("nnz %d, want %d", p.NNZ, scaled.NNZ)
			}
			if p.MaxRow != scaled.MaxRow {
				t.Errorf("max row %d, want %d", p.MaxRow, scaled.MaxRow)
			}
			wantAvg := float64(spec.NNZ) / float64(spec.Rows)
			if math.Abs(p.AvgRow-wantAvg) > wantAvg*0.1+1 {
				t.Errorf("avg row %v, want ~%v", p.AvgRow, wantAvg)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _, err := GenerateScaled("bcsstk13", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := GenerateScaled("bcsstk13", 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != b.NNZ() {
		t.Fatal("nondeterministic nnz")
	}
	for i := range a.Vals {
		if a.Vals[i] != b.Vals[i] || a.RowIdx[i] != b.RowIdx[i] || a.ColIdx[i] != b.ColIdx[i] {
			t.Fatal("nondeterministic content")
		}
	}
}

func TestScaleValidation(t *testing.T) {
	s := Registry[0]
	if _, err := s.Scale(0); err == nil {
		t.Fatal("scale 0 accepted")
	}
	if _, err := s.Scale(1.5); err == nil {
		t.Fatal("scale > 1 accepted")
	}
	same, err := s.Scale(1)
	if err != nil || same.Rows != s.Rows {
		t.Fatal("scale 1 must be identity")
	}
	small, err := s.Scale(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if small.NNZ > small.Rows*small.MaxRow || small.NNZ < small.MaxRow {
		t.Fatalf("scaled spec infeasible: %+v", small)
	}
}

func TestKindString(t *testing.T) {
	if KindFEM.String() != "fem" || KindStencil.String() != "stencil" || KindPowerLaw.String() != "powerlaw" {
		t.Fatal("kind strings wrong")
	}
}

func TestRMATBasics(t *testing.T) {
	m, err := RMAT[float64](8, 8, 0.57, 0.19, 0.19, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 256 || m.Cols != 256 {
		t.Fatalf("dims %dx%d", m.Rows, m.Cols)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Duplicates merged: nnz <= requested edges.
	if m.NNZ() > 256*8 || m.NNZ() < 256 {
		t.Fatalf("nnz %d implausible", m.NNZ())
	}
	// Scale-free skew: the max row degree should far exceed the average.
	p := metrics.Compute(m)
	if p.Ratio < 3 {
		t.Fatalf("R-MAT should be skewed; ratio %.1f", p.Ratio)
	}
}

func TestRMATDeterministicAndSeeded(t *testing.T) {
	a, _ := RMAT[float64](6, 4, 0.57, 0.19, 0.19, 7)
	b, _ := RMAT[float64](6, 4, 0.57, 0.19, 0.19, 7)
	c, _ := RMAT[float64](6, 4, 0.57, 0.19, 0.19, 8)
	if a.NNZ() != b.NNZ() {
		t.Fatal("same seed must agree")
	}
	for i := range a.Vals {
		if a.RowIdx[i] != b.RowIdx[i] || a.ColIdx[i] != b.ColIdx[i] {
			t.Fatal("same seed must agree elementwise")
		}
	}
	if c.NNZ() == a.NNZ() {
		same := true
		for i := range a.Vals {
			if a.RowIdx[i] != c.RowIdx[i] || a.ColIdx[i] != c.ColIdx[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds should differ")
		}
	}
}

func TestRMATValidation(t *testing.T) {
	if _, err := RMAT[float64](0, 8, 0.5, 0.2, 0.2, 1); err == nil {
		t.Fatal("scale 0 accepted")
	}
	if _, err := RMAT[float64](4, 0, 0.5, 0.2, 0.2, 1); err == nil {
		t.Fatal("edge factor 0 accepted")
	}
	if _, err := RMAT[float64](4, 4, 0.6, 0.3, 0.3, 1); err == nil {
		t.Fatal("probabilities > 1 accepted")
	}
}
