package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/matrix"
)

// Spec describes one of the thesis' 14 evaluation matrices by the
// properties its Table 5.1 reports. All 14 are square.
type Spec struct {
	Name string
	// Rows (== Cols; all matrices are square).
	Rows int
	// NNZ is the number of nonzeros.
	NNZ int
	// MaxRow is the maximum row degree ("Max").
	MaxRow int
	// Variance is the row-degree variance.
	Variance float64
	// Kind and Locality control placement; chosen per matrix family.
	Kind     Kind
	Locality float64
	// Seed makes each matrix distinct but deterministic.
	Seed int64
}

// Registry is the thesis' matrix set in Table 5.1 order. Kinds follow the
// matrices' provenance: bcsstk*/cant/crankseg_2/nd24k/pdb1HYS/rma10/x104/
// af23560/2cubes_sphere/cop20k_A are FEM-style problems, dw4096 and
// shallow_water1 are regular grids (zero variance), and torso1 — column
// ratio 44 — is the heavy-tailed outlier.
var Registry = []Spec{
	{Name: "2cubes_sphere", Rows: 101492, NNZ: 874378, MaxRow: 24, Variance: 14, Kind: KindFEM, Locality: 0.9, Seed: 101},
	{Name: "af23560", Rows: 23560, NNZ: 484256, MaxRow: 21, Variance: 1, Kind: KindFEM, Locality: 0.95, Seed: 102},
	{Name: "bcsstk13", Rows: 2003, NNZ: 42943, MaxRow: 84, Variance: 197, Kind: KindFEM, Locality: 0.85, Seed: 103},
	{Name: "bcsstk17", Rows: 10974, NNZ: 219812, MaxRow: 108, Variance: 79, Kind: KindFEM, Locality: 0.85, Seed: 104},
	{Name: "cant", Rows: 62451, NNZ: 2034917, MaxRow: 40, Variance: 54, Kind: KindFEM, Locality: 0.95, Seed: 105},
	{Name: "cop20k_A", Rows: 121192, NNZ: 1362087, MaxRow: 24, Variance: 45, Kind: KindFEM, Locality: 0.8, Seed: 106},
	{Name: "crankseg_2", Rows: 63838, NNZ: 7106348, MaxRow: 297, Variance: 2339, Kind: KindFEM, Locality: 0.9, Seed: 107},
	{Name: "dw4096", Rows: 8192, NNZ: 41746, MaxRow: 8, Variance: 0, Kind: KindStencil, Locality: 1, Seed: 108},
	{Name: "nd24k", Rows: 72000, NNZ: 14393817, MaxRow: 481, Variance: 6652, Kind: KindFEM, Locality: 0.9, Seed: 109},
	{Name: "pdb1HYS", Rows: 36417, NNZ: 2190591, MaxRow: 184, Variance: 753, Kind: KindFEM, Locality: 0.9, Seed: 110},
	{Name: "rma10", Rows: 46835, NNZ: 2374001, MaxRow: 145, Variance: 772, Kind: KindFEM, Locality: 0.9, Seed: 111},
	{Name: "shallow_water1", Rows: 81920, NNZ: 204800, MaxRow: 4, Variance: 0, Kind: KindStencil, Locality: 1, Seed: 112},
	{Name: "torso1", Rows: 116158, NNZ: 8516500, MaxRow: 3263, Variance: 176054, Kind: KindPowerLaw, Locality: 0.7, Seed: 113},
	{Name: "x104", Rows: 108384, NNZ: 5138004, MaxRow: 204, Variance: 313, Kind: KindFEM, Locality: 0.9, Seed: 114},
}

// Names returns the registry matrix names in Table 5.1 order.
func Names() []string {
	names := make([]string, len(Registry))
	for i, s := range Registry {
		names[i] = s.Name
	}
	return names
}

// Lookup returns the spec with the given name.
func Lookup(name string) (Spec, error) {
	for _, s := range Registry {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("gen: unknown matrix %q", name)
}

// Study7Names returns the 9 matrices the thesis could fit in GPU memory for
// its cuSparse study (§5.9: "we omitted the other 5 because they required
// more memory than what the device could support") — the registry minus the
// five largest by nonzero count.
func Study7Names() []string {
	type nameNNZ struct {
		name string
		nnz  int
	}
	all := make([]nameNNZ, len(Registry))
	for i, s := range Registry {
		all[i] = nameNNZ{s.Name, s.NNZ}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].nnz > all[b].nnz })
	omit := make(map[string]bool, 5)
	for _, e := range all[:5] {
		omit[e.name] = true
	}
	kept := make([]string, 0, len(Registry)-5)
	for _, s := range Registry {
		if !omit[s.Name] {
			kept = append(kept, s.Name)
		}
	}
	return kept
}

// Scale returns a copy of the spec shrunk by the given factor in (0, 1]:
// rows and nonzeros scale together so the average row degree — and with it
// the column ratio and (approximately) the variance, the properties the
// studies key off — is preserved. MaxRow is kept unless it no longer fits.
func (s Spec) Scale(factor float64) (Spec, error) {
	if factor <= 0 || factor > 1 {
		return Spec{}, fmt.Errorf("gen: scale factor %v outside (0, 1]", factor)
	}
	if factor == 1 {
		return s, nil
	}
	out := s
	out.Rows = max(int(math.Round(float64(s.Rows)*factor)), 16)
	avg := float64(s.NNZ) / float64(s.Rows)
	out.NNZ = int(math.Round(avg * float64(out.Rows)))
	if out.MaxRow > out.Rows {
		out.MaxRow = out.Rows
	}
	if out.NNZ < out.MaxRow {
		out.NNZ = out.MaxRow
	}
	if int64(out.NNZ) > int64(out.Rows)*int64(out.MaxRow) {
		out.NNZ = out.Rows * out.MaxRow
	}
	return out, nil
}

// Generate synthesises the matrix described by the spec.
func (s Spec) Generate() (*matrix.COO[float64], error) {
	return GenerateAs[float64](s)
}

// GenerateAs synthesises the matrix with the requested element type.
func GenerateAs[T matrix.Float](s Spec) (*matrix.COO[T], error) {
	rng := rand.New(rand.NewSource(s.Seed))
	deg, err := DegreeSequence(DegreeParams{
		Rows:     s.Rows,
		NNZ:      s.NNZ,
		MaxRow:   s.MaxRow,
		Variance: s.Variance,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("gen: %s: %w", s.Name, err)
	}
	m, err := FromDegrees[T](deg, PlaceParams{
		Cols:     s.Rows,
		Kind:     s.Kind,
		Locality: s.Locality,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("gen: %s: %w", s.Name, err)
	}
	return m, nil
}

// GenerateScaled looks a matrix up by name, scales it, and generates it —
// the one-call path the studies and benchmarks use.
func GenerateScaled(name string, factor float64) (*matrix.COO[float64], Spec, error) {
	s, err := Lookup(name)
	if err != nil {
		return nil, Spec{}, err
	}
	s, err = s.Scale(factor)
	if err != nil {
		return nil, Spec{}, err
	}
	m, err := s.Generate()
	if err != nil {
		return nil, Spec{}, err
	}
	return m, s, nil
}
