// Package gen generates synthetic sparse matrices. The thesis benchmarks 14
// matrices downloaded from the SuiteSparse collection; this suite cannot
// ship those, so gen synthesises matrices calibrated to every column of the
// thesis' Table 5.1 (size, nonzeros, max/avg row degree, column ratio,
// variance). All the studies key off the row-degree distribution and the
// spatial locality of the nonzeros, which is exactly what the generators
// control, so the performance characterisation transfers.
//
// All generation is deterministic given the seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/matrix"
)

// Kind selects the nonzero placement style.
type Kind uint8

const (
	// KindFEM clusters nonzeros around the diagonal in contiguous runs
	// with a small scattered remainder — the shape of the thesis' finite
	// element matrices (cant, bcsstk*, pdb1HYS, ...).
	KindFEM Kind = iota
	// KindStencil places perfectly regular diagonal bands — the shape of
	// the structured-grid matrices (dw4096, shallow_water1) whose row
	// variance is zero.
	KindStencil
	// KindPowerLaw clusters most rows like KindFEM but draws scattered
	// columns from a skewed (hub-heavy) distribution — the shape of
	// torso1, whose column ratio is 44.
	KindPowerLaw
)

func (k Kind) String() string {
	switch k {
	case KindStencil:
		return "stencil"
	case KindPowerLaw:
		return "powerlaw"
	default:
		return "fem"
	}
}

// DegreeParams describe a target row-degree distribution.
type DegreeParams struct {
	Rows int
	// NNZ is the target total number of nonzeros (sum of degrees).
	NNZ int
	// MaxRow is the exact maximum row degree; at least one row gets it.
	MaxRow int
	// Variance is the target variance of the per-row degree.
	Variance float64
}

// DegreeSequence synthesises a per-row degree sequence matching the target
// parameters: the sum is exactly NNZ, the maximum exactly MaxRow (when
// NNZ >= MaxRow), and the variance approximately Variance. Heavy-tailed
// targets (standard deviation exceeding the mean) use a lognormal draw so a
// torso1-like tail emerges naturally; otherwise a clipped normal is used.
func DegreeSequence(p DegreeParams, rng *rand.Rand) ([]int, error) {
	if p.Rows <= 0 {
		return nil, fmt.Errorf("gen: DegreeSequence needs positive rows, got %d", p.Rows)
	}
	if p.NNZ < 0 || p.MaxRow < 0 || p.Variance < 0 {
		return nil, fmt.Errorf("gen: negative degree parameters %+v", p)
	}
	if p.MaxRow > 0 && p.NNZ < p.MaxRow {
		return nil, fmt.Errorf("gen: NNZ=%d cannot accommodate MaxRow=%d", p.NNZ, p.MaxRow)
	}
	if int64(p.NNZ) > int64(p.Rows)*int64(p.MaxRow) {
		return nil, fmt.Errorf("gen: NNZ=%d exceeds Rows*MaxRow=%d", p.NNZ, p.Rows*p.MaxRow)
	}
	mean := float64(p.NNZ) / float64(p.Rows)
	std := math.Sqrt(p.Variance)
	deg := make([]int, p.Rows)

	draw := func() float64 { return mean }
	switch {
	case std == 0:
		// Constant degrees.
	case std > mean && mean > 0:
		// Lognormal calibrated to the target mean and variance.
		sigma2 := math.Log(1 + p.Variance/(mean*mean))
		mu := math.Log(mean) - sigma2/2
		sigma := math.Sqrt(sigma2)
		draw = func() float64 { return math.Exp(mu + sigma*rng.NormFloat64()) }
	default:
		draw = func() float64 { return mean + std*rng.NormFloat64() }
	}

	minDeg := 0
	if mean >= 1 {
		minDeg = 1
	}
	sum := 0
	for i := range deg {
		d := int(math.Round(draw()))
		if d < minDeg {
			d = minDeg
		}
		if d > p.MaxRow {
			d = p.MaxRow
		}
		deg[i] = d
		sum += d
	}

	// Pin the maximum on one row.
	if p.MaxRow > 0 {
		r0 := rng.Intn(p.Rows)
		sum += p.MaxRow - deg[r0]
		deg[r0] = p.MaxRow
		// Redistribute the total, never touching r0.
		adjustSum(deg, p.NNZ-sum, minDeg, p.MaxRow, r0, rng)
	} else {
		adjustSum(deg, p.NNZ-sum, minDeg, p.MaxRow, -1, rng)
	}
	return deg, nil
}

// adjustSum nudges random entries of deg by ±1 until the sum changes by
// diff, respecting [lo, hi] bounds and skipping index skip.
func adjustSum(deg []int, diff, lo, hi, skip int, rng *rand.Rand) {
	n := len(deg)
	if n == 0 || (n == 1 && skip == 0) {
		return
	}
	// A bounded number of full passes guards against pathological bound
	// saturation; random single steps handle the common case fast.
	stall := 0
	for diff != 0 && stall < 64*n {
		i := rng.Intn(n)
		if i == skip {
			continue
		}
		switch {
		case diff > 0 && deg[i] < hi:
			deg[i]++
			diff--
			stall = 0
		case diff < 0 && deg[i] > lo:
			deg[i]--
			diff++
			stall = 0
		default:
			stall++
		}
	}
}

// PlaceParams control nonzero placement for a given degree sequence.
type PlaceParams struct {
	Cols int
	Kind Kind
	// Locality is the fraction of each row's entries placed in a
	// contiguous run near the diagonal (0..1). Ignored by KindStencil,
	// which is fully banded.
	Locality float64
}

// FromDegrees builds a COO matrix with the given per-row degrees and
// placement style. Column indices within a row are distinct and sorted.
func FromDegrees[T matrix.Float](deg []int, p PlaceParams, rng *rand.Rand) (*matrix.COO[T], error) {
	rows := len(deg)
	if p.Cols <= 0 {
		return nil, fmt.Errorf("gen: FromDegrees needs positive cols, got %d", p.Cols)
	}
	loc := p.Locality
	if loc < 0 || loc > 1 {
		return nil, fmt.Errorf("gen: locality %v outside [0,1]", loc)
	}
	total := 0
	for i, d := range deg {
		if d < 0 || d > p.Cols {
			return nil, fmt.Errorf("gen: row %d degree %d outside [0, %d]", i, d, p.Cols)
		}
		total += d
	}
	m := matrix.NewCOO[T](rows, p.Cols, total)
	cols := make([]int32, 0, 512)
	seen := make(map[int32]struct{}, 512)
	for i, d := range deg {
		if d == 0 {
			continue
		}
		cols = cols[:0]
		clear(seen)
		diag := 0
		if rows > 1 {
			diag = i * (p.Cols - 1) / (rows - 1)
		}
		nLocal := d
		if p.Kind != KindStencil {
			nLocal = int(math.Round(float64(d) * loc))
		}
		// Contiguous run centred on the diagonal.
		start := diag - nLocal/2
		if start < 0 {
			start = 0
		}
		if start+nLocal > p.Cols {
			start = p.Cols - nLocal
		}
		for c := start; c < start+nLocal; c++ {
			cols = append(cols, int32(c))
			seen[int32(c)] = struct{}{}
		}
		// Scattered remainder.
		for len(cols) < d {
			var c int32
			if p.Kind == KindPowerLaw {
				// Hub-heavy: square a uniform draw so low-index
				// "hub" columns are hit far more often.
				u := rng.Float64()
				c = int32(u * u * float64(p.Cols))
			} else {
				c = int32(rng.Intn(p.Cols))
			}
			if c >= int32(p.Cols) {
				c = int32(p.Cols - 1)
			}
			if _, dup := seen[c]; dup {
				// Collision: walk forward to the next free column.
				for {
					c = (c + 1) % int32(p.Cols)
					if _, dup := seen[c]; !dup {
						break
					}
				}
			}
			cols = append(cols, c)
			seen[c] = struct{}{}
		}
		sort.Slice(cols, func(a, b int) bool { return cols[a] < cols[b] })
		for _, c := range cols {
			m.Append(int32(i), c, T(rng.Float64()*2-1))
		}
	}
	return m, nil
}

// Banded generates a square matrix with a full band of the given half-width
// around the diagonal (a classic stencil matrix).
func Banded[T matrix.Float](n, halfWidth int, seed int64) (*matrix.COO[T], error) {
	if n < 0 || halfWidth < 0 {
		return nil, fmt.Errorf("gen: Banded(%d, %d)", n, halfWidth)
	}
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewCOO[T](n, n, n*(2*halfWidth+1))
	for i := 0; i < n; i++ {
		lo := max(i-halfWidth, 0)
		hi := min(i+halfWidth, n-1)
		for c := lo; c <= hi; c++ {
			m.Append(int32(i), int32(c), T(rng.Float64()*2-1))
		}
	}
	return m, nil
}

// UniformRandom generates a matrix with approximately the given density,
// with nonzeros placed uniformly at random (one pass per row, distinct
// columns).
func UniformRandom[T matrix.Float](rows, cols int, density float64, seed int64) (*matrix.COO[T], error) {
	if rows < 0 || cols < 0 || density < 0 || density > 1 {
		return nil, fmt.Errorf("gen: UniformRandom(%d, %d, %v)", rows, cols, density)
	}
	rng := rand.New(rand.NewSource(seed))
	perRow := int(math.Round(density * float64(cols)))
	deg := make([]int, rows)
	for i := range deg {
		deg[i] = perRow
	}
	return FromDegrees[T](deg, PlaceParams{Cols: cols, Kind: KindFEM, Locality: 0}, rng)
}

// RMAT generates a scale-free directed graph adjacency matrix with the
// R-MAT recursive partitioning model — the workload shape of the graph
// analytics and graph-neural-network systems that motivate SpMM in the
// thesis' introduction (GNN feature propagation is SpMM: adjacency ×
// feature matrix). a, b, c are the upper-left, upper-right and lower-left
// quadrant probabilities (a+b+c <= 1); the classic Graph500 parameters are
// 0.57, 0.19, 0.19. Duplicate edges are merged; values are 1 (an unweighted
// adjacency matrix).
func RMAT[T matrix.Float](scale int, edgeFactor int, a, b, c float64, seed int64) (*matrix.COO[T], error) {
	if scale < 1 || scale > 30 {
		return nil, fmt.Errorf("gen: RMAT scale %d outside [1, 30]", scale)
	}
	if edgeFactor < 1 {
		return nil, fmt.Errorf("gen: RMAT edge factor %d < 1", edgeFactor)
	}
	if a < 0 || b < 0 || c < 0 || a+b+c > 1 {
		return nil, fmt.Errorf("gen: RMAT probabilities (%v, %v, %v) invalid", a, b, c)
	}
	n := 1 << scale
	edges := n * edgeFactor
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewCOO[T](n, n, edges)
	for e := 0; e < edges; e++ {
		row, col := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			u := rng.Float64()
			switch {
			case u < a:
				// upper-left: neither bit set
			case u < a+b:
				col |= 1 << bit
			case u < a+b+c:
				row |= 1 << bit
			default:
				row |= 1 << bit
				col |= 1 << bit
			}
		}
		m.Append(int32(row), int32(col), 1)
	}
	m.Dedup()
	return m, nil
}
