package advisor

// Report is the machine-readable advisor output: `spmmadvise -json` emits
// it, and the serving layer (internal/serve) embeds it in its register
// response as the format-selection explanation. One struct in one place so
// the CLI and the server never drift.
type Report struct {
	Matrix string `json:"matrix"`
	Rows   int    `json:"rows"`
	Cols   int    `json:"cols"`
	NNZ    int    `json:"nnz"`
	// Features are the signals the recommendations are scored on.
	Features FeatureSummary `json:"features"`
	// Schedule is the work-partition recommendation (RecommendSchedule).
	Schedule Advice `json:"schedule"`
	// Environments holds the per-environment format rankings, best first.
	Environments []EnvAdvice `json:"environments"`
	// Measured holds live kernel-variant timings, fastest first, when an
	// online tuner (internal/tune) has shadow-measured the matrix. The
	// heuristic rankings above are the prior; this is the ground truth
	// that replaces them once a server has actually run the variants.
	Measured []Measurement `json:"measured,omitempty"`
}

// Measurement is one measured kernel-variant timing: the serving layer's
// tuner races registry variants against live traffic and reports the
// per-dispatch p50 it observed.
type Measurement struct {
	// Variant is the kernels registry name ("csr/opts-balanced-pool").
	Variant string `json:"variant"`
	// Samples is how many shadow trials back the estimate.
	Samples int `json:"samples"`
	// P50Micros is the median measured dispatch time in microseconds.
	P50Micros float64 `json:"p50_micros"`
}

// FeatureSummary is the JSON rendering of the scored Features.
type FeatureSummary struct {
	MaxRow      int     `json:"max_row"`
	AvgRow      float64 `json:"avg_row"`
	Ratio       float64 `json:"ratio"`
	Gini        float64 `json:"gini"`
	ELLOverhead float64 `json:"ell_overhead"`
	BCSRFill4   float64 `json:"bcsr_fill4"`
	Density     float64 `json:"density"`
}

// EnvAdvice is one environment's ranking.
type EnvAdvice struct {
	Env    string   `json:"env"`
	Ranked []Advice `json:"ranked"`
}

// NewReport assembles the report for the given environments.
func NewReport(name string, f Features, envs []Environment) Report {
	r := Report{
		Matrix: name,
		Rows:   f.Rows,
		Cols:   f.Cols,
		NNZ:    f.NNZ,
		Features: FeatureSummary{
			MaxRow:      f.MaxRow,
			AvgRow:      f.AvgRow,
			Ratio:       f.Ratio,
			Gini:        f.Gini,
			ELLOverhead: f.ELLOverhead,
			BCSRFill4:   f.BCSRFill4,
			Density:     f.Density,
		},
		Schedule: RecommendSchedule(f),
	}
	for _, e := range envs {
		r.Environments = append(r.Environments, EnvAdvice{
			Env:    e.String(),
			Ranked: Recommend(f, e),
		})
	}
	return r
}

// Best returns the top-ranked advice for the environment, or a zero Advice
// when the report does not cover it.
func (r Report) Best(env Environment) Advice {
	for _, e := range r.Environments {
		if e.Env == env.String() && len(e.Ranked) > 0 {
			return e.Ranked[0]
		}
	}
	return Advice{}
}
