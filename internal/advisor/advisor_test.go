package advisor

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/metrics"
)

func features(t *testing.T, name string, scale float64) Features {
	t.Helper()
	m, _, err := gen.GenerateScaled(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Extract(m)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestExtractFeatures(t *testing.T) {
	f := features(t, "cant", 0.05)
	if f.NNZ == 0 || f.Density <= 0 || f.Density >= 1 {
		t.Fatalf("bad features: %+v", f)
	}
	if f.ELLOverhead < 1 {
		t.Fatalf("ELL overhead %v < 1", f.ELLOverhead)
	}
	if f.BCSRFill4 <= 0 || f.BCSRFill4 > 1 {
		t.Fatalf("block fill %v outside (0,1]", f.BCSRFill4)
	}
}

func TestRecommendReturnsSortedCompleteRanking(t *testing.T) {
	f := features(t, "bcsstk17", 0.1)
	for _, env := range []Environment{SerialCPU, ParallelCPU, GPUEnv} {
		advice := Recommend(f, env)
		if len(advice) != 4 {
			t.Fatalf("%v: %d recommendations", env, len(advice))
		}
		seen := map[string]bool{}
		for i, a := range advice {
			if a.Reason == "" {
				t.Fatalf("%v: %s has no reason", env, a.Format)
			}
			if seen[a.Format] {
				t.Fatalf("%v: duplicate %s", env, a.Format)
			}
			seen[a.Format] = true
			if i > 0 && a.Score > advice[i-1].Score {
				t.Fatalf("%v: not sorted", env)
			}
		}
	}
}

// TestRecommendMatchesThesisConclusions encodes §6.1/§6.2: uniform rows →
// ELL in parallel; one huge row → never a padded format; serial → CSR-ish.
func TestRecommendMatchesThesisConclusions(t *testing.T) {
	// af23560: ratio 1 — ELL's ideal case in parallel environments.
	uniform := features(t, "af23560", 0.1)
	if got := Recommend(uniform, ParallelCPU)[0].Format; got != "ell" && got != "bcsr" {
		t.Errorf("uniform matrix in parallel: picked %s, want a blocked format", got)
	}

	// torso1: ratio 44 — padded formats must rank at the bottom everywhere.
	skewed := features(t, "torso1", 0.02)
	for _, env := range []Environment{SerialCPU, ParallelCPU, GPUEnv} {
		advice := Recommend(skewed, env)
		if advice[0].Format == "ell" {
			t.Errorf("%v: ELL recommended for a ratio-%0.f matrix", env, skewed.Ratio)
		}
		if advice[len(advice)-1].Format != "ell" && advice[len(advice)-2].Format != "ell" {
			t.Errorf("%v: ELL should rank near the bottom for torso1", env)
		}
	}

	// Serial CPU on a generic FEM matrix: CSR or COO on top (§6.1: "COO
	// and CSR often did very well ... better than BCSR or ELLPACK").
	generic := features(t, "cop20k_A", 0.05)
	if got := Recommend(generic, SerialCPU)[0].Format; got != "csr" && got != "coo" {
		t.Errorf("serial generic matrix: picked %s, want csr/coo", got)
	}
}

func TestMeasureAgreesWithKernels(t *testing.T) {
	m, _, err := gen.GenerateScaled("bcsstk13", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	p.Reps = 1
	p.Threads = 2
	p.K = 32
	best, results, err := Measure(m, ParallelCPU, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d results", len(results))
	}
	var bestMF float64
	for _, r := range results {
		if !r.Verified {
			t.Fatalf("%s not verified", r.Kernel)
		}
		if r.MFLOPS > bestMF {
			bestMF = r.MFLOPS
		}
	}
	for _, r := range results {
		if r.Format == best && r.MFLOPS != bestMF {
			t.Fatalf("winner %s does not have the max MFLOPS", best)
		}
	}
}

func TestMeasureGPURequiresDevice(t *testing.T) {
	m := matrix.NewCOO[float64](4, 4, 1)
	m.Append(0, 0, 1)
	p := core.DefaultParams()
	p.Reps = 1
	p.K = 8
	if _, _, err := Measure(m, GPUEnv, p, core.Options{}); err == nil {
		t.Fatal("GPU environment without a device accepted")
	}
}

func TestEnvironmentStrings(t *testing.T) {
	if SerialCPU.String() != "serial-cpu" || ParallelCPU.String() != "parallel-cpu" || GPUEnv.String() != "gpu" {
		t.Fatal("environment strings")
	}
}

func TestRecommendSchedule(t *testing.T) {
	balanced := RecommendSchedule(Features{Properties: metrics.Properties{Gini: 0.62, Ratio: 30}})
	if balanced.Format != "balanced" || balanced.Reason == "" {
		t.Fatalf("skewed matrix: %+v, want balanced", balanced)
	}
	static := RecommendSchedule(Features{Properties: metrics.Properties{Gini: 0.08, Ratio: 1.3}})
	if static.Format != "static" {
		t.Fatalf("uniform matrix: %+v, want static", static)
	}
	if balanced.Score <= static.Score {
		t.Fatal("skew recommendation should score above the uniform default")
	}
	// The ratio alone (one hub row in an otherwise uniform matrix) triggers it.
	hub := RecommendSchedule(Features{Properties: metrics.Properties{Gini: 0.1, Ratio: 20}})
	if hub.Format != "balanced" {
		t.Fatalf("hub-row matrix: %+v, want balanced", hub)
	}
}
