// Package advisor recommends a sparse format for a given matrix and
// execution environment from the matrix-property metrics the suite computes
// — the programme of the format-selection work the thesis surveys in its
// related-work chapter ([18], [9]: metric-driven and learned format
// selection, e.g. the "ELL ratio" rule) and of its own conclusions
// (§6.1–6.2: CSR/COO win serially, the blocked formats want parallel
// hardware and clustered nonzeros, one long row poisons any padded format).
//
// Two modes are provided: Recommend scores formats from properties alone
// (fast, no benchmarking), and Measure empirically benchmarks the
// candidates through the suite and reports the winner — the ground truth
// the heuristic approximates. The thesis' own caveat applies and is
// reproduced by the examples: "the data in our table presents an overly
// simplistic view" (§6.2), so Recommend is a prior, not an oracle.
package advisor

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/metrics"
)

// Environment is the execution setting a format is chosen for.
type Environment int

const (
	// SerialCPU is single-core execution.
	SerialCPU Environment = iota
	// ParallelCPU is multi-threaded execution.
	ParallelCPU
	// GPUEnv is SIMT (GPU) execution.
	GPUEnv
)

func (e Environment) String() string {
	switch e {
	case ParallelCPU:
		return "parallel-cpu"
	case GPUEnv:
		return "gpu"
	default:
		return "serial-cpu"
	}
}

// Features are the signals the advisor scores on: the Table 5.1 properties
// plus blocked-format-specific structure measures.
type Features struct {
	metrics.Properties
	// ELLOverhead is stored-slots/nonzeros for ELLPACK (1.0 = no padding).
	ELLOverhead float64
	// BCSRFill4 is the fill ratio of 4×4 blocks: how clustered the
	// nonzeros are at block granularity (1.0 = perfectly dense blocks).
	BCSRFill4 float64
	// Density is nnz/(rows*cols).
	Density float64
}

// Extract computes the advisor features for a matrix. It builds a 4×4 BCSR
// skeleton to measure block clustering, so it costs one pass over the
// nonzeros.
func Extract(m *matrix.COO[float64]) (Features, error) {
	p := metrics.Compute(m)
	f := Features{Properties: p, ELLOverhead: p.ELLOverhead()}
	if p.Rows > 0 && p.Cols > 0 {
		f.Density = float64(p.NNZ) / (float64(p.Rows) * float64(p.Cols))
	}
	b, err := formats.BCSRFromCOO(m, 4, 4)
	if err != nil {
		return Features{}, fmt.Errorf("advisor: %w", err)
	}
	f.BCSRFill4 = b.FillRatio()
	return f, nil
}

// Advice is one ranked recommendation. The JSON tags are part of the
// machine-readable output contract shared by `spmmadvise -json` and the
// serving layer's register response (see Report).
type Advice struct {
	// Format is the format family: "coo", "csr", "ell" or "bcsr".
	Format string `json:"format"`
	// Score is a unitless preference; higher is better. Scores are
	// comparable within one Recommend call only.
	Score float64 `json:"score"`
	// Reason explains the dominant factor in one sentence.
	Reason string `json:"reason"`
}

// Recommend ranks the four main formats for the environment, best first.
func Recommend(f Features, env Environment) []Advice {
	advice := []Advice{
		scoreCOO(f, env),
		scoreCSR(f, env),
		scoreELL(f, env),
		scoreBCSR(f, env),
	}
	sort.SliceStable(advice, func(i, j int) bool { return advice[i].Score > advice[j].Score })
	return advice
}

func scoreCSR(f Features, env Environment) Advice {
	// CSR is the robust default: compact, no padding, row-parallel.
	s := 1.0
	reason := "compact row-compressed baseline with no padding"
	if env == SerialCPU {
		s += 0.2 // §6.1: CSR generally best serially
		reason = "serial CPU favours the compact, cache-friendly row walk"
	}
	if f.Ratio > 8 {
		s += 0.3 // long rows poison padded formats, CSR unaffected
		reason = "high column ratio: padded formats degrade, CSR does not"
	}
	return Advice{Format: "csr", Score: s, Reason: reason}
}

func scoreCOO(f Features, env Environment) Advice {
	// COO trails CSR slightly (bigger footprint) but partitions nonzeros
	// evenly, which pays off in parallel on irregular matrices (§5.3:
	// "On Arm, COO generally did the best in a parallel environment").
	s := 0.9
	reason := "simple triplets; slightly larger footprint than CSR"
	if env == ParallelCPU && f.Ratio > 4 {
		s += 0.45
		reason = "irregular rows: nonzero-partitioned COO balances threads better than row-partitioned formats"
	}
	return Advice{Format: "coo", Score: s, Reason: reason}
}

func scoreELL(f Features, env Environment) Advice {
	// ELL lives or dies by the padding overhead (the "ELL ratio" rule of
	// the related work) and only pays off on parallel hardware.
	s := 0.5
	reason := "fixed-width rows: only competitive on parallel hardware"
	switch {
	case f.ELLOverhead <= 1.3 && env != SerialCPU:
		s = 1.35
		reason = "uniform row lengths (low ELL overhead): perfectly balanced parallel work"
	case f.ELLOverhead <= 1.3:
		s = 0.95
		reason = "low padding, but serial CPUs gain nothing from the fixed shape"
	case f.ELLOverhead > 3:
		s = 0.1
		reason = fmt.Sprintf("padding overhead %.1fx: one long row poisons the whole matrix", f.ELLOverhead)
	}
	return Advice{Format: "ell", Score: s, Reason: reason}
}

func scoreBCSR(f Features, env Environment) Advice {
	// BCSR needs clustered nonzeros (block fill) and parallel hardware;
	// serially it only pays when blocks are nearly dense (§6.1).
	s := 0.4
	reason := "blocked storage: needs clustered nonzeros and parallel hardware"
	switch {
	case f.BCSRFill4 >= 0.55 && env != SerialCPU:
		s = 1.4
		reason = fmt.Sprintf("dense 4x4 blocks (fill %.2f): block structure amortises index traffic", f.BCSRFill4)
	case f.BCSRFill4 >= 0.55:
		s = 1.1
		reason = fmt.Sprintf("dense 4x4 blocks (fill %.2f) keep even the serial kernel competitive", f.BCSRFill4)
	case f.BCSRFill4 >= 0.3 && env == ParallelCPU:
		s = 0.95
		reason = fmt.Sprintf("moderate block fill %.2f: worthwhile only with many threads", f.BCSRFill4)
	case f.BCSRFill4 < 0.15:
		s = 0.05
		reason = fmt.Sprintf("scattered nonzeros (fill %.2f): blocks are mostly padding", f.BCSRFill4)
	}
	return Advice{Format: "bcsr", Score: s, Reason: reason}
}

// RecommendSchedule advises between the parallel CPU kernels' two work
// partitions (the spmmbench -schedule flag): row-static chunking — the
// thesis' OpenMP-static baseline — or nonzero-balanced chunking. The signal
// is row-nonzero imbalance: under static chunking the wall clock is set by
// the worker that drew the heaviest rows, so a high Gini coefficient or
// column ratio means balanced scheduling recovers the idle time. On uniform
// matrices the two partitions coincide and static's zero setup cost wins.
func RecommendSchedule(f Features) Advice {
	switch {
	case f.Gini >= 0.5 || f.Ratio >= 16:
		return Advice{
			Format: "balanced",
			Score:  1.5,
			Reason: fmt.Sprintf("skewed rows (gini %.2f, max/avg %.1f): static chunking leaves workers idle behind the hub rows — run with -schedule=balanced", f.Gini, f.Ratio),
		}
	case f.Gini >= 0.3 || f.Ratio >= 8:
		return Advice{
			Format: "balanced",
			Score:  1.1,
			Reason: fmt.Sprintf("moderate row imbalance (gini %.2f, max/avg %.1f): -schedule=balanced likely helps at high thread counts", f.Gini, f.Ratio),
		}
	default:
		return Advice{
			Format: "static",
			Score:  1.0,
			Reason: fmt.Sprintf("near-uniform rows (gini %.2f): static chunking is already balanced and costs nothing", f.Gini),
		}
	}
}

// Measure benchmarks the four formats' kernels in the environment through
// the suite and returns the empirically best format with all results.
// For GPUEnv an Options.Device must be supplied.
func Measure(m *matrix.COO[float64], env Environment, p core.Params, opts core.Options) (string, []core.Result, error) {
	mode := "serial"
	switch env {
	case ParallelCPU:
		mode = "omp"
	case GPUEnv:
		mode = "gpu"
	}
	best, bestMF := "", -1.0
	var results []core.Result
	for _, format := range []string{"coo", "csr", "ell", "bcsr"} {
		k, err := core.New(format+"-"+mode, opts)
		if err != nil {
			return "", nil, err
		}
		r, err := core.Run(k, m, "advisor", p)
		if err != nil {
			return "", nil, err
		}
		results = append(results, r)
		if r.MFLOPS > bestMF {
			best, bestMF = format, r.MFLOPS
		}
	}
	return best, results, nil
}
