package studies

import (
	"fmt"
	"math/rand"

	"repro/internal/formats"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/metrics"
)

// studySched is the scheduling study added by this suite (it extends the
// thesis, which only ran OpenMP's static schedule): row-static versus
// nonzero-balanced chunking for the parallel CSR kernel on both simulated
// sockets. The registry matrices are FEM-style and fairly uniform (low row
// Gini), so the table includes a synthetic power-law matrix whose hub rows
// are exactly the workload balanced scheduling exists for; the Gini column
// ties each speedup back to the imbalance metric spmmadvise reports.
func (e *env) studySched() ([]Section, error) {
	p := e.params()
	sections := []Section{}
	type entry struct {
		name string
		coo  *matrix.COO[float64]
		csr  *formats.CSR[float64]
	}
	entries := []entry{}
	for _, name := range e.cfg.matrixNames() {
		m, err := e.matrix(name, e.cfg.Scale)
		if err != nil {
			return nil, err
		}
		f, err := e.csr(name, e.cfg.Scale)
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{name, m, f})
	}
	skew := powerLawMatrix(4000, 600, 5)
	entries = append(entries, entry{"powerlaw*", skew, formats.CSRFromCOO(skew)})

	for _, mc := range machine.Machines() {
		t := metrics.NewTable("matrix", "gini", "static", "balanced", "speedup")
		for _, en := range entries {
			props := metrics.Compute(en.coo)
			static, err := mc.CSRParallel(en.csr, p.K, p.Threads)
			if err != nil {
				return nil, fmt.Errorf("study sched (%s static): %w", en.name, err)
			}
			balanced, err := mc.CSRParallelBalanced(en.csr, p.K, p.Threads)
			if err != nil {
				return nil, fmt.Errorf("study sched (%s balanced): %w", en.name, err)
			}
			speedup := 0.0
			if static.MFLOPS > 0 {
				speedup = balanced.MFLOPS / static.MFLOPS
			}
			t.AddRow(en.name,
				fmt.Sprintf("%.2f", props.Gini),
				fmtMF(static.MFLOPS),
				fmtMF(balanced.MFLOPS),
				fmt.Sprintf("%.2f", speedup))
		}
		sections = append(sections, Section{
			Title: fmt.Sprintf("Study sched: CSR static vs nonzero-balanced, %d threads, %s, MFLOPS (* = synthetic power-law)",
				p.Threads, archLabel(mc.Prof)),
			Table: t,
		})
	}
	return sections, nil
}

// powerLawMatrix builds the hub-heavy synthetic matrix of the scheduling
// study: cubed-uniform row degrees, periodic empty rows, one full hub row.
func powerLawMatrix(rows, cols int, seed int64) *matrix.COO[float64] {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewCOO[float64](rows, cols, 0)
	for i := 0; i < rows; i++ {
		u := rng.Float64()
		deg := int(u * u * u * float64(cols))
		if i%17 == 0 {
			deg = 0
		}
		if i == rows/3 {
			deg = cols
		}
		for d := 0; d < deg; d++ {
			m.Append(int32(i), int32(rng.Intn(cols)), rng.NormFloat64())
		}
	}
	m.Dedup()
	return m
}
