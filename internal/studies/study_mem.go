package studies

import (
	"fmt"

	"repro/internal/formats"
	"repro/internal/metrics"
)

// studyMem implements the memory-footprint analysis the thesis' future work
// calls for (§6.3.5): it observed its benchmarks "used a huge amount of the
// available RAM" and attributed it to (a) keeping the COO base matrix plus
// the formatted matrix plus the dense B and C resident at once, and (b)
// 64-bit types everywhere. This study quantifies both: per-format bytes for
// each matrix, the padding overheads of the blocked formats, the total
// resident set of one benchmark run, and the float32 saving.
func (e *env) studyMem() ([]Section, error) {
	k := e.params().K

	perFormat := metrics.NewTable("matrix", "coo", "csr", "ell", "ell-overhead",
		"bcsr4", "bcsr4-fill", "bell4", "sellcs", "csr-f32")
	resident := metrics.NewTable("matrix", "coo(A)", "formatted(CSR)", "B", "C",
		"total", "of which dense")
	for _, name := range e.cfg.matrixNames() {
		m, err := e.matrix(name, e.cfg.Scale)
		if err != nil {
			return nil, err
		}
		csr, err := e.csr(name, e.cfg.Scale)
		if err != nil {
			return nil, err
		}
		ell, err := e.ell(name, e.cfg.Scale)
		if err != nil {
			return nil, err
		}
		bcsr, err := e.bcsr(name, e.cfg.Scale, 4)
		if err != nil {
			return nil, err
		}
		bell, err := formats.BELLFromCOO(m, 4, 4)
		if err != nil {
			return nil, err
		}
		sell, err := formats.SELLCSFromCOO(m, 8, 64)
		if err != nil {
			return nil, err
		}
		// The float32 variant halves every value slot (§6.3.5: "making
		// this change would cut our memory use in half").
		csr32 := csr.Bytes() - 4*len(csr.Vals)

		props := metrics.Compute(m)
		perFormat.AddRow(name,
			m.Bytes(), csr.Bytes(), ell.Bytes(),
			fmt.Sprintf("%.1fx", props.ELLOverhead()),
			bcsr.Bytes(), fmt.Sprintf("%.2f", bcsr.FillRatio()),
			bell.Bytes(), sell.Bytes(), csr32)

		// One CSR benchmark run keeps the original COO (for verification),
		// the formatted matrix, and the dense operands resident — the
		// layout the thesis describes.
		bBytes := m.Cols * k * 8
		cBytes := m.Rows * k * 8
		total := m.Bytes() + csr.Bytes() + bBytes + cBytes
		denseShare := float64(bBytes+cBytes) / float64(total) * 100
		resident.AddRow(name, m.Bytes(), csr.Bytes(), bBytes, cBytes,
			total, fmt.Sprintf("%.0f%%", denseShare))
	}
	return []Section{
		{Title: fmt.Sprintf("Memory study (§6.3.5): format footprints in bytes (scale %g)", e.cfg.Scale),
			Table: perFormat},
		{Title: fmt.Sprintf("Memory study (§6.3.5): resident set of one CSR benchmark run, k=%d", k),
			Table: resident},
	}, nil
}
