// Package studies implements the nine evaluation studies of the thesis
// (Chapter 5), each regenerating the data series of its figures/tables as
// plain-text tables. The studies run on synthetic matrices calibrated to
// Table 5.1 (package gen), scaled down by a configurable factor so the full
// suite completes on a laptop; the scale preserves the average row degree
// and column ratio, the properties the characterisation keys off.
//
// Host-vs-architecture mapping: the thesis ran every study on two physical
// machines (Grace Hopper "Arm" and EPYC "Aries"). Here, the CPU studies
// (1–6, 8) run on the simulated Grace-Arm and Aries-x86 sockets (package
// machine), so both of the thesis' machines appear in every figure even on
// a single-core host; the GPU panels run on the simulated devices
// (H100-like for the Arm machine, A100-like for Aries); and Study 9 — whose
// subject is what the compiler does with fixed-k code — measures the real
// Go kernels on the host.
package studies

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/gpusim"
	"repro/internal/matrix"
	"repro/internal/metrics"
)

// RunnerFunc executes one benchmark run. The spmmstudy CLI installs the
// resilient harness runner here so studies gain panic containment,
// per-run timeouts, transient-failure retries and journal-based resume
// without the studies code knowing about any of it.
type RunnerFunc func(kernelName string, opts core.Options, a *matrix.COO[float64],
	matrixName string, p core.Params) (core.Result, error)

// Config controls a study run.
type Config struct {
	// Scale shrinks the registry matrices for CPU studies (0 < Scale <= 1).
	Scale float64
	// GPUScale shrinks them further for simulated-GPU studies, whose
	// functional simulation costs more host time per rep.
	GPUScale float64
	// Reps is the timed repetition count per kernel.
	Reps int
	// Matrices restricts the matrix set (default: the full registry).
	Matrices []string
	// Verify checks every kernel result against the COO reference.
	Verify bool
	// Runner, when non-nil, replaces the direct core.Run call for every
	// benchmark the studies execute.
	Runner RunnerFunc
}

// DefaultConfig returns a configuration that completes the full suite in
// minutes on a laptop.
func DefaultConfig() Config {
	return Config{Scale: 0.05, GPUScale: 0.02, Reps: 3, Verify: false}
}

func (c Config) validate() error {
	if c.Scale <= 0 || c.Scale > 1 || c.GPUScale <= 0 || c.GPUScale > 1 {
		return fmt.Errorf("studies: scales must be in (0, 1]: %+v", c)
	}
	if c.Reps < 1 {
		return fmt.Errorf("studies: reps %d < 1", c.Reps)
	}
	return nil
}

func (c Config) matrixNames() []string {
	if len(c.Matrices) > 0 {
		return c.Matrices
	}
	return gen.Names()
}

// Section is one titled output table; a study emits one section per figure
// panel.
type Section struct {
	Title string
	Table *metrics.Table
}

// RenderCharts writes sections as text bar charts — the shape of the
// thesis' figures. Non-numeric columns (winner labels etc.) are skipped
// automatically.
func RenderCharts(w io.Writer, sections []Section) error {
	for i, s := range sections {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		chart := metrics.NewBarChart(s.Title, "")
		groupCols := []int{0}
		first := 1
		// Category columns (format, block) join the group label rather
		// than becoming bars.
		if len(s.Table.Header) > 1 && (s.Table.Header[1] == "format" || s.Table.Header[1] == "block") {
			groupCols = []int{0, 1}
			first = 2
		}
		cols := make([]int, 0, len(s.Table.Header))
		for c := first; c < len(s.Table.Header); c++ {
			cols = append(cols, c)
		}
		chart.FromTableWithGroups(s.Table, groupCols, cols)
		if err := chart.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// Render writes sections as readable text.
func Render(w io.Writer, sections []Section) error {
	for i, s := range sections {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "## %s\n", s.Title); err != nil {
			return err
		}
		if err := s.Table.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// env caches generated matrices and format conversions across a study run.
type env struct {
	cfg  Config
	coos map[string]*matrix.COO[float64] // keyed by name@scale
	fmts *fmtCache
}

func newEnv(cfg Config) *env {
	return &env{cfg: cfg, coos: make(map[string]*matrix.COO[float64])}
}

func (e *env) matrix(name string, scale float64) (*matrix.COO[float64], error) {
	key := fmt.Sprintf("%s@%g", name, scale)
	if m, ok := e.coos[key]; ok {
		return m, nil
	}
	m, _, err := gen.GenerateScaled(name, scale)
	if err != nil {
		return nil, err
	}
	e.coos[key] = m
	return m, nil
}

func (e *env) params() core.Params {
	p := core.DefaultParams()
	p.Reps = e.cfg.Reps
	p.Verify = e.cfg.Verify
	return p
}

// run benchmarks one registry kernel on one matrix, through the configured
// Runner when one is installed.
func (e *env) run(kernelName, matrixName string, scale float64, p core.Params, opts core.Options) (core.Result, error) {
	m, err := e.matrix(matrixName, scale)
	if err != nil {
		return core.Result{}, err
	}
	if e.cfg.Runner != nil {
		return e.cfg.Runner(kernelName, opts, m, matrixName, p)
	}
	k, err := core.New(kernelName, opts)
	if err != nil {
		return core.Result{}, err
	}
	return core.Run(k, m, matrixName, p)
}

// newDevice builds the simulated GPU, scaled down to match the study's
// matrix scale so blocks-per-SM (the occupancy regime) matches a full-size
// run on the full-size device.
func (e *env) newDevice(cfg gpusim.Config) (*gpusim.Device, error) {
	return gpusim.NewDevice(cfg.ScaledDown(e.cfg.GPUScale))
}

// All lists the study identifiers in evaluation order: Table 5.1, the nine
// studies of Chapter 5, and the memory-footprint analysis of future-work
// §6.3.5.
func All() []string {
	return []string{"props", "1", "2", "3", "3.1", "4", "5", "6", "7", "8", "9", "mem", "sched"}
}

// Run dispatches a study by identifier.
func Run(id string, cfg Config) ([]Section, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := newEnv(cfg)
	switch id {
	case "props", "table5.1":
		return e.studyProps()
	case "1":
		return e.study1()
	case "2":
		return e.study2()
	case "3":
		return e.study3()
	case "3.1":
		return e.study31()
	case "4":
		return e.study4()
	case "5":
		return e.study5()
	case "6":
		return e.study6()
	case "7":
		return e.study7()
	case "8":
		return e.study8()
	case "9":
		return e.study9()
	case "mem":
		return e.studyMem()
	case "sched":
		return e.studySched()
	default:
		return nil, fmt.Errorf("studies: unknown study %q (have %v)", id, All())
	}
}

// studyProps regenerates Table 5.1: the properties of each matrix.
func (e *env) studyProps() ([]Section, error) {
	t := metrics.NewTable("matrix", "size", "nonzeros", "max", "avg", "ratio", "variance", "stddev", "gini")
	for _, name := range e.cfg.matrixNames() {
		m, err := e.matrix(name, e.cfg.Scale)
		if err != nil {
			return nil, err
		}
		p := metrics.Compute(m)
		t.AddRow(name, p.Rows, p.NNZ, p.MaxRow,
			fmt.Sprintf("%.0f", p.AvgRow),
			fmt.Sprintf("%.0f", p.Ratio),
			fmt.Sprintf("%.0f", p.Variance),
			fmt.Sprintf("%.0f", p.StdDev),
			fmt.Sprintf("%.2f", p.Gini))
	}
	title := fmt.Sprintf("Table 5.1: Properties of Each Matrix (scale %g)", e.cfg.Scale)
	return []Section{{Title: title, Table: t}}, nil
}

// argmax returns the key of the highest value.
func argmax(vals map[string]float64) string {
	best, bestV := "", 0.0
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if vals[k] > bestV {
			best, bestV = k, vals[k]
		}
	}
	return best
}

// fmtMF formats an MFLOPS cell.
func fmtMF(v float64) string { return fmt.Sprintf("%.0f", v) }

var mainFormats = []string{"coo", "csr", "ell", "bcsr"}

// bcsrBlocks are the block sizes of the BCSR studies.
var bcsrBlocks = []int{2, 4, 16}
