package studies

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/formats"
	"repro/internal/gen"
	"repro/internal/gpusim"
	"repro/internal/machine"
	"repro/internal/metrics"
)

// study6 regenerates Figures 5.13/5.14: single-core performance of each
// format under the Grace-Arm and Aries-x86 cost-model profiles, plus BCSR
// at all three block sizes.
func (e *env) study6() ([]Section, error) {
	profiles := machine.Profiles()
	k := core.DefaultParams().K

	scalar := metrics.NewTable("matrix", "format", profiles[0].Name, profiles[1].Name, "faster")
	for _, name := range e.cfg.matrixNames() {
		m, err := e.matrix(name, e.cfg.Scale)
		if err != nil {
			return nil, err
		}
		csr := formats.CSRFromCOO(m)
		ell := formats.ELLFromCOO(m, formats.RowMajor)
		for _, f := range []string{"coo", "csr", "ell"} {
			vals := map[string]float64{}
			for _, prof := range profiles {
				var r machine.Result
				var err error
				switch f {
				case "coo":
					r, err = machine.SimulateCOO(prof, m, k)
				case "csr":
					r, err = machine.SimulateCSR(prof, csr, k)
				case "ell":
					r, err = machine.SimulateELL(prof, ell, k)
				}
				if err != nil {
					return nil, fmt.Errorf("study 6: %w", err)
				}
				vals[prof.Name] = r.MFLOPS
			}
			scalar.AddRow(name, f,
				fmtMF(vals[profiles[0].Name]), fmtMF(vals[profiles[1].Name]), argmax(vals))
		}
	}

	blocked := metrics.NewTable("matrix", "block", profiles[0].Name, profiles[1].Name, "faster")
	for _, name := range e.cfg.matrixNames() {
		m, err := e.matrix(name, e.cfg.Scale)
		if err != nil {
			return nil, err
		}
		for _, bs := range bcsrBlocks {
			b, err := formats.BCSRFromCOO(m, bs, bs)
			if err != nil {
				return nil, err
			}
			vals := map[string]float64{}
			for _, prof := range profiles {
				r, err := machine.SimulateBCSR(prof, b, k)
				if err != nil {
					return nil, fmt.Errorf("study 6: %w", err)
				}
				vals[prof.Name] = r.MFLOPS
			}
			blocked.AddRow(name, bs,
				fmtMF(vals[profiles[0].Name]), fmtMF(vals[profiles[1].Name]), argmax(vals))
		}
	}

	return []Section{
		{Title: "Study 6 (Fig 5.13): all formats serial, Arm vs x86 cost model, MFLOPS", Table: scalar},
		{Title: "Study 6 (Fig 5.14): BCSR block sizes 2/4/16, Arm vs x86 cost model, MFLOPS", Table: blocked},
	}, nil
}

// study7 regenerates Figures 5.15/5.16: the vendor-library (cuSPARSE
// stand-in) COO/CSR kernels against the naive offload kernels, on both
// simulated devices, over the 9 matrices that fit device memory in the
// thesis. The thesis additionally lost matrices on Aries to OpenMP runtime
// failures; the simulator has no such bug, so the full set runs on both
// devices (noted as a deviation in EXPERIMENTS.md).
func (e *env) study7() ([]Section, error) {
	devices := []struct {
		label string
		cfg   gpusim.Config
	}{
		{"Arm/H100-sim (Fig 5.15)", gpusim.H100Like()},
		{"x86/A100-sim (Fig 5.16)", gpusim.A100Like()},
	}
	names := gen.Study7Names()
	if len(e.cfg.Matrices) > 0 {
		names = e.cfg.Matrices
	}
	sections := []Section{}
	for _, d := range devices {
		dev, err := e.newDevice(d.cfg)
		if err != nil {
			return nil, err
		}
		t := metrics.NewTable("matrix", "coo-offload", "coo-vendor", "csr-offload", "csr-vendor", "vendor wins")
		for _, name := range names {
			p := e.params()
			vals := map[string]float64{}
			for _, kn := range []string{"coo-gpu", "vendor-coo-gpu", "csr-gpu", "vendor-csr-gpu"} {
				r, err := e.run(kn, name, e.cfg.GPUScale, p, core.Options{Device: dev})
				if err != nil {
					return nil, fmt.Errorf("study 7 (%s %s): %w", kn, name, err)
				}
				vals[kn] = r.MFLOPS
			}
			wins := 0
			if vals["vendor-coo-gpu"] > vals["coo-gpu"] {
				wins++
			}
			if vals["vendor-csr-gpu"] > vals["csr-gpu"] {
				wins++
			}
			t.AddRow(name,
				fmtMF(vals["coo-gpu"]), fmtMF(vals["vendor-coo-gpu"]),
				fmtMF(vals["csr-gpu"]), fmtMF(vals["vendor-csr-gpu"]),
				fmt.Sprintf("%d/2", wins))
		}
		sections = append(sections, Section{
			Title: "Study 7 (Figs 5.15/5.16): cuSparse-equivalent vs offload kernels, " + d.label + ", MFLOPS",
			Table: t,
		})
	}
	return sections, nil
}

// study8 regenerates Figures 5.17/5.18: the transposed-B parallel kernels
// against the plain parallel kernels per architecture, with the transpose
// cost charged to the transposed kernel.
func (e *env) study8() ([]Section, error) {
	p := e.params()
	sections := []Section{}
	for _, mc := range machine.Machines() {
		for _, f := range mainFormats {
			t := metrics.NewTable("matrix", "omp", "omp-transposed", "speedup")
			for _, name := range e.cfg.matrixNames() {
				plain, err := e.simParallel(mc, f, name, p.BlockSize, p.K, p.Threads, false)
				if err != nil {
					return nil, fmt.Errorf("study 8: %w", err)
				}
				trans, err := e.simParallel(mc, f, name, p.BlockSize, p.K, p.Threads, true)
				if err != nil {
					return nil, fmt.Errorf("study 8: %w", err)
				}
				speedup := 0.0
				if plain.MFLOPS > 0 {
					speedup = trans.MFLOPS / plain.MFLOPS
				}
				t.AddRow(name, fmtMF(plain.MFLOPS), fmtMF(trans.MFLOPS), fmt.Sprintf("%.2fx", speedup))
			}
			sections = append(sections, Section{
				Title: fmt.Sprintf("Study 8 (Figs 5.17/5.18): transposing B, %s parallel, %s, MFLOPS",
					f, archLabel(mc.Prof)),
				Table: t,
			})
		}
	}
	return sections, nil
}

// study9 regenerates Figure 5.19: the manual-optimisation (fixed-k)
// kernels against the generic runtime-k kernels, serial and parallel.
func (e *env) study9() ([]Section, error) {
	sections := []Section{}
	for _, mode := range []string{"serial", "omp"} {
		t := metrics.NewTable("matrix", "format", "generic", "fixed-k", "delta")
		for _, name := range e.cfg.matrixNames() {
			for _, f := range mainFormats {
				p := e.params()
				p.K = 128 // a k with a compiled specialisation
				generic, err := e.run(f+"-"+mode, name, e.cfg.Scale, p, core.Options{})
				if err != nil {
					return nil, fmt.Errorf("study 9: %w", err)
				}
				fixed, err := e.run(f+"-"+mode+"-fixedk", name, e.cfg.Scale, p, core.Options{})
				if err != nil {
					return nil, fmt.Errorf("study 9: %w", err)
				}
				delta := 0.0
				if generic.MFLOPS > 0 {
					delta = (fixed.MFLOPS - generic.MFLOPS) / generic.MFLOPS * 100
				}
				t.AddRow(name, f, fmtMF(generic.MFLOPS), fmtMF(fixed.MFLOPS),
					fmt.Sprintf("%+.1f%%", delta))
			}
		}
		sections = append(sections, Section{
			Title: fmt.Sprintf("Study 9 (Fig 5.19): manual optimisations (fixed k), %s kernels, MFLOPS", mode),
			Table: t,
		})
	}
	return sections, nil
}
