package studies

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
)

// TestConfigRunnerRoutesEveryBenchmark: every benchmark a study executes
// must flow through the installed Runner — that is the contract the
// spmmstudy CLI relies on to add harness resilience without the studies
// knowing.
func TestConfigRunnerRoutesEveryBenchmark(t *testing.T) {
	var calls atomic.Int64
	cfg := tinyConfig()
	cfg.Matrices = cfg.Matrices[:1]
	cfg.Runner = func(kernelName string, opts core.Options, a *matrix.COO[float64],
		matrixName string, p core.Params) (core.Result, error) {
		calls.Add(1)
		k, err := core.New(kernelName, opts)
		if err != nil {
			return core.Result{}, err
		}
		return core.Run(k, a, matrixName, p)
	}
	sections, err := Run("1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sections) == 0 {
		t.Fatal("no sections")
	}
	if calls.Load() == 0 {
		t.Fatal("installed Runner was never invoked")
	}
}
