package studies

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps study tests fast: three small matrices, minimal scale.
func tinyConfig() Config {
	return Config{
		Scale:    0.02,
		GPUScale: 0.01,
		Reps:     1,
		Matrices: []string{"bcsstk13", "dw4096", "bcsstk17"},
	}
}

func TestAllStudiesRun(t *testing.T) {
	for _, id := range All() {
		id := id
		t.Run("study_"+id, func(t *testing.T) {
			sections, err := Run(id, tinyConfig())
			if err != nil {
				t.Fatalf("study %s: %v", id, err)
			}
			if len(sections) == 0 {
				t.Fatalf("study %s produced no sections", id)
			}
			for _, s := range sections {
				if s.Title == "" {
					t.Fatalf("study %s: untitled section", id)
				}
				if s.Table.NumRows() == 0 {
					t.Fatalf("study %s: empty table %q", id, s.Title)
				}
			}
		})
	}
}

func TestRunUnknownStudy(t *testing.T) {
	if _, err := Run("42", tinyConfig()); err == nil {
		t.Fatal("unknown study accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := tinyConfig()
	bad.Scale = 0
	if _, err := Run("props", bad); err == nil {
		t.Fatal("zero scale accepted")
	}
	bad = tinyConfig()
	bad.Reps = 0
	if _, err := Run("props", bad); err == nil {
		t.Fatal("zero reps accepted")
	}
	bad = tinyConfig()
	bad.GPUScale = 2
	if _, err := Run("props", bad); err == nil {
		t.Fatal("oversized gpu scale accepted")
	}
}

func TestRenderOutput(t *testing.T) {
	sections, err := Run("props", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Render(&buf, sections); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "## Table 5.1") {
		t.Fatalf("missing section header:\n%s", out)
	}
	for _, m := range tinyConfig().Matrices {
		if !strings.Contains(out, m) {
			t.Fatalf("missing matrix %s:\n%s", m, out)
		}
	}
}

func TestPropsMatchTable51Shape(t *testing.T) {
	cfg := tinyConfig()
	cfg.Matrices = nil // all 14
	sections, err := Run("props", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sections[0].Table.NumRows() != 14 {
		t.Fatalf("Table 5.1 has %d rows, want 14", sections[0].Table.NumRows())
	}
}

func TestStudy7RunsNineMatricesPerDevice(t *testing.T) {
	cfg := tinyConfig()
	cfg.Matrices = nil
	sections, err := Run("7", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sections) != 2 {
		t.Fatalf("study 7 should have 2 device sections, got %d", len(sections))
	}
	for _, s := range sections {
		if s.Table.NumRows() != 9 {
			t.Fatalf("%q: %d rows, want 9 (the paper's memory-feasible set)",
				s.Title, s.Table.NumRows())
		}
	}
}

func TestStudy7VendorWinsMostly(t *testing.T) {
	cfg := tinyConfig()
	cfg.Matrices = nil
	sections, err := Run("7", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Render(&buf, sections); err != nil {
		t.Fatal(err)
	}
	// The Study 7 headline: the vendor kernels win on (almost) all
	// matrices; "2/2" should dominate the "vendor wins" column.
	wins := strings.Count(buf.String(), "2/2")
	if wins < 12 { // 18 rows total across both devices
		t.Fatalf("vendor kernels won 2/2 on only %d of 18 rows:\n%s", wins, buf.String())
	}
}

func TestStudy1HasFiveSections(t *testing.T) {
	sections, err := Run("1", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// serial+omp for each of two architectures, plus the Arm GPU panel.
	if len(sections) != 5 {
		t.Fatalf("study 1 has %d sections, want 5", len(sections))
	}
}

func TestStudy2OmitsAriesGPU(t *testing.T) {
	sections, err := Run("2", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sections {
		hasGPU := false
		for _, h := range s.Table.Header {
			if h == "gpu" {
				hasGPU = true
			}
		}
		isArm := strings.Contains(s.Title, "Arm")
		if isArm && !hasGPU {
			t.Fatalf("%q: Arm sections must include the GPU column", s.Title)
		}
		if !isArm && hasGPU {
			t.Fatalf("%q: x86 sections must omit the GPU column (the thesis discarded Aries GPU data)", s.Title)
		}
	}
}

func TestStudiesDeterministic(t *testing.T) {
	run := func() string {
		sections, err := Run("6", tinyConfig())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Render(&buf, sections); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if run() != run() {
		t.Fatal("study 6 output must be deterministic")
	}
}
