package studies

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/machine"
	"repro/internal/metrics"
)

// The CPU-side studies (1–5, 8) run on the simulated Grace-Arm and
// Aries-x86 sockets (package machine) so both of the thesis' machines are
// reproduced regardless of the host, with GPU panels from the simulated
// devices. Study 9 (manual optimisations) instead measures the real Go
// kernels on the host, since its subject is what a compiler does with
// fixed-k code.

// study1 regenerates Figures 5.1/5.2: every format in every environment
// (serial CPU, parallel CPU with 32 threads, GPU), per architecture. The
// x86 figure has no GPU panel — the thesis discarded its Aries GPU numbers
// as unusable (§5.3), and the suite reproduces the figure as published.
func (e *env) study1() ([]Section, error) {
	p := e.params()
	sections := []Section{}
	for _, mc := range machine.Machines() {
		for _, mode := range []string{"serial", "omp"} {
			t := metrics.NewTable("matrix", "coo", "csr", "ell", "bcsr", "best")
			for _, name := range e.cfg.matrixNames() {
				vals := map[string]float64{}
				row := []any{name}
				for _, f := range mainFormats {
					var r machine.Result
					var err error
					if mode == "serial" {
						r, err = e.simSerial(mc.Prof, f, name, p.BlockSize, p.K)
					} else {
						r, err = e.simParallel(mc, f, name, p.BlockSize, p.K, p.Threads, false)
					}
					if err != nil {
						return nil, fmt.Errorf("study 1 (%s %s %s): %w", f, mode, name, err)
					}
					vals[f] = r.MFLOPS
					row = append(row, fmtMF(r.MFLOPS))
				}
				row = append(row, argmax(vals))
				t.AddRow(row...)
			}
			sections = append(sections, Section{
				Title: fmt.Sprintf("Study 1 (Figs 5.1/5.2): all formats, %s kernels, %s, MFLOPS",
					mode, archLabel(mc.Prof)),
				Table: t,
			})
		}
	}

	dev, err := e.newDevice(gpusim.H100Like())
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("matrix", "coo", "csr", "ell", "bcsr", "best")
	for _, name := range e.cfg.matrixNames() {
		vals := map[string]float64{}
		row := []any{name}
		for _, f := range mainFormats {
			r, err := e.run(f+"-gpu", name, e.cfg.GPUScale, p, core.Options{Device: dev})
			if err != nil {
				return nil, fmt.Errorf("study 1 (%s gpu %s): %w", f, name, err)
			}
			vals[f] = r.MFLOPS
			row = append(row, fmtMF(r.MFLOPS))
		}
		row = append(row, argmax(vals))
		t.AddRow(row...)
	}
	sections = append(sections, Section{
		Title: "Study 1 (Fig 5.1): all formats, gpu kernels, Arm (H100-sim), MFLOPS",
		Table: t,
	})
	return sections, nil
}

// study2 regenerates Figures 5.3/5.4: for each format, which kernel form
// wins per matrix — serial/omp/gpu on Arm, serial/omp on x86 (the thesis
// could not use the Aries GPU).
func (e *env) study2() ([]Section, error) {
	p := e.params()
	dev, err := e.newDevice(gpusim.H100Like())
	if err != nil {
		return nil, err
	}
	sections := []Section{}
	for _, mc := range machine.Machines() {
		withGPU := mc.Prof.Name == "grace-arm"
		for _, f := range mainFormats {
			header := []string{"matrix", "serial", "omp"}
			if withGPU {
				header = append(header, "gpu")
			}
			header = append(header, "best")
			t := metrics.NewTable(header...)
			for _, name := range e.cfg.matrixNames() {
				vals := map[string]float64{}
				rSer, err := e.simSerial(mc.Prof, f, name, p.BlockSize, p.K)
				if err != nil {
					return nil, fmt.Errorf("study 2: %w", err)
				}
				vals["serial"] = rSer.MFLOPS
				rOmp, err := e.simParallel(mc, f, name, p.BlockSize, p.K, p.Threads, false)
				if err != nil {
					return nil, fmt.Errorf("study 2: %w", err)
				}
				vals["omp"] = rOmp.MFLOPS
				row := []any{name, fmtMF(vals["serial"]), fmtMF(vals["omp"])}
				if withGPU {
					rGPU, err := e.run(f+"-gpu", name, e.cfg.GPUScale, p, core.Options{Device: dev})
					if err != nil {
						return nil, fmt.Errorf("study 2: %w", err)
					}
					vals["gpu"] = rGPU.MFLOPS
					row = append(row, fmtMF(vals["gpu"]))
				}
				row = append(row, argmax(vals))
				t.AddRow(row...)
			}
			sections = append(sections, Section{
				Title: fmt.Sprintf("Study 2 (Figs 5.3/5.4): best form of %s, %s, MFLOPS",
					f, archLabel(mc.Prof)),
				Table: t,
			})
		}
	}
	return sections, nil
}

// study3 regenerates Figures 5.5/5.6: parallel kernels at 8, 16 and 32
// threads per format and architecture.
func (e *env) study3() ([]Section, error) {
	p := e.params()
	threadCounts := []int{8, 16, 32}
	sections := []Section{}
	for _, mc := range machine.Machines() {
		for _, f := range mainFormats {
			t := metrics.NewTable("matrix", "t=8", "t=16", "t=32", "best")
			for _, name := range e.cfg.matrixNames() {
				vals := map[string]float64{}
				row := []any{name}
				for _, threads := range threadCounts {
					r, err := e.simParallel(mc, f, name, p.BlockSize, p.K, threads, false)
					if err != nil {
						return nil, fmt.Errorf("study 3: %w", err)
					}
					key := fmt.Sprintf("t=%d", threads)
					vals[key] = r.MFLOPS
					row = append(row, fmtMF(r.MFLOPS))
				}
				row = append(row, argmax(vals))
				t.AddRow(row...)
			}
			sections = append(sections, Section{
				Title: fmt.Sprintf("Study 3 (Figs 5.5/5.6): %s thread scaling, %s, MFLOPS",
					f, archLabel(mc.Prof)),
				Table: t,
			})
		}
	}
	return sections, nil
}

// study31 regenerates Figures 5.7/5.8: the best-thread-count sweep over
// {2,4,8,16,32,48,64,72} per architecture and, per format, how many
// matrices peaked at the top count.
func (e *env) study31() ([]Section, error) {
	p := e.params()
	threadList := []int{2, 4, 8, 16, 32, 48, 64, 72}
	top := threadList[len(threadList)-1]
	sections := []Section{}
	for _, mc := range machine.Machines() {
		perMatrix := metrics.NewTable("matrix", "coo", "csr", "ell", "bcsr")
		histogram := map[string]int{}
		for _, name := range e.cfg.matrixNames() {
			row := []any{name}
			for _, f := range mainFormats {
				bestThreads, bestMF := 0, -1.0
				for _, threads := range threadList {
					r, err := e.simParallel(mc, f, name, p.BlockSize, p.K, threads, false)
					if err != nil {
						return nil, fmt.Errorf("study 3.1: %w", err)
					}
					if r.MFLOPS > bestMF {
						bestMF = r.MFLOPS
						bestThreads = threads
					}
				}
				row = append(row, bestThreads)
				if bestThreads == top {
					histogram[f]++
				}
			}
			perMatrix.AddRow(row...)
		}
		hist := metrics.NewTable("format", fmt.Sprintf("matrices best at %d threads", top), "of")
		for _, f := range mainFormats {
			hist.AddRow(f, histogram[f], len(e.cfg.matrixNames()))
		}
		sections = append(sections,
			Section{
				Title: fmt.Sprintf("Study 3.1 (Figs 5.7/5.8): best thread count per matrix, %s", archLabel(mc.Prof)),
				Table: perMatrix,
			},
			Section{
				Title: fmt.Sprintf("Study 3.1: matrices per format best at %d threads, %s", top, archLabel(mc.Prof)),
				Table: hist,
			})
	}
	return sections, nil
}

// study4 regenerates Figures 5.9/5.10: the k-loop sweep on the parallel
// kernels, per architecture.
func (e *env) study4() ([]Section, error) {
	p := e.params()
	ks := []int{8, 16, 64, 128, 256, 512, 1028}
	sections := []Section{}
	for _, mc := range machine.Machines() {
		for _, f := range mainFormats {
			header := []string{"matrix"}
			for _, k := range ks {
				header = append(header, fmt.Sprintf("k=%d", k))
			}
			t := metrics.NewTable(header...)
			for _, name := range e.cfg.matrixNames() {
				row := []any{name}
				for _, k := range ks {
					r, err := e.simParallel(mc, f, name, p.BlockSize, k, p.Threads, false)
					if err != nil {
						return nil, fmt.Errorf("study 4: %w", err)
					}
					row = append(row, fmtMF(r.MFLOPS))
				}
				t.AddRow(row...)
			}
			sections = append(sections, Section{
				Title: fmt.Sprintf("Study 4 (Figs 5.9/5.10): setting -k, %s parallel, %s, MFLOPS",
					f, archLabel(mc.Prof)),
				Table: t,
			})
		}
	}
	return sections, nil
}

// study5 regenerates Figures 5.11/5.12: BCSR block sizes 2, 4 and 16 in
// serial and parallel environments per architecture, plus the Arm GPU.
func (e *env) study5() ([]Section, error) {
	p := e.params()
	sections := []Section{}
	for _, mc := range machine.Machines() {
		for _, mode := range []string{"serial", "omp"} {
			header := []string{"matrix"}
			for _, b := range bcsrBlocks {
				header = append(header, fmt.Sprintf("b=%d", b))
			}
			header = append(header, "best")
			t := metrics.NewTable(header...)
			for _, name := range e.cfg.matrixNames() {
				vals := map[string]float64{}
				row := []any{name}
				for _, b := range bcsrBlocks {
					var r machine.Result
					var err error
					if mode == "serial" {
						r, err = e.simSerial(mc.Prof, "bcsr", name, b, p.K)
					} else {
						r, err = e.simParallel(mc, "bcsr", name, b, p.K, p.Threads, false)
					}
					if err != nil {
						return nil, fmt.Errorf("study 5: %w", err)
					}
					key := fmt.Sprintf("b=%d", b)
					vals[key] = r.MFLOPS
					row = append(row, fmtMF(r.MFLOPS))
				}
				row = append(row, argmax(vals))
				t.AddRow(row...)
			}
			sections = append(sections, Section{
				Title: fmt.Sprintf("Study 5 (Figs 5.11/5.12): BCSR block sizes, %s, %s, MFLOPS",
					mode, archLabel(mc.Prof)),
				Table: t,
			})
		}
	}

	dev, err := e.newDevice(gpusim.H100Like())
	if err != nil {
		return nil, err
	}
	header := []string{"matrix"}
	for _, b := range bcsrBlocks {
		header = append(header, fmt.Sprintf("b=%d", b))
	}
	header = append(header, "best")
	t := metrics.NewTable(header...)
	for _, name := range e.cfg.matrixNames() {
		vals := map[string]float64{}
		row := []any{name}
		for _, b := range bcsrBlocks {
			q := p
			q.BlockSize = b
			r, err := e.run("bcsr-gpu", name, e.cfg.GPUScale, q, core.Options{Device: dev})
			if err != nil {
				return nil, fmt.Errorf("study 5 gpu: %w", err)
			}
			key := fmt.Sprintf("b=%d", b)
			vals[key] = r.MFLOPS
			row = append(row, fmtMF(r.MFLOPS))
		}
		row = append(row, argmax(vals))
		t.AddRow(row...)
	}
	sections = append(sections, Section{
		Title: "Study 5 (Fig 5.11): BCSR block sizes, gpu, Arm (H100-sim), MFLOPS",
		Table: t,
	})
	return sections, nil
}
