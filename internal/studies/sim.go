package studies

import (
	"fmt"

	"repro/internal/formats"
	"repro/internal/machine"
)

// This file adapts the machine cost models to the studies: cached format
// conversions per matrix, and uniform helpers to run a serial or parallel
// simulation for any (format, block size, transposed) combination on either
// architecture profile.

type fmtCache struct {
	csr  map[string]*formats.CSR[float64]
	ell  map[string]*formats.ELL[float64]
	bcsr map[string]*formats.BCSR[float64]
}

func (e *env) caches() *fmtCache {
	if e.fmts == nil {
		e.fmts = &fmtCache{
			csr:  map[string]*formats.CSR[float64]{},
			ell:  map[string]*formats.ELL[float64]{},
			bcsr: map[string]*formats.BCSR[float64]{},
		}
	}
	return e.fmts
}

func (e *env) csr(name string, scale float64) (*formats.CSR[float64], error) {
	key := fmt.Sprintf("%s@%g", name, scale)
	c := e.caches()
	if f, ok := c.csr[key]; ok {
		return f, nil
	}
	m, err := e.matrix(name, scale)
	if err != nil {
		return nil, err
	}
	f := formats.CSRFromCOO(m)
	c.csr[key] = f
	return f, nil
}

func (e *env) ell(name string, scale float64) (*formats.ELL[float64], error) {
	key := fmt.Sprintf("%s@%g", name, scale)
	c := e.caches()
	if f, ok := c.ell[key]; ok {
		return f, nil
	}
	m, err := e.matrix(name, scale)
	if err != nil {
		return nil, err
	}
	f := formats.ELLFromCOO(m, formats.RowMajor)
	c.ell[key] = f
	return f, nil
}

func (e *env) bcsr(name string, scale float64, block int) (*formats.BCSR[float64], error) {
	key := fmt.Sprintf("%s@%g/b%d", name, scale, block)
	c := e.caches()
	if f, ok := c.bcsr[key]; ok {
		return f, nil
	}
	m, err := e.matrix(name, scale)
	if err != nil {
		return nil, err
	}
	f, err := formats.BCSRFromCOO(m, block, block)
	if err != nil {
		return nil, err
	}
	c.bcsr[key] = f
	return f, nil
}

// simSerial runs the single-core cost model for one format.
func (e *env) simSerial(prof machine.Profile, format, name string, block, k int) (machine.Result, error) {
	switch format {
	case "coo":
		m, err := e.matrix(name, e.cfg.Scale)
		if err != nil {
			return machine.Result{}, err
		}
		return machine.SimulateCOO(prof, m, k)
	case "csr":
		f, err := e.csr(name, e.cfg.Scale)
		if err != nil {
			return machine.Result{}, err
		}
		return machine.SimulateCSR(prof, f, k)
	case "ell":
		f, err := e.ell(name, e.cfg.Scale)
		if err != nil {
			return machine.Result{}, err
		}
		return machine.SimulateELL(prof, f, k)
	case "bcsr":
		f, err := e.bcsr(name, e.cfg.Scale, block)
		if err != nil {
			return machine.Result{}, err
		}
		return machine.SimulateBCSR(prof, f, k)
	}
	return machine.Result{}, fmt.Errorf("studies: no serial simulation for format %q", format)
}

// simParallel runs the socket cost model for one format, optionally the
// transposed-B variant.
func (e *env) simParallel(mc machine.Multicore, format, name string, block, k, threads int, transposed bool) (machine.Result, error) {
	switch format {
	case "coo":
		m, err := e.matrix(name, e.cfg.Scale)
		if err != nil {
			return machine.Result{}, err
		}
		if transposed {
			return mc.COOParallelT(m, k, threads)
		}
		return mc.COOParallel(m, k, threads)
	case "csr":
		f, err := e.csr(name, e.cfg.Scale)
		if err != nil {
			return machine.Result{}, err
		}
		if transposed {
			return mc.CSRParallelT(f, k, threads)
		}
		return mc.CSRParallel(f, k, threads)
	case "ell":
		f, err := e.ell(name, e.cfg.Scale)
		if err != nil {
			return machine.Result{}, err
		}
		if transposed {
			return mc.ELLParallelT(f, k, threads)
		}
		return mc.ELLParallel(f, k, threads)
	case "bcsr":
		f, err := e.bcsr(name, e.cfg.Scale, block)
		if err != nil {
			return machine.Result{}, err
		}
		if transposed {
			return mc.BCSRParallelT(f, k, threads)
		}
		return mc.BCSRParallel(f, k, threads)
	}
	return machine.Result{}, fmt.Errorf("studies: no parallel simulation for format %q", format)
}

// archLabel maps a profile to the thesis' machine naming.
func archLabel(prof machine.Profile) string {
	if prof.Name == "grace-arm" {
		return "Arm (Grace Hopper, simulated)"
	}
	return "x86 (Aries, simulated)"
}
