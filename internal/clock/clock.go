// Package clock is the suite's injectable time source. internal/tune
// established the pattern — tests script time through Config.Now instead of
// sleeping on real timers — but a bare func() time.Time cannot script timer
// callbacks, which is exactly what the serving batcher (its coalescing
// window is a timer) and the cluster health prober (its probe cadence and
// probe timeouts are timers) hang off. This package generalizes the seam:
// a Clock hands out the current instant and timer callbacks, the Real
// implementation delegates to package time, and the Fake implementation
// lets a test advance a virtual now and fire every due callback
// synchronously, in deadline order — so a batch window "elapsing" or a
// health probe "timing out" is one deterministic Advance call, not a sleep
// racing the scheduler.
package clock

import (
	"sort"
	"sync"
	"time"
)

// Timer is a stoppable pending callback, the subset of *time.Timer the
// suite needs.
type Timer interface {
	// Stop cancels the callback, reporting whether it was still pending.
	Stop() bool
}

// Clock is an injectable time source: the current instant plus deferred
// callbacks. Implementations must be safe for concurrent use.
type Clock interface {
	Now() time.Time
	// AfterFunc schedules f to run after d. f runs on an unspecified
	// goroutine for the real clock and synchronously inside Advance for
	// the fake one, so it must not block.
	AfterFunc(d time.Duration, f func()) Timer
}

// Real returns the wall clock: time.Now and time.AfterFunc.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                            { return time.Now() }
func (realClock) AfterFunc(d time.Duration, f func()) Timer { return time.AfterFunc(d, f) }

// Fake is a deterministic test clock. Time stands still until Advance is
// called; Advance moves the virtual now forward, firing every callback
// whose deadline it crosses in (deadline, scheduling) order before it
// returns. Callbacks run with no lock held, so they may schedule further
// timers (a self-rescheduling prober works unmodified).
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	seq    int
	timers map[int]*fakeTimer
}

type fakeTimer struct {
	f    *Fake
	id   int
	seq  int
	when time.Time
	fn   func()
}

// NewFake returns a fake clock starting at a fixed, arbitrary epoch.
func NewFake() *Fake {
	return &Fake{
		now:    time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
		timers: map[int]*fakeTimer{},
	}
}

// Now returns the current virtual time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Pending reports how many timers are scheduled and not yet fired — the
// synchronization hook tests use to know a timer-guarded operation (a probe
// with a timeout, a batch window) is in flight before advancing past it.
func (f *Fake) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.timers)
}

// AfterFunc schedules fn at now+d. A non-positive d fires on the next
// Advance call (never synchronously inside AfterFunc).
func (f *Fake) AfterFunc(d time.Duration, fn func()) Timer {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	t := &fakeTimer{f: f, id: f.seq, seq: f.seq, when: f.now.Add(d), fn: fn}
	f.timers[t.id] = t
	return t
}

func (t *fakeTimer) Stop() bool {
	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	if _, ok := t.f.timers[t.id]; !ok {
		return false
	}
	delete(t.f.timers, t.id)
	return true
}

// Advance moves the clock forward by d, firing due callbacks synchronously
// in (deadline, scheduling) order. Each callback sees Now() at its own
// deadline, and callbacks scheduled by callbacks fire too if they land
// inside the same window.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	target := f.now.Add(d)
	for {
		var next *fakeTimer
		for _, t := range f.timers {
			if t.when.After(target) {
				continue
			}
			if next == nil || t.when.Before(next.when) ||
				(t.when.Equal(next.when) && t.seq < next.seq) {
				next = t
			}
		}
		if next == nil {
			break
		}
		delete(f.timers, next.id)
		if next.when.After(f.now) {
			f.now = next.when
		}
		f.mu.Unlock()
		next.fn()
		f.mu.Lock()
	}
	f.now = target
	f.mu.Unlock()
}

// sortedDeadlines is a test helper: the pending deadlines in firing order.
func (f *Fake) sortedDeadlines() []time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]time.Time, 0, len(f.timers))
	for _, t := range f.timers {
		out = append(out, t.when)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}
