package clock

import (
	"sync"
	"testing"
	"time"
)

// TestFakeAdvanceFiresInDeadlineOrder pins the determinism contract: due
// callbacks fire synchronously inside Advance, ordered by deadline with
// scheduling order breaking ties, and each sees Now() at its own deadline.
func TestFakeAdvanceFiresInDeadlineOrder(t *testing.T) {
	f := NewFake()
	var mu sync.Mutex
	var fired []string
	at := map[string]time.Time{}
	add := func(name string, d time.Duration) {
		f.AfterFunc(d, func() {
			mu.Lock()
			fired = append(fired, name)
			at[name] = f.Now()
			mu.Unlock()
		})
	}
	add("c", 30*time.Millisecond)
	add("a", 10*time.Millisecond)
	add("b1", 20*time.Millisecond)
	add("b2", 20*time.Millisecond) // same deadline: scheduling order wins
	add("late", 100*time.Millisecond)

	if got := f.Pending(); got != 5 {
		t.Fatalf("Pending = %d, want 5", got)
	}
	f.Advance(50 * time.Millisecond)

	want := []string{"a", "b1", "b2", "c"}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if got := at["b1"].Sub(at["a"]); got != 10*time.Millisecond {
		t.Fatalf("b1 fired %s after a, want 10ms (callbacks see their own deadline)", got)
	}
	if got := f.Pending(); got != 1 {
		t.Fatalf("Pending after partial advance = %d, want 1 (the 100ms timer)", got)
	}
	f.Advance(50 * time.Millisecond)
	if fired[len(fired)-1] != "late" || f.Pending() != 0 {
		t.Fatalf("second advance: fired %v, pending %d", fired, f.Pending())
	}
}

// TestFakeStopAndReschedule covers Stop semantics and callbacks that
// schedule further timers inside the same Advance window — the shape the
// self-rescheduling health prober relies on.
func TestFakeStopAndReschedule(t *testing.T) {
	f := NewFake()
	fired := 0
	tm := f.AfterFunc(time.Second, func() { fired++ })
	if !tm.Stop() {
		t.Fatal("Stop on a pending timer reported false")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
	f.Advance(2 * time.Second)
	if fired != 0 {
		t.Fatal("stopped timer fired")
	}

	// A chain: each firing schedules the next; one Advance that spans three
	// periods must fire all three ticks.
	var ticks []time.Time
	var tick func()
	tick = func() {
		ticks = append(ticks, f.Now())
		if len(ticks) < 3 {
			f.AfterFunc(time.Second, tick)
		}
	}
	f.AfterFunc(time.Second, tick)
	f.Advance(5 * time.Second)
	if len(ticks) != 3 {
		t.Fatalf("chained timer fired %d times in a 5s window, want 3", len(ticks))
	}
	for i := 1; i < len(ticks); i++ {
		if got := ticks[i].Sub(ticks[i-1]); got != time.Second {
			t.Fatalf("tick %d fired %s after the previous, want 1s", i, got)
		}
	}
	if dl := f.sortedDeadlines(); len(dl) != 0 {
		t.Fatalf("deadlines left after chain completed: %v", dl)
	}
}

// TestRealClockSmoke exercises the Real implementation minimally: AfterFunc
// fires, Stop prevents firing.
func TestRealClockSmoke(t *testing.T) {
	c := Real()
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("real AfterFunc never fired")
	}
	stopped := make(chan struct{})
	tm := c.AfterFunc(time.Hour, func() { close(stopped) })
	if !tm.Stop() {
		t.Fatal("Stop on a fresh hour-long timer reported false")
	}
	if c.Now().IsZero() {
		t.Fatal("real Now returned the zero time")
	}
}
