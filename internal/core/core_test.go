package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gpusim"
	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

func testCOO(seed int64, rows, cols, nnz int) *matrix.COO[float64] {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewCOO[float64](rows, cols, nnz)
	for i := 0; i < nnz; i++ {
		m.Append(int32(rng.Intn(rows)), int32(rng.Intn(cols)), rng.NormFloat64())
	}
	m.Dedup()
	return m
}

func smallParams() Params {
	p := DefaultParams()
	p.Reps = 2
	p.Threads = 4
	p.K = 16
	return p
}

func gpuOptions(t *testing.T) Options {
	t.Helper()
	dev, err := gpusim.NewDevice(gpusim.TestDevice(1 << 30))
	if err != nil {
		t.Fatal(err)
	}
	return Options{Device: dev}
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	// 4 main formats × {serial, omp} × {plain, -t, -fixedk} = 24,
	// bell/sellcs × {serial, omp} = 4, 5 gpu + 1 gpu-t + 2 vendor gpu = 8.
	if len(names) != 36 {
		t.Fatalf("registry has %d kernels, want 36: %v", len(names), names)
	}
	for _, want := range []string{
		"coo-serial", "coo-omp", "coo-gpu", "coo-serial-t", "coo-omp-t", "coo-omp-fixedk",
		"csr-serial", "csr-omp", "csr-gpu", "csr-serial-t", "csr-omp-t",
		"ell-serial", "ell-omp", "ell-gpu",
		"bcsr-serial", "bcsr-omp", "bcsr-gpu",
		"bell-serial", "bell-omp", "bell-gpu", "csr-gpu-t", "sellcs-serial", "sellcs-omp",
		"vendor-coo-gpu", "vendor-csr-gpu",
	} {
		if _, err := New(want, gpuOptions(t)); err != nil {
			t.Errorf("kernel %q: %v", want, err)
		}
	}
	if _, err := New("no-such-kernel", Options{}); !errors.Is(err, ErrUnknownKernel) {
		t.Fatal("unknown kernel accepted")
	}
}

func TestGPUKernelsRequireDevice(t *testing.T) {
	for _, name := range []string{"coo-gpu", "vendor-csr-gpu"} {
		if _, err := New(name, Options{}); err == nil {
			t.Errorf("%s: missing device accepted", name)
		}
	}
}

func TestRunAllKernelsVerified(t *testing.T) {
	a := testCOO(1, 60, 60, 400)
	opts := gpuOptions(t)
	for _, name := range Names() {
		k, err := New(name, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r, err := Run(k, a, "test", smallParams())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !r.Verified {
			t.Fatalf("%s: not verified", name)
		}
		if r.MFLOPS <= 0 || r.AvgSeconds <= 0 || r.MinSeconds <= 0 {
			t.Fatalf("%s: nonsense timing %+v", name, r)
		}
		if r.MinSeconds > r.AvgSeconds {
			t.Fatalf("%s: min %v > avg %v", name, r.MinSeconds, r.AvgSeconds)
		}
		if r.FormatBytes <= 0 {
			t.Fatalf("%s: no format footprint", name)
		}
		if r.Kernel != name {
			t.Fatalf("result kernel %q != %q", r.Kernel, name)
		}
	}
}

func TestRunFixedKRejectsUnsupportedK(t *testing.T) {
	a := testCOO(2, 20, 20, 60)
	k, err := New("csr-serial-fixedk", Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := smallParams()
	p.K = 17
	if _, err := Run(k, a, "t", p); err == nil {
		t.Fatal("unsupported fixed k accepted")
	}
}

func TestRunKZeroDefaults(t *testing.T) {
	a := testCOO(3, 20, 20, 60)
	k, _ := New("csr-serial", Options{})
	p := smallParams()
	p.K = 0
	r, err := Run(k, a, "t", p)
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 128 {
		t.Fatalf("k=0 should default to 128, got %d", r.K)
	}
}

func TestRunRejectsBadParams(t *testing.T) {
	a := testCOO(4, 10, 10, 20)
	k, _ := New("coo-serial", Options{})
	for _, mutate := range []func(*Params){
		func(p *Params) { p.Reps = 0 },
		func(p *Params) { p.Threads = 0 },
		func(p *Params) { p.BlockSize = 0 },
		func(p *Params) { p.K = -1 },
		func(p *Params) { p.ThreadList = []int{4, 0} },
	} {
		p := smallParams()
		mutate(&p)
		if _, err := Run(k, a, "t", p); err == nil {
			t.Errorf("bad params %+v accepted", p)
		}
	}
}

func TestRunRejectsInvalidMatrix(t *testing.T) {
	a := testCOO(5, 10, 10, 20)
	a.RowIdx[0] = 99 // corrupt
	k, _ := New("coo-serial", Options{})
	if _, err := Run(k, a, "t", smallParams()); err == nil {
		t.Fatal("invalid matrix accepted")
	}
}

func TestCalculateBeforePrepare(t *testing.T) {
	for _, name := range []string{"coo-serial", "csr-serial", "ell-serial", "bcsr-serial", "bell-serial", "sellcs-serial"} {
		k, err := New(name, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b := matrix.NewDense[float64](4, 8)
		c := matrix.NewDense[float64](4, 8)
		p := smallParams()
		p.K = 8
		if err := k.Calculate(b, c, p); !errors.Is(err, ErrNotPrepared) {
			t.Errorf("%s: Calculate before Prepare: %v", name, err)
		}
	}
}

func TestVerificationCatchesBrokenKernel(t *testing.T) {
	a := testCOO(6, 30, 30, 150)
	k := &brokenKernel{}
	_, err := Run(k, a, "t", smallParams())
	if !errors.Is(err, ErrVerify) {
		t.Fatalf("broken kernel not caught: %v", err)
	}
}

// brokenKernel returns a wrong (all-zero with one poisoned cell) result.
type brokenKernel struct{ a *matrix.COO[float64] }

func (b *brokenKernel) Name() string     { return "broken" }
func (b *brokenKernel) Format() string   { return "broken" }
func (b *brokenKernel) Mode() Mode       { return Serial }
func (b *brokenKernel) Transposed() bool { return false }
func (b *brokenKernel) Bytes() int       { return 1 }
func (b *brokenKernel) Prepare(a *matrix.COO[float64], p Params) error {
	b.a = a
	return nil
}
func (b *brokenKernel) Calculate(_, c *matrix.Dense[float64], p Params) error {
	c.Zero()
	c.Set(0, 0, 12345)
	return nil
}

func TestBestThreadsPicksWinner(t *testing.T) {
	a := testCOO(7, 4000, 4000, 40000)
	k, _ := New("csr-omp", Options{})
	p := smallParams()
	p.K = 32
	p.ThreadList = []int{1, 4}
	p.Verify = false
	best, all, err := BestThreads(k, a, "t", p)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("got %d results", len(all))
	}
	for i, r := range all {
		if r.Threads != p.ThreadList[i] {
			t.Fatalf("result %d has threads %d", i, r.Threads)
		}
	}
	if all[best].MFLOPS < all[1-best].MFLOPS {
		t.Fatal("best is not the max")
	}
}

func TestBestThreadsRequiresList(t *testing.T) {
	a := testCOO(8, 10, 10, 20)
	k, _ := New("csr-omp", Options{})
	if _, _, err := BestThreads(k, a, "t", smallParams()); err == nil {
		t.Fatal("empty thread list accepted")
	}
}

func TestModeStrings(t *testing.T) {
	if Serial.String() != "serial" || Parallel.String() != "omp" || GPU.String() != "gpu" {
		t.Fatal("mode strings")
	}
}

func TestKernelNamesEncodeVariants(t *testing.T) {
	if kernelName("csr", Parallel, true, false) != "csr-omp-t" {
		t.Fatal("transposed name")
	}
	if kernelName("ell", Serial, false, true) != "ell-serial-fixedk" {
		t.Fatal("fixedk name")
	}
	for _, n := range Names() {
		if strings.ContainsAny(n, " /") {
			t.Fatalf("kernel name %q has unsafe characters", n)
		}
	}
}

func TestGPUKernelUsesModelTime(t *testing.T) {
	a := testCOO(9, 50, 50, 300)
	opts := gpuOptions(t)
	k, err := New("csr-gpu", opts)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(k, a, "t", smallParams())
	if err != nil {
		t.Fatal(err)
	}
	// The modelled time is deterministic, so avg == min exactly.
	if r.AvgSeconds != r.MinSeconds {
		t.Fatalf("model time should be deterministic: avg %v min %v", r.AvgSeconds, r.MinSeconds)
	}
}

func TestFormatsList(t *testing.T) {
	if len(Formats()) != 6 {
		t.Fatalf("formats: %v", Formats())
	}
}

func TestRunScheduledPooledVerified(t *testing.T) {
	// The scheduling layer must be invisible to correctness: every CPU-
	// parallel kernel run with the balanced schedule on a persistent pool
	// still verifies against the COO reference.
	a := testCOO(3, 80, 60, 500)
	pool := parallel.NewPool(4)
	defer pool.Close()
	for _, name := range []string{"coo-omp", "csr-omp", "ell-omp", "bcsr-omp", "bell-omp", "sellcs-omp"} {
		for _, p := range []Params{
			func() Params { p := smallParams(); p.Schedule = kernels.ScheduleBalanced; return p }(),
			func() Params { p := smallParams(); p.Pool = pool; return p }(),
			func() Params {
				p := smallParams()
				p.Schedule = kernels.ScheduleBalanced
				p.Pool = pool
				return p
			}(),
		} {
			k, err := New(name, Options{})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			r, err := Run(k, a, "test", p)
			if err != nil {
				t.Fatalf("%s (sched=%v pool=%v): %v", name, p.Schedule, p.Pool != nil, err)
			}
			if !r.Verified {
				t.Fatalf("%s (sched=%v pool=%v): not verified", name, p.Schedule, p.Pool != nil)
			}
		}
	}
}
