// Package core is the benchmark suite itself — the Go analogue of the
// thesis' C++ core library (§4.1). It defines the Kernel interface every
// format implementation satisfies (the "class" a custom format extends),
// the runtime parameters the CLI exposes, the benchmark runner with
// warm-up, repetition, COO-based verification and FLOPS reporting, and the
// best-thread-count sweep added for Study 3.1.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// ErrUnknownKernel is returned when a kernel name is not registered.
var ErrUnknownKernel = errors.New("core: unknown kernel")

// ErrNotPrepared is returned when Calculate runs before Prepare.
var ErrNotPrepared = errors.New("core: kernel not prepared")

// ErrVerify is returned when a kernel's output disagrees with the COO
// reference.
var ErrVerify = errors.New("core: verification failed")

// Mode classifies a kernel's execution environment.
type Mode uint8

const (
	Serial Mode = iota
	Parallel
	GPU
)

func (m Mode) String() string {
	switch m {
	case Parallel:
		return "omp" // the thesis labels CPU-parallel kernels "OMP"
	case GPU:
		return "gpu"
	default:
		return "serial"
	}
}

// Params are the suite's runtime parameters, mirroring the thesis CLI
// (§4.3): repetition count, thread count, block size, k-loop length, the
// thread-list sweep of Study 3.1, and a debug flag.
type Params struct {
	// Reps is the number of timed calculation calls ("-n").
	Reps int
	// Threads is the CPU-parallel thread count ("-t").
	Threads int
	// BlockSize is the BCSR/BELL block edge ("-b").
	BlockSize int
	// K is the k-loop length: how many columns of B/C are computed ("-k").
	K int
	// ThreadList, when non-empty, is the thread counts the best-thread
	// sweep tries (Study 3.1 feature).
	ThreadList []int
	// Verify compares the result against the COO reference kernel.
	Verify bool
	// Debug enables verbose reporting.
	Debug bool
	// Seed drives the deterministic generation of the dense B operand.
	Seed int64
	// Schedule selects the work partition of the CPU-parallel kernels:
	// ScheduleStatic (equal rows per worker — OpenMP static, the thesis'
	// baseline) or ScheduleBalanced (equal nonzeros per worker, for skewed
	// matrices). Serial, GPU, fixed-k and transposed kernels ignore it.
	Schedule kernels.Schedule
	// Pool, when non-nil, is a persistent worker pool the CPU-parallel
	// kernels run on instead of spawning goroutines per Calculate call. A
	// campaign creates one pool up front and every run reuses its warmed
	// workers; nil keeps the pool-free per-call path for one-off runs.
	Pool *parallel.Pool
	// Ctx, when non-nil, cancels a run cooperatively: the runner checks it
	// between repetitions and around Prepare/verify, and
	// cancellation-aware kernels (CSR, COO) check it inside their row
	// loops. It rides in Params because the Kernel interface's Calculate
	// signature is fixed; nil means run to completion.
	Ctx context.Context
	// Trace, when non-nil and enabled, receives pipeline spans from the
	// runner (prepare/warmup/calculate/verify on lane 0) and is forwarded
	// to the kernels' Opts variants for per-dispatch spans. Nil is a valid,
	// free no-op — see internal/trace.
	Trace *trace.Tracer
}

// Context returns p.Ctx, or context.Background() when unset.
func (p Params) Context() context.Context {
	if p.Ctx == nil {
		return context.Background()
	}
	return p.Ctx
}

// kernelOpts packs the scheduling parameters for the kernels' Opts
// variants.
func (p Params) kernelOpts() kernels.Opts {
	return kernels.Opts{Schedule: p.Schedule, Pool: p.Pool, Trace: p.Trace}
}

// scheduled reports whether the run asks for non-default parallel machinery
// (a balanced schedule or a persistent pool), routing Calculate through the
// kernels' Opts variants.
func (p Params) scheduled() bool {
	return p.Schedule != kernels.ScheduleStatic || p.Pool != nil
}

// DefaultParams returns the evaluation defaults of §5.1: k=128, 32 threads,
// BCSR block size 4.
func DefaultParams() Params {
	return Params{Reps: 5, Threads: 32, BlockSize: 4, K: 128, Verify: true, Seed: 1}
}

// Validate reports parameter problems.
func (p Params) Validate() error {
	if p.Reps < 1 {
		return fmt.Errorf("core: reps %d < 1", p.Reps)
	}
	if p.Threads < 1 {
		return fmt.Errorf("core: threads %d < 1", p.Threads)
	}
	if p.BlockSize < 1 {
		return fmt.Errorf("core: block size %d < 1", p.BlockSize)
	}
	if p.K < 0 {
		return fmt.Errorf("core: k %d < 0", p.K)
	}
	for _, t := range p.ThreadList {
		if t < 1 {
			return fmt.Errorf("core: thread list entry %d < 1", t)
		}
	}
	return nil
}

// Kernel is the interface every benchmarked kernel implements — the Go
// rendering of the thesis' C++ class whose "formatting and calculation
// functions ... will be specific to every format". A custom format plugs in
// by implementing this interface and registering a constructor.
type Kernel interface {
	// Name is the unique registry name, e.g. "csr-omp".
	Name() string
	// Format is the sparse format family: "coo", "csr", "ell", "bcsr", ...
	Format() string
	// Mode reports the execution environment.
	Mode() Mode
	// Transposed reports whether the kernel consumes Bᵀ (Study 8).
	Transposed() bool
	// Prepare converts the COO base representation into the kernel's
	// format (the per-format "formatting function"). It must be called
	// before Calculate and may be called again with a new matrix.
	Prepare(a *matrix.COO[float64], p Params) error
	// Bytes reports the formatted matrix's memory footprint
	// (future-work §6.3.5), valid after Prepare.
	Bytes() int
	// Calculate computes C[:, :k] = A × B[:, :k] (for transposed kernels
	// B is the kb×n transpose). It overwrites C's first k columns.
	Calculate(b, c *matrix.Dense[float64], p Params) error
}

// ModelTimed is implemented by kernels whose Calculate is a simulation
// (the GPU kernels): the runner reports the modelled seconds of the last
// Calculate call instead of host wall time.
type ModelTimed interface {
	ModelSeconds() float64
}

// Result is one benchmark outcome — the row the suite reports.
type Result struct {
	Kernel  string
	Format  string
	Mode    string
	Matrix  string
	K       int
	Threads int
	Block   int

	// FormatSeconds is the Prepare (formatting) time.
	FormatSeconds float64
	// AvgSeconds and MinSeconds summarise the timed Calculate calls.
	AvgSeconds float64
	MinSeconds float64
	// MFLOPS is 2*nnz*k / AvgSeconds / 1e6, the thesis' primary metric.
	MFLOPS float64
	// FormatBytes is the formatted matrix footprint.
	FormatBytes int
	// Verified is set when verification ran and passed.
	Verified bool
	// MaxAbsDiff is the worst deviation from the COO reference (when
	// verification ran).
	MaxAbsDiff float64
	// Err records a per-run failure message when a sweep or campaign keeps
	// going past an error (BestThreads, the harness journal); empty on
	// success.
	Err string
}
