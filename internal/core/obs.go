package core

import "repro/internal/obs"

// Benchmark-runner metrics, exported to the process-wide registry: how many
// benchmarks ran, how many timed repetitions they took, the distribution of
// per-repetition calculate times, and verification failures.
var (
	obsRuns = obs.NewCounter("spmm_core_runs_total",
		"Benchmark runs started by the core runner.")
	obsReps = obs.NewCounter("spmm_core_reps_total",
		"Timed calculate repetitions executed.")
	obsCalcSeconds = obs.NewHistogram("spmm_core_calculate_seconds",
		"Wall time of each timed calculate repetition, in seconds.")
	obsVerifyFailures = obs.NewCounter("spmm_core_verify_failures_total",
		"Runs whose result diverged from the COO reference kernel.")
)
