package core

import (
	"fmt"

	"repro/internal/formats"
	"repro/internal/gpusim"
	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/vendorlib"
)

// This file implements the Kernel interface for every format × mode ×
// variant combination the registry exposes. Each type holds its formatted
// matrix between Prepare and Calculate, exactly as the thesis' C++ objects
// hold their format-specific structures.

// ---- COO ----

type cooKernel struct {
	mode       Mode
	transposed bool
	fixedK     bool
	a          *matrix.COO[float64]
}

func (k *cooKernel) Name() string {
	return kernelName("coo", k.mode, k.transposed, k.fixedK)
}
func (k *cooKernel) Format() string   { return "coo" }
func (k *cooKernel) Mode() Mode       { return k.mode }
func (k *cooKernel) Transposed() bool { return k.transposed }

func (k *cooKernel) Prepare(a *matrix.COO[float64], p Params) error {
	// COO is the base format; "formatting" is a sort (usually a no-op).
	a.SortRowMajor()
	k.a = a
	return nil
}

func (k *cooKernel) Bytes() int {
	if k.a == nil {
		return 0
	}
	return k.a.Bytes()
}

func (k *cooKernel) Calculate(b, c *matrix.Dense[float64], p Params) error {
	if k.a == nil {
		return ErrNotPrepared
	}
	switch {
	case k.fixedK && k.mode == Serial:
		return kernels.COOSerialFixed(k.a, b, c, p.K)
	case k.fixedK:
		return kernels.COOParallelFixed(k.a, b, c, p.K, p.Threads)
	case k.transposed && k.mode == Serial:
		return kernels.COOSerialT(k.a, b, c, p.K)
	case k.transposed:
		return kernels.COOParallelT(k.a, b, c, p.K, p.Threads)
	case k.mode == Serial:
		if p.Ctx != nil {
			return kernels.COOSerialCtx(p.Ctx, k.a, b, c, p.K)
		}
		return kernels.COOSerial(k.a, b, c, p.K)
	default:
		if p.Ctx != nil {
			return kernels.COOParallelCtx(p.Ctx, k.a, b, c, p.K, p.Threads)
		}
		if p.scheduled() {
			return kernels.COOParallelOpts(k.a, b, c, p.K, p.Threads, p.kernelOpts())
		}
		return kernels.COOParallel(k.a, b, c, p.K, p.Threads)
	}
}

// ---- CSR ----

type csrKernel struct {
	mode       Mode
	transposed bool
	fixedK     bool
	a          *formats.CSR[float64]
}

func (k *csrKernel) Name() string {
	return kernelName("csr", k.mode, k.transposed, k.fixedK)
}
func (k *csrKernel) Format() string   { return "csr" }
func (k *csrKernel) Mode() Mode       { return k.mode }
func (k *csrKernel) Transposed() bool { return k.transposed }

func (k *csrKernel) Prepare(a *matrix.COO[float64], p Params) error {
	k.a = formats.CSRFromCOO(a)
	if k.mode == Parallel && p.Schedule == kernels.ScheduleBalanced {
		// Warm the partition cache at formatting time so the first timed
		// Calculate already runs the steady-state (allocation-free) path.
		k.a.BalancedBounds(p.Threads)
	}
	return nil
}

func (k *csrKernel) Bytes() int {
	if k.a == nil {
		return 0
	}
	return k.a.Bytes()
}

func (k *csrKernel) Calculate(b, c *matrix.Dense[float64], p Params) error {
	if k.a == nil {
		return ErrNotPrepared
	}
	switch {
	case k.fixedK && k.mode == Serial:
		return kernels.CSRSerialFixed(k.a, b, c, p.K)
	case k.fixedK:
		return kernels.CSRParallelFixed(k.a, b, c, p.K, p.Threads)
	case k.transposed && k.mode == Serial:
		return kernels.CSRSerialT(k.a, b, c, p.K)
	case k.transposed:
		return kernels.CSRParallelT(k.a, b, c, p.K, p.Threads)
	case k.mode == Serial:
		if p.Ctx != nil {
			return kernels.CSRSerialCtx(p.Ctx, k.a, b, c, p.K)
		}
		return kernels.CSRSerial(k.a, b, c, p.K)
	default:
		if p.Ctx != nil {
			return kernels.CSRParallelCtx(p.Ctx, k.a, b, c, p.K, p.Threads)
		}
		if p.scheduled() {
			return kernels.CSRParallelOpts(k.a, b, c, p.K, p.Threads, p.kernelOpts())
		}
		return kernels.CSRParallel(k.a, b, c, p.K, p.Threads)
	}
}

// ---- ELLPACK ----

type ellKernel struct {
	mode       Mode
	transposed bool
	fixedK     bool
	layout     formats.ELLLayout
	a          *formats.ELL[float64]
}

func (k *ellKernel) Name() string {
	return kernelName("ell", k.mode, k.transposed, k.fixedK)
}
func (k *ellKernel) Format() string   { return "ell" }
func (k *ellKernel) Mode() Mode       { return k.mode }
func (k *ellKernel) Transposed() bool { return k.transposed }

func (k *ellKernel) Prepare(a *matrix.COO[float64], p Params) error {
	k.a = formats.ELLFromCOO(a, k.layout)
	return nil
}

func (k *ellKernel) Bytes() int {
	if k.a == nil {
		return 0
	}
	return k.a.Bytes()
}

func (k *ellKernel) Calculate(b, c *matrix.Dense[float64], p Params) error {
	if k.a == nil {
		return ErrNotPrepared
	}
	switch {
	case k.fixedK && k.mode == Serial:
		return kernels.ELLSerialFixed(k.a, b, c, p.K)
	case k.fixedK:
		return kernels.ELLParallelFixed(k.a, b, c, p.K, p.Threads)
	case k.transposed && k.mode == Serial:
		return kernels.ELLSerialT(k.a, b, c, p.K)
	case k.transposed:
		return kernels.ELLParallelT(k.a, b, c, p.K, p.Threads)
	case k.mode == Serial:
		return kernels.ELLSerial(k.a, b, c, p.K)
	default:
		if p.scheduled() {
			return kernels.ELLParallelOpts(k.a, b, c, p.K, p.Threads, p.kernelOpts())
		}
		return kernels.ELLParallel(k.a, b, c, p.K, p.Threads)
	}
}

// ---- BCSR ----

type bcsrKernel struct {
	mode       Mode
	transposed bool
	fixedK     bool
	a          *formats.BCSR[float64]
}

func (k *bcsrKernel) Name() string {
	return kernelName("bcsr", k.mode, k.transposed, k.fixedK)
}
func (k *bcsrKernel) Format() string   { return "bcsr" }
func (k *bcsrKernel) Mode() Mode       { return k.mode }
func (k *bcsrKernel) Transposed() bool { return k.transposed }

func (k *bcsrKernel) Prepare(a *matrix.COO[float64], p Params) error {
	b, err := formats.BCSRFromCOO(a, p.BlockSize, p.BlockSize)
	if err != nil {
		return err
	}
	k.a = b
	if k.mode == Parallel && p.Schedule == kernels.ScheduleBalanced {
		k.a.BalancedBounds(p.Threads)
	}
	return nil
}

func (k *bcsrKernel) Bytes() int {
	if k.a == nil {
		return 0
	}
	return k.a.Bytes()
}

func (k *bcsrKernel) Calculate(b, c *matrix.Dense[float64], p Params) error {
	if k.a == nil {
		return ErrNotPrepared
	}
	switch {
	case k.fixedK && k.mode == Serial:
		return kernels.BCSRSerialFixed(k.a, b, c, p.K)
	case k.fixedK:
		return kernels.BCSRParallelFixed(k.a, b, c, p.K, p.Threads)
	case k.transposed && k.mode == Serial:
		return kernels.BCSRSerialT(k.a, b, c, p.K)
	case k.transposed:
		return kernels.BCSRParallelT(k.a, b, c, p.K, p.Threads)
	case k.mode == Serial:
		return kernels.BCSRSerial(k.a, b, c, p.K)
	default:
		if p.scheduled() {
			return kernels.BCSRParallelOpts(k.a, b, c, p.K, p.Threads, p.kernelOpts())
		}
		return kernels.BCSRParallel(k.a, b, c, p.K, p.Threads)
	}
}

// ---- BELL (future-work format) ----

type bellKernel struct {
	mode Mode
	a    *formats.BELL[float64]
}

func (k *bellKernel) Name() string     { return kernelName("bell", k.mode, false, false) }
func (k *bellKernel) Format() string   { return "bell" }
func (k *bellKernel) Mode() Mode       { return k.mode }
func (k *bellKernel) Transposed() bool { return false }

func (k *bellKernel) Prepare(a *matrix.COO[float64], p Params) error {
	b, err := formats.BELLFromCOO(a, p.BlockSize, p.BlockSize)
	if err != nil {
		return err
	}
	k.a = b
	return nil
}

func (k *bellKernel) Bytes() int {
	if k.a == nil {
		return 0
	}
	return k.a.Bytes()
}

func (k *bellKernel) Calculate(b, c *matrix.Dense[float64], p Params) error {
	if k.a == nil {
		return ErrNotPrepared
	}
	if k.mode == Serial {
		return kernels.BELLSerial(k.a, b, c, p.K)
	}
	if p.scheduled() {
		return kernels.BELLParallelOpts(k.a, b, c, p.K, p.Threads, p.kernelOpts())
	}
	return kernels.BELLParallel(k.a, b, c, p.K, p.Threads)
}

// ---- SELL-C-σ (future-work format, CSR5 stand-in) ----

type sellKernel struct {
	mode Mode
	a    *formats.SELLCS[float64]
}

func (k *sellKernel) Name() string     { return kernelName("sellcs", k.mode, false, false) }
func (k *sellKernel) Format() string   { return "sellcs" }
func (k *sellKernel) Mode() Mode       { return k.mode }
func (k *sellKernel) Transposed() bool { return false }

func (k *sellKernel) Prepare(a *matrix.COO[float64], p Params) error {
	s, err := formats.SELLCSFromCOO(a, 8, 64)
	if err != nil {
		return err
	}
	k.a = s
	if k.mode == Parallel && p.Schedule == kernels.ScheduleBalanced {
		k.a.BalancedBounds(p.Threads)
	}
	return nil
}

func (k *sellKernel) Bytes() int {
	if k.a == nil {
		return 0
	}
	return k.a.Bytes()
}

func (k *sellKernel) Calculate(b, c *matrix.Dense[float64], p Params) error {
	if k.a == nil {
		return ErrNotPrepared
	}
	if k.mode == Serial {
		return kernels.SELLCSSerial(k.a, b, c, p.K)
	}
	if p.scheduled() {
		return kernels.SELLCSParallelOpts(k.a, b, c, p.K, p.Threads, p.kernelOpts())
	}
	return kernels.SELLCSParallel(k.a, b, c, p.K, p.Threads)
}

// ---- GPU kernels (simulated device) ----

// gpuKernel wraps the naive offload kernels of gpusim and the tuned kernels
// of vendorlib behind the Kernel interface. The runner picks up the
// modelled time through ModelTimed.
type gpuKernel struct {
	name   string
	format string
	dev    *gpusim.Device
	vendor bool
	// transT selects the transposed-B GPU kernel, which transposes B on
	// the device itself (the cost is part of the modelled time), so
	// Transposed() stays false and the runner passes the plain B.
	transT bool

	coo  *matrix.COO[float64]
	csr  *formats.CSR[float64]
	ell  *formats.ELL[float64]
	bcsr *formats.BCSR[float64]
	bell *formats.BELL[float64]

	lastSeconds float64
}

func (k *gpuKernel) Name() string     { return k.name }
func (k *gpuKernel) Format() string   { return k.format }
func (k *gpuKernel) Mode() Mode       { return GPU }
func (k *gpuKernel) Transposed() bool { return false }

func (k *gpuKernel) Prepare(a *matrix.COO[float64], p Params) error {
	switch k.format {
	case "coo":
		a.SortRowMajor()
		k.coo = a
	case "csr":
		k.csr = formats.CSRFromCOO(a)
	case "ell":
		// GPU ELL uses the column-major layout (coalesced).
		k.ell = formats.ELLFromCOO(a, formats.ColMajor)
	case "bcsr":
		b, err := formats.BCSRFromCOO(a, p.BlockSize, p.BlockSize)
		if err != nil {
			return err
		}
		k.bcsr = b
	case "bell":
		b, err := formats.BELLFromCOO(a, p.BlockSize, p.BlockSize)
		if err != nil {
			return err
		}
		k.bell = b
	default:
		return fmt.Errorf("core: gpu kernel for %q not available", k.format)
	}
	return nil
}

func (k *gpuKernel) Bytes() int {
	switch k.format {
	case "coo":
		if k.coo != nil {
			return k.coo.Bytes()
		}
	case "csr":
		if k.csr != nil {
			return k.csr.Bytes()
		}
	case "ell":
		if k.ell != nil {
			return k.ell.Bytes()
		}
	case "bcsr":
		if k.bcsr != nil {
			return k.bcsr.Bytes()
		}
	case "bell":
		if k.bell != nil {
			return k.bell.Bytes()
		}
	}
	return 0
}

func (k *gpuKernel) Calculate(b, c *matrix.Dense[float64], p Params) error {
	if p.Trace != nil && k.dev != nil {
		// Forward the run's tracer so every Launch lands a simulated-time
		// span; the device keeps it for subsequent launches.
		k.dev.Trace = p.Trace
	}
	var res gpusim.LaunchResult
	var err error
	switch {
	case k.format == "coo" && k.vendor:
		if k.coo == nil {
			return ErrNotPrepared
		}
		res, err = vendorlib.SpMMCOO(k.dev, k.coo, b, c, p.K)
	case k.format == "coo":
		if k.coo == nil {
			return ErrNotPrepared
		}
		res, err = gpusim.SpMMCOO(k.dev, k.coo, b, c, p.K)
	case k.format == "csr" && k.vendor:
		if k.csr == nil {
			return ErrNotPrepared
		}
		res, err = vendorlib.SpMMCSR(k.dev, k.csr, b, c, p.K)
	case k.format == "csr" && k.transT:
		if k.csr == nil {
			return ErrNotPrepared
		}
		res, err = gpusim.SpMMCSRT(k.dev, k.csr, b, c, p.K)
	case k.format == "csr":
		if k.csr == nil {
			return ErrNotPrepared
		}
		res, err = gpusim.SpMMCSR(k.dev, k.csr, b, c, p.K)
	case k.format == "ell":
		if k.ell == nil {
			return ErrNotPrepared
		}
		res, err = gpusim.SpMMELL(k.dev, k.ell, b, c, p.K)
	case k.format == "bcsr":
		if k.bcsr == nil {
			return ErrNotPrepared
		}
		res, err = gpusim.SpMMBCSR(k.dev, k.bcsr, b, c, p.K)
	case k.format == "bell":
		if k.bell == nil {
			return ErrNotPrepared
		}
		res, err = gpusim.SpMMBELL(k.dev, k.bell, b, c, p.K)
	default:
		return fmt.Errorf("core: gpu kernel for %q not available", k.format)
	}
	if err != nil {
		return err
	}
	k.lastSeconds = res.Seconds
	return nil
}

// ModelSeconds implements ModelTimed.
func (k *gpuKernel) ModelSeconds() float64 { return k.lastSeconds }

func kernelName(format string, mode Mode, transposed, fixedK bool) string {
	name := format + "-" + mode.String()
	if transposed {
		name += "-t"
	}
	if fixedK {
		name += "-fixedk"
	}
	return name
}
