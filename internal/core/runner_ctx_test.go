package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/matrix"
)

// flakyThreadsKernel fails Calculate for the thread counts in failOn — the
// shape of a real sweep failure (e.g. oversubscription tripping a kernel's
// internal limits) that BestThreads must survive.
type flakyThreadsKernel struct {
	failOn map[int]bool
}

func (f *flakyThreadsKernel) Name() string     { return "flaky-omp" }
func (f *flakyThreadsKernel) Format() string   { return "coo" }
func (f *flakyThreadsKernel) Mode() Mode       { return Parallel }
func (f *flakyThreadsKernel) Transposed() bool { return false }
func (f *flakyThreadsKernel) Bytes() int       { return 1 }
func (f *flakyThreadsKernel) Prepare(a *matrix.COO[float64], p Params) error {
	return nil
}
func (f *flakyThreadsKernel) Calculate(_, c *matrix.Dense[float64], p Params) error {
	if f.failOn[p.Threads] {
		return fmt.Errorf("flaky: refusing to run with %d threads", p.Threads)
	}
	return nil
}

func sweepParams(list ...int) Params {
	p := smallParams()
	p.ThreadList = list
	p.Verify = false
	return p
}

func TestBestThreadsSurvivesOneFailure(t *testing.T) {
	a := testCOO(10, 50, 50, 200)
	k := &flakyThreadsKernel{failOn: map[int]bool{3: true}}
	best, all, err := BestThreads(k, a, "t", sweepParams(1, 3, 5))
	if err != nil {
		t.Fatalf("one failing count aborted the sweep: %v", err)
	}
	if len(all) != 3 {
		t.Fatalf("got %d results, want 3 (failed counts must keep their slot)", len(all))
	}
	if all[1].Err == "" || all[1].Threads != 3 {
		t.Fatalf("failed count not recorded: %+v", all[1])
	}
	if !strings.Contains(all[1].Err, "3 threads") {
		t.Fatalf("recorded error %q lost the cause", all[1].Err)
	}
	if best == 1 {
		t.Fatal("failed count picked as winner")
	}
	if all[best].Err != "" {
		t.Fatalf("winner %d carries an error: %q", best, all[best].Err)
	}
}

func TestBestThreadsAllFailing(t *testing.T) {
	a := testCOO(11, 50, 50, 200)
	k := &flakyThreadsKernel{failOn: map[int]bool{1: true, 2: true, 4: true}}
	_, all, err := BestThreads(k, a, "t", sweepParams(1, 2, 4))
	if err == nil {
		t.Fatal("all-failing sweep reported success")
	}
	if !strings.Contains(err.Error(), "all 3 thread counts failed") {
		t.Fatalf("error %v does not say every count failed", err)
	}
	if len(all) != 3 {
		t.Fatalf("got %d results, want 3", len(all))
	}
	for i, r := range all {
		if r.Err == "" {
			t.Fatalf("result %d has no recorded error", i)
		}
	}
}

func TestRunCtxCancelledBeforeStart(t *testing.T) {
	a := testCOO(12, 30, 30, 100)
	k, err := New("csr-serial", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, k, a, "t", smallParams()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v", err)
	}
}

func TestRunNilContextCompletes(t *testing.T) {
	a := testCOO(13, 30, 30, 100)
	k, err := New("coo-omp", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The zero Params.Ctx must behave exactly as before the context plumbing.
	r, err := Run(k, a, "t", smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Fatal("run with nil context skipped verification")
	}
}
