package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/formats"
	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/metrics"
)

// The thesis' future work asks for SpMV support in the suite (§6.3.4):
// "using a common set of benchmarks is preferable in order to get
// consistent data" when one study needs both SpMV and SpMM. This file adds
// that support: SpMV kernels behind their own small interface, a registry,
// and a runner that mirrors Run — the suite generates a dense vector
// instead of a dense matrix, exactly the modification the thesis sketches.

// SpMVKernel is the vector counterpart of Kernel: y = A × x.
type SpMVKernel interface {
	// Name is the registry name, e.g. "csr-spmv-omp".
	Name() string
	// Format is the sparse format family.
	Format() string
	// Mode reports the execution environment.
	Mode() Mode
	// Prepare converts the COO base representation into the kernel's
	// format.
	Prepare(a *matrix.COO[float64], p Params) error
	// Bytes reports the formatted matrix footprint, valid after Prepare.
	Bytes() int
	// CalculateVec computes y = A × x.
	CalculateVec(x, y []float64, p Params) error
}

type spmvKernel struct {
	format string
	mode   Mode

	coo  *matrix.COO[float64]
	csr  *formats.CSR[float64]
	ell  *formats.ELL[float64]
	bcsr *formats.BCSR[float64]
}

func (k *spmvKernel) Name() string {
	return k.format + "-spmv-" + k.mode.String()
}
func (k *spmvKernel) Format() string { return k.format }
func (k *spmvKernel) Mode() Mode     { return k.mode }

func (k *spmvKernel) Prepare(a *matrix.COO[float64], p Params) error {
	switch k.format {
	case "coo":
		a.SortRowMajor()
		k.coo = a
	case "csr":
		k.csr = formats.CSRFromCOO(a)
	case "ell":
		k.ell = formats.ELLFromCOO(a, formats.RowMajor)
	case "bcsr":
		b, err := formats.BCSRFromCOO(a, p.BlockSize, p.BlockSize)
		if err != nil {
			return err
		}
		k.bcsr = b
	default:
		return fmt.Errorf("core: no spmv kernel for format %q", k.format)
	}
	return nil
}

func (k *spmvKernel) Bytes() int {
	switch k.format {
	case "coo":
		if k.coo != nil {
			return k.coo.Bytes()
		}
	case "csr":
		if k.csr != nil {
			return k.csr.Bytes()
		}
	case "ell":
		if k.ell != nil {
			return k.ell.Bytes()
		}
	case "bcsr":
		if k.bcsr != nil {
			return k.bcsr.Bytes()
		}
	}
	return 0
}

func (k *spmvKernel) CalculateVec(x, y []float64, p Params) error {
	serial := k.mode == Serial
	switch k.format {
	case "coo":
		if k.coo == nil {
			return ErrNotPrepared
		}
		if serial {
			return kernels.COOSpMV(k.coo, x, y)
		}
		return kernels.COOSpMVParallel(k.coo, x, y, p.Threads)
	case "csr":
		if k.csr == nil {
			return ErrNotPrepared
		}
		if serial {
			return kernels.CSRSpMV(k.csr, x, y)
		}
		return kernels.CSRSpMVParallel(k.csr, x, y, p.Threads)
	case "ell":
		if k.ell == nil {
			return ErrNotPrepared
		}
		if serial {
			return kernels.ELLSpMV(k.ell, x, y)
		}
		return kernels.ELLSpMVParallel(k.ell, x, y, p.Threads)
	case "bcsr":
		if k.bcsr == nil {
			return ErrNotPrepared
		}
		if serial {
			return kernels.BCSRSpMV(k.bcsr, x, y)
		}
		return kernels.BCSRSpMVParallel(k.bcsr, x, y, p.Threads)
	}
	return fmt.Errorf("core: no spmv kernel for format %q", k.format)
}

// NewSpMV builds an SpMV kernel by registry name.
func NewSpMV(name string) (SpMVKernel, error) {
	for _, format := range []string{"coo", "csr", "ell", "bcsr"} {
		for _, mode := range []Mode{Serial, Parallel} {
			k := &spmvKernel{format: format, mode: mode}
			if k.Name() == name {
				return k, nil
			}
		}
	}
	return nil, fmt.Errorf("%w: %q (try SpMVNames())", ErrUnknownKernel, name)
}

// SpMVNames lists the SpMV kernel registry names, sorted.
func SpMVNames() []string {
	names := []string{}
	for _, format := range []string{"coo", "csr", "ell", "bcsr"} {
		for _, mode := range []Mode{Serial, Parallel} {
			names = append(names, (&spmvKernel{format: format, mode: mode}).Name())
		}
	}
	sort.Strings(names)
	return names
}

// RunSpMV benchmarks one SpMV kernel on one matrix, mirroring Run: timed
// Prepare, warm-up, p.Reps timed repetitions, verification against the COO
// SpMV reference, and MFLOPS from 2*nnz flops per multiply.
func RunSpMV(k SpMVKernel, a *matrix.COO[float64], matrixName string, p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if err := a.Validate(); err != nil {
		return Result{}, fmt.Errorf("core: input matrix: %w", err)
	}

	res := Result{
		Kernel:  k.Name(),
		Format:  k.Format(),
		Mode:    k.Mode().String(),
		Matrix:  matrixName,
		K:       1,
		Threads: p.Threads,
		Block:   p.BlockSize,
	}

	start := time.Now()
	if err := k.Prepare(a, p); err != nil {
		return Result{}, fmt.Errorf("core: %s: prepare: %w", k.Name(), err)
	}
	res.FormatSeconds = time.Since(start).Seconds()
	res.FormatBytes = k.Bytes()

	// The suite generates the dense operand; for SpMV it is a vector.
	rng := rand.New(rand.NewSource(p.Seed))
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	y := make([]float64, a.Rows)

	if err := k.CalculateVec(x, y, p); err != nil {
		return Result{}, fmt.Errorf("core: %s: calculate: %w", k.Name(), err)
	}

	var total, minSec float64
	for rep := 0; rep < p.Reps; rep++ {
		t0 := time.Now()
		if err := k.CalculateVec(x, y, p); err != nil {
			return Result{}, fmt.Errorf("core: %s: calculate: %w", k.Name(), err)
		}
		secs := time.Since(t0).Seconds()
		total += secs
		if rep == 0 || secs < minSec {
			minSec = secs
		}
	}
	res.AvgSeconds = total / float64(p.Reps)
	res.MinSeconds = minSec
	res.MFLOPS = metrics.MFLOPS(kernels.SpMVFlops(a.NNZ()), res.AvgSeconds)

	if p.Verify {
		ref := make([]float64, a.Rows)
		if err := kernels.COOSpMV(a, x, ref); err != nil {
			return Result{}, fmt.Errorf("core: reference spmv: %w", err)
		}
		tol := matrix.DefaultTol[float64]()
		for i := range ref {
			diff := y[i] - ref[i]
			if diff < 0 {
				diff = -diff
			}
			if diff > res.MaxAbsDiff {
				res.MaxAbsDiff = diff
			}
			if !matrix.EqualTol(y[i], ref[i], tol) {
				return res, fmt.Errorf("%w: %s on %s: y[%d]=%g, want %g",
					ErrVerify, k.Name(), matrixName, i, y[i], ref[i])
			}
		}
		res.Verified = true
	}
	return res, nil
}
