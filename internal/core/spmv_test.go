package core

import (
	"errors"
	"testing"
)

func TestSpMVRegistry(t *testing.T) {
	names := SpMVNames()
	if len(names) != 8 {
		t.Fatalf("spmv registry has %d kernels, want 8: %v", len(names), names)
	}
	for _, n := range names {
		if _, err := NewSpMV(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := NewSpMV("dense-spmv"); !errors.Is(err, ErrUnknownKernel) {
		t.Fatal("unknown spmv kernel accepted")
	}
}

func TestRunSpMVAllKernelsVerified(t *testing.T) {
	a := testCOO(21, 80, 80, 500)
	p := smallParams()
	for _, name := range SpMVNames() {
		k, err := NewSpMV(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := RunSpMV(k, a, "test", p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !r.Verified {
			t.Fatalf("%s: not verified", name)
		}
		if r.K != 1 {
			t.Fatalf("%s: spmv result must report k=1, got %d", name, r.K)
		}
		if r.MFLOPS <= 0 || r.FormatBytes <= 0 {
			t.Fatalf("%s: nonsense result %+v", name, r)
		}
	}
}

func TestSpMVCalculateBeforePrepare(t *testing.T) {
	k, err := NewSpMV("csr-spmv-serial")
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 4)
	y := make([]float64, 4)
	if err := k.CalculateVec(x, y, smallParams()); !errors.Is(err, ErrNotPrepared) {
		t.Fatalf("CalculateVec before Prepare: %v", err)
	}
}

func TestRunSpMVRejectsBadInput(t *testing.T) {
	a := testCOO(22, 10, 10, 20)
	k, _ := NewSpMV("coo-spmv-serial")
	p := smallParams()
	p.Reps = 0
	if _, err := RunSpMV(k, a, "t", p); err == nil {
		t.Fatal("bad params accepted")
	}
	a.ColIdx[0] = 99
	if _, err := RunSpMV(k, a, "t", smallParams()); err == nil {
		t.Fatal("invalid matrix accepted")
	}
}

func TestRunSpMVDeterministicResult(t *testing.T) {
	a := testCOO(23, 60, 60, 300)
	p := smallParams()
	k1, _ := NewSpMV("ell-spmv-omp")
	r1, err := RunSpMV(k1, a, "t", p)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := NewSpMV("ell-spmv-omp")
	r2, err := RunSpMV(k2, a, "t", p)
	if err != nil {
		t.Fatal(err)
	}
	// Timing varies; the verified numerics and metadata must not.
	if r1.Kernel != r2.Kernel || r1.MaxAbsDiff != r2.MaxAbsDiff || r1.FormatBytes != r2.FormatBytes {
		t.Fatalf("results differ: %+v vs %+v", r1, r2)
	}
}
