package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Run benchmarks one kernel on one matrix: Prepare is timed as the
// formatting cost, the calculation runs once untimed as warm-up and then
// p.Reps timed repetitions, the result is verified against the COO
// reference kernel when p.Verify is set, and FLOPS are derived from the
// logical nonzero count exactly as the thesis' suite reports them (§4.3).
//
// The dense B operand is generated deterministically from p.Seed, matching
// the suite's auto-generated B. Transposed kernels receive Bᵀ, and the
// transposition is performed inside every timed repetition — Study 8
// explicitly charges the transpose against the kernel.
func Run(k Kernel, a *matrix.COO[float64], matrixName string, p Params) (Result, error) {
	if p.K == 0 {
		p.K = DefaultParams().K
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if err := a.Validate(); err != nil {
		return Result{}, fmt.Errorf("core: input matrix: %w", err)
	}
	if err := p.Context().Err(); err != nil {
		return Result{}, fmt.Errorf("core: %s: %w", k.Name(), err)
	}

	obsRuns.Inc()
	res := Result{
		Kernel:  k.Name(),
		Format:  k.Format(),
		Mode:    k.Mode().String(),
		Matrix:  matrixName,
		K:       p.K,
		Threads: p.Threads,
		Block:   p.BlockSize,
	}

	span := p.Trace.Start()
	start := time.Now()
	if err := k.Prepare(a, p); err != nil {
		return Result{}, fmt.Errorf("core: %s: prepare: %w", k.Name(), err)
	}
	p.Trace.EndDetail(0, trace.PhasePrepare, k.Name(), span, int64(a.NNZ()))
	res.FormatSeconds = time.Since(start).Seconds()
	res.FormatBytes = k.Bytes()

	b := matrix.NewDenseRand[float64](a.Cols, p.K, p.Seed)
	c := matrix.NewDense[float64](a.Rows, p.K)

	operand := b
	if k.Transposed() {
		operand = b.Transpose()
	}

	model, isModel := k.(ModelTimed)
	reps := p.Reps
	if isModel {
		// Simulated kernels are deterministic: one execution is the
		// measurement; warm-up and repetition would only burn host time.
		reps = 1
	} else {
		// Warm-up (untimed), also surfacing calculation errors early.
		span = p.Trace.Start()
		if err := k.Calculate(operand, c, p); err != nil {
			return Result{}, fmt.Errorf("core: %s: calculate: %w", k.Name(), err)
		}
		p.Trace.EndDetail(0, trace.PhaseWarmup, k.Name(), span, 0)
	}

	var total, minSec float64
	for rep := 0; rep < reps; rep++ {
		if err := p.Context().Err(); err != nil {
			return Result{}, fmt.Errorf("core: %s: rep %d: %w", k.Name(), rep, err)
		}
		var secs float64
		span = p.Trace.Start()
		if k.Transposed() {
			// The transpose is part of the measured work.
			t0 := time.Now()
			operand = b.Transpose()
			if err := k.Calculate(operand, c, p); err != nil {
				return Result{}, fmt.Errorf("core: %s: calculate: %w", k.Name(), err)
			}
			secs = time.Since(t0).Seconds()
		} else {
			t0 := time.Now()
			if err := k.Calculate(operand, c, p); err != nil {
				return Result{}, fmt.Errorf("core: %s: calculate: %w", k.Name(), err)
			}
			secs = time.Since(t0).Seconds()
		}
		p.Trace.EndDetail(0, trace.PhaseCalculate, k.Name(), span, int64(rep))
		if isModel {
			secs = model.ModelSeconds()
		}
		obsReps.Inc()
		obsCalcSeconds.Observe(secs)
		total += secs
		if rep == 0 || secs < minSec {
			minSec = secs
		}
	}
	res.AvgSeconds = total / float64(reps)
	res.MinSeconds = minSec
	res.MFLOPS = metrics.MFLOPS(kernels.SpMMFlops(a.NNZ(), p.K), res.AvgSeconds)

	if p.Verify {
		if err := p.Context().Err(); err != nil {
			return Result{}, fmt.Errorf("core: %s: verify: %w", k.Name(), err)
		}
		span = p.Trace.Start()
		defer func() { p.Trace.EndDetail(0, trace.PhaseVerify, k.Name(), span, 0) }()
		ref := matrix.NewDense[float64](a.Rows, p.K)
		if err := kernels.COOSerialCtx(p.Ctx, a, b, ref, p.K); err != nil {
			return Result{}, fmt.Errorf("core: reference kernel: %w", err)
		}
		diff, err := c.MaxAbsDiff(ref)
		if err != nil {
			return Result{}, fmt.Errorf("core: verification: %w", err)
		}
		res.MaxAbsDiff = diff
		if !c.EqualTol(ref, matrix.DefaultTol[float64]()) {
			obsVerifyFailures.Inc()
			return res, fmt.Errorf("%w: %s on %s: max abs diff %g",
				ErrVerify, k.Name(), matrixName, diff)
		}
		res.Verified = true
	}
	return res, nil
}

// RunCtx is Run with a context governing the whole benchmark: the runner
// checks ctx between repetitions and around Prepare/verify, and
// cancellation-aware kernels check it inside their row loops. The returned
// error wraps ctx.Err() when the run was cut short.
func RunCtx(ctx context.Context, k Kernel, a *matrix.COO[float64], matrixName string, p Params) (Result, error) {
	p.Ctx = ctx
	return Run(k, a, matrixName, p)
}

// BestThreads runs a parallel kernel once per entry of p.ThreadList and
// returns the per-count results plus the index of the winner (highest
// MFLOPS) — the Study 3.1 sweep feature. An empty ThreadList is an error.
//
// One failing thread count does not abort the sweep: the failure is
// recorded in that entry's Result.Err and the remaining counts still run.
// The winner is picked among the successful counts; only when every count
// fails does BestThreads return an error (joining the per-count causes).
func BestThreads(k Kernel, a *matrix.COO[float64], matrixName string, p Params) (best int, all []Result, err error) {
	if len(p.ThreadList) == 0 {
		return 0, nil, fmt.Errorf("core: BestThreads needs a non-empty ThreadList")
	}
	all = make([]Result, 0, len(p.ThreadList))
	best = -1
	var errs []error
	for i, threads := range p.ThreadList {
		q := p
		q.Threads = threads
		r, runErr := Run(k, a, matrixName, q)
		if runErr != nil {
			errs = append(errs, fmt.Errorf("threads=%d: %w", threads, runErr))
			r = Result{Kernel: k.Name(), Format: k.Format(), Mode: k.Mode().String(),
				Matrix: matrixName, K: q.K, Threads: threads, Block: q.BlockSize,
				Err: runErr.Error()}
			all = append(all, r)
			continue
		}
		all = append(all, r)
		if best < 0 || r.MFLOPS > all[best].MFLOPS {
			best = i
		}
	}
	if best < 0 {
		return 0, all, fmt.Errorf("core: BestThreads: all %d thread counts failed: %w",
			len(p.ThreadList), errors.Join(errs...))
	}
	return best, all, nil
}
