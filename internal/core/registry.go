package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/formats"
	"repro/internal/gpusim"
)

// Options carries the shared resources kernel constructors may need.
type Options struct {
	// Device is the simulated GPU used by GPU-mode kernels. Nil is fine
	// for CPU kernels.
	Device *gpusim.Device
	// ELLLayout selects the CPU ELL storage layout (GPU ELL is always
	// column-major).
	ELLLayout formats.ELLLayout
}

// constructor builds a fresh kernel instance.
type constructor func(o Options) (Kernel, error)

func needDevice(name, format string, vendor bool) constructor {
	return func(o Options) (Kernel, error) {
		if o.Device == nil {
			return nil, fmt.Errorf("core: kernel %q needs a GPU device", name)
		}
		return &gpuKernel{name: name, format: format, dev: o.Device, vendor: vendor,
			transT: strings.HasSuffix(name, "-t")}, nil
	}
}

// registry maps kernel names to constructors. Adding a new format means
// adding entries here — the extension point the thesis designed its suite
// around.
var registry = map[string]constructor{}

func register(name string, c constructor) {
	if _, dup := registry[name]; dup {
		panic("core: duplicate kernel " + name)
	}
	registry[name] = c
}

func init() {
	for _, mode := range []Mode{Serial, Parallel} {
		mode := mode
		register(kernelName("coo", mode, false, false),
			func(Options) (Kernel, error) { return &cooKernel{mode: mode}, nil })
		register(kernelName("coo", mode, true, false),
			func(Options) (Kernel, error) { return &cooKernel{mode: mode, transposed: true}, nil })
		register(kernelName("coo", mode, false, true),
			func(Options) (Kernel, error) { return &cooKernel{mode: mode, fixedK: true}, nil })

		register(kernelName("csr", mode, false, false),
			func(Options) (Kernel, error) { return &csrKernel{mode: mode}, nil })
		register(kernelName("csr", mode, true, false),
			func(Options) (Kernel, error) { return &csrKernel{mode: mode, transposed: true}, nil })
		register(kernelName("csr", mode, false, true),
			func(Options) (Kernel, error) { return &csrKernel{mode: mode, fixedK: true}, nil })

		register(kernelName("ell", mode, false, false),
			func(o Options) (Kernel, error) { return &ellKernel{mode: mode, layout: o.ELLLayout}, nil })
		register(kernelName("ell", mode, true, false),
			func(o Options) (Kernel, error) {
				return &ellKernel{mode: mode, transposed: true, layout: o.ELLLayout}, nil
			})
		register(kernelName("ell", mode, false, true),
			func(o Options) (Kernel, error) {
				return &ellKernel{mode: mode, fixedK: true, layout: o.ELLLayout}, nil
			})

		register(kernelName("bcsr", mode, false, false),
			func(Options) (Kernel, error) { return &bcsrKernel{mode: mode}, nil })
		register(kernelName("bcsr", mode, true, false),
			func(Options) (Kernel, error) { return &bcsrKernel{mode: mode, transposed: true}, nil })
		register(kernelName("bcsr", mode, false, true),
			func(Options) (Kernel, error) { return &bcsrKernel{mode: mode, fixedK: true}, nil })

		register(kernelName("bell", mode, false, false),
			func(Options) (Kernel, error) { return &bellKernel{mode: mode}, nil })
		register(kernelName("sellcs", mode, false, false),
			func(Options) (Kernel, error) { return &sellKernel{mode: mode}, nil })
	}
	for _, format := range []string{"coo", "csr", "ell", "bcsr", "bell"} {
		name := format + "-gpu"
		register(name, needDevice(name, format, false))
	}
	register("csr-gpu-t", needDevice("csr-gpu-t", "csr", false))
	register("vendor-coo-gpu", needDevice("vendor-coo-gpu", "coo", true))
	register("vendor-csr-gpu", needDevice("vendor-csr-gpu", "csr", true))
}

// New builds a fresh kernel by registry name.
func New(name string, o Options) (Kernel, error) {
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownKernel, name)
	}
	return c(o)
}

// Names lists the registered kernel names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Formats lists the format families with at least one registered kernel.
func Formats() []string {
	return []string{"coo", "csr", "ell", "bcsr", "bell", "sellcs"}
}
