package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestChunkBoundsCoverExactly(t *testing.T) {
	f := func(nRaw, chunksRaw uint16) bool {
		n := int(nRaw % 1000)
		chunks := 1 + int(chunksRaw%64)
		prev := 0
		for i := 0; i < chunks; i++ {
			lo, hi := ChunkBounds(n, chunks, i)
			if lo != prev || hi < lo {
				return false
			}
			prev = hi
		}
		return prev == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChunkBoundsBalanced(t *testing.T) {
	// No chunk may be more than one element larger than another.
	for _, n := range []int{0, 1, 7, 100, 101} {
		for chunks := 1; chunks <= 9; chunks++ {
			minSz, maxSz := n+1, -1
			for i := 0; i < chunks; i++ {
				lo, hi := ChunkBounds(n, chunks, i)
				sz := hi - lo
				minSz = min(minSz, sz)
				maxSz = max(maxSz, sz)
			}
			if maxSz-minSz > 1 {
				t.Fatalf("n=%d chunks=%d: sizes range [%d, %d]", n, chunks, minSz, maxSz)
			}
		}
	}
}

func sumVia(run func(n int, body func(lo, hi, w int)), n int) int64 {
	var total atomic.Int64
	run(n, func(lo, hi, _ int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		total.Add(s)
	})
	return total.Load()
}

func expectedSum(n int) int64 { return int64(n) * int64(n-1) / 2 }

func TestForCoversRange(t *testing.T) {
	for _, threads := range []int{1, 2, 7, 32, 100} {
		for _, n := range []int{0, 1, 5, 1000} {
			got := sumVia(func(n int, body func(lo, hi, w int)) {
				For(n, threads, body)
			}, n)
			if got != expectedSum(n) {
				t.Fatalf("For(n=%d, threads=%d): sum %d, want %d", n, threads, got, expectedSum(n))
			}
		}
	}
}

func TestForEachIndexOnce(t *testing.T) {
	n := 512
	hits := make([]atomic.Int32, n)
	For(n, 13, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			hits[i].Add(1)
		}
	})
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d hit %d times", i, hits[i].Load())
		}
	}
}

func TestForNegativeAndZeroThreads(t *testing.T) {
	got := sumVia(func(n int, body func(lo, hi, w int)) {
		For(n, 0, body)
	}, 100)
	if got != expectedSum(100) {
		t.Fatal("threads<=0 must still execute the full range")
	}
}

func TestForWorkerIDsDistinct(t *testing.T) {
	var seen [8]atomic.Int32
	For(800, 8, func(_, _, w int) {
		seen[w].Add(1)
	})
	for w := range seen {
		if seen[w].Load() != 1 {
			t.Fatalf("worker %d ran %d chunks, want 1", w, seen[w].Load())
		}
	}
}

func TestForDynamicCoversRange(t *testing.T) {
	for _, threads := range []int{1, 3, 16} {
		for _, chunk := range []int{1, 7, 64, 10000} {
			got := sumVia(func(n int, body func(lo, hi, w int)) {
				ForDynamic(n, threads, chunk, body)
			}, 777)
			if got != expectedSum(777) {
				t.Fatalf("ForDynamic(threads=%d, chunk=%d): sum %d", threads, chunk, got)
			}
		}
	}
}

func TestForDynamicEachIndexOnce(t *testing.T) {
	n := 300
	hits := make([]atomic.Int32, n)
	ForDynamic(n, 9, 11, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			hits[i].Add(1)
		}
	})
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d hit %d times", i, hits[i].Load())
		}
	}
}

func TestPoolRun(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, threads := range []int{1, 4, 9, 64} {
		got := sumVia(func(n int, body func(lo, hi, w int)) {
			p.Run(n, threads, body)
		}, 1234)
		if got != expectedSum(1234) {
			t.Fatalf("Pool.Run(threads=%d): sum %d", threads, got)
		}
	}
}

func TestPoolOversubscription(t *testing.T) {
	// More chunks than workers must still complete (no deadlock) and
	// cover the range exactly once.
	p := NewPool(2)
	defer p.Close()
	n := 100
	hits := make([]atomic.Int32, n)
	p.Run(n, 50, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			hits[i].Add(1)
		}
	})
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d hit %d times", i, hits[i].Load())
		}
	}
}

func TestPoolSequentialReuse(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	for rep := 0; rep < 20; rep++ {
		if got := sumVia(func(n int, body func(lo, hi, w int)) {
			p.Run(n, 3, body)
		}, 64); got != expectedSum(64) {
			t.Fatalf("rep %d: wrong sum %d", rep, got)
		}
	}
}

func TestPoolWorkers(t *testing.T) {
	p := NewPool(0) // clamped to 1
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", p.Workers())
	}
}

func TestMaxThreadsPositive(t *testing.T) {
	if MaxThreads() < 1 {
		t.Fatal("MaxThreads must be >= 1")
	}
}
