package parallel

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// rowptrFromNNZ builds a CSR-style prefix sum from per-row counts.
func rowptrFromNNZ(nnz []int32) []int32 {
	rp := make([]int32, len(nnz)+1)
	for i, c := range nnz {
		rp[i+1] = rp[i] + c
	}
	return rp
}

func TestBalancedBoundsPartitionProperty(t *testing.T) {
	f := func(seed int64, nRaw, chunksRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 500)
		chunks := 1 + int(chunksRaw%64)
		nnz := make([]int32, n)
		for i := range nnz {
			// Mix of empty rows and power-law-ish heavy rows.
			switch rng.Intn(4) {
			case 0: // empty
			case 1:
				nnz[i] = int32(rng.Intn(4))
			default:
				nnz[i] = int32(rng.Intn(200))
			}
		}
		rp := rowptrFromNNZ(nnz)
		bounds := BalancedBounds(rp, chunks)
		if err := ValidateBounds(bounds, n); err != nil {
			t.Log(err)
			return false
		}
		return len(bounds)-1 <= max(chunks, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBalancedBoundsChunkLoad(t *testing.T) {
	// Every chunk carries at most a fair share of nonzeros plus one row's
	// worth — the standard guarantee of prefix-sum splitting.
	rng := rand.New(rand.NewSource(7))
	n := 2000
	nnz := make([]int32, n)
	var maxRow int64
	for i := range nnz {
		nnz[i] = int32(rng.Intn(50))
		if rng.Intn(100) == 0 {
			nnz[i] = int32(1000 + rng.Intn(5000)) // heavy hub rows
		}
		maxRow = max(maxRow, int64(nnz[i]))
	}
	rp := rowptrFromNNZ(nnz)
	total := int64(rp[n])
	for _, chunks := range []int{2, 4, 8, 16, 64} {
		bounds := BalancedBounds(rp, chunks)
		fair := total/int64(chunks) + 1
		for i := 0; i+1 < len(bounds); i++ {
			load := int64(rp[bounds[i+1]] - rp[bounds[i]])
			if load > fair+maxRow {
				t.Fatalf("chunks=%d: chunk %d holds %d nnz, limit %d",
					chunks, i, load, fair+maxRow)
			}
		}
	}
}

func TestBalancedBoundsHeavyRowIsolated(t *testing.T) {
	// One row holding 90%% of the nonzeros must end up alone in its chunk
	// (for chunks >= 3) so the remaining rows can still spread out.
	nnz := make([]int32, 100)
	for i := range nnz {
		nnz[i] = 1
	}
	nnz[40] = 900
	rp := rowptrFromNNZ(nnz)
	bounds := BalancedBounds(rp, 8)
	if err := ValidateBounds(bounds, 100); err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] <= 40 && 40 < bounds[i+1] {
			if sz := bounds[i+1] - bounds[i]; sz != 1 {
				t.Fatalf("heavy row shares a chunk of %d rows: bounds %v", sz, bounds)
			}
			return
		}
	}
	t.Fatalf("heavy row not covered: bounds %v", bounds)
}

func TestBalancedBoundsEmptyMatrix(t *testing.T) {
	// total == 0 degenerates to the static partition so row-wise work
	// (zeroing C) still spreads over workers.
	rp := make([]int32, 101) // 100 rows, 0 nnz
	bounds := BalancedBounds(rp, 4)
	if err := ValidateBounds(bounds, 100); err != nil {
		t.Fatal(err)
	}
	if len(bounds) != 5 {
		t.Fatalf("want 4 static chunks, got bounds %v", bounds)
	}
}

func TestBalancedBoundsDegenerate(t *testing.T) {
	if got := BalancedBounds([]int32{0}, 4); len(got) != 1 || got[0] != 0 {
		t.Fatalf("0-row matrix: bounds %v", got)
	}
	if got := BalancedBounds([]int32{0, 5}, 8); len(got) != 2 || got[1] != 1 {
		t.Fatalf("1-row matrix: bounds %v", got)
	}
}

// TestWorkerIDContract pins the contract documented on For: every loop
// runner passes body a worker id equal to the chunk index, dense in
// [0, min(threads, n)), even when threads exceeds n or the pool has fewer
// goroutines than chunks.
func TestWorkerIDContract(t *testing.T) {
	pool := NewPool(2) // smaller than every thread count below
	defer pool.Close()

	runners := map[string]func(n, threads int, body func(lo, hi, w int)){
		"For":      For,
		"Pool.Run": pool.Run,
		"Exec{}":   Exec{}.Run,
		"Exec{Pool}": func(n, threads int, body func(lo, hi, w int)) {
			Exec{Pool: pool}.Run(n, threads, body)
		},
		"ForCtx": func(n, threads int, body func(lo, hi, w int)) {
			if err := ForCtx(nil, n, threads, body); err != nil {
				t.Fatal(err)
			}
		},
		"Pool.RunCtx": func(n, threads int, body func(lo, hi, w int)) {
			if err := pool.RunCtx(nil, n, threads, body); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, run := range runners {
		for _, tc := range []struct{ n, threads int }{
			{5, 32},   // threads >> n: ids clamp to [0, n)
			{100, 7},  // rows >> threads
			{1, 16},   // serial degenerate
			{16, 16},  // exact
			{100, 50}, // chunks >> pool workers
		} {
			want := min(tc.threads, tc.n)
			seen := make([]atomic.Int32, want)
			run(tc.n, tc.threads, func(_, _, w int) {
				if w < 0 || w >= want {
					t.Errorf("%s(n=%d, threads=%d): worker id %d outside [0, %d)",
						name, tc.n, tc.threads, w, want)
					return
				}
				seen[w].Add(1)
			})
			for w := range seen {
				if seen[w].Load() != 1 {
					t.Fatalf("%s(n=%d, threads=%d): worker %d ran %d chunks, want 1",
						name, tc.n, tc.threads, w, seen[w].Load())
				}
			}
		}
	}
}

func TestForBoundsCoversExactlyOnce(t *testing.T) {
	bounds := []int{0, 3, 4, 90, 100}
	hits := make([]atomic.Int32, 100)
	workerSeen := make([]atomic.Int32, len(bounds)-1)
	ForBounds(bounds, func(lo, hi, w int) {
		workerSeen[w].Add(1)
		for i := lo; i < hi; i++ {
			hits[i].Add(1)
		}
	})
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d hit %d times", i, hits[i].Load())
		}
	}
	for w := range workerSeen {
		if workerSeen[w].Load() != 1 {
			t.Fatalf("chunk %d ran %d times", w, workerSeen[w].Load())
		}
	}
}

func TestPoolRunBounds(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	bounds := []int{0, 1, 2, 640, 1000}
	var total atomic.Int64
	p.RunBounds(bounds, func(lo, hi, _ int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		total.Add(s)
	})
	if total.Load() != expectedSum(1000) {
		t.Fatalf("RunBounds sum %d, want %d", total.Load(), expectedSum(1000))
	}
	// Degenerate single chunk runs inline.
	ran := false
	p.RunBounds([]int{0, 10}, func(lo, hi, w int) {
		ran = lo == 0 && hi == 10 && w == 0
	})
	if !ran {
		t.Fatal("single-chunk RunBounds did not run inline with worker 0")
	}
	// Empty bounds are a no-op.
	p.RunBounds(nil, func(lo, hi, w int) { t.Fatal("body ran for nil bounds") })
}

func TestExecDispatch(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	bounds := []int{0, 500, 1000}
	for name, e := range map[string]Exec{
		"zero":        {},
		"pool":        {Pool: p},
		"bounds":      {Bounds: bounds},
		"pool+bounds": {Pool: p, Bounds: bounds},
	} {
		var total atomic.Int64
		e.Run(1000, 4, func(lo, hi, _ int) {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i)
			}
			total.Add(s)
		})
		if total.Load() != expectedSum(1000) {
			t.Fatalf("Exec %s: sum %d, want %d", name, total.Load(), expectedSum(1000))
		}
	}
}

func TestPoolConcurrentRegions(t *testing.T) {
	// Concurrent Run calls must serialise, not corrupt the shared join
	// WaitGroup. Exercised under -race in check.sh.
	p := NewPool(4)
	defer p.Close()
	done := make(chan int64)
	for g := 0; g < 8; g++ {
		go func() {
			var total atomic.Int64
			p.Run(300, 4, func(lo, hi, _ int) {
				var s int64
				for i := lo; i < hi; i++ {
					s += int64(i)
				}
				total.Add(s)
			})
			done <- total.Load()
		}()
	}
	for g := 0; g < 8; g++ {
		if got := <-done; got != expectedSum(300) {
			t.Fatalf("concurrent region sum %d, want %d", got, expectedSum(300))
		}
	}
}
