package parallel

import (
	"fmt"
	"sort"
	"sync"
)

// This file implements nonzero-balanced work partitioning — the merge-path
// family of schedules the SpMM/SpMV load-balancing literature (SELL-C-σ,
// merge-based CSR) uses to keep skewed matrices from serialising on their
// heavy rows. OpenMP static scheduling (ChunkBounds) gives every worker the
// same number of *rows*; BalancedBounds gives every worker the same number
// of *nonzeros*, reading the split points straight off a CSR-style prefix
// sum.

// BalancedBounds partitions the n = len(rowptr)-1 rows described by a
// CSR-style prefix-sum array into at most `chunks` contiguous chunks of
// near-equal nonzero count. The returned bounds have length cn+1 for cn
// effective chunks (cn <= chunks): chunk i covers rows
// [bounds[i], bounds[i+1]). Chunks are never empty, so a single row heavier
// than a fair share simply becomes its own chunk and the remaining rows are
// rebalanced around it.
//
// When the matrix has no stored entries, the split degenerates to the
// static ChunkBounds partition so row-wise work (zeroing the output) still
// parallelises.
func BalancedBounds(rowptr []int32, chunks int) []int {
	n := len(rowptr) - 1
	if n < 0 {
		panic("parallel: BalancedBounds on empty rowptr")
	}
	if chunks < 1 {
		chunks = 1
	}
	if chunks > n {
		chunks = max(n, 1)
	}
	total := int64(rowptr[n])
	bounds := make([]int, 1, chunks+1)
	if total == 0 {
		for w := 0; w < chunks; w++ {
			_, hi := ChunkBounds(n, chunks, w)
			if hi > bounds[len(bounds)-1] {
				bounds = append(bounds, hi)
			}
		}
		return bounds
	}
	for w := 1; w < chunks; w++ {
		target := int32(total * int64(w) / int64(chunks))
		// First row whose prefix sum passes the target: rows before it hold
		// <= target nonzeros.
		cut := sort.Search(n, func(i int) bool { return rowptr[i+1] > target })
		prev := bounds[len(bounds)-1]
		switch {
		case cut > prev:
			bounds = append(bounds, cut)
		case cut == prev:
			// Row `prev` alone overruns this share: it is a heavy row
			// spanning several fair shares. Close it into its own chunk so
			// the rows after it can still spread out.
			if prev+1 < n {
				bounds = append(bounds, prev+1)
			}
		default:
			// This share's boundary falls inside rows already assigned.
		}
	}
	if bounds[len(bounds)-1] != n {
		bounds = append(bounds, n)
	}
	return bounds
}

// ValidateBounds checks that bounds describe a partition of [0, n): strictly
// increasing, starting at 0 and ending at n. Kernel tests use it to pin the
// partition invariants the balanced schedules rely on.
func ValidateBounds(bounds []int, n int) error {
	if len(bounds) < 2 && n > 0 {
		return fmt.Errorf("parallel: bounds %v do not cover [0, %d)", bounds, n)
	}
	if n == 0 {
		return nil
	}
	if bounds[0] != 0 || bounds[len(bounds)-1] != n {
		return fmt.Errorf("parallel: bounds %v endpoints, want 0 and %d", bounds, n)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return fmt.Errorf("parallel: bounds %v not strictly increasing at %d", bounds, i)
		}
	}
	return nil
}

// ForBounds executes body over the precomputed chunks, one goroutine per
// chunk. body receives the chunk's half-open range and the chunk index as
// its worker id (the same worker-id contract as For).
func ForBounds(bounds []int, body func(lo, hi, worker int)) {
	body = traceBody(body)
	chunks := len(bounds) - 1
	if chunks <= 0 {
		return
	}
	countRegion(obsRegionsBounds, chunks, boundsItems(bounds))
	if chunks == 1 {
		body(bounds[0], bounds[1], 0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(chunks)
	for w := 0; w < chunks; w++ {
		go func(w int) {
			defer wg.Done()
			body(bounds[w], bounds[w+1], w)
		}(w)
	}
	wg.Wait()
}

// Exec selects the execution machinery for one parallel loop: an optional
// persistent worker pool (reusing warmed goroutines instead of spawning
// fresh ones per call) and optional precomputed chunk bounds (nonzero-
// balanced instead of row-static). The zero value behaves exactly like For.
type Exec struct {
	// Pool, when non-nil, runs the chunks on the persistent pool.
	Pool *Pool
	// Bounds, when non-nil, are precomputed chunk bounds (for example from
	// BalancedBounds); the loop runs len(Bounds)-1 chunks and ignores the
	// static partition of [0, n).
	Bounds []int
}

// Run executes body over [0, n) under the configured machinery. With nil
// Bounds the loop is split into min(threads, n) static chunks exactly like
// For; with Bounds set, n and threads only bound the degenerate serial case
// and the chunk count comes from the bounds. The worker id passed to body is
// always the chunk index — see the worker-id contract on For.
func (e Exec) Run(n, threads int, body func(lo, hi, worker int)) {
	if e.Bounds != nil {
		if e.Pool != nil {
			e.Pool.RunBounds(e.Bounds, body)
			return
		}
		ForBounds(e.Bounds, body)
		return
	}
	if e.Pool != nil {
		e.Pool.Run(n, threads, body)
		return
	}
	For(n, threads, body)
}
