package parallel

import (
	"sync/atomic"

	"repro/internal/trace"
)

// tracer is the package-level span sink. A package-level hook (rather than a
// parameter on every loop runner) keeps the loop APIs unchanged for the ~40
// kernels that call them; the cost when unset or disabled is one atomic load
// per loop *call* — not per chunk — and zero allocations, preserving the
// kernels' zero-allocation audit.
var tracer atomic.Pointer[trace.Tracer]

// SetTracer installs (or, with nil, removes) the tracer that receives
// per-worker chunk spans from every loop runner in this package. Chunk spans
// land on lane worker+1 (lane 0 belongs to the sequential pipeline) with the
// chunk's iteration count as the span argument, which is what makes load
// imbalance visible as ragged lane ends in the Chrome trace.
func SetTracer(t *trace.Tracer) { tracer.Store(t) }

// traceBody wraps body with chunk-span recording when a tracer is installed
// and enabled; otherwise it returns body untouched (no closure, no alloc).
func traceBody(body func(lo, hi, worker int)) func(lo, hi, worker int) {
	t := tracer.Load()
	if !t.Enabled() {
		return body
	}
	return func(lo, hi, worker int) {
		s := t.Start()
		body(lo, hi, worker)
		t.End(worker+1, trace.PhaseChunk, s, int64(hi-lo))
	}
}
