package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestForCtxCancelledBeforeStart: an already-cancelled context executes no
// chunks and reports the cancellation.
func TestForCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForCtx(ctx, 10_000, 8, func(lo, hi, worker int) {
		ran.Add(int64(hi - lo))
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d iterations ran under a cancelled context", ran.Load())
	}
}

// TestForCtxNilBehavesLikeFor: nil context covers the full range and
// returns nil.
func TestForCtxNilBehavesLikeFor(t *testing.T) {
	var ran atomic.Int64
	if err := ForCtx(nil, 1000, 4, func(lo, hi, worker int) {
		ran.Add(int64(hi - lo))
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 1000 {
		t.Fatalf("covered %d of 1000", ran.Load())
	}
}

// TestForCtxCompletesUncancelled: a live context behaves like For and
// covers every index exactly once.
func TestForCtxCompletesUncancelled(t *testing.T) {
	seen := make([]atomic.Int32, 997)
	if err := ForCtx(context.Background(), len(seen), 7, func(lo, hi, worker int) {
		for i := lo; i < hi; i++ {
			seen[i].Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, seen[i].Load())
		}
	}
}

// TestForDynamicCtxCancelledBeforeStart: no chunk is claimed under an
// already-cancelled context, on both the serial and parallel paths.
func TestForDynamicCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, threads := range []int{1, 8} {
		var ran atomic.Int64
		err := ForDynamicCtx(ctx, 10_000, threads, 16, func(lo, hi, worker int) {
			ran.Add(int64(hi - lo))
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("threads=%d: err = %v", threads, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("threads=%d: %d iterations ran", threads, ran.Load())
		}
	}
}

// TestForDynamicCtxStopsMidLoop: cancelling from inside the body stops the
// workers within one chunk each — the remaining chunks are never executed.
func TestForDynamicCtxStopsMidLoop(t *testing.T) {
	const n, chunk, threads = 100_000, 1, 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	err := ForDynamicCtx(ctx, n, threads, chunk, func(lo, hi, worker int) {
		if ran.Add(int64(hi-lo)) >= 10 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Each worker may finish the chunk it already claimed, nothing more.
	if got := ran.Load(); got > 10+threads*chunk {
		t.Fatalf("ran %d iterations after cancellation (bound %d)", got, 10+threads*chunk)
	}
}

// TestPoolRunCtxCancelledBeforeStart: the pool path of satellite (d) — a
// worker-pool run with an already-cancelled context returns promptly
// without executing any of the remaining chunks.
func TestPoolRunCtxCancelledBeforeStart(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	start := time.Now()
	err := p.RunCtx(ctx, 1_000_000, 8, func(lo, hi, worker int) {
		ran.Add(int64(hi - lo))
		time.Sleep(10 * time.Millisecond) // would make a full run take ~20ms+
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d iterations ran under a cancelled context", ran.Load())
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("RunCtx took %v on a cancelled context", d)
	}
}

// TestPoolRunCtxDropsQueuedChunks: chunks still queued when the context is
// cancelled are dropped; the pool stays usable afterwards.
func TestPoolRunCtxDropsQueuedChunks(t *testing.T) {
	p := NewPool(2)
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	// 16 chunks on 2 workers: the first bodies cancel the context, so the
	// chunks queued behind them must be dropped by their ctx re-check.
	err := p.RunCtx(ctx, 1600, 16, func(lo, hi, worker int) {
		ran.Add(1)
		cancel()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got > 4 {
		t.Fatalf("%d chunks ran after cancellation", got)
	}
	// The same pool still completes a fresh, uncancelled run.
	var after atomic.Int64
	if err := p.RunCtx(context.Background(), 100, 4, func(lo, hi, worker int) {
		after.Add(int64(hi - lo))
	}); err != nil {
		t.Fatal(err)
	}
	if after.Load() != 100 {
		t.Fatalf("pool covered %d of 100 after a cancelled run", after.Load())
	}
}
