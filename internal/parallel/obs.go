package parallel

import "repro/internal/obs"

// Dispatch counters, exported to the process-wide metrics registry. Each
// fork/join region does two or three atomic adds at entry — never per chunk
// and never inside body — so the package's no-alloc dispatch contract and
// the kernels' allocation audit are unaffected.
var (
	obsRegionsStatic = obs.NewCounter(`spmm_parallel_regions_total{mode="static"}`,
		"Fork/join regions dispatched, by scheduling machinery.")
	obsRegionsDynamic = obs.NewCounter(`spmm_parallel_regions_total{mode="dynamic"}`,
		"Fork/join regions dispatched, by scheduling machinery.")
	obsRegionsBounds = obs.NewCounter(`spmm_parallel_regions_total{mode="bounds"}`,
		"Fork/join regions dispatched, by scheduling machinery.")
	obsRegionsPool = obs.NewCounter(`spmm_parallel_regions_total{mode="pool"}`,
		"Fork/join regions dispatched, by scheduling machinery.")
	obsChunks = obs.NewCounter("spmm_parallel_chunks_total",
		"Chunks dispatched across all regions.")
	obsItems = obs.NewCounter("spmm_parallel_items_total",
		"Loop iterations (rows/triplets/slices) covered by dispatched regions.")
)

// countRegion records one region of `chunks` chunks over `items` iterations.
func countRegion(mode *obs.Counter, chunks, items int) {
	mode.Inc()
	obsChunks.Add(int64(chunks))
	obsItems.Add(int64(items))
}

// boundsItems returns the iteration count a bounds slice covers.
func boundsItems(bounds []int) int {
	if len(bounds) < 2 {
		return 0
	}
	return bounds[len(bounds)-1] - bounds[0]
}
