// Package parallel is the suite's CPU threading substrate, standing in for
// the OpenMP runtime the thesis uses. It provides OpenMP-style loop
// scheduling with an explicit thread count that — exactly like
// omp_set_num_threads — may exceed the number of physical cores. The
// oversubscribed regime is what lets the suite reproduce the thesis'
// hyperthreading observations (Studies 3 and 3.1).
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxThreads returns the suite's view of available hardware parallelism.
func MaxThreads() int { return runtime.GOMAXPROCS(0) }

// ChunkBounds returns the half-open range [lo, hi) of the i-th of `chunks`
// near-equal contiguous chunks of [0, n), distributing the remainder over
// the leading chunks as OpenMP static scheduling does.
func ChunkBounds(n, chunks, i int) (lo, hi int) {
	if chunks <= 0 {
		panic(fmt.Sprintf("parallel: ChunkBounds with %d chunks", chunks))
	}
	base := n / chunks
	rem := n % chunks
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// For executes body over [0, n) split into `threads` contiguous chunks, one
// goroutine per chunk (OpenMP "schedule(static)"). threads < 1 is treated as
// 1.
//
// Worker-id contract: body receives its chunk bounds and a worker id that is
// the *chunk index*, in [0, min(threads, n)) — when threads exceeds n the
// thread count is clamped to n and ids stay dense. Every loop runner in this
// package (For, ForCtx, Pool.Run, Pool.RunBounds, ForBounds, Exec.Run)
// follows the same contract, so per-worker scratch indexed by the id is safe
// regardless of the machinery; the id is never a pool-goroutine identity.
func For(n, threads int, body func(lo, hi, worker int)) {
	body = traceBody(body)
	if threads < 1 {
		threads = 1
	}
	if threads > n {
		threads = max(n, 1)
	}
	countRegion(obsRegionsStatic, threads, n)
	if threads == 1 {
		body(0, n, 0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	for w := 0; w < threads; w++ {
		go func(w int) {
			defer wg.Done()
			lo, hi := ChunkBounds(n, threads, w)
			if lo < hi {
				body(lo, hi, w)
			}
		}(w)
	}
	wg.Wait()
}

// ForCtx is For with cooperative cancellation: each worker checks ctx once
// before running its chunk, and the call returns ctx.Err() if the context
// was cancelled at any point. A chunk that has already started runs to
// completion (long-running bodies should check ctx themselves for finer
// granularity). A nil ctx behaves exactly like For.
func ForCtx(ctx context.Context, n, threads int, body func(lo, hi, worker int)) error {
	if ctx == nil {
		For(n, threads, body)
		return nil
	}
	body = traceBody(body)
	if threads < 1 {
		threads = 1
	}
	if threads > n {
		threads = max(n, 1)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	countRegion(obsRegionsStatic, threads, n)
	if threads == 1 {
		body(0, n, 0)
		return ctx.Err()
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	for w := 0; w < threads; w++ {
		go func(w int) {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			lo, hi := ChunkBounds(n, threads, w)
			if lo < hi {
				body(lo, hi, w)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

// ForDynamic executes body over [0, n) using self-scheduled chunks of the
// given size (OpenMP "schedule(dynamic, chunk)"). It balances irregular row
// costs better than For at the price of an atomic fetch per chunk.
func ForDynamic(n, threads, chunk int, body func(lo, hi, worker int)) {
	body = traceBody(body)
	if threads < 1 {
		threads = 1
	}
	if chunk < 1 {
		chunk = 1
	}
	countRegion(obsRegionsDynamic, (n+chunk-1)/chunk, n)
	if threads == 1 {
		body(0, n, 0)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(threads)
	for w := 0; w < threads; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := min(lo+chunk, n)
				body(lo, hi, w)
			}
		}(w)
	}
	wg.Wait()
}

// ForDynamicCtx is ForDynamic with cooperative cancellation: every worker
// checks ctx before claiming each chunk, so a cancelled context stops the
// loop within one chunk's worth of work per worker. Remaining chunks are
// never executed. A nil ctx behaves exactly like ForDynamic.
func ForDynamicCtx(ctx context.Context, n, threads, chunk int, body func(lo, hi, worker int)) error {
	if ctx == nil {
		ForDynamic(n, threads, chunk, body)
		return nil
	}
	body = traceBody(body)
	if threads < 1 {
		threads = 1
	}
	if chunk < 1 {
		chunk = 1
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	countRegion(obsRegionsDynamic, (n+chunk-1)/chunk, n)
	if threads == 1 {
		for lo := 0; lo < n; lo += chunk {
			if err := ctx.Err(); err != nil {
				return err
			}
			body(lo, min(lo+chunk, n), 0)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(threads)
	for w := 0; w < threads; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				body(lo, min(lo+chunk, n), w)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

// Pool is a persistent worker pool — a warmed OpenMP thread team. A
// campaign keeps one pool per process so repeated kernel invocations reuse
// the same goroutines instead of paying spawn plus WaitGroup churn per
// Calculate call, which dominates at small k and in best-thread sweeps.
//
// Dispatch is allocation-free: chunks travel to workers as plain structs
// over a buffered channel and the fork/join WaitGroup lives in the pool, so
// the only steady-state heap traffic of a pooled kernel call is the caller's
// own body closure. Run serialises concurrent callers (one fork/join region
// at a time), matching the single OpenMP team the thesis' suite uses.
type Pool struct {
	workers  int
	tasks    chan poolTask
	mu       sync.Mutex     // serialises Run/RunBounds/RunCtx
	joinWG   sync.WaitGroup // completion of the current region's chunks
	workerWG sync.WaitGroup // worker goroutine lifetimes
	closed   atomic.Bool
}

// poolTask is one chunk of a fork/join region. ctx is nil for non-Ctx runs.
type poolTask struct {
	lo, hi, worker int
	body           func(lo, hi, worker int)
	ctx            context.Context
}

// NewPool starts a pool of the given number of worker goroutines.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		workers: workers,
		tasks:   make(chan poolTask, workers),
	}
	p.workerWG.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.workerWG.Done()
			for t := range p.tasks {
				if t.ctx == nil || t.ctx.Err() == nil {
					t.body(t.lo, t.hi, t.worker)
				}
				p.joinWG.Done()
			}
		}()
	}
	return p
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// Run executes body over [0, n) in `threads` static chunks using pool
// workers. If threads exceeds the pool size, the extra chunks queue behind
// the busy workers — the same oversubscription behaviour as For, with reuse
// of the warmed goroutines. Worker ids follow the For contract: the chunk
// index in [0, min(threads, n)), not a pool-goroutine identity.
func (p *Pool) Run(n, threads int, body func(lo, hi, worker int)) {
	body = traceBody(body)
	if threads < 1 {
		threads = 1
	}
	if threads > n {
		threads = max(n, 1)
	}
	countRegion(obsRegionsPool, threads, n)
	if threads == 1 {
		body(0, n, 0)
		return
	}
	p.dispatch(nil, n, threads, nil, body)
}

// RunBounds executes body over the precomputed chunks (for example from
// BalancedBounds) on pool workers. body's worker id is the chunk index.
func (p *Pool) RunBounds(bounds []int, body func(lo, hi, worker int)) {
	body = traceBody(body)
	chunks := len(bounds) - 1
	if chunks <= 0 {
		return
	}
	countRegion(obsRegionsPool, chunks, boundsItems(bounds))
	if chunks == 1 {
		body(bounds[0], bounds[1], 0)
		return
	}
	p.dispatch(nil, 0, chunks, bounds, body)
}

// RunCtx is Run with cooperative cancellation. An already-cancelled context
// returns immediately without enqueueing any chunk; otherwise each queued
// chunk re-checks ctx before executing, so remaining chunks are dropped as
// soon as the context is cancelled. A nil ctx behaves exactly like Run.
func (p *Pool) RunCtx(ctx context.Context, n, threads int, body func(lo, hi, worker int)) error {
	if ctx == nil {
		p.Run(n, threads, body)
		return nil
	}
	body = traceBody(body)
	if threads < 1 {
		threads = 1
	}
	if threads > n {
		threads = max(n, 1)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	countRegion(obsRegionsPool, threads, n)
	if threads == 1 {
		body(0, n, 0)
		return ctx.Err()
	}
	p.dispatch(ctx, n, threads, nil, body)
	return ctx.Err()
}

// dispatch queues one fork/join region of `chunks` chunks and waits for the
// join. With nil bounds the region is the static partition of [0, n); with
// bounds set they hold the precomputed splits. The pool-level mutex keeps
// regions from interleaving so the shared join WaitGroup stays coherent, and
// nothing here reaches the heap — chunks are plain struct sends.
func (p *Pool) dispatch(ctx context.Context, n, chunks int, bounds []int, body func(lo, hi, worker int)) {
	if p.closed.Load() {
		panic("parallel: Run on closed Pool")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.joinWG.Add(chunks)
	for w := 0; w < chunks; w++ {
		var lo, hi int
		if bounds != nil {
			lo, hi = bounds[w], bounds[w+1]
		} else {
			lo, hi = ChunkBounds(n, chunks, w)
		}
		if lo >= hi {
			p.joinWG.Done()
			continue
		}
		p.tasks <- poolTask{lo: lo, hi: hi, worker: w, body: body, ctx: ctx}
	}
	p.joinWG.Wait()
}

// Close shuts the pool down and waits for the workers to exit. Run must not
// be called after Close.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.tasks)
	}
	p.workerWG.Wait()
}
