package tune

import (
	"sort"

	"repro/internal/advisor"
)

// Profile is one matrix's learned tuning state — the artifact that
// persists through the serving WAL/snapshot path so a recovered or
// re-registered matrix starts warm instead of re-exploring. JSON encoding
// is deterministic (no maps), which the WAL's CRC-over-remarshal check
// requires.
type Profile struct {
	// ID is the content-addressed matrix ID the profile describes.
	ID string `json:"id"`
	// Features is the advisor feature vector of the matrix at learn time;
	// recovery discards a profile whose features do not match the live
	// matrix.
	Features advisor.FeatureSummary `json:"features"`
	// Incumbent is the currently-serving variant.
	Incumbent string `json:"incumbent"`
	// PlanVersion is the serving-plan version the incumbent holds.
	PlanVersion int64 `json:"plan_version"`
	// Trials/Rejects are lifetime counters for the matrix.
	Trials  uint64 `json:"trials"`
	Rejects uint64 `json:"rejects,omitempty"`
	// Arms are the measured variant rankings, fastest first.
	Arms []ArmProfile `json:"arms,omitempty"`
	// History is the promotion trail, oldest first.
	History []Promotion `json:"history,omitempty"`
}

// ArmProfile is one variant's measurement summary inside a Profile.
type ArmProfile struct {
	Variant string `json:"variant"`
	// Samples is the lifetime shadow-trial count.
	Samples int `json:"samples"`
	// P50Micros is the median of the current window.
	P50Micros float64 `json:"p50_micros"`
	// Window is the recent per-dispatch timings in microseconds, oldest
	// first — persisted so recovery restores the estimator, not just the
	// point estimate.
	Window []float64 `json:"window,omitempty"`
	// Disqualified marks an arm that failed bitwise verification.
	Disqualified bool `json:"disqualified,omitempty"`
}

// Promotion is one incumbent change in a matrix's decision trail.
type Promotion struct {
	From          string  `json:"from"`
	To            string  `json:"to"`
	FromP50Micros float64 `json:"from_p50_micros"`
	ToP50Micros   float64 `json:"to_p50_micros"`
	// Trials is the matrix's trial count when the promotion fired.
	Trials uint64 `json:"trials"`
	// UnixNanos timestamps the promotion (Config.Now).
	UnixNanos int64 `json:"unix_nanos"`
}

// profileLocked snapshots the state as a Profile. Caller holds t.mu.
func (st *state) profileLocked() *Profile {
	p := &Profile{
		ID:          st.id,
		Features:    st.feat,
		PlanVersion: st.planVersion,
		Trials:      st.trials,
		Rejects:     st.rejects,
		History:     append([]Promotion(nil), st.history...),
	}
	if st.incumbent != nil {
		p.Incumbent = st.incumbent.name
	}
	for _, a := range st.arms {
		if a.total == 0 && !a.disq {
			continue
		}
		p.Arms = append(p.Arms, ArmProfile{
			Variant:      a.name,
			Samples:      a.total,
			P50Micros:    a.p50(),
			Window:       append([]float64(nil), a.window...),
			Disqualified: a.disq,
		})
	}
	sort.SliceStable(p.Arms, func(i, j int) bool {
		if p.Arms[i].Disqualified != p.Arms[j].Disqualified {
			return !p.Arms[i].Disqualified
		}
		return p.Arms[i].P50Micros < p.Arms[j].P50Micros
	})
	return p
}

// Profiles snapshots every tracked matrix's profile — the snapshotter's
// source for profile records.
func (t *Tuner) Profiles() []*Profile {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]string, 0, len(t.states))
	for id := range t.states {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Profile, 0, len(ids))
	for _, id := range ids {
		out = append(out, t.states[id].profileLocked())
	}
	return out
}

// Profile returns one matrix's current profile, or nil if untracked.
func (t *Tuner) Profile(id string) *Profile {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.states[id]
	if st == nil {
		return nil
	}
	return st.profileLocked()
}

// Measured converts a matrix's measured arm rankings into the advisor's
// Measurement form (fastest first, disqualified arms omitted) — what the
// register response and /v1/tune attach to advisor.Report.Measured.
func (t *Tuner) Measured(id string) []advisor.Measurement {
	prof := t.Profile(id)
	if prof == nil {
		return nil
	}
	var out []advisor.Measurement
	for _, a := range prof.Arms {
		if a.Disqualified || a.Samples == 0 {
			continue
		}
		out = append(out, advisor.Measurement{
			Variant: a.Variant, Samples: a.Samples, P50Micros: a.P50Micros,
		})
	}
	return out
}

// MatrixStats is one matrix's row in the /v1/tune stats payload.
type MatrixStats struct {
	ID          string       `json:"id"`
	Incumbent   string       `json:"incumbent"`
	PlanVersion int64        `json:"plan_version"`
	Offers      uint64       `json:"offers"`
	Sampled     uint64       `json:"sampled"`
	Trials      uint64       `json:"trials"`
	Rejects     uint64       `json:"rejects"`
	Settled     bool         `json:"settled"`
	Arms        []ArmProfile `json:"arms,omitempty"`
	History     []Promotion  `json:"history,omitempty"`
}

// Stats is the tuner's full decision-trail snapshot (the /v1/tune body).
type Stats struct {
	Enabled    bool          `json:"enabled"`
	Duty       float64       `json:"duty"`
	MinSamples int           `json:"min_samples"`
	Margin     float64       `json:"margin"`
	Trials     int64         `json:"trials"`
	Promotions int64         `json:"promotions"`
	Rejects    int64         `json:"rejects"`
	Dropped    int64         `json:"dropped"`
	Stale      int64         `json:"stale"`
	Matrices   []MatrixStats `json:"matrices,omitempty"`
}

// Stats snapshots the tuner's counters and per-matrix state.
func (t *Tuner) Stats() Stats {
	s := Stats{
		Enabled:    true,
		Duty:       t.cfg.Duty,
		MinSamples: t.cfg.MinSamples,
		Margin:     t.cfg.Margin,
		Trials:     t.trials.Load(),
		Promotions: t.promotions.Load(),
		Rejects:    t.rejects.Load(),
		Dropped:    t.dropped.Load(),
		Stale:      t.stale.Load(),
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]string, 0, len(t.states))
	for id := range t.states {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		st := t.states[id]
		prof := st.profileLocked()
		ms := MatrixStats{
			ID:          id,
			Incumbent:   prof.Incumbent,
			PlanVersion: st.planVersion,
			Offers:      st.offers,
			Sampled:     st.taken,
			Trials:      st.trials,
			Rejects:     st.rejects,
			Settled:     st.settled,
			Arms:        prof.Arms,
			History:     prof.History,
		}
		s.Matrices = append(s.Matrices, ms)
	}
	return s
}
