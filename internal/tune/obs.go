package tune

import "repro/internal/obs"

// Auto-tuner metrics. The tuner's whole value is its decision trail — every
// trial, rejection, and promotion lands here so a `-metrics` monitor can
// watch convergence without scraping /v1/tune.
var (
	obsTrials = obs.NewCounter("spmm_tune_trials_total",
		"Shadow measurement trials completed (one paired incumbent/challenger run).")
	obsPromotions = obs.NewCounter("spmm_tune_promotions_total",
		"Incumbent variant changes committed to the serving plan.")
	obsRejects = obs.NewCounter("spmm_tune_rejects_total",
		"Trials discarded because the incumbent re-run did not bitwise-match the served result.")
	obsDisqualified = obs.NewCounter("spmm_tune_disqualified_total",
		"Arms permanently removed after a challenger error or bitwise mismatch.")
	obsDropped = obs.NewCounter("spmm_tune_dropped_total",
		"Sampled multiplies dropped because the trial queue was full.")
	obsStale = obs.NewCounter("spmm_tune_stale_total",
		"Queued samples discarded because the serving plan changed before the trial ran.")
	obsTrialSeconds = obs.NewHistogram("spmm_tune_trial_seconds",
		"Wall time of one paired shadow trial (both arms, off the request path).")
	obsRegret = obs.NewGauge("spmm_tune_regret",
		"Mean relative p50 gap between served incumbents and the best measured arm (0 = serving the fastest known variant everywhere).")
	obsDuty = obs.NewGauge("spmm_tune_duty_cycle",
		"Configured fraction of live multiplies sampled for shadow measurement.")
)
