// Package tune is the serving layer's online auto-tuner: a bandit-style
// control loop that treats the kernel variant registry (kernels.Variants,
// filtered to the servable Opts arms) as an arm space and live traffic as
// the measurement budget.
//
// The paper's central finding is that no single sparse format wins across
// matrices; the advisor turns that into a per-matrix heuristic, and this
// package turns the heuristic into a prior. Per registered matrix the
// tuner starts from the advisor's pick (the incumbent), shadow-measures
// challenger variants on a small duty cycle of live multiplies — the
// challenger re-runs the exact request panel off the critical path, its
// output is verified bitwise against the served result before its timing
// is trusted — and promotes a challenger once its measured p50 beats the
// incumbent's by a hysteresis margin across a minimum sample count.
// Promotion installs a new serving-plan version through a callback
// (internal/serve re-prepares the format through its single-flight cache
// path) and the learned profile persists through the serve WAL so a
// restart starts warm.
//
// Everything is deterministic under test: execution and time are injected
// through Config.Exec/Config.Now, duty cycling is a counter (not a coin
// flip), and exploration is round-robin until every arm has its minimum
// samples.
package tune

import (
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/advisor"
	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

// ExecFunc runs one variant against in, overwriting out, and reports how
// long the dispatch took. The default wraps kernels.RunVariant with a
// monotonic-clock measurement; tests inject scripted durations.
type ExecFunc func(variant string, in *kernels.VariantInput, out *matrix.Dense[float64]) (time.Duration, error)

// Config tunes a Tuner. The zero value of every field has a usable
// default filled in by New.
type Config struct {
	// Duty is the fraction of live multiplies that spawn a shadow trial
	// (default 0.05, clamped to [0, 0.5]). Once a matrix settles — every
	// arm measured, no challenger within the margin — its effective duty
	// drops by settleFactor so a converged matrix pays almost nothing.
	Duty float64
	// MinSamples is the per-arm sample count required before the arm can
	// be promoted over (or defend) the incumbency (default 8).
	MinSamples int
	// Margin is the promotion hysteresis: a challenger's p50 must beat
	// the incumbent's by this fraction (default 0.10). It is what keeps
	// two statistically-equal arms from flapping the plan.
	Margin float64
	// Window is the per-arm sliding sample window the p50 is computed
	// over (default 32) — old measurements age out, so a drifting host
	// re-converges.
	Window int
	// QueueDepth bounds the pending-trial buffer (default 16); when it is
	// full, offers are dropped (counted, never blocking the data path).
	QueueDepth int
	// Threads is the dispatch width trials run at — set it to the serving
	// thread count so measurements transfer.
	Threads int
	// Pool runs the trial dispatches; nil makes the tuner own one sized
	// to Threads, so trials never contend with live serving dispatches
	// for pool slots.
	Pool *parallel.Pool
	// Promote installs a newly-promoted variant as the matrix's serving
	// plan and returns the new plan version. Required for promotions to
	// take effect; nil leaves the tuner observe-only.
	Promote func(id string, pr Promotion) (int64, error)
	// Persist durably saves the matrix's learned profile (called after
	// every promotion); nil disables persistence.
	Persist func(id string, p *Profile) error
	// Log receives tuner lifecycle notes; nil discards them.
	Log *slog.Logger
	// Seed drives the (rarely used) post-settle exploration choice.
	Seed int64
	// Exec overrides trial execution — the test seam for deterministic
	// timings and scripted wrong results.
	Exec ExecFunc
	// Now overrides the promotion-history clock (tests).
	Now func() time.Time
}

// settleFactor divides the duty cycle once a matrix has converged.
const settleFactor = 10

// Tuner is the auto-tuner engine: one background worker draining a
// bounded trial queue, per-matrix arm statistics, and the promotion loop.
type Tuner struct {
	cfg     Config
	pool    *parallel.Pool
	ownPool bool
	rng     *rand.Rand // worker goroutine only

	mu     sync.Mutex
	states map[string]*state
	closed bool

	queue chan any // *sample | *flushReq
	done  chan struct{}

	trials     atomic.Int64
	promotions atomic.Int64
	rejects    atomic.Int64
	dropped    atomic.Int64
	stale      atomic.Int64
}

// sample is one captured multiply: the request panel and the bitwise
// ground truth the server actually returned for it.
type sample struct {
	id          string
	variant     string // the arm that served it
	planVersion int64
	b           *matrix.Dense[float64]
	served      *matrix.Dense[float64]
	k           int
}

type flushReq struct{ done chan struct{} }

// arm is one variant's measurement state for one matrix.
type arm struct {
	name string
	v    kernels.Variant
	// window holds the most recent sample durations in microseconds,
	// oldest first, capped at Config.Window.
	window []float64
	total  int // lifetime samples
	// disq marks an arm that failed bitwise verification or whose format
	// could not be prepared — never sampled or promoted again.
	disq bool
}

func (a *arm) p50() float64 {
	if len(a.window) == 0 {
		return 0
	}
	s := append([]float64(nil), a.window...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func (a *arm) push(micros float64, cap int) {
	a.window = append(a.window, micros)
	if len(a.window) > cap {
		a.window = a.window[len(a.window)-cap:]
	}
	a.total++
}

// state is one matrix's tuning state. The lab fields (in, labErr) are
// touched only by the worker goroutine; everything else is guarded by
// Tuner.mu.
type state struct {
	id          string
	coo         *matrix.COO[float64]
	block       int
	feat        advisor.FeatureSummary
	arms        []*arm
	byName      map[string]*arm
	incumbent   *arm
	planVersion int64
	cursor      int // round-robin exploration cursor
	settled     bool

	offers  uint64
	taken   uint64
	trials  uint64
	rejects uint64
	history []Promotion

	in kernels.VariantInput // worker-only: lazily materialized formats
}

// New builds and starts a Tuner; Close stops it.
func New(cfg Config) *Tuner {
	if cfg.Duty <= 0 {
		cfg.Duty = 0.05
	}
	if cfg.Duty > 0.5 {
		cfg.Duty = 0.5
	}
	if cfg.MinSamples < 1 {
		cfg.MinSamples = 8
	}
	if cfg.Margin <= 0 {
		cfg.Margin = 0.10
	}
	if cfg.Window < 1 {
		cfg.Window = 32
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 16
	}
	if cfg.Threads < 1 {
		cfg.Threads = parallel.MaxThreads()
	}
	if cfg.Exec == nil {
		cfg.Exec = func(variant string, in *kernels.VariantInput, out *matrix.Dense[float64]) (time.Duration, error) {
			t0 := time.Now()
			err := kernels.RunVariant(variant, in, out)
			return time.Since(t0), err
		}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	t := &Tuner{
		cfg:    cfg,
		pool:   cfg.Pool,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		states: map[string]*state{},
		queue:  make(chan any, cfg.QueueDepth),
		done:   make(chan struct{}),
	}
	if t.pool == nil {
		t.pool = parallel.NewPool(cfg.Threads)
		t.ownPool = true
	}
	obsDuty.Set(cfg.Duty)
	go t.worker()
	return t
}

// Close stops the worker and releases the tuner's pool. Pending queued
// trials are drained (processed) first, so a Close right after a burst of
// offers still records them.
func (t *Tuner) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	close(t.queue)
	t.mu.Unlock()
	<-t.done
	if t.ownPool {
		t.pool.Close()
	}
}

// Flush blocks until every trial enqueued before the call has been
// processed — the synchronization point tests and the stats endpoint's
// consistency checks use. No wall clock involved.
func (t *Tuner) Flush() {
	fr := &flushReq{done: make(chan struct{})}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	// The send may block if the queue is full; the worker drains it
	// without needing anything Flush holds.
	select {
	case t.queue <- fr:
		<-fr.done
	case <-t.done:
	}
}

// Track registers a matrix with the tuner: incumbent is the serving plan's
// current variant (the advisor's pick at registration), block the BCSR
// block edge, feat the advisor feature vector (persisted with the profile
// so a recovered profile can be validated against the matrix it claims to
// describe).
func (t *Tuner) Track(id string, coo *matrix.COO[float64], block int, feat advisor.FeatureSummary, incumbent string, planVersion int64) {
	st := &state{
		id:          id,
		coo:         coo,
		block:       block,
		feat:        feat,
		byName:      map[string]*arm{},
		planVersion: planVersion,
	}
	st.in.COO = coo
	for _, v := range kernels.ServableVariants() {
		a := &arm{name: v.Name, v: v}
		st.arms = append(st.arms, a)
		st.byName[a.name] = a
	}
	st.incumbent = st.byName[incumbent]
	if st.incumbent == nil {
		// An incumbent outside the arm space (shouldn't happen — serve
		// derives it from the same registry) falls back to csr/opts-pool.
		st.incumbent = st.byName["csr/opts-pool"]
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.states[id]; ok {
		return
	}
	t.states[id] = st
}

// Restore is Track warm-started from a recovered profile. A profile whose
// feature vector does not match the live matrix (the content hash should
// make this impossible, but profiles travel through snapshots) is
// discarded and the matrix starts cold.
func (t *Tuner) Restore(id string, coo *matrix.COO[float64], block int, feat advisor.FeatureSummary, incumbent string, planVersion int64, prof *Profile) error {
	t.Track(id, coo, block, feat, incumbent, planVersion)
	if prof == nil {
		return nil
	}
	if prof.Features != feat {
		return fmt.Errorf("tune: profile for %s does not match the matrix's features; starting cold", id)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.states[id]
	for _, ap := range prof.Arms {
		a := st.byName[ap.Variant]
		if a == nil {
			continue
		}
		a.window = append([]float64(nil), ap.Window...)
		if len(a.window) > t.cfg.Window {
			a.window = a.window[len(a.window)-t.cfg.Window:]
		}
		a.total = ap.Samples
		a.disq = ap.Disqualified
	}
	st.trials = prof.Trials
	st.rejects = prof.Rejects
	st.history = append([]Promotion(nil), prof.History...)
	if a := st.byName[prof.Incumbent]; a != nil {
		st.incumbent = a
	}
	if prof.PlanVersion > st.planVersion {
		st.planVersion = prof.PlanVersion
	}
	return nil
}

// Rebase replaces a tracked matrix's ground truth after its canonical base
// changed under the same serving handle (a mutation-overlay compaction, or
// a cluster import of mutated state): the lab matrix, feature vector and
// plan version are swapped wholesale — the worker never mutates a live
// state in place, so a trial already in flight keeps racing against the
// old base and is dropped by its stale plan version. When the new feature
// vector drifted no more than keepWithin (max relative change across the
// advisor features), the arms' measured windows carry over — the matrix is
// still the same shape and the rankings stay informative; past the
// threshold every arm restarts cold. Returns whether the windows carried.
// An untracked id is simply tracked fresh (kept false).
func (t *Tuner) Rebase(id string, coo *matrix.COO[float64], block int, feat advisor.FeatureSummary, incumbent string, planVersion int64, keepWithin float64) (kept bool) {
	st := &state{
		id:          id,
		coo:         coo,
		block:       block,
		feat:        feat,
		byName:      map[string]*arm{},
		planVersion: planVersion,
	}
	st.in.COO = coo
	for _, v := range kernels.ServableVariants() {
		a := &arm{name: v.Name, v: v}
		st.arms = append(st.arms, a)
		st.byName[a.name] = a
	}
	st.incumbent = st.byName[incumbent]
	if st.incumbent == nil {
		st.incumbent = st.byName["csr/opts-pool"]
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	old := t.states[id]
	if old != nil && keepWithin > 0 && FeatureDrift(old.feat, feat) <= keepWithin {
		kept = true
		for _, a := range st.arms {
			oa := old.byName[a.name]
			if oa == nil {
				continue
			}
			a.window = append([]float64(nil), oa.window...)
			a.total = oa.total
			a.disq = oa.disq
		}
		st.trials = old.trials
		st.rejects = old.rejects
		st.history = old.history
		st.offers, st.taken = old.offers, old.taken
		st.settled = old.settled
		st.cursor = old.cursor
	}
	t.states[id] = st
	return kept
}

// FeatureDrift is the maximum relative change across the advisor feature
// vector — the scalar Rebase compares against its keep-threshold. A
// feature moving off zero counts as full drift.
func FeatureDrift(a, b advisor.FeatureSummary) float64 {
	max := 0.0
	rel := func(x, y float64) {
		d := math.Abs(x - y)
		if d == 0 {
			return
		}
		den := math.Max(math.Abs(x), math.Abs(y))
		if r := d / den; r > max {
			max = r
		}
	}
	rel(float64(a.MaxRow), float64(b.MaxRow))
	rel(a.AvgRow, b.AvgRow)
	rel(a.Ratio, b.Ratio)
	rel(a.Gini, b.Gini)
	rel(a.ELLOverhead, b.ELLOverhead)
	rel(a.BCSRFill4, b.BCSRFill4)
	rel(a.Density, b.Density)
	return max
}

// Offer hands the tuner one completed live multiply: the request panel b
// and the served result. On the configured duty cycle the pair is queued
// for a shadow trial; otherwise (or when the queue is full) it is
// dropped. Offer never blocks and never touches the panels synchronously
// — the caller must hand over ownership (the serving path's per-request
// panels are not reused). Returns whether the sample was queued.
func (t *Tuner) Offer(id, variant string, planVersion int64, b, served *matrix.Dense[float64], k int) bool {
	t.mu.Lock()
	st := t.states[id]
	if st == nil || t.closed {
		t.mu.Unlock()
		return false
	}
	st.offers++
	duty := t.cfg.Duty
	if st.settled {
		duty /= settleFactor
	}
	// Deterministic duty cycling: take the sample whenever the running
	// fraction crosses an integer — floor(n·duty) increments.
	take := int64(float64(st.offers)*duty) > int64(float64(st.offers-1)*duty)
	if take {
		st.taken++
	}
	t.mu.Unlock()
	if !take {
		return false
	}
	s := &sample{id: id, variant: variant, planVersion: planVersion, b: b, served: served, k: k}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return false
	}
	select {
	case t.queue <- s:
		t.mu.Unlock()
		return true
	default:
		t.mu.Unlock()
		t.dropped.Add(1)
		obsDropped.Inc()
		return false
	}
}

func (t *Tuner) worker() {
	defer close(t.done)
	for item := range t.queue {
		switch v := item.(type) {
		case *flushReq:
			close(v.done)
		case *sample:
			t.trial(v)
		}
	}
}

// trial runs one paired shadow measurement: re-execute the incumbent on
// the captured panel, verify it reproduces the served result bitwise,
// execute one challenger, verify the challenger against the incumbent,
// and only then trust both timings. Runs on the worker goroutine, on the
// tuner's own pool — never on the request path.
func (t *Tuner) trial(s *sample) {
	t.mu.Lock()
	st := t.states[s.id]
	if st == nil || st.incumbent == nil ||
		st.planVersion != s.planVersion || st.incumbent.name != s.variant {
		// The plan moved between capture and trial; the pair no longer
		// describes the incumbent. Drop it.
		t.mu.Unlock()
		t.stale.Add(1)
		obsStale.Inc()
		return
	}
	inc := st.incumbent
	ch := t.pickChallengerLocked(st)
	t.mu.Unlock()
	if ch == nil {
		return
	}

	// Materialize the formats the pair needs (worker-only lab state).
	if err := ensureFormat(&st.in, st.coo, st.block, inc.v.Format); err != nil {
		t.warn("incumbent format unavailable", "id", s.id, "variant", inc.name, "err", err)
		return
	}
	if err := ensureFormat(&st.in, st.coo, st.block, ch.v.Format); err != nil {
		t.disqualify(st, ch, "format prepare failed: "+err.Error())
		return
	}

	in := st.in // shallow copy; per-trial operands below
	in.B = s.b
	in.K = s.k
	in.Threads = t.cfg.Threads
	in.Pool = t.pool

	rows := st.coo.Rows
	outInc := matrix.NewDense[float64](rows, s.k)
	outCh := matrix.NewDense[float64](rows, s.k)

	// Paired back-to-back measurement; alternate execution order so
	// cache-warming bias does not systematically favor one side.
	first, second := inc, ch
	firstOut, secondOut := outInc, outCh
	if st.trials%2 == 1 {
		first, second = ch, inc
		firstOut, secondOut = outCh, outInc
	}
	dFirst, err1 := t.cfg.Exec(first.name, &in, firstOut)
	dSecond, err2 := t.cfg.Exec(second.name, &in, secondOut)
	dInc, dCh := dFirst, dSecond
	if first == ch {
		dInc, dCh = dSecond, dFirst
	}
	errInc, errCh := err1, err2
	if first == ch {
		errInc, errCh = err2, err1
	}

	if errInc != nil {
		t.warn("incumbent shadow execution failed", "id", s.id, "variant", inc.name, "err", errInc)
		return
	}
	if diff, err := outInc.MaxAbsDiff(s.served); err != nil || diff != 0 {
		// The incumbent re-run does not reproduce what was served: the
		// captured pair is not trustworthy (plan skew or a real serving
		// bug) — reject the whole trial, trust neither timing.
		t.reject(st, inc.name, "incumbent re-run diverges from served result")
		return
	}
	if errCh != nil {
		t.disqualify(st, ch, "execution failed: "+errCh.Error())
		return
	}
	if diff, err := outCh.MaxAbsDiff(outInc); err != nil || diff != 0 {
		// A bitwise-contract variant that does not reproduce the served
		// bits is wrong; its timing must never be trusted, fast or not.
		t.disqualify(st, ch, "output diverges bitwise from incumbent")
		return
	}

	t.mu.Lock()
	inc.push(float64(dInc.Microseconds()), t.cfg.Window)
	ch.push(float64(dCh.Microseconds()), t.cfg.Window)
	st.trials++
	cand, fromP50, toP50 := t.candidateLocked(st)
	regret := t.regretLocked()
	t.mu.Unlock()

	t.trials.Add(1)
	obsTrials.Inc()
	obsTrialSeconds.Observe((dInc + dCh).Seconds())
	obsRegret.Set(regret)

	if cand != nil {
		t.promote(st, cand, fromP50, toP50)
	}
}

// pickChallengerLocked selects the arm to race this trial. Exploration is
// round-robin until every live arm has MinSamples; after that the
// runner-up keeps its window fresh (so a promotion can trigger or decay),
// and a converged matrix marks itself settled — duty drops — while an
// occasional random arm watches for drift.
func (t *Tuner) pickChallengerLocked(st *state) *arm {
	n := len(st.arms)
	for i := 0; i < n; i++ {
		a := st.arms[(st.cursor+i)%n]
		if a == st.incumbent || a.disq {
			continue
		}
		if a.total < t.cfg.MinSamples {
			st.cursor = (st.cursor + i + 1) % n
			return a
		}
	}
	// Fully explored: find the best non-incumbent by p50.
	var best *arm
	for _, a := range st.arms {
		if a == st.incumbent || a.disq || len(a.window) == 0 {
			continue
		}
		if best == nil || a.p50() < best.p50() {
			best = a
		}
	}
	if best == nil {
		return nil
	}
	if best.p50() < st.incumbent.p50()*(1-t.cfg.Margin) {
		// A promotion is brewing; keep measuring the pair.
		return best
	}
	if !st.settled {
		st.settled = true
		t.info("matrix settled", "id", st.id, "incumbent", st.incumbent.name,
			"trials", st.trials)
	}
	// Settled: sample a random live arm occasionally to catch drift.
	live := st.arms[:0:0]
	for _, a := range st.arms {
		if a != st.incumbent && !a.disq {
			live = append(live, a)
		}
	}
	if len(live) == 0 {
		return nil
	}
	return live[t.rng.Intn(len(live))]
}

// candidateLocked applies the promotion rule: the best fully-sampled
// challenger whose p50 beats the incumbent's p50 by the hysteresis margin,
// with the incumbent itself fully sampled too.
func (t *Tuner) candidateLocked(st *state) (cand *arm, fromP50, toP50 float64) {
	inc := st.incumbent
	if inc == nil || inc.total < t.cfg.MinSamples {
		return nil, 0, 0
	}
	var best *arm
	for _, a := range st.arms {
		if a == inc || a.disq || a.total < t.cfg.MinSamples {
			continue
		}
		if best == nil || a.p50() < best.p50() {
			best = a
		}
	}
	if best == nil {
		return nil, 0, 0
	}
	fromP50, toP50 = inc.p50(), best.p50()
	if toP50 < fromP50*(1-t.cfg.Margin) {
		return best, fromP50, toP50
	}
	return nil, 0, 0
}

// promote installs cand as the matrix's incumbent through the Promote
// callback (which re-prepares the serving plan) and persists the updated
// profile. Called without t.mu held — the callback prepares a format.
func (t *Tuner) promote(st *state, cand *arm, fromP50, toP50 float64) {
	if t.cfg.Promote == nil {
		return
	}
	pr := Promotion{
		From: st.incumbent.name, To: cand.name,
		FromP50Micros: fromP50, ToP50Micros: toP50,
		Trials: st.trials, UnixNanos: t.cfg.Now().UnixNano(),
	}
	ver, err := t.cfg.Promote(st.id, pr)
	if err != nil {
		t.warn("promotion failed; keeping incumbent", "id", st.id,
			"from", pr.From, "to", pr.To, "err", err)
		return
	}
	t.mu.Lock()
	st.incumbent = cand
	st.planVersion = ver
	st.history = append(st.history, pr)
	st.settled = false
	prof := st.profileLocked()
	t.mu.Unlock()
	t.promotions.Add(1)
	obsPromotions.Inc()
	t.info("variant promoted", "id", st.id, "from", pr.From, "to", pr.To,
		"p50_from_us", fromP50, "p50_to_us", toP50, "plan_version", ver)
	if t.cfg.Persist != nil {
		if err := t.cfg.Persist(st.id, prof); err != nil {
			t.warn("profile persist failed; next snapshot will cover it",
				"id", st.id, "err", err)
		}
	}
}

func (t *Tuner) reject(st *state, variant, why string) {
	t.mu.Lock()
	st.rejects++
	t.mu.Unlock()
	t.rejects.Add(1)
	obsRejects.Inc()
	t.warn("shadow trial rejected", "id", st.id, "variant", variant, "why", why)
}

func (t *Tuner) disqualify(st *state, a *arm, why string) {
	t.mu.Lock()
	a.disq = true
	st.rejects++
	t.mu.Unlock()
	t.rejects.Add(1)
	obsDisqualified.Inc()
	t.warn("variant disqualified", "id", st.id, "variant", a.name, "why", why)
}

// regretLocked estimates the tuner's current regret: the mean relative
// p50 gap between each matrix's incumbent and its best measured arm (0
// when the incumbent is the best known arm). A rough, optimistic
// estimate — unexplored arms contribute nothing.
func (t *Tuner) regretLocked() float64 {
	var sum float64
	var n int
	for _, st := range t.states {
		if st.incumbent == nil || len(st.incumbent.window) == 0 {
			continue
		}
		n++
		incP50 := st.incumbent.p50()
		best := incP50
		for _, a := range st.arms {
			if a.disq || len(a.window) == 0 {
				continue
			}
			if p := a.p50(); p < best {
				best = p
			}
		}
		if incP50 > 0 && best < incP50 {
			sum += (incP50 - best) / incP50
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func (t *Tuner) warn(msg string, args ...any) {
	if t.cfg.Log != nil {
		t.cfg.Log.Warn(msg, args...)
	}
}

func (t *Tuner) info(msg string, args ...any) {
	if t.cfg.Log != nil {
		t.cfg.Log.Info(msg, args...)
	}
}
