package tune

import (
	"fmt"

	"repro/internal/formats"
	"repro/internal/kernels"
	"repro/internal/matrix"
)

// SELL-C-σ parameters for lab conversions — the same values core.Params
// uses for its serving kernel, so a timing measured here transfers to the
// served plan.
const (
	labSellC     = 8
	labSellSigma = 64
)

// ensureFormat lazily materialises the sparse format a trial arm consumes,
// caching it on the shared VariantInput so each format is converted at most
// once per matrix. block is the BCSR/BELL block edge from the serving plan.
func ensureFormat(in *kernels.VariantInput, coo *matrix.COO[float64], block int, format string) error {
	in.COO = coo
	switch format {
	case "coo":
		return nil
	case "csr":
		if in.CSR == nil {
			in.CSR = formats.CSRFromCOO(coo)
		}
	case "csc":
		if in.CSC == nil {
			in.CSC = formats.CSCFromCOO(coo)
		}
	case "ell":
		if in.ELL == nil {
			in.ELL = formats.ELLFromCOO(coo, formats.RowMajor)
		}
	case "bcsr":
		if in.BCSR == nil {
			b, err := formats.BCSRFromCOO(coo, block, block)
			if err != nil {
				return fmt.Errorf("tune: bcsr conversion: %w", err)
			}
			in.BCSR = b
		}
	case "bell":
		if in.BELL == nil {
			b, err := formats.BELLFromCOO(coo, block, block)
			if err != nil {
				return fmt.Errorf("tune: bell conversion: %w", err)
			}
			in.BELL = b
		}
	case "sellcs":
		if in.SELL == nil {
			s, err := formats.SELLCSFromCOO(coo, labSellC, labSellSigma)
			if err != nil {
				return fmt.Errorf("tune: sellcs conversion: %w", err)
			}
			in.SELL = s
		}
	default:
		return fmt.Errorf("tune: unknown lab format %q", format)
	}
	return nil
}
