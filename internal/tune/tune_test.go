package tune

import (
	"sync"
	"testing"
	"time"

	"repro/internal/advisor"
	"repro/internal/gen"
	"repro/internal/kernels"
	"repro/internal/matrix"
)

// The deterministic test rig: execution, time and randomness are all
// injected, so every test below is exact — no wall-clock sleeps, no
// tolerance bands on sample counts.

const (
	testIncumbent = "csr/opts-pool"
	testFast      = "sellcs/opts-balanced-pool"
)

func testCOO(t testing.TB) *matrix.COO[float64] {
	t.Helper()
	m, err := gen.UniformRandom[float64](16, 16, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsSortedRowMajor() {
		m.SortRowMajor()
	}
	m.Dedup()
	return m
}

// fillResult writes the canonical deterministic result every scripted
// variant produces (bitwise-identical across variants, like the real ones).
func fillResult(out *matrix.Dense[float64]) {
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = float64(i + 2*j + 1)
		}
	}
}

// scriptedExec returns an ExecFunc with per-variant scripted durations.
// wrongVariant (if non-empty) produces bitwise-divergent output — the
// fast-but-wrong challenger the verification gate must catch.
func scriptedExec(dur func(variant string) time.Duration, wrongVariant string) ExecFunc {
	return func(variant string, in *kernels.VariantInput, out *matrix.Dense[float64]) (time.Duration, error) {
		fillResult(out)
		if variant == wrongVariant {
			out.Row(0)[0]++
		}
		return dur(variant), nil
	}
}

// promoRecorder is a thread-safe Promote/Persist capture.
type promoRecorder struct {
	mu       sync.Mutex
	promos   []Promotion
	profiles []*Profile
	version  int64
}

func (p *promoRecorder) promote(id string, pr Promotion) (int64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.promos = append(p.promos, pr)
	p.version++
	return p.version, nil
}

func (p *promoRecorder) persist(id string, prof *Profile) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.profiles = append(p.profiles, prof)
	return nil
}

func (p *promoRecorder) snapshot() []Promotion {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Promotion(nil), p.promos...)
}

func testConfig(rec *promoRecorder, dur func(string) time.Duration, wrong string) Config {
	return Config{
		Duty:       0.5,
		MinSamples: 2,
		Margin:     0.10,
		Window:     8,
		QueueDepth: 64,
		Threads:    1,
		Promote:    rec.promote,
		Persist:    rec.persist,
		Exec:       scriptedExec(dur, wrong),
		Now:        func() time.Time { return time.Unix(1000, 0) },
		Seed:       1,
	}
}

// drive feeds n offers through the tuner, flushing after each so trials run
// deterministically in sequence, and tracks the moving incumbent the way
// the serving layer does (offers carry the executing plan).
func drive(t testing.TB, tu *Tuner, id string, coo *matrix.COO[float64], n, k int) {
	t.Helper()
	b := matrix.NewDenseRand[float64](coo.Cols, k, 7)
	served := matrix.NewDense[float64](coo.Rows, k)
	fillResult(served)
	for i := 0; i < n; i++ {
		prof := tu.Profile(id)
		tu.Offer(id, prof.Incumbent, prof.PlanVersion, b, served, k)
		tu.Flush()
	}
}

// TestPromotionHysteresis pins the promotion rule end to end: a challenger
// measured 2x faster is promoted exactly once (after both arms hold
// MinSamples), the plan version advances through the callback, the profile
// is persisted — and the displaced incumbent never flaps back.
func TestPromotionHysteresis(t *testing.T) {
	coo := testCOO(t)
	rec := &promoRecorder{version: 1}
	dur := func(v string) time.Duration {
		switch v {
		case testFast:
			return 50 * time.Microsecond
		case testIncumbent:
			return 100 * time.Microsecond
		}
		return 200 * time.Microsecond
	}
	tu := New(testConfig(rec, dur, ""))
	defer tu.Close()
	tu.Track("m1", coo, 4, advisor.FeatureSummary{Density: 0.2}, testIncumbent, 1)

	drive(t, tu, "m1", coo, 200, 3)

	promos := rec.snapshot()
	if len(promos) != 1 {
		t.Fatalf("promotions = %d, want exactly 1 (no flapping)", len(promos))
	}
	pr := promos[0]
	if pr.From != testIncumbent || pr.To != testFast {
		t.Fatalf("promoted %s -> %s, want %s -> %s", pr.From, pr.To, testIncumbent, testFast)
	}
	if pr.FromP50Micros != 100 || pr.ToP50Micros != 50 {
		t.Fatalf("promotion p50s = %v -> %v, want 100 -> 50", pr.FromP50Micros, pr.ToP50Micros)
	}
	if pr.UnixNanos != time.Unix(1000, 0).UnixNano() {
		t.Fatalf("promotion timestamp %d did not come from the injected clock", pr.UnixNanos)
	}
	prof := tu.Profile("m1")
	if prof.Incumbent != testFast || prof.PlanVersion != 2 {
		t.Fatalf("post-promotion profile: incumbent %s v%d, want %s v2", prof.Incumbent, prof.PlanVersion, testFast)
	}
	if len(prof.History) != 1 || prof.History[0] != pr {
		t.Fatalf("history %+v does not record the promotion", prof.History)
	}
	if len(rec.profiles) != 1 {
		t.Fatalf("persist callbacks = %d, want 1 (one per promotion)", len(rec.profiles))
	}
	// The fastest arm must rank first in the profile.
	if len(prof.Arms) == 0 || prof.Arms[0].Variant != testFast {
		t.Fatalf("profile arms not ranked fastest-first: %+v", prof.Arms)
	}
}

// TestWithinMarginNoPromotion pins the hysteresis: a challenger 5% faster
// with a 10% margin never displaces the incumbent, and the matrix settles.
func TestWithinMarginNoPromotion(t *testing.T) {
	coo := testCOO(t)
	rec := &promoRecorder{version: 1}
	dur := func(v string) time.Duration {
		switch v {
		case testFast:
			return 95 * time.Microsecond
		case testIncumbent:
			return 100 * time.Microsecond
		}
		return 200 * time.Microsecond
	}
	tu := New(testConfig(rec, dur, ""))
	defer tu.Close()
	tu.Track("m1", coo, 4, advisor.FeatureSummary{}, testIncumbent, 1)

	drive(t, tu, "m1", coo, 200, 3)

	if promos := rec.snapshot(); len(promos) != 0 {
		t.Fatalf("within-margin challenger was promoted: %+v", promos)
	}
	st := tu.Stats()
	if len(st.Matrices) != 1 || !st.Matrices[0].Settled {
		t.Fatalf("fully-explored within-margin matrix did not settle: %+v", st.Matrices)
	}
	if st.Matrices[0].Incumbent != testIncumbent {
		t.Fatalf("incumbent moved to %s without a promotion", st.Matrices[0].Incumbent)
	}
}

// TestDutyCycleBounds pins the deterministic duty cycle: exactly
// floor(n*duty) of n offers are sampled, and a settled matrix's duty drops
// by settleFactor.
func TestDutyCycleBounds(t *testing.T) {
	coo := testCOO(t)
	rec := &promoRecorder{version: 1}
	dur := func(v string) time.Duration { return 100 * time.Microsecond }

	cfg := testConfig(rec, dur, "")
	cfg.Duty = 0.25
	cfg.QueueDepth = 4096
	tu := New(cfg)
	defer tu.Close()
	tu.Track("m1", coo, 4, advisor.FeatureSummary{}, testIncumbent, 1)

	b := matrix.NewDenseRand[float64](coo.Cols, 3, 7)
	served := matrix.NewDense[float64](coo.Rows, 3)
	fillResult(served)
	const n = 100
	taken := 0
	for i := 0; i < n; i++ {
		if tu.Offer("m1", testIncumbent, 1, b, served, 3) {
			taken++
		}
	}
	if want := int(float64(n) * 0.25); taken != want {
		t.Fatalf("sampled %d of %d offers at duty 0.25, want exactly %d", taken, n, want)
	}
	st := tu.Stats()
	if st.Matrices[0].Offers != n || st.Matrices[0].Sampled != uint64(taken) {
		t.Fatalf("per-matrix counters %+v disagree with the drive", st.Matrices[0])
	}
}

// TestSettledDutyBackoff runs a matrix to settlement (all arms within the
// margin) and pins that the effective duty drops by settleFactor.
func TestSettledDutyBackoff(t *testing.T) {
	coo := testCOO(t)
	rec := &promoRecorder{version: 1}
	// Every arm identical: nothing to promote, settles after exploration.
	dur := func(v string) time.Duration { return 100 * time.Microsecond }
	tu := New(testConfig(rec, dur, ""))
	defer tu.Close()
	tu.Track("m1", coo, 4, advisor.FeatureSummary{}, testIncumbent, 1)

	drive(t, tu, "m1", coo, 200, 3)
	st := tu.Stats()
	if !st.Matrices[0].Settled {
		t.Fatal("uniform arm space did not settle after full exploration")
	}
	offers0, sampled0 := st.Matrices[0].Offers, st.Matrices[0].Sampled

	// Post-settle: duty is 0.5/settleFactor = 0.05 → integer-crossing count.
	b := matrix.NewDenseRand[float64](coo.Cols, 3, 7)
	served := matrix.NewDense[float64](coo.Rows, 3)
	fillResult(served)
	const extra = 200
	for i := 0; i < extra; i++ {
		tu.Offer("m1", testIncumbent, 1, b, served, 3)
	}
	tu.Flush()
	st = tu.Stats()
	gotDelta := st.Matrices[0].Sampled - sampled0
	settledDuty := 0.5 / settleFactor
	wantDelta := uint64(float64(offers0+extra)*settledDuty) - uint64(float64(offers0)*settledDuty)
	if gotDelta != wantDelta {
		t.Fatalf("settled matrix sampled %d of %d offers, want %d (duty/%d backoff)",
			gotDelta, extra, wantDelta, settleFactor)
	}
	if gotDelta >= extra/4 {
		t.Fatalf("settled duty did not back off: %d samples from %d offers", gotDelta, extra)
	}
}

// TestWrongVariantDisqualified pins the verification gate: a challenger
// that is measured fastest but does not bitwise-reproduce the incumbent's
// result is disqualified permanently and never promoted.
func TestWrongVariantDisqualified(t *testing.T) {
	coo := testCOO(t)
	rec := &promoRecorder{version: 1}
	const wrong = "ell/opts-pool"
	dur := func(v string) time.Duration {
		if v == wrong {
			return 10 * time.Microsecond // fastest — and wrong
		}
		if v == testIncumbent {
			return 100 * time.Microsecond
		}
		return 200 * time.Microsecond
	}
	tu := New(testConfig(rec, dur, wrong))
	defer tu.Close()
	tu.Track("m1", coo, 4, advisor.FeatureSummary{}, testIncumbent, 1)

	drive(t, tu, "m1", coo, 200, 3)

	for _, pr := range rec.snapshot() {
		if pr.To == wrong {
			t.Fatalf("bitwise-divergent variant %s was promoted", wrong)
		}
	}
	prof := tu.Profile("m1")
	var found bool
	for _, a := range prof.Arms {
		if a.Variant == wrong {
			found = true
			if !a.Disqualified {
				t.Fatalf("wrong variant not disqualified: %+v", a)
			}
			if a.Samples != 0 {
				t.Fatalf("wrong variant's timing was recorded (%d samples) — a mismatched run must never be timed", a.Samples)
			}
		}
	}
	if !found {
		t.Fatal("disqualified arm missing from the profile")
	}
	if st := tu.Stats(); st.Rejects < 1 {
		t.Fatalf("disqualification not counted: %+v", st)
	}
}

// TestIncumbentMismatchRejected pins the served-result gate: when the
// incumbent's shadow re-run does not reproduce what the server actually
// returned, the whole trial is rejected and neither timing is recorded.
func TestIncumbentMismatchRejected(t *testing.T) {
	coo := testCOO(t)
	rec := &promoRecorder{version: 1}
	dur := func(v string) time.Duration { return 100 * time.Microsecond }
	tu := New(testConfig(rec, dur, ""))
	defer tu.Close()
	tu.Track("m1", coo, 4, advisor.FeatureSummary{}, testIncumbent, 1)

	b := matrix.NewDenseRand[float64](coo.Cols, 3, 7)
	served := matrix.NewDense[float64](coo.Rows, 3)
	fillResult(served)
	served.Row(0)[0]++ // the server "returned" something the incumbent won't reproduce
	for i := 0; i < 2; i++ {
		tu.Offer("m1", testIncumbent, 1, b, served, 3)
	}
	tu.Flush()
	st := tu.Stats()
	if st.Trials != 0 {
		t.Fatalf("trials = %d, want 0 — a mismatched served result must not be timed", st.Trials)
	}
	if st.Rejects != 1 {
		t.Fatalf("rejects = %d, want 1", st.Rejects)
	}
}

// TestStaleSampleDropped pins the plan-version gate: a queued sample from
// an older plan version is discarded, not trialed.
func TestStaleSampleDropped(t *testing.T) {
	coo := testCOO(t)
	rec := &promoRecorder{version: 1}
	dur := func(v string) time.Duration { return 100 * time.Microsecond }
	tu := New(testConfig(rec, dur, ""))
	defer tu.Close()
	tu.Track("m1", coo, 4, advisor.FeatureSummary{}, testIncumbent, 7)

	b := matrix.NewDenseRand[float64](coo.Cols, 3, 7)
	served := matrix.NewDense[float64](coo.Rows, 3)
	fillResult(served)
	for i := 0; i < 2; i++ {
		tu.Offer("m1", testIncumbent, 3, b, served, 3) // plan v3, tuner holds v7
	}
	tu.Flush()
	st := tu.Stats()
	if st.Trials != 0 || st.Stale != 1 {
		t.Fatalf("stale sample: trials=%d stale=%d, want 0/1", st.Trials, st.Stale)
	}
}

// TestProfileRoundTrip pins warm restart: a learned profile restored into a
// fresh tuner reproduces incumbent, plan version, per-arm windows and the
// promotion history — and a feature-vector mismatch falls back to cold.
func TestProfileRoundTrip(t *testing.T) {
	coo := testCOO(t)
	rec := &promoRecorder{version: 1}
	feat := advisor.FeatureSummary{Density: 0.2, Gini: 0.4}
	dur := func(v string) time.Duration {
		switch v {
		case testFast:
			return 50 * time.Microsecond
		case testIncumbent:
			return 100 * time.Microsecond
		}
		return 200 * time.Microsecond
	}
	tu := New(testConfig(rec, dur, ""))
	tu.Track("m1", coo, 4, feat, testIncumbent, 1)
	drive(t, tu, "m1", coo, 200, 3)
	prof := tu.Profile("m1")
	tu.Close()
	if prof.Incumbent != testFast {
		t.Fatalf("scenario did not converge: incumbent %s", prof.Incumbent)
	}

	// Warm restore: the recovered tuner starts where the crashed one was.
	tu2 := New(testConfig(&promoRecorder{version: prof.PlanVersion}, dur, ""))
	defer tu2.Close()
	if err := tu2.Restore("m1", coo, 4, feat, prof.Incumbent, prof.PlanVersion, prof); err != nil {
		t.Fatalf("restore: %v", err)
	}
	got := tu2.Profile("m1")
	if got.Incumbent != prof.Incumbent || got.PlanVersion != prof.PlanVersion ||
		got.Trials != prof.Trials {
		t.Fatalf("restored profile %+v != saved %+v", got, prof)
	}
	if len(got.History) != len(prof.History) || got.History[0] != prof.History[0] {
		t.Fatalf("promotion history lost in restore: %+v vs %+v", got.History, prof.History)
	}
	if len(got.Arms) != len(prof.Arms) {
		t.Fatalf("restored %d arms, saved %d", len(got.Arms), len(prof.Arms))
	}
	for i := range got.Arms {
		if got.Arms[i].Variant != prof.Arms[i].Variant || got.Arms[i].Samples != prof.Arms[i].Samples ||
			got.Arms[i].P50Micros != prof.Arms[i].P50Micros {
			t.Fatalf("arm %d changed in restore: %+v vs %+v", i, got.Arms[i], prof.Arms[i])
		}
	}

	// Feature mismatch: profile discarded, matrix tracked cold.
	tu3 := New(testConfig(&promoRecorder{version: 1}, dur, ""))
	defer tu3.Close()
	if err := tu3.Restore("m1", coo, 4, advisor.FeatureSummary{Density: 0.9}, testIncumbent, 1, prof); err == nil {
		t.Fatal("feature-mismatched profile restored without an error")
	}
	cold := tu3.Profile("m1")
	if cold.Incumbent != testIncumbent || len(cold.Arms) != 0 || len(cold.History) != 0 {
		t.Fatalf("mismatched profile left state behind: %+v", cold)
	}
}

// TestMeasuredRankings pins the advisor hand-off: Measured returns the
// non-disqualified arms fastest-first.
func TestMeasuredRankings(t *testing.T) {
	coo := testCOO(t)
	rec := &promoRecorder{version: 1}
	dur := func(v string) time.Duration {
		switch v {
		case testFast:
			return 50 * time.Microsecond
		case testIncumbent:
			return 100 * time.Microsecond
		}
		return 200 * time.Microsecond
	}
	tu := New(testConfig(rec, dur, ""))
	defer tu.Close()
	tu.Track("m1", coo, 4, advisor.FeatureSummary{}, testIncumbent, 1)
	drive(t, tu, "m1", coo, 120, 3)

	ms := tu.Measured("m1")
	if len(ms) < 3 {
		t.Fatalf("measured rankings too short: %+v", ms)
	}
	if ms[0].Variant != testFast || ms[0].P50Micros != 50 {
		t.Fatalf("fastest measured arm = %+v, want %s at 50us", ms[0], testFast)
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].P50Micros < ms[i-1].P50Micros {
			t.Fatalf("measured rankings out of order at %d: %+v", i, ms)
		}
	}
}
