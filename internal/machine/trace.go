package machine

import (
	"fmt"

	"repro/internal/formats"
	"repro/internal/matrix"
)

// This file replays the SpMM kernels as memory/compute traces. Each trace
// mirrors the access pattern of the corresponding kernel in
// internal/kernels; array bases are spaced far apart so distinct arrays
// never share cache lines. The range-based helpers (traceCSR over rows
// [lo, hi), etc.) serve both the serial simulations and the multicore
// model, which runs one chunk per simulated thread.

const (
	baseRowPtr uint64 = 1 << 33
	baseRowIdx uint64 = 2 << 33
	baseColIdx uint64 = 3 << 33
	baseVals   uint64 = 4 << 33
	baseB      uint64 = 5 << 33
	baseBT     uint64 = 6 << 33
	baseC      uint64 = 8 << 33
)

// Result is the outcome of one simulated kernel execution.
type Result struct {
	Arch        string
	Seconds     float64
	Cycles      float64
	MFLOPS      float64
	MemMissRate float64
}

func finish(m *Machine, nnz, k int) Result {
	m.flushObs()
	return resultFor(m.prof.Name, m.Seconds(), m.Cycles(), nnz, k, m.MemMissRate())
}

func resultFor(arch string, secs, cycles float64, nnz, k int, missRate float64) Result {
	flops := 2 * float64(nnz) * float64(k)
	mflops := 0.0
	if secs > 0 {
		mflops = flops / secs / 1e6
	}
	return Result{
		Arch:        arch,
		Seconds:     secs,
		Cycles:      cycles,
		MFLOPS:      mflops,
		MemMissRate: missRate,
	}
}

// LoadIrregular models a data-dependent (gather-style) access: a range
// load whose base address is unpredictable, so the stream prefetcher cannot
// cover it — every line of the range pays the profile's gather penalty on
// top of its hierarchy cost.
func (m *Machine) LoadIrregular(addr uint64, bytes int) {
	if bytes <= 0 {
		return
	}
	m.loadRangeDemand(addr, bytes)
	line := int(m.lineBytes())
	lines := (int(addr)%line + bytes + line - 1) / line
	m.cycles += m.prof.GatherPenalty * float64(lines)
}

// ---- COO ----

// traceCOO replays triplets [lo, hi) of the COO kernel and returns the
// nonzeros processed.
func traceCOO[T matrix.Float](m *Machine, a *matrix.COO[T], k, lo, hi int) int {
	kb := k * 8
	for p := lo; p < hi; p++ {
		m.LoadScalar(baseRowIdx+uint64(p)*4, 4)
		m.LoadScalar(baseColIdx+uint64(p)*4, 4)
		m.LoadScalar(baseVals+uint64(p)*8, 8)
		row := uint64(a.RowIdx[p])
		col := uint64(a.ColIdx[p])
		m.LoadIrregular(baseB+col*uint64(kb), kb)
		m.RMWRange(baseC+row*uint64(kb), kb)
		m.FMA(k, k)
		m.Scalar(4)
	}
	return hi - lo
}

// SimulateCOO replays the serial COO SpMM kernel for k output columns.
func SimulateCOO[T matrix.Float](prof Profile, a *matrix.COO[T], k int) (Result, error) {
	m, err := New(prof)
	if err != nil {
		return Result{}, err
	}
	if k < 0 {
		return Result{}, fmt.Errorf("machine: negative k")
	}
	nnz := traceCOO(m, a, k, 0, a.NNZ())
	return finish(m, nnz, k), nil
}

// ---- CSR ----

// traceCSR replays rows [lo, hi) of the CSR kernel.
func traceCSR[T matrix.Float](m *Machine, a *formats.CSR[T], k, lo, hi int) int {
	kb := k * 8
	nnz := 0
	for i := lo; i < hi; i++ {
		m.LoadScalar(baseRowPtr+uint64(i)*4, 4)
		m.Scalar(2)
		crow := baseC + uint64(i)*uint64(kb)
		m.StoreRange(crow, kb) // clear
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			m.LoadScalar(baseColIdx+uint64(p)*4, 4)
			m.LoadScalar(baseVals+uint64(p)*8, 8)
			col := uint64(a.ColIdx[p])
			m.LoadIrregular(baseB+col*uint64(kb), kb)
			m.RMWRange(crow, kb)
			m.FMA(k, k)
			m.Scalar(3)
			nnz++
		}
	}
	return nnz
}

// SimulateCSR replays the serial CSR SpMM kernel.
func SimulateCSR[T matrix.Float](prof Profile, a *formats.CSR[T], k int) (Result, error) {
	m, err := New(prof)
	if err != nil {
		return Result{}, err
	}
	nnz := traceCSR(m, a, k, 0, a.Rows)
	return finish(m, nnz, k), nil
}

// ---- ELL ----

// traceELL replays rows [lo, hi) of the ELLPACK kernel. Padding slots cost
// their loads and loop bookkeeping but no FMA (the kernel's zero guard),
// reproducing ELL's padding overhead.
func traceELL[T matrix.Float](m *Machine, a *formats.ELL[T], k, lo, hi int) int {
	kb := k * 8
	nnz := 0
	for i := lo; i < hi; i++ {
		crow := baseC + uint64(i)*uint64(kb)
		m.StoreRange(crow, kb)
		for s := 0; s < a.Width; s++ {
			var idx int
			if a.Layout == formats.ColMajor {
				idx = s*a.Rows + i
			} else {
				idx = i*a.Width + s
			}
			m.LoadScalar(baseColIdx+uint64(idx)*4, 4)
			m.LoadScalar(baseVals+uint64(idx)*8, 8)
			m.Scalar(3)
			col, v := a.At(i, s)
			if v == 0 {
				continue // padding: guard branch skips the work
			}
			nnz++
			m.LoadIrregular(baseB+uint64(col)*uint64(kb), kb)
			m.RMWRange(crow, kb)
			m.FMA(k, k)
		}
	}
	return nnz
}

// SimulateELL replays the serial ELLPACK SpMM kernel.
func SimulateELL[T matrix.Float](prof Profile, a *formats.ELL[T], k int) (Result, error) {
	m, err := New(prof)
	if err != nil {
		return Result{}, err
	}
	nnz := traceELL(m, a, k, 0, a.Rows)
	return finish(m, nnz, k), nil
}

// ---- BCSR ----

// traceBCSR replays block rows [lo, hi) of the BCSR kernel as the
// register-blocked micro-kernel a blocked format is built for: per block,
// the dense br×bc values stream in contiguously and are applied
// branchlessly (padding zeros included — the blocked format's overhead),
// each C row is touched once per block rather than once per nonzero, and
// only the block's *first* B row is an irregular access (the remaining
// bc−1 are consecutive). The regular, L1-resident traffic is what lets
// BCSR behave differently across architectures than the gather-bound
// scalar formats.
func traceBCSR[T matrix.Float](m *Machine, a *formats.BCSR[T], k, lo, hi int) int {
	kb := k * 8
	nnz := 0
	br, bc := a.BR, a.BC
	for bri := lo; bri < hi; bri++ {
		m.LoadScalar(baseRowPtr+uint64(bri)*4, 4)
		m.Scalar(2)
		rowBase := bri * br
		rowLim := min(br, a.Rows-rowBase)
		for r := 0; r < rowLim; r++ {
			m.StoreRange(baseC+uint64(rowBase+r)*uint64(kb), kb)
		}
		for p := a.RowPtr[bri]; p < a.RowPtr[bri+1]; p++ {
			m.LoadScalar(baseColIdx+uint64(p)*4, 4)
			m.Scalar(4)
			colBase := int(a.ColIdx[p]) * bc
			colLim := min(bc, a.Cols-colBase)
			blk := a.Block(int(p))
			for _, v := range blk {
				if v != 0 {
					nnz++
				}
			}
			// Dense block values stream contiguously.
			m.LoadRange(baseVals+uint64(int(p)*br*bc)*8, br*bc*8)
			// One irregular base per block; its remaining B rows are
			// consecutive.
			m.LoadIrregular(baseB+uint64(colBase)*uint64(kb), kb)
			for cc := 1; cc < colLim; cc++ {
				m.LoadRange(baseB+uint64(colBase+cc)*uint64(kb), kb)
			}
			for r := 0; r < rowLim; r++ {
				crow := baseC + uint64(rowBase+r)*uint64(kb)
				m.RMWRange(crow, kb)
				// Branchless micro-kernel: padding multiplies too. The
				// compile-time block width is the natural vector length
				// (the thesis' template trick makes it a constant).
				m.FMA(colLim*k, colLim)
				m.Scalar(3 * colLim)
			}
		}
	}
	return nnz
}

// SimulateBCSR replays the serial BCSR SpMM kernel.
func SimulateBCSR[T matrix.Float](prof Profile, a *formats.BCSR[T], k int) (Result, error) {
	m, err := New(prof)
	if err != nil {
		return Result{}, err
	}
	nnz := traceBCSR(m, a, k, 0, a.BlockRows)
	return finish(m, nnz, k), nil
}

// ---- Transposed-B traces (Study 8) ----

// traceTransposeB charges the blocked transposition of the n×k dense B
// into Bᵀ: every element is read and written once, with the stores
// scattering across Bᵀ rows (line-granularity captured by the cache sim).
func traceTransposeB(m *Machine, n, k int) {
	const bs = 32
	for jj := 0; jj < k; jj += bs {
		jEnd := min(jj+bs, k)
		for ii := 0; ii < n; ii += bs {
			iEnd := min(ii+bs, n)
			for i := ii; i < iEnd; i++ {
				m.LoadRange(baseB+uint64(i*k+jj)*8, (jEnd-jj)*8)
			}
			for j := jj; j < jEnd; j++ {
				m.StoreRange(baseBT+uint64(j*n+ii)*8, (iEnd-ii)*8)
			}
			m.Scalar((iEnd - ii) * (jEnd - jj))
		}
	}
}

// traceCSRT replays rows [lo, hi) of the transposed-B CSR kernel: for each
// nonzero, the k loop walks a *column* of Bᵀ — k touches with a large
// constant stride, one cache line each. The stride is regular, so the
// touches price as streamed, but each one is its own line: roughly 8× the
// traffic of the row-contiguous kernel — the pattern that makes the
// transpose variant lose on most matrices (§5.10).
func traceCSRT[T matrix.Float](m *Machine, a *formats.CSR[T], k, lo, hi int) int {
	kb := k * 8
	nnz := 0
	n := a.Cols
	for i := lo; i < hi; i++ {
		m.LoadScalar(baseRowPtr+uint64(i)*4, 4)
		crow := baseC + uint64(i)*uint64(kb)
		m.StoreRange(crow, kb)
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			m.LoadScalar(baseColIdx+uint64(p)*4, 4)
			m.LoadScalar(baseVals+uint64(p)*8, 8)
			col := uint64(a.ColIdx[p])
			for j := 0; j < k; j++ {
				m.LoadRange(baseBT+(uint64(j)*uint64(n)+col)*8, 8)
			}
			m.RMWRange(crow, kb)
			m.FMA(k, k)
			m.Scalar(3)
			nnz++
		}
	}
	return nnz
}

// traceCOOT replays triplets [lo, hi) of the transposed-B COO kernel.
func traceCOOT[T matrix.Float](m *Machine, a *matrix.COO[T], k, lo, hi int) int {
	kb := k * 8
	n := a.Cols
	for p := lo; p < hi; p++ {
		m.LoadScalar(baseRowIdx+uint64(p)*4, 4)
		m.LoadScalar(baseColIdx+uint64(p)*4, 4)
		m.LoadScalar(baseVals+uint64(p)*8, 8)
		row := uint64(a.RowIdx[p])
		col := uint64(a.ColIdx[p])
		for j := 0; j < k; j++ {
			m.LoadRange(baseBT+(uint64(j)*uint64(n)+col)*8, 8)
		}
		m.RMWRange(baseC+row*uint64(kb), kb)
		m.FMA(k, k)
		m.Scalar(4)
	}
	return hi - lo
}

// traceELLT replays rows [lo, hi) of the transposed-B ELLPACK kernel.
func traceELLT[T matrix.Float](m *Machine, a *formats.ELL[T], k, lo, hi int) int {
	kb := k * 8
	n := a.Cols
	nnz := 0
	for i := lo; i < hi; i++ {
		crow := baseC + uint64(i)*uint64(kb)
		m.StoreRange(crow, kb)
		for s := 0; s < a.Width; s++ {
			var idx int
			if a.Layout == formats.ColMajor {
				idx = s*a.Rows + i
			} else {
				idx = i*a.Width + s
			}
			m.LoadScalar(baseColIdx+uint64(idx)*4, 4)
			m.LoadScalar(baseVals+uint64(idx)*8, 8)
			m.Scalar(3)
			col, v := a.At(i, s)
			if v == 0 {
				continue
			}
			nnz++
			for j := 0; j < k; j++ {
				m.LoadRange(baseBT+(uint64(j)*uint64(n)+uint64(col))*8, 8)
			}
			m.RMWRange(crow, kb)
			m.FMA(k, k)
		}
	}
	return nnz
}

// traceBCSRT replays block rows [lo, hi) of the transposed-B BCSR kernel.
func traceBCSRT[T matrix.Float](m *Machine, a *formats.BCSR[T], k, lo, hi int) int {
	kb := k * 8
	n := a.Cols
	nnz := 0
	br, bc := a.BR, a.BC
	for bri := lo; bri < hi; bri++ {
		m.LoadScalar(baseRowPtr+uint64(bri)*4, 4)
		m.Scalar(2)
		rowBase := bri * br
		rowLim := min(br, a.Rows-rowBase)
		for r := 0; r < rowLim; r++ {
			m.StoreRange(baseC+uint64(rowBase+r)*uint64(kb), kb)
		}
		for p := a.RowPtr[bri]; p < a.RowPtr[bri+1]; p++ {
			m.LoadScalar(baseColIdx+uint64(p)*4, 4)
			m.Scalar(4)
			colBase := int(a.ColIdx[p]) * bc
			colLim := min(bc, a.Cols-colBase)
			blk := a.Block(int(p))
			for _, v := range blk {
				if v != 0 {
					nnz++
				}
			}
			m.LoadRange(baseVals+uint64(int(p)*br*bc)*8, br*bc*8)
			for cc := 0; cc < colLim; cc++ {
				for j := 0; j < k; j++ {
					m.LoadRange(baseBT+(uint64(j)*uint64(n)+uint64(colBase+cc))*8, 8)
				}
			}
			for r := 0; r < rowLim; r++ {
				crow := baseC + uint64(rowBase+r)*uint64(kb)
				m.RMWRange(crow, kb)
				m.FMA(colLim*k, colLim)
				m.Scalar(colLim)
			}
		}
	}
	return nnz
}

// SimulateCSRT replays the serial transposed-B CSR kernel, including the
// cost of transposing B (Study 8 charges it against the kernel).
func SimulateCSRT[T matrix.Float](prof Profile, a *formats.CSR[T], k int) (Result, error) {
	m, err := New(prof)
	if err != nil {
		return Result{}, err
	}
	traceTransposeB(m, a.Cols, k)
	nnz := traceCSRT(m, a, k, 0, a.Rows)
	return finish(m, nnz, k), nil
}
