package machine

import (
	"math/rand"
	"testing"

	"repro/internal/formats"
	"repro/internal/gen"
	"repro/internal/matrix"
)

func benchFixture(t *testing.T, name string, scale float64) (*formats.CSR[float64], *formats.BCSR[float64]) {
	t.Helper()
	m, _, err := gen.GenerateScaled(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	csr := formats.CSRFromCOO(m)
	bcsr, err := formats.BCSRFromCOO(m, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return csr, bcsr
}

func TestMulticoreValidation(t *testing.T) {
	bad := GraceMachine()
	bad.Cores = 0
	if _, err := bad.CSRParallel(&formats.CSR[float64]{Rows: 1, RowPtr: []int32{0, 0}}, 8, 4); err == nil {
		t.Fatal("invalid multicore config accepted")
	}
	good := GraceMachine()
	if _, err := good.CSRParallel(&formats.CSR[float64]{Rows: 1, RowPtr: []int32{0, 0}, Cols: 1}, 8, 0); err == nil {
		t.Fatal("threads=0 accepted")
	}
}

func TestMulticoreDeterministic(t *testing.T) {
	csr, _ := benchFixture(t, "bcsstk17", 0.2)
	mc := AriesMachine()
	r1, err := mc.CSRParallel(csr, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mc.CSRParallel(csr, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("multicore simulation must be deterministic")
	}
}

// TestParallelSpeedupRealistic locks in the headline of Studies 1–3: the
// parallel kernels beat serial by roughly the factors the thesis measured
// ("the parallel to serial speedup on Arm was 5-6x ... For Aries, the
// speedup was around 4x", §5.3) — far from linear in the thread count.
func TestParallelSpeedupRealistic(t *testing.T) {
	csr, _ := benchFixture(t, "cant", 0.05)
	for _, mc := range Machines() {
		serial, err := SimulateCSR(mc.Prof, csr, 128)
		if err != nil {
			t.Fatal(err)
		}
		par, err := mc.CSRParallel(csr, 128, 32)
		if err != nil {
			t.Fatal(err)
		}
		speedup := par.MFLOPS / serial.MFLOPS
		if speedup < 3 || speedup > 10 {
			t.Errorf("%s: 32-thread speedup %.1fx outside the realistic 3-10x band",
				mc.Prof.Name, speedup)
		}
	}
}

// TestGraceScalesToHighThreadCounts locks in the Arm half of Study 3.1:
// on the 72-core no-SMT socket, high thread counts win on large matrices —
// the best count is at least 48, and running flat out at 72 stays within a
// few percent of the peak (the thesis found 72 best for most, not all,
// matrices: Fig 5.7).
func TestGraceScalesToHighThreadCounts(t *testing.T) {
	mc := GraceMachine()
	for _, name := range []string{"cant", "2cubes_sphere", "cop20k_A"} {
		csr, _ := benchFixture(t, name, 0.05)
		best, bestT := -1.0, 0
		var at72 float64
		for _, threads := range []int{2, 4, 8, 16, 32, 48, 64, 72} {
			r, err := mc.CSRParallel(csr, 128, threads)
			if err != nil {
				t.Fatal(err)
			}
			if r.MFLOPS > best {
				best, bestT = r.MFLOPS, threads
			}
			if threads == 72 {
				at72 = r.MFLOPS
			}
		}
		if bestT < 48 {
			t.Errorf("Grace/%s: best thread count %d; large matrices should peak high", name, bestT)
		}
		if at72 < best*0.9 {
			t.Errorf("Grace/%s: 72 threads (%.0f) should be within 10%% of the peak (%.0f)",
				name, at72, best)
		}
	}
}

// TestAriesHyperthreadingHelpsBlockedFormats locks in the x86 half of
// Study 3.1: beyond the 48 physical cores, oversubscription pays off for
// BCSR ("BCSR in particular seemed to do the best with hyperthreading")
// while CSR peaks at or below the physical core count.
func TestAriesHyperthreadingHelpsBlockedFormats(t *testing.T) {
	mc := AriesMachine()
	// Large matrices only: tiny ones are cache-resident, and their SMT
	// behaviour is dominated by fork/join noise.
	for _, name := range []string{"cant", "2cubes_sphere"} {
		csr, bcsr := benchFixture(t, name, 0.05)
		c48, err := mc.CSRParallel(csr, 128, 48)
		if err != nil {
			t.Fatal(err)
		}
		c72, err := mc.CSRParallel(csr, 128, 72)
		if err != nil {
			t.Fatal(err)
		}
		if c72.MFLOPS > c48.MFLOPS*1.05 {
			t.Errorf("%s: CSR should not gain much from hyperthreading (48t %.0f vs 72t %.0f)",
				name, c48.MFLOPS, c72.MFLOPS)
		}
		b48, err := mc.BCSRParallel(bcsr, 128, 48)
		if err != nil {
			t.Fatal(err)
		}
		b72, err := mc.BCSRParallel(bcsr, 128, 72)
		if err != nil {
			t.Fatal(err)
		}
		if b72.MFLOPS <= b48.MFLOPS {
			t.Errorf("%s: BCSR should benefit from hyperthreading (48t %.0f vs 72t %.0f)",
				name, b48.MFLOPS, b72.MFLOPS)
		}
	}
}

// TestTransposeUsuallyLoses locks in Study 8's shape: the transposed-B
// kernels lose on typical FEM matrices on both sockets.
func TestTransposeUsuallyLoses(t *testing.T) {
	for _, name := range []string{"cant", "2cubes_sphere", "bcsstk17"} {
		csr, _ := benchFixture(t, name, 0.05)
		for _, mc := range Machines() {
			plain, err := mc.CSRParallel(csr, 128, 32)
			if err != nil {
				t.Fatal(err)
			}
			trans, err := mc.CSRParallelT(csr, 128, 32)
			if err != nil {
				t.Fatal(err)
			}
			if trans.MFLOPS >= plain.MFLOPS {
				t.Errorf("%s/%s: transposed (%.0f) should lose to plain (%.0f)",
					mc.Prof.Name, name, trans.MFLOPS, plain.MFLOPS)
			}
		}
	}
}

// TestTransposedKernelsCoverAllFormats exercises every transposed parallel
// simulation for basic sanity.
func TestTransposedKernelsCoverAllFormats(t *testing.T) {
	m, _, err := gen.GenerateScaled("bcsstk13", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	csr := formats.CSRFromCOO(m)
	ell := formats.ELLFromCOO(m, formats.RowMajor)
	bcsr, err := formats.BCSRFromCOO(m, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	mc := GraceMachine()
	for label, run := range map[string]func() (Result, error){
		"coo-t":  func() (Result, error) { return mc.COOParallelT(m, 64, 8) },
		"csr-t":  func() (Result, error) { return mc.CSRParallelT(csr, 64, 8) },
		"ell-t":  func() (Result, error) { return mc.ELLParallelT(ell, 64, 8) },
		"bcsr-t": func() (Result, error) { return mc.BCSRParallelT(bcsr, 64, 8) },
	} {
		r, err := run()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if r.Seconds <= 0 || r.MFLOPS <= 0 {
			t.Fatalf("%s: nonsense result %+v", label, r)
		}
	}
}

// TestSerialTransposeSimulation covers the serial transposed CSR entry
// point (used by spot checks and examples).
func TestSerialTransposeSimulation(t *testing.T) {
	csr, _ := benchFixture(t, "bcsstk13", 0.5)
	for _, prof := range Profiles() {
		r, err := SimulateCSRT(prof, csr, 64)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := SimulateCSR(prof, csr, 64)
		if err != nil {
			t.Fatal(err)
		}
		if r.MFLOPS >= plain.MFLOPS {
			t.Errorf("%s: serial transposed (%.0f) should lose to plain (%.0f)",
				prof.Name, r.MFLOPS, plain.MFLOPS)
		}
	}
}

// powerLawCSR builds a hub-heavy matrix whose row degrees follow a cubed-
// uniform draw — a few rows own most of the nonzeros, the skew that breaks
// row-static scheduling. Mirrors the fixture the kernels package tests use.
func powerLawCSR(rows, cols int, seed int64) *formats.CSR[float64] {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewCOO[float64](rows, cols, 0)
	for i := 0; i < rows; i++ {
		u := rng.Float64()
		deg := int(u * u * u * float64(cols))
		if i%17 == 0 {
			deg = 0
		}
		if i == rows/3 {
			deg = cols
		}
		for d := 0; d < deg; d++ {
			m.Append(int32(i), int32(rng.Intn(cols)), rng.NormFloat64())
		}
	}
	m.Dedup()
	return formats.CSRFromCOO(m)
}

// TestBalancedBeatsStaticOnSkewedMatrix locks in the point of the
// nonzero-balanced schedule: on a power-law (hub-heavy) matrix, the
// simulated wall clock is set by the slowest core, and under row-static
// chunking that core owns the hub rows. Balancing by nonzeros must win at
// every thread count >= 4 on both socket models — and must NOT lose on a
// uniform matrix, where the two schedules nearly coincide.
func TestBalancedBeatsStaticOnSkewedMatrix(t *testing.T) {
	skew := powerLawCSR(4000, 600, 5)
	for _, mc := range Machines() {
		for _, threads := range []int{4, 8, 16, 32} {
			static, err := mc.CSRParallel(skew, 128, threads)
			if err != nil {
				t.Fatal(err)
			}
			balanced, err := mc.CSRParallelBalanced(skew, 128, threads)
			if err != nil {
				t.Fatal(err)
			}
			if balanced.MFLOPS <= static.MFLOPS {
				t.Errorf("%s t=%d: balanced (%.0f MFLOPS) should beat static (%.0f) on skew",
					mc.Prof.Name, threads, balanced.MFLOPS, static.MFLOPS)
			}
		}
	}
	uniform, _ := benchFixture(t, "cant", 0.05)
	mc := GraceMachine()
	static, err := mc.CSRParallel(uniform, 128, 32)
	if err != nil {
		t.Fatal(err)
	}
	balanced, err := mc.CSRParallelBalanced(uniform, 128, 32)
	if err != nil {
		t.Fatal(err)
	}
	if balanced.MFLOPS < static.MFLOPS*0.9 {
		t.Errorf("uniform matrix: balanced (%.0f) should stay within 10%% of static (%.0f)",
			balanced.MFLOPS, static.MFLOPS)
	}
}

// TestThreadsClampToWork ensures more threads than rows degrades gracefully.
func TestThreadsClampToWork(t *testing.T) {
	m, _, err := gen.GenerateScaled("bcsstk13", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	csr := formats.CSRFromCOO(m)
	mc := GraceMachine()
	r, err := mc.CSRParallel(csr, 32, 10*csr.Rows)
	if err != nil {
		t.Fatal(err)
	}
	if r.MFLOPS <= 0 {
		t.Fatal("oversubscribed run produced nonsense")
	}
}

// TestSmallMatrixPrefersFewThreads locks in the fork/join effect the
// thesis saw on small matrices: tiny inputs peak well below the maximum
// thread count.
func TestSmallMatrixPrefersFewThreads(t *testing.T) {
	csr, _ := benchFixture(t, "bcsstk13", 0.3) // ~600 rows
	mc := GraceMachine()
	best, bestT := -1.0, 0
	for _, threads := range []int{2, 4, 8, 16, 32, 48, 64, 72} {
		r, err := mc.CSRParallel(csr, 128, threads)
		if err != nil {
			t.Fatal(err)
		}
		if r.MFLOPS > best {
			best, bestT = r.MFLOPS, threads
		}
	}
	if bestT > 48 {
		t.Errorf("tiny matrix peaked at %d threads; fork/join should cap it lower", bestT)
	}
}
