package machine

import "repro/internal/obs"

// Simulated CPU hardware counters, exported to the process-wide metrics
// registry. One flush per simulated machine (the serial simulations flush in
// finish, the multicore model flushes each chunk's private core after its
// measured pass), so the trace-replay inner loops stay counter-free except
// for the plain int64 fields they already maintain.
var (
	obsSims = obs.NewCounter("spmm_machine_sims_total",
		"Simulated machine passes flushed (one per core/chunk measured).")
	obsAccesses = obs.NewCounter("spmm_machine_accesses_total",
		"Line-granularity memory touches replayed.")
	obsCacheHits = [maxCacheLevels]*obs.Counter{
		obs.NewCounter(`spmm_machine_cache_hits_total{level="L1"}`,
			"Memory touches served per cache level."),
		obs.NewCounter(`spmm_machine_cache_hits_total{level="L2"}`,
			"Memory touches served per cache level."),
		obs.NewCounter(`spmm_machine_cache_hits_total{level="L3"}`,
			"Memory touches served per cache level."),
		obs.NewCounter(`spmm_machine_cache_hits_total{level="L4"}`,
			"Memory touches served per cache level."),
	}
	obsMemMisses = obs.NewCounter("spmm_machine_mem_misses_total",
		"Memory touches that missed every cache level.")
	obsStreamMisses = obs.NewCounter("spmm_machine_stream_misses_total",
		"Memory misses priced as streamed (prefetcher-covered).")
	obsDRAMBytes = obs.NewCounter("spmm_machine_dram_bytes_total",
		"Modelled DRAM traffic in bytes (memory misses x cache line).")
	obsFlops = obs.NewCounter("spmm_machine_flops_total",
		"Floating-point operations replayed.")
)

// flushObs exports the machine's accumulated counters. Call once per
// measured pass — the counters are cumulative since the last
// ResetCosts/Reset, so flushing mid-run would double-count.
func (m *Machine) flushObs() {
	obsSims.Inc()
	obsAccesses.Add(m.accesses)
	for i := range m.levelHits {
		obsCacheHits[i].Add(m.levelHits[i])
	}
	obsMemMisses.Add(m.memMiss)
	obsStreamMisses.Add(m.memMissStream)
	obsDRAMBytes.Add(m.memMiss * int64(m.lineBytes()))
	obsFlops.Add(m.flops)
}
