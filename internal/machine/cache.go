package machine

import "fmt"

// Cache is a set-associative cache with LRU replacement, simulated at line
// granularity. Tags only — no data is stored.
type Cache struct {
	cfg      CacheConfig
	sets     int
	lineBits uint
	setMask  uint64
	// tags[set*ways+way]; 0 means empty (tag 0 is avoided by offsetting).
	tags []uint64
	// age[set*ways+way] for LRU; larger is more recent.
	age    []uint64
	tick   uint64
	hits   int64
	misses int64
}

// NewCache builds a cache from the configuration. Size must be a positive
// multiple of Ways*LineBytes and the set count a power of two.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 || cfg.LineBytes <= 0 {
		return nil, fmt.Errorf("machine: invalid cache config %+v", cfg)
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	if lines*cfg.LineBytes != cfg.SizeBytes || lines%cfg.Ways != 0 {
		return nil, fmt.Errorf("machine: cache size %d not divisible into %d-byte lines and %d ways",
			cfg.SizeBytes, cfg.LineBytes, cfg.Ways)
	}
	sets := lines / cfg.Ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("machine: set count %d not a power of two", sets)
	}
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineBytes {
		lineBits++
	}
	if 1<<lineBits != cfg.LineBytes {
		return nil, fmt.Errorf("machine: line size %d not a power of two", cfg.LineBytes)
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		lineBits: lineBits,
		setMask:  uint64(sets - 1),
		tags:     make([]uint64, sets*cfg.Ways),
		age:      make([]uint64, sets*cfg.Ways),
	}, nil
}

// Access touches the line containing addr and reports whether it hit.
// Misses install the line, evicting the LRU way.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line & c.setMask)
	tag := line | 1<<63 // bias so a valid tag is never zero
	base := set * c.cfg.Ways
	c.tick++
	lruWay, lruAge := 0, ^uint64(0)
	for way := 0; way < c.cfg.Ways; way++ {
		i := base + way
		if c.tags[i] == tag {
			c.age[i] = c.tick
			c.hits++
			return true
		}
		if c.age[i] < lruAge {
			lruAge = c.age[i]
			lruWay = way
		}
	}
	i := base + lruWay
	c.tags[i] = tag
	c.age[i] = c.tick
	c.misses++
	return false
}

// Stats reports accumulated hits and misses.
func (c *Cache) Stats() (hits, misses int64) { return c.hits, c.misses }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	clear(c.tags)
	clear(c.age)
	c.tick, c.hits, c.misses = 0, 0, 0
}
