package machine

import "fmt"

// Machine replays a kernel's access/compute trace against one architecture
// profile and accumulates modelled cycles.
type Machine struct {
	prof   Profile
	caches []*Cache

	cycles float64
	flops  int64
	// accesses counts line-granularity memory touches.
	accesses int64
	memMiss  int64
	// memMissStream counts the subset of memory misses that were
	// streamed (prefetchable); the rest were demand misses.
	memMissStream int64
	// levelHits counts touches served per cache level (index = level).
	levelHits [maxCacheLevels]int64
}

// maxCacheLevels bounds the hierarchy depth the per-level hit counters
// cover; profiles deeper than this are rejected by New.
const maxCacheLevels = 4

// New builds a machine for the profile.
func New(prof Profile) (*Machine, error) {
	if prof.ClockGHz <= 0 || prof.ScalarIPC <= 0 || prof.FMAPipes <= 0 || prof.VectorElems < 1 {
		return nil, fmt.Errorf("machine: invalid profile %q", prof.Name)
	}
	if len(prof.Caches) > maxCacheLevels {
		return nil, fmt.Errorf("machine: profile %q has %d cache levels, max %d",
			prof.Name, len(prof.Caches), maxCacheLevels)
	}
	m := &Machine{prof: prof}
	for _, cc := range prof.Caches {
		c, err := NewCache(cc)
		if err != nil {
			return nil, err
		}
		m.caches = append(m.caches, c)
	}
	return m, nil
}

// Profile returns the machine's profile.
func (m *Machine) Profile() Profile { return m.prof }

// touchLine walks one line address through the hierarchy and charges the
// latency of the level that hit. Misses that go all the way to memory cost
// MemCycles for demand (pointer-chasing) accesses but only StreamMissCycles
// for streamed ones, where the prefetcher has the line in flight and the
// cost is bandwidth, not latency.
func (m *Machine) touchLine(addr uint64, streamed bool) {
	m.accesses++
	for i, c := range m.caches {
		if c.Access(addr) {
			m.cycles += c.cfg.HitCycles
			m.levelHits[i]++
			return
		}
		// Miss: the line is installed at this level, continue down.
	}
	m.memMiss++
	if streamed {
		m.memMissStream++
		m.cycles += m.prof.StreamMissCycles
	} else {
		m.cycles += m.prof.MemCycles
	}
}

// lineBytes returns the innermost line size (all levels share it by
// construction of the profiles).
func (m *Machine) lineBytes() uint64 {
	if len(m.caches) == 0 {
		return 64
	}
	return uint64(m.caches[0].cfg.LineBytes)
}

// LoadScalar models a single scalar load of the given width at addr.
func (m *Machine) LoadScalar(addr uint64, bytes int) {
	m.touchLine(addr, false)
	_ = bytes
}

// LoadRange models a contiguous load of bytes starting at addr, touching
// each covered line once (what a vectorised/streaming loop does).
func (m *Machine) LoadRange(addr uint64, bytes int) {
	if bytes <= 0 {
		return
	}
	line := m.lineBytes()
	first := addr / line
	last := (addr + uint64(bytes) - 1) / line
	for l := first; l <= last; l++ {
		m.touchLine(l*line, true)
	}
}

// StoreRange models a contiguous write-allocate store.
func (m *Machine) StoreRange(addr uint64, bytes int) { m.LoadRange(addr, bytes) }

// RMWRange models a load immediately followed by a store of the same
// contiguous range — the accumulate pattern `crow[j] += ...`. The load
// walks the hierarchy; the store then hits L1 on the just-loaded lines, so
// it is charged the L1 hit cost directly. The accounting is exactly
// LoadRange followed by StoreRange, at half the simulation work.
func (m *Machine) RMWRange(addr uint64, bytes int) {
	if bytes <= 0 {
		return
	}
	line := m.lineBytes()
	first := addr / line
	last := (addr + uint64(bytes) - 1) / line
	l1Hit := 0.0
	if len(m.caches) > 0 {
		l1Hit = m.caches[0].cfg.HitCycles
	}
	for l := first; l <= last; l++ {
		m.touchLine(l*line, true) // load
		m.accesses++              // store: guaranteed L1 hit
		m.cycles += l1Hit
	}
}

// StoreScalar models a single scalar store.
func (m *Machine) StoreScalar(addr uint64, bytes int) { m.LoadScalar(addr, bytes) }

// loadRangeDemand is LoadRange with demand-miss (non-streamed) pricing,
// used for ranges whose base is data-dependent.
func (m *Machine) loadRangeDemand(addr uint64, bytes int) {
	if bytes <= 0 {
		return
	}
	line := m.lineBytes()
	first := addr / line
	last := (addr + uint64(bytes) - 1) / line
	for l := first; l <= last; l++ {
		m.touchLine(l*line, false)
	}
}

// FMA models n fused multiply-adds executed in a loop whose natural vector
// length is vecLen elements (use a large vecLen for long contiguous loops;
// use the block width for short blocked loops). Lanes beyond vecLen cannot
// be packed across iterations, so throughput is FMAPipes×min(VectorElems,
// vecLen) flops per cycle.
func (m *Machine) FMA(n int, vecLen int) {
	if n <= 0 {
		return
	}
	if vecLen < 1 {
		vecLen = 1
	}
	lanes := min(m.prof.VectorElems, vecLen)
	m.cycles += float64(n) / (m.prof.FMAPipes * float64(lanes))
	m.flops += 2 * int64(n)
}

// Scalar models n bookkeeping instructions (index arithmetic, branches,
// loop control).
func (m *Machine) Scalar(n int) {
	if n <= 0 {
		return
	}
	m.cycles += float64(n) / m.prof.ScalarIPC
}

// Cycles returns the accumulated cycle count.
func (m *Machine) Cycles() float64 { return m.cycles }

// Seconds converts the accumulated cycles to seconds at the profile clock.
func (m *Machine) Seconds() float64 { return m.cycles / (m.prof.ClockGHz * 1e9) }

// Flops returns the accumulated floating-point operation count.
func (m *Machine) Flops() int64 { return m.flops }

// MemMissRate returns the fraction of line touches that went to memory.
func (m *Machine) MemMissRate() float64 {
	if m.accesses == 0 {
		return 0
	}
	return float64(m.memMiss) / float64(m.accesses)
}

// StreamMissShare returns the fraction of memory misses that were
// streamed (prefetchable) rather than demand misses.
func (m *Machine) StreamMissShare() float64 {
	if m.memMiss == 0 {
		return 0
	}
	return float64(m.memMissStream) / float64(m.memMiss)
}

// ResetCosts clears the cycle, flop and access counters but keeps cache
// contents — used to measure a warmed (steady-state) pass.
func (m *Machine) ResetCosts() {
	m.cycles, m.flops, m.accesses, m.memMiss, m.memMissStream = 0, 0, 0, 0, 0
	m.levelHits = [maxCacheLevels]int64{}
}

// Reset clears cycles, counters and cache contents.
func (m *Machine) Reset() {
	m.ResetCosts()
	for _, c := range m.caches {
		c.Reset()
	}
}
